// Particle-Mesh mass deposition (paper Appendix B.2.2): the same scatter-add
// pattern in a different science domain.
//
// In cosmological N-body codes the PM method deposits particle *mass* onto a
// density grid (to solve Poisson's equation for gravity). Algorithmically this
// is isomorphic to PIC current deposition: Source = massive particles, Target
// = density grid, Operation = shape-function scatter-add. This example reuses
// the MatrixPIC deposition machinery verbatim for that workload — validating
// the paper's generality argument — by treating mass/cell_volume as the
// "charge" and comparing the hybrid MPU kernel against the scalar reference.
//
//   ./pm_gravity [n_cells_1d] [ppc1d]

#include <cstdio>
#include <cstdlib>
#include <cmath>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/deposit/deposit_baseline.h"
#include "src/deposit/deposit_mpu.h"
#include "src/deposit/deposit_rhocell.h"
#include "src/deposit/deposit_scalar.h"
#include "src/deposit/deposit_staging.h"
#include "src/grid/field_set.h"
#include "src/particles/species.h"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 12;
  const int ppc1d = argc > 2 ? std::atoi(argv[2]) : 4;

  // A "cosmological" box: Mpc-scale cells, solar-mass particles clustered into
  // a few halos (clustering is what stresses deposition locality).
  mpic::GridGeometry geom;
  geom.nx = geom.ny = geom.nz = n;
  geom.dx = geom.dy = geom.dz = 1.0;  // 1 "Mpc" cells (units are irrelevant here)
  mpic::ParticleTile tile(0, 0, 0, n, n, n);
  mpic::Rng rng(2026);
  const int total = n * n * n * ppc1d * ppc1d * ppc1d;
  const int kHalos = 8;
  double halo_x[kHalos], halo_y[kHalos], halo_z[kHalos];
  for (int h = 0; h < kHalos; ++h) {
    halo_x[h] = rng.Uniform(0.2 * n, 0.8 * n);
    halo_y[h] = rng.Uniform(0.2 * n, 0.8 * n);
    halo_z[h] = rng.Uniform(0.2 * n, 0.8 * n);
  }
  for (int i = 0; i < total; ++i) {
    mpic::Particle p;
    if (rng.Bernoulli(0.7)) {
      // Clustered: Gaussian blob around a halo center.
      const int h = static_cast<int>(rng.NextBelow(kHalos));
      p.x = geom.WrapX(halo_x[h] + rng.NextGaussian() * 0.8);
      p.y = geom.WrapY(halo_y[h] + rng.NextGaussian() * 0.8);
      p.z = geom.WrapZ(halo_z[h] + rng.NextGaussian() * 0.8);
    } else {
      p.x = rng.Uniform(0.0, geom.LengthX());
      p.y = rng.Uniform(0.0, geom.LengthY());
      p.z = rng.Uniform(0.0, geom.LengthZ());
    }
    // "Mass" rides in the weight; the deposition's velocity factor is defeated
    // by giving every particle ux = c (so wqx = mass_factor * w / volume).
    p.ux = 0.0;
    p.w = rng.Uniform(0.8, 1.2);  // solar masses (arbitrary units)
    tile.AddParticle(p);
  }
  // Cell-sort the tile (MatrixPIC's precondition; the GPMA keeps it cheap in a
  // dynamic simulation — here a one-shot global sort suffices).
  tile.GlobalSortTile(geom, mpic::GpmaConfig{});

  // Deposit mass with the hybrid MPU kernel. We reuse the current-deposition
  // engine with charge = 1 and a unit "velocity": J_x becomes mass density
  // after scaling. To express pure mass deposition through the current kernel,
  // give particles ux such that q*w*ux/(gamma*V) = w/V: ux<<c => gamma~1.
  const double u_small = 1e-3 * mpic::kSpeedOfLight;
  for (size_t i = 0; i < tile.soa().size(); ++i) {
    tile.soa().ux[i] = u_small;
  }
  mpic::DepositParams params;
  params.geom = geom;
  params.charge = 1.0 / u_small;  // q*ux ~= 1 (gamma correction ~5e-7)

  mpic::HwContext hw;
  mpic::FieldSet mpu_fields(geom, 2);
  mpic::DepositScratch scratch;
  mpic::RhocellBuffer rhocell(tile.num_cells(), 1);
  mpic::StageTileVpu<1>(hw, tile, params, scratch);
  mpic::DepositMpu<1>(hw, tile, params, scratch, rhocell,
                      mpic::MpuScheduling::kCellResident);
  mpic::ReduceRhocellToGrid<1>(hw, tile, rhocell, mpu_fields);
  mpu_fields.jx.FoldGuardsPeriodic();
  const double mpu_cycles = hw.ledger().TotalCycles();

  // Scalar reference for validation and the WarpX-style baseline (scalar
  // staging + direct scatter) for the speed comparison.
  mpic::HwContext hw_ref;
  mpic::FieldSet ref_fields(geom, 2);
  mpic::DepositScalarTile<1>(hw_ref, tile, params, ref_fields);
  ref_fields.jx.FoldGuardsPeriodic();
  mpic::HwContext hw_base;
  mpic::FieldSet base_fields(geom, 2);
  mpic::DepositScratch base_scratch;
  mpic::StageTileScalar<1>(hw_base, tile, params, base_scratch);
  mpic::DepositBaselineTile<1>(hw_base, tile, params, base_scratch, base_fields,
                               /*sorted=*/false);

  const double err = mpic::RelMaxError(ref_fields.jx.vec(), mpu_fields.jx.vec());
  const double total_mass = mpu_fields.jx.InteriorSumUnique();
  double expected_mass = 0.0;
  for (size_t i = 0; i < tile.soa().size(); ++i) {
    expected_mass += tile.soa().w[i];
  }
  expected_mass /= geom.dx * geom.dy * geom.dz;

  std::printf("pm_gravity: %d particles (%d halos) on %d^3 grid\n", total, kHalos, n);
  std::printf("  mass on grid      : %.6e (expected %.6e, gamma skew %.1e)\n",
              total_mass, expected_mass,
              std::abs(total_mass / expected_mass - 1.0));
  std::printf("  MPU vs scalar err : %.3e (must be < 1e-6 incl. gamma skew)\n", err);
  std::printf("  modeled speedup   : %.2fx over the staged scalar baseline\n",
              hw_base.ledger().TotalCycles() / mpu_cycles);
  std::printf("                      (MPU %.0f vs baseline %.0f vs pure-scalar %.0f"
              " kcycles)\n",
              mpu_cycles / 1e3, hw_base.ledger().TotalCycles() / 1e3,
              hw_ref.ledger().TotalCycles() / 1e3);

  // Print the densest cells — the halos should dominate.
  std::printf("  densest cells:\n");
  for (int rank = 0; rank < 3; ++rank) {
    double best = -1.0;
    int bi = 0, bj = 0, bk = 0;
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          const double v = mpu_fields.jx.At(i, j, k);
          if (v > best) {
            best = v;
            bi = i;
            bj = j;
            bk = k;
          }
        }
      }
    }
    std::printf("    node (%2d,%2d,%2d): density %.3e\n", bi, bj, bk, best);
    mpu_fields.jx.At(bi, bj, bk) = -1.0;  // mask for next rank
  }
  return err < 1e-6 ? 0 : 1;
}

// Two-stream instability (multi-species showcase).
//
// Two electron beams counter-stream along z at +/- u_drift with a seeded
// sinusoidal velocity perturbation. The electrostatic two-stream instability
// amplifies the seeded mode exponentially until particle trapping saturates
// it. Prints a per-step timeline with the per-species census, the field /
// kinetic energy exchange, and the health-sentinel status, then the growth
// factor over the run.
//
//   ./two_stream [steps] [u_drift/c] [variant]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/diagnostics.h"
#include "src/core/workloads.h"
#include "src/runtime/health.h"

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 120;
  mpic::TwoStreamParams params;
  params.u_drift = argc > 2 ? std::atof(argv[2]) : 0.2;
  if (params.u_drift <= 0.0) {
    std::fprintf(stderr, "u_drift must be > 0 (got '%s'), using 0.2\n", argv[2]);
    params.u_drift = 0.2;
  }
  params.variant = (argc > 3 && std::strcmp(argv[3], "baseline") == 0)
                       ? mpic::DepositVariant::kBaseline
                       : mpic::DepositVariant::kFullOpt;
  params.nx = params.ny = 4;
  params.nz = 32;
  params.tile = 4;

  mpic::HwContext hw;
  auto sim = mpic::MakeTwoStreamSimulation(hw, params);
  // Closed periodic system: every default sentinel applies, including the
  // total-energy drift bound.
  sim->EnableHealth(mpic::HealthConfig{});
  std::printf("two_stream: %s, grid %dx%dx%d, u_drift %.2fc, %d species\n",
              mpic::VariantName(params.variant), params.nx, params.ny, params.nz,
              params.u_drift, sim->num_species());
  for (int sid = 0; sid < sim->num_species(); ++sid) {
    std::printf("  species %d: %-12s %8lld particles\n", sid,
                sim->species(sid).name.c_str(),
                static_cast<long long>(sim->block(sid).tiles.TotalLive()));
  }

  sim->Step();
  const double fe0 = mpic::FieldEnergy(sim->fields());
  std::printf("\n%5s %14s %14s", "step", "field E (J)", "kinetic (J)");
  for (int sid = 0; sid < sim->num_species(); ++sid) {
    std::printf(" %12s", sim->species(sid).name.c_str());
  }
  std::printf(" %8s\n", "health");

  for (int s = 1; s < steps; ++s) {
    sim->Step();
    if ((s + 1) % 10 == 0 || s == 1) {
      std::printf("%5lld %14.4e %14.4e",
                  static_cast<long long>(sim->step_count()),
                  mpic::FieldEnergy(sim->fields()),
                  mpic::TotalKineticEnergy(*sim));
      for (const mpic::SpeciesStepStats& ss : sim->last_sim_stats().species) {
        std::printf(" %12lld", static_cast<long long>(ss.live));
      }
      const mpic::HealthStepReport& rep = sim->last_sim_stats().health;
      std::printf(" %8s\n", rep.tripped() ? "TRIP" : "ok");
      if (rep.tripped()) {
        std::printf("      %s\n", rep.Summary().c_str());
      }
    }
  }
  std::printf("\nfinal %s\n", sim->last_sim_stats().health.Summary().c_str());

  const double fe1 = mpic::FieldEnergy(sim->fields());
  std::printf("\nfield energy grew %.1fx over %d steps (%.3e -> %.3e J)\n",
              fe0 > 0.0 ? fe1 / fe0 : 0.0, steps, fe0, fe1);
  const mpic::EngineStepStats agg = sim->last_sim_stats().Aggregate();
  std::printf("last step: %lld moved, %lld tile crossings across species\n",
              static_cast<long long>(agg.moved_particles),
              static_cast<long long>(agg.crossed_tiles));
  return 0;
}

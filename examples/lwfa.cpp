// Laser-Wakefield Acceleration (the paper's realistic application workload).
//
// A Gaussian laser pulse (a0 ~ 4, lambda = 0.8 um) drives a wake in a cold
// background plasma while a moving window tracks the pulse at c. Prints a
// per-step summary — window position, per-species particle census, field
// energy, health-sentinel status — and an on-axis longitudinal field profile
// at the end (the wake structure). With `ions` a mobile proton background
// rides along, exercising the multi-species moving-window path.
//
//   ./lwfa [steps] [variant] [ions]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/diagnostics.h"
#include "src/core/workloads.h"
#include "src/runtime/health.h"

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 20;
  mpic::LwfaWorkloadParams params;
  params.variant = (argc > 2 && std::strcmp(argv[2], "baseline") == 0)
                       ? mpic::DepositVariant::kBaseline
                       : mpic::DepositVariant::kFullOpt;
  params.nx = params.ny = 8;
  params.nz = 64;
  params.ppc_x = params.ppc_y = params.ppc_z = 2;
  params.tile = 8;
  params.tile_z = 64;
  params.with_ions = argc > 3 && std::strcmp(argv[3], "ions") == 0;

  mpic::HwContext hw;
  auto sim = mpic::MakeLwfaSimulation(hw, params);
  // Per-step health sentinels. The laser antenna injects energy every step,
  // so the closed-system energy-drift bound does not apply; the particle,
  // field, and census sentinels carry the monitoring.
  mpic::HealthConfig health;
  health.check_energy = false;
  sim->EnableHealth(health);
  std::printf("lwfa: %s, grid %dx%dx%d, %d species, %lld particles, dt = %.3e s\n",
              mpic::VariantName(params.variant), params.nx, params.ny, params.nz,
              sim->num_species(),
              static_cast<long long>(sim->tiles().TotalLive()), sim->dt());
  std::printf("%5s %14s %12s %12s %14s %10s %8s\n", "step", "window z0 (um)",
              "electrons", "ions", "field E (J)", "sorts", "health");

  for (int s = 0; s < steps; ++s) {
    sim->Step();
    if ((s + 1) % 5 == 0 || s == 0) {
      const long long ions =
          sim->num_species() > 1
              ? static_cast<long long>(sim->block(1).tiles.TotalLive())
              : 0;
      long long sorts = 0;
      for (int sid = 0; sid < sim->num_species(); ++sid) {
        sorts += sim->block(sid).engine.total_global_sorts();
      }
      const mpic::HealthStepReport& rep = sim->last_sim_stats().health;
      std::printf("%5lld %14.3f %12lld %12lld %14.3e %10lld %8s\n",
                  static_cast<long long>(sim->step_count()),
                  sim->fields().geom.z0 * 1e6,
                  static_cast<long long>(sim->tiles().TotalLive()), ions,
                  mpic::FieldEnergy(sim->fields()), sorts,
                  rep.tripped() ? "TRIP" : "ok");
      if (rep.tripped()) {
        std::printf("      %s\n", rep.Summary().c_str());
      }
    }
  }
  std::printf("\nfinal %s\n", sim->last_sim_stats().health.Summary().c_str());

  // On-axis Ez profile: the longitudinal wake field behind the pulse.
  std::printf("\non-axis Ez(z) after %d steps:\n", steps);
  const auto& g = sim->fields().geom;
  const int ci = g.nx / 2;
  const int cj = g.ny / 2;
  for (int k = 0; k < g.nz; k += 4) {
    const double ez = sim->fields().ez.At(ci, cj, k);
    std::printf("  z = %7.3f um   Ez = %+.3e V/m\n", (g.z0 + k * g.dz) * 1e6, ez);
  }

  const mpic::RunReport report = mpic::MakeRunReport(
      hw, mpic::PhaseCycles{}, sim->particles_pushed(), 1);
  std::printf("\nmodeled wall %.4f s, deposition %.4f s, throughput %.3e p/s\n",
              report.wall_seconds, report.deposition_seconds,
              report.particles_per_second);
  return 0;
}

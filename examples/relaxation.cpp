// Collisional two-temperature relaxation (Takizuka-Abe collision showcase).
//
// A hot electron population and a cold equal-mass population of opposite
// charge relax toward a common temperature through binary Monte-Carlo Coulomb
// collisions riding the GPMA cell sort. Prints the two temperatures, the
// total momentum drift, and the collision-stage census over the run; the
// Coulomb logarithm is exposed as a rate knob (the relaxation rate is linear
// in it).
//
//   ./relaxation [steps] [coulomb_log] [variant]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/diagnostics.h"
#include "src/core/workloads.h"

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 150;
  mpic::CollisionalRelaxationParams params;
  params.coulomb_log = argc > 2 ? std::atof(argv[2]) : 300.0;
  if (params.coulomb_log <= 0.0) {
    std::fprintf(stderr, "coulomb_log must be > 0 (got '%s'), using 300\n",
                 argv[2]);
    params.coulomb_log = 300.0;
  }
  params.variant = (argc > 3 && std::strcmp(argv[3], "baseline_incr") == 0)
                       ? mpic::DepositVariant::kBaselineIncrSort
                       : mpic::DepositVariant::kFullOpt;

  mpic::HwContext hw;
  auto sim = mpic::MakeCollisionalRelaxationSimulation(hw, params);
  std::printf(
      "relaxation: %s, grid %dx%dx%d, lnLambda %.0f, u_th %.3fc / %.3fc\n",
      mpic::VariantName(params.variant), params.nx, params.ny, params.nz,
      params.coulomb_log, params.u_th_hot, params.u_th_cold);
  for (int sid = 0; sid < sim->num_species(); ++sid) {
    std::printf("  species %d: %-8s %8lld particles\n", sid,
                sim->species(sid).name.c_str(),
                static_cast<long long>(sim->block(sid).tiles.TotalLive()));
  }

  auto temps = [&](double* hot, double* cold) {
    *hot = mpic::SpeciesTemperature(sim->block(0).tiles, sim->species(0));
    *cold = mpic::SpeciesTemperature(sim->block(1).tiles, sim->species(1));
  };
  auto momentum_mag = [&]() {
    double total[3] = {0.0, 0.0, 0.0};
    for (int sid = 0; sid < sim->num_species(); ++sid) {
      double p[3];
      mpic::SpeciesMomentum(sim->block(sid).tiles, sim->species(sid), p);
      for (int c = 0; c < 3; ++c) {
        total[c] += p[c];
      }
    }
    return std::sqrt(total[0] * total[0] + total[1] * total[1] +
                     total[2] * total[2]);
  };

  double t_hot0, t_cold0;
  temps(&t_hot0, &t_cold0);
  const double p0 = momentum_mag();
  std::printf("\n%5s %13s %13s %10s %12s %10s\n", "step", "T_hot (J)",
              "T_cold (J)", "gap", "pairs/step", "|p| drift");
  std::printf("%5d %13.4e %13.4e %10.3f %12s %10s\n", 0, t_hot0, t_cold0, 1.0,
              "-", "-");
  for (int s = 0; s < steps; ++s) {
    sim->Step();
    if ((s + 1) % 25 == 0 || s + 1 == steps) {
      double t_hot, t_cold;
      temps(&t_hot, &t_cold);
      const double gap = (t_hot - t_cold) / (t_hot0 - t_cold0);
      std::printf("%5lld %13.4e %13.4e %10.3f %12lld %10.2e\n",
                  static_cast<long long>(sim->step_count()), t_hot, t_cold, gap,
                  static_cast<long long>(sim->last_sim_stats().collisions.pairs),
                  momentum_mag() - p0);
    }
  }

  double t_hot1, t_cold1;
  temps(&t_hot1, &t_cold1);
  std::printf("\ntemperature gap closed to %.1f%% over %d steps "
              "(T_hot %.3e -> %.3e J, T_cold %.3e -> %.3e J)\n",
              100.0 * (t_hot1 - t_cold1) / (t_hot0 - t_cold0), steps, t_hot0,
              t_hot1, t_cold0, t_cold1);
  std::printf("collide phase: %.3e modeled cycles (%.1f%% of total)\n",
              hw.ledger().PhaseCycles(mpic::Phase::kCollide),
              100.0 * hw.ledger().PhaseCycles(mpic::Phase::kCollide) /
                  hw.ledger().TotalCycles());
  return 0;
}

// Resilience walkthrough: a fault-injected LWFA run that detects, rolls
// back, and completes bit-identically to a run that never faulted.
//
// Two simulations of the same laser-wakefield workload (mobile-ion
// background, moving window) run side by side:
//
//   clean     — no faults, resilience off: the reference timeline.
//   resilient — health sentinels armed, in-memory checkpoints every 5 steps,
//               and a deterministic single-event upset injected mid-run: the
//               largest-magnitude Ex node gets an exponent bit flipped. The
//               field sentinel trips at the end of the poisoned step, the
//               runner restores the last checkpoint, replays, and finishes.
//
// The final whole-simulation digests (fields + every particle lane + slot
// layout) are printed for both; they must match — the recovered timeline is
// indistinguishable from one where the upset never happened.
//
//   ./resilience [steps] [fault_step]

#include <cstdio>
#include <cstdlib>

#include "src/core/workloads.h"
#include "src/runtime/digest.h"
#include "src/runtime/fault_injection.h"
#include "src/runtime/health.h"
#include "src/runtime/recovery.h"

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 16;
  const int fault_step = argc > 2 ? std::atoi(argv[2]) : steps / 2 + 1;

  mpic::LwfaWorkloadParams params;
  params.nx = params.ny = 8;
  params.nz = 32;
  params.ppc_x = params.ppc_y = params.ppc_z = 2;
  params.tile = 4;
  params.tile_z = 8;
  params.with_ions = true;
  // This demo compares a rolled-back run against a clean run that never
  // checkpoints, so the adaptive throughput trigger — whose modeled-history
  // input differs between those two runs by construction — stays off. A
  // same-machine restart with the trigger ON is bit-exact since checkpoint
  // v2 (see src/runtime/checkpoint.h).
  mpic::ResortPolicyConfig policy;
  policy.trigger_perf_enable = false;
  params.policy = policy;

  mpic::HwContext clean_hw;
  auto clean = mpic::MakeLwfaSimulation(clean_hw, params);
  clean->Run(steps);
  const uint64_t clean_digest = mpic::SimulationDigest(*clean);

  mpic::HwContext hw;
  auto sim = mpic::MakeLwfaSimulation(hw, params);
  // The laser antenna injects energy every step, so the closed-system
  // energy-drift sentinel does not apply to this workload.
  mpic::HealthConfig health;
  health.check_energy = false;
  sim->EnableHealth(health);

  mpic::FaultPlan plan;
  mpic::FaultSpec spec;
  spec.kind = mpic::FaultKind::kFieldBitFlip;
  spec.step = fault_step;
  spec.field = 0;    // Ex
  spec.bit = -1;     // adaptive exponent flip: guaranteed detectable
  plan.faults.push_back(spec);
  mpic::FaultInjector injector(plan);

  mpic::RecoveryConfig recovery;
  recovery.checkpoint_interval = 5;
  mpic::ResilientRunner runner(sim.get(), recovery);
  runner.set_injector(&injector);

  std::printf("resilience: LWFA e+ion, %d steps, Ex exponent flip at step %d, "
              "checkpoints every %d steps\n\n",
              steps, fault_step, recovery.checkpoint_interval);
  const bool completed = runner.Run(steps);
  const mpic::RecoveryStats& stats = runner.stats();

  for (const mpic::RecoveryEvent& ev : stats.events) {
    std::printf("step %lld tripped: %s\n", static_cast<long long>(ev.trip_step),
                ev.sentinel.c_str());
    if (ev.degraded) {
      std::printf("  -> no checkpoint: scrubbed in place, continuing degraded\n");
    } else {
      std::printf("  -> rolled back to step %lld, replaying %lld steps\n",
                  static_cast<long long>(ev.restored_step),
                  static_cast<long long>(ev.steps_lost));
    }
  }
  std::printf("\n%lld checkpoints, %lld rollbacks, %lld steps replayed\n",
              static_cast<long long>(stats.checkpoints_taken),
              static_cast<long long>(stats.rollbacks),
              static_cast<long long>(stats.steps_replayed));
  std::printf("final  %s\n", sim->last_sim_stats().health.Summary().c_str());

  const uint64_t recovered_digest = mpic::SimulationDigest(*sim);
  std::printf("\nclean digest     %016llx\nrecovered digest %016llx\n",
              static_cast<unsigned long long>(clean_digest),
              static_cast<unsigned long long>(recovered_digest));
  const bool identical = completed && recovered_digest == clean_digest;
  std::printf("%s\n", identical
                          ? "recovered run is bit-identical to the clean run"
                          : "MISMATCH: recovery failed to reproduce the clean "
                            "timeline (BUG!)");
  return identical ? 0 : 1;
}

// Quickstart: the smallest complete MatrixPIC program.
//
// Builds a uniform thermal plasma on a periodic grid, runs ten PIC steps with
// the full MatrixPIC deposition pipeline (hybrid VPU-MPU kernel + incremental
// GPMA sorting), and prints energy and modeled-performance diagnostics.
//
//   ./quickstart [steps]

#include <cstdio>
#include <cstdlib>

#include "src/core/diagnostics.h"
#include "src/core/workloads.h"

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 10;

  // 1. Describe the workload: a 12^3 periodic box with 27 particles per cell.
  mpic::UniformWorkloadParams params;
  params.nx = params.ny = params.nz = 12;
  params.ppc_x = params.ppc_y = params.ppc_z = 3;
  params.order = 1;                                  // CIC shape
  params.variant = mpic::DepositVariant::kFullOpt;   // the MatrixPIC pipeline
  params.u_th = 0.01;                                // thermal spread (units of c)

  // 2. Create the modeled machine and the simulation.
  mpic::HwContext hw;  // the LX2-like CPU model (VPU + 8x8 FP64 MPU)
  auto sim = mpic::MakeUniformSimulation(hw, params);
  std::printf("quickstart: %lld macro-particles on a %dx%dx%d grid, dt = %.3e s\n",
              static_cast<long long>(sim->tiles().TotalLive()), params.nx, params.ny,
              params.nz, sim->dt());

  // 3. Run, collecting per-phase modeled timings.
  const mpic::PhaseCycles before = mpic::SnapshotCycles(hw.ledger());
  sim->Run(steps);
  const mpic::RunReport report =
      mpic::MakeRunReport(hw, before, sim->particles_pushed(), params.order);

  // 4. Report.
  std::printf("\nafter %d steps:\n", steps);
  std::printf("  field energy    : %.3e J\n", mpic::FieldEnergy(sim->fields()));
  std::printf("  kinetic energy  : %.3e J\n", mpic::TotalKineticEnergy(*sim));
  std::printf("  modeled wall    : %.4f s  (deposition %.4f s)\n",
              report.wall_seconds, report.deposition_seconds);
  std::printf("  throughput      : %.3e particles/s\n", report.particles_per_second);
  std::printf("  MOPA instructions issued: %llu\n",
              static_cast<unsigned long long>(hw.ledger().counters().mopas));
  std::printf("  global re-sorts : %lld\n",
              static_cast<long long>(sim->engine().total_global_sorts()));
  return 0;
}

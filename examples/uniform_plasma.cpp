// Uniform plasma study (the paper's controlled workload, Table 4 left column).
//
// Runs the uniform Maxwellian plasma under a chosen deposition variant, shape
// order and particle density, printing a per-step timeline of the modeled
// phase costs plus the sorting policy's decisions. Use it to explore how the
// kernels respond to density and order:
//
//   ./uniform_plasma [variant] [order] [ppc1d] [steps]
//
//   variant: baseline | baseline-sort | rhocell | rhocell-sort | vpu |
//            matrix-only | hybrid-nosort | hybrid-globalsort | fullopt
//   order:   1 (CIC) | 2 (TSC; baseline only) | 3 (QSP)
//   ppc1d:   particles per cell per dimension (total PPC = ppc1d^3)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/diagnostics.h"
#include "src/core/workloads.h"

namespace {

mpic::DepositVariant ParseVariant(const char* name) {
  using mpic::DepositVariant;
  const struct {
    const char* key;
    DepositVariant v;
  } table[] = {
      {"baseline", DepositVariant::kBaseline},
      {"baseline-sort", DepositVariant::kBaselineIncrSort},
      {"rhocell", DepositVariant::kRhocell},
      {"rhocell-sort", DepositVariant::kRhocellIncrSort},
      {"vpu", DepositVariant::kRhocellIncrSortVpu},
      {"matrix-only", DepositVariant::kMatrixOnly},
      {"hybrid-nosort", DepositVariant::kHybridNoSort},
      {"hybrid-globalsort", DepositVariant::kHybridGlobalSort},
      {"fullopt", DepositVariant::kFullOpt},
  };
  for (const auto& entry : table) {
    if (std::strcmp(name, entry.key) == 0) {
      return entry.v;
    }
  }
  std::fprintf(stderr, "unknown variant '%s', using fullopt\n", name);
  return DepositVariant::kFullOpt;
}

}  // namespace

int main(int argc, char** argv) {
  mpic::UniformWorkloadParams params;
  params.variant =
      argc > 1 ? ParseVariant(argv[1]) : mpic::DepositVariant::kFullOpt;
  params.order = argc > 2 ? std::atoi(argv[2]) : 1;
  const int ppc1d = argc > 3 ? std::atoi(argv[3]) : 4;
  const int steps = argc > 4 ? std::atoi(argv[4]) : 8;
  params.nx = params.ny = params.nz = 12;
  params.tile = 12;
  params.ppc_x = params.ppc_y = params.ppc_z = ppc1d;

  mpic::HwContext hw;
  auto sim = mpic::MakeUniformSimulation(hw, params);
  std::printf("uniform_plasma: %s, order %d, PPC %d, %lld particles\n",
              mpic::VariantName(params.variant), params.order,
              ppc1d * ppc1d * ppc1d,
              static_cast<long long>(sim->tiles().TotalLive()));
  std::printf("%5s %12s %12s %12s %12s %10s %8s\n", "step", "preproc(ms)",
              "compute(ms)", "sort(ms)", "gather(ms)", "moved", "decision");

  for (int s = 0; s < steps; ++s) {
    const mpic::PhaseCycles before = mpic::SnapshotCycles(hw.ledger());
    sim->Step();
    const mpic::RunReport r = mpic::MakeRunReport(
        hw, before, sim->tiles().TotalLive(), params.order);
    const auto& stats = sim->last_step_stats();
    auto ms = [&](mpic::Phase p) {
      return r.phase_seconds[static_cast<size_t>(p)] * 1e3;
    };
    std::printf("%5lld %12.4f %12.4f %12.4f %12.4f %10lld %8s\n",
                static_cast<long long>(sim->step_count()), ms(mpic::Phase::kPreproc),
                ms(mpic::Phase::kCompute), ms(mpic::Phase::kSort),
                ms(mpic::Phase::kGather),
                static_cast<long long>(stats.moved_particles),
                mpic::SortDecisionName(stats.decision));
  }

  std::printf("\nfield energy %.3e J, kinetic %.3e J, global sorts %lld\n",
              mpic::FieldEnergy(sim->fields()), mpic::TotalKineticEnergy(*sim),
              static_cast<long long>(sim->engine().total_global_sorts()));
  return 0;
}

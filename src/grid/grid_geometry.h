// Geometry of the structured 3D simulation grid: cell counts, spacing, origin,
// and position<->cell mapping. Shared by fields, particles, and kernels.

#ifndef MPIC_SRC_GRID_GRID_GEOMETRY_H_
#define MPIC_SRC_GRID_GRID_GEOMETRY_H_

#include <cmath>
#include <cstdint>

namespace mpic {

struct GridGeometry {
  int nx = 0, ny = 0, nz = 0;          // cells per axis
  double dx = 1.0, dy = 1.0, dz = 1.0;  // cell size [m]
  double x0 = 0.0, y0 = 0.0, z0 = 0.0;  // position of cell (0,0,0) low corner

  int64_t NumCells() const {
    return static_cast<int64_t>(nx) * ny * nz;
  }
  double LengthX() const { return nx * dx; }
  double LengthY() const { return ny * dy; }
  double LengthZ() const { return nz * dz; }

  // Position in grid units (cells) along each axis; cell index = floor of this.
  double GridX(double x) const { return (x - x0) / dx; }
  double GridY(double y) const { return (y - y0) / dy; }
  double GridZ(double z) const { return (z - z0) / dz; }

  int CellX(double x) const { return static_cast<int>(std::floor(GridX(x))); }
  int CellY(double y) const { return static_cast<int>(std::floor(GridY(y))); }
  int CellZ(double z) const { return static_cast<int>(std::floor(GridZ(z))); }

  // Linear cell id (x fastest), valid for in-domain cells.
  int64_t CellId(int ix, int iy, int iz) const {
    return ix + static_cast<int64_t>(nx) * (iy + static_cast<int64_t>(ny) * iz);
  }

  bool InDomain(double x, double y, double z) const {
    return x >= x0 && x < x0 + LengthX() && y >= y0 && y < y0 + LengthY() &&
           z >= z0 && z < z0 + LengthZ();
  }

  // Wraps a position into the periodic domain along each axis.
  double WrapX(double x) const { return Wrap(x, x0, LengthX()); }
  double WrapY(double y) const { return Wrap(y, y0, LengthY()); }
  double WrapZ(double z) const { return Wrap(z, z0, LengthZ()); }

 private:
  static double Wrap(double v, double lo, double len) {
    double t = std::fmod(v - lo, len);
    if (t < 0.0) {
      t += len;
    }
    return lo + t;
  }
};

}  // namespace mpic

#endif  // MPIC_SRC_GRID_GRID_GEOMETRY_H_

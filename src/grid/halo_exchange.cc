#include "src/grid/halo_exchange.h"

#include "src/common/check.h"

namespace mpic {

void PackZPlanes(const FieldArray& f, int z_begin, int z_count,
                 std::vector<double>& out) {
  MPIC_CHECK(z_begin >= -f.ng() && z_begin + z_count - 1 <= f.nz() + f.ng());
  const int64_t plane = ZPlaneNodes(f);
  const std::vector<double>& data = f.vec();
  for (int k = 0; k < z_count; ++k) {
    const int64_t base = f.Index(-f.ng(), -f.ng(), z_begin + k);
    out.insert(out.end(), data.begin() + base, data.begin() + base + plane);
  }
}

int64_t UnpackZPlanes(FieldArray& f, int z_begin, int z_count,
                      const std::vector<double>& in, int64_t offset) {
  MPIC_CHECK(z_begin >= -f.ng() && z_begin + z_count - 1 <= f.nz() + f.ng());
  const int64_t plane = ZPlaneNodes(f);
  MPIC_CHECK(offset + plane * z_count <= static_cast<int64_t>(in.size()));
  std::vector<double>& data = f.vec();
  for (int k = 0; k < z_count; ++k) {
    const int64_t base = f.Index(-f.ng(), -f.ng(), z_begin + k);
    for (int64_t i = 0; i < plane; ++i) {
      data[static_cast<size_t>(base + i)] = in[static_cast<size_t>(offset)];
      ++offset;
    }
  }
  return offset;
}

}  // namespace mpic

// A 3D node-centered field array with guard cells.
//
// Layout: x fastest, then y, then z (Fortran-like in x). Interior node indices
// run over [0, nx] x [0, ny] x [0, nz]; guard nodes extend `ng` further on each
// side so that order-3 deposition from boundary cells and stencil solves never
// branch. Periodic folding of guard contributions is provided for deposition,
// and guard filling for gather/stencils.

#ifndef MPIC_SRC_GRID_FIELD_ARRAY_H_
#define MPIC_SRC_GRID_FIELD_ARRAY_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace mpic {

class FieldArray {
 public:
  FieldArray() = default;
  // nx/ny/nz are *cell* counts; the array holds (n+1) interior nodes per axis
  // plus ng guard nodes on each side.
  FieldArray(int nx, int ny, int nz, int ng);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  int ng() const { return ng_; }
  // Allocated nodes per axis.
  int sx() const { return sx_; }
  int sy() const { return sy_; }
  int sz() const { return sz_; }

  // Linear index of node (i,j,k); i in [-ng, nx+ng].
  int64_t Index(int i, int j, int k) const {
    MPIC_DCHECK(i >= -ng_ && i <= nx_ + ng_);
    MPIC_DCHECK(j >= -ng_ && j <= ny_ + ng_);
    MPIC_DCHECK(k >= -ng_ && k <= nz_ + ng_);
    return (i + ng_) +
           static_cast<int64_t>(sx_) * ((j + ng_) + static_cast<int64_t>(sy_) * (k + ng_));
  }

  double& At(int i, int j, int k) { return data_[static_cast<size_t>(Index(i, j, k))]; }
  double At(int i, int j, int k) const {
    return data_[static_cast<size_t>(Index(i, j, k))];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  size_t size() const { return data_.size(); }
  std::vector<double>& vec() { return data_; }
  const std::vector<double>& vec() const { return data_; }

  void Fill(double v);

  // Adds guard-node contributions into their periodic images and zeroes the
  // guards (post-deposition step). Node n and node n % N are identified, where
  // N = cells along the axis.
  void FoldGuardsPeriodic();

  // Copies interior values into guard nodes assuming periodicity (pre-gather /
  // pre-stencil step).
  void FillGuardsPeriodic();

  // Sum over interior nodes counting each periodic image once (i in [0, nx-1]).
  double InteriorSumUnique() const;

 private:
  int WrapInterior(int i, int n) const;

  int nx_ = 0, ny_ = 0, nz_ = 0;
  int ng_ = 0;
  int sx_ = 0, sy_ = 0, sz_ = 0;
  std::vector<double> data_;
};

}  // namespace mpic

#endif  // MPIC_SRC_GRID_FIELD_ARRAY_H_

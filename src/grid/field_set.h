// The full set of electromagnetic grid quantities for one PIC domain: E, B on
// the Yee-staggered mesh, current density J, and charge density rho.
//
// All components share one node-centered allocation shape; the *staggering* of
// each component (which half-cell offsets it lives at) is carried by the
// solver's and gather's index arithmetic, following the same convention WarpX
// uses for its nodal-allocated MultiFabs.

#ifndef MPIC_SRC_GRID_FIELD_SET_H_
#define MPIC_SRC_GRID_FIELD_SET_H_

#include "src/grid/field_array.h"
#include "src/grid/grid_geometry.h"

namespace mpic {

struct FieldSet {
  FieldSet(const GridGeometry& geometry, int guard_cells)
      : geom(geometry),
        ex(geometry.nx, geometry.ny, geometry.nz, guard_cells),
        ey(geometry.nx, geometry.ny, geometry.nz, guard_cells),
        ez(geometry.nx, geometry.ny, geometry.nz, guard_cells),
        bx(geometry.nx, geometry.ny, geometry.nz, guard_cells),
        by(geometry.nx, geometry.ny, geometry.nz, guard_cells),
        bz(geometry.nx, geometry.ny, geometry.nz, guard_cells),
        jx(geometry.nx, geometry.ny, geometry.nz, guard_cells),
        jy(geometry.nx, geometry.ny, geometry.nz, guard_cells),
        jz(geometry.nx, geometry.ny, geometry.nz, guard_cells),
        rho(geometry.nx, geometry.ny, geometry.nz, guard_cells) {}

  void ZeroCurrents() {
    jx.Fill(0.0);
    jy.Fill(0.0);
    jz.Fill(0.0);
  }

  GridGeometry geom;
  FieldArray ex, ey, ez;
  FieldArray bx, by, bz;
  FieldArray jx, jy, jz;
  FieldArray rho;
};

}  // namespace mpic

#endif  // MPIC_SRC_GRID_FIELD_SET_H_

#include "src/grid/field_array.h"

#include <algorithm>

namespace mpic {

FieldArray::FieldArray(int nx, int ny, int nz, int ng)
    : nx_(nx),
      ny_(ny),
      nz_(nz),
      ng_(ng),
      sx_(nx + 1 + 2 * ng),
      sy_(ny + 1 + 2 * ng),
      sz_(nz + 1 + 2 * ng) {
  MPIC_CHECK(nx > 0 && ny > 0 && nz > 0 && ng >= 0);
  data_.assign(static_cast<size_t>(sx_) * sy_ * sz_, 0.0);
}

void FieldArray::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

int FieldArray::WrapInterior(int i, int n) const {
  // Maps node index i (possibly in guards, possibly == n) onto [0, n-1],
  // identifying node n with node 0 under periodicity.
  int w = i % n;
  if (w < 0) {
    w += n;
  }
  return w;
}

void FieldArray::FoldGuardsPeriodic() {
  for (int k = -ng_; k <= nz_ + ng_; ++k) {
    for (int j = -ng_; j <= ny_ + ng_; ++j) {
      for (int i = -ng_; i <= nx_ + ng_; ++i) {
        const bool interior_unique =
            i >= 0 && i < nx_ && j >= 0 && j < ny_ && k >= 0 && k < nz_;
        if (interior_unique) {
          continue;
        }
        const double v = At(i, j, k);
        if (v != 0.0) {
          At(WrapInterior(i, nx_), WrapInterior(j, ny_), WrapInterior(k, nz_)) += v;
          At(i, j, k) = 0.0;
        }
      }
    }
  }
  // Re-establish the duplicated boundary nodes (node n == node 0).
  FillGuardsPeriodic();
}

void FieldArray::FillGuardsPeriodic() {
  for (int k = -ng_; k <= nz_ + ng_; ++k) {
    for (int j = -ng_; j <= ny_ + ng_; ++j) {
      for (int i = -ng_; i <= nx_ + ng_; ++i) {
        const bool interior_unique =
            i >= 0 && i < nx_ && j >= 0 && j < ny_ && k >= 0 && k < nz_;
        if (interior_unique) {
          continue;
        }
        At(i, j, k) = At(WrapInterior(i, nx_), WrapInterior(j, ny_), WrapInterior(k, nz_));
      }
    }
  }
}

double FieldArray::InteriorSumUnique() const {
  double sum = 0.0;
  double c = 0.0;
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const double y = At(i, j, k) - c;
        const double t = sum + y;
        c = (t - sum) - y;
        sum = t;
      }
    }
  }
  return sum;
}

}  // namespace mpic

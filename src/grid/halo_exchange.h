// Guard-plane pack/unpack for the modeled multi-rank halo exchange.
//
// The rank decomposition slabs the grid along z (src/hw/rank_topology.h), so
// a rank's halo with its neighbor is a set of constant-z node planes. These
// helpers copy whole z-planes (all sx*sy nodes of a plane, guards included —
// exactly what a neighbor needs to fill its guard region) between a
// FieldArray and a flat message buffer. RankComm (src/core/rank_comm.h) uses
// them to model the pack -> link transfer -> unpack protocol and to verify
// round-trip bit-exactness in tests.
//
// Plane index `k` is in node coordinates, i.e. [-ng, nz + ng].

#ifndef MPIC_SRC_GRID_HALO_EXCHANGE_H_
#define MPIC_SRC_GRID_HALO_EXCHANGE_H_

#include <vector>

#include "src/grid/field_array.h"

namespace mpic {

// Nodes in one z-plane of `f` (guards included along x and y).
inline int64_t ZPlaneNodes(const FieldArray& f) {
  return static_cast<int64_t>(f.sx()) * f.sy();
}

// Appends `z_count` consecutive z-planes starting at node plane `z_begin`
// onto `out` (plane-major, x fastest within a plane).
void PackZPlanes(const FieldArray& f, int z_begin, int z_count,
                 std::vector<double>& out);

// Copies `z_count` planes from `in` (starting at element `offset`) into `f`
// at node plane `z_begin`; returns the number of elements consumed.
int64_t UnpackZPlanes(FieldArray& f, int z_begin, int z_count,
                      const std::vector<double>& in, int64_t offset);

}  // namespace mpic

#endif  // MPIC_SRC_GRID_HALO_EXCHANGE_H_

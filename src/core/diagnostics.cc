#include "src/core/diagnostics.h"

#include <cmath>
#include <sstream>

#include "src/deposit/deposit_scalar.h"
#include "src/deposit/esirkepov.h"
#include "src/particles/species.h"

namespace mpic {

double FieldEnergy(const FieldSet& fields) {
  const GridGeometry& g = fields.geom;
  const double dv = g.dx * g.dy * g.dz;
  double e_energy = 0.0;
  double b_energy = 0.0;
  for (int k = 0; k < g.nz; ++k) {
    for (int j = 0; j < g.ny; ++j) {
      for (int i = 0; i < g.nx; ++i) {
        const double ex = fields.ex.At(i, j, k);
        const double ey = fields.ey.At(i, j, k);
        const double ez = fields.ez.At(i, j, k);
        const double bx = fields.bx.At(i, j, k);
        const double by = fields.by.At(i, j, k);
        const double bz = fields.bz.At(i, j, k);
        e_energy += ex * ex + ey * ey + ez * ez;
        b_energy += bx * bx + by * by + bz * bz;
      }
    }
  }
  return 0.5 * kEpsilon0 * e_energy * dv + 0.5 / kMu0 * b_energy * dv;
}

double KineticEnergy(const TileSet& tiles, const Species& species) {
  const double mc2 = species.mass * kSpeedOfLight * kSpeedOfLight;
  const double inv_c2 = 1.0 / (kSpeedOfLight * kSpeedOfLight);
  double energy = 0.0;
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    const ParticleTile& tile = tiles.tile(t);
    const ParticleSoA& soa = tile.soa();
    for (int32_t pid = 0; pid < tile.num_slots(); ++pid) {
      if (!tile.IsLive(pid)) {
        continue;
      }
      const auto i = static_cast<size_t>(pid);
      const double u2 =
          soa.ux[i] * soa.ux[i] + soa.uy[i] * soa.uy[i] + soa.uz[i] * soa.uz[i];
      const double gamma = std::sqrt(1.0 + u2 * inv_c2);
      energy += soa.w[i] * (gamma - 1.0) * mc2;
    }
  }
  return energy;
}

void SpeciesMomentum(const TileSet& tiles, const Species& species, double out[3]) {
  double px = 0.0, py = 0.0, pz = 0.0;
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    const ParticleTile& tile = tiles.tile(t);
    const ParticleSoA& soa = tile.soa();
    for (int32_t pid = 0; pid < tile.num_slots(); ++pid) {
      if (!tile.IsLive(pid)) {
        continue;
      }
      const auto i = static_cast<size_t>(pid);
      px += soa.w[i] * soa.ux[i];
      py += soa.w[i] * soa.uy[i];
      pz += soa.w[i] * soa.uz[i];
    }
  }
  out[0] = species.mass * px;
  out[1] = species.mass * py;
  out[2] = species.mass * pz;
}

double SpeciesTemperature(const TileSet& tiles, const Species& species) {
  double sw = 0.0;
  double mean[3] = {0.0, 0.0, 0.0};
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    const ParticleTile& tile = tiles.tile(t);
    const ParticleSoA& soa = tile.soa();
    for (int32_t pid = 0; pid < tile.num_slots(); ++pid) {
      if (!tile.IsLive(pid)) {
        continue;
      }
      const auto i = static_cast<size_t>(pid);
      sw += soa.w[i];
      mean[0] += soa.w[i] * soa.ux[i];
      mean[1] += soa.w[i] * soa.uy[i];
      mean[2] += soa.w[i] * soa.uz[i];
    }
  }
  if (sw <= 0.0) {
    return 0.0;
  }
  for (double& m : mean) {
    m /= sw;
  }
  double var = 0.0;
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    const ParticleTile& tile = tiles.tile(t);
    const ParticleSoA& soa = tile.soa();
    for (int32_t pid = 0; pid < tile.num_slots(); ++pid) {
      if (!tile.IsLive(pid)) {
        continue;
      }
      const auto i = static_cast<size_t>(pid);
      const double dx = soa.ux[i] - mean[0];
      const double dy = soa.uy[i] - mean[1];
      const double dz = soa.uz[i] - mean[2];
      var += soa.w[i] * (dx * dx + dy * dy + dz * dz);
    }
  }
  return species.mass * var / (3.0 * sw);
}

FieldArray DepositChargeDensity(Simulation& sim) {
  const GridGeometry& g = sim.fields().geom;
  FieldArray rho(g.nx, g.ny, g.nz, 2);
  for (int sid = 0; sid < sim.num_species(); ++sid) {
    SpeciesBlock& b = sim.block(sid);
    DepositParams dp;
    dp.geom = b.tiles.geom();
    dp.charge = b.species.charge;
    for (int t = 0; t < b.tiles.num_tiles(); ++t) {
      switch (b.engine.config().order) {
        case 1:
          DepositCharge<1>(sim.hw(), b.tiles.tile(t), dp, rho);
          break;
        case 2:
          DepositCharge<2>(sim.hw(), b.tiles.tile(t), dp, rho);
          break;
        case 3:
          DepositCharge<3>(sim.hw(), b.tiles.tile(t), dp, rho);
          break;
        default:
          MPIC_CHECK_MSG(false, "unsupported shape order");
      }
    }
  }
  rho.FoldGuardsPeriodic();
  return rho;
}

void GaussResidualField(const FieldSet& fields, const FieldArray& rho,
                        FieldArray* out) {
  const GridGeometry& g = fields.geom;
  for (int k = 1; k < g.nz - 1; ++k) {
    for (int j = 1; j < g.ny - 1; ++j) {
      for (int i = 1; i < g.nx - 1; ++i) {
        const double div_e =
            (fields.ex.At(i, j, k) - fields.ex.At(i - 1, j, k)) / g.dx +
            (fields.ey.At(i, j, k) - fields.ey.At(i, j - 1, k)) / g.dy +
            (fields.ez.At(i, j, k) - fields.ez.At(i, j, k - 1)) / g.dz;
        out->At(i, j, k) = div_e - rho.At(i, j, k) / kEpsilon0;
      }
    }
  }
}

double MaxResidualChange(const FieldArray& a, const FieldArray& b, double scale) {
  MPIC_CHECK(a.vec().size() == b.vec().size());
  MPIC_CHECK(scale > 0.0);
  double max_change = 0.0;
  for (size_t i = 0; i < a.vec().size(); ++i) {
    max_change = std::max(max_change, std::fabs(a.vec()[i] - b.vec()[i]));
  }
  return max_change / scale;
}

double GaussResidualScale(const FieldArray& rho) {
  double scale = 0.0;
  for (int k = 1; k < rho.nz() - 1; ++k) {
    for (int j = 1; j < rho.ny() - 1; ++j) {
      for (int i = 1; i < rho.nx() - 1; ++i) {
        scale = std::max(scale, std::fabs(rho.At(i, j, k) / kEpsilon0));
      }
    }
  }
  return scale;
}

double TotalKineticEnergy(const Simulation& sim) {
  double energy = 0.0;
  for (int sid = 0; sid < sim.num_species(); ++sid) {
    const SpeciesBlock& b = sim.block(sid);
    energy += KineticEnergy(b.tiles, b.species);
  }
  return energy;
}

PhaseCycles SnapshotCycles(const CostLedger& ledger) {
  PhaseCycles c{};
  for (int p = 0; p < kNumPhases; ++p) {
    c[static_cast<size_t>(p)] = ledger.PhaseCycles(static_cast<Phase>(p));
  }
  return c;
}

RunReport MakeRunReport(const HwContext& hw, const PhaseCycles& before,
                        int64_t particle_steps, int order) {
  RunReport r;
  const PhaseCycles now = SnapshotCycles(hw.ledger());
  double total_cycles = 0.0;
  for (int p = 0; p < kNumPhases; ++p) {
    const double delta = now[static_cast<size_t>(p)] - before[static_cast<size_t>(p)];
    r.phase_seconds[static_cast<size_t>(p)] = hw.cfg().CyclesToSeconds(delta);
    total_cycles += delta;
  }
  r.wall_seconds = hw.cfg().CyclesToSeconds(total_cycles);
  r.deposition_seconds = r.phase_seconds[static_cast<size_t>(Phase::kPreproc)] +
                         r.phase_seconds[static_cast<size_t>(Phase::kCompute)] +
                         r.phase_seconds[static_cast<size_t>(Phase::kSort)] +
                         r.phase_seconds[static_cast<size_t>(Phase::kReduce)];
  r.particle_steps = particle_steps;
  if (r.deposition_seconds > 0.0) {
    r.particles_per_second =
        static_cast<double>(particle_steps) / r.deposition_seconds;
  }
  const double dep_cycles = r.deposition_seconds * hw.cfg().freq_ghz * 1e9;
  if (dep_cycles > 0.0) {
    const double useful_flops =
        CanonicalFlopsPerParticle(order) * static_cast<double>(particle_steps);
    r.peak_efficiency = useful_flops / (dep_cycles * hw.cfg().PeakFlopsPerCycle());
  }
  return r;
}

std::string RunReport::ToString() const {
  std::ostringstream out;
  out << "wall=" << wall_seconds << "s dep=" << deposition_seconds << "s";
  for (int p = 0; p < kNumPhases; ++p) {
    out << " " << PhaseName(static_cast<Phase>(p)) << "="
        << phase_seconds[static_cast<size_t>(p)];
  }
  out << " pps=" << particles_per_second << " eff=" << peak_efficiency;
  return out.str();
}

}  // namespace mpic

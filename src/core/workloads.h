// The paper's two evaluation workloads (Table 4), scaled to simulator size,
// plus a classic two-stream instability scenario exercising the multi-species
// core.
//
// Uniform plasma: homogeneous Maxwellian plasma in a fully periodic box — the
// controlled kernel-efficiency workload (Figures 1, 8, 10; Tables 1-3).
// LWFA: a Gaussian laser driving a wake in a cold background plasma with a
// moving window along z — the realistic application workload (Figure 9).
// Two-stream: two counter-streaming electron beams whose seeded perturbation
// grows at the textbook rate — the multi-species validation workload.
//
// Both paper workloads accept a species list (default: electrons only, which
// preserves the single-species results bit-for-bit); the LWFA workload can add
// a mobile-ion background with `with_ions`.
//
// Grid sizes default to simulator scale (DESIGN.md Sec. 2); the PPC sweep and
// all algorithmic parameters match the paper.

#ifndef MPIC_SRC_CORE_WORKLOADS_H_
#define MPIC_SRC_CORE_WORKLOADS_H_

#include <memory>
#include <vector>

#include "src/core/simulation.h"

namespace mpic {

// Per-species seeding/engine overrides for the uniform workload. Zero (or
// negative, for u_th) values inherit the workload-wide base. Because the
// injector fixes macro-particle weight as density * cell_volume / PPC, a
// species seeded with a lower PPC at the same physical density automatically
// gets proportionally heavier macro-particles — the standard "few heavy
// macro-ions, many light macro-electrons" setup.
struct UniformSpeciesParams {
  Species species = Species::Electron();
  int ppc_x = 0, ppc_y = 0, ppc_z = 0;  // 0 = workload base ppc
  double density = 0.0;                 // 0 = workload base density
  double u_th = -1.0;                   // < 0 = workload base u_th
  // Per-species engine overrides, merged onto the workload-wide engine config
  // like the fields above (e.g. kHybridNoSort for slow heavy ions). Unset
  // values inherit the workload's variant/order/scheme.
  std::optional<DepositVariant> variant;
  int order = 0;  // 0 = workload base order
  std::optional<CurrentScheme> scheme;
};

struct UniformWorkloadParams {
  int nx = 16, ny = 8, nz = 8;
  // Particles per cell per dimension; paper sweeps [1,1,1] .. [8,4,4].
  int ppc_x = 4, ppc_y = 4, ppc_z = 4;
  int order = 1;  // 1 (CIC) or 3 (QSP); the Esirkepov scheme also takes 2 (TSC)
  DepositVariant variant = DepositVariant::kFullOpt;
  // Direct (paper configuration) or charge-conserving Esirkepov deposition.
  CurrentScheme scheme = CurrentScheme::kDirect;
  double density = 1e25;  // m^-3, per species
  double u_th = 0.01;     // thermal proper velocity / c
  int tile = 8;           // particles.tile_size (cubic)
  uint64_t seed = 42;
  // Fused two-pass step pipeline (default) vs. the legacy sweep-per-stage
  // schedule; physics is bit-identical, only modeled cost differs.
  bool fuse_stages = true;
  // Workload-wide re-sort policy override (all triggers, including the
  // adaptive performance trigger, restore bit-exactly: checkpoint v2 carries
  // the trigger's throughput baselines, and the `model_sync` handshake makes
  // the post-restore modeled throughput input identical too — see
  // runtime/checkpoint.h).
  std::optional<ResortPolicyConfig> policy;
  // Every listed species is seeded with the same density/PPC/u_th (e.g.
  // {Electron, Proton} gives a neutral two-species plasma).
  std::vector<Species> species = {Species::Electron()};
  // When non-empty, takes precedence over `species` and carries per-species
  // PPC/density/u_th and engine overrides.
  std::vector<UniformSpeciesParams> species_params;
};

SimulationConfig MakeUniformConfig(const UniformWorkloadParams& p);

// Creates, seeds, and initializes a uniform-plasma simulation.
std::unique_ptr<Simulation> MakeUniformSimulation(HwContext& hw,
                                                  const UniformWorkloadParams& p);

// Bunched beam: a dense 3D-Gaussian electron bunch over a thin uniform
// background in a fully periodic box. Physically this is a beam-driven
// (PWFA-style) drive bunch without a witness; computationally it is the
// load-imbalance stress workload. Unlike the profiled injector (which holds
// PPC constant and encodes density in macro-particle weight), this workload
// modulates the per-cell particle *count* by the density profile at constant
// weight, so a handful of tiles own most of the particle work: the static
// contiguous partition hands nearly all of it to one modeled core while the
// cost-guided work-stealing scheduler spreads it. Parameters default to far
// above 4:1 per-tile particle imbalance (max tile / mean tile).
struct BunchedBeamParams {
  int nx = 16, ny = 16, nz = 16;
  // Particles per cell per dimension *at the bunch peak*.
  int ppc_x = 8, ppc_y = 8, ppc_z = 8;
  int order = 1;
  DepositVariant variant = DepositVariant::kFullOpt;
  CurrentScheme scheme = CurrentScheme::kDirect;
  double density = 1e25;      // bunch peak density, m^-3
  double background = 0.002;  // background density as a fraction of the peak
  // Bunch extent. Wide enough that the bunch spans several tiles per axis (a
  // single indivisible mega-tile would floor the balanced makespan at that
  // tile's own cost), narrow enough that the heavy tiles stay inside one
  // contiguous z-slab of tile indices — the static partition's worst case.
  double sigma_frac = 0.10;       // bunch sigma_z as a fraction of box length
  double sigma_perp_frac = 0.18;  // bunch sigma_x/y as a fraction of box width
  // Bunch center as a fraction of each axis; 0.375 on a 16-cell axis with
  // 4-cell tiles puts the bunch at a tile center, maximizing concentration.
  double center_frac = 0.375;
  double u_drift_z = 0.2;  // bunch proper velocity / c (background is cold)
  double u_th = 0.01;      // thermal spread / c (bunch and background)
  int tile = 4;
  uint64_t seed = 42;
  // See UniformWorkloadParams::fuse_stages / policy.
  bool fuse_stages = true;
  std::optional<ResortPolicyConfig> policy;
};

SimulationConfig MakeBunchedBeamConfig(const BunchedBeamParams& p);
std::unique_ptr<Simulation> MakeBunchedBeamSimulation(HwContext& hw,
                                                      const BunchedBeamParams& p);

// Per-tile live-particle imbalance of a seeded simulation: max over tiles
// divided by mean over tiles (1.0 = perfectly uniform). The bunched-beam
// bench asserts >= 4 here before measuring scheduler gains.
double TileImbalance(const Simulation& sim, int sid);

struct LwfaWorkloadParams {
  int nx = 16, ny = 16, nz = 64;
  int ppc_x = 2, ppc_y = 2, ppc_z = 2;
  DepositVariant variant = DepositVariant::kFullOpt;
  // Direct (paper configuration) or charge-conserving Esirkepov deposition.
  CurrentScheme scheme = CurrentScheme::kDirect;
  double density = 2e23;  // background plasma density, m^-3
  double a0 = 4.0;
  int tile = 8;
  int tile_z = 16;  // paper uses elongated tiles (8 x 8 x 64) for LWFA
  uint64_t seed = 42;
  // See UniformWorkloadParams::fuse_stages.
  bool fuse_stages = true;
  // See UniformWorkloadParams::policy.
  std::optional<ResortPolicyConfig> policy;
  // Adds a mobile-ion background species with the same density profile
  // (charge-neutral plasma; ion motion matters for long pulses / heavy drivers).
  bool with_ions = false;
  Species ion = Species::Proton();
  // Engine override for the ion species. Heavy ions barely change cells per
  // step, so kHybridNoSort or a long fixed re-sort interval avoids paying GPMA
  // maintenance for a species that never churns.
  std::optional<EngineConfig> ion_engine;
};

SimulationConfig MakeLwfaConfig(const LwfaWorkloadParams& p);
std::unique_ptr<Simulation> MakeLwfaSimulation(HwContext& hw,
                                               const LwfaWorkloadParams& p);

// Two-stream instability: two electron beams counter-streaming along z at
// +/- u_drift on a neutralizing immobile background, with a seeded sinusoidal
// velocity perturbation at (roughly) the fastest-growing resolved mode. Field
// energy must grow exponentially until trapping saturates it.
struct TwoStreamParams {
  int nx = 4, ny = 4, nz = 32;
  int ppc_x = 2, ppc_y = 2, ppc_z = 2;
  DepositVariant variant = DepositVariant::kFullOpt;
  double density = 1e25;   // total electron density (m^-3), split over the beams
  double u_drift = 0.05;   // beam proper velocity / c
  double u_perturb = 5e-3; // seeded velocity perturbation amplitude / u_drift
  int tile = 4;
  uint64_t seed = 42;
  // See UniformWorkloadParams::fuse_stages.
  bool fuse_stages = true;
};

std::unique_ptr<Simulation> MakeTwoStreamSimulation(HwContext& hw,
                                                    const TwoStreamParams& p);

// Collisional two-temperature relaxation: a hot electron population and a
// cold equal-mass population of opposite charge (a charge-neutral "pair
// plasma", so the equal masses exchange energy at the full rate and the box
// stays field-quiet), coupled by Takizuka-Abe intra- and inter-species
// Coulomb collisions. The temperatures must converge monotonically toward a
// common value; with u_th_hot == u_th_cold the plasma is in equilibrium and
// the distribution moments must stay stationary.
struct CollisionalRelaxationParams {
  int nx = 8, ny = 8, nz = 8;
  int ppc_x = 2, ppc_y = 2, ppc_z = 2;
  int order = 1;
  DepositVariant variant = DepositVariant::kFullOpt;
  double density = 1e25;   // m^-3, per species
  double u_th_hot = 0.02;  // hot-species thermal proper velocity / c
  double u_th_cold = 0.005;
  // Physical values are ~10-20; the relaxation rate is linear in it, so tests
  // crank it to compress the equilibration into a short run.
  double coulomb_log = 10.0;
  bool intra_species = true;  // hot-hot and cold-cold pairs
  bool inter_species = true;  // hot-cold pair
  // Same workload without the collision operator (ablation baseline).
  bool collisions_enabled = true;
  uint64_t collision_seed = 0xC0111DE5ull;
  int tile = 4;
  uint64_t seed = 42;
  // See UniformWorkloadParams::fuse_stages.
  bool fuse_stages = true;
};

SimulationConfig MakeCollisionalRelaxationConfig(
    const CollisionalRelaxationParams& p);
std::unique_ptr<Simulation> MakeCollisionalRelaxationSimulation(
    HwContext& hw, const CollisionalRelaxationParams& p);

// Randomly permutes the particle order within every tile. Workload builders
// apply this after seeding so that the *memory order* of particles represents
// the steady-state disorder of a long-running simulation rather than the
// perfectly cell-ordered injection lattice; sorting variants then re-establish
// order through their initial global sort, while the never-sorting baselines
// run unsorted — exactly the contrast the paper measures.
void ScrambleParticleOrder(TileSet& tiles, uint64_t seed);

}  // namespace mpic

#endif  // MPIC_SRC_CORE_WORKLOADS_H_

// The paper's two evaluation workloads (Table 4), scaled to simulator size,
// plus a classic two-stream instability scenario exercising the multi-species
// core.
//
// Uniform plasma: homogeneous Maxwellian plasma in a fully periodic box — the
// controlled kernel-efficiency workload (Figures 1, 8, 10; Tables 1-3).
// LWFA: a Gaussian laser driving a wake in a cold background plasma with a
// moving window along z — the realistic application workload (Figure 9).
// Two-stream: two counter-streaming electron beams whose seeded perturbation
// grows at the textbook rate — the multi-species validation workload.
//
// Both paper workloads accept a species list (default: electrons only, which
// preserves the single-species results bit-for-bit); the LWFA workload can add
// a mobile-ion background with `with_ions`.
//
// Grid sizes default to simulator scale (DESIGN.md Sec. 2); the PPC sweep and
// all algorithmic parameters match the paper.

#ifndef MPIC_SRC_CORE_WORKLOADS_H_
#define MPIC_SRC_CORE_WORKLOADS_H_

#include <memory>
#include <vector>

#include "src/core/simulation.h"

namespace mpic {

struct UniformWorkloadParams {
  int nx = 16, ny = 8, nz = 8;
  // Particles per cell per dimension; paper sweeps [1,1,1] .. [8,4,4].
  int ppc_x = 4, ppc_y = 4, ppc_z = 4;
  int order = 1;  // 1 (CIC) or 3 (QSP)
  DepositVariant variant = DepositVariant::kFullOpt;
  double density = 1e25;  // m^-3, per species
  double u_th = 0.01;     // thermal proper velocity / c
  int tile = 8;           // particles.tile_size (cubic)
  uint64_t seed = 42;
  // Every listed species is seeded with the same density/PPC/u_th (e.g.
  // {Electron, Proton} gives a neutral two-species plasma).
  std::vector<Species> species = {Species::Electron()};
};

SimulationConfig MakeUniformConfig(const UniformWorkloadParams& p);

// Creates, seeds, and initializes a uniform-plasma simulation.
std::unique_ptr<Simulation> MakeUniformSimulation(HwContext& hw,
                                                  const UniformWorkloadParams& p);

struct LwfaWorkloadParams {
  int nx = 16, ny = 16, nz = 64;
  int ppc_x = 2, ppc_y = 2, ppc_z = 2;
  DepositVariant variant = DepositVariant::kFullOpt;
  double density = 2e23;  // background plasma density, m^-3
  double a0 = 4.0;
  int tile = 8;
  int tile_z = 16;  // paper uses elongated tiles (8 x 8 x 64) for LWFA
  uint64_t seed = 42;
  // Adds a mobile-ion background species with the same density profile
  // (charge-neutral plasma; ion motion matters for long pulses / heavy drivers).
  bool with_ions = false;
  Species ion = Species::Proton();
};

SimulationConfig MakeLwfaConfig(const LwfaWorkloadParams& p);
std::unique_ptr<Simulation> MakeLwfaSimulation(HwContext& hw,
                                               const LwfaWorkloadParams& p);

// Two-stream instability: two electron beams counter-streaming along z at
// +/- u_drift on a neutralizing immobile background, with a seeded sinusoidal
// velocity perturbation at (roughly) the fastest-growing resolved mode. Field
// energy must grow exponentially until trapping saturates it.
struct TwoStreamParams {
  int nx = 4, ny = 4, nz = 32;
  int ppc_x = 2, ppc_y = 2, ppc_z = 2;
  DepositVariant variant = DepositVariant::kFullOpt;
  double density = 1e25;   // total electron density (m^-3), split over the beams
  double u_drift = 0.05;   // beam proper velocity / c
  double u_perturb = 5e-3; // seeded velocity perturbation amplitude / u_drift
  int tile = 4;
  uint64_t seed = 42;
};

std::unique_ptr<Simulation> MakeTwoStreamSimulation(HwContext& hw,
                                                    const TwoStreamParams& p);

// Randomly permutes the particle order within every tile. Workload builders
// apply this after seeding so that the *memory order* of particles represents
// the steady-state disorder of a long-running simulation rather than the
// perfectly cell-ordered injection lattice; sorting variants then re-establish
// order through their initial global sort, while the never-sorting baselines
// run unsorted — exactly the contrast the paper measures.
void ScrambleParticleOrder(TileSet& tiles, uint64_t seed);

}  // namespace mpic

#endif  // MPIC_SRC_CORE_WORKLOADS_H_

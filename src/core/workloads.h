// The paper's two evaluation workloads (Table 4), scaled to simulator size.
//
// Uniform plasma: homogeneous Maxwellian electron plasma in a fully periodic
// box — the controlled kernel-efficiency workload (Figures 1, 8, 10; Tables
// 1-3). LWFA: a Gaussian laser driving a wake in a cold background plasma with
// a moving window along z — the realistic application workload (Figure 9).
//
// Grid sizes default to simulator scale (DESIGN.md Sec. 2); the PPC sweep and
// all algorithmic parameters match the paper.

#ifndef MPIC_SRC_CORE_WORKLOADS_H_
#define MPIC_SRC_CORE_WORKLOADS_H_

#include <memory>

#include "src/core/simulation.h"

namespace mpic {

struct UniformWorkloadParams {
  int nx = 16, ny = 8, nz = 8;
  // Particles per cell per dimension; paper sweeps [1,1,1] .. [8,4,4].
  int ppc_x = 4, ppc_y = 4, ppc_z = 4;
  int order = 1;  // 1 (CIC) or 3 (QSP)
  DepositVariant variant = DepositVariant::kFullOpt;
  double density = 1e25;  // m^-3
  double u_th = 0.01;     // thermal proper velocity / c
  int tile = 8;           // particles.tile_size (cubic)
  uint64_t seed = 42;
};

SimulationConfig MakeUniformConfig(const UniformWorkloadParams& p);

// Creates, seeds, and initializes a uniform-plasma simulation.
std::unique_ptr<Simulation> MakeUniformSimulation(HwContext& hw,
                                                  const UniformWorkloadParams& p);

struct LwfaWorkloadParams {
  int nx = 16, ny = 16, nz = 64;
  int ppc_x = 2, ppc_y = 2, ppc_z = 2;
  DepositVariant variant = DepositVariant::kFullOpt;
  double density = 2e23;  // background plasma density, m^-3
  double a0 = 4.0;
  int tile = 8;
  int tile_z = 16;  // paper uses elongated tiles (8 x 8 x 64) for LWFA
  uint64_t seed = 42;
};

SimulationConfig MakeLwfaConfig(const LwfaWorkloadParams& p);
std::unique_ptr<Simulation> MakeLwfaSimulation(HwContext& hw,
                                               const LwfaWorkloadParams& p);

// Randomly permutes the particle order within every tile. Workload builders
// apply this after seeding so that the *memory order* of particles represents
// the steady-state disorder of a long-running simulation rather than the
// perfectly cell-ordered injection lattice; sorting variants then re-establish
// order through their initial global sort, while the never-sorting baselines
// run unsorted — exactly the contrast the paper measures.
void ScrambleParticleOrder(TileSet& tiles, uint64_t seed);

}  // namespace mpic

#endif  // MPIC_SRC_CORE_WORKLOADS_H_

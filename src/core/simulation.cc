#include "src/core/simulation.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/hw/parallel_for.h"
#include "src/push/boris_pusher.h"
#include "src/push/field_gather.h"

namespace mpic {

int64_t SimStepStats::TotalLive() const {
  int64_t sum = 0;
  for (const SpeciesStepStats& s : species) {
    sum += s.live;
  }
  return sum;
}

int64_t SimStepStats::TotalPushed() const {
  int64_t sum = 0;
  for (const SpeciesStepStats& s : species) {
    sum += s.pushed;
  }
  return sum;
}

EngineStepStats SimStepStats::Aggregate() const {
  EngineStepStats agg;
  for (const SpeciesStepStats& s : species) {
    agg.moved_particles += s.engine.moved_particles;
    agg.crossed_tiles += s.engine.crossed_tiles;
    agg.gpma_rebuilds += s.engine.gpma_rebuilds;
    agg.global_sorted = agg.global_sorted || s.engine.global_sorted;
    if (static_cast<int>(s.engine.decision) > static_cast<int>(agg.decision)) {
      agg.decision = s.engine.decision;
    }
  }
  return agg;
}

Simulation::Simulation(HwContext& hw, const SimulationConfig& config)
    : hw_(hw),
      config_(config),
      fields_(config.geom, config.guard_cells),
      solver_(config.solver, config.geom) {
  MPIC_CHECK(config.guard_cells >= 2);
  MPIC_CHECK_MSG(!config.species.empty(), "at least one species required");
  for (const SpeciesConfig& sc : config.species) {
    blocks_.push_back(std::make_unique<SpeciesBlock>(
        hw_, sc, config.geom, config.tile_x, config.tile_y, config.tile_z,
        config.engine));
  }
  const GridGeometry& g = config.geom;
  const double min_d = std::min({g.dx, g.dy, g.dz});
  dt_ = config.cfl * solver_.StableCourant() * min_d / kSpeedOfLight;
  if (config.laser_enabled) {
    laser_.emplace(config.laser);
  }
  if (config.moving_window) {
    window_.emplace(config.window_velocity, g.dz);
  }
}

int Simulation::AddSpecies(const SpeciesConfig& config) {
  MPIC_CHECK_MSG(!initialized_, "AddSpecies must precede Initialize()");
  blocks_.push_back(std::make_unique<SpeciesBlock>(
      hw_, config, config_.geom, config_.tile_x, config_.tile_y, config_.tile_z,
      config_.engine));
  config_.species.push_back(config);
  return static_cast<int>(blocks_.size()) - 1;
}

int64_t Simulation::SeedUniformPlasma(const UniformPlasmaConfig& cfg) {
  return SeedUniformPlasma(0, cfg);
}

int64_t Simulation::SeedUniformPlasma(int sid, const UniformPlasmaConfig& cfg) {
  return InjectUniformPlasma(block(sid).tiles, cfg);
}

int64_t Simulation::SeedProfiledPlasma(const ProfiledPlasmaConfig& cfg) {
  return SeedProfiledPlasma(0, cfg);
}

int64_t Simulation::SeedProfiledPlasma(int sid, const ProfiledPlasmaConfig& cfg) {
  return InjectProfiledPlasma(block(sid).tiles, cfg);
}

void Simulation::Initialize() {
  for (auto& b : blocks_) {
    b->gather_scratch.assign(static_cast<size_t>(b->tiles.num_tiles()),
                             GatherScratch{});
    b->engine.Initialize(b->tiles, fields_);
  }
  fields_.ex.FillGuardsPeriodic();
  fields_.ey.FillGuardsPeriodic();
  fields_.ez.FillGuardsPeriodic();
  fields_.bx.FillGuardsPeriodic();
  fields_.by.FillGuardsPeriodic();
  fields_.bz.FillGuardsPeriodic();
  initialized_ = true;
}

int64_t Simulation::particles_pushed() const {
  int64_t sum = 0;
  for (const auto& b : blocks_) {
    sum += b->particles_pushed;
  }
  return sum;
}

template <int Order>
void Simulation::GatherAndPush(SpeciesBlock& block) {
  PushParams pp;
  pp.dt = dt_;
  pp.charge = block.species.charge;
  pp.mass = block.species.mass;
  // Gather and push read the shared fields and write only the tile's SoA and
  // scratch, so tiles fan out over the modeled cores.
  std::vector<PaddedSlot<int64_t>> pushed(static_cast<size_t>(hw_.num_cores()));
  ParallelForTiles(hw_, block.tiles.num_tiles(), [&](HwContext& hw, int worker,
                                                     int t) {
    ParticleTile& tile = block.tiles.tile(t);
    if (tile.num_live() == 0) {
      return;
    }
    GatherScratch& gs = block.gather_scratch[static_cast<size_t>(t)];
    GatherFieldsTile<Order>(hw, tile, fields_, gs);
    PushTileBoris(hw, tile, gs, pp);
    pushed[static_cast<size_t>(worker)].value += tile.num_live();
  });
  block.pushed_last_step = 0;
  for (const PaddedSlot<int64_t>& p : pushed) {
    block.pushed_last_step += p.value;
  }
  block.particles_pushed += block.pushed_last_step;
}

void Simulation::ApplyParticleBoundaries() {
  const bool drop_behind_window = config_.moving_window;
  for (auto& b : blocks_) {
    const GridGeometry& g = b->tiles.geom();
    // Wrapping rewrites the tile's own positions and a window drop only touches
    // the tile's own GPMA and slot stack, so tiles fan out over the cores.
    ParallelForTiles(hw_, b->tiles.num_tiles(), [&](HwContext& hw, int, int t) {
      PhaseScope phase(hw.ledger(), Phase::kOther);
      ParticleTile& tile = b->tiles.tile(t);
      ParticleSoA& soa = tile.soa();
      const int32_t n = tile.num_slots();
      hw.ChargeCycles(static_cast<double>((n + kVpuLanes - 1) / kVpuLanes) * 6.0 /
                      hw.cfg().vpu_pipes);
      for (int32_t pid = 0; pid < n; ++pid) {
        if (!tile.IsLive(pid)) {
          continue;
        }
        const auto i = static_cast<size_t>(pid);
        soa.x[i] = g.WrapX(soa.x[i]);
        soa.y[i] = g.WrapY(soa.y[i]);
        if (drop_behind_window) {
          if (soa.z[i] < g.z0 || soa.z[i] >= g.z0 + g.LengthZ()) {
            b->engine.RemoveParticle(hw, b->tiles, t, pid);
          }
        } else {
          soa.z[i] = g.WrapZ(soa.z[i]);
        }
      }
    });
  }
}

void Simulation::AdvanceWindow() {
  if (!window_.has_value()) {
    return;
  }
  const int shifts = window_->StepsToShift(dt_);
  for (int s = 0; s < shifts; ++s) {
    ShiftWindowZ(hw_, fields_);
    GridGeometry g = config_.geom;
    g.z0 = fields_.geom.z0;
    config_.geom = g;
    for (auto& b : blocks_) {
      b->tiles.SetGeometry(g);
      // Drop particles that fell behind the new window tail.
      {
        PhaseScope phase(hw_.ledger(), Phase::kOther);
        for (int t = 0; t < b->tiles.num_tiles(); ++t) {
          ParticleTile& tile = b->tiles.tile(t);
          const int32_t n = tile.num_slots();
          for (int32_t pid = 0; pid < n; ++pid) {
            if (tile.IsLive(pid) &&
                tile.soa().z[static_cast<size_t>(pid)] < g.z0) {
              b->engine.RemoveParticle(b->tiles, t, pid);
            }
          }
        }
      }
      // Refill the freshly exposed head slab.
      if (b->window_injection.has_value()) {
        ProfiledPlasmaConfig inj = *b->window_injection;
        inj.z_cell_lo = g.nz - 1;
        inj.z_cell_hi = g.nz;
        inj.seed = injection_seed_++;
        std::vector<TileSet::Handle> handles;
        InjectProfiledPlasma(b->tiles, inj, &handles);
        for (const auto& h : handles) {
          b->engine.NotifyParticleAdded(b->tiles, h.tile, h.pid);
        }
      }
    }
  }
}

void Simulation::Step() {
  // Zero current accumulators (once; species accumulate into the shared J).
  {
    PhaseScope phase(hw_.ledger(), Phase::kOther);
    fields_.ZeroCurrents();
    hw_.ChargeBulk(0.0, static_cast<double>(fields_.jx.size()) * 8.0 * 3.0);
  }

  // Each block runs at its own engine's shape order: a species with an
  // EngineConfig override gathers, pushes, and deposits consistently with it.
  for (auto& b : blocks_) {
    switch (b->engine.config().order) {
      case 1:
        GatherAndPush<1>(*b);
        break;
      case 2:
        GatherAndPush<2>(*b);
        break;
      case 3:
        GatherAndPush<3>(*b);
        break;
      default:
        MPIC_CHECK_MSG(false, "unsupported shape order");
    }
  }

  ApplyParticleBoundaries();

  // Deposit every species into the shared J. With one species the engine folds
  // the periodic guards itself (the seed behavior); with several, folding must
  // wait until all species have accumulated, because a fold refills the guards
  // with interior images that a later fold would count again.
  const bool shared_fold = blocks_.size() > 1;
  last_sim_stats_.species.clear();
  for (auto& b : blocks_) {
    SpeciesStepStats ss;
    ss.name = b->species.name;
    ss.engine = b->engine.DepositStep(b->tiles, fields_, b->species.charge,
                                      /*fold_guards=*/!shared_fold);
    ss.pushed = b->pushed_last_step;
    last_sim_stats_.species.push_back(std::move(ss));
  }
  if (shared_fold) {
    DepositionEngine::FoldCurrentGuards(hw_, fields_);
  }
  last_step_stats_ = last_sim_stats_.Aggregate();

  if (laser_.has_value()) {
    laser_->Drive(hw_, fields_, time_);
  }
  AdvanceWindow();

  // Census after the window drop/refill, so `live` reflects the step's end
  // state even on shift steps.
  for (size_t i = 0; i < blocks_.size(); ++i) {
    last_sim_stats_.species[i].live = blocks_[i]->tiles.TotalLive();
  }

  solver_.UpdateB(hw_, fields_, 0.5 * dt_);
  solver_.UpdateE(hw_, fields_, dt_);
  solver_.UpdateB(hw_, fields_, 0.5 * dt_);

  time_ += dt_;
  ++step_count_;
}

void Simulation::Run(int steps) {
  for (int s = 0; s < steps; ++s) {
    Step();
  }
}

}  // namespace mpic

#include "src/core/simulation.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/push/boris_pusher.h"
#include "src/push/field_gather.h"

namespace mpic {

Simulation::Simulation(HwContext& hw, const SimulationConfig& config)
    : hw_(hw),
      config_(config),
      fields_(config.geom, config.guard_cells),
      tiles_(config.geom, config.tile_x, config.tile_y, config.tile_z),
      engine_(hw,
              [&config] {
                EngineConfig ec = config.engine;
                ec.charge = config.species.charge;
                return ec;
              }()),
      solver_(config.solver, config.geom) {
  MPIC_CHECK(config.guard_cells >= 2);
  const GridGeometry& g = config.geom;
  const double min_d = std::min({g.dx, g.dy, g.dz});
  dt_ = config.cfl * solver_.StableCourant() * min_d / kSpeedOfLight;
  if (config.laser_enabled) {
    laser_.emplace(config.laser);
  }
  if (config.moving_window) {
    window_.emplace(config.window_velocity, g.dz);
  }
}

int64_t Simulation::SeedUniformPlasma(const UniformPlasmaConfig& cfg) {
  return InjectUniformPlasma(tiles_, cfg);
}

int64_t Simulation::SeedProfiledPlasma(const ProfiledPlasmaConfig& cfg) {
  return InjectProfiledPlasma(tiles_, cfg);
}

void Simulation::Initialize() {
  gather_scratch_.assign(static_cast<size_t>(tiles_.num_tiles()), GatherScratch{});
  engine_.Initialize(tiles_, fields_);
  fields_.ex.FillGuardsPeriodic();
  fields_.ey.FillGuardsPeriodic();
  fields_.ez.FillGuardsPeriodic();
  fields_.bx.FillGuardsPeriodic();
  fields_.by.FillGuardsPeriodic();
  fields_.bz.FillGuardsPeriodic();
}

template <int Order>
void Simulation::GatherAndPush() {
  PushParams pp;
  pp.dt = dt_;
  pp.charge = config_.species.charge;
  pp.mass = config_.species.mass;
  for (int t = 0; t < tiles_.num_tiles(); ++t) {
    ParticleTile& tile = tiles_.tile(t);
    if (tile.num_live() == 0) {
      continue;
    }
    GatherScratch& gs = gather_scratch_[static_cast<size_t>(t)];
    GatherFieldsTile<Order>(hw_, tile, fields_, gs);
    PushTileBoris(hw_, tile, gs, pp);
    particles_pushed_ += tile.num_live();
  }
}

void Simulation::ApplyParticleBoundaries() {
  PhaseScope phase(hw_.ledger(), Phase::kOther);
  const GridGeometry& g = tiles_.geom();
  const bool drop_behind_window = config_.moving_window;
  for (int t = 0; t < tiles_.num_tiles(); ++t) {
    ParticleTile& tile = tiles_.tile(t);
    ParticleSoA& soa = tile.soa();
    const int32_t n = tile.num_slots();
    hw_.ChargeCycles(static_cast<double>((n + kVpuLanes - 1) / kVpuLanes) * 6.0 /
                     hw_.cfg().vpu_pipes);
    for (int32_t pid = 0; pid < n; ++pid) {
      if (!tile.IsLive(pid)) {
        continue;
      }
      const auto i = static_cast<size_t>(pid);
      soa.x[i] = g.WrapX(soa.x[i]);
      soa.y[i] = g.WrapY(soa.y[i]);
      if (drop_behind_window) {
        if (soa.z[i] < g.z0 || soa.z[i] >= g.z0 + g.LengthZ()) {
          engine_.RemoveParticle(tiles_, t, pid);
        }
      } else {
        soa.z[i] = g.WrapZ(soa.z[i]);
      }
    }
  }
}

void Simulation::AdvanceWindow() {
  if (!window_.has_value()) {
    return;
  }
  const int shifts = window_->StepsToShift(dt_);
  for (int s = 0; s < shifts; ++s) {
    ShiftWindowZ(hw_, fields_);
    GridGeometry g = tiles_.geom();
    g.z0 = fields_.geom.z0;
    tiles_.SetGeometry(g);
    config_.geom = g;
    // Drop particles that fell behind the new window tail.
    {
      PhaseScope phase(hw_.ledger(), Phase::kOther);
      for (int t = 0; t < tiles_.num_tiles(); ++t) {
        ParticleTile& tile = tiles_.tile(t);
        const int32_t n = tile.num_slots();
        for (int32_t pid = 0; pid < n; ++pid) {
          if (tile.IsLive(pid) &&
              tile.soa().z[static_cast<size_t>(pid)] < g.z0) {
            engine_.RemoveParticle(tiles_, t, pid);
          }
        }
      }
    }
    // Refill the freshly exposed head slab.
    if (config_.window_injection.has_value()) {
      ProfiledPlasmaConfig inj = *config_.window_injection;
      inj.z_cell_lo = g.nz - 1;
      inj.z_cell_hi = g.nz;
      inj.seed = injection_seed_++;
      std::vector<TileSet::Handle> handles;
      InjectProfiledPlasma(tiles_, inj, &handles);
      for (const auto& h : handles) {
        engine_.NotifyParticleAdded(tiles_, h.tile, h.pid);
      }
    }
  }
}

void Simulation::Step() {
  // Zero current accumulators.
  {
    PhaseScope phase(hw_.ledger(), Phase::kOther);
    fields_.ZeroCurrents();
    hw_.ChargeBulk(0.0, static_cast<double>(fields_.jx.size()) * 8.0 * 3.0);
  }

  switch (config_.engine.order) {
    case 1:
      GatherAndPush<1>();
      break;
    case 2:
      GatherAndPush<2>();
      break;
    case 3:
      GatherAndPush<3>();
      break;
    default:
      MPIC_CHECK_MSG(false, "unsupported shape order");
  }

  ApplyParticleBoundaries();

  last_step_stats_ = engine_.DepositStep(tiles_, fields_);

  if (laser_.has_value()) {
    laser_->Drive(hw_, fields_, time_);
  }
  AdvanceWindow();

  solver_.UpdateB(hw_, fields_, 0.5 * dt_);
  solver_.UpdateE(hw_, fields_, dt_);
  solver_.UpdateB(hw_, fields_, 0.5 * dt_);

  time_ += dt_;
  ++step_count_;
}

void Simulation::Run(int steps) {
  for (int s = 0; s < steps; ++s) {
    Step();
  }
}

}  // namespace mpic

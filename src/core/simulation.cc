#include "src/core/simulation.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/hw/parallel_for.h"

namespace mpic {

Simulation::Simulation(HwContext& hw, const SimulationConfig& config)
    : hw_(hw),
      config_(config),
      fields_(config.geom, config.guard_cells),
      solver_(config.solver, config.geom),
      pipeline_(hw, config.fuse_stages) {
  MPIC_CHECK(config.guard_cells >= 2);
  MPIC_CHECK_MSG(!config.species.empty(), "at least one species required");
  for (const SpeciesConfig& sc : config.species) {
    blocks_.push_back(std::make_unique<SpeciesBlock>(
        hw_, sc, config.geom, config.tile_x, config.tile_y, config.tile_z,
        config.engine));
  }
  const GridGeometry& g = config.geom;
  const double min_d = std::min({g.dx, g.dy, g.dz});
  dt_ = config.cfl * solver_.StableCourant() * min_d / kSpeedOfLight;
  if (config.laser_enabled) {
    laser_.emplace(config.laser);
  }
  if (config.moving_window) {
    window_.emplace(config.window_velocity, g.dz);
  }
  if (config.health.has_value()) {
    health_.emplace(*config.health);
  }
}

void Simulation::RestoreGeometry(const GridGeometry& g) {
  config_.geom = g;
  fields_.geom = g;
  for (auto& b : blocks_) {
    b->tiles.SetGeometry(g);
  }
}

int Simulation::AddSpecies(const SpeciesConfig& config) {
  MPIC_CHECK_MSG(!initialized_, "AddSpecies must precede Initialize()");
  blocks_.push_back(std::make_unique<SpeciesBlock>(
      hw_, config, config_.geom, config_.tile_x, config_.tile_y, config_.tile_z,
      config_.engine));
  config_.species.push_back(config);
  return static_cast<int>(blocks_.size()) - 1;
}

int64_t Simulation::SeedUniformPlasma(const UniformPlasmaConfig& cfg) {
  return SeedUniformPlasma(0, cfg);
}

int64_t Simulation::SeedUniformPlasma(int sid, const UniformPlasmaConfig& cfg) {
  return InjectUniformPlasma(block(sid).tiles, cfg);
}

int64_t Simulation::SeedProfiledPlasma(const ProfiledPlasmaConfig& cfg) {
  return SeedProfiledPlasma(0, cfg);
}

int64_t Simulation::SeedProfiledPlasma(int sid, const ProfiledPlasmaConfig& cfg) {
  return InjectProfiledPlasma(block(sid).tiles, cfg);
}

void Simulation::Initialize() {
  // The field solver interprets the shared J arrays globally: node-centered
  // (direct deposition, averaged onto the Yee faces) or face-centered
  // (Esirkepov). Species cannot mix the two into one J.
  int n_esirkepov = 0;
  for (auto& b : blocks_) {
    n_esirkepov += b->engine.esirkepov() ? 1 : 0;
  }
  MPIC_CHECK_MSG(n_esirkepov == 0 ||
                     n_esirkepov == static_cast<int>(blocks_.size()),
                 "CurrentScheme must match across species: the shared J is "
                 "either node-centered (direct) or Yee-staggered (Esirkepov)");
  staggered_j_ = n_esirkepov > 0;

  // Modeled multi-rank decomposition: slab-partition the tile grid along z
  // and engage the communication model. Every species shares the tile grid
  // (one global tile_x/y/z in the config), so one RankSet serves them all.
  if (hw_.num_ranks() > 1) {
    const TileSet& t0 = blocks_.front()->tiles;
    rank_set_.emplace(hw_.cfg(), t0.ntx(), t0.nty(), t0.ntz());
    rank_comm_.emplace(hw_, *rank_set_, t0.tile_z());
  }
  for (auto& b : blocks_) {
    b->gather_scratch.assign(static_cast<size_t>(b->tiles.num_tiles()),
                             GatherScratch{});
    if (rank_set_.has_value()) {
      b->engine.AttachRankSet(&*rank_set_);
    }
    b->engine.Initialize(b->tiles, fields_);
    // Pre-size and register the gather staging so the very first step's
    // fan-out already runs against a fully mapped address space.
    for (int t = 0; t < b->tiles.num_tiles(); ++t) {
      ParticleTile& tile = b->tiles.tile(t);
      if (tile.num_live() == 0) {
        continue;
      }
      GatherScratch& gs = b->gather_scratch[static_cast<size_t>(t)];
      gs.Resize(tile.soa().size());
      RegisterGatherRegions(hw_, MemRegionKey(b->mem_owner_id, t, 0), gs);
    }
  }
  fields_.ex.FillGuardsPeriodic();
  fields_.ey.FillGuardsPeriodic();
  fields_.ez.FillGuardsPeriodic();
  fields_.bx.FillGuardsPeriodic();
  fields_.by.FillGuardsPeriodic();
  fields_.bz.FillGuardsPeriodic();

  // Assemble the effective collision pair list: one intra pair per species
  // that opted in, then the configured inter-species pairs. Construction
  // waits until here because the module pairs through the GPMA bins the
  // engines just built.
  CollisionConfig effective = config_.collisions;
  std::vector<CollisionPairConfig> pairs;
  for (size_t sid = 0; sid < config_.species.size(); ++sid) {
    const SpeciesConfig& sc = config_.species[sid];
    if (sc.collide_self) {
      pairs.push_back({static_cast<int>(sid), static_cast<int>(sid),
                       sc.self_coulomb_log});
    }
  }
  pairs.insert(pairs.end(), effective.pairs.begin(), effective.pairs.end());
  effective.pairs = std::move(pairs);
  if (effective.enabled && !effective.pairs.empty()) {
    collide_.emplace(hw_, effective);
    std::vector<SpeciesBlock*> block_ptrs;
    block_ptrs.reserve(blocks_.size());
    for (auto& b : blocks_) {
      block_ptrs.push_back(b.get());
    }
    collide_->Initialize(std::move(block_ptrs));
  }
  initialized_ = true;
}

void Simulation::RegisterModelRegions() {
  for (auto& b : blocks_) {
    b->engine.ReregisterModelRegions(b->tiles, fields_);
    for (int t = 0; t < b->tiles.num_tiles(); ++t) {
      ParticleTile& tile = b->tiles.tile(t);
      if (tile.num_live() == 0) {
        continue;
      }
      GatherScratch& gs = b->gather_scratch[static_cast<size_t>(t)];
      gs.Resize(tile.soa().size());
      RegisterGatherRegions(hw_, MemRegionKey(b->mem_owner_id, t, 0), gs);
    }
  }
  // Collision scratch and the per-step gather/staging refreshes re-register
  // keyed at the top of every step, so they rebuild deterministically on the
  // first step after a sync point without help from here.
}

void Simulation::ModelSyncPoint() {
  MPIC_CHECK_MSG(initialized_, "ModelSyncPoint requires Initialize()");
  hw_.FlushModelCaches();
  hw_.mem().Clear();
  RegisterModelRegions();
}

int64_t Simulation::particles_pushed() const {
  int64_t sum = 0;
  for (const auto& b : blocks_) {
    sum += b->particles_pushed;
  }
  return sum;
}

void Simulation::AdvanceWindow() {
  if (!window_.has_value()) {
    return;
  }
  const int shifts = window_->StepsToShift(dt_);
  for (int s = 0; s < shifts; ++s) {
    {
      // Each rank shifts its own slab of the field arrays concurrently (the
      // slab handoff planes ride the regular halo exchange).
      ScopedRankScale rank_scale(hw_.ledger(), hw_.num_ranks());
      ShiftWindowZ(hw_, fields_);
    }
    GridGeometry g = config_.geom;
    g.z0 = fields_.geom.z0;
    config_.geom = g;
    for (size_t i = 0; i < blocks_.size(); ++i) {
      SpeciesBlock* b = blocks_[i].get();
      int64_t win_dropped = 0;
      int64_t win_injected = 0;
      b->tiles.SetGeometry(g);
      // Drop particles that fell behind the new window tail. Every removal
      // (GPMA remove, slot release) touches only the tile's own structures,
      // so tiles fan out over the modeled cores, each worker charging its own
      // ledger through the RemoveParticle(HwContext&, ...) overload. Drops
      // count into the census the health monitor balances at step end.
      std::vector<PaddedSlot<int64_t>> tail_drops(
          static_cast<size_t>(WorkerSlotCount(hw_)));
      ParallelForTiles(hw_, b->tiles.num_tiles(),
                       [&](HwContext& hw, int worker, int t) {
        PhaseScope phase(hw.ledger(), Phase::kOther);
        ParticleTile& tile = b->tiles.tile(t);
        const ParticleSoA& soa = tile.soa();
        const int32_t n = tile.num_slots();
        // One vector compare per batch of slots against the new tail, plus
        // the z-stream reads.
        hw.ChargeCycles(static_cast<double>((n + kVpuLanes - 1) / kVpuLanes) /
                        hw.cfg().vpu_pipes);
        for (int32_t base = 0; base < n; base += kVpuLanes) {
          const size_t batch =
              static_cast<size_t>(std::min<int32_t>(kVpuLanes, n - base));
          hw.TouchRead(soa.z.data() + base, sizeof(double) * batch);
        }
        for (int32_t pid = 0; pid < n; ++pid) {
          if (tile.IsLive(pid) && soa.z[static_cast<size_t>(pid)] < g.z0) {
            b->engine.RemoveParticle(hw, b->tiles, t, pid);
            ++tail_drops[static_cast<size_t>(worker)].value;
          }
        }
      });
      for (const PaddedSlot<int64_t>& slot : tail_drops) {
        win_dropped += slot.value;
      }
      // Refill the freshly exposed head slab: serial generation into per-tile
      // injection lists (the RNG sequence stays the canonical global cell
      // order), then a tile-parallel insertion sweep mirroring the
      // mover-delivery pattern — every AddParticle and GPMA insert touches
      // only the destination tile's structures, and each tile consumes its
      // list in generation order, so slot assignment is bit-identical to the
      // serial injector for any core/thread count.
      if (b->window_injection.has_value()) {
        ProfiledPlasmaConfig inj = *b->window_injection;
        inj.z_cell_lo = g.nz - 1;
        inj.z_cell_hi = g.nz;
        inj.seed = injection_seed_++;
        const std::vector<std::vector<Particle>> lists =
            BuildProfiledPlasmaTileLists(b->tiles, inj);
        for (const std::vector<Particle>& list : lists) {
          win_injected += static_cast<int64_t>(list.size());
        }
        std::vector<PaddedSlot<int64_t>> rebuilds(
            static_cast<size_t>(WorkerSlotCount(hw_)));
        ParallelForTiles(
            hw_, b->tiles.num_tiles(), [&](HwContext& hw, int worker, int t) {
              ParticleTile& tile = b->tiles.tile(t);
              for (const Particle& p : lists[static_cast<size_t>(t)]) {
                const int32_t pid = tile.AddParticle(p);
                b->engine.NotifyParticleAdded(
                    hw, b->tiles, t, pid,
                    &rebuilds[static_cast<size_t>(worker)].value);
              }
            });
        for (const PaddedSlot<int64_t>& slot : rebuilds) {
          b->engine.AccumulateInjectionRebuilds(slot.value);
        }
      }
      // AdvanceWindow runs after RunParticleStages filled the species stats,
      // so the tail drops and head refills land in the same step's census.
      if (i < last_sim_stats_.species.size()) {
        last_sim_stats_.species[i].dropped += win_dropped;
        last_sim_stats_.species[i].injected += win_injected;
      }
    }
  }
}

void Simulation::Step() {
  StepPipelineInputs in;
  in.dt = dt_;
  in.drop_behind_window = config_.moving_window;
  in.step = step_count_;
  in.collisions = collide_.has_value() ? &*collide_ : nullptr;
  in.health = health_.has_value() ? &*health_ : nullptr;
  in.injector = injector_;
  in.rank_comm = rank_comm_.has_value() ? &*rank_comm_ : nullptr;
  pipeline_.RunParticleStages(in, blocks_, fields_, &last_sim_stats_);
  last_step_stats_ = last_sim_stats_.Aggregate();

  if (laser_.has_value()) {
    laser_->Drive(hw_, fields_, time_);
  }
  AdvanceWindow();

  // Census after the window drop/refill, so `live` reflects the step's end
  // state even on shift steps.
  for (size_t i = 0; i < blocks_.size(); ++i) {
    last_sim_stats_.species[i].live = blocks_[i]->tiles.TotalLive();
  }

  {
    // The field solve is a serial sweep on one rank; on a multi-rank machine
    // each rank sweeps its own z-slab concurrently, so the modeled charge
    // scales by the rank count. The boundary planes each slab needs from its
    // neighbors are settled by the halo exchange below.
    ScopedRankScale rank_scale(hw_.ledger(), hw_.num_ranks());
    solver_.UpdateB(hw_, fields_, 0.5 * dt_);
    solver_.UpdateE(hw_, fields_, dt_, staggered_j_);
    solver_.UpdateB(hw_, fields_, 0.5 * dt_);
  }
  if (rank_comm_.has_value()) {
    rank_comm_->ExchangeFieldHalos(fields_);
  }

  // Step epilogue: the field/census/energy sentinels inspect the post-solve
  // state the next step will consume.
  if (health_.has_value()) {
    health_->FinishStep(*this, &last_sim_stats_);
  }

  time_ += dt_;
  ++step_count_;
}

void Simulation::Run(int steps) {
  for (int s = 0; s < steps; ++s) {
    Step();
  }
}

}  // namespace mpic

#include "src/core/step_pipeline.h"

#include <algorithm>
#include <functional>

#include "src/common/check.h"
#include "src/core/rank_comm.h"
#include "src/particles/species.h"
#include "src/push/boris_pusher.h"
#include "src/push/field_gather.h"
#include "src/runtime/fault_injection.h"

namespace mpic {

int64_t SimStepStats::TotalLive() const {
  int64_t sum = 0;
  for (const SpeciesStepStats& s : species) {
    sum += s.live;
  }
  return sum;
}

int64_t SimStepStats::TotalPushed() const {
  int64_t sum = 0;
  for (const SpeciesStepStats& s : species) {
    sum += s.pushed;
  }
  return sum;
}

EngineStepStats SimStepStats::Aggregate() const {
  EngineStepStats agg;
  for (const SpeciesStepStats& s : species) {
    agg.moved_particles += s.engine.moved_particles;
    agg.crossed_tiles += s.engine.crossed_tiles;
    agg.gpma_rebuilds += s.engine.gpma_rebuilds;
    agg.global_sorted = agg.global_sorted || s.engine.global_sorted;
    if (static_cast<int>(s.engine.decision) > static_cast<int>(agg.decision)) {
      agg.decision = s.engine.decision;
    }
  }
  return agg;
}

namespace {

// Per-tile NUMA home domains for one species this step, derived from last
// step's pass1 owners — the canonical placement anchor: every stage of the
// species touches the same SoA/scratch, so all of a tile's pages home where
// its pass1 ran. Empty when the model has nothing to re-home (flat memory,
// static schedule, or no owner feedback yet); -1 entries leave a tile's
// current homes untouched.
std::vector<int> TileHomeDomains(const HwContext& hw,
                                 const SpeciesBlock& block) {
  std::vector<int> domains;
  const MachineConfig& cfg = hw.cfg();
  if (cfg.num_numa_domains <= 1 ||
      cfg.tile_schedule != TileSchedulePolicy::kCostSteal) {
    return domains;
  }
  const std::vector<int32_t>& owner = block.pass1_costs.owner;
  if (owner.size() != static_cast<size_t>(block.tiles.num_tiles())) {
    return domains;
  }
  const int cores = cfg.num_cores < 1 ? 1 : cfg.num_cores;
  domains.resize(owner.size());
  for (size_t t = 0; t < owner.size(); ++t) {
    const int g = owner[t];
    // Owners are global worker ids (rank * num_cores + core); the domain
    // split is per node, so only the core-within-rank part matters.
    domains[t] = g < 0 ? -1
                       : NumaDomainOfWorker(g % cores, cores,
                                            cfg.num_numa_domains);
  }
  return domains;
}

}  // namespace

// ---- Shared per-tile stages -------------------------------------------------

void StepPipeline::ZeroCurrentsStage(FieldSet& fields) {
  const double bytes = static_cast<double>(fields.jx.size()) * 8.0 * 3.0;
  if (!fuse_stages_ || !ParallelEnabled(hw_)) {
    // Legacy: one serial streaming-store block.
    PhaseScope phase(hw_.ledger(), Phase::kOther);
    fields.ZeroCurrents();
    hw_.ChargeBulk(0.0, bytes);
    return;
  }
  // Dedicated fan-out: each worker (core, or rank x core) zeroes a contiguous
  // chunk of jx/jy/jz (disjoint writes), so the charge overlaps across cores
  // like every other tile-parallel stage instead of serializing at the top of
  // the step.
  const int n = static_cast<int>(fields.jx.size());
  const int chunks = WorkerSlotCount(hw_);
  ParallelForTiles(hw_, chunks, [&](HwContext& hw, int, int c) {
    PhaseScope phase(hw.ledger(), Phase::kOther);
    const TileRange r = WorkerTileRange(n, chunks, c);
    for (FieldArray* f : {&fields.jx, &fields.jy, &fields.jz}) {
      std::fill(f->vec().begin() + r.begin, f->vec().begin() + r.end, 0.0);
    }
    hw.ChargeBulk(0.0, static_cast<double>(r.end - r.begin) * 8.0 * 3.0);
  });
}

void StepPipeline::PrepareTileRegions(SpeciesBlock& block) {
  // On a NUMA machine the serial refresh doubles as the placement pass: each
  // tile's registrations run under its owner's home domain, migrating the
  // tile's SoA/scratch pages to wherever the tile ran last step — which is
  // also where the sticky scheduler will prefer to run it this step.
  const std::vector<int> home = TileHomeDomains(hw_, block);
  block.engine.RefreshTileRegistrations(block.tiles,
                                        home.empty() ? nullptr : &home);
  for (int t = 0; t < block.tiles.num_tiles(); ++t) {
    ParticleTile& tile = block.tiles.tile(t);
    if (tile.num_live() == 0) {
      continue;
    }
    GatherScratch& gs = block.gather_scratch[static_cast<size_t>(t)];
    gs.Resize(tile.soa().size());
    ScopedHomeDomain scope(hw_,
                           home.empty() ? -1 : home[static_cast<size_t>(t)]);
    RegisterGatherRegions(hw_, MemRegionKey(block.mem_owner_id, t, 0), gs);
  }
}

void StepPipeline::CaptureOldPositionsTile(HwContext& hw, ParticleTile& tile) {
  // Pre-push position capture for the Esirkepov scheme: a streaming copy of
  // the three position streams into the old-position lanes, so the deposit
  // stage can form each particle's displacement after push, wrap, and
  // cross-tile migration. Charged with the push it prefixes.
  PhaseScope phase(hw.ledger(), Phase::kPush);
  ParticleSoA& soa = tile.soa();
  const int32_t n = tile.num_slots();
  std::copy(soa.x.begin(), soa.x.end(), soa.xo.begin());
  std::copy(soa.y.begin(), soa.y.end(), soa.yo.begin());
  std::copy(soa.z.begin(), soa.z.end(), soa.zo.begin());
  for (int32_t base = 0; base < n; base += kVpuLanes) {
    const size_t batch =
        static_cast<size_t>(std::min<int32_t>(kVpuLanes, n - base));
    hw.TouchRead(soa.x.data() + base, sizeof(double) * batch);
    hw.TouchRead(soa.y.data() + base, sizeof(double) * batch);
    hw.TouchRead(soa.z.data() + base, sizeof(double) * batch);
    hw.TouchWrite(soa.xo.data() + base, sizeof(double) * batch);
    hw.TouchWrite(soa.yo.data() + base, sizeof(double) * batch);
    hw.TouchWrite(soa.zo.data() + base, sizeof(double) * batch);
    hw.ledger().counters().vpu_mem += 6;
  }
}

void StepPipeline::BoundaryTile(HwContext& hw, SpeciesBlock& block,
                                bool drop_behind_window, int t,
                                int64_t* dropped) {
  PhaseScope phase(hw.ledger(), Phase::kOther);
  const GridGeometry& g = block.tiles.geom();
  ParticleTile& tile = block.tiles.tile(t);
  ParticleSoA& soa = tile.soa();
  // Under the Esirkepov scheme a periodic wrap must shift the old position by
  // the same offset, so the displacement — the physical quantity the scheme
  // deposits — is unchanged by the coordinate jump.
  const bool track_old = block.engine.esirkepov();
  const int32_t n = tile.num_slots();
  hw.ChargeCycles(static_cast<double>((n + kVpuLanes - 1) / kVpuLanes) *
                  (track_old ? 9.0 : 6.0) / hw.cfg().vpu_pipes);
  TouchPositionStreams(hw, soa, n);
  if (track_old) {
    // The old-position lanes stream through alongside (read-modify-write).
    TouchOldPositionStreams(hw, soa, n);
  }
  for (int32_t pid = 0; pid < n; ++pid) {
    if (!tile.IsLive(pid)) {
      continue;
    }
    const auto i = static_cast<size_t>(pid);
    const double wx = g.WrapX(soa.x[i]);
    const double wy = g.WrapY(soa.y[i]);
    if (track_old) {
      soa.xo[i] += wx - soa.x[i];
      soa.yo[i] += wy - soa.y[i];
    }
    soa.x[i] = wx;
    soa.y[i] = wy;
    if (drop_behind_window) {
      if (soa.z[i] < g.z0 || soa.z[i] >= g.z0 + g.LengthZ()) {
        block.engine.RemoveParticle(hw, block.tiles, t, pid);
        if (dropped != nullptr) {
          ++*dropped;
        }
      }
    } else {
      const double wz = g.WrapZ(soa.z[i]);
      if (track_old) {
        soa.zo[i] += wz - soa.z[i];
      }
      soa.z[i] = wz;
    }
  }
}

// ---- Fused two-pass schedule ------------------------------------------------

void StepPipeline::FusedPass1(const StepPipelineInputs& in, SpeciesBlock& block,
                              int sid, const FieldSet& fields,
                              SpeciesStepStats* ss) {
  switch (block.engine.config().order) {
    case 1:
      FusedPass1Impl<1>(in, block, sid, fields, ss);
      break;
    case 2:
      FusedPass1Impl<2>(in, block, sid, fields, ss);
      break;
    case 3:
      FusedPass1Impl<3>(in, block, sid, fields, ss);
      break;
    default:
      MPIC_CHECK_MSG(false, "unsupported shape order");
  }
}

template <int Order>
void StepPipeline::FusedPass1Impl(const StepPipelineInputs& in, SpeciesBlock& block,
                                  int sid, const FieldSet& fields,
                                  SpeciesStepStats* ss) {
  PushParams pp;
  pp.dt = in.dt;
  pp.charge = block.species.charge;
  pp.mass = block.species.mass;
  HealthMonitor* monitor = in.health;
  const bool guards_on = monitor != nullptr && monitor->config().check_particles;
  const GridGeometry& g = block.tiles.geom();
  const double min_d = std::min(g.dx, std::min(g.dy, g.dz));
  // Pre-gather: no particle belongs outside its tile's domain image by more
  // than rounding. Post-push: one step of legitimate motion (< c*dt) plus the
  // same slack, checked before the wrap launders the excursion.
  const double pre_margin = 0.5 * min_d;
  const double post_margin = kSpeedOfLight * in.dt + 0.5 * min_d;
  // One region fuses four stages per tile. Everything is tile-private (the
  // fields are read-only, boundary drops and GPMA mutations touch only the
  // tile's own structures, leavers stage into the tile's mover list), so the
  // fusion changes nothing about which operations run — only their order, and
  // with it the modeled cache residency of the tile's SoA streams. The health
  // guards keep that property: quarantine bytes are per (species, tile), each
  // written by exactly one worker.
  std::vector<PaddedSlot<Pass1Partial>> partials(
      static_cast<size_t>(WorkerSlotCount(hw_)));
  // Under the cost-guided scheduler, feed last step's per-tile cycles in as
  // estimates and capture this step's for the next (kStatic leaves the
  // feedback loop untouched so static runs match the seed model exactly).
  const bool cost_sched =
      hw_.cfg().tile_schedule == TileSchedulePolicy::kCostSteal;
  RegionCosts costs;
  if (cost_sched) {
    costs.estimates = &block.pass1_costs.estimate;
    costs.measured = &block.pass1_costs.measured;
    costs.prev_owners = &block.pass1_costs.owner;
    costs.owners = &block.pass1_costs.owner_measured;
  }
  ParallelForTiles(
      hw_, block.tiles.num_tiles(),
      [&](HwContext& hw, int worker, int t) {
        ParticleTile& tile = block.tiles.tile(t);
        Pass1Partial& part = partials[static_cast<size_t>(worker)].value;
        if (guards_on &&
            !monitor->GuardTileFull(hw, tile, g, pre_margin,
                                    block.species.mass, sid, t, &part.health)) {
          // Quarantined: the poisoned lanes must not reach the gather (a
          // non-finite position indexes the grid) or the sort scan (CellX of
          // NaN is undefined). The tile sits out the whole step.
          return;
        }
        if (tile.num_live() > 0) {
          if (block.engine.esirkepov()) {
            CaptureOldPositionsTile(hw, tile);
          }
          GatherScratch& gs = block.gather_scratch[static_cast<size_t>(t)];
          GatherFieldsTile<Order>(hw, tile, fields, gs);
          PushTileBoris(hw, tile, gs, pp);
          part.pushed += tile.num_live();
          if (guards_on &&
              !monitor->GuardTilePositions(hw, tile, g, post_margin, sid, t,
                                           &part.health)) {
            // Poisoned by this step's push (a bad gathered field): stop
            // before the fmod wrap destroys the evidence.
            return;
          }
        }
        BoundaryTile(hw, block, in.drop_behind_window, t, &part.dropped);
        block.engine.ScanTile(hw, block.tiles, t, &part.scan);
      },
      RegionMerge::kFusedStages, costs);
  if (cost_sched) {
    block.pass1_costs.Commit();
  }

  block.pushed_last_step = 0;
  for (const PaddedSlot<Pass1Partial>& slot : partials) {
    block.pushed_last_step += slot.value.pushed;
    ss->dropped += slot.value.dropped;
    block.engine.AccumulateScan(slot.value.scan, &ss->engine);
    if (monitor != nullptr) {
      monitor->AccumulateTilePartial(slot.value.health);
    }
  }
  block.particles_pushed += block.pushed_last_step;
  ss->pushed = block.pushed_last_step;
}

void StepPipeline::DepositTiles(const StepPipelineInputs& in,
                                SpeciesBlock& block, int sid,
                                FieldSet& fields) {
  DepositionEngine& engine = block.engine;
  TileSet& tiles = block.tiles;
  const double charge = block.species.charge;
  // Quarantined tiles sit out staging, kernel, AND reduction: their scratch
  // (rhocell blocks, Esirkepov buffers) still holds the previous step's
  // accumulation, which a reduce would re-deposit as phantom current.
  const HealthMonitor* monitor = in.health;
  const bool any_q = monitor != nullptr && monitor->AnyQuarantined();
  const auto skip = [&](int t) {
    return any_q && monitor->IsQuarantined(sid, t);
  };

  const bool cost_sched =
      hw_.cfg().tile_schedule == TileSchedulePolicy::kCostSteal;

  // Pass 2: staging + kernel. Rhocell-backed kernels accumulate into
  // tile-private blocks and fan out; the baseline/scalar kernels scatter
  // straight into shared J and stay serial.
  if (ParallelEnabled(hw_) && engine.deposit_is_tile_parallel()) {
    const std::vector<int> home = TileHomeDomains(hw_, block);
    engine.RefreshTileRegistrations(tiles, home.empty() ? nullptr : &home);
    RegionCosts costs;
    if (cost_sched) {
      costs.estimates = &block.deposit_costs.estimate;
      costs.measured = &block.deposit_costs.measured;
      costs.prev_owners = &block.deposit_costs.owner;
      costs.owners = &block.deposit_costs.owner_measured;
    }
    ParallelForTiles(
        hw_, tiles.num_tiles(),
        [&](HwContext& hw, int, int t) {
          if (skip(t)) {
            return;
          }
          engine.StageAndDepositTile(hw, tiles, fields, charge, t);
        },
        RegionMerge::kFusedStages, costs);
    if (cost_sched) {
      block.deposit_costs.Commit();
    }
  } else {
    // Serial deposit (shared-J scatter kernels): on a multi-rank machine each
    // rank sweeps its own domain's tiles concurrently.
    ScopedRankScale rank_scale(hw_.ledger(), hw_.num_ranks());
    for (int t = 0; t < tiles.num_tiles(); ++t) {
      if (skip(t)) {
        continue;
      }
      engine.StageAndDepositTile(hw_, tiles, fields, charge, t);
    }
  }

  // Rhocell -> J reduction on the halo-disjoint colored schedule: tiles of
  // one class write disjoint node sets and fan out; the classes run as
  // sequential barriers, in the same class order the legacy serial sweep
  // uses, so shared halo nodes accumulate identically either way. The cost
  // feedback is tile-indexed across all classes: each class gathers its
  // tiles' estimates into a positional list for the scheduler and scatters
  // the positional measurements back by tile id.
  const bool have_reduce_est =
      cost_sched && block.reduce_costs.estimate.size() ==
                        static_cast<size_t>(tiles.num_tiles());
  const bool have_reduce_own =
      cost_sched && block.reduce_costs.owner.size() ==
                        static_cast<size_t>(tiles.num_tiles());
  if (cost_sched) {
    block.reduce_costs.measured.assign(
        static_cast<size_t>(tiles.num_tiles()), 0.0);
    block.reduce_costs.owner_measured.assign(
        static_cast<size_t>(tiles.num_tiles()), -1);
  }
  std::vector<double> class_est;
  std::vector<double> class_meas;
  std::vector<int32_t> class_own_est;
  std::vector<int32_t> class_own;
  for (const std::vector<int>& color_class : engine.reduce_coloring()) {
    // A singleton class (common under the thin-tile per-coordinate fallback)
    // has nothing to overlap with — run it inline rather than paying a
    // fork/join for a one-tile region.
    if (ParallelEnabled(hw_) && engine.deposit_is_tile_parallel() &&
        color_class.size() > 1) {
      RegionCosts costs;
      if (cost_sched) {
        if (have_reduce_est) {
          class_est.clear();
          for (int t : color_class) {
            class_est.push_back(
                block.reduce_costs.estimate[static_cast<size_t>(t)]);
          }
          costs.estimates = &class_est;
        }
        if (have_reduce_own) {
          class_own_est.clear();
          for (int t : color_class) {
            class_own_est.push_back(
                block.reduce_costs.owner[static_cast<size_t>(t)]);
          }
          costs.prev_owners = &class_own_est;
        }
        costs.measured = &class_meas;
        costs.owners = &class_own;
      }
      ParallelForTileList(
          hw_, color_class,
          [&](HwContext& hw, int, int t) {
            if (skip(t)) {
              return;
            }
            engine.ReduceTile(hw, tiles, fields, t);
          },
          RegionMerge::kPhaseMax, costs);
      if (cost_sched) {
        for (size_t i = 0; i < color_class.size(); ++i) {
          block.reduce_costs.measured[static_cast<size_t>(color_class[i])] =
              class_meas[i];
          block.reduce_costs.owner_measured[static_cast<size_t>(
              color_class[i])] = class_own[i];
        }
      }
    } else {
      for (int t : color_class) {
        if (skip(t)) {
          continue;
        }
        engine.ReduceTile(hw_, tiles, fields, t);
      }
    }
  }
  if (cost_sched) {
    block.reduce_costs.Commit();
  }
}

// ---- Legacy sweep-per-stage schedule ----------------------------------------

void StepPipeline::LegacyGatherAndPush(const StepPipelineInputs& in,
                                       SpeciesBlock& block, int sid,
                                       const FieldSet& fields) {
  switch (block.engine.config().order) {
    case 1:
      LegacyGatherAndPushImpl<1>(in, block, sid, fields);
      break;
    case 2:
      LegacyGatherAndPushImpl<2>(in, block, sid, fields);
      break;
    case 3:
      LegacyGatherAndPushImpl<3>(in, block, sid, fields);
      break;
    default:
      MPIC_CHECK_MSG(false, "unsupported shape order");
  }
}

template <int Order>
void StepPipeline::LegacyGatherAndPushImpl(const StepPipelineInputs& in,
                                           SpeciesBlock& block, int sid,
                                           const FieldSet& fields) {
  PushParams pp;
  pp.dt = in.dt;
  pp.charge = block.species.charge;
  pp.mass = block.species.mass;
  HealthMonitor* monitor = in.health;
  const bool guards_on = monitor != nullptr && monitor->config().check_particles;
  const GridGeometry& g = block.tiles.geom();
  const double min_d = std::min(g.dx, std::min(g.dy, g.dz));
  const double pre_margin = 0.5 * min_d;
  const double post_margin = kSpeedOfLight * in.dt + 0.5 * min_d;
  // Gather and push read the shared fields and write only the tile's SoA and
  // scratch, so tiles fan out over the modeled cores. The guards sit at the
  // same per-tile sites as in the fused schedule.
  std::vector<PaddedSlot<Pass1Partial>> partials(
      static_cast<size_t>(WorkerSlotCount(hw_)));
  ParallelForTiles(hw_, block.tiles.num_tiles(),
                   [&](HwContext& hw, int worker, int t) {
                     ParticleTile& tile = block.tiles.tile(t);
                     Pass1Partial& part =
                         partials[static_cast<size_t>(worker)].value;
                     if (guards_on &&
                         !monitor->GuardTileFull(hw, tile, g, pre_margin,
                                                 block.species.mass, sid, t,
                                                 &part.health)) {
                       return;
                     }
                     if (tile.num_live() == 0) {
                       return;
                     }
                     if (block.engine.esirkepov()) {
                       CaptureOldPositionsTile(hw, tile);
                     }
                     GatherScratch& gs =
                         block.gather_scratch[static_cast<size_t>(t)];
                     GatherFieldsTile<Order>(hw, tile, fields, gs);
                     PushTileBoris(hw, tile, gs, pp);
                     part.pushed += tile.num_live();
                     if (guards_on) {
                       monitor->GuardTilePositions(hw, tile, g, post_margin,
                                                   sid, t, &part.health);
                     }
                   });
  block.pushed_last_step = 0;
  for (const PaddedSlot<Pass1Partial>& p : partials) {
    block.pushed_last_step += p.value.pushed;
    if (monitor != nullptr) {
      monitor->AccumulateTilePartial(p.value.health);
    }
  }
  block.particles_pushed += block.pushed_last_step;
}

void StepPipeline::LegacyBoundaries(const StepPipelineInputs& in,
                                    SpeciesBlock& block, int sid,
                                    int64_t* dropped) {
  // Wrapping rewrites the tile's own positions and a window drop only touches
  // the tile's own GPMA and slot stack, so tiles fan out over the cores.
  // Tiles quarantined by this step's gather/push guards are skipped — the
  // wrap would launder their out-of-bounds evidence and CellX of a
  // non-finite position is undefined.
  const HealthMonitor* monitor = in.health;
  std::vector<PaddedSlot<int64_t>> drops(static_cast<size_t>(WorkerSlotCount(hw_)));
  ParallelForTiles(hw_, block.tiles.num_tiles(),
                   [&](HwContext& hw, int worker, int t) {
                     if (monitor != nullptr && monitor->IsQuarantined(sid, t)) {
                       return;
                     }
                     BoundaryTile(hw, block, in.drop_behind_window, t,
                                  &drops[static_cast<size_t>(worker)].value);
                   });
  for (const PaddedSlot<int64_t>& d : drops) {
    *dropped += d.value;
  }
}

// ---- Step orchestration -----------------------------------------------------

void StepPipeline::RunParticleStages(const StepPipelineInputs& in,
                                     std::vector<std::unique_ptr<SpeciesBlock>>& blocks,
                                     FieldSet& fields, SimStepStats* stats) {
  // Zero current accumulators (once; species accumulate into the shared J).
  ZeroCurrentsStage(fields);

  // Arm the health monitor's quarantine map before the first particle stage.
  if (in.health != nullptr && !blocks.empty()) {
    in.health->BeginStep(static_cast<int>(blocks.size()),
                         blocks[0]->tiles.num_tiles());
  }

  // Every species accumulates into the shared J. With one species the guard
  // fold happens right after its deposit (the seed behavior); with several,
  // folding must wait until all species have accumulated, because a fold
  // refills the guards with interior images that a later fold would count
  // again.
  const bool shared_fold = blocks.size() > 1;
  stats->species.clear();

  if (fuse_stages_) {
    for (size_t sidx = 0; sidx < blocks.size(); ++sidx) {
      SpeciesBlock* b = blocks[sidx].get();
      const int sid = static_cast<int>(sidx);
      SpeciesStepStats ss;
      ss.name = b->species.name;
      PrepareTileRegions(*b);
      b->engine.BeginStep(b->tiles, in.dt);
      const double dep_before = hw_.ledger().DepositionCycles();
      FusedPass1(in, *b, sid, fields, &ss);
      // Fault hook: a lost migration buffer vanishes here, after the scan
      // staged the movers and before the delivery barrier. Deliberately NOT
      // counted into ss.dropped — the loss is silent, which is exactly what
      // the census sentinel exists to catch.
      if (in.injector != nullptr) {
        in.injector->OnMoversStaged(*b, sid, in.step);
      }
      b->engine.DeliverMovers(b->tiles, &ss.engine);
      b->engine.PostScanGlobalSort(b->tiles, fields, &ss.engine);
      DepositTiles(in, *b, sid, fields);
      if (!shared_fold) {
        DepositionEngine::FoldCurrentGuards(hw_, fields);
      }
      // The policy's throughput trigger sees this species' deposition-phase
      // cycles (Preproc+Compute+Sort+Reduce) — the fused analogue of the
      // legacy DepositStep's own cycle window.
      b->engine.FinishStep(b->tiles, fields,
                           hw_.ledger().DepositionCycles() - dep_before,
                           &ss.engine);
      stats->species.push_back(std::move(ss));
    }
  } else {
    // Each block runs at its own engine's shape order: a species with an
    // EngineConfig override gathers, pushes, and deposits consistently with it.
    std::vector<int64_t> dropped(blocks.size(), 0);
    for (size_t sidx = 0; sidx < blocks.size(); ++sidx) {
      PrepareTileRegions(*blocks[sidx]);
      LegacyGatherAndPush(in, *blocks[sidx], static_cast<int>(sidx), fields);
    }
    for (size_t sidx = 0; sidx < blocks.size(); ++sidx) {
      LegacyBoundaries(in, *blocks[sidx], static_cast<int>(sidx),
                       &dropped[sidx]);
    }
    for (size_t sidx = 0; sidx < blocks.size(); ++sidx) {
      SpeciesBlock* b = blocks[sidx].get();
      const int sid = static_cast<int>(sidx);
      SpeciesStepStats ss;
      ss.name = b->species.name;
      ss.dropped = dropped[sidx];
      std::function<bool(int)> skip_tile;
      if (in.health != nullptr && in.health->AnyQuarantined()) {
        const HealthMonitor* monitor = in.health;
        skip_tile = [monitor, sid](int t) {
          return monitor->IsQuarantined(sid, t);
        };
      }
      ss.engine = b->engine.DepositStep(b->tiles, fields, b->species.charge,
                                        /*fold_guards=*/!shared_fold, in.dt,
                                        skip_tile);
      ss.pushed = b->pushed_last_step;
      stats->species.push_back(std::move(ss));
    }
  }

  if (shared_fold) {
    DepositionEngine::FoldCurrentGuards(hw_, fields);
  }

  // Modeled inter-rank communication of the particle stages: the particles
  // whose cross-tile movers crossed a rank boundary (counted per source rank
  // by every species' DeliverMovers) and the guard-plane J contributions the
  // fold just merged across the rank boundaries. Charged under Phase::kComm;
  // physics is untouched (see src/core/rank_comm.h).
  if (in.rank_comm != nullptr) {
    std::vector<int64_t> movers(
        static_cast<size_t>(in.rank_comm->num_ranks()), 0);
    for (const std::unique_ptr<SpeciesBlock>& b : blocks) {
      const std::vector<int64_t>& per_rank =
          b->engine.cross_rank_movers_last_step();
      for (size_t r = 0; r < per_rank.size() && r < movers.size(); ++r) {
        movers[r] += per_rank[r];
      }
    }
    in.rank_comm->ChargeMigration(movers);
    in.rank_comm->ExchangeCurrentHalos(fields);
  }

  // Collision stage (shared by both orchestrations): after every species has
  // deposited, so this step's J reflects the pre-collision momenta, and after
  // the sort barriers, so the GPMA bins hold each cell's current occupants.
  // Scattering rewrites only momenta — positions, slots, and GPMA structures
  // are untouched — making the stage a pure tail that cannot perturb the
  // fused-vs-legacy bit identity of the stages before it.
  if (in.collisions != nullptr) {
    in.collisions->Apply(in.step, in.dt);
    stats->collisions = in.collisions->last_step_stats();
  } else {
    stats->collisions = CollisionStepStats{};
  }
}

}  // namespace mpic

// Diagnostics: energies, per-phase timing reports, throughput and
// peak-efficiency accounting (paper Sec. 5.2.2).

#ifndef MPIC_SRC_CORE_DIAGNOSTICS_H_
#define MPIC_SRC_CORE_DIAGNOSTICS_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/core/simulation.h"
#include "src/grid/field_set.h"
#include "src/hw/cost_ledger.h"
#include "src/hw/hw_context.h"
#include "src/particles/tile_set.h"

namespace mpic {

// Total electromagnetic field energy over the unique interior nodes [J].
double FieldEnergy(const FieldSet& fields);

// Total particle kinetic energy sum(w * (gamma-1) m c^2) [J].
double KineticEnergy(const TileSet& tiles, const Species& species);

// Same, summed across every species block of a simulation.
double TotalKineticEnergy(const Simulation& sim);

// Weighted total momentum sum(w m u) of one species [kg m/s] per component
// (p = m gamma v = m u, so this is exact relativistically).
void SpeciesMomentum(const TileSet& tiles, const Species& species, double out[3]);

// Kinetic temperature proxy of one species [J]: m <|u - <u>|^2> / 3 with
// weighted means (non-relativistic; the collision workloads run at u << c).
double SpeciesTemperature(const TileSet& tiles, const Species& species);

// Nodal charge density of every species, each deposited at its own engine's
// shape order, with periodic guard folding. `rho` is created with the
// simulation's geometry and two guard nodes.
FieldArray DepositChargeDensity(Simulation& sim);

// Fills `out` (same geometry/guards as rho) with the Gauss-law residual
// div E - rho/eps0 over the interior nodes [1, n-1) of each axis (the
// backward difference needs the node below; guard nodes are left at zero).
// Charge conservation diagnostics compare this field at two times: the
// Esirkepov scheme keeps it frozen to rounding, direct deposition lets it
// drift (tests/physics_test.cc, bench_abl_esirkepov).
void GaussResidualField(const FieldSet& fields, const FieldArray& rho,
                        FieldArray* out);

// Max |a - b| over the interior nodes both residual fields cover, divided by
// `scale` (pass e.g. max |rho0|/eps0). The headline charge-conservation
// metric.
double MaxResidualChange(const FieldArray& a, const FieldArray& b, double scale);

// Max |rho|/eps0 over interior nodes — the natural scale for residual drift.
double GaussResidualScale(const FieldArray& rho);

// Snapshot of per-phase ledger cycles, used to diff across a run.
using PhaseCycles = std::array<double, kNumPhases>;
PhaseCycles SnapshotCycles(const CostLedger& ledger);

// Timing report for a run segment, in modeled seconds at the machine clock.
struct RunReport {
  double wall_seconds = 0.0;
  PhaseCycles phase_seconds{};
  // preproc + compute + sort + reduce: the paper's "complete deposition
  // kernel time".
  double deposition_seconds = 0.0;
  int64_t particle_steps = 0;
  // Kernel throughput N_particles / T_deposition (paper Sec. 5.2.2).
  double particles_per_second = 0.0;
  // Fraction of the modeled machine's theoretical peak achieved on the
  // canonical effective work.
  double peak_efficiency = 0.0;

  std::string ToString() const;
};

// Builds a report from ledger deltas. `before` is the snapshot taken at the
// segment start; particle_steps the number of particle-push events in the
// segment; order the deposition order (for the canonical FLOP count).
RunReport MakeRunReport(const HwContext& hw, const PhaseCycles& before,
                        int64_t particle_steps, int order);

}  // namespace mpic

#endif  // MPIC_SRC_CORE_DIAGNOSTICS_H_

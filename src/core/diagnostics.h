// Diagnostics: energies, per-phase timing reports, throughput and
// peak-efficiency accounting (paper Sec. 5.2.2).

#ifndef MPIC_SRC_CORE_DIAGNOSTICS_H_
#define MPIC_SRC_CORE_DIAGNOSTICS_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/core/simulation.h"
#include "src/grid/field_set.h"
#include "src/hw/cost_ledger.h"
#include "src/hw/hw_context.h"
#include "src/particles/tile_set.h"

namespace mpic {

// Total electromagnetic field energy over the unique interior nodes [J].
double FieldEnergy(const FieldSet& fields);

// Total particle kinetic energy sum(w * (gamma-1) m c^2) [J].
double KineticEnergy(const TileSet& tiles, const Species& species);

// Same, summed across every species block of a simulation.
double TotalKineticEnergy(const Simulation& sim);

// Weighted total momentum sum(w m u) of one species [kg m/s] per component
// (p = m gamma v = m u, so this is exact relativistically).
void SpeciesMomentum(const TileSet& tiles, const Species& species, double out[3]);

// Kinetic temperature proxy of one species [J]: m <|u - <u>|^2> / 3 with
// weighted means (non-relativistic; the collision workloads run at u << c).
double SpeciesTemperature(const TileSet& tiles, const Species& species);

// Snapshot of per-phase ledger cycles, used to diff across a run.
using PhaseCycles = std::array<double, kNumPhases>;
PhaseCycles SnapshotCycles(const CostLedger& ledger);

// Timing report for a run segment, in modeled seconds at the machine clock.
struct RunReport {
  double wall_seconds = 0.0;
  PhaseCycles phase_seconds{};
  // preproc + compute + sort + reduce: the paper's "complete deposition
  // kernel time".
  double deposition_seconds = 0.0;
  int64_t particle_steps = 0;
  // Kernel throughput N_particles / T_deposition (paper Sec. 5.2.2).
  double particles_per_second = 0.0;
  // Fraction of the modeled machine's theoretical peak achieved on the
  // canonical effective work.
  double peak_efficiency = 0.0;

  std::string ToString() const;
};

// Builds a report from ledger deltas. `before` is the snapshot taken at the
// segment start; particle_steps the number of particle-push events in the
// segment; order the deposition order (for the canonical FLOP count).
RunReport MakeRunReport(const HwContext& hw, const PhaseCycles& before,
                        int64_t particle_steps, int order);

}  // namespace mpic

#endif  // MPIC_SRC_CORE_DIAGNOSTICS_H_

// The deposition configurations evaluated in the paper (Sec. 5.2.1), expressed
// as a variant enum plus derived execution traits.
//
// Ablation set (Fig. 10):   kBaseline, kMatrixOnly, kHybridNoSort,
//                           kHybridGlobalSort, kFullOpt.
// VPU comparison set (T1/2): kBaseline, kBaselineIncrSort, kRhocell,
//                           kRhocellIncrSort, kRhocellIncrSortVpu, kFullOpt.

#ifndef MPIC_SRC_CORE_DEPOSIT_VARIANT_H_
#define MPIC_SRC_CORE_DEPOSIT_VARIANT_H_

namespace mpic {

enum class DepositVariant {
  kScalar,              // plain scalar loop (reference)
  kBaseline,            // WarpX auto-vectorized kernel, unsorted
  kBaselineIncrSort,    // baseline kernel + incremental sorting
  kRhocell,             // compiler-vectorized rhocell, unsorted
  kRhocellIncrSort,     // compiler-vectorized rhocell + incremental sorting
  kRhocellIncrSortVpu,  // hand-tuned VPU rhocell + incremental sorting
  kMatrixOnly,          // MPU kernel with scalar staging + incremental sorting
  kHybridNoSort,        // hybrid VPU-MPU kernel, no sorting (pairwise tiles)
  kHybridGlobalSort,    // hybrid kernel + full global sort every step
  kFullOpt,             // MatrixPIC: hybrid kernel + incremental sort + policy
};

// Which current deposition the engine runs — orthogonal to DepositVariant.
// The variant picks the execution machinery (sorting, staging cost profile,
// kernel); the scheme picks the physics of how J is formed from the particles:
//
//   kDirect    — J from the instantaneous velocity, q*v*S(x). Fast and the
//                paper's configuration, but it does not satisfy the discrete
//                continuity equation, so div E - rho/eps0 drifts over time.
//   kEsirkepov — charge-conserving density decomposition (Esirkepov, CPC 135,
//                2001): J from each particle's *motion* between its pre-push
//                and post-push position, so (rho_new - rho_old)/dt + div J = 0
//                holds to rounding for any shape order. Requires the pipeline
//                to capture pre-push positions (ParticleSoA old-position
//                lanes) and replaces the variant's J kernel with the staged
//                tile-local Esirkepov kernel; the variant's sort machinery,
//                staging cost profile, and re-sort policy still apply.
enum class CurrentScheme {
  kDirect,
  kEsirkepov,
};

enum class SortMode {
  kNone,
  kIncremental,     // GPMA maintenance + adaptive global resort policy
  kGlobalEachStep,  // counting sort of every tile every step
};

enum class StagingKind {
  kScalarLoop,  // models compiler-emitted staging
  kVpu,         // hand-vectorized staging
  kNone,        // kernel stages internally (scalar reference)
};

enum class KernelKind {
  kScalarReference,
  kBaselineScatter,
  kRhocellAutoVec,
  kRhocellVpu,
  kMpu,
};

struct VariantTraits {
  SortMode sort_mode = SortMode::kNone;
  StagingKind staging = StagingKind::kScalarLoop;
  KernelKind kernel = KernelKind::kBaselineScatter;
  // Kernel iterates cell-by-cell through the GPMA (requires a sort mode that
  // keeps the GPMA valid).
  bool sorted_iteration = false;
  bool uses_rhocell = false;
  bool uses_mpu = false;
};

VariantTraits TraitsOf(DepositVariant v);
const char* VariantName(DepositVariant v);
const char* CurrentSchemeName(CurrentScheme s);

}  // namespace mpic

#endif  // MPIC_SRC_CORE_DEPOSIT_VARIANT_H_

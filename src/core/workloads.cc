#include "src/core/workloads.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace mpic {

void ScrambleParticleOrder(TileSet& tiles, uint64_t seed) {
  Rng rng(seed);
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    ParticleTile& tile = tiles.tile(t);
    ParticleSoA& soa = tile.soa();
    const int32_t n = tile.num_slots();
    // Fisher-Yates over the slots; workload builders scramble before any
    // removal, so every slot is live.
    for (int32_t i = n - 1; i > 0; --i) {
      const auto j = static_cast<int32_t>(rng.NextBelow(static_cast<uint64_t>(i) + 1));
      if (i != j) {
        const Particle a = soa.Get(i);
        soa.Set(i, soa.Get(j));
        soa.Set(j, a);
      }
    }
  }
}

namespace {

// Normalizes the two species-listing mechanisms of UniformWorkloadParams into
// per-species seeding parameters with base values filled in.
std::vector<UniformSpeciesParams> EffectiveUniformSpecies(
    const UniformWorkloadParams& p) {
  std::vector<UniformSpeciesParams> out;
  if (p.species_params.empty()) {
    for (const Species& s : p.species) {
      UniformSpeciesParams sp;
      sp.species = s;
      out.push_back(sp);
    }
  } else {
    out = p.species_params;
  }
  for (UniformSpeciesParams& sp : out) {
    if (sp.ppc_x <= 0) sp.ppc_x = p.ppc_x;
    if (sp.ppc_y <= 0) sp.ppc_y = p.ppc_y;
    if (sp.ppc_z <= 0) sp.ppc_z = p.ppc_z;
    if (sp.density <= 0.0) sp.density = p.density;
    if (sp.u_th < 0.0) sp.u_th = p.u_th;
  }
  return out;
}

}  // namespace

SimulationConfig MakeUniformConfig(const UniformWorkloadParams& p) {
  MPIC_CHECK_MSG(!p.species.empty() || !p.species_params.empty(),
                 "uniform workload needs >= 1 species");
  SimulationConfig cfg;
  cfg.geom.nx = p.nx;
  cfg.geom.ny = p.ny;
  cfg.geom.nz = p.nz;
  // Cell size chosen so omega_p * dt ~ 0.17 at CFL 0.95 for the default
  // density (plasma oscillations resolved; benches run a handful of steps).
  cfg.geom.dx = cfg.geom.dy = cfg.geom.dz = 3.0e-7;
  cfg.geom.x0 = cfg.geom.y0 = cfg.geom.z0 = 0.0;
  cfg.tile_x = cfg.tile_y = cfg.tile_z = p.tile;
  cfg.engine.variant = p.variant;
  cfg.engine.order = p.order;
  cfg.engine.current_scheme = p.scheme;
  if (p.policy.has_value()) {
    cfg.engine.policy = *p.policy;
  }
  cfg.species.clear();
  for (const UniformSpeciesParams& sp : EffectiveUniformSpecies(p)) {
    // Overrides merge onto the workload-wide engine config field by field, so
    // e.g. a variant-only override still runs at the workload's shape order.
    std::optional<EngineConfig> engine;
    if (sp.variant.has_value() || sp.order > 0 || sp.scheme.has_value()) {
      EngineConfig e = cfg.engine;
      if (sp.variant.has_value()) e.variant = *sp.variant;
      if (sp.order > 0) e.order = sp.order;
      if (sp.scheme.has_value()) e.current_scheme = *sp.scheme;
      engine = e;
    }
    SpeciesConfig sc;
    sc.species = sp.species;
    sc.engine = engine;
    cfg.species.push_back(sc);
  }
  cfg.cfl = 0.95;
  cfg.solver = SolverKind::kCkc;
  cfg.fuse_stages = p.fuse_stages;
  return cfg;
}

std::unique_ptr<Simulation> MakeUniformSimulation(HwContext& hw,
                                                  const UniformWorkloadParams& p) {
  auto sim = std::make_unique<Simulation>(hw, MakeUniformConfig(p));
  const std::vector<UniformSpeciesParams> species = EffectiveUniformSpecies(p);
  for (int sid = 0; sid < sim->num_species(); ++sid) {
    const UniformSpeciesParams& sp = species[static_cast<size_t>(sid)];
    UniformPlasmaConfig plasma;
    plasma.ppc_x = sp.ppc_x;
    plasma.ppc_y = sp.ppc_y;
    plasma.ppc_z = sp.ppc_z;
    plasma.density = sp.density;
    plasma.u_th = sp.u_th;
    // Species 0 keeps the historical seeds so the electron-only results are
    // reproduced bit-for-bit; extra species decorrelate by offset.
    plasma.seed = p.seed + static_cast<uint64_t>(sid);
    sim->SeedUniformPlasma(sid, plasma);
    ScrambleParticleOrder(sim->block(sid).tiles,
                          (p.seed ^ 0xABCD) + static_cast<uint64_t>(sid));
  }
  sim->Initialize();
  return sim;
}

SimulationConfig MakeBunchedBeamConfig(const BunchedBeamParams& p) {
  SimulationConfig cfg;
  cfg.geom.nx = p.nx;
  cfg.geom.ny = p.ny;
  cfg.geom.nz = p.nz;
  cfg.geom.dx = cfg.geom.dy = cfg.geom.dz = 3.0e-7;
  cfg.geom.x0 = cfg.geom.y0 = cfg.geom.z0 = 0.0;
  cfg.tile_x = cfg.tile_y = cfg.tile_z = p.tile;
  cfg.engine.variant = p.variant;
  cfg.engine.order = p.order;
  cfg.engine.current_scheme = p.scheme;
  if (p.policy.has_value()) {
    cfg.engine.policy = *p.policy;
  }
  cfg.cfl = 0.95;
  cfg.solver = SolverKind::kCkc;
  cfg.fuse_stages = p.fuse_stages;
  cfg.species = {SpeciesConfig{}};  // one electron species: bunch + background
  return cfg;
}

std::unique_ptr<Simulation> MakeBunchedBeamSimulation(HwContext& hw,
                                                      const BunchedBeamParams& p) {
  MPIC_CHECK_MSG(p.sigma_frac > 0.0 && p.sigma_perp_frac > 0.0 &&
                     p.background >= 0.0,
                 "bunched beam needs sigma > 0 and background >= 0");
  SimulationConfig cfg = MakeBunchedBeamConfig(p);
  auto sim = std::make_unique<Simulation>(hw, cfg);
  const GridGeometry& g = cfg.geom;
  const double xc = g.x0 + p.center_frac * g.LengthX();
  const double yc = g.y0 + p.center_frac * g.LengthY();
  const double zc = g.z0 + p.center_frac * g.LengthZ();
  const double sx = p.sigma_perp_frac * g.LengthX();
  const double sy = p.sigma_perp_frac * g.LengthY();
  const double sz = p.sigma_frac * g.LengthZ();
  const auto envelope = [&](double x, double y, double z) {
    const double ex = (x - xc) / sx;
    const double ey = (y - yc) / sy;
    const double ez = (z - zc) / sz;
    return std::exp(-0.5 * (ex * ex + ey * ey + ez * ez));
  };
  // Count-modulated seeding at constant macro-particle weight: each cell gets
  // round(ppc * (envelope + background)) particles, uniformly placed within
  // the cell, so per-tile particle counts follow the density profile (the
  // point of the workload) instead of being flattened into weights. One
  // sequential RNG stream over the canonical cell order keeps the seeding
  // deterministic and independent of tiling.
  const int ppc = p.ppc_x * p.ppc_y * p.ppc_z;
  MPIC_CHECK(ppc > 0);
  const double weight = p.density * g.dx * g.dy * g.dz / ppc;
  const double u_th = p.u_th * kSpeedOfLight;
  const double u_drift = p.u_drift_z * kSpeedOfLight;
  TileSet& tiles = sim->block(0).tiles;
  Rng rng(p.seed);
  for (int iz = 0; iz < g.nz; ++iz) {
    for (int iy = 0; iy < g.ny; ++iy) {
      for (int ix = 0; ix < g.nx; ++ix) {
        const double cell_env = envelope(g.x0 + (ix + 0.5) * g.dx,
                                         g.y0 + (iy + 0.5) * g.dy,
                                         g.z0 + (iz + 0.5) * g.dz);
        const int count = static_cast<int>(
            std::llround(ppc * (cell_env + p.background)));
        for (int k = 0; k < count; ++k) {
          Particle part;
          part.x = g.x0 + (ix + rng.NextDouble()) * g.dx;
          part.y = g.y0 + (iy + rng.NextDouble()) * g.dy;
          part.z = g.z0 + (iz + rng.NextDouble()) * g.dz;
          // The drift belongs to the bunch, not the background: weight it by
          // the local envelope so core particles stream at u_drift_z while
          // the far background stays thermally at rest.
          part.ux = u_th * rng.NextGaussian();
          part.uy = u_th * rng.NextGaussian();
          part.uz = u_th * rng.NextGaussian() +
                    u_drift * envelope(part.x, part.y, part.z);
          part.w = weight;
          tiles.AddParticle(part);
        }
      }
    }
  }
  ScrambleParticleOrder(tiles, p.seed ^ 0xABCD);
  sim->Initialize();
  return sim;
}

double TileImbalance(const Simulation& sim, int sid) {
  const TileSet& tiles = sim.block(sid).tiles;
  const int n = tiles.num_tiles();
  if (n == 0) return 1.0;
  int64_t max_live = 0;
  int64_t total = 0;
  for (int t = 0; t < n; ++t) {
    const int64_t live = tiles.tile(t).num_live();
    max_live = std::max(max_live, live);
    total += live;
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / static_cast<double>(n);
  return static_cast<double>(max_live) / mean;
}

SimulationConfig MakeLwfaConfig(const LwfaWorkloadParams& p) {
  SimulationConfig cfg;
  cfg.geom.nx = p.nx;
  cfg.geom.ny = p.ny;
  cfg.geom.nz = p.nz;
  // Longitudinal resolution: ~16 cells per 0.8 um laser wavelength; transverse
  // cells 4x coarser (standard LWFA gridding).
  cfg.geom.dz = 0.8e-6 / 16.0;
  cfg.geom.dx = cfg.geom.dy = 4.0 * cfg.geom.dz;
  cfg.geom.x0 = cfg.geom.y0 = 0.0;
  cfg.geom.z0 = 0.0;
  cfg.tile_x = cfg.tile_y = p.tile;
  cfg.tile_z = p.tile_z;
  cfg.engine.variant = p.variant;
  cfg.engine.order = 1;  // paper: LWFA uses the CIC scheme
  cfg.engine.current_scheme = p.scheme;
  if (p.policy.has_value()) {
    cfg.engine.policy = *p.policy;
  }
  cfg.cfl = 0.98;
  cfg.solver = SolverKind::kCkc;
  cfg.fuse_stages = p.fuse_stages;

  cfg.laser_enabled = true;
  cfg.laser.a0 = p.a0;
  cfg.laser.wavelength = 0.8e-6;
  cfg.laser.waist = 0.25 * p.nx * cfg.geom.dx;
  cfg.laser.duration = 8.0e-15;
  cfg.laser.t_peak = 2.5e-14;
  cfg.laser.antenna_cell_z = 2;

  cfg.moving_window = true;
  cfg.window_velocity = kSpeedOfLight;

  ProfiledPlasmaConfig inj;
  inj.ppc_x = p.ppc_x;
  inj.ppc_y = p.ppc_y;
  inj.ppc_z = p.ppc_z;
  const double density = p.density;
  const double ramp_end = 10.0 * cfg.geom.dz;
  inj.profile = [density, ramp_end](double z) {
    if (z < ramp_end) {
      return density * std::max(0.0, z / ramp_end);
    }
    return density;
  };
  inj.u_th = 0.0;
  inj.seed = p.seed;
  cfg.species.clear();
  SpeciesConfig electrons;
  electrons.window_injection = inj;
  cfg.species.push_back(electrons);
  if (p.with_ions) {
    // Same density profile: a charge-neutral background whose ions also move.
    SpeciesConfig ions;
    ions.species = p.ion;
    ions.window_injection = inj;
    ions.engine = p.ion_engine;
    cfg.species.push_back(ions);
  }
  return cfg;
}

std::unique_ptr<Simulation> MakeLwfaSimulation(HwContext& hw,
                                               const LwfaWorkloadParams& p) {
  SimulationConfig cfg = MakeLwfaConfig(p);
  auto sim = std::make_unique<Simulation>(hw, cfg);
  for (int sid = 0; sid < sim->num_species(); ++sid) {
    MPIC_CHECK(cfg.species[static_cast<size_t>(sid)].window_injection.has_value());
    ProfiledPlasmaConfig seed_cfg =
        *cfg.species[static_cast<size_t>(sid)].window_injection;
    seed_cfg.z_cell_lo = 0;
    seed_cfg.z_cell_hi = cfg.geom.nz;
    seed_cfg.seed += static_cast<uint64_t>(sid);
    sim->SeedProfiledPlasma(sid, seed_cfg);
    ScrambleParticleOrder(sim->block(sid).tiles,
                          (p.seed ^ 0xABCD) + static_cast<uint64_t>(sid));
  }
  sim->Initialize();
  return sim;
}

std::unique_ptr<Simulation> MakeTwoStreamSimulation(HwContext& hw,
                                                    const TwoStreamParams& p) {
  MPIC_CHECK_MSG(p.u_drift > 0.0, "two-stream needs a positive beam drift");
  SimulationConfig cfg;
  cfg.geom.nx = p.nx;
  cfg.geom.ny = p.ny;
  cfg.geom.nz = p.nz;
  cfg.geom.dx = cfg.geom.dy = cfg.geom.dz = 3.0e-7;
  cfg.geom.x0 = cfg.geom.y0 = cfg.geom.z0 = 0.0;
  cfg.tile_x = cfg.tile_y = cfg.tile_z = p.tile;
  cfg.engine.variant = p.variant;
  cfg.engine.order = 1;
  cfg.cfl = 0.95;
  cfg.solver = SolverKind::kCkc;
  cfg.fuse_stages = p.fuse_stages;
  cfg.species.clear();
  SpeciesConfig fwd;
  fwd.species = Species{"e_beam_fwd", kElectronCharge, kElectronMass};
  SpeciesConfig bwd;
  bwd.species = Species{"e_beam_bwd", kElectronCharge, kElectronMass};
  cfg.species.push_back(fwd);
  cfg.species.push_back(bwd);
  auto sim = std::make_unique<Simulation>(hw, cfg);

  for (int sid = 0; sid < 2; ++sid) {
    UniformPlasmaConfig beam;
    beam.ppc_x = p.ppc_x;
    beam.ppc_y = p.ppc_y;
    beam.ppc_z = p.ppc_z;
    beam.density = 0.5 * p.density;  // beams split the total electron density
    beam.u_th = 0.0;
    beam.u_drift_z = sid == 0 ? p.u_drift : -p.u_drift;
    beam.seed = p.seed + static_cast<uint64_t>(sid);
    sim->SeedUniformPlasma(sid, beam);
  }

  // Seed the instability at (approximately) the fastest-growing mode,
  // k v0 ~ 0.7 omega_p, clamped to wavelengths the grid resolves.
  const double omega_p =
      std::sqrt(p.density * kElectronCharge * kElectronCharge /
                (kEpsilon0 * kElectronMass));
  const double gamma0 = std::sqrt(1.0 + p.u_drift * p.u_drift);
  const double v0 = p.u_drift * kSpeedOfLight / gamma0;
  const GridGeometry& g = sim->config().geom;
  const double lz = g.LengthZ();
  const int mode = std::clamp(
      static_cast<int>(std::lround(0.7 * omega_p / v0 * lz / (2.0 * M_PI))), 1,
      std::max(1, p.nz / 8));
  const double k = 2.0 * M_PI * mode / lz;
  const double amp = p.u_perturb * p.u_drift * kSpeedOfLight;
  for (int sid = 0; sid < 2; ++sid) {
    TileSet& tiles = sim->block(sid).tiles;
    for (int t = 0; t < tiles.num_tiles(); ++t) {
      ParticleSoA& soa = tiles.tile(t).soa();
      for (size_t i = 0; i < soa.size(); ++i) {
        soa.uz[i] += amp * std::sin(k * (soa.z[i] - g.z0));
      }
    }
    ScrambleParticleOrder(tiles, (p.seed ^ 0xABCD) + static_cast<uint64_t>(sid));
  }
  sim->Initialize();
  return sim;
}

SimulationConfig MakeCollisionalRelaxationConfig(
    const CollisionalRelaxationParams& p) {
  SimulationConfig cfg;
  cfg.geom.nx = p.nx;
  cfg.geom.ny = p.ny;
  cfg.geom.nz = p.nz;
  cfg.geom.dx = cfg.geom.dy = cfg.geom.dz = 3.0e-7;
  cfg.geom.x0 = cfg.geom.y0 = cfg.geom.z0 = 0.0;
  cfg.tile_x = cfg.tile_y = cfg.tile_z = p.tile;
  cfg.engine.variant = p.variant;
  cfg.engine.order = p.order;
  cfg.cfl = 0.95;
  cfg.solver = SolverKind::kCkc;
  cfg.fuse_stages = p.fuse_stages;

  // Hot electrons plus a cold electron-mass species of opposite charge: the
  // box is charge-neutral (quiet fields) and the equal masses equilibrate at
  // the fastest two-species rate.
  cfg.species.clear();
  SpeciesConfig hot;
  hot.species = Species{"hot_e", kElectronCharge, kElectronMass};
  hot.collide_self = p.intra_species;
  hot.self_coulomb_log = p.coulomb_log;
  SpeciesConfig cold;
  cold.species = Species{"cold_p", -kElectronCharge, kElectronMass};
  cold.collide_self = p.intra_species;
  cold.self_coulomb_log = p.coulomb_log;
  cfg.species.push_back(hot);
  cfg.species.push_back(cold);

  cfg.collisions.enabled = p.collisions_enabled;
  cfg.collisions.seed = p.collision_seed;
  if (p.inter_species) {
    cfg.collisions.pairs.push_back({0, 1, p.coulomb_log});
  }
  return cfg;
}

std::unique_ptr<Simulation> MakeCollisionalRelaxationSimulation(
    HwContext& hw, const CollisionalRelaxationParams& p) {
  auto sim = std::make_unique<Simulation>(hw, MakeCollisionalRelaxationConfig(p));
  for (int sid = 0; sid < sim->num_species(); ++sid) {
    UniformPlasmaConfig plasma;
    plasma.ppc_x = p.ppc_x;
    plasma.ppc_y = p.ppc_y;
    plasma.ppc_z = p.ppc_z;
    plasma.density = p.density;
    plasma.u_th = sid == 0 ? p.u_th_hot : p.u_th_cold;
    plasma.seed = p.seed + static_cast<uint64_t>(sid);
    sim->SeedUniformPlasma(sid, plasma);
    ScrambleParticleOrder(sim->block(sid).tiles,
                          (p.seed ^ 0xABCD) + static_cast<uint64_t>(sid));
  }
  sim->Initialize();
  return sim;
}

}  // namespace mpic

#include "src/core/workloads.h"

#include <cmath>

#include "src/common/rng.h"

namespace mpic {

void ScrambleParticleOrder(TileSet& tiles, uint64_t seed) {
  Rng rng(seed);
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    ParticleTile& tile = tiles.tile(t);
    ParticleSoA& soa = tile.soa();
    const int32_t n = tile.num_slots();
    // Fisher-Yates over the slots; workload builders scramble before any
    // removal, so every slot is live.
    for (int32_t i = n - 1; i > 0; --i) {
      const auto j = static_cast<int32_t>(rng.NextBelow(static_cast<uint64_t>(i) + 1));
      if (i != j) {
        const Particle a = soa.Get(i);
        soa.Set(i, soa.Get(j));
        soa.Set(j, a);
      }
    }
  }
}

SimulationConfig MakeUniformConfig(const UniformWorkloadParams& p) {
  SimulationConfig cfg;
  cfg.geom.nx = p.nx;
  cfg.geom.ny = p.ny;
  cfg.geom.nz = p.nz;
  // Cell size chosen so omega_p * dt ~ 0.17 at CFL 0.95 for the default
  // density (plasma oscillations resolved; benches run a handful of steps).
  cfg.geom.dx = cfg.geom.dy = cfg.geom.dz = 3.0e-7;
  cfg.geom.x0 = cfg.geom.y0 = cfg.geom.z0 = 0.0;
  cfg.tile_x = cfg.tile_y = cfg.tile_z = p.tile;
  cfg.engine.variant = p.variant;
  cfg.engine.order = p.order;
  cfg.cfl = 0.95;
  cfg.solver = SolverKind::kCkc;
  return cfg;
}

std::unique_ptr<Simulation> MakeUniformSimulation(HwContext& hw,
                                                  const UniformWorkloadParams& p) {
  auto sim = std::make_unique<Simulation>(hw, MakeUniformConfig(p));
  UniformPlasmaConfig plasma;
  plasma.ppc_x = p.ppc_x;
  plasma.ppc_y = p.ppc_y;
  plasma.ppc_z = p.ppc_z;
  plasma.density = p.density;
  plasma.u_th = p.u_th;
  plasma.seed = p.seed;
  sim->SeedUniformPlasma(plasma);
  ScrambleParticleOrder(sim->tiles(), p.seed ^ 0xABCD);
  sim->Initialize();
  return sim;
}

SimulationConfig MakeLwfaConfig(const LwfaWorkloadParams& p) {
  SimulationConfig cfg;
  cfg.geom.nx = p.nx;
  cfg.geom.ny = p.ny;
  cfg.geom.nz = p.nz;
  // Longitudinal resolution: ~16 cells per 0.8 um laser wavelength; transverse
  // cells 4x coarser (standard LWFA gridding).
  cfg.geom.dz = 0.8e-6 / 16.0;
  cfg.geom.dx = cfg.geom.dy = 4.0 * cfg.geom.dz;
  cfg.geom.x0 = cfg.geom.y0 = 0.0;
  cfg.geom.z0 = 0.0;
  cfg.tile_x = cfg.tile_y = p.tile;
  cfg.tile_z = p.tile_z;
  cfg.engine.variant = p.variant;
  cfg.engine.order = 1;  // paper: LWFA uses the CIC scheme
  cfg.cfl = 0.98;
  cfg.solver = SolverKind::kCkc;

  cfg.laser_enabled = true;
  cfg.laser.a0 = p.a0;
  cfg.laser.wavelength = 0.8e-6;
  cfg.laser.waist = 0.25 * p.nx * cfg.geom.dx;
  cfg.laser.duration = 8.0e-15;
  cfg.laser.t_peak = 2.5e-14;
  cfg.laser.antenna_cell_z = 2;

  cfg.moving_window = true;
  cfg.window_velocity = kSpeedOfLight;

  ProfiledPlasmaConfig inj;
  inj.ppc_x = p.ppc_x;
  inj.ppc_y = p.ppc_y;
  inj.ppc_z = p.ppc_z;
  const double density = p.density;
  const double ramp_end = 10.0 * cfg.geom.dz;
  inj.profile = [density, ramp_end](double z) {
    if (z < ramp_end) {
      return density * std::max(0.0, z / ramp_end);
    }
    return density;
  };
  inj.u_th = 0.0;
  inj.seed = p.seed;
  cfg.window_injection = inj;
  return cfg;
}

std::unique_ptr<Simulation> MakeLwfaSimulation(HwContext& hw,
                                               const LwfaWorkloadParams& p) {
  SimulationConfig cfg = MakeLwfaConfig(p);
  auto sim = std::make_unique<Simulation>(hw, cfg);
  ProfiledPlasmaConfig seed_cfg = *cfg.window_injection;
  seed_cfg.z_cell_lo = 0;
  seed_cfg.z_cell_hi = cfg.geom.nz;
  sim->SeedProfiledPlasma(seed_cfg);
  ScrambleParticleOrder(sim->tiles(), p.seed ^ 0xABCD);
  sim->Initialize();
  return sim;
}

}  // namespace mpic

#include "src/core/deposition_engine.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/deposit/deposit_baseline.h"
#include "src/deposit/deposit_mpu.h"
#include "src/deposit/deposit_rhocell.h"
#include "src/deposit/esirkepov_mpu.h"
#include "src/deposit/deposit_scalar.h"
#include "src/deposit/deposit_staging.h"
#include "src/hw/parallel_for.h"
#include "src/hw/rank_topology.h"

namespace mpic {

void TouchPositionStreams(HwContext& hw, const ParticleSoA& soa, int32_t n_slots) {
  for (int32_t base = 0; base < n_slots; base += kVpuLanes) {
    const size_t batch = static_cast<size_t>(
        std::min<int32_t>(kVpuLanes, n_slots - base));
    hw.TouchRead(soa.x.data() + base, sizeof(double) * batch);
    hw.TouchRead(soa.y.data() + base, sizeof(double) * batch);
    hw.TouchRead(soa.z.data() + base, sizeof(double) * batch);
  }
}

void TouchOldPositionStreams(HwContext& hw, ParticleSoA& soa, int32_t n_slots) {
  for (int32_t base = 0; base < n_slots; base += kVpuLanes) {
    const size_t batch = static_cast<size_t>(
        std::min<int32_t>(kVpuLanes, n_slots - base));
    hw.TouchRead(soa.xo.data() + base, sizeof(double) * batch);
    hw.TouchRead(soa.yo.data() + base, sizeof(double) * batch);
    hw.TouchRead(soa.zo.data() + base, sizeof(double) * batch);
    hw.TouchWrite(soa.xo.data() + base, sizeof(double) * batch);
    hw.TouchWrite(soa.yo.data() + base, sizeof(double) * batch);
    hw.TouchWrite(soa.zo.data() + base, sizeof(double) * batch);
    hw.ledger().counters().vpu_mem += 6;
  }
}

uint64_t DepositionEngine::TileKey(int t) const {
  return MemRegionKey(mem_owner_id_, t, 0);
}

uint64_t DepositionEngine::EsirkepovKey(int t) const {
  return MemRegionKey(mem_owner_id_, t, 32);
}

DepositionEngine::DepositionEngine(HwContext& hw, const EngineConfig& config)
    : hw_(hw), config_(config), traits_(TraitsOf(config.variant)),
      mem_owner_id_(NextMemOwnerId()), policy_(config.policy) {
  // The Esirkepov scheme replaces the variant's J kernel with its own staged
  // tile kernel, which supports every order — the odd-order restriction binds
  // only when the rhocell/MPU kernels actually run.
  if ((traits_.uses_rhocell || traits_.uses_mpu) &&
      config_.current_scheme == CurrentScheme::kDirect) {
    MPIC_CHECK_MSG(config_.order == 1 || config_.order == 3,
                   "rhocell/MPU kernels support CIC (1) and QSP (3) only");
  }
  MPIC_CHECK_MSG(config_.order >= 1 && config_.order <= 3,
                 "shape order must be 1, 2, or 3");
}

void DepositionEngine::Initialize(TileSet& tiles, FieldSet& fields) {
  scratch_.assign(static_cast<size_t>(tiles.num_tiles()), DepositScratch{});
  rhocells_.assign(static_cast<size_t>(tiles.num_tiles()), RhocellBuffer{});
  esirk_scratch_.assign(static_cast<size_t>(tiles.num_tiles()), EsirkepovScratch{});
  tile_currents_.assign(static_cast<size_t>(tiles.num_tiles()), TileCurrent{});
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    ParticleTile& tile = tiles.tile(t);
    if (esirkepov()) {
      // Per-tile Yee-staggered J scratch: fixed dimensions for the whole run
      // (the moving window keeps tile boxes fixed in index space).
      tile_currents_[static_cast<size_t>(t)].Resize(tile, config_.order);
    } else if (traits_.uses_rhocell) {
      rhocells_[static_cast<size_t>(t)].Resize(std::max(1, tile.num_cells()),
                                               config_.order);
    }
  }
  reduce_coloring_.clear();
  if (esirkepov()) {
    reduce_coloring_ = tiles.HaloDisjointColoring(EsirkepovHaloNodes(config_.order));
  } else if (traits_.uses_rhocell) {
    reduce_coloring_ = tiles.HaloDisjointColoring(RhocellHaloNodes(config_.order));
  }
  // The paper's baselines never sort; only sorting variants pay for (and
  // benefit from) the initial GlobalSortParticlesByCell.
  if (traits_.sort_mode != SortMode::kNone) {
    GlobalSort(tiles);
  }
  rank_stats_ = RankSortStats{};
  RegisterRegions(tiles, fields);
}

void DepositionEngine::GlobalSort(TileSet& tiles) {
  // Per-tile counting sorts are rank-local work: ranks sort their own
  // domains concurrently, so the serial charge scales down by the rank count.
  ScopedRankScale rank_scale(hw_.ledger(), hw_.num_ranks());
  PhaseScope phase(hw_.ledger(), Phase::kSort);
  int64_t moved = 0;
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    moved += tiles.tile(t).GlobalSortTile(tiles.geom(), config_.gpma);
  }
  // Counting sort: streaming writes of the ten SoA components (positions,
  // momenta, weight, and the old-position lanes all permute together) plus
  // two index passes, and — the expensive part — the permutation gather,
  // whose reads are random per particle.
  hw_.ChargeBulk(0.0, static_cast<double>(moved) * (10.0 * 8.0 * 2.0 + 4.0 * 2.0));
  hw_.ChargeCycles(static_cast<double>(moved) * 8.0);
  ++total_global_sorts_;
  rank_stats_.steps_since_sort = 0;
  rank_stats_.local_rebuilds = 0;
  rank_stats_.baseline_throughput = 0.0;  // re-baselined on the next step
}

void DepositionEngine::NotifyParticleAdded(TileSet& tiles, int tile_index,
                                           int32_t pid) {
  NotifyParticleAdded(hw_, tiles, tile_index, pid, nullptr);
}

void DepositionEngine::NotifyParticleAdded(HwContext& hw, TileSet& tiles,
                                           int tile_index, int32_t pid,
                                           int64_t* rebuilds) {
  if (traits_.sort_mode == SortMode::kNone) {
    return;
  }
  PhaseScope phase(hw.ledger(), Phase::kSort);
  ParticleTile& tile = tiles.tile(tile_index);
  const int cell = tile.CellOfParticle(tiles.geom(), pid);
  auto res = tile.gpma().Insert(pid, cell);
  hw.ChargeCycles(static_cast<double>(res.words_touched));
  if (!res.ok) {
    const int64_t words = tile.gpma().Rebuild();
    auto retry = tile.gpma().Insert(pid, cell);
    MPIC_CHECK(retry.ok);
    hw.ChargeCycles(static_cast<double>(words) * 0.25 +
                    static_cast<double>(retry.words_touched));
    tile.was_rebuilt_this_step = true;
    // Tile-parallel callers count into their worker slot (rank stats are
    // engine-shared); the serial path updates the rank stats directly.
    if (rebuilds != nullptr) {
      ++*rebuilds;
    } else {
      ++rank_stats_.local_rebuilds;
    }
  }
}

void DepositionEngine::AccumulateInjectionRebuilds(int64_t rebuilds) {
  rank_stats_.local_rebuilds += rebuilds;
}

void DepositionEngine::RemoveParticle(TileSet& tiles, int tile_index, int32_t pid) {
  RemoveParticle(hw_, tiles, tile_index, pid);
}

void DepositionEngine::RemoveParticle(HwContext& hw, TileSet& tiles, int tile_index,
                                      int32_t pid) {
  ParticleTile& tile = tiles.tile(tile_index);
  if (traits_.sort_mode != SortMode::kNone && tile.gpma().CellOf(pid) >= 0) {
    PhaseScope phase(hw.ledger(), Phase::kSort);
    auto res = tile.gpma().Remove(pid);
    hw.ChargeCycles(static_cast<double>(res.words_touched));
  }
  tile.RemoveParticle(pid);
}

// ---- Pass-1 scan -----------------------------------------------------------

void DepositionEngine::BeginStep(TileSet& tiles, double dt) {
  tile_movers_.resize(static_cast<size_t>(tiles.num_tiles()));
  step_dt_ = dt;
  if (rank_set_ != nullptr) {
    cross_rank_movers_.assign(static_cast<size_t>(rank_set_->num_ranks()), 0);
  }
}

void DepositionEngine::AttachRankSet(const RankSet* ranks) {
  rank_set_ = ranks;
  cross_rank_movers_.clear();
  if (rank_set_ != nullptr) {
    cross_rank_movers_.assign(static_cast<size_t>(rank_set_->num_ranks()), 0);
  }
}

void DepositionEngine::ScanTile(HwContext& hw, TileSet& tiles, int t,
                                TileScanPartial* partial) {
  if (traits_.sort_mode == SortMode::kIncremental) {
    ScanTileIncremental(hw, tiles, t, partial);
  } else {
    // Unsorted variants still need particles in their owning tiles (WarpX's
    // Redistribute); kGlobalEachStep re-establishes ownership before its full
    // sort. Charged outside the deposition kernel phases, mirroring the
    // paper's accounting where the baseline has no "Sort" column.
    ScanTileRedistribute(hw, tiles, t, partial);
  }
}

void DepositionEngine::ScanTileIncremental(HwContext& hw, TileSet& tiles, int t,
                                           TileScanPartial* partial) {
  const GridGeometry& geom = tiles.geom();
  PhaseScope phase(hw.ledger(), Phase::kSort);
  ParticleTile& tile = tiles.tile(t);
  std::vector<Mover>& movers = tile_movers_[static_cast<size_t>(t)];
  movers.clear();
  tile.was_rebuilt_this_step = false;
  Gpma& gpma = tile.gpma();
  const int32_t n_slots = tile.num_slots();
  // VPU scan: recompute the cell of each live particle and compare with its
  // GPMA bin (Algorithm 1, Phase 1). ~3 vector ops per 8 slots plus the
  // position loads.
  hw.ChargeCycles(static_cast<double>((n_slots + kVpuLanes - 1) / kVpuLanes) *
                  3.0 / hw.cfg().vpu_pipes);
  TouchPositionStreams(hw, tile.soa(), n_slots);

  struct PendingMove {
    int32_t pid;
    int32_t new_cell;
  };
  std::vector<PendingMove> pending;
  for (int32_t pid = 0; pid < n_slots; ++pid) {
    if (!tile.IsLive(pid)) {
      continue;
    }
    const auto i = static_cast<size_t>(pid);
    const ParticleSoA& soa = tile.soa();
    const int ix = geom.CellX(soa.x[i]);
    const int iy = geom.CellY(soa.y[i]);
    const int iz = geom.CellZ(soa.z[i]);
    if (!tile.ContainsCell(ix, iy, iz)) {
      // Leaves the tile: remove here, queue for its destination tile.
      auto res = gpma.Remove(pid);
      hw.ChargeCycles(static_cast<double>(res.words_touched));
      movers.push_back({tile.soa().Get(pid), tiles.TileOfCell(ix, iy, iz)});
      tile.RemoveParticle(pid);
      ++partial->crossed;
      continue;
    }
    const int cell = tile.LocalCellId(ix, iy, iz);
    if (gpma.CellOf(pid) != cell) {
      pending.push_back({pid, static_cast<int32_t>(cell)});
    }
  }
  // ApplyPendingMoves: deletions first, then insertions (gaps freed by the
  // leavers become available to the arrivers).
  for (const PendingMove& m : pending) {
    auto res = gpma.Remove(m.pid);
    hw.ChargeCycles(static_cast<double>(res.words_touched));
  }
  for (const PendingMove& m : pending) {
    auto res = gpma.Insert(m.pid, m.new_cell);
    hw.ChargeCycles(static_cast<double>(res.words_touched));
    if (!res.ok) {
      const int64_t words = gpma.Rebuild();
      hw.ChargeCycles(static_cast<double>(words) * 0.25);
      tile.was_rebuilt_this_step = true;
      ++partial->rebuilds;
      auto retry = gpma.Insert(m.pid, m.new_cell);
      MPIC_CHECK(retry.ok);
      hw.ChargeCycles(static_cast<double>(retry.words_touched));
    }
    ++partial->moved;
  }
}

void DepositionEngine::ScanTileRedistribute(HwContext& hw, TileSet& tiles, int t,
                                            TileScanPartial* partial) {
  const GridGeometry& geom = tiles.geom();
  PhaseScope phase(hw.ledger(), Phase::kOther);
  ParticleTile& tile = tiles.tile(t);
  std::vector<Mover>& movers = tile_movers_[static_cast<size_t>(t)];
  movers.clear();
  const int32_t n_slots = tile.num_slots();
  hw.ChargeCycles(static_cast<double>((n_slots + kVpuLanes - 1) / kVpuLanes) *
                  3.0 / hw.cfg().vpu_pipes);
  TouchPositionStreams(hw, tile.soa(), n_slots);
  for (int32_t pid = 0; pid < n_slots; ++pid) {
    if (!tile.IsLive(pid)) {
      continue;
    }
    const auto i = static_cast<size_t>(pid);
    const ParticleSoA& soa = tile.soa();
    const int ix = geom.CellX(soa.x[i]);
    const int iy = geom.CellY(soa.y[i]);
    const int iz = geom.CellZ(soa.z[i]);
    if (!tile.ContainsCell(ix, iy, iz)) {
      movers.push_back({tile.soa().Get(pid), tiles.TileOfCell(ix, iy, iz)});
      tile.RemoveParticle(pid);
      hw.ChargeCycles(8.0);
      ++partial->crossed;
    }
  }
}

void DepositionEngine::AccumulateScan(const TileScanPartial& partial,
                                      EngineStepStats* stats) {
  stats->crossed_tiles += partial.crossed;
  stats->moved_particles += partial.moved;
  stats->gpma_rebuilds += partial.rebuilds;
  rank_stats_.local_rebuilds += partial.rebuilds;
}

void DepositionEngine::DeliverMovers(TileSet& tiles, EngineStepStats* stats) {
  const GridGeometry& geom = tiles.geom();
  // With a rank decomposition attached, delivery work splits over the ranks
  // (each rank inserts its own arrivals concurrently), so the serial charge
  // scales down by the rank count; the link cost of the cross-rank movers is
  // charged separately by RankComm::ChargeMigration from the counts taken
  // here. The *execution* stays serial in source-tile order either way, so
  // destination slot assignment is identical for any rank count.
  ScopedRankScale rank_scale(hw_.ledger(), hw_.num_ranks());
  if (traits_.sort_mode == SortMode::kIncremental) {
    // Deliver cross-tile movers serially, in source-tile order: destination
    // slot assignment (AddParticle recycles free slots in stack order) must
    // not depend on the parallel schedule for results to stay bit-identical
    // to serial.
    PhaseScope phase(hw_.ledger(), Phase::kSort);
    for (size_t src = 0; src < tile_movers_.size(); ++src) {
      std::vector<Mover>& movers = tile_movers_[src];
      for (const Mover& m : movers) {
        CountCrossRankMover(static_cast<int>(src), m.dest_tile);
        ParticleTile& dest = tiles.tile(m.dest_tile);
        const int32_t pid = dest.AddParticle(m.p);
        const int cell = dest.CellOfParticle(geom, pid);
        auto res = dest.gpma().Insert(pid, cell);
        hw_.ChargeCycles(static_cast<double>(res.words_touched) + 4.0);
        if (!res.ok) {
          const int64_t words = dest.gpma().Rebuild();
          hw_.ChargeCycles(static_cast<double>(words) * 0.25);
          dest.was_rebuilt_this_step = true;
          ++rank_stats_.local_rebuilds;
          ++stats->gpma_rebuilds;
          auto retry = dest.gpma().Insert(pid, cell);
          MPIC_CHECK(retry.ok);
          hw_.ChargeCycles(static_cast<double>(retry.words_touched));
        }
      }
      movers.clear();
    }
    return;
  }
  // Unsorted delivery: plain slot insertion, same ordering contract.
  PhaseScope phase(hw_.ledger(), Phase::kOther);
  for (size_t src = 0; src < tile_movers_.size(); ++src) {
    std::vector<Mover>& movers = tile_movers_[src];
    for (const Mover& m : movers) {
      CountCrossRankMover(static_cast<int>(src), m.dest_tile);
      tiles.tile(m.dest_tile).AddParticle(m.p);
      hw_.ChargeCycles(8.0);
    }
    movers.clear();
  }
}

void DepositionEngine::CountCrossRankMover(int src_tile, int dest_tile) {
  if (rank_set_ == nullptr) {
    return;
  }
  const int src_rank = rank_set_->RankOfTile(src_tile);
  if (src_rank != rank_set_->RankOfTile(dest_tile)) {
    ++cross_rank_movers_[static_cast<size_t>(src_rank)];
  }
}

void DepositionEngine::PostScanGlobalSort(TileSet& tiles, FieldSet& fields,
                                          EngineStepStats* stats) {
  if (traits_.sort_mode != SortMode::kGlobalEachStep) {
    return;
  }
  // Tiles sort independently; ranks run their domains concurrently.
  ScopedRankScale rank_scale(hw_.ledger(), hw_.num_ranks());
  PhaseScope phase(hw_.ledger(), Phase::kSort);
  int64_t moved = 0;
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    moved += tiles.tile(t).GlobalSortTile(tiles.geom(), config_.gpma);
  }
  hw_.ChargeBulk(0.0, static_cast<double>(moved) * (10.0 * 8.0 * 2.0 + 4.0 * 2.0));
  hw_.ChargeCycles(static_cast<double>(moved) * 8.0);
  RegisterRegions(tiles, fields);
  stats->global_sorted = true;
}

// ---- Pass-2 staging + kernel + reduction -----------------------------------

void DepositionEngine::RefreshTileRegistrations(
    TileSet& tiles, const std::vector<int>* home_domains) {
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    ParticleTile& tile = tiles.tile(t);
    if (tile.num_live() == 0) {
      continue;
    }
    // Placement pass: registrations below run under the tile's home domain
    // (the NUMA domain of its last scheduled owner), re-homing the tile's
    // SoA/scratch pages so they follow the tile between domains.
    ScopedHomeDomain home_scope(
        hw_, home_domains != nullptr ? (*home_domains)[static_cast<size_t>(t)]
                                     : -1);
    DepositScratch& scratch = scratch_[static_cast<size_t>(t)];
    // Size the staging ahead of the region so the kernels' writes land in
    // registered (deterministically mapped) memory from the first touch. The
    // Esirkepov scheme stages into its own scratch; the variant's staging
    // arrays stay empty then.
    if (esirkepov()) {
      EsirkepovScratch& es = esirk_scratch_[static_cast<size_t>(t)];
      es.Resize(tile.soa().size(), config_.order);
      RegisterEsirkepovRegions(hw_, EsirkepovKey(t), es,
                               tile_currents_[static_cast<size_t>(t)]);
    } else if (traits_.staging != StagingKind::kNone) {
      scratch.Resize(tile.soa().size(), config_.order);
    }
    RegisterStagingRegions(hw_, TileKey(t), tile, scratch);
  }
}

void DepositionEngine::StageAndDepositTile(HwContext& hw, TileSet& tiles,
                                           FieldSet& fields, double charge, int t) {
  ParticleTile& tile = tiles.tile(t);
  if (tile.num_live() == 0) {
    return;
  }
  DepositParams params;
  params.geom = tiles.geom();
  params.charge = charge;
  params.dt = step_dt_;
  if (esirkepov()) {
    EsirkepovScratch& es = esirk_scratch_[static_cast<size_t>(t)];
    TileCurrent& tj = tile_currents_[static_cast<size_t>(t)];
    switch (config_.order) {
      case 1:
        EsirkepovDepositTileImpl<1>(hw, EsirkepovKey(t), tile, params, es, tj);
        break;
      case 2:
        EsirkepovDepositTileImpl<2>(hw, EsirkepovKey(t), tile, params, es, tj);
        break;
      case 3:
        EsirkepovDepositTileImpl<3>(hw, EsirkepovKey(t), tile, params, es, tj);
        break;
      default:
        MPIC_CHECK_MSG(false, "unsupported shape order");
    }
    return;
  }
  DepositScratch& scratch = scratch_[static_cast<size_t>(t)];
  RhocellBuffer& rhocell = rhocells_[static_cast<size_t>(t)];
  switch (config_.order) {
    case 1:
      StageAndDepositTileImpl<1>(hw, TileKey(t), tile, fields, params, scratch,
                                 rhocell);
      break;
    case 2:
      StageAndDepositTileImpl<2>(hw, TileKey(t), tile, fields, params, scratch,
                                 rhocell);
      break;
    case 3:
      StageAndDepositTileImpl<3>(hw, TileKey(t), tile, fields, params, scratch,
                                 rhocell);
      break;
    default:
      MPIC_CHECK_MSG(false, "unsupported shape order");
  }
}

template <int Order>
void DepositionEngine::EsirkepovDepositTileImpl(HwContext& hw, uint64_t key_base,
                                                ParticleTile& tile,
                                                const DepositParams& params,
                                                EsirkepovScratch& scratch,
                                                TileCurrent& tile_j) {
  // Size and register the staging before anything touches it (same contract
  // as the direct path: writes must land in deterministically mapped memory).
  scratch.Resize(tile.soa().size(), Order);
  RegisterEsirkepovRegions(hw, key_base, scratch, tile_j);
  // The variant's staging cost profile carries over: VPU-staged variants
  // charge batched staging, the others the scalar loop.
  StageEsirkepovTile<Order>(hw, tile, params, traits_.staging == StagingKind::kVpu,
                            scratch);
  if (traits_.uses_mpu) {
    // MPU variants route the combine through the MOPA kernel, riding the GPMA
    // sort cell-resident where the variant maintains it, pairwise otherwise —
    // the same scheduling split as the direct DepositMpu dispatch.
    DepositEsirkepovMpuTile<Order>(hw, tile, params,
                                   traits_.sorted_iteration
                                       ? MpuScheduling::kCellResident
                                       : MpuScheduling::kPairwise,
                                   config_.sparse_fallback_ppc, scratch, tile_j);
  } else {
    DepositEsirkepovTile<Order>(hw, tile, params, traits_.sorted_iteration,
                                scratch, tile_j);
  }
}

template <int Order>
void DepositionEngine::StageAndDepositTileImpl(HwContext& hw, uint64_t tile_key,
                                               ParticleTile& tile, FieldSet& fields,
                                               const DepositParams& params,
                                               DepositScratch& scratch,
                                               RhocellBuffer& rhocell) {
  // Size the staging and bring the model's address space current BEFORE the
  // kernels touch anything: scratch/SoA vectors may have (re)allocated since
  // the last registration (cheap no-op otherwise), and the staging writes
  // must land in registered memory to keep the modeled cache deterministic.
  if (traits_.staging != StagingKind::kNone) {
    scratch.Resize(tile.soa().size(), Order);
  }
  RegisterStagingRegions(hw, tile_key, tile, scratch);

  switch (traits_.staging) {
    case StagingKind::kScalarLoop:
      StageTileScalar<Order>(hw, tile, params, scratch);
      break;
    case StagingKind::kVpu:
      StageTileVpu<Order>(hw, tile, params, scratch);
      break;
    case StagingKind::kNone:
      break;
  }

  switch (traits_.kernel) {
    case KernelKind::kScalarReference:
      DepositScalarTile<Order>(hw, tile, params, fields);
      break;
    case KernelKind::kBaselineScatter:
      DepositBaselineTile<Order>(hw, tile, params, scratch, fields,
                                 traits_.sorted_iteration);
      break;
    case KernelKind::kRhocellAutoVec:
      if constexpr (Order == 1 || Order == 3) {
        DepositRhocellAutoVec<Order>(hw, tile, params, scratch, rhocell,
                                     traits_.sorted_iteration);
      }
      break;
    case KernelKind::kRhocellVpu:
      if constexpr (Order == 1 || Order == 3) {
        DepositRhocellVpu<Order>(hw, tile, params, scratch, rhocell,
                                 traits_.sorted_iteration);
      }
      break;
    case KernelKind::kMpu:
      if constexpr (Order == 1 || Order == 3) {
        DepositMpu<Order>(hw, tile, params, scratch, rhocell,
                          traits_.sorted_iteration ? MpuScheduling::kCellResident
                                                   : MpuScheduling::kPairwise,
                          config_.sparse_fallback_ppc);
      }
      break;
  }
}

void DepositionEngine::ReduceTile(HwContext& hw, TileSet& tiles, FieldSet& fields,
                                  int t) {
  ParticleTile& tile = tiles.tile(t);
  if (tile.num_live() == 0) {
    return;
  }
  if (esirkepov()) {
    ReduceEsirkepovToGrid(hw, tile_currents_[static_cast<size_t>(t)], fields);
    return;
  }
  if (!traits_.uses_rhocell) {
    return;
  }
  RhocellBuffer& rhocell = rhocells_[static_cast<size_t>(t)];
  switch (config_.order) {
    case 1:
      ReduceRhocellToGrid<1>(hw, tile, rhocell, fields);
      break;
    case 3:
      ReduceRhocellToGrid<3>(hw, tile, rhocell, fields);
      break;
    default:
      MPIC_CHECK_MSG(false, "rhocell reduction requires order 1 or 3");
  }
}

// ---- Step finalization -----------------------------------------------------

void DepositionEngine::RegisterRegions(TileSet& tiles, FieldSet& fields) {
  auto reg_field = [this](const FieldArray& f) {
    hw_.RegisterRegion(f.data(), f.size() * sizeof(double));
  };
  reg_field(fields.ex);
  reg_field(fields.ey);
  reg_field(fields.ez);
  reg_field(fields.bx);
  reg_field(fields.by);
  reg_field(fields.bz);
  reg_field(fields.jx);
  reg_field(fields.jy);
  reg_field(fields.jz);
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    RegisterStagingRegions(hw_, TileKey(t), tiles.tile(t),
                           scratch_[static_cast<size_t>(t)]);
    RhocellBuffer& rc = rhocells_[static_cast<size_t>(t)];
    if (rc.num_cells() > 0) {
      hw_.RegisterRegion(rc.jx().data(), rc.jx().size() * sizeof(double));
      hw_.RegisterRegion(rc.jy().data(), rc.jy().size() * sizeof(double));
      hw_.RegisterRegion(rc.jz().data(), rc.jz().size() * sizeof(double));
    }
    if (esirkepov()) {
      RegisterEsirkepovRegions(hw_, EsirkepovKey(t),
                               esirk_scratch_[static_cast<size_t>(t)],
                               tile_currents_[static_cast<size_t>(t)]);
    }
  }
}

void DepositionEngine::ReregisterModelRegions(TileSet& tiles, FieldSet& fields) {
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    ParticleTile& tile = tiles.tile(t);
    const size_t n = tile.soa().size();
    if (esirkepov()) {
      esirk_scratch_[static_cast<size_t>(t)].Resize(n, config_.order);
    } else if (traits_.staging != StagingKind::kNone) {
      scratch_[static_cast<size_t>(t)].Resize(n, config_.order);
    }
  }
  RegisterRegions(tiles, fields);
}

void DepositionEngine::UpdateRankStats(TileSet& tiles, const EngineStepStats& stats,
                                       double step_cycles, int64_t live) {
  (void)stats;
  ++rank_stats_.steps_since_sort;
  int64_t capacity = 0;
  int64_t empty = 0;
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    capacity += tiles.tile(t).gpma().capacity();
    empty += tiles.tile(t).gpma().num_empty_slots();
  }
  rank_stats_.empty_slot_ratio =
      capacity == 0 ? 0.0 : static_cast<double>(empty) / static_cast<double>(capacity);
  const double secs = hw_.cfg().CyclesToSeconds(step_cycles);
  rank_stats_.step_throughput = secs > 0.0 ? static_cast<double>(live) / secs : 0.0;
  if (rank_stats_.baseline_throughput == 0.0) {
    rank_stats_.baseline_throughput = rank_stats_.step_throughput;
  }
}

void DepositionEngine::FinishStep(TileSet& tiles, FieldSet& fields,
                                  double step_cycles, EngineStepStats* stats) {
  UpdateRankStats(tiles, *stats, step_cycles, tiles.TotalLive());

  // Global re-sorting policy (Sec. 4.4).
  if (traits_.sort_mode == SortMode::kIncremental) {
    stats->decision = policy_.Evaluate(rank_stats_);
    if (ResortPolicy::ShouldSort(stats->decision)) {
      GlobalSort(tiles);
      RegisterRegions(tiles, fields);
      stats->global_sorted = true;
    }
  }
}

void DepositionEngine::RestoreSortState(const RankSortStats& stats,
                                        int64_t total_global_sorts) {
  rank_stats_ = stats;
  total_global_sorts_ = total_global_sorts;
}

int64_t DepositionEngine::ClearStagedMovers(int t) {
  if (t < 0 || static_cast<size_t>(t) >= tile_movers_.size()) {
    return 0;
  }
  std::vector<Mover>& movers = tile_movers_[static_cast<size_t>(t)];
  const auto dropped = static_cast<int64_t>(movers.size());
  movers.clear();
  return dropped;
}

void DepositionEngine::FoldCurrentGuards(HwContext& hw, FieldSet& fields) {
  // Each rank folds the guards of its own slab; the cross-rank z-boundary
  // contributions ride the modeled J halo exchange (RankComm).
  ScopedRankScale rank_scale(hw.ledger(), hw.num_ranks());
  PhaseScope phase(hw.ledger(), Phase::kReduce);
  fields.jx.FoldGuardsPeriodic();
  fields.jy.FoldGuardsPeriodic();
  fields.jz.FoldGuardsPeriodic();
  const double guard_nodes =
      static_cast<double>(fields.jx.size()) - static_cast<double>(fields.geom.NumCells());
  hw.ChargeBulk(guard_nodes * 3.0, guard_nodes * 8.0 * 3.0 * 2.0);
}

// ---- Legacy sweep-per-stage orchestration ----------------------------------

EngineStepStats DepositionEngine::DepositStep(
    TileSet& tiles, FieldSet& fields, double charge, bool fold_guards,
    double dt, const std::function<bool(int)>& skip_tile) {
  EngineStepStats stats;
  // The resort policy's throughput window measures the deposition phases
  // (Preproc+Compute+Sort+Reduce) — the same window the fused pipeline feeds
  // FinishStep, so the two schedules' policy inputs differ only by the real
  // modeled cost difference, not by accounting scope.
  const double cycles_before = hw_.ledger().DepositionCycles();

  // Sweep 1: per-tile scan (every mutation — GPMA remove/insert/rebuild, slot
  // release — touches only the tile's own structures, so tiles run on
  // separate modeled cores), then the serial ordered delivery barrier.
  BeginStep(tiles, dt);
  std::vector<PaddedSlot<TileScanPartial>> partials(
      static_cast<size_t>(WorkerSlotCount(hw_)));
  ParallelForTiles(hw_, tiles.num_tiles(), [&](HwContext& hw, int worker, int t) {
    if (skip_tile && skip_tile(t)) {
      return;  // quarantined: poisoned positions must not reach the cell math
    }
    ScanTile(hw, tiles, t, &partials[static_cast<size_t>(worker)].value);
  });
  for (const PaddedSlot<TileScanPartial>& slot : partials) {
    AccumulateScan(slot.value, &stats);
  }
  DeliverMovers(tiles, &stats);
  PostScanGlobalSort(tiles, fields, &stats);

  // Sweep 2: staging + kernel. Rhocell-backed kernels write only tile-private
  // staging and rhocell blocks, so they fan out over tiles; kBaselineScatter
  // and kScalarReference scatter per particle straight into shared J and
  // therefore stay entirely on the serial path.
  if (ParallelEnabled(hw_) && deposit_is_tile_parallel()) {
    RefreshTileRegistrations(tiles);
    ParallelForTiles(hw_, tiles.num_tiles(), [&](HwContext& hw, int, int t) {
      if (skip_tile && skip_tile(t)) {
        return;
      }
      StageAndDepositTile(hw, tiles, fields, charge, t);
    });
  } else {
    // Serial deposit: on a multi-rank machine each rank sweeps its own
    // domain's tiles concurrently, so the charge scales by the rank count.
    ScopedRankScale rank_scale(hw_.ledger(), hw_.num_ranks());
    for (int t = 0; t < tiles.num_tiles(); ++t) {
      if (skip_tile && skip_tile(t)) {
        continue;
      }
      StageAndDepositTile(hw_, tiles, fields, charge, t);
    }
  }

  // Sweep 3: rhocell -> J reduction, serial here but in the same color-major
  // tile order as the parallel colored schedule, so legacy and fused paths
  // accumulate shared halo nodes identically. Reduction is rank-local (each
  // rank reduces onto its own slab of J), so it too scales by the rank count.
  {
    ScopedRankScale rank_scale(hw_.ledger(), hw_.num_ranks());
    for (const std::vector<int>& color_class : reduce_coloring_) {
      for (int t : color_class) {
        if (skip_tile && skip_tile(t)) {
          continue;  // its scratch was not staged this step
        }
        ReduceTile(hw_, tiles, fields, t);
      }
    }
  }

  // Fold periodic guard contributions into the interior (single-species mode;
  // multi-species simulations fold once across all species instead).
  if (fold_guards) {
    FoldCurrentGuards(hw_, fields);
  }

  FinishStep(tiles, fields, hw_.ledger().DepositionCycles() - cycles_before,
             &stats);
  return stats;
}

}  // namespace mpic

// SpeciesBlock: everything one particle species owns — its physical identity,
// its TileSet, its DepositionEngine (sorting structures are per species, like
// WarpX's per-species ParticleContainers), and the gather/push staging scratch.
//
// Simulation keeps a registry of blocks; every particle stage (seed, gather,
// push, boundaries, moving-window drop/refill, deposit) loops over them, while
// the FieldSet (E, B, J) is shared: each species' engine accumulates into the
// same J arrays and the guard folding happens once per step across species.

#ifndef MPIC_SRC_CORE_SPECIES_BLOCK_H_
#define MPIC_SRC_CORE_SPECIES_BLOCK_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/deposition_engine.h"
#include "src/particles/injector.h"
#include "src/particles/species.h"
#include "src/particles/tile_set.h"
#include "src/push/field_gather.h"

namespace mpic {

// Per-species simulation options. Charge and mass are plumbed per block at
// call time, not baked into the engine.
struct SpeciesConfig {
  Species species = Species::Electron();
  // Moving-window refill profile for this species. Species without a profile
  // are dropped behind the window but never replenished.
  std::optional<ProfiledPlasmaConfig> window_injection;
  // Engine override for this species; nullopt inherits the simulation-wide
  // EngineConfig. Heavy ions barely churn cells per step, so they typically
  // want kHybridNoSort or a long re-sort interval while electrons keep the
  // full incremental-sort pipeline.
  std::optional<EngineConfig> engine;
  // Intra-species Coulomb collisions (Takizuka-Abe pairing within each cell,
  // src/collide/collision.h). Requires a GPMA-maintaining sort mode.
  // Inter-species pairs are listed in SimulationConfig::collisions instead.
  bool collide_self = false;
  double self_coulomb_log = 10.0;
};

// One stage's per-tile cost feedback loop for the cost-guided tile scheduler
// (TileSchedulePolicy::kCostSteal). `estimate` feeds the current step's
// schedule (RegionCosts::estimates); `measured` collects the current step's
// per-tile cycle probe (RegionCosts::measured); Commit() rotates measured into
// estimate at the end of the stage. The owner pair rotates the same way:
// `owner` is the global worker id that executed each tile last step (the
// sticky-placement preference and the tile's NUMA home domain),
// `owner_measured` collects this step's placements (RegionCosts::owners).
// All four start empty — the first step of a stage schedules with uniform
// costs and no affinity, then converges.
struct StageCostFeedback {
  std::vector<double> estimate;
  std::vector<double> measured;
  std::vector<int32_t> owner;
  std::vector<int32_t> owner_measured;
  void Commit() {
    estimate.swap(measured);
    owner.swap(owner_measured);
  }
};

struct SpeciesBlock {
  SpeciesBlock(HwContext& hw, const SpeciesConfig& config, const GridGeometry& geom,
               int tile_x, int tile_y, int tile_z, const EngineConfig& engine_config)
      : species(config.species),
        window_injection(config.window_injection),
        tiles(geom, tile_x, tile_y, tile_z),
        engine(hw, config.engine.value_or(engine_config)) {}

  Species species;
  std::optional<ProfiledPlasmaConfig> window_injection;
  TileSet tiles;
  DepositionEngine engine;
  std::vector<GatherScratch> gather_scratch;  // per tile
  // Key base for the gather scratch's keyed region registrations (tile t uses
  // MemRegionKey(mem_owner_id, t, 0..5)).
  uint64_t mem_owner_id = NextMemOwnerId();

  // Particle-push census: lifetime total and the most recent step's count.
  int64_t particles_pushed = 0;
  int64_t pushed_last_step = 0;

  // Per-tile cycle feedback for the work-stealing scheduler, one loop per
  // tile-parallel stage of the fused pipeline (indexed by tile id for the two
  // full fan-outs; reduce_costs is also tile-indexed, gathered/scattered per
  // color class). Unused (left empty) under TileSchedulePolicy::kStatic.
  StageCostFeedback pass1_costs;
  StageCostFeedback deposit_costs;
  StageCostFeedback reduce_costs;
};

}  // namespace mpic

#endif  // MPIC_SRC_CORE_SPECIES_BLOCK_H_

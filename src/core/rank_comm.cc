#include "src/core/rank_comm.h"

#include "src/common/check.h"
#include "src/grid/halo_exchange.h"

namespace mpic {

RankComm::RankComm(HwContext& hw, const RankSet& ranks, int tile_nz)
    : hw_(hw), ranks_(ranks), tile_nz_(tile_nz) {
  MPIC_CHECK(ranks_.num_ranks() > 1 && tile_nz_ > 0);
  stats_.resize(static_cast<size_t>(ranks_.num_ranks()));
}

void RankComm::Exchange(std::vector<const FieldArray*> comps) {
  const int R = ranks_.num_ranks();
  const FieldArray& f0 = *comps.front();
  const int ng = f0.ng();
  // One message = the ng boundary planes of every component in this exchange.
  const double msg_bytes =
      static_cast<double>(ZPlaneNodes(f0)) * ng * 8.0 * static_cast<double>(comps.size());

  PhaseScope phase(hw_.ledger(), Phase::kComm);
  // Real pack of every rank's two boundary halos (send up + send down). The
  // matching unpack on the receiving side touches the same bytes again; since
  // ranks share one address space the store-back is a numeric no-op, so only
  // the buffer traffic is modeled. All ranks pack concurrently, so the bulk
  // charge below is one rank's share: 2 messages out, 2 in, read+write each.
  for (int r = 0; r < R; ++r) {
    const RankDomain& d = ranks_.domain(r);
    const int z_lo = d.tz_begin * tile_nz_;
    const int z_hi = d.tz_end * tile_nz_;
    buffer_.clear();
    for (const FieldArray* f : comps) {
      PackZPlanes(*f, z_lo, ng, buffer_);
      PackZPlanes(*f, z_hi - ng, ng, buffer_);
    }
    stats_[static_cast<size_t>(r)].bytes_sent +=
        static_cast<uint64_t>(2.0 * msg_bytes);
    stats_[static_cast<size_t>(r)].messages += 2;
  }
  const double bulk_bytes = 4.0 * 2.0 * msg_bytes;  // pack + unpack, r+w each
  const double bulk_before = hw_.ledger().TotalCycles();
  hw_.ChargeBulk(0.0, bulk_bytes);
  const double link_cycles = 2.0 * LinkTransferCycles(hw_.cfg(), msg_bytes);
  hw_.ChargeCycles(link_cycles);
  const double share = (hw_.ledger().TotalCycles() - bulk_before);
  for (int r = 0; r < R; ++r) {
    stats_[static_cast<size_t>(r)].comm_cycles += share;
  }
}

void RankComm::ExchangeCurrentHalos(FieldSet& fields) {
  Exchange({&fields.jx, &fields.jy, &fields.jz});
}

void RankComm::ExchangeFieldHalos(FieldSet& fields) {
  Exchange({&fields.ex, &fields.ey, &fields.ez, &fields.bx, &fields.by,
            &fields.bz});
}

void RankComm::ChargeMigration(const std::vector<int64_t>& per_rank_movers) {
  MPIC_CHECK(static_cast<int>(per_rank_movers.size()) == ranks_.num_ranks());
  PhaseScope phase(hw_.ledger(), Phase::kComm);
  double critical = 0.0;
  for (int r = 0; r < ranks_.num_ranks(); ++r) {
    const int64_t n = per_rank_movers[static_cast<size_t>(r)];
    if (n <= 0) {
      continue;
    }
    const double bytes = static_cast<double>(n) * kParticleWireBytes;
    const double cycles = LinkTransferCycles(hw_.cfg(), bytes);
    critical = cycles > critical ? cycles : critical;
    RankCommStats& s = stats_[static_cast<size_t>(r)];
    s.bytes_sent += static_cast<uint64_t>(bytes);
    s.messages += 1;
    s.comm_cycles += cycles;
    s.migrated_particles += static_cast<uint64_t>(n);
  }
  // Ranks send concurrently: wall clock is the busiest sender.
  hw_.ChargeCycles(critical);
}

}  // namespace mpic

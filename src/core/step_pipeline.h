// StepPipeline: the per-step particle schedule — which tile stages run in
// which fan-out regions, and in what order.
//
// Fused mode (the default) runs each species in two cache-resident passes:
//
//   pass 1 (one ParallelForTiles region): per tile, gather -> push ->
//          boundary wrap / window drop -> incremental-sort scan, so the
//          tile's SoA streams stay hot in the core's modeled private cache
//          across all four stages;
//   barrier: serial, order-preserving cross-tile mover delivery (and the
//          per-tile counting sort for the global-sort-each-step variant);
//   pass 2 (one ParallelForTiles region): per tile, staging + deposition
//          kernel; followed by the rhocell -> J reduction executed as a
//          halo-disjoint colored schedule — every color class fans out, the
//          classes run as sequential barriers.
//
// Legacy mode (fuse_stages = false) reproduces the five-sweep schedule the
// seed used — one full tile sweep per stage (gather+push, boundaries, scan,
// staging+kernel, serial reduce) — as the bit-identical reference: both modes
// execute exactly the same per-tile operations, all tile-private until the
// serial barriers, and both visit the reduction's color classes in the same
// order, so physics output matches bitwise on any workload, species count,
// core count, and thread count. Only the modeled cycle cost differs: the
// fused pipeline touches each tile's SoA twice per step instead of five
// times, pays two fork/joins per species instead of five, and parallelizes
// the previously serial reduction (bench_abl_fusion quantifies all three).
//
// One caveat bounds the bit-identity guarantee: the resort policy's
// *performance* trigger (Sec. 4.4, strategy 5) responds to each schedule's
// own modeled deposition throughput, and since fusion makes deposition
// genuinely cheaper, a long run skating along the degradation threshold can
// in principle schedule a global sort on different steps in the two modes
// (never within min_sort_interval steps of the last sort). The other
// triggers — fixed interval, rebuild count, empty-slot ratio — are
// physics-driven and schedule-independent.
//
// J zeroing is charged under its own fan-out in fused mode (each core zeroes
// a contiguous chunk) instead of the serial Phase::kOther block legacy uses.
//
// When collisions are configured, a tile-parallel Takizuka-Abe collision
// stage (src/collide/collision.h, Phase::kCollide) runs as the shared tail of
// both orchestrations, after every species has deposited: the step's J sees
// the pre-collision momenta, and the GPMA bins — current after the sort
// barriers — provide the per-cell pairing.

#ifndef MPIC_SRC_CORE_STEP_PIPELINE_H_
#define MPIC_SRC_CORE_STEP_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/collide/collision.h"
#include "src/core/species_block.h"
#include "src/grid/field_set.h"
#include "src/hw/hw_context.h"
#include "src/hw/parallel_for.h"
#include "src/runtime/health.h"

namespace mpic {

class FaultInjector;
class RankComm;

// Per-species slice of one Step()'s accounting.
struct SpeciesStepStats {
  std::string name;
  int64_t live = 0;    // live macro-particles after the step
  int64_t pushed = 0;  // particles pushed this step
  // Census inputs for the health monitor's conservation sentinel: particles
  // removed (boundary/window drops) and injected (window refill) this step.
  int64_t dropped = 0;
  int64_t injected = 0;
  EngineStepStats engine;
};

// Aggregated per-step accounting across all species.
struct SimStepStats {
  std::vector<SpeciesStepStats> species;
  // Collision-stage census of the step (zero when collisions are disabled).
  CollisionStepStats collisions;
  // Structured health-sentinel block (checked == false when the monitor is
  // disabled — the default).
  HealthStepReport health;

  int64_t TotalLive() const;
  int64_t TotalPushed() const;
  // Counter sums across species; global_sorted is true if any species sorted,
  // and decision reports the most severe species decision this step.
  EngineStepStats Aggregate() const;
};

struct StepPipelineInputs {
  double dt = 0.0;
  // Moving-window runs: particles ahead of/behind the window are dropped at
  // the boundary stage instead of wrapped in z.
  bool drop_behind_window = false;
  // Step index keying the collision RNG streams.
  int64_t step = 0;
  // Optional collision stage, applied after every species has deposited (so
  // this step's J reflects the pre-collision momenta in both orchestrations).
  // Null disables collisions.
  CollisionModule* collisions = nullptr;
  // Optional health monitor (src/runtime/health.h). When set, the per-tile
  // lane guards run fused into the particle passes and tiles that trip are
  // quarantined for the rest of the step (skipped by gather/push/boundary/
  // scan/deposit, contributing zero J).
  HealthMonitor* health = nullptr;
  // Optional deterministic fault injector; its mover-drop faults hook in
  // between the scan and the delivery barrier.
  FaultInjector* injector = nullptr;
  // Optional modeled inter-rank communication (set by Simulation when
  // MachineConfig::num_ranks > 1): after the particle stages it charges the
  // step's cross-rank particle migration and the post-fold J halo exchange
  // under Phase::kComm. Purely a cost-model hook — physics is untouched.
  RankComm* rank_comm = nullptr;
};

class StepPipeline {
 public:
  StepPipeline(HwContext& hw, bool fuse_stages)
      : hw_(hw), fuse_stages_(fuse_stages) {}

  bool fused() const { return fuse_stages_; }

  // Runs the particle stages of one step for every block — zero J, gather,
  // push, particle boundaries, sort scan + ordered delivery, staging +
  // deposition kernel, rhocell reduction, guard fold, and each species'
  // re-sort policy — and fills `stats` with one SpeciesStepStats per block
  // (`live` is left at 0 for the caller to census after the moving window).
  void RunParticleStages(const StepPipelineInputs& in,
                         std::vector<std::unique_ptr<SpeciesBlock>>& blocks,
                         FieldSet& fields, SimStepStats* stats);

 private:
  struct Pass1Partial {
    int64_t pushed = 0;
    int64_t dropped = 0;
    TileScanPartial scan;
    HealthTilePartial health;
  };

  void ZeroCurrentsStage(FieldSet& fields);
  // Serial pre-pass before a species' first fan-out of the step: sizes the
  // gather scratch and (re)registers it and the tiles' SoA/staging arrays
  // with the main context's address map, so in-region accesses never fall
  // back to nondeterministic identity mapping after a reallocation.
  void PrepareTileRegions(SpeciesBlock& block);
  // Pre-push position capture into the SoA old-position lanes, for species
  // whose engine runs the Esirkepov current scheme (Phase::kPush).
  void CaptureOldPositionsTile(HwContext& hw, ParticleTile& tile);
  // Boundary wrap / window drop for one tile (Phase::kOther). Under the
  // Esirkepov scheme the old-position lanes shift with the wrap so the
  // displacement survives the coordinate jump. Window drops accumulate into
  // `dropped` (nullable) for the census sentinel.
  void BoundaryTile(HwContext& hw, SpeciesBlock& block, bool drop_behind_window,
                    int t, int64_t* dropped);

  // Fused pass 1 for one species: a single region fusing (guard,) gather,
  // push, boundaries, and the sort scan per tile.
  void FusedPass1(const StepPipelineInputs& in, SpeciesBlock& block, int sid,
                  const FieldSet& fields, SpeciesStepStats* ss);
  template <int Order>
  void FusedPass1Impl(const StepPipelineInputs& in, SpeciesBlock& block,
                      int sid, const FieldSet& fields, SpeciesStepStats* ss);

  // Staging + kernel (+ colored reduction) for one species — fused pass 2.
  // Tiles the health monitor quarantined this step are skipped everywhere
  // (their J contribution is zero).
  void DepositTiles(const StepPipelineInputs& in, SpeciesBlock& block, int sid,
                    FieldSet& fields);

  // Legacy sweeps (one stage per region), preserving the seed schedule.
  void LegacyGatherAndPush(const StepPipelineInputs& in, SpeciesBlock& block,
                           int sid, const FieldSet& fields);
  template <int Order>
  void LegacyGatherAndPushImpl(const StepPipelineInputs& in,
                               SpeciesBlock& block, int sid,
                               const FieldSet& fields);
  void LegacyBoundaries(const StepPipelineInputs& in, SpeciesBlock& block,
                        int sid, int64_t* dropped);

  HwContext& hw_;
  bool fuse_stages_;
};

}  // namespace mpic

#endif  // MPIC_SRC_CORE_STEP_PIPELINE_H_

// Simulation: the full PIC loop with MatrixPIC deposition embedded, mirroring
// the paper's WarpX configuration (Sec. 5.2): CKC Maxwell solver, Boris pusher,
// CIC/QSP shapes, periodic uniform-plasma or moving-window LWFA workloads.
//
// Particles are organized as a registry of SpeciesBlocks (electrons, ions,
// counter-streaming beams, ...). The per-step particle schedule lives in
// core/step_pipeline.h: by default every species runs as two fused
// cache-resident tile passes (gather -> push -> boundaries -> sort scan, then
// staging -> kernel -> colored reduction) with the serial mover delivery as
// the barrier between them; `SimulationConfig::fuse_stages = false` selects
// the legacy sweep-per-stage schedule, which is bit-identical in physics and
// differs only in modeled cost. The FieldSet is shared, with each species'
// engine accumulating into the same J arrays (zeroed once per step,
// guard-folded once after all species).
//
// Step order (standard leapfrog PIC cycle):
//   zero J -> per species: fused pass 1 -> delivery barrier -> fused pass 2
//   -> shared guard fold -> collisions (when configured)
//   -> laser drive -> moving window -> B half-step, E full-step, B half-step.
//
// All stages charge the shared HwContext, so total wall time and the per-phase
// breakdown of Figures 1 and 8-10 come straight off the ledger.

#ifndef MPIC_SRC_CORE_SIMULATION_H_
#define MPIC_SRC_CORE_SIMULATION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/collide/collision.h"
#include "src/core/deposition_engine.h"
#include "src/core/rank_comm.h"
#include "src/core/species_block.h"
#include "src/core/step_pipeline.h"
#include "src/grid/field_set.h"
#include "src/hw/hw_context.h"
#include "src/laser/laser.h"
#include "src/particles/injector.h"
#include "src/particles/species.h"
#include "src/particles/tile_set.h"
#include "src/push/field_gather.h"
#include "src/runtime/health.h"
#include "src/solver/maxwell_solver.h"
#include "src/solver/moving_window.h"

namespace mpic {

class FaultInjector;

struct SimulationConfig {
  GridGeometry geom;
  int tile_x = 8, tile_y = 8, tile_z = 8;  // particles.tile_size
  // Species registry; more can be added with Simulation::AddSpecies before
  // Initialize(). Defaults to a single electron species.
  std::vector<SpeciesConfig> species = {SpeciesConfig{}};
  EngineConfig engine;
  double cfl = 0.95;
  SolverKind solver = SolverKind::kCkc;
  int guard_cells = 2;

  // Per-step schedule: fused two-pass pipeline (default) or the legacy
  // sweep-per-stage schedule. Physics is bit-identical either way; only the
  // modeled cycle cost differs (see core/step_pipeline.h).
  bool fuse_stages = true;

  // Binary Monte-Carlo Coulomb collisions (src/collide/collision.h). The
  // effective pair list is this config's inter-species pairs plus one intra
  // pair per species with SpeciesConfig::collide_self; the module runs only
  // when `collisions.enabled` and that list is non-empty.
  CollisionConfig collisions;

  // LWFA options.
  bool laser_enabled = false;
  LaserConfig laser;
  bool moving_window = false;
  double window_velocity = kSpeedOfLight;

  // Per-step health sentinels (src/runtime/health.h). Disabled by default —
  // the guards and step-epilogue scans cost modeled cycles (Phase::kHealth)
  // and bench_abl_resilience gates their overhead.
  std::optional<HealthConfig> health;
};

class Simulation {
 public:
  Simulation(HwContext& hw, const SimulationConfig& config);

  // Registers an additional species (before Initialize). Returns its id, the
  // index into the block registry.
  int AddSpecies(const SpeciesConfig& config);

  int num_species() const { return static_cast<int>(blocks_.size()); }
  SpeciesBlock& block(int sid) { return *blocks_[static_cast<size_t>(sid)]; }
  const SpeciesBlock& block(int sid) const {
    return *blocks_[static_cast<size_t>(sid)];
  }
  const Species& species(int sid) const { return block(sid).species; }

  // Particle seeding (before Initialize). The id-less overloads seed species 0.
  int64_t SeedUniformPlasma(const UniformPlasmaConfig& cfg);
  int64_t SeedUniformPlasma(int sid, const UniformPlasmaConfig& cfg);
  int64_t SeedProfiledPlasma(const ProfiledPlasmaConfig& cfg);
  int64_t SeedProfiledPlasma(int sid, const ProfiledPlasmaConfig& cfg);

  // Builds the sorting structures and registers memory regions. Call once
  // after seeding, before the first Step().
  void Initialize();

  void Step();
  void Run(int steps);

  double dt() const { return dt_; }
  double time() const { return time_; }
  int64_t step_count() const { return step_count_; }

  // Species-0 accessors, kept for the (common) single-species call sites.
  TileSet& tiles() { return block(0).tiles; }
  DepositionEngine& engine() { return block(0).engine; }

  FieldSet& fields() { return fields_; }
  const FieldSet& fields() const { return fields_; }
  HwContext& hw() { return hw_; }
  const HwContext& hw() const { return hw_; }
  const SimulationConfig& config() const { return config_; }
  bool initialized() const { return initialized_; }
  // True when the species run the Esirkepov scheme (J is Yee-staggered).
  bool staggered_j() const { return staggered_j_; }
  // The collision module, or null when no collisions are configured.
  const CollisionModule* collisions() const {
    return collide_.has_value() ? &*collide_ : nullptr;
  }
  // Modeled multi-rank decomposition (src/hw/rank_topology.h). Both are
  // engaged at Initialize() when MachineConfig::num_ranks > 1 and null
  // otherwise. The RankSet is the z-slab tile partition; RankComm charges the
  // per-step halo exchanges and particle migration under Phase::kComm.
  const RankSet* rank_set() const {
    return rank_set_.has_value() ? &*rank_set_ : nullptr;
  }
  RankComm* rank_comm() { return rank_comm_.has_value() ? &*rank_comm_ : nullptr; }
  const RankComm* rank_comm() const {
    return rank_comm_.has_value() ? &*rank_comm_ : nullptr;
  }
  // Aggregate engine stats of the last step (sums across species).
  const EngineStepStats& last_step_stats() const { return last_step_stats_; }
  // Per-species breakdown of the last step.
  const SimStepStats& last_sim_stats() const { return last_sim_stats_; }
  // Total particle pushes across all species and steps.
  int64_t particles_pushed() const;

  // ---- Resilience layer (src/runtime/) --------------------------------------

  // Enables the per-step health sentinels. Equivalent to setting
  // SimulationConfig::health before construction; callable any time.
  void EnableHealth(const HealthConfig& cfg) { health_.emplace(cfg); }
  // The monitor, or null when sentinels are disabled.
  HealthMonitor* health_monitor() {
    return health_.has_value() ? &*health_ : nullptr;
  }
  const HealthMonitor* health_monitor() const {
    return health_.has_value() ? &*health_ : nullptr;
  }
  // Hooks a deterministic fault injector into the step schedule (the mover-
  // drop faults need a mid-step site). Null detaches. Not owned.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  // Checkpoint plumbing (src/runtime/checkpoint.h). The injection seed and
  // window accumulator are the only non-structural scalars a bit-exact
  // restart needs beyond the clock.
  uint64_t injection_seed() const { return injection_seed_; }
  void set_injection_seed(uint64_t seed) { injection_seed_ = seed; }
  double window_accumulated() const {
    return window_.has_value() ? window_->accumulated() : 0.0;
  }
  void set_window_accumulated(double accumulated) {
    if (window_.has_value()) {
      window_->set_accumulated(accumulated);
    }
  }
  void RestoreClock(int64_t step, double time) {
    step_count_ = step;
    time_ = time;
  }
  // Model-state synchronization point for cycle-exact restore: flushes every
  // modeled cache (main, workers, ranks), clears the logical address map, and
  // replays the full region-registration sequence. Because the logical layout
  // of a MemMap is a pure function of its registration order, a saving run
  // and its restored twin that both sync at the same execution point continue
  // with bit-identical cache/address model state — which is what makes the
  // restored ledger cycles match a never-interrupted run exactly. Invoked by
  // the checkpoint layer when `model_sync` is requested; callable any time
  // after Initialize().
  void ModelSyncPoint();
  // Reinstates a checkpointed geometry (the moving window shifts z0) across
  // the config, the field set, and every species' tile set.
  void RestoreGeometry(const GridGeometry& g);

 private:
  void AdvanceWindow();
  // Replays the deterministic region-registration sequence (fields, per-tile
  // staging/rhocell/Esirkepov scratch, gather staging) against the current
  // address map. Shared by Initialize() and ModelSyncPoint().
  void RegisterModelRegions();

  HwContext& hw_;
  SimulationConfig config_;
  FieldSet fields_;
  std::vector<std::unique_ptr<SpeciesBlock>> blocks_;
  MaxwellSolver solver_;
  StepPipeline pipeline_;
  std::optional<CollisionModule> collide_;
  std::optional<RankSet> rank_set_;
  std::optional<RankComm> rank_comm_;
  std::optional<LaserAntenna> laser_;
  std::optional<MovingWindow> window_;
  std::optional<HealthMonitor> health_;
  FaultInjector* injector_ = nullptr;
  EngineStepStats last_step_stats_;
  SimStepStats last_sim_stats_;

  bool initialized_ = false;
  // True when the species run the Esirkepov scheme: J is Yee-staggered and
  // the solver consumes it without node->face averaging. Set at Initialize
  // (the scheme must match across species).
  bool staggered_j_ = false;
  double dt_ = 0.0;
  double time_ = 0.0;
  int64_t step_count_ = 0;
  uint64_t injection_seed_ = 1000;
};

}  // namespace mpic

#endif  // MPIC_SRC_CORE_SIMULATION_H_

// Simulation: the full PIC loop with MatrixPIC deposition embedded, mirroring
// the paper's WarpX configuration (Sec. 5.2): CKC Maxwell solver, Boris pusher,
// CIC/QSP shapes, periodic uniform-plasma or moving-window LWFA workloads.
//
// Step order (standard leapfrog PIC cycle):
//   zero J -> gather -> push -> particle BCs -> sort + deposit (engine) ->
//   laser drive -> moving window -> B half-step, E full-step, B half-step.
//
// All stages charge the shared HwContext, so total wall time and the per-phase
// breakdown of Figures 1 and 8-10 come straight off the ledger.

#ifndef MPIC_SRC_CORE_SIMULATION_H_
#define MPIC_SRC_CORE_SIMULATION_H_

#include <memory>
#include <optional>

#include "src/core/deposition_engine.h"
#include "src/grid/field_set.h"
#include "src/hw/hw_context.h"
#include "src/laser/laser.h"
#include "src/particles/injector.h"
#include "src/particles/species.h"
#include "src/particles/tile_set.h"
#include "src/push/field_gather.h"
#include "src/solver/maxwell_solver.h"
#include "src/solver/moving_window.h"

namespace mpic {

struct SimulationConfig {
  GridGeometry geom;
  int tile_x = 8, tile_y = 8, tile_z = 8;  // particles.tile_size
  Species species = Species::Electron();
  EngineConfig engine;
  double cfl = 0.95;
  SolverKind solver = SolverKind::kCkc;
  int guard_cells = 2;

  // LWFA options.
  bool laser_enabled = false;
  LaserConfig laser;
  bool moving_window = false;
  double window_velocity = kSpeedOfLight;
  // Plasma profile used to refill the slab exposed by each window shift.
  std::optional<ProfiledPlasmaConfig> window_injection;
};

class Simulation {
 public:
  Simulation(HwContext& hw, const SimulationConfig& config);

  // Particle seeding (before Initialize).
  int64_t SeedUniformPlasma(const UniformPlasmaConfig& cfg);
  int64_t SeedProfiledPlasma(const ProfiledPlasmaConfig& cfg);

  // Builds the sorting structures and registers memory regions. Call once
  // after seeding, before the first Step().
  void Initialize();

  void Step();
  void Run(int steps);

  double dt() const { return dt_; }
  double time() const { return time_; }
  int64_t step_count() const { return step_count_; }

  TileSet& tiles() { return tiles_; }
  FieldSet& fields() { return fields_; }
  HwContext& hw() { return hw_; }
  DepositionEngine& engine() { return engine_; }
  const SimulationConfig& config() const { return config_; }
  const EngineStepStats& last_step_stats() const { return last_step_stats_; }
  int64_t particles_pushed() const { return particles_pushed_; }

 private:
  void ApplyParticleBoundaries();
  void AdvanceWindow();
  template <int Order>
  void GatherAndPush();

  HwContext& hw_;
  SimulationConfig config_;
  FieldSet fields_;
  TileSet tiles_;
  DepositionEngine engine_;
  MaxwellSolver solver_;
  std::optional<LaserAntenna> laser_;
  std::optional<MovingWindow> window_;
  std::vector<GatherScratch> gather_scratch_;
  EngineStepStats last_step_stats_;

  double dt_ = 0.0;
  double time_ = 0.0;
  int64_t step_count_ = 0;
  int64_t particles_pushed_ = 0;
  uint64_t injection_seed_ = 1000;
};

}  // namespace mpic

#endif  // MPIC_SRC_CORE_SIMULATION_H_

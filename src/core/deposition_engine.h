// DepositionEngine: the MatrixPIC framework proper (paper Algorithm 1),
// exposed as composable per-tile pipeline stages.
//
// Per timestep a caller (core/step_pipeline.h) drives, per tile,
//   ScanTile            — incremental sort preparation: detect particles whose
//                         cell changed (including tile leavers), apply pending
//                         moves to the GPMA (O(1) amortized), rebuild a tile's
//                         GPMA when insertion pressure demands;
//   [barrier] DeliverMovers / PostScanGlobalSort — serial, order-preserving
//                         cross-tile delivery (and, for the global-sort-each-
//                         step variant, the per-tile counting sort);
//   StageAndDepositTile — staging + the configured deposition kernel (or, in
//                         CurrentScheme::kEsirkepov, the staged
//                         charge-conserving kernel into the per-tile
//                         TileCurrent scratch);
//   ReduceTile          — rhocell / Esirkepov-scratch reduction onto the
//                         global J arrays, run color class by color class
//                         (reduce_coloring());
// and FinishStep evaluates the adaptive global re-sorting policy (Sec. 4.4),
// performing GlobalSortParticlesByCell when a trigger fires.
//
// DepositStep composes the same stages into the legacy sweep-per-stage
// orchestration (one pass over all tiles per stage); the fused pipeline
// interleaves them tile-by-tile instead. Both orders are bit-identical: every
// stage touches only tile-private state until the serial barriers, and the
// reduction visits color classes in the same order either way.
//
// Every cost is charged to the active HwContext under the paper's phases, so a
// bench can read Total/Preproc/Compute/Sort/Reduce straight off the ledger.

#ifndef MPIC_SRC_CORE_DEPOSITION_ENGINE_H_
#define MPIC_SRC_CORE_DEPOSITION_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/deposit_variant.h"
#include "src/deposit/deposit_params.h"
#include "src/deposit/esirkepov.h"
#include "src/deposit/rhocell.h"
#include "src/grid/field_set.h"
#include "src/hw/hw_context.h"
#include "src/particles/tile_set.h"
#include "src/sort/resort_policy.h"

namespace mpic {

class RankSet;  // src/hw/rank_topology.h

struct EngineConfig {
  DepositVariant variant = DepositVariant::kFullOpt;
  int order = 1;  // 1 (CIC), 2 (TSC: scalar/baseline only), 3 (QSP)
  // Physics of the J deposition, orthogonal to the variant: kDirect runs the
  // variant's own kernel (q*v*S); kEsirkepov replaces it with the staged
  // charge-conserving tile kernel (src/deposit/esirkepov.h) while keeping the
  // variant's sort machinery, staging cost profile, and re-sort policy.
  // kEsirkepov supports every order 1-3 with any variant; on MPU variants the
  // combine runs on the MOPA kernel (src/deposit/esirkepov_mpu.h).
  CurrentScheme current_scheme = CurrentScheme::kDirect;
  GpmaConfig gpma;
  ResortPolicyConfig policy;
  // Adaptive low-density fallback (paper Sec. 6.1): cells with fewer live
  // particles than this are deposited by a VPU path instead of the MPU.
  // 0 disables. Applies to the MPU kernels (direct and Esirkepov) in
  // cell-resident mode only; the Esirkepov fallback reproduces the staged
  // scalar kernel's arithmetic bit-for-bit.
  int sparse_fallback_ppc = 0;
};

struct EngineStepStats {
  int64_t moved_particles = 0;
  int64_t crossed_tiles = 0;
  int64_t gpma_rebuilds = 0;
  bool global_sorted = false;
  SortDecision decision = SortDecision::kNoSort;
};

// Models a stage's re-read of the x/y/z position streams: one batched vector
// load per kVpuLanes slots. In the fused pipeline these lines are still
// resident from the push that just wrote them; in a sweep-per-stage schedule
// the intervening tiles have evicted them — the cache model sees exactly that
// difference. Shared by the sort scan and the boundary stage so the two
// stages' accounting can never drift apart.
void TouchPositionStreams(HwContext& hw, const ParticleSoA& soa, int32_t n_slots);

// Models a read-modify-write sweep of the old-position lanes (one batched
// vector load + store per kVpuLanes slots per axis). Shared by the capture
// stage and the boundary wrap so the old-lane accounting cannot drift apart.
void TouchOldPositionStreams(HwContext& hw, ParticleSoA& soa, int32_t n_slots);

// Per-worker partial of the scan stage. Tile-parallel callers keep one slot
// per worker and fold the totals into EngineStepStats with AccumulateScan
// after the region (worker order is fixed, so the fold is deterministic).
struct TileScanPartial {
  int64_t crossed = 0;
  int64_t moved = 0;
  int64_t rebuilds = 0;
};

class DepositionEngine {
 public:
  DepositionEngine(HwContext& hw, const EngineConfig& config);

  // One-time setup: global sort, GPMA build, region registration, reduction
  // coloring. Also used to re-initialize between bench configurations.
  void Initialize(TileSet& tiles, FieldSet& fields);

  // ---- Per-tile pipeline stages -------------------------------------------
  //
  // Protocol per timestep: BeginStep once; ScanTile for every tile (tiles may
  // run concurrently — all mutations are tile-private); DeliverMovers then
  // PostScanGlobalSort as serial barriers; StageAndDepositTile for every tile
  // (concurrently only for rhocell-backed variants — see
  // deposit_is_tile_parallel); ReduceTile for every tile, color class by
  // color class; FinishStep once. J must be zeroed by the caller before the
  // first StageAndDepositTile of a step (Simulation does).

  // Sizes the per-tile mover staging for this step and records the step dt
  // (consumed by the Esirkepov scheme; callers running kDirect may omit it).
  void BeginStep(TileSet& tiles, double dt = 0.0);

  // Pass-1 scan of one tile: recompute cells, apply within-tile GPMA moves,
  // stage tile leavers for ordered delivery. For unsorted variants this is
  // the plain redistribute scan. Charges `hw` (pass a worker context when
  // tile-parallel).
  void ScanTile(HwContext& hw, TileSet& tiles, int t, TileScanPartial* partial);

  // Folds one worker's scan partial into the step stats and the rank-wide
  // sort statistics. Call once per worker slot, in worker order.
  void AccumulateScan(const TileScanPartial& partial, EngineStepStats* stats);

  // Serial barrier: delivers cross-tile movers in source-tile order, so
  // destination slot assignment never depends on the parallel schedule.
  void DeliverMovers(TileSet& tiles, EngineStepStats* stats);

  // Serial barrier for SortMode::kGlobalEachStep: the full per-tile counting
  // sort (tile ownership is already current after DeliverMovers). No-op for
  // the other sort modes.
  void PostScanGlobalSort(TileSet& tiles, FieldSet& fields, EngineStepStats* stats);

  // Serial pre-pass before a tile-parallel deposit region: (re)registers the
  // tiles' SoA/scratch with the MAIN context, whose map the workers snapshot.
  // Worker-local registrations are dropped when the next region refreshes the
  // snapshot, so arrays that (re)allocated since the last step (mover
  // delivery, window injection) would otherwise fall back to nondeterministic
  // identity mapping. `home_domains` (optional, one entry per tile, -1 =
  // leave) re-homes each tile's regions to its scheduled owner's NUMA domain
  // while registering (see ScopedHomeDomain).
  void RefreshTileRegistrations(TileSet& tiles,
                                const std::vector<int>* home_domains = nullptr);

  // Replays the engine's full region-registration sequence (field arrays,
  // per-tile staging, rhocell blocks, Esirkepov scratch) against the current
  // address map — the engine-level slice of Simulation::ModelSyncPoint()'s
  // deterministic layout rebuild after MemMap::Clear(). Re-sizes every tile's
  // scratch from the current particle storage first, so the registered byte
  // counts (and with them the whole logical layout) are a pure function of
  // simulation state, not of this run's resize history.
  void ReregisterModelRegions(TileSet& tiles, FieldSet& fields);

  // Pass-2 stage of one tile: staging + the configured deposition kernel for
  // a species of the given charge [C]. Rhocell-backed kernels and the
  // Esirkepov scheme write only tile-private staging and scratch blocks and
  // may run tile-parallel; the direct kBaselineScatter/kScalarReference
  // kernels scatter straight into shared J and must be called serially
  // (deposit_is_tile_parallel() distinguishes them).
  void StageAndDepositTile(HwContext& hw, TileSet& tiles, FieldSet& fields,
                           double charge, int t);

  // Reduces one tile's scratch — rhocell blocks, or the Esirkepov TileCurrent
  // — onto the global J arrays (no-op for direct non-rhocell variants). Tiles
  // of one reduce_coloring() class have disjoint node footprints and may run
  // concurrently; classes must run as sequential barriers, in class order,
  // for the accumulation order onto shared nodes to be schedule-independent.
  void ReduceTile(HwContext& hw, TileSet& tiles, FieldSet& fields, int t);

  // Updates rank statistics from this step's deposition cycles and evaluates
  // the global re-sorting policy, sorting now if a trigger fires.
  void FinishStep(TileSet& tiles, FieldSet& fields, double step_cycles,
                  EngineStepStats* stats);

  // ---- Legacy sweep-per-stage orchestration --------------------------------

  // Runs the full deposition pipeline for one timestep as separate all-tile
  // sweeps (scan, delivery, staging+kernel, color-major reduce). J must be
  // zeroed by the caller. With `fold_guards` (the single-species default) the
  // periodic guard contributions are folded into the interior before
  // returning; a multi-species caller passes false for every species and
  // calls FoldCurrentGuards once after all of them have accumulated, because
  // folding refills the guards with interior images and a second fold would
  // double-count the earlier species. `dt` is required (non-zero) by the
  // Esirkepov scheme only. A non-null `skip_tile` predicate exempts tiles the
  // health monitor quarantined this step (poisoned lanes that scan/deposit
  // must not touch); their J contribution is zero and their GPMA stays stale
  // until the step is rolled back or the tile is scrubbed.
  EngineStepStats DepositStep(TileSet& tiles, FieldSet& fields, double charge,
                              bool fold_guards = true, double dt = 0.0,
                              const std::function<bool(int)>& skip_tile = {});

  // Folds the periodic guard contributions of jx/jy/jz into the interior and
  // charges the reduction to the ledger (Phase::kReduce).
  static void FoldCurrentGuards(HwContext& hw, FieldSet& fields);

  // Registers a freshly added particle with the sorting structures (moving
  // window injection). The particle must already be inside its tile. The
  // overload taking an HwContext charges that context instead of the engine's
  // own — tile-parallel injection passes its worker context (the GPMA insert
  // touches only the destination tile's structures) and a per-worker rebuild
  // counter, folded back with AccumulateInjectionRebuilds in worker order.
  void NotifyParticleAdded(TileSet& tiles, int tile_index, int32_t pid);
  void NotifyParticleAdded(HwContext& hw, TileSet& tiles, int tile_index,
                           int32_t pid, int64_t* rebuilds);
  void AccumulateInjectionRebuilds(int64_t rebuilds);

  // Removes a particle (absorbed / left the window). The overload taking an
  // HwContext charges that context instead of the engine's own — tile-parallel
  // callers pass their worker context (all mutations stay tile-private).
  void RemoveParticle(TileSet& tiles, int tile_index, int32_t pid);
  void RemoveParticle(HwContext& hw, TileSet& tiles, int tile_index, int32_t pid);

  // Forces GlobalSortParticlesByCell on every tile now.
  void GlobalSort(TileSet& tiles);

  const EngineConfig& config() const { return config_; }
  const VariantTraits& traits() const { return traits_; }
  // True when the engine runs the charge-conserving Esirkepov current scheme.
  bool esirkepov() const {
    return config_.current_scheme == CurrentScheme::kEsirkepov;
  }
  // True when StageAndDepositTile may run tile-parallel (the kernel
  // accumulates into tile-private rhocell blocks or the Esirkepov TileCurrent
  // instead of shared J).
  bool deposit_is_tile_parallel() const {
    return traits_.uses_rhocell || esirkepov();
  }
  // Halo-disjoint color classes of the scratch -> J reduction (empty when no
  // reduction runs). Computed once at Initialize; the moving window keeps
  // tile boxes fixed in index space, so the schedule never changes. The halo
  // is the reach of the active scheme: RhocellHaloNodes for direct rhocell
  // kernels, the wider EsirkepovHaloNodes for the Esirkepov scheme.
  const std::vector<std::vector<int>>& reduce_coloring() const {
    return reduce_coloring_;
  }
  const RankSortStats& rank_stats() const { return rank_stats_; }
  int64_t total_global_sorts() const { return total_global_sorts_; }

  // ---- Multi-rank hooks (src/hw/rank_topology.h) ---------------------------

  // Attaches the modeled rank decomposition. While attached, DeliverMovers
  // counts the cross-tile movers whose source and destination tiles live on
  // different ranks — the particles a real cluster would serialize over the
  // link — per source rank. StepPipeline feeds the counts to
  // RankComm::ChargeMigration. Pass nullptr to detach.
  void AttachRankSet(const RankSet* ranks);
  // Per-source-rank cross-rank mover counts of the current/last step (reset
  // by BeginStep; empty when no RankSet is attached).
  const std::vector<int64_t>& cross_rank_movers_last_step() const {
    return cross_rank_movers_;
  }

  // ---- Resilience hooks (src/runtime/) -------------------------------------

  // Checkpoint restore: reinstates the complete re-sort policy state — the
  // physics-driven inputs (steps since sort, accumulated rebuilds), the
  // adaptive throughput pair driving the performance trigger, and the
  // lifetime sort count. Together with the checkpoint model-sync protocol
  // (runtime/checkpoint.h) this makes restart bit-exact with every trigger
  // enabled: the saving run and the restored run see identical baselines and
  // identical post-sync modeled throughput, so the trigger fires on the same
  // steps.
  void RestoreSortState(const RankSortStats& stats, int64_t total_global_sorts);

  // Fault-injection hook (src/runtime/fault_injection.h): discards tile `t`'s
  // staged cross-tile movers between the scan and DeliverMovers, modeling a
  // lost migration buffer. Returns the number of particles dropped (they are
  // already removed from the source tile, so the census sentinel sees the
  // loss). Meaningful only between ScanTile and DeliverMovers of one step.
  int64_t ClearStagedMovers(int t);

 private:
  template <int Order>
  void StageAndDepositTileImpl(HwContext& hw, uint64_t tile_key, ParticleTile& tile,
                               FieldSet& fields, const DepositParams& params,
                               DepositScratch& scratch, RhocellBuffer& rhocell);
  void ScanTileIncremental(HwContext& hw, TileSet& tiles, int t,
                           TileScanPartial* partial);
  void ScanTileRedistribute(HwContext& hw, TileSet& tiles, int t,
                            TileScanPartial* partial);
  void RegisterRegions(TileSet& tiles, FieldSet& fields);
  void UpdateRankStats(TileSet& tiles, const EngineStepStats& stats,
                       double step_cycles, int64_t live);
  // Bumps cross_rank_movers_ for a mover whose tiles live on different ranks.
  void CountCrossRankMover(int src_tile, int dest_tile);

  // Key bases for this engine's keyed region registrations: SoA + staging of
  // tile t use MemRegionKey(mem_owner_id_, t, 0..31), the Esirkepov scratch
  // streams 32..68.
  uint64_t TileKey(int t) const;
  uint64_t EsirkepovKey(int t) const;
  template <int Order>
  void EsirkepovDepositTileImpl(HwContext& hw, uint64_t key_base,
                                ParticleTile& tile, const DepositParams& params,
                                EsirkepovScratch& scratch, TileCurrent& tile_j);

  HwContext& hw_;
  EngineConfig config_;
  VariantTraits traits_;
  uint64_t mem_owner_id_;
  ResortPolicy policy_;
  RankSortStats rank_stats_;
  int64_t total_global_sorts_ = 0;
  const RankSet* rank_set_ = nullptr;
  std::vector<int64_t> cross_rank_movers_;  // per source rank, this step

  std::vector<DepositScratch> scratch_;   // per tile
  std::vector<RhocellBuffer> rhocells_;   // per tile
  // Esirkepov-scheme staging + per-tile J scratch (allocated only when the
  // scheme is kEsirkepov).
  std::vector<EsirkepovScratch> esirk_scratch_;  // per tile
  std::vector<TileCurrent> tile_currents_;       // per tile
  double step_dt_ = 0.0;  // recorded by BeginStep for the deposit stages
  std::vector<std::vector<int>> reduce_coloring_;
  struct Mover {
    Particle p;
    int dest_tile;
  };
  // Cross-tile movers staged per source tile during the (tile-parallel) scan
  // and delivered serially in tile order, so delivery order — and therefore
  // destination slot assignment — matches the serial run exactly.
  std::vector<std::vector<Mover>> tile_movers_;
};

}  // namespace mpic

#endif  // MPIC_SRC_CORE_DEPOSITION_ENGINE_H_

// DepositionEngine: the MatrixPIC framework proper (paper Algorithm 1).
//
// Per timestep and tile it runs
//   Phase 1 — incremental sort preparation: detect particles whose cell
//     changed (including tile leavers), apply the pending moves to the GPMA
//     (O(1) amortized), rebuild a tile's GPMA when insertion pressure demands;
//   Phase 2 — staging + the configured deposition kernel;
//   Phase 3 — rhocell reduction onto the global J arrays;
// and afterwards evaluates the adaptive global re-sorting policy (Sec. 4.4),
// performing GlobalSortParticlesByCell when a trigger fires.
//
// Every cost is charged to the shared HwContext under the paper's phases, so a
// bench can read Total/Preproc/Compute/Sort/Reduce straight off the ledger.

#ifndef MPIC_SRC_CORE_DEPOSITION_ENGINE_H_
#define MPIC_SRC_CORE_DEPOSITION_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/core/deposit_variant.h"
#include "src/deposit/deposit_params.h"
#include "src/deposit/rhocell.h"
#include "src/grid/field_set.h"
#include "src/hw/hw_context.h"
#include "src/particles/tile_set.h"
#include "src/sort/resort_policy.h"

namespace mpic {

struct EngineConfig {
  DepositVariant variant = DepositVariant::kFullOpt;
  int order = 1;  // 1 (CIC), 2 (TSC: scalar/baseline only), 3 (QSP)
  GpmaConfig gpma;
  ResortPolicyConfig policy;
  // Adaptive low-density fallback (paper Sec. 6.1): cells with fewer live
  // particles than this are deposited by a VPU path instead of the MPU.
  // 0 disables. Applies to the MPU kernels in cell-resident mode only.
  int sparse_fallback_ppc = 0;
};

struct EngineStepStats {
  int64_t moved_particles = 0;
  int64_t crossed_tiles = 0;
  int64_t gpma_rebuilds = 0;
  bool global_sorted = false;
  SortDecision decision = SortDecision::kNoSort;
};

class DepositionEngine {
 public:
  DepositionEngine(HwContext& hw, const EngineConfig& config);

  // One-time setup: global sort, GPMA build, region registration. Also used to
  // re-initialize between bench configurations.
  void Initialize(TileSet& tiles, FieldSet& fields);

  // Runs the full deposition pipeline for one timestep for a species of the
  // given charge [C]. J must be zeroed by the caller (Simulation does). With
  // `fold_guards` (the single-species default) the periodic guard contributions
  // are folded into the interior before returning; a multi-species caller
  // passes false for every species and calls FoldCurrentGuards once after all
  // of them have accumulated, because folding refills the guards with interior
  // images and a second fold would double-count the earlier species.
  EngineStepStats DepositStep(TileSet& tiles, FieldSet& fields, double charge,
                              bool fold_guards = true);

  // Folds the periodic guard contributions of jx/jy/jz into the interior and
  // charges the reduction to the ledger (Phase::kReduce).
  static void FoldCurrentGuards(HwContext& hw, FieldSet& fields);

  // Registers a freshly added particle with the sorting structures (moving
  // window injection). The particle must already be inside its tile.
  void NotifyParticleAdded(TileSet& tiles, int tile_index, int32_t pid);

  // Removes a particle (absorbed / left the window). The overload taking an
  // HwContext charges that context instead of the engine's own — tile-parallel
  // callers pass their worker context (all mutations stay tile-private).
  void RemoveParticle(TileSet& tiles, int tile_index, int32_t pid);
  void RemoveParticle(HwContext& hw, TileSet& tiles, int tile_index, int32_t pid);

  // Forces GlobalSortParticlesByCell on every tile now.
  void GlobalSort(TileSet& tiles);

  const EngineConfig& config() const { return config_; }
  const RankSortStats& rank_stats() const { return rank_stats_; }
  int64_t total_global_sorts() const { return total_global_sorts_; }

 private:
  template <int Order>
  void StepImpl(TileSet& tiles, FieldSet& fields, double charge,
                EngineStepStats* stats);

  void IncrementalSortPhase(TileSet& tiles, EngineStepStats* stats);
  void RedistributeOnly(TileSet& tiles, EngineStepStats* stats);
  void RegisterRegions(TileSet& tiles, FieldSet& fields);
  void UpdateRankStats(TileSet& tiles, const EngineStepStats& stats,
                       double step_cycles, int64_t live);

  HwContext& hw_;
  EngineConfig config_;
  VariantTraits traits_;
  ResortPolicy policy_;
  RankSortStats rank_stats_;
  int64_t total_global_sorts_ = 0;

  std::vector<DepositScratch> scratch_;   // per tile
  std::vector<RhocellBuffer> rhocells_;   // per tile
  struct Mover {
    Particle p;
    int dest_tile;
  };
  // Cross-tile movers staged per source tile during the (tile-parallel) scan
  // and delivered serially in tile order, so delivery order — and therefore
  // destination slot assignment — matches the serial run exactly.
  std::vector<std::vector<Mover>> tile_movers_;
};

}  // namespace mpic

#endif  // MPIC_SRC_CORE_DEPOSITION_ENGINE_H_

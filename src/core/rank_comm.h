// Modeled inter-rank communication: halo exchange and particle migration.
//
// The rank decomposition (src/hw/rank_topology.h) is a *model*: all ranks
// share one address space and one global grid, so the numerics of a halo
// exchange are a no-op (the neighbor's plane is already there). What is NOT a
// no-op is the cost: a real cluster pays pack -> link transfer -> unpack for
// every boundary plane and for every particle that crosses a rank boundary.
// RankComm performs the real pack/unpack work against scratch message buffers
// (so byte counts are honest and tests can check round-trip bit-exactness)
// and charges the modeled cycles under Phase::kComm:
//
//  - pack/unpack: streaming roofline on the message bytes (ChargeBulk);
//  - link: rank_link_latency_cycles per message plus bytes at
//    rank_link_bytes_per_cycle (LinkTransferCycles), charged as the max over
//    ranks — ranks communicate concurrently, so the wall clock is the
//    busiest rank's share, exactly how ParallelForTiles merges core ledgers.
//
// Three exchanges per step, mirroring a distributed PIC loop:
//  - ChargeMigration: particles whose cross-tile movers crossed a rank
//    boundary this step (counted by DepositionEngine during delivery);
//  - ExchangeCurrentHalos: guard-plane J contributions folded across the
//    rank boundary after deposition (3 components);
//  - ExchangeFieldHalos: E/B boundary planes after the field solve
//    (6 components).
//
// Determinism contract: nothing here touches physics state, so digests are
// bit-identical across rank counts by construction; the charges themselves
// are pure functions of the machine config, grid shape, and migration
// counts, so modeled cycles are bit-deterministic too.

#ifndef MPIC_SRC_CORE_RANK_COMM_H_
#define MPIC_SRC_CORE_RANK_COMM_H_

#include <cstdint>
#include <vector>

#include "src/grid/field_set.h"
#include "src/hw/hw_context.h"
#include "src/hw/rank_topology.h"

namespace mpic {

// Cumulative per-rank communication totals (serialized into the checkpoint
// RANKS section so a restored ensemble keeps its communication history).
struct RankCommStats {
  uint64_t bytes_sent = 0;
  uint64_t messages = 0;
  double comm_cycles = 0.0;  // this rank's share of Phase::kComm charges
  uint64_t migrated_particles = 0;
};

class RankComm {
 public:
  // `tile_nz` is the tile extent in cells along z, mapping a domain's tile
  // planes to node planes (rank r owns node planes [tz_begin, tz_end) *
  // tile_nz).
  RankComm(HwContext& hw, const RankSet& ranks, int tile_nz);

  int num_ranks() const { return ranks_.num_ranks(); }
  const RankSet& ranks() const { return ranks_; }

  // Post-deposition J guard-plane fold across rank boundaries (jx, jy, jz).
  void ExchangeCurrentHalos(FieldSet& fields);
  // Post-solve E/B boundary-plane refresh (ex..ez, bx..bz).
  void ExchangeFieldHalos(FieldSet& fields);
  // Charges the link cost of `per_rank_movers[r]` particles leaving rank r
  // this step (one message per sending rank; kParticleWireBytes each).
  void ChargeMigration(const std::vector<int64_t>& per_rank_movers);

  const std::vector<RankCommStats>& stats() const { return stats_; }
  std::vector<RankCommStats>& mutable_stats() { return stats_; }

  // Serialized bytes of one migrated particle: the ten SoA lanes plus a
  // destination-cell tag.
  static constexpr double kParticleWireBytes = 10.0 * 8.0 + 8.0;

 private:
  // Packs both boundary halos (ng planes each) of every listed component for
  // every rank and charges one exchange round. `comps` die after the charge.
  void Exchange(std::vector<const FieldArray*> comps);

  HwContext& hw_;
  RankSet ranks_;
  int tile_nz_;
  std::vector<RankCommStats> stats_;
  std::vector<double> buffer_;  // reusable pack scratch
};

}  // namespace mpic

#endif  // MPIC_SRC_CORE_RANK_COMM_H_

#include "src/core/deposit_variant.h"

namespace mpic {

VariantTraits TraitsOf(DepositVariant v) {
  VariantTraits t;
  switch (v) {
    case DepositVariant::kScalar:
      t.staging = StagingKind::kNone;
      t.kernel = KernelKind::kScalarReference;
      break;
    case DepositVariant::kBaseline:
      t.kernel = KernelKind::kBaselineScatter;
      break;
    case DepositVariant::kBaselineIncrSort:
      t.sort_mode = SortMode::kIncremental;
      t.kernel = KernelKind::kBaselineScatter;
      t.sorted_iteration = true;
      break;
    case DepositVariant::kRhocell:
      t.kernel = KernelKind::kRhocellAutoVec;
      t.uses_rhocell = true;
      break;
    case DepositVariant::kRhocellIncrSort:
      t.sort_mode = SortMode::kIncremental;
      t.kernel = KernelKind::kRhocellAutoVec;
      t.sorted_iteration = true;
      t.uses_rhocell = true;
      break;
    case DepositVariant::kRhocellIncrSortVpu:
      t.sort_mode = SortMode::kIncremental;
      t.staging = StagingKind::kVpu;
      t.kernel = KernelKind::kRhocellVpu;
      t.sorted_iteration = true;
      t.uses_rhocell = true;
      break;
    case DepositVariant::kMatrixOnly:
      t.sort_mode = SortMode::kIncremental;
      t.staging = StagingKind::kScalarLoop;
      t.kernel = KernelKind::kMpu;
      t.sorted_iteration = true;
      t.uses_rhocell = true;
      t.uses_mpu = true;
      break;
    case DepositVariant::kHybridNoSort:
      t.staging = StagingKind::kVpu;
      t.kernel = KernelKind::kMpu;
      t.uses_rhocell = true;
      t.uses_mpu = true;
      break;
    case DepositVariant::kHybridGlobalSort:
      t.sort_mode = SortMode::kGlobalEachStep;
      t.staging = StagingKind::kVpu;
      t.kernel = KernelKind::kMpu;
      t.sorted_iteration = true;
      t.uses_rhocell = true;
      t.uses_mpu = true;
      break;
    case DepositVariant::kFullOpt:
      t.sort_mode = SortMode::kIncremental;
      t.staging = StagingKind::kVpu;
      t.kernel = KernelKind::kMpu;
      t.sorted_iteration = true;
      t.uses_rhocell = true;
      t.uses_mpu = true;
      break;
  }
  return t;
}

const char* VariantName(DepositVariant v) {
  switch (v) {
    case DepositVariant::kScalar:
      return "Scalar";
    case DepositVariant::kBaseline:
      return "Baseline (WarpX)";
    case DepositVariant::kBaselineIncrSort:
      return "Baseline+IncrSort";
    case DepositVariant::kRhocell:
      return "Rhocell (auto-vec)";
    case DepositVariant::kRhocellIncrSort:
      return "Rhocell+IncrSort";
    case DepositVariant::kRhocellIncrSortVpu:
      return "Rhocell+IncrSort (VPU)";
    case DepositVariant::kMatrixOnly:
      return "Matrix-only";
    case DepositVariant::kHybridNoSort:
      return "Hybrid-noSort";
    case DepositVariant::kHybridGlobalSort:
      return "Hybrid-GlobalSort";
    case DepositVariant::kFullOpt:
      return "MatrixPIC (FullOpt)";
  }
  return "?";
}

const char* CurrentSchemeName(CurrentScheme s) {
  switch (s) {
    case CurrentScheme::kDirect:
      return "Direct";
    case CurrentScheme::kEsirkepov:
      return "Esirkepov";
  }
  return "?";
}

}  // namespace mpic

#include "src/runtime/health.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/core/diagnostics.h"
#include "src/core/simulation.h"
#include "src/particles/species.h"

namespace mpic {

const char* SentinelStatusName(SentinelStatus s) {
  switch (s) {
    case SentinelStatus::kDisabled:
      return "off";
    case SentinelStatus::kOk:
      return "ok";
    case SentinelStatus::kTripped:
      return "TRIP";
  }
  return "?";
}

std::string HealthStepReport::Summary() const {
  if (!checked) {
    return "health: off";
  }
  std::ostringstream os;
  os << "health: " << (tripped() ? "TRIP" : "ok");
  auto item = [&os](const char* name, const SentinelReport& r) {
    if (r.status == SentinelStatus::kDisabled) {
      return;
    }
    os << ' ' << name << '=' << SentinelStatusName(r.status);
  };
  item("particles", particles);
  if (particles.tripped()) {
    os << "(bad " << particles.count << ")";
  }
  item("fields", fields);
  if (fields.status != SentinelStatus::kDisabled) {
    os << "(max " << fields.value << ")";
  }
  item("census", census);
  if (census.tripped()) {
    os << "(missing " << census.count << ")";
  }
  item("energy", energy);
  if (energy.status != SentinelStatus::kDisabled) {
    os << "(rel " << energy.value << ")";
  }
  item("gauss", gauss);
  if (gauss.status != SentinelStatus::kDisabled) {
    os << "(drift " << gauss.value << ")";
  }
  item("cycles", cycles);
  if (cycles.status != SentinelStatus::kDisabled && cycles.value > 0.0) {
    os << "(x" << cycles.value << ")";
  }
  if (quarantined_tiles > 0) {
    os << " quarantined=" << quarantined_tiles;
  }
  return os.str();
}

void HealthMonitor::BeginStep(int num_species, int num_tiles) {
  num_species_ = num_species;
  num_tiles_ = num_tiles;
  quarantined_.assign(
      static_cast<size_t>(num_species) * static_cast<size_t>(num_tiles), 0);
  step_partial_ = HealthTilePartial{};
}

bool HealthMonitor::AnyQuarantined() const {
  for (const uint8_t q : quarantined_) {
    if (q != 0) {
      return true;
    }
  }
  return false;
}

std::vector<std::pair<int, int>> HealthMonitor::QuarantinedTiles() const {
  std::vector<std::pair<int, int>> out;
  for (int sid = 0; sid < num_species_; ++sid) {
    for (int t = 0; t < num_tiles_; ++t) {
      if (IsQuarantined(sid, t)) {
        out.emplace_back(sid, t);
      }
    }
  }
  return out;
}

void HealthMonitor::AccumulateTilePartial(const HealthTilePartial& part) {
  step_partial_.nonfinite += part.nonfinite;
  step_partial_.out_of_bounds += part.out_of_bounds;
  step_partial_.quarantined += part.quarantined;
  step_partial_.kinetic += part.kinetic;
}

bool HealthMonitor::GuardTileFull(HwContext& hw, const ParticleTile& tile,
                                  const GridGeometry& geom, double margin,
                                  double mass, int sid, int t,
                                  HealthTilePartial* part) {
  const int32_t n = tile.num_slots();
  if (n == 0 || tile.num_live() == 0) {
    return true;
  }
  PhaseScope phase(hw.ledger(), Phase::kHealth);
  const ParticleSoA& soa = tile.soa();
  // The seven lane streams load once per batch; in the fused pass the gather
  // that follows re-reads the same lines warm, so the guard's net step cost
  // is essentially the compare/accumulate ops.
  int64_t batches = 0;
  for (int32_t base = 0; base < n; base += kVpuLanes) {
    const size_t batch =
        static_cast<size_t>(std::min<int32_t>(kVpuLanes, n - base));
    for (const std::vector<double>* lane :
         {&soa.x, &soa.y, &soa.z, &soa.ux, &soa.uy, &soa.uz, &soa.w}) {
      hw.TouchRead(lane->data() + base, sizeof(double) * batch);
    }
    hw.ledger().counters().vpu_mem += 7;
    ++batches;
  }
  hw.ChargeCycles(static_cast<double>(batches) *
                  (cfg_.check_energy ? 9.0 : 5.0) / hw.cfg().vpu_pipes);

  const double xlo = geom.x0 - margin, xhi = geom.x0 + geom.LengthX() + margin;
  const double ylo = geom.y0 - margin, yhi = geom.y0 + geom.LengthY() + margin;
  const double zlo = geom.z0 - margin, zhi = geom.z0 + geom.LengthZ() + margin;
  const double c2 = kSpeedOfLight * kSpeedOfLight;
  int64_t nonfinite = 0, oob = 0;
  double kinetic = 0.0;
  for (int32_t pid = 0; pid < n; ++pid) {
    if (!tile.IsLive(pid)) {
      continue;
    }
    const auto i = static_cast<size_t>(pid);
    const double x = soa.x[i], y = soa.y[i], z = soa.z[i];
    const double ux = soa.ux[i], uy = soa.uy[i], uz = soa.uz[i];
    const double w = soa.w[i];
    if (!std::isfinite(x) || !std::isfinite(y) || !std::isfinite(z) ||
        !std::isfinite(ux) || !std::isfinite(uy) || !std::isfinite(uz) ||
        !std::isfinite(w)) {
      ++nonfinite;
      continue;
    }
    if (x < xlo || x > xhi || y < ylo || y > yhi || z < zlo || z > zhi) {
      ++oob;
      continue;
    }
    if (cfg_.check_energy) {
      const double u2 = ux * ux + uy * uy + uz * uz;
      kinetic += w * (std::sqrt(1.0 + u2 / c2) - 1.0) * mass * c2;
    }
  }
  part->nonfinite += nonfinite;
  part->out_of_bounds += oob;
  part->kinetic += kinetic;
  if (nonfinite + oob > 0) {
    Quarantine(sid, t);
    ++part->quarantined;
    return false;
  }
  return true;
}

bool HealthMonitor::GuardTilePositions(HwContext& hw, const ParticleTile& tile,
                                       const GridGeometry& geom, double margin,
                                       int sid, int t,
                                       HealthTilePartial* part) {
  const int32_t n = tile.num_slots();
  if (n == 0 || tile.num_live() == 0) {
    return true;
  }
  PhaseScope phase(hw.ledger(), Phase::kHealth);
  const ParticleSoA& soa = tile.soa();
  int64_t batches = 0;
  for (int32_t base = 0; base < n; base += kVpuLanes) {
    const size_t batch =
        static_cast<size_t>(std::min<int32_t>(kVpuLanes, n - base));
    hw.TouchRead(soa.x.data() + base, sizeof(double) * batch);
    hw.TouchRead(soa.y.data() + base, sizeof(double) * batch);
    hw.TouchRead(soa.z.data() + base, sizeof(double) * batch);
    hw.ledger().counters().vpu_mem += 3;
    ++batches;
  }
  hw.ChargeCycles(static_cast<double>(batches) * 3.0 / hw.cfg().vpu_pipes);

  const double xlo = geom.x0 - margin, xhi = geom.x0 + geom.LengthX() + margin;
  const double ylo = geom.y0 - margin, yhi = geom.y0 + geom.LengthY() + margin;
  const double zlo = geom.z0 - margin, zhi = geom.z0 + geom.LengthZ() + margin;
  int64_t nonfinite = 0, oob = 0;
  for (int32_t pid = 0; pid < n; ++pid) {
    if (!tile.IsLive(pid)) {
      continue;
    }
    const auto i = static_cast<size_t>(pid);
    const double x = soa.x[i], y = soa.y[i], z = soa.z[i];
    if (!std::isfinite(x) || !std::isfinite(y) || !std::isfinite(z)) {
      ++nonfinite;
      continue;
    }
    if (x < xlo || x > xhi || y < ylo || y > yhi || z < zlo || z > zhi) {
      ++oob;
    }
  }
  part->nonfinite += nonfinite;
  part->out_of_bounds += oob;
  if (nonfinite + oob > 0) {
    Quarantine(sid, t);
    ++part->quarantined;
    return false;
  }
  return true;
}

double HealthMonitor::CurrentTotalEnergy(Simulation& sim,
                                         double kinetic_from_guards,
                                         bool use_guard_kinetic) const {
  const double field = FieldEnergy(sim.fields());
  // FieldEnergy is a pure function; bill its interior read here.
  const double field_elems = static_cast<double>(sim.fields().ex.size()) * 6.0;
  sim.hw().ChargeBulk(2.0 * field_elems, 8.0 * field_elems);
  double kinetic = kinetic_from_guards;
  if (!use_guard_kinetic) {
    kinetic = TotalKineticEnergy(sim);
    double live = 0.0;
    for (int sid = 0; sid < sim.num_species(); ++sid) {
      live += static_cast<double>(sim.block(sid).tiles.TotalLive());
    }
    sim.hw().ChargeBulk(6.0 * live, 8.0 * 4.0 * live);
  }
  return field + kinetic;
}

void HealthMonitor::FinishStep(Simulation& sim, SimStepStats* stats) {
  HwContext& hw = sim.hw();
  PhaseScope phase(hw.ledger(), Phase::kHealth);
  HealthStepReport rep;
  rep.checked = true;
  rep.quarantined_tiles = step_partial_.quarantined;

  if (cfg_.check_particles) {
    rep.particles.count = step_partial_.nonfinite + step_partial_.out_of_bounds;
    rep.particles.status = rep.particles.count > 0 ? SentinelStatus::kTripped
                                                   : SentinelStatus::kOk;
  }

  if (cfg_.check_fields) {
    const FieldSet& f = sim.fields();
    const FieldArray* arrays[] = {&f.ex, &f.ey, &f.ez, &f.bx, &f.by,
                                  &f.bz, &f.jx, &f.jy, &f.jz};
    int64_t bad = 0;
    double max_abs = 0.0;
    double elems = 0.0;
    for (const FieldArray* a : arrays) {
      for (const double v : a->vec()) {
        if (!std::isfinite(v)) {
          ++bad;
        } else {
          max_abs = std::max(max_abs, std::abs(v));
        }
      }
      elems += static_cast<double>(a->size());
    }
    hw.ChargeBulk(2.0 * elems, 8.0 * elems);
    rep.fields.count = bad;
    rep.fields.value = max_abs;
    rep.fields.status = (bad > 0 || max_abs > cfg_.max_field_magnitude)
                            ? SentinelStatus::kTripped
                            : SentinelStatus::kOk;
  }

  if (cfg_.check_census) {
    int64_t live = 0, dropped = 0, injected = 0;
    for (const SpeciesStepStats& s : stats->species) {
      live += s.live;
      dropped += s.dropped;
      injected += s.injected;
    }
    hw.ChargeCycles(8.0);
    if (!have_census_) {
      have_census_ = true;
      rep.census.status = SentinelStatus::kOk;
    } else {
      const int64_t expected = prev_live_ - dropped + injected;
      rep.census.count = expected - live;
      rep.census.status = expected == live ? SentinelStatus::kOk
                                           : SentinelStatus::kTripped;
    }
    prev_live_ = live;
  }

  if (cfg_.check_energy) {
    const double total =
        CurrentTotalEnergy(sim, step_partial_.kinetic, cfg_.check_particles);
    if (!std::isfinite(total)) {
      rep.energy.value = total;
      rep.energy.status = SentinelStatus::kTripped;
    } else if (!have_energy_) {
      have_energy_ = true;
      prev_energy_ = total;
      rep.energy.status = SentinelStatus::kOk;
    } else {
      const double denom = std::max(std::abs(prev_energy_), 1e-300);
      rep.energy.value = std::abs(total - prev_energy_) / denom;
      rep.energy.status = rep.energy.value <= cfg_.max_energy_step_rel_change
                              ? SentinelStatus::kOk
                              : SentinelStatus::kTripped;
      prev_energy_ = total;
    }
  }

  if (cfg_.gauss_interval > 0 && sim.staggered_j() &&
      steps_checked_ % cfg_.gauss_interval == 0) {
    FieldArray rho = DepositChargeDensity(sim);
    const GridGeometry& g = sim.fields().geom;
    FieldArray res(g.nx, g.ny, g.nz, 2);
    GaussResidualField(sim.fields(), rho, &res);
    if (!prev_gauss_residual_.has_value()) {
      gauss_scale_ = std::max(GaussResidualScale(rho), 1e-300);
      rep.gauss.status = SentinelStatus::kOk;
    } else {
      rep.gauss.value =
          MaxResidualChange(*prev_gauss_residual_, res, gauss_scale_);
      rep.gauss.status = rep.gauss.value <= cfg_.max_gauss_residual_drift
                             ? SentinelStatus::kOk
                             : SentinelStatus::kTripped;
    }
    prev_gauss_residual_ = std::move(res);
  }

  if (cfg_.check_cycles) {
    // Modeled cycles this step = ledger total now minus the mark taken at the
    // previous epilogue (so the window spans one full step: particle stages,
    // solver, and the sentinels themselves). The total is the modeled
    // critical path, so a scheduler regression shows up here even when the
    // per-phase sums are unchanged. All inputs are modeled, so the sentinel
    // is bit-deterministic across OpenMP thread counts.
    const double total = hw.ledger().TotalCycles();
    hw.ChargeCycles(6.0);
    if (!have_cycle_mark_) {
      have_cycle_mark_ = true;
      rep.cycles.status = SentinelStatus::kOk;
    } else {
      const double step_cycles = total - prev_total_cycles_;
      const bool armed = cycle_samples_ >= cfg_.cycle_warmup_steps &&
                         cycle_baseline_ > 0.0;
      rep.cycles.count = static_cast<int64_t>(cycle_baseline_);
      if (armed) {
        rep.cycles.value = step_cycles / cycle_baseline_;
        rep.cycles.status = rep.cycles.value <= cfg_.max_cycle_step_factor
                                ? SentinelStatus::kOk
                                : SentinelStatus::kTripped;
      } else {
        rep.cycles.status = SentinelStatus::kOk;
      }
      // A tripped step never feeds the baseline: a sustained fault must keep
      // tripping rather than ratchet the baseline up to meet it.
      if (!rep.cycles.tripped()) {
        constexpr double kAlpha = 0.3;
        cycle_baseline_ = cycle_samples_ == 0
                              ? step_cycles
                              : (1.0 - kAlpha) * cycle_baseline_ +
                                    kAlpha * step_cycles;
        ++cycle_samples_;
      }
    }
    prev_total_cycles_ = hw.ledger().TotalCycles();
  }

  ++steps_checked_;
  stats->health = rep;
}

void HealthMonitor::Rebaseline(Simulation& sim) {
  int64_t live = 0;
  for (int sid = 0; sid < sim.num_species(); ++sid) {
    live += sim.block(sid).tiles.TotalLive();
  }
  prev_live_ = live;
  have_census_ = true;
  if (cfg_.check_energy) {
    // Exact kinetic energy of the restored/scrubbed state (the guard partial
    // describes the discarded timeline).
    prev_energy_ = CurrentTotalEnergy(sim, 0.0, /*use_guard_kinetic=*/false);
    have_energy_ = std::isfinite(prev_energy_);
  }
  prev_gauss_residual_.reset();
  gauss_scale_ = 0.0;
  // The cycle baseline describes the discarded timeline (and a rollback
  // rewinds the modeled clock itself), so re-warm it from scratch.
  have_cycle_mark_ = false;
  prev_total_cycles_ = 0.0;
  cycle_baseline_ = 0.0;
  cycle_samples_ = 0;
  step_partial_ = HealthTilePartial{};
  std::fill(quarantined_.begin(), quarantined_.end(), 0);
}

}  // namespace mpic

#include "src/runtime/recovery.h"

#include <cmath>

#include "src/common/check.h"
#include "src/core/simulation.h"
#include "src/runtime/checkpoint.h"
#include "src/runtime/health.h"

namespace mpic {

ResilientRunner::ResilientRunner(Simulation* sim, const RecoveryConfig& cfg)
    : sim_(sim), cfg_(cfg) {
  MPIC_CHECK_MSG(sim_->health_monitor() != nullptr,
                 "ResilientRunner requires Simulation::EnableHealth()");
}

void ResilientRunner::TakeCheckpoint() {
  CheckpointWriteOptions opts;
  opts.charge = cfg_.charge_model ? &sim_->hw() : nullptr;
  const CheckpointStatus st = SaveCheckpoint(*sim_, &checkpoint_, opts);
  MPIC_CHECK_MSG(st.ok, "in-memory checkpoint of a live simulation failed");
  checkpoint_step_ = sim_->step_count();
  ++stats_.checkpoints_taken;
}

bool ResilientRunner::Run(int steps) {
  const int64_t target = sim_->step_count() + steps;
  sim_->SetFaultInjector(injector_);
  bool ok = true;
  while (sim_->step_count() < target) {
    // Checkpoint believed-good state when due. After a rollback the loop
    // lands back on the checkpointed step; checkpoint_step_ suppresses
    // re-serializing the identical image.
    if (cfg_.checkpoint_interval > 0 &&
        sim_->step_count() % cfg_.checkpoint_interval == 0 &&
        checkpoint_step_ != sim_->step_count()) {
      TakeCheckpoint();
    }
    if (injector_ != nullptr) {
      injector_->ApplyPreStep(sim_);
    }
    sim_->Step();
    const HealthStepReport& rep = sim_->last_sim_stats().health;
    if (rep.checked && rep.tripped()) {
      if (!Recover(rep.Summary())) {
        ok = false;
        break;
      }
    }
  }
  sim_->SetFaultInjector(nullptr);
  return ok;
}

bool ResilientRunner::Recover(const std::string& sentinel_summary) {
  if (stats_.rollbacks + stats_.degraded_recoveries >= cfg_.max_recoveries) {
    return false;
  }
  RecoveryEvent ev;
  // Step() already advanced the counter past the poisoned step.
  ev.trip_step = sim_->step_count() - 1;
  ev.sentinel = sentinel_summary;

  if (checkpoint_step_ >= 0) {
    CheckpointReadOptions opts;
    opts.charge = cfg_.charge_model ? &sim_->hw() : nullptr;
    if (!RestoreCheckpoint(sim_, checkpoint_, opts)) {
      return false;  // the in-memory image itself is damaged: unrecoverable
    }
    ev.restored_step = sim_->step_count();
    ev.steps_lost = ev.trip_step + 1 - ev.restored_step;
    stats_.steps_replayed += ev.steps_lost;
    ++stats_.rollbacks;
  } else if (cfg_.allow_degraded) {
    ScrubSimulation(sim_);
    ev.degraded = true;
    ++stats_.degraded_recoveries;
  } else {
    return false;
  }
  // Either way the census/energy/Gauss baselines describe a discarded
  // timeline now.
  sim_->health_monitor()->Rebaseline(*sim_);
  stats_.events.push_back(std::move(ev));
  return true;
}

int64_t ScrubSimulation(Simulation* sim) {
  int64_t repaired = 0;
  const HealthMonitor* monitor = sim->health_monitor();
  const double max_field =
      monitor != nullptr ? monitor->config().max_field_magnitude : 1e30;

  FieldSet& f = sim->fields();
  for (FieldArray* a : {&f.ex, &f.ey, &f.ez, &f.bx, &f.by, &f.bz, &f.jx,
                        &f.jy, &f.jz}) {
    for (double& v : a->vec()) {
      if (!std::isfinite(v) || std::abs(v) > max_field) {
        v = 0.0;
        ++repaired;
      }
    }
  }

  for (int sid = 0; sid < sim->num_species(); ++sid) {
    SpeciesBlock& b = sim->block(sid);
    const GridGeometry& g = b.tiles.geom();
    for (int t = 0; t < b.tiles.num_tiles(); ++t) {
      ParticleTile& tile = b.tiles.tile(t);
      ParticleSoA& soa = tile.soa();
      const int32_t n = tile.num_slots();
      for (int32_t pid = 0; pid < n; ++pid) {
        if (!tile.IsLive(pid)) {
          continue;
        }
        const auto i = static_cast<size_t>(pid);
        const bool finite =
            std::isfinite(soa.x[i]) && std::isfinite(soa.y[i]) &&
            std::isfinite(soa.z[i]) && std::isfinite(soa.ux[i]) &&
            std::isfinite(soa.uy[i]) && std::isfinite(soa.uz[i]) &&
            std::isfinite(soa.w[i]);
        if (!finite) {
          // Poisoned beyond repair; drop the macro-particle. The engine keeps
          // its sort structures consistent with the removal.
          b.engine.RemoveParticle(b.tiles, t, pid);
          ++repaired;
          continue;
        }
        // Finite lanes can still be poisoned: a momentum inflated past
        // ~1e154 overflows u^2, so the particle's kinetic energy — and with
        // it the energy sentinel's total — evaluates to inf on every
        // subsequent step, and degraded mode could never re-arm. Evaluate
        // the same contribution the sentinel uses and drop on overflow.
        const double c2 = kSpeedOfLight * kSpeedOfLight;
        const double u2 = soa.ux[i] * soa.ux[i] + soa.uy[i] * soa.uy[i] +
                          soa.uz[i] * soa.uz[i];
        const double kinetic =
            soa.w[i] * (std::sqrt(1.0 + u2 / c2) - 1.0) * b.species.mass * c2;
        if (!std::isfinite(kinetic)) {
          b.engine.RemoveParticle(b.tiles, t, pid);
          ++repaired;
          continue;
        }
        if (!g.InDomain(soa.x[i], soa.y[i], soa.z[i])) {
          soa.x[i] = g.WrapX(soa.x[i]);
          soa.y[i] = g.WrapY(soa.y[i]);
          soa.z[i] = g.WrapZ(soa.z[i]);
          if (!g.InDomain(soa.x[i], soa.y[i], soa.z[i])) {
            // fmod rounding can pin an extreme value to the upper domain
            // edge; such a particle has no valid cell, so drop it.
            b.engine.RemoveParticle(b.tiles, t, pid);
          }
          ++repaired;
        }
      }
    }
    // Quarantined tiles skipped their sort scan while particles moved, so the
    // GPMA bins are stale; a full re-initialize (global sort + region
    // registration) restores a clean deterministic layout. Degraded recovery
    // has already abandoned bit-continuity, so the re-sort costs nothing
    // extra in guarantees.
    b.engine.Initialize(b.tiles, sim->fields());
  }
  return repaired;
}

}  // namespace mpic

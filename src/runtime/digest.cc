#include "src/runtime/digest.h"

#include "src/core/simulation.h"

namespace mpic {

namespace {

uint64_t HashDoubles(const std::vector<double>& v, uint64_t h) {
  return Fnv1a(v.data(), v.size() * sizeof(double), h);
}

}  // namespace

uint64_t FieldsDigest(const FieldSet& fields) {
  uint64_t h = kFnvOffsetBasis;
  for (const FieldArray* a : {&fields.ex, &fields.ey, &fields.ez, &fields.bx,
                              &fields.by, &fields.bz, &fields.jx, &fields.jy,
                              &fields.jz}) {
    h = HashDoubles(a->vec(), h);
  }
  return h;
}

uint64_t ParticlesDigest(const TileSet& tiles) {
  uint64_t h = kFnvOffsetBasis;
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    const ParticleTile& tile = tiles.tile(t);
    const ParticleSoA& soa = tile.soa();
    const uint64_t n = soa.size();
    h = Fnv1a(&n, sizeof(n), h);
    for (const std::vector<double>* lane :
         {&soa.x, &soa.y, &soa.z, &soa.ux, &soa.uy, &soa.uz, &soa.w, &soa.xo,
          &soa.yo, &soa.zo}) {
      h = HashDoubles(*lane, h);
    }
    h = Fnv1a(tile.live_bits().data(), tile.live_bits().size(), h);
    h = Fnv1a(tile.free_slots().data(),
              tile.free_slots().size() * sizeof(int32_t), h);
  }
  return h;
}

uint64_t SimulationDigest(const Simulation& sim) {
  uint64_t h = FieldsDigest(sim.fields());
  for (int sid = 0; sid < sim.num_species(); ++sid) {
    h = Mix64(h ^ ParticlesDigest(sim.block(sid).tiles));
  }
  const int64_t step = sim.step_count();
  return Fnv1a(&step, sizeof(step), h);
}

}  // namespace mpic

#include "src/runtime/checkpoint.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/fnv.h"
#include "src/core/simulation.h"

namespace mpic {

namespace {

constexpr char kMagic[8] = {'M', 'P', 'I', 'C', 'C', 'K', 'P', '\1'};
// Version 2: the SPECIES tail gained the re-sort policy's adaptive throughput
// baselines and the three kCostSteal per-tile estimate vectors, the LEDGER
// counters gained the steal pair, and multi-rank machines write a RANKS
// section. Version 3: the SPECIES tail gained the three committed per-tile
// owner vectors (sticky placement replans from them) and the LEDGER counters
// gained the NUMA trio (tasks_stolen_remote, remote_lines, remote_cycles).
// Older images omit state a bit-exact restart needs, so they are rejected
// rather than half-restored.
constexpr uint32_t kVersion = 3;

enum SectionId : uint32_t {
  kSectionMeta = 1,
  kSectionFields = 2,
  kSectionSpecies = 3,
  kSectionLedger = 4,
  kSectionRanks = 5,
};

// ---- Little serialization helpers -------------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {}

  void Bytes(const void* p, size_t n) {
    if (n == 0) {
      return;  // an empty vector's data() may be null
    }
    const auto* b = static_cast<const uint8_t*>(p);
    out_->insert(out_->end(), b, b + n);
  }
  template <typename T>
  void Pod(T v) {
    Bytes(&v, sizeof(T));
  }
  template <typename T>
  void Vec(const std::vector<T>& v) {
    Pod<uint64_t>(v.size());
    Bytes(v.data(), v.size() * sizeof(T));
  }

 private:
  std::vector<uint8_t>* out_;
};

class Reader {
 public:
  Reader(const uint8_t* p, size_t n) : p_(p), n_(n) {}

  bool Bytes(void* dst, size_t n) {
    if (!ok_ || n > n_ - pos_) {
      ok_ = false;
      return false;
    }
    if (n > 0) {  // an empty vector's data() may be null
      std::memcpy(dst, p_ + pos_, n);
      pos_ += n;
    }
    return true;
  }
  template <typename T>
  bool Pod(T* v) {
    return Bytes(v, sizeof(T));
  }
  template <typename T>
  bool Vec(std::vector<T>* v) {
    uint64_t count = 0;
    if (!Pod(&count)) {
      return false;
    }
    if (count > (n_ - pos_) / sizeof(T)) {
      ok_ = false;
      return false;
    }
    v->resize(static_cast<size_t>(count));
    return Bytes(v->data(), static_cast<size_t>(count) * sizeof(T));
  }
  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == n_; }

 private:
  const uint8_t* p_;
  size_t n_;
  size_t pos_ = 0;
  bool ok_ = true;
};

void AppendSection(std::vector<uint8_t>* out, uint32_t id, uint32_t index,
                   const std::vector<uint8_t>& payload) {
  Writer w(out);
  w.Pod<uint32_t>(id);
  w.Pod<uint32_t>(index);
  w.Pod<uint64_t>(payload.size());
  w.Pod<uint64_t>(Fnv1a(payload.data(), payload.size()));
  w.Bytes(payload.data(), payload.size());
}

// ---- Staged (parse-before-mutate) representations ---------------------------

struct MetaSpecies {
  uint64_t name_fnv = 0;
  double charge = 0.0, mass = 0.0;
  int32_t variant = 0, order = 0, scheme = 0;
};

struct Meta {
  int64_t step = 0;
  double time = 0.0, dt = 0.0;
  GridGeometry geom;
  int32_t guard_cells = 0, tile_x = 0, tile_y = 0, tile_z = 0;
  uint8_t staggered_j = 0, moving_window = 0;
  double window_accumulated = 0.0;
  uint64_t injection_seed = 0;
  std::vector<MetaSpecies> species;
};

struct StagedTile {
  std::vector<double> lanes[10];
  std::vector<uint8_t> live;
  std::vector<int32_t> free_slots;
  Gpma::State gpma;
};

struct StagedSpecies {
  std::vector<StagedTile> tiles;
  RankSortStats sort_stats;
  int64_t total_global_sorts = 0;
  // Committed kCostSteal per-tile estimates (what the next step plans from).
  std::vector<double> pass1_est, deposit_est, reduce_est;
  // v3: committed per-tile owners (global worker ids) — the sticky-placement
  // preference and home-domain anchor for the next step's schedule.
  std::vector<int32_t> pass1_own, deposit_own, reduce_own;
};

struct StagedLedger {
  std::vector<double> phase_cycles;
  LedgerCounters counters;
};

struct StagedRanks {
  std::vector<RankCommStats> stats;
};

FieldArray* FieldByIndex(FieldSet& f, int i) {
  FieldArray* arrays[] = {&f.ex, &f.ey, &f.ez, &f.bx, &f.by,
                          &f.bz, &f.jx, &f.jy, &f.jz, &f.rho};
  return arrays[i];
}

void WriteCounters(Writer* w, const LedgerCounters& c) {
  for (const uint64_t v :
       {c.scalar_ops, c.scalar_mem, c.vpu_ops, c.vpu_mem, c.gathers,
        c.scatters, c.mopas, c.mopa_valid_slots, c.atomics, c.l1_hits,
        c.l1_misses, c.l2_hits, c.l2_misses}) {
    w->Pod<uint64_t>(v);
  }
  // v2: the work-stealing pair — a restored kCostSteal run must resume its
  // steal accounting, not restart it from zero.
  w->Pod<uint64_t>(c.tasks_stolen);
  w->Pod<double>(c.steal_cycles);
  // v3: the NUMA trio, same reasoning.
  w->Pod<uint64_t>(c.tasks_stolen_remote);
  w->Pod<uint64_t>(c.remote_lines);
  w->Pod<double>(c.remote_cycles);
}

bool ReadCounters(Reader* r, LedgerCounters* c) {
  for (uint64_t* v :
       {&c->scalar_ops, &c->scalar_mem, &c->vpu_ops, &c->vpu_mem, &c->gathers,
        &c->scatters, &c->mopas, &c->mopa_valid_slots, &c->atomics,
        &c->l1_hits, &c->l1_misses, &c->l2_hits, &c->l2_misses}) {
    if (!r->Pod(v)) {
      return false;
    }
  }
  return r->Pod(&c->tasks_stolen) && r->Pod(&c->steal_cycles) &&
         r->Pod(&c->tasks_stolen_remote) && r->Pod(&c->remote_lines) &&
         r->Pod(&c->remote_cycles);
}

CheckpointStatus ParseError(const std::string& what) {
  return CheckpointStatus::Error("checkpoint: " + what);
}

}  // namespace

// ---- Save --------------------------------------------------------------------

CheckpointStatus SaveCheckpoint(Simulation& sim,
                                std::vector<uint8_t>* out,
                                const CheckpointWriteOptions& opts) {
  if (!sim.initialized()) {
    return ParseError("simulation not initialized");
  }
  out->clear();

  // META.
  std::vector<uint8_t> meta;
  {
    Writer w(&meta);
    w.Pod<int64_t>(sim.step_count());
    w.Pod<double>(sim.time());
    w.Pod<double>(sim.dt());
    const GridGeometry& g = sim.config().geom;
    w.Pod<int32_t>(g.nx);
    w.Pod<int32_t>(g.ny);
    w.Pod<int32_t>(g.nz);
    for (const double v : {g.dx, g.dy, g.dz, g.x0, g.y0, g.z0}) {
      w.Pod<double>(v);
    }
    w.Pod<int32_t>(sim.config().guard_cells);
    w.Pod<int32_t>(sim.config().tile_x);
    w.Pod<int32_t>(sim.config().tile_y);
    w.Pod<int32_t>(sim.config().tile_z);
    w.Pod<uint8_t>(sim.staggered_j() ? 1 : 0);
    w.Pod<uint8_t>(sim.config().moving_window ? 1 : 0);
    w.Pod<double>(sim.window_accumulated());
    w.Pod<uint64_t>(sim.injection_seed());
    w.Pod<int32_t>(sim.num_species());
    for (int sid = 0; sid < sim.num_species(); ++sid) {
      const SpeciesBlock& b = sim.block(sid);
      w.Pod<uint64_t>(
          Fnv1a(b.species.name.data(), b.species.name.size()));
      w.Pod<double>(b.species.charge);
      w.Pod<double>(b.species.mass);
      const EngineConfig& ec = b.engine.config();
      w.Pod<int32_t>(static_cast<int32_t>(ec.variant));
      w.Pod<int32_t>(ec.order);
      w.Pod<int32_t>(static_cast<int32_t>(ec.current_scheme));
    }
  }
  AppendSection(out, kSectionMeta, 0, meta);

  // FIELDS.
  std::vector<uint8_t> fields;
  {
    Writer w(&fields);
    for (int i = 0; i < 10; ++i) {
      w.Vec(FieldByIndex(sim.fields(), i)->vec());
    }
  }
  AppendSection(out, kSectionFields, 0, fields);

  // SPECIES_i.
  for (int sid = 0; sid < sim.num_species(); ++sid) {
    const SpeciesBlock& b = sim.block(sid);
    std::vector<uint8_t> sp;
    Writer w(&sp);
    w.Pod<int32_t>(b.tiles.num_tiles());
    for (int t = 0; t < b.tiles.num_tiles(); ++t) {
      const ParticleTile& tile = b.tiles.tile(t);
      const ParticleSoA& soa = tile.soa();
      for (const std::vector<double>* lane :
           {&soa.x, &soa.y, &soa.z, &soa.ux, &soa.uy, &soa.uz, &soa.w,
            &soa.xo, &soa.yo, &soa.zo}) {
        w.Vec(*lane);
      }
      w.Vec(tile.live_bits());
      w.Vec(tile.free_slots());
      const Gpma::State gs = tile.gpma().ExportState();
      w.Pod<double>(gs.config.gap_fraction);
      w.Pod<int32_t>(gs.config.min_gap_per_bin);
      w.Pod<int32_t>(gs.config.max_shift_bins);
      w.Pod<int32_t>(gs.num_cells);
      w.Pod<int32_t>(gs.num_particles);
      w.Vec(gs.local_index);
      w.Vec(gs.bin_offsets);
      w.Vec(gs.bin_lengths);
      w.Vec(gs.slot_of_pid);
      w.Vec(gs.cell_of_pid);
    }
    const RankSortStats& rs = b.engine.rank_stats();
    w.Pod<int32_t>(rs.steps_since_sort);
    w.Pod<int64_t>(rs.local_rebuilds);
    w.Pod<int64_t>(b.engine.total_global_sorts());
    // v2 tail: the adaptive trigger's throughput baselines — omitting these
    // made the performance trigger re-baseline after restore, breaking
    // bit-exact restart whenever it was enabled.
    w.Pod<double>(rs.empty_slot_ratio);
    w.Pod<double>(rs.step_throughput);
    w.Pod<double>(rs.baseline_throughput);
    // v2 tail: the committed kCostSteal per-tile estimates, so a restored
    // run replans the same schedule (and therefore the same steal ledger)
    // as a never-interrupted one.
    w.Vec(b.pass1_costs.estimate);
    w.Vec(b.deposit_costs.estimate);
    w.Vec(b.reduce_costs.estimate);
    // v3 tail: the committed owners alongside the estimates — sticky
    // placement and the tiles' home domains replan from these, so a restored
    // run places (and steals) exactly like a never-interrupted one.
    w.Vec(b.pass1_costs.owner);
    w.Vec(b.deposit_costs.owner);
    w.Vec(b.reduce_costs.owner);
    AppendSection(out, kSectionSpecies, static_cast<uint32_t>(sid), sp);
  }

  // LEDGER.
  if (opts.include_ledger) {
    std::vector<uint8_t> led;
    Writer w(&led);
    w.Pod<uint32_t>(static_cast<uint32_t>(kNumPhases));
    for (int p = 0; p < kNumPhases; ++p) {
      w.Pod<double>(sim.hw().ledger().PhaseCycles(static_cast<Phase>(p)));
    }
    WriteCounters(&w, sim.hw().ledger().counters());
    AppendSection(out, kSectionLedger, 0, led);
  }

  // RANKS: cumulative per-rank communication totals (multi-rank model only).
  const bool have_ranks = sim.rank_comm() != nullptr;
  if (have_ranks) {
    std::vector<uint8_t> rk;
    Writer w(&rk);
    const std::vector<RankCommStats>& stats = sim.rank_comm()->stats();
    w.Pod<int32_t>(static_cast<int32_t>(stats.size()));
    for (const RankCommStats& s : stats) {
      w.Pod<uint64_t>(s.bytes_sent);
      w.Pod<uint64_t>(s.messages);
      w.Pod<double>(s.comm_cycles);
      w.Pod<uint64_t>(s.migrated_particles);
    }
    AppendSection(out, kSectionRanks, 0, rk);
  }

  // Prepend the header.
  std::vector<uint8_t> file;
  file.reserve(out->size() + 16);
  {
    Writer w(&file);
    w.Bytes(kMagic, sizeof(kMagic));
    w.Pod<uint32_t>(kVersion);
    w.Pod<uint32_t>(
        static_cast<uint32_t>(2 + sim.num_species() +
                              (opts.include_ledger ? 1 : 0) +
                              (have_ranks ? 1 : 0)));
  }
  file.insert(file.end(), out->begin(), out->end());
  *out = std::move(file);

  if (opts.model_sync) {
    // Save-side half of the cycle-exact handshake: continue this run from
    // the same deterministic model state a restored twin rebuilds. Runs
    // after serialization so the image itself is unaffected.
    sim.ModelSyncPoint();
  }

  if (opts.charge != nullptr) {
    // Serialization is a streaming copy of the whole image (read state, write
    // buffer: both directions billed). stream_bytes_per_cycle is per core and
    // the format's per-tile records are independently sizable, so a resident
    // implementation serializes tile-parallel; the modeled critical path is
    // the image split across the machine's cores.
    PhaseScope phase(opts.charge->ledger(), Phase::kHealth);
    opts.charge->ChargeBulk(
        0.0, 2.0 * static_cast<double>(out->size()) /
                 static_cast<double>(opts.charge->cfg().num_cores));
  }
  return CheckpointStatus::Ok();
}

// ---- Restore -------------------------------------------------------------------

CheckpointStatus RestoreCheckpoint(Simulation* sim,
                                   const std::vector<uint8_t>& buf,
                                   const CheckpointReadOptions& opts) {
  if (!sim->initialized()) {
    return ParseError("target simulation not initialized");
  }

  // ---- Phase 1: parse and verify EVERYTHING before mutating anything ----
  if (buf.size() < 16 || std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0) {
    return ParseError("bad magic (not a checkpoint, or truncated header)");
  }
  uint32_t version = 0, n_sections = 0;
  std::memcpy(&version, buf.data() + 8, 4);
  std::memcpy(&n_sections, buf.data() + 12, 4);
  if (version != kVersion) {
    std::ostringstream os;
    os << "unsupported version " << version;
    return ParseError(os.str());
  }

  struct Section {
    uint32_t id = 0, index = 0;
    const uint8_t* payload = nullptr;
    size_t bytes = 0;
  };
  std::vector<Section> sections;
  size_t pos = 16;
  for (uint32_t s = 0; s < n_sections; ++s) {
    if (buf.size() - pos < 24) {
      return ParseError("truncated section header");
    }
    Section sec;
    uint64_t bytes = 0, fnv = 0;
    std::memcpy(&sec.id, buf.data() + pos, 4);
    std::memcpy(&sec.index, buf.data() + pos + 4, 4);
    std::memcpy(&bytes, buf.data() + pos + 8, 8);
    std::memcpy(&fnv, buf.data() + pos + 16, 8);
    pos += 24;
    if (bytes > buf.size() - pos) {
      return ParseError("truncated section payload");
    }
    sec.payload = buf.data() + pos;
    sec.bytes = static_cast<size_t>(bytes);
    pos += sec.bytes;
    if (Fnv1a(sec.payload, sec.bytes) != fnv) {
      std::ostringstream os;
      os << "checksum mismatch in section id " << sec.id;
      return ParseError(os.str());
    }
    sections.push_back(sec);
  }

  const Section* meta_sec = nullptr;
  const Section* fields_sec = nullptr;
  const Section* ledger_sec = nullptr;
  const Section* ranks_sec = nullptr;
  std::vector<const Section*> species_secs(
      static_cast<size_t>(sim->num_species()), nullptr);
  for (const Section& s : sections) {
    switch (s.id) {
      case kSectionMeta:
        meta_sec = &s;
        break;
      case kSectionFields:
        fields_sec = &s;
        break;
      case kSectionLedger:
        ledger_sec = &s;
        break;
      case kSectionRanks:
        ranks_sec = &s;
        break;
      case kSectionSpecies:
        if (s.index >= species_secs.size()) {
          return ParseError("species section index out of range");
        }
        species_secs[s.index] = &s;
        break;
      default:
        break;  // unknown sections are skipped (forward compatibility)
    }
  }
  if (meta_sec == nullptr || fields_sec == nullptr) {
    return ParseError("missing META or FIELDS section");
  }
  for (size_t sid = 0; sid < species_secs.size(); ++sid) {
    if (species_secs[sid] == nullptr) {
      std::ostringstream os;
      os << "missing SPECIES section for species " << sid;
      return ParseError(os.str());
    }
  }

  // META: parse and validate compatibility with the target simulation.
  Meta meta;
  {
    Reader r(meta_sec->payload, meta_sec->bytes);
    r.Pod(&meta.step);
    r.Pod(&meta.time);
    r.Pod(&meta.dt);
    r.Pod(&meta.geom.nx);
    r.Pod(&meta.geom.ny);
    r.Pod(&meta.geom.nz);
    for (double* v : {&meta.geom.dx, &meta.geom.dy, &meta.geom.dz,
                      &meta.geom.x0, &meta.geom.y0, &meta.geom.z0}) {
      r.Pod(v);
    }
    r.Pod(&meta.guard_cells);
    r.Pod(&meta.tile_x);
    r.Pod(&meta.tile_y);
    r.Pod(&meta.tile_z);
    r.Pod(&meta.staggered_j);
    r.Pod(&meta.moving_window);
    r.Pod(&meta.window_accumulated);
    r.Pod(&meta.injection_seed);
    int32_t n_species = 0;
    r.Pod(&n_species);
    if (!r.ok() || n_species < 0 || n_species > 1 << 20) {
      return ParseError("malformed META section");
    }
    meta.species.resize(static_cast<size_t>(n_species));
    for (MetaSpecies& ms : meta.species) {
      r.Pod(&ms.name_fnv);
      r.Pod(&ms.charge);
      r.Pod(&ms.mass);
      r.Pod(&ms.variant);
      r.Pod(&ms.order);
      r.Pod(&ms.scheme);
    }
    if (!r.ok()) {
      return ParseError("malformed META section");
    }
  }
  const SimulationConfig& cfg = sim->config();
  if (static_cast<int>(meta.species.size()) != sim->num_species()) {
    return ParseError("species count mismatch");
  }
  if (meta.geom.nx != cfg.geom.nx || meta.geom.ny != cfg.geom.ny ||
      meta.geom.nz != cfg.geom.nz || meta.geom.dx != cfg.geom.dx ||
      meta.geom.dy != cfg.geom.dy || meta.geom.dz != cfg.geom.dz ||
      meta.geom.x0 != cfg.geom.x0 || meta.geom.y0 != cfg.geom.y0) {
    return ParseError("grid geometry mismatch");
  }
  if (meta.moving_window != (cfg.moving_window ? 1 : 0)) {
    return ParseError("moving-window configuration mismatch");
  }
  if (meta.moving_window == 0 && meta.geom.z0 != cfg.geom.z0) {
    return ParseError("grid geometry mismatch (z origin)");
  }
  if (meta.guard_cells != cfg.guard_cells || meta.tile_x != cfg.tile_x ||
      meta.tile_y != cfg.tile_y || meta.tile_z != cfg.tile_z) {
    return ParseError("guard/tile configuration mismatch");
  }
  if (meta.dt != sim->dt()) {
    return ParseError("dt mismatch (different CFL or solver configuration)");
  }
  if (meta.staggered_j != (sim->staggered_j() ? 1 : 0)) {
    return ParseError("current-scheme (J staggering) mismatch");
  }
  for (int sid = 0; sid < sim->num_species(); ++sid) {
    const SpeciesBlock& b = sim->block(sid);
    const MetaSpecies& ms = meta.species[static_cast<size_t>(sid)];
    const EngineConfig& ec = b.engine.config();
    if (ms.name_fnv != Fnv1a(b.species.name.data(), b.species.name.size()) ||
        ms.charge != b.species.charge || ms.mass != b.species.mass ||
        ms.variant != static_cast<int32_t>(ec.variant) ||
        ms.order != ec.order ||
        ms.scheme != static_cast<int32_t>(ec.current_scheme)) {
      std::ostringstream os;
      os << "species " << sid << " identity/engine mismatch";
      return ParseError(os.str());
    }
  }

  // FIELDS: stage and validate sizes.
  std::vector<double> staged_fields[10];
  {
    Reader r(fields_sec->payload, fields_sec->bytes);
    for (auto& staged_field : staged_fields) {
      r.Vec(&staged_field);
    }
    if (!r.ok()) {
      return ParseError("malformed FIELDS section");
    }
    for (int i = 0; i < 10; ++i) {
      if (staged_fields[i].size() != FieldByIndex(sim->fields(), i)->vec().size()) {
        return ParseError("field array size mismatch");
      }
    }
  }

  // SPECIES: stage and validate structure.
  std::vector<StagedSpecies> staged(static_cast<size_t>(sim->num_species()));
  for (int sid = 0; sid < sim->num_species(); ++sid) {
    const Section* sec = species_secs[static_cast<size_t>(sid)];
    StagedSpecies& ss = staged[static_cast<size_t>(sid)];
    Reader r(sec->payload, sec->bytes);
    int32_t n_tiles = 0;
    r.Pod(&n_tiles);
    if (!r.ok() || n_tiles != sim->block(sid).tiles.num_tiles()) {
      return ParseError("tile count mismatch");
    }
    ss.tiles.resize(static_cast<size_t>(n_tiles));
    for (StagedTile& st : ss.tiles) {
      for (auto& lane : st.lanes) {
        r.Vec(&lane);
      }
      r.Vec(&st.live);
      r.Vec(&st.free_slots);
      r.Pod(&st.gpma.config.gap_fraction);
      r.Pod(&st.gpma.config.min_gap_per_bin);
      r.Pod(&st.gpma.config.max_shift_bins);
      r.Pod(&st.gpma.num_cells);
      r.Pod(&st.gpma.num_particles);
      r.Vec(&st.gpma.local_index);
      r.Vec(&st.gpma.bin_offsets);
      r.Vec(&st.gpma.bin_lengths);
      r.Vec(&st.gpma.slot_of_pid);
      r.Vec(&st.gpma.cell_of_pid);
      if (!r.ok()) {
        return ParseError("malformed SPECIES section");
      }
      const size_t n = st.lanes[0].size();
      for (const auto& lane : st.lanes) {
        if (lane.size() != n) {
          return ParseError("particle lane size mismatch");
        }
      }
      if (st.live.size() != n) {
        return ParseError("live bitmap size mismatch");
      }
      size_t live_count = 0;
      for (const uint8_t b : st.live) {
        live_count += b != 0 ? 1 : 0;
      }
      if (live_count + st.free_slots.size() != n) {
        return ParseError("live/free census mismatch");
      }
      for (const int32_t f : st.free_slots) {
        if (f < 0 || static_cast<size_t>(f) >= n ||
            st.live[static_cast<size_t>(f)] != 0) {
          return ParseError("free-slot stack inconsistent with live bitmap");
        }
      }
      if (st.gpma.num_cells > 0) {
        if (st.gpma.bin_offsets.size() !=
                static_cast<size_t>(st.gpma.num_cells) + 1 ||
            st.gpma.bin_lengths.size() !=
                static_cast<size_t>(st.gpma.num_cells) ||
            st.gpma.local_index.size() !=
                static_cast<size_t>(st.gpma.bin_offsets.back())) {
          return ParseError("GPMA structure inconsistent");
        }
      }
    }
    r.Pod(&ss.sort_stats.steps_since_sort);
    r.Pod(&ss.sort_stats.local_rebuilds);
    r.Pod(&ss.total_global_sorts);
    r.Pod(&ss.sort_stats.empty_slot_ratio);
    r.Pod(&ss.sort_stats.step_throughput);
    r.Pod(&ss.sort_stats.baseline_throughput);
    r.Vec(&ss.pass1_est);
    r.Vec(&ss.deposit_est);
    r.Vec(&ss.reduce_est);
    r.Vec(&ss.pass1_own);
    r.Vec(&ss.deposit_own);
    r.Vec(&ss.reduce_own);
    if (!r.ok()) {
      return ParseError("malformed SPECIES section tail");
    }
  }

  // LEDGER (optional).
  StagedLedger staged_ledger;
  bool have_ledger = false;
  if (opts.restore_ledger && ledger_sec != nullptr) {
    Reader r(ledger_sec->payload, ledger_sec->bytes);
    uint32_t n_phases = 0;
    r.Pod(&n_phases);
    if (!r.ok() || n_phases > 64) {
      return ParseError("malformed LEDGER section");
    }
    staged_ledger.phase_cycles.resize(n_phases);
    for (uint32_t p = 0; p < n_phases; ++p) {
      r.Pod(&staged_ledger.phase_cycles[p]);
    }
    if (!ReadCounters(&r, &staged_ledger.counters) || !r.ok()) {
      return ParseError("malformed LEDGER section");
    }
    have_ledger = true;
  }

  // RANKS (present iff the saving machine modeled multiple ranks). Applied
  // only when the target models the same rank count; a rank-count change is
  // a machine reconfiguration, and the per-rank history is meaningless then.
  StagedRanks staged_ranks;
  bool have_ranks_state = false;
  if (ranks_sec != nullptr && sim->rank_comm() != nullptr) {
    Reader r(ranks_sec->payload, ranks_sec->bytes);
    int32_t n_ranks = 0;
    r.Pod(&n_ranks);
    if (!r.ok() || n_ranks < 0 || n_ranks > 1 << 20) {
      return ParseError("malformed RANKS section");
    }
    if (n_ranks != sim->rank_comm()->num_ranks()) {
      return ParseError("rank count mismatch");
    }
    staged_ranks.stats.resize(static_cast<size_t>(n_ranks));
    for (RankCommStats& s : staged_ranks.stats) {
      r.Pod(&s.bytes_sent);
      r.Pod(&s.messages);
      r.Pod(&s.comm_cycles);
      r.Pod(&s.migrated_particles);
    }
    if (!r.ok()) {
      return ParseError("malformed RANKS section");
    }
    have_ranks_state = true;
  }

  // ---- Phase 2: everything verified — apply (no failure paths below) ----
  sim->RestoreGeometry(meta.geom);
  for (int i = 0; i < 10; ++i) {
    // Copy in place: the field arrays are registered with the modeled address
    // map by pointer, so their storage must not reallocate.
    std::vector<double>& dst = FieldByIndex(sim->fields(), i)->vec();
    std::copy(staged_fields[i].begin(), staged_fields[i].end(), dst.begin());
  }
  for (int sid = 0; sid < sim->num_species(); ++sid) {
    SpeciesBlock& b = sim->block(sid);
    StagedSpecies& ss = staged[static_cast<size_t>(sid)];
    for (int t = 0; t < b.tiles.num_tiles(); ++t) {
      StagedTile& st = ss.tiles[static_cast<size_t>(t)];
      ParticleSoA soa;
      soa.x = std::move(st.lanes[0]);
      soa.y = std::move(st.lanes[1]);
      soa.z = std::move(st.lanes[2]);
      soa.ux = std::move(st.lanes[3]);
      soa.uy = std::move(st.lanes[4]);
      soa.uz = std::move(st.lanes[5]);
      soa.w = std::move(st.lanes[6]);
      soa.xo = std::move(st.lanes[7]);
      soa.yo = std::move(st.lanes[8]);
      soa.zo = std::move(st.lanes[9]);
      ParticleTile& tile = b.tiles.tile(t);
      tile.RestoreStorage(std::move(soa), std::move(st.live),
                          std::move(st.free_slots));
      tile.gpma().ImportState(std::move(st.gpma));
    }
    b.engine.RestoreSortState(ss.sort_stats, ss.total_global_sorts);
    b.pass1_costs.estimate = std::move(ss.pass1_est);
    b.deposit_costs.estimate = std::move(ss.deposit_est);
    b.reduce_costs.estimate = std::move(ss.reduce_est);
    b.pass1_costs.owner = std::move(ss.pass1_own);
    b.deposit_costs.owner = std::move(ss.deposit_own);
    b.reduce_costs.owner = std::move(ss.reduce_own);
  }
  sim->RestoreClock(meta.step, meta.time);
  sim->set_injection_seed(meta.injection_seed);
  sim->set_window_accumulated(meta.window_accumulated);

  if (have_ledger) {
    CostLedger& ledger = sim->hw().ledger();
    ledger.Reset();
    for (size_t p = 0;
         p < staged_ledger.phase_cycles.size() && p < kNumPhases; ++p) {
      ledger.SetPhase(static_cast<Phase>(p));
      ledger.AddCycles(staged_ledger.phase_cycles[p]);
    }
    ledger.SetPhase(Phase::kOther);
    ledger.counters() = staged_ledger.counters;
  }
  if (have_ranks_state) {
    sim->rank_comm()->mutable_stats() = std::move(staged_ranks.stats);
  }

  if (opts.model_sync) {
    // Restore-side half of the cycle-exact handshake. Runs after the state
    // apply (the tile SoA storage just moved, so the old registrations are
    // stale either way) and before the serialization charge, mirroring the
    // save side's serialize -> sync -> charge order.
    sim->ModelSyncPoint();
  }

  if (opts.charge != nullptr) {
    // Tile-parallel like the save path: read buffer, write state.
    PhaseScope phase(opts.charge->ledger(), Phase::kHealth);
    opts.charge->ChargeBulk(
        0.0, 2.0 * static_cast<double>(buf.size()) /
                 static_cast<double>(opts.charge->cfg().num_cores));
  }
  return CheckpointStatus::Ok();
}

// ---- File wrappers -------------------------------------------------------------

CheckpointStatus SaveCheckpointFile(Simulation& sim,
                                    const std::string& path,
                                    const CheckpointWriteOptions& opts) {
  std::vector<uint8_t> buf;
  CheckpointStatus st = SaveCheckpoint(sim, &buf, opts);
  if (!st) {
    return st;
  }
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    return ParseError("cannot open '" + path + "' for writing");
  }
  f.write(reinterpret_cast<const char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  if (!f.good()) {
    return ParseError("short write to '" + path + "'");
  }
  return CheckpointStatus::Ok();
}

CheckpointStatus RestoreCheckpointFile(Simulation* sim,
                                       const std::string& path,
                                       const CheckpointReadOptions& opts) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) {
    return ParseError("cannot open '" + path + "' for reading");
  }
  const std::streamsize size = f.tellg();
  f.seekg(0);
  std::vector<uint8_t> buf(static_cast<size_t>(size));
  f.read(reinterpret_cast<char*>(buf.data()), size);
  if (!f.good()) {
    return ParseError("short read from '" + path + "'");
  }
  return RestoreCheckpoint(sim, buf, opts);
}

}  // namespace mpic

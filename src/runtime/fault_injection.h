// Deterministic fault injection for resilience testing.
//
// Faults model transient memory corruption (SEU-style bit flips) and lost
// migration buffers. Site selection is counter-based (Rng::ForStream over the
// plan seed and the spec index), so a plan replays the identical fault on any
// schedule, core count, or thread count — which is what lets the recovery
// tests assert bit-identical completion digests: the fault is transient, the
// rollback re-executes from a pre-fault checkpoint, and the replayed timeline
// is clean.
//
// Each spec fires once (kDropStagedMovers arms at spec.step and fires at the
// first step with movers actually staged). ApplyPreStep handles the memory
// faults immediately before Simulation::Step(); the mover drop is invoked by
// the step pipeline between the scan and DeliverMovers through
// StepPipelineInputs::injector.

#ifndef MPIC_SRC_RUNTIME_FAULT_INJECTION_H_
#define MPIC_SRC_RUNTIME_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpic {

class Simulation;
struct SpeciesBlock;

enum class FaultKind : int32_t {
  // Flip one bit of one field-array node (see FaultSpec::field/bit).
  kFieldBitFlip = 0,
  // Flip one bit of one live particle's SoA lane.
  kParticleBitFlip,
  // Overwrite several live slots' lanes in one tile with NaN-payload garbage
  // (a corrupted cache line landing across the SoA).
  kTileSoACorrupt,
  // Discard one tile's staged cross-tile movers before delivery (a lost
  // migration buffer). The particles were already removed from the source
  // tile, so the census sentinel observes the loss.
  kDropStagedMovers,
};
const char* FaultKindName(FaultKind k);

struct FaultSpec {
  FaultKind kind = FaultKind::kFieldBitFlip;
  // Step count at which the fault fires (kDropStagedMovers: arms here, fires
  // at the first step >= this with staged movers).
  int64_t step = 0;
  // Target species (particle/mover faults).
  int species = 0;
  // Field index 0..8: ex ey ez bx by bz jx jy jz (field faults).
  int field = 0;
  // Particle lane 0..9: x y z ux uy uz w xo yo zo (particle faults).
  int lane = 0;
  // Bit to flip. 62 (the exponent MSB) sends any normal value hundreds of
  // decades out — guaranteed detectable by the bounds/magnitude/energy
  // sentinels; low mantissa bits model silent precision faults instead.
  int bit = 62;
  // Fields: flip the max-|v| interior node (detectable by construction —
  // flipping a bit of 0.0 yields a plain power of two no sentinel can
  // distinguish from physics). False picks a hashed interior node.
  bool target_max = true;
  // Tile index, or -1 for a hashed choice (walks forward to a non-empty tile).
  int tile = -1;
  // Live slots corrupted by kTileSoACorrupt.
  int count = 4;
};

struct FaultPlan {
  uint64_t seed = 0xFA17;
  std::vector<FaultSpec> faults;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Applies the memory faults (field/particle/SoA) scheduled for
  // sim->step_count(). Call immediately before sim->Step() — the recovery
  // runner does. Returns the number of faults applied.
  int ApplyPreStep(Simulation* sim);

  // Step-pipeline hook (fused schedule), between the scan and DeliverMovers:
  // fires any armed kDropStagedMovers spec for this species. Returns the
  // number of particles dropped.
  int64_t OnMoversStaged(SpeciesBlock& block, int sid, int64_t step);

  int64_t faults_applied() const { return applied_; }
  // Re-arms every spec (for reuse across runs of one plan).
  void Reset();

 private:
  FaultPlan plan_;
  std::vector<uint8_t> fired_;
  int64_t applied_ = 0;
};

// ---- Checkpoint corruption helpers (tests/bench) ----------------------------

// Truncates a serialized checkpoint to `keep_bytes`.
void TruncateCheckpoint(std::vector<uint8_t>* buf, size_t keep_bytes);

// Flips one deterministically chosen bit in the section data (past the file
// header), modeling storage corruption the section checksums must catch.
void FlipCheckpointBit(std::vector<uint8_t>* buf, uint64_t seed);

}  // namespace mpic

#endif  // MPIC_SRC_RUNTIME_FAULT_INJECTION_H_

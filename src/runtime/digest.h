// Bit-identity digests over simulation state: FNV-1a chained over the raw
// FP64 bytes, so two states digest equal iff they are bitwise equal. The
// checkpoint tests and bench_abl_resilience gate on these — a restored run
// must digest identically to the uninterrupted run, across schedules and
// core counts.

#ifndef MPIC_SRC_RUNTIME_DIGEST_H_
#define MPIC_SRC_RUNTIME_DIGEST_H_

#include <cstdint>

#include "src/common/fnv.h"
#include "src/grid/field_set.h"
#include "src/particles/tile_set.h"

namespace mpic {

class Simulation;

// Digest of the E, B, and J arrays (raw bytes, guard nodes included).
uint64_t FieldsDigest(const FieldSet& fields);

// Digest of one species' full particle storage: per tile, the slot count, all
// ten SoA lanes, the live bitmap, and the free-slot stack. This pins not just
// the live physics values but the slot assignment and recycling order, so two
// states digest equal only if every subsequent step executes identically.
uint64_t ParticlesDigest(const TileSet& tiles);

// Fields + every species' particles + the step counter: the whole-simulation
// bit-identity gate.
uint64_t SimulationDigest(const Simulation& sim);

}  // namespace mpic

#endif  // MPIC_SRC_RUNTIME_DIGEST_H_

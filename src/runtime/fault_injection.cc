#include "src/runtime/fault_injection.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/rng.h"
#include "src/core/simulation.h"
#include "src/core/species_block.h"

namespace mpic {

namespace {

// Flips `bit` of v's IEEE-754 image. bit < 0 selects the most significant
// CLEAR exponent bit — still a single-bit flip, but adaptively sited so the
// magnitude always inflates by >= 2^512 (or overflows to Inf): the
// "guaranteed detectable" configuration the recovery tests use. A fixed bit
// models an arbitrary SEU instead (low mantissa bits are silent precision
// faults by design).
double FlipValueBit(double v, int bit) {
  uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  if (bit >= 0) {
    u ^= 1ull << (bit & 63);
  } else {
    int chosen = 51;  // all-exponent-set (already NaN/Inf): flip mantissa MSB
    for (int b = 62; b >= 52; --b) {
      if ((u & (1ull << b)) == 0) {
        chosen = b;
        break;
      }
    }
    u ^= 1ull << chosen;
  }
  std::memcpy(&v, &u, sizeof(v));
  return v;
}

double QuietNan(uint64_t payload) {
  const uint64_t u = 0x7FF8000000000000ull | (payload & 0x0007FFFFFFFFFFFFull);
  double v = 0.0;
  std::memcpy(&v, &u, sizeof(v));
  return v;
}

FieldArray* FieldByIndex(FieldSet& f, int i) {
  FieldArray* arrays[] = {&f.ex, &f.ey, &f.ez, &f.bx, &f.by,
                          &f.bz, &f.jx, &f.jy, &f.jz};
  return arrays[i < 0 || i > 8 ? 0 : i];
}

std::vector<double>* LaneByIndex(ParticleSoA& soa, int i) {
  std::vector<double>* lanes[] = {&soa.x,  &soa.y,  &soa.z, &soa.ux, &soa.uy,
                                  &soa.uz, &soa.w,  &soa.xo, &soa.yo, &soa.zo};
  return lanes[i < 0 || i > 9 ? 0 : i];
}

// First live pid at or after `start` (wrapping); -1 if the tile is empty.
int32_t NextLiveSlot(const ParticleTile& tile, int32_t start) {
  const int32_t n = tile.num_slots();
  if (n == 0 || tile.num_live() == 0) {
    return -1;
  }
  for (int32_t i = 0; i < n; ++i) {
    const int32_t pid = static_cast<int32_t>((start + i) % n);
    if (tile.IsLive(pid)) {
      return pid;
    }
  }
  return -1;
}

}  // namespace

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kFieldBitFlip:
      return "field-bit-flip";
    case FaultKind::kParticleBitFlip:
      return "particle-bit-flip";
    case FaultKind::kTileSoACorrupt:
      return "tile-soa-corrupt";
    case FaultKind::kDropStagedMovers:
      return "drop-staged-movers";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  fired_.assign(plan_.faults.size(), 0);
}

void FaultInjector::Reset() {
  std::fill(fired_.begin(), fired_.end(), 0);
  applied_ = 0;
}

int FaultInjector::ApplyPreStep(Simulation* sim) {
  int applied_now = 0;
  for (size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    if (fired_[i] != 0 || spec.kind == FaultKind::kDropStagedMovers ||
        spec.step != sim->step_count()) {
      continue;
    }
    Rng rng = Rng::ForStream(plan_.seed, static_cast<uint64_t>(i),
                             static_cast<uint64_t>(spec.step), 7);
    switch (spec.kind) {
      case FaultKind::kFieldBitFlip: {
        // Restrict to unique interior nodes ([0, n-1] per axis): guard nodes
        // and the upper periodic image are refilled from the interior every
        // step, which would silently launder the fault before any sentinel
        // could observe it.
        FieldArray& a = *FieldByIndex(sim->fields(), spec.field);
        if (a.size() == 0 || a.nx() == 0 || a.ny() == 0 || a.nz() == 0) {
          break;
        }
        int fi = 0, fj = 0, fk = 0;
        if (spec.target_max) {
          double best = -1.0;
          for (int k = 0; k < a.nz(); ++k) {
            for (int j = 0; j < a.ny(); ++j) {
              for (int i = 0; i < a.nx(); ++i) {
                const double m = std::abs(a.At(i, j, k));
                if (m > best) {
                  best = m;
                  fi = i;
                  fj = j;
                  fk = k;
                }
              }
            }
          }
        } else {
          fi = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(a.nx())));
          fj = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(a.ny())));
          fk = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(a.nz())));
        }
        a.At(fi, fj, fk) =
            FlipValueBit(a.At(fi, fj, fk), spec.bit >= 0 ? spec.bit : -1);
        ++applied_now;
        break;
      }
      case FaultKind::kParticleBitFlip:
      case FaultKind::kTileSoACorrupt: {
        if (spec.species < 0 || spec.species >= sim->num_species()) {
          break;
        }
        SpeciesBlock& b = sim->block(spec.species);
        const int n_tiles = b.tiles.num_tiles();
        const int start =
            spec.tile >= 0
                ? spec.tile % n_tiles
                : static_cast<int>(
                      rng.NextBelow(static_cast<uint64_t>(n_tiles)));
        ParticleTile* tile = nullptr;
        for (int j = 0; j < n_tiles; ++j) {
          ParticleTile& cand = b.tiles.tile((start + j) % n_tiles);
          if (cand.num_live() > 0) {
            tile = &cand;
            break;
          }
        }
        if (tile == nullptr) {
          break;  // species has no particles; the fault lands on nothing
        }
        const int32_t slot0 = NextLiveSlot(
            *tile, static_cast<int32_t>(rng.NextBelow(
                       static_cast<uint64_t>(tile->num_slots()))));
        if (spec.kind == FaultKind::kParticleBitFlip) {
          std::vector<double>& lane = *LaneByIndex(tile->soa(), spec.lane);
          lane[static_cast<size_t>(slot0)] =
              FlipValueBit(lane[static_cast<size_t>(slot0)], spec.bit);
        } else {
          int32_t pid = slot0;
          const int count =
              std::min<int>(spec.count, tile->num_live());
          for (int c = 0; c < count && pid >= 0; ++c) {
            for (int lane = 0; lane < 7; ++lane) {
              (*LaneByIndex(tile->soa(), lane))[static_cast<size_t>(pid)] =
                  QuietNan(rng.NextU64());
            }
            pid = NextLiveSlot(*tile, pid + 1);
          }
        }
        ++applied_now;
        break;
      }
      case FaultKind::kDropStagedMovers:
        break;  // handled by OnMoversStaged
    }
    fired_[i] = 1;
  }
  applied_ += applied_now;
  return applied_now;
}

int64_t FaultInjector::OnMoversStaged(SpeciesBlock& block, int sid,
                                      int64_t step) {
  int64_t dropped = 0;
  for (size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    if (fired_[i] != 0 || spec.kind != FaultKind::kDropStagedMovers ||
        spec.species != sid || step < spec.step) {
      continue;
    }
    Rng rng = Rng::ForStream(plan_.seed, static_cast<uint64_t>(i),
                             static_cast<uint64_t>(step), 11);
    const int n_tiles = block.tiles.num_tiles();
    const int start =
        spec.tile >= 0
            ? spec.tile % n_tiles
            : static_cast<int>(rng.NextBelow(static_cast<uint64_t>(n_tiles)));
    for (int j = 0; j < n_tiles; ++j) {
      const int64_t d = block.engine.ClearStagedMovers((start + j) % n_tiles);
      if (d > 0) {
        dropped += d;
        break;  // one tile's migration buffer is lost, not all of them
      }
    }
    if (dropped > 0) {
      fired_[i] = 1;  // armed specs stay pending until movers actually exist
      ++applied_;
    }
  }
  return dropped;
}

void TruncateCheckpoint(std::vector<uint8_t>* buf, size_t keep_bytes) {
  if (keep_bytes < buf->size()) {
    buf->resize(keep_bytes);
  }
}

void FlipCheckpointBit(std::vector<uint8_t>* buf, uint64_t seed) {
  if (buf->size() <= 17) {
    return;
  }
  const size_t idx =
      16 + static_cast<size_t>(Mix64(seed) % (buf->size() - 16));
  const int bit = static_cast<int>(Mix64(seed ^ 0x9E3779B97F4A7C15ull) % 8);
  (*buf)[idx] ^= static_cast<uint8_t>(1u << bit);
}

}  // namespace mpic

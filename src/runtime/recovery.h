// Rollback recovery: the policy loop tying the resilience layer together.
//
// ResilientRunner wraps Simulation::Step() with (a) periodic in-memory
// checkpoints of believed-good state and (b) a recovery action when the step's
// health report trips:
//
//   rollback — restore the last good checkpoint and replay. Because every
//              sentinel is deterministic and the fault model is transient
//              (each fault fires once), the replayed timeline is clean and
//              the run completes with a digest bit-identical to a run that
//              never faulted — the property tests/resilience_test.cc and
//              bench_abl_resilience gate on.
//   degraded — when no checkpoint exists (or rollback is exhausted) and
//              allow_degraded is set: scrub the poisoned state in place
//              (remove non-finite particles, wrap escaped positions, zero
//              poisoned field nodes, rebuild the sort structures) and carry
//              on. Physics continuity is abandoned; availability is kept.
//
// The modeled cost of checkpoint serialization and restore traffic is billed
// under Phase::kHealth when charge_model is set, so the MTTR/overhead tables
// in bench_abl_resilience come straight off the ledger.

#ifndef MPIC_SRC_RUNTIME_RECOVERY_H_
#define MPIC_SRC_RUNTIME_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/fault_injection.h"

namespace mpic {

class Simulation;

struct RecoveryConfig {
  // Steps between in-memory checkpoints; 0 disables checkpointing (degraded
  // mode becomes the only recovery).
  int checkpoint_interval = 10;
  // Recovery attempts (rollback or degraded) before giving up.
  int max_recoveries = 8;
  // Scrub-and-continue when no checkpoint is available.
  bool allow_degraded = true;
  // Bill checkpoint/restore serialization to the ledger (Phase::kHealth).
  bool charge_model = true;
};

struct RecoveryEvent {
  int64_t trip_step = 0;      // step whose health report tripped
  int64_t restored_step = -1; // step count after rollback (-1 for degraded)
  int64_t steps_lost = 0;     // discarded steps a rollback must replay
  bool degraded = false;
  std::string sentinel;       // Summary() of the tripped report
};

struct RecoveryStats {
  int64_t checkpoints_taken = 0;
  int64_t rollbacks = 0;
  int64_t degraded_recoveries = 0;
  int64_t steps_replayed = 0;
  std::vector<RecoveryEvent> events;
};

class ResilientRunner {
 public:
  // `sim` must have health sentinels enabled (Simulation::EnableHealth) —
  // without detection there is nothing to recover from.
  ResilientRunner(Simulation* sim, const RecoveryConfig& cfg = {});

  void set_injector(FaultInjector* injector) { injector_ = injector; }

  // Advances the simulation to step_count() + steps, recovering from any
  // sentinel trip on the way. Returns false if a trip could not be recovered
  // (recovery budget exhausted, or no checkpoint and degraded disallowed).
  bool Run(int steps);

  const RecoveryStats& stats() const { return stats_; }
  int64_t last_checkpoint_step() const { return checkpoint_step_; }

 private:
  void TakeCheckpoint();
  bool Recover(const std::string& sentinel_summary);

  Simulation* sim_;
  RecoveryConfig cfg_;
  FaultInjector* injector_ = nullptr;
  std::vector<uint8_t> checkpoint_;
  int64_t checkpoint_step_ = -1;
  RecoveryStats stats_;
};

// Degraded repair of a poisoned simulation, in place: removes particles with
// non-finite lanes or a non-finite kinetic energy (a finite momentum past
// ~1e154 overflows u^2 and would pin the energy sentinel at inf forever),
// wraps finite escaped positions back into the domain,
// zeroes non-finite or over-magnitude field nodes, rebuilds each species'
// sort structures (the quarantined tiles' GPMAs are stale), and re-arms the
// health baselines. Returns the number of elements repaired (particles
// removed + positions wrapped + field nodes zeroed).
int64_t ScrubSimulation(Simulation* sim);

}  // namespace mpic

#endif  // MPIC_SRC_RUNTIME_RECOVERY_H_

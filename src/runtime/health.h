// Per-step health sentinels (the detection half of the resilience layer; the
// recovery half is src/runtime/recovery.h).
//
// Detection is split to match where each fault class becomes visible:
//
//   GuardTileFull      — pass-1 prologue, before the gather indexes the grid
//                        with the tile's positions: full-lane scan (x/y/z/
//                        ux/uy/uz/w) for non-finite values and out-of-domain
//                        positions, plus the kinetic-energy partial the
//                        energy sentinel consumes. A memory fault injected
//                        into a particle lane is caught here, before the
//                        poisoned position can index out of bounds.
//   GuardTilePositions — post-push, before the periodic boundary wrap:
//                        position-only recheck. A non-finite field gathered
//                        this step turns into a non-finite push result within
//                        the same pass; the wrap (fmod-based) would silently
//                        launder any finite excursion and CellX(NaN) is
//                        undefined, so this is the last point the evidence
//                        still exists.
//   FinishStep         — step epilogue: E/B/J non-finite + magnitude scan,
//                        particle-census conservation (prev + injected -
//                        dropped == live), total-energy drift, and (optional,
//                        Esirkepov only) Gauss-residual drift.
//
// A tile either guard trips is *quarantined* for the rest of the step: the
// pipeline skips its gather/push/boundary/scan/deposit so poisoned lanes are
// never consumed, and its J contribution is zero — exactly the degraded
// "zero-and-continue" semantics recovery falls back to when no checkpoint
// exists. Quarantine is per (species, tile) and resets each step.
//
// All checks are value-based and deterministic, so a run with sentinels
// enabled stays bit-identical across core and thread counts; their modeled
// cost is charged under Phase::kHealth, which is excluded from
// DepositionCycles() so the re-sort policy's throughput trigger never sees it.

#ifndef MPIC_SRC_RUNTIME_HEALTH_H_
#define MPIC_SRC_RUNTIME_HEALTH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/grid/field_array.h"
#include "src/grid/grid_geometry.h"
#include "src/hw/hw_context.h"
#include "src/particles/particle_tile.h"

namespace mpic {

class Simulation;
struct SimStepStats;

struct HealthConfig {
  // Per-particle lane guards (GuardTileFull / GuardTilePositions).
  bool check_particles = true;
  // E/B/J non-finite + magnitude scan at the step epilogue.
  bool check_fields = true;
  // Particle-census conservation: prev_live + injected - dropped == live.
  bool check_census = true;
  // Total (field + kinetic) energy step-drift bound.
  bool check_energy = true;
  // Gauss-residual drift check every N-th monitored step; 0 disables. Only
  // meaningful under the Esirkepov scheme, and expensive (a full charge
  // deposit), so it defaults off.
  int gauss_interval = 0;
  // Cycle-ledger regression sentinel: trip when a step's modeled cycles
  // exceed the rolling baseline by max_cycle_step_factor. This catches
  // performance faults the physics sentinels never see — a poisoned cost
  // estimate, a scheduler regression, a tile that suddenly re-sorts every
  // step — while staying deterministic (modeled cycles, not wall clock).
  // Remote-memory (NUMA) surcharges are ordinary modeled cycles and feed the
  // same EMA baseline, so a placement regression — a schedule that suddenly
  // sends tiles across domains — trips this sentinel like any other cost
  // fault. Defaults off: workloads with legitimate step-cost cliffs
  // (moving-window shifts, periodic global sorts) should either widen the
  // factor or leave it disabled.
  bool check_cycles = false;

  // Any field node with |value| above this trips the field sentinel. Flipping
  // a high exponent bit of a physical field value lands ~300 decades out, so
  // a generous bound adds no false positives.
  double max_field_magnitude = 1e30;
  // Energy sentinel: relative step-over-step change of total energy. Loose by
  // default — a u-lane exponent flip inflates the kinetic energy by hundreds
  // of decades, far past any physical growth rate. Workloads with external
  // energy injection (laser drive) should widen or disable it.
  double max_energy_step_rel_change = 0.5;
  // Gauss sentinel: max residual change between consecutive monitored steps,
  // relative to max |rho|/eps0 at the baseline.
  double max_gauss_residual_drift = 1e-6;
  // Cycle sentinel: a step trips when its modeled cycles exceed
  // factor * baseline, where the baseline is an exponential moving average of
  // prior (untripped) step costs. Steady-state PIC steps vary by a few
  // percent, so 3x is far outside normal jitter yet catches an
  // order-of-magnitude fault immediately.
  double max_cycle_step_factor = 3.0;
  // Steps whose cycle deltas feed the baseline before the trip arms. The
  // first steps of a run legitimately cost more (cold modeled caches, the
  // initial global sort), and at least one full delta is needed before a
  // ratio means anything.
  int cycle_warmup_steps = 3;
};

enum class SentinelStatus : int8_t { kDisabled = 0, kOk, kTripped };
const char* SentinelStatusName(SentinelStatus s);

struct SentinelReport {
  SentinelStatus status = SentinelStatus::kDisabled;
  // Offending element count (lanes / nodes / missing particles).
  int64_t count = 0;
  // Measured metric (max |field|, relative energy change, residual drift).
  double value = 0.0;

  bool tripped() const { return status == SentinelStatus::kTripped; }
};

// The structured per-step health block carried in SimStepStats.
struct HealthStepReport {
  bool checked = false;  // the monitor ran this step
  SentinelReport particles;
  SentinelReport fields;
  SentinelReport census;
  SentinelReport energy;
  SentinelReport gauss;
  // value = step cycles / baseline once armed; count carries the baseline.
  SentinelReport cycles;
  int64_t quarantined_tiles = 0;

  bool tripped() const {
    return particles.tripped() || fields.tripped() || census.tripped() ||
           energy.tripped() || gauss.tripped() || cycles.tripped();
  }
  // One-line summary for per-step example prints.
  std::string Summary() const;
};

// Per-worker guard partial. The pipeline keeps one slot per worker and folds
// them in worker order (AccumulateTilePartial), so the kinetic-energy sum is
// deterministic for a given core count.
struct HealthTilePartial {
  int64_t nonfinite = 0;
  int64_t out_of_bounds = 0;
  int64_t quarantined = 0;
  double kinetic = 0.0;  // sum w (gamma-1) m c^2 over clean live particles
};

class HealthMonitor {
 public:
  explicit HealthMonitor(const HealthConfig& cfg) : cfg_(cfg) {}

  const HealthConfig& config() const { return cfg_; }

  // Resets the quarantine map and the step's guard partial. Called by the
  // step pipeline before the first particle stage.
  void BeginStep(int num_species, int num_tiles);

  // Full-lane guard (see file comment). Returns false — and quarantines
  // (sid, t) — when the tile holds a non-finite lane or an out-of-domain
  // position (|excursion| > margin). Charges `hw` under Phase::kHealth; safe
  // to call tile-parallel (each (sid, t) is written by exactly one worker).
  bool GuardTileFull(HwContext& hw, const ParticleTile& tile,
                     const GridGeometry& geom, double margin, double mass,
                     int sid, int t, HealthTilePartial* part);

  // Position-only guard (post-push, pre-wrap). `margin` must admit one step
  // of legitimate motion (> c*dt).
  bool GuardTilePositions(HwContext& hw, const ParticleTile& tile,
                          const GridGeometry& geom, double margin, int sid,
                          int t, HealthTilePartial* part);

  bool IsQuarantined(int sid, int t) const {
    return !quarantined_.empty() &&
           quarantined_[static_cast<size_t>(sid) *
                            static_cast<size_t>(num_tiles_) +
                        static_cast<size_t>(t)] != 0;
  }
  bool AnyQuarantined() const;
  // Quarantined (species, tile) pairs of the current step, for the degraded
  // scrub path.
  std::vector<std::pair<int, int>> QuarantinedTiles() const;

  // Folds one worker's guard partial; call in worker order after each region.
  void AccumulateTilePartial(const HealthTilePartial& part);

  // Step epilogue: runs the field/census/energy/Gauss sentinels against the
  // post-solve state and fills stats->health. Expects stats->species to carry
  // this step's live/dropped/injected census.
  void FinishStep(Simulation& sim, SimStepStats* stats);

  // Re-arms the census/energy/Gauss baselines from the current state. Called
  // after a checkpoint rollback or a degraded scrub, when the previous step's
  // baselines describe a discarded timeline.
  void Rebaseline(Simulation& sim);

 private:
  void Quarantine(int sid, int t) {
    quarantined_[static_cast<size_t>(sid) * static_cast<size_t>(num_tiles_) +
                 static_cast<size_t>(t)] = 1;
  }
  double CurrentTotalEnergy(Simulation& sim, double kinetic_from_guards,
                            bool use_guard_kinetic) const;

  HealthConfig cfg_;
  int num_species_ = 0;
  int num_tiles_ = 0;
  std::vector<uint8_t> quarantined_;  // [sid * num_tiles_ + t]
  HealthTilePartial step_partial_;

  // Sentinel baselines (armed on the first monitored step / Rebaseline).
  bool have_census_ = false;
  int64_t prev_live_ = 0;
  bool have_energy_ = false;
  double prev_energy_ = 0.0;
  std::optional<FieldArray> prev_gauss_residual_;
  double gauss_scale_ = 0.0;
  int64_t steps_checked_ = 0;

  // Cycle sentinel state: ledger total at the previous step's epilogue, the
  // EMA baseline of per-step cycles, and how many deltas have fed it.
  bool have_cycle_mark_ = false;
  double prev_total_cycles_ = 0.0;
  double cycle_baseline_ = 0.0;
  int cycle_samples_ = 0;
};

}  // namespace mpic

#endif  // MPIC_SRC_RUNTIME_HEALTH_H_

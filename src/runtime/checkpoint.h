// Bit-exact checkpoint/restart of a full Simulation.
//
// Format (little-endian, version 2):
//
//   [8B magic "MPICCKP\1"] [u32 version] [u32 section_count]
//   section*: [u32 id] [u32 index] [u64 payload_bytes] [u64 payload_fnv]
//             [payload]
//
// Sections: META (step/time/dt, geometry, tile dims, per-species identity +
// engine scheme, moving-window offset, injection RNG seed), FIELDS (the ten
// raw FP64 arrays, guards included), one SPECIES section per block (per tile:
// all ten SoA lanes, the live bitmap, the free-slot stack in exact LIFO
// order, and the GPMA's full internal state — serialized, never rebuilt,
// because the slot layout feeding deposition and collision order depends on
// the insertion history; then the complete re-sort policy state including the
// adaptive throughput baselines, and the three per-tile cost-feedback
// estimate vectors the kCostSteal scheduler plans from), an optional LEDGER
// snapshot (per-phase modeled cycles + counters, including the steal
// counters), and — when the machine models more than one rank — a RANKS
// section with the cumulative per-rank communication totals.
//
// Version 1 images (which omitted the policy baselines, cost estimates, and
// steal counters) are rejected, not silently half-restored.
//
// Every payload carries its length and FNV-1a checksum; RestoreCheckpoint
// verifies every checksum and validates META compatibility BEFORE mutating
// anything, so a truncated or corrupted checkpoint is rejected with the
// target simulation untouched — never silently loaded. Errors are returned
// as CheckpointStatus (no aborts on bad input).
//
// Determinism contract (enforced by tests/checkpoint_test.cc and
// bench_abl_resilience): save at step k, restore into a freshly built twin,
// run both to step n — field and particle digests match bit-for-bit, for
// fused and legacy schedules, any modeled core/rank count, all
// DepositVariants, both CurrentSchemes, both tile-schedule policies, and
// with the re-sort policy's adaptive performance trigger enabled. With
// `model_sync` requested on both sides (see the options below), the modeled
// cycle ledgers ALSO match a never-interrupted run exactly: both runs pass
// through Simulation::ModelSyncPoint() at the save step, which rebuilds the
// cache/address model into the same deterministic state on each side.

#ifndef MPIC_SRC_RUNTIME_CHECKPOINT_H_
#define MPIC_SRC_RUNTIME_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mpic {

class HwContext;
class Simulation;

struct CheckpointStatus {
  bool ok = true;
  std::string error;

  explicit operator bool() const { return ok; }
  static CheckpointStatus Ok() { return {}; }
  static CheckpointStatus Error(std::string msg) {
    return {false, std::move(msg)};
  }
};

struct CheckpointWriteOptions {
  // Include the cost-ledger snapshot (modeled-time continuity across restart).
  bool include_ledger = true;
  // Pass through Simulation::ModelSyncPoint() after serializing, so the
  // saving run's cache/address model continues from the same deterministic
  // state a restored twin rebuilds — the handshake that makes post-restore
  // modeled cycles bit-identical to an uninterrupted run. Default off: the
  // sync flushes the modeled caches, which perturbs this run's subsequent
  // cycle charges (bench_abl_resilience's overhead gate measures the
  // serialization cost alone).
  bool model_sync = false;
  // When set, the serialization traffic is billed to this context under
  // Phase::kHealth (the resilience overhead the ≤2% gate measures).
  HwContext* charge = nullptr;
};

struct CheckpointReadOptions {
  // Restore the ledger snapshot (when present) on top of the target context,
  // resuming the modeled clock where the checkpointed run left it. Default
  // off: in-memory rollback wants the failed attempt's cycles kept, not
  // rewound.
  bool restore_ledger = false;
  // Pass through Simulation::ModelSyncPoint() after applying the state —
  // the restore side of the cycle-exact handshake described above. Must
  // match the save-side flag for the ledgers to track.
  bool model_sync = false;
  HwContext* charge = nullptr;
};

// Serializes `sim` (must be Initialize()d) into `out`. Non-const because
// `model_sync` rebuilds the simulation's modeled-memory bookkeeping; the
// physics state is never touched.
CheckpointStatus SaveCheckpoint(Simulation& sim,
                                std::vector<uint8_t>* out,
                                const CheckpointWriteOptions& opts = {});

// Restores `sim` from `buf`. `sim` must be an Initialize()d simulation whose
// configuration (geometry shape, species registry, engine schemes, tile dims)
// matches the checkpoint; on any mismatch, truncation, or checksum failure
// the simulation is left exactly as it was.
CheckpointStatus RestoreCheckpoint(Simulation* sim,
                                   const std::vector<uint8_t>& buf,
                                   const CheckpointReadOptions& opts = {});

// File-backed convenience wrappers.
CheckpointStatus SaveCheckpointFile(Simulation& sim,
                                    const std::string& path,
                                    const CheckpointWriteOptions& opts = {});
CheckpointStatus RestoreCheckpointFile(Simulation* sim,
                                       const std::string& path,
                                       const CheckpointReadOptions& opts = {});

}  // namespace mpic

#endif  // MPIC_SRC_RUNTIME_CHECKPOINT_H_

// Relativistic Boris particle pusher (the paper's WarpX configuration uses the
// Boris pusher; Sec. 5.2).
//
// Advances proper velocity u = gamma*v through a half electric kick, magnetic
// rotation, half electric kick, then advances position by dt * u/gamma. The
// pusher is arithmetic-only and vectorizes cleanly; it is charged to
// Phase::kPush.

#ifndef MPIC_SRC_PUSH_BORIS_PUSHER_H_
#define MPIC_SRC_PUSH_BORIS_PUSHER_H_

#include "src/grid/grid_geometry.h"
#include "src/hw/hw_context.h"
#include "src/particles/particle_tile.h"
#include "src/push/field_gather.h"

namespace mpic {

struct PushParams {
  double dt = 0.0;
  double charge = 0.0;  // C
  double mass = 0.0;    // kg
};

// Advances every live particle of the tile using the gathered fields. Updates
// positions and momenta in place. Positions are NOT wrapped or redistributed
// here; boundary handling belongs to the simulation driver.
void PushTileBoris(HwContext& hw, ParticleTile& tile, const GatherScratch& gathered,
                   const PushParams& params);

// Single-particle Boris step (shared by the tile kernel and physics tests).
void BorisStep(double ex, double ey, double ez, double bx, double by, double bz,
               double qdt_over_2m, double* ux, double* uy, double* uz);

}  // namespace mpic

#endif  // MPIC_SRC_PUSH_BORIS_PUSHER_H_

#include "src/push/vay_pusher.h"

#include <cmath>

#include "src/particles/species.h"

namespace mpic {

void VayStep(double ex, double ey, double ez, double bx, double by, double bz,
             double qdt_over_2m, double* ux, double* uy, double* uz) {
  const double inv_c2 = 1.0 / (kSpeedOfLight * kSpeedOfLight);
  // u' = u_n + q dt/m (E + v_n x B / 2): full electric kick plus half of the
  // magnetic rotation evaluated at the old velocity.
  const double gamma_n =
      std::sqrt(1.0 + (*ux * *ux + *uy * *uy + *uz * *uz) * inv_c2);
  const double vx = *ux / gamma_n;
  const double vy = *uy / gamma_n;
  const double vz = *uz / gamma_n;
  const double upx = *ux + 2.0 * qdt_over_2m * ex + qdt_over_2m * (vy * bz - vz * by);
  const double upy = *uy + 2.0 * qdt_over_2m * ey + qdt_over_2m * (vz * bx - vx * bz);
  const double upz = *uz + 2.0 * qdt_over_2m * ez + qdt_over_2m * (vx * by - vy * bx);

  // tau = q dt B / (2 m); solve for the new gamma analytically (Vay Eq. 11).
  const double tx = qdt_over_2m * bx;
  const double ty = qdt_over_2m * by;
  const double tz = qdt_over_2m * bz;
  const double tau2 = tx * tx + ty * ty + tz * tz;
  const double gamma_p2 = 1.0 + (upx * upx + upy * upy + upz * upz) * inv_c2;
  const double u_star = (upx * tx + upy * ty + upz * tz) / kSpeedOfLight;
  const double sigma = gamma_p2 - tau2;
  const double gamma_new2 =
      0.5 * (sigma + std::sqrt(sigma * sigma + 4.0 * (tau2 + u_star * u_star)));
  const double gamma_new = std::sqrt(gamma_new2);

  // t = tau / gamma_new; u_{n+1} = s (u' + (u'.t) t + u' x t).
  const double ttx = tx / gamma_new;
  const double tty = ty / gamma_new;
  const double ttz = tz / gamma_new;
  const double s = 1.0 / (1.0 + ttx * ttx + tty * tty + ttz * ttz);
  const double udott = upx * ttx + upy * tty + upz * ttz;
  *ux = s * (upx + udott * ttx + upy * ttz - upz * tty);
  *uy = s * (upy + udott * tty + upz * ttx - upx * ttz);
  *uz = s * (upz + udott * ttz + upx * tty - upy * ttx);
}

void PushTileVay(HwContext& hw, ParticleTile& tile, const GatherScratch& gathered,
                 const PushParams& params) {
  PhaseScope phase(hw.ledger(), Phase::kPush);
  ParticleSoA& soa = tile.soa();
  const double qdt_over_2m = params.charge * params.dt / (2.0 * params.mass);
  const double inv_c2 = 1.0 / (kSpeedOfLight * kSpeedOfLight);
  const size_t n = soa.size();

  for (size_t base = 0; base < n; base += kVpuLanes) {
    const size_t batch = std::min(n - base, static_cast<size_t>(kVpuLanes));
    for (const auto* stream :
         {&gathered.ex, &gathered.ey, &gathered.ez, &gathered.bx, &gathered.by,
          &gathered.bz}) {
      hw.TouchRead(stream->data() + base, sizeof(double) * batch);
    }
    for (const auto* stream : {&soa.x, &soa.y, &soa.z, &soa.ux, &soa.uy, &soa.uz}) {
      hw.TouchRead(stream->data() + base, sizeof(double) * batch);
    }
    // Vay is ~30% more arithmetic than Boris (extra sqrt and dot products).
    hw.ledger().counters().vpu_ops += 58;
    hw.ChargeCycles(58.0 / static_cast<double>(hw.cfg().vpu_pipes));

    for (size_t i = base; i < base + batch; ++i) {
      if (!tile.IsLive(static_cast<int32_t>(i))) {
        continue;
      }
      VayStep(gathered.ex[i], gathered.ey[i], gathered.ez[i], gathered.bx[i],
              gathered.by[i], gathered.bz[i], qdt_over_2m, &soa.ux[i], &soa.uy[i],
              &soa.uz[i]);
      const double gamma =
          std::sqrt(1.0 + (soa.ux[i] * soa.ux[i] + soa.uy[i] * soa.uy[i] +
                           soa.uz[i] * soa.uz[i]) *
                              inv_c2);
      const double scale = params.dt / gamma;
      soa.x[i] += soa.ux[i] * scale;
      soa.y[i] += soa.uy[i] * scale;
      soa.z[i] += soa.uz[i] * scale;
    }

    for (auto* stream : {&soa.x, &soa.y, &soa.z, &soa.ux, &soa.uy, &soa.uz}) {
      hw.TouchWrite(stream->data() + base, sizeof(double) * batch);
    }
  }
}

}  // namespace mpic

// Relativistic Vay pusher (Vay, Phys. Plasmas 15, 056701 (2008)) — WarpX's
// alternative to Boris. Unlike Boris, the Vay scheme captures the exact
// E x B drift velocity for relativistic particles in crossed fields, at the
// cost of a slightly more expensive update. Provided as the second
// interchangeable pusher of the substrate (algo.particle_pusher in WarpX).

#ifndef MPIC_SRC_PUSH_VAY_PUSHER_H_
#define MPIC_SRC_PUSH_VAY_PUSHER_H_

#include "src/push/boris_pusher.h"

namespace mpic {

// Single-particle Vay step: advances u = gamma*v by dt under (E, B).
void VayStep(double ex, double ey, double ez, double bx, double by, double bz,
             double qdt_over_2m, double* ux, double* uy, double* uz);

// Tile-level Vay push (same contract as PushTileBoris).
void PushTileVay(HwContext& hw, ParticleTile& tile, const GatherScratch& gathered,
                 const PushParams& params);

enum class PusherKind {
  kBoris,
  kVay,
};

}  // namespace mpic

#endif  // MPIC_SRC_PUSH_VAY_PUSHER_H_

#include "src/push/field_gather.h"

#include "src/shape/shape_function.h"

namespace mpic {
namespace {

// Per-axis shape evaluation with optional half-cell stagger shift.
template <int Order>
struct AxisShape {
  int start;
  double w[4];
  void Eval(double grid_coord, bool staggered) {
    ShapeFunction<Order>::Weights(staggered ? grid_coord - 0.5 : grid_coord, &start,
                                  w);
  }
};

// Interpolates one staggered component for one particle; charges line-granular
// reads per (b, c) row of the support region.
template <int Order>
double GatherComponent(HwContext& hw, const FieldArray& f, const AxisShape<Order>& sx,
                       const AxisShape<Order>& sy, const AxisShape<Order>& sz) {
  constexpr int kSupport = Order + 1;
  double acc = 0.0;
  for (int c = 0; c < kSupport; ++c) {
    for (int b = 0; b < kSupport; ++b) {
      const double wyz = sy.w[b] * sz.w[c];
      const int64_t row = f.Index(sx.start, sy.start + b, sz.start + c);
      hw.TouchRead(f.data() + row, sizeof(double) * kSupport);
      double row_acc = 0.0;
      for (int a = 0; a < kSupport; ++a) {
        row_acc += sx.w[a] * f.data()[row + a];
      }
      acc += wyz * row_acc;
    }
  }
  // Arithmetic: per row, kSupport FMAs + 2 ops; vectorizes across rows.
  hw.ledger().counters().vpu_ops +=
      static_cast<uint64_t>(kSupport * kSupport);
  hw.ChargeCycles(kSupport * kSupport /
                  static_cast<double>(hw.cfg().vpu_pipes));
  return acc;
}

}  // namespace

template <int Order>
void GatherFieldsTile(HwContext& hw, const ParticleTile& tile, const FieldSet& fields,
                      GatherScratch& scratch) {
  PhaseScope phase(hw.ledger(), Phase::kGather);
  const ParticleSoA& soa = tile.soa();
  const GridGeometry& g = fields.geom;
  scratch.Resize(soa.size());

  for (size_t i = 0; i < soa.size(); ++i) {
    if (!tile.IsLive(static_cast<int32_t>(i))) {
      hw.ScalarOps(1);
      continue;
    }
    hw.TouchRead(&soa.x[i], sizeof(double));
    hw.TouchRead(&soa.y[i], sizeof(double));
    hw.TouchRead(&soa.z[i], sizeof(double));
    const double gx = g.GridX(soa.x[i]);
    const double gy = g.GridY(soa.y[i]);
    const double gz = g.GridZ(soa.z[i]);

    AxisShape<Order> nx, ny, nz;  // node-aligned shapes
    AxisShape<Order> hx, hy, hz;  // half-cell staggered shapes
    nx.Eval(gx, false);
    ny.Eval(gy, false);
    nz.Eval(gz, false);
    hx.Eval(gx, true);
    hy.Eval(gy, true);
    hz.Eval(gz, true);
    hw.ScalarOps(6 * (Order == 1 ? 4 : (Order == 2 ? 8 : 12)));

    // Yee staggering: Ex(i+1/2,j,k), Ey(i,j+1/2,k), Ez(i,j,k+1/2);
    // Bx(i,j+1/2,k+1/2), By(i+1/2,j,k+1/2), Bz(i+1/2,j+1/2,k).
    scratch.ex[i] = GatherComponent<Order>(hw, fields.ex, hx, ny, nz);
    scratch.ey[i] = GatherComponent<Order>(hw, fields.ey, nx, hy, nz);
    scratch.ez[i] = GatherComponent<Order>(hw, fields.ez, nx, ny, hz);
    scratch.bx[i] = GatherComponent<Order>(hw, fields.bx, nx, hy, hz);
    scratch.by[i] = GatherComponent<Order>(hw, fields.by, hx, ny, hz);
    scratch.bz[i] = GatherComponent<Order>(hw, fields.bz, hx, hy, nz);

    hw.TouchWrite(&scratch.ex[i], sizeof(double));
    hw.TouchWrite(&scratch.ey[i], sizeof(double));
    hw.TouchWrite(&scratch.ez[i], sizeof(double));
    hw.TouchWrite(&scratch.bx[i], sizeof(double));
    hw.TouchWrite(&scratch.by[i], sizeof(double));
    hw.TouchWrite(&scratch.bz[i], sizeof(double));
  }
}

void RegisterGatherRegions(HwContext& hw, uint64_t tile_key_base,
                           const GatherScratch& scratch) {
  uint64_t key = tile_key_base;
  for (const std::vector<double>* v :
       {&scratch.ex, &scratch.ey, &scratch.ez, &scratch.bx, &scratch.by,
        &scratch.bz}) {
    const uint64_t k = key++;
    if (!v->empty()) {
      hw.RegisterRegionKeyed(k, v->data(), v->size() * sizeof(double));
    }
  }
}

template void GatherFieldsTile<1>(HwContext&, const ParticleTile&, const FieldSet&,
                                  GatherScratch&);
template void GatherFieldsTile<2>(HwContext&, const ParticleTile&, const FieldSet&,
                                  GatherScratch&);
template void GatherFieldsTile<3>(HwContext&, const ParticleTile&, const FieldSet&,
                                  GatherScratch&);

}  // namespace mpic

#include "src/push/boris_pusher.h"

#include <cmath>

#include "src/particles/species.h"

namespace mpic {

void BorisStep(double ex, double ey, double ez, double bx, double by, double bz,
               double qdt_over_2m, double* ux, double* uy, double* uz) {
  const double inv_c2 = 1.0 / (kSpeedOfLight * kSpeedOfLight);
  // Half electric kick.
  double umx = *ux + qdt_over_2m * ex;
  double umy = *uy + qdt_over_2m * ey;
  double umz = *uz + qdt_over_2m * ez;
  // Magnetic rotation at the mid-step gamma.
  const double gamma_m =
      std::sqrt(1.0 + (umx * umx + umy * umy + umz * umz) * inv_c2);
  const double tx = qdt_over_2m * bx / gamma_m;
  const double ty = qdt_over_2m * by / gamma_m;
  const double tz = qdt_over_2m * bz / gamma_m;
  const double t2 = tx * tx + ty * ty + tz * tz;
  const double sx = 2.0 * tx / (1.0 + t2);
  const double sy = 2.0 * ty / (1.0 + t2);
  const double sz = 2.0 * tz / (1.0 + t2);
  const double upx = umx + (umy * tz - umz * ty);
  const double upy = umy + (umz * tx - umx * tz);
  const double upz = umz + (umx * ty - umy * tx);
  umx += upy * sz - upz * sy;
  umy += upz * sx - upx * sz;
  umz += upx * sy - upy * sx;
  // Half electric kick.
  *ux = umx + qdt_over_2m * ex;
  *uy = umy + qdt_over_2m * ey;
  *uz = umz + qdt_over_2m * ez;
}

void PushTileBoris(HwContext& hw, ParticleTile& tile, const GatherScratch& gathered,
                   const PushParams& params) {
  PhaseScope phase(hw.ledger(), Phase::kPush);
  ParticleSoA& soa = tile.soa();
  const double qdt_over_2m = params.charge * params.dt / (2.0 * params.mass);
  const double inv_c2 = 1.0 / (kSpeedOfLight * kSpeedOfLight);
  const size_t n = soa.size();

  // Vectorized: per batch of 8 slots, load 6 gathered fields + 6 particle
  // streams, ~45 VPU ops of Boris arithmetic, store back 6 streams.
  for (size_t base = 0; base < n; base += kVpuLanes) {
    const size_t batch = std::min(n - base, static_cast<size_t>(kVpuLanes));
    for (const auto* stream :
         {&gathered.ex, &gathered.ey, &gathered.ez, &gathered.bx, &gathered.by,
          &gathered.bz}) {
      hw.TouchRead(stream->data() + base, sizeof(double) * batch);
    }
    for (const auto* stream : {&soa.x, &soa.y, &soa.z, &soa.ux, &soa.uy, &soa.uz}) {
      hw.TouchRead(stream->data() + base, sizeof(double) * batch);
    }
    hw.ledger().counters().vpu_ops += 45;
    hw.ChargeCycles(45.0 / static_cast<double>(hw.cfg().vpu_pipes));

    for (size_t i = base; i < base + batch; ++i) {
      if (!tile.IsLive(static_cast<int32_t>(i))) {
        continue;
      }
      BorisStep(gathered.ex[i], gathered.ey[i], gathered.ez[i], gathered.bx[i],
                gathered.by[i], gathered.bz[i], qdt_over_2m, &soa.ux[i], &soa.uy[i],
                &soa.uz[i]);
      const double gamma =
          std::sqrt(1.0 + (soa.ux[i] * soa.ux[i] + soa.uy[i] * soa.uy[i] +
                           soa.uz[i] * soa.uz[i]) *
                              inv_c2);
      const double scale = params.dt / gamma;
      soa.x[i] += soa.ux[i] * scale;
      soa.y[i] += soa.uy[i] * scale;
      soa.z[i] += soa.uz[i] * scale;
    }

    for (auto* stream : {&soa.x, &soa.y, &soa.z, &soa.ux, &soa.uy, &soa.uz}) {
      hw.TouchWrite(stream->data() + base, sizeof(double) * batch);
    }
  }
}

}  // namespace mpic

// Field gather (grid -> particle interpolation) with Yee staggering.
//
// E and B components live at staggered half-cell offsets; the gather shifts the
// particle's grid-unit coordinate by 0.5 on each staggered axis before
// evaluating the shape function, which is how WarpX handles staggering.
// Results are written to per-slot staging arrays consumed by the pusher.
//
// Together with deposition this dominates PIC runtime (Fig. 1); the gather is
// charged to Phase::kGather and its memory behavior (scattered reads over six
// field arrays) responds to particle sorting just like deposition does.

#ifndef MPIC_SRC_PUSH_FIELD_GATHER_H_
#define MPIC_SRC_PUSH_FIELD_GATHER_H_

#include <vector>

#include "src/grid/field_set.h"
#include "src/hw/hw_context.h"
#include "src/particles/particle_tile.h"

namespace mpic {

// Gathered fields at particle positions, indexed by SoA slot.
struct GatherScratch {
  void Resize(size_t n) {
    ex.resize(n);
    ey.resize(n);
    ez.resize(n);
    bx.resize(n);
    by.resize(n);
    bz.resize(n);
  }
  std::vector<double> ex, ey, ez, bx, by, bz;
};

// Gathers E and B for every live particle of the tile. Guard cells of the
// field arrays must be filled (periodic images) before calling. The scratch
// must already be sized to the tile's slot count and registered with the
// model's address space (RegisterGatherRegions) by the serial pre-pass.
template <int Order>
void GatherFieldsTile(HwContext& hw, const ParticleTile& tile, const FieldSet& fields,
                      GatherScratch& scratch);

// Registers the six gathered-field staging arrays with the hardware model's
// address space under stable keys (`tile_key_base` from MemRegionKey; streams
// 0..5). Without this the gather's scratch writes (and the pusher's reads)
// fall back to identity-mapped host addresses, making the modeled cache
// behavior depend on where the allocator happened to place the vectors — the
// source of the former run-to-run cycle noise. Cheap no-op while the vectors
// keep their allocation.
void RegisterGatherRegions(HwContext& hw, uint64_t tile_key_base,
                           const GatherScratch& scratch);

}  // namespace mpic

#endif  // MPIC_SRC_PUSH_FIELD_GATHER_H_

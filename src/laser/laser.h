// Gaussian laser pulse injection for the LWFA workload (paper Table 4: Gaussian
// laser, lambda = 0.8 um, a0 ~ 1-10, continuous injection along z).
//
// The pulse is driven by an antenna plane at a fixed z-index: each step the
// transverse electric field on that plane is overwritten with the analytic
// pulse envelope. The wave equation then radiates the pulse into the domain —
// the standard "hard source" laser injection used by simple PIC setups.

#ifndef MPIC_SRC_LASER_LASER_H_
#define MPIC_SRC_LASER_LASER_H_

#include "src/grid/field_set.h"
#include "src/hw/hw_context.h"

namespace mpic {

struct LaserConfig {
  double wavelength = 0.8e-6;  // m
  double a0 = 4.0;             // normalized vector potential
  double waist = 5.0e-6;       // transverse 1/e^2 waist [m]
  double duration = 10.0e-15;  // Gaussian temporal sigma [s]
  double t_peak = 30.0e-15;    // time of peak at the antenna [s]
  int antenna_cell_z = 2;      // z cell index of the antenna plane
  // Peak electric field E0 = a0 * m_e * c * omega / e.
  double PeakField() const;
  double Omega() const;
};

class LaserAntenna {
 public:
  explicit LaserAntenna(const LaserConfig& config) : config_(config) {}

  // Drives Ey on the antenna plane at simulation time t (call once per step,
  // before the field solve). Charged to Phase::kSolver.
  void Drive(HwContext& hw, FieldSet& fields, double t) const;

  const LaserConfig& config() const { return config_; }

 private:
  LaserConfig config_;
};

}  // namespace mpic

#endif  // MPIC_SRC_LASER_LASER_H_

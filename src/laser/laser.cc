#include "src/laser/laser.h"

#include <cmath>

#include "src/particles/species.h"

namespace mpic {

double LaserConfig::Omega() const { return 2.0 * M_PI * kSpeedOfLight / wavelength; }

double LaserConfig::PeakField() const {
  return a0 * kElectronMass * kSpeedOfLight * Omega() / (-kElectronCharge);
}

void LaserAntenna::Drive(HwContext& hw, FieldSet& fields, double t) const {
  PhaseScope phase(hw.ledger(), Phase::kSolver);
  const GridGeometry& g = fields.geom;
  const double e0 = config_.PeakField();
  const double omega = config_.Omega();
  const double envelope_t =
      std::exp(-0.5 * std::pow((t - config_.t_peak) / config_.duration, 2));
  const double osc = std::sin(omega * (t - config_.t_peak));
  const double cx = g.x0 + 0.5 * g.LengthX();
  const double cy = g.y0 + 0.5 * g.LengthY();
  const double inv_w2 = 1.0 / (config_.waist * config_.waist);
  const int kz = config_.antenna_cell_z;

  for (int j = 0; j <= g.ny; ++j) {
    for (int i = 0; i <= g.nx; ++i) {
      const double x = g.x0 + i * g.dx - cx;
      // Ey lives at (i, j+1/2, k); use the staggered y position.
      const double y = g.y0 + (j + 0.5) * g.dy - cy;
      const double r2 = x * x + y * y;
      fields.ey.At(i, j, kz) = e0 * envelope_t * osc * std::exp(-r2 * inv_w2);
    }
  }
  fields.ey.FillGuardsPeriodic();
  const double plane = static_cast<double>((g.nx + 1) * (g.ny + 1));
  hw.ChargeBulk(plane * 12.0, plane * 8.0);
}

}  // namespace mpic

// The rhocell staging layout (paper Sec. 3.4, after Vincenti et al. 2017).
//
// Instead of scattering each particle's contributions directly onto the global
// J arrays, kernels accumulate them into a per-cell contiguous block: for order
// 1 (CIC) a cell's block holds the 8 vertex contributions (64 bytes — exactly
// one cache line); for order 3 (QSP) it holds the 64 node contributions. One
// block exists per current component (Jx, Jy, Jz).
//
// All particles of a cell write the *same* block, so the updates are conflict-
// free by construction, dense, and — after cell-sorting — stay cache- and
// MPU-tile-resident. A single O(num_cells) reduction then scatters blocks onto
// the global arrays.
//
// Blocks are indexed by *tile-local* cell id; the buffer belongs to a tile.

#ifndef MPIC_SRC_DEPOSIT_RHOCELL_H_
#define MPIC_SRC_DEPOSIT_RHOCELL_H_

#include <vector>

#include "src/common/check.h"
#include "src/shape/shape_function.h"

namespace mpic {

// How many nodes a tile's rhocell reduction writes beyond its cell box on each
// side: the shape support starts at cell-1 for QSP (order 3) and at the cell
// itself for CIC (order 1). Used to build the halo-disjoint reduction schedule.
inline constexpr int RhocellHaloNodes(int order) { return order >= 3 ? 1 : 0; }

class RhocellBuffer {
 public:
  RhocellBuffer() = default;
  RhocellBuffer(int num_cells, int order) { Resize(num_cells, order); }

  void Resize(int num_cells, int order) {
    MPIC_CHECK(order >= 1 && order <= 3);
    num_cells_ = num_cells;
    order_ = order;
    stride_ = Support3D(order);
    const size_t n = static_cast<size_t>(num_cells) * static_cast<size_t>(stride_);
    jx_.assign(n, 0.0);
    jy_.assign(n, 0.0);
    jz_.assign(n, 0.0);
  }

  void Zero() {
    std::fill(jx_.begin(), jx_.end(), 0.0);
    std::fill(jy_.begin(), jy_.end(), 0.0);
    std::fill(jz_.begin(), jz_.end(), 0.0);
  }

  int num_cells() const { return num_cells_; }
  int order() const { return order_; }
  // Entries per cell block (8 for CIC, 27 for TSC, 64 for QSP).
  int stride() const { return stride_; }

  double* CellJx(int cell) { return jx_.data() + static_cast<size_t>(cell) * stride_; }
  double* CellJy(int cell) { return jy_.data() + static_cast<size_t>(cell) * stride_; }
  double* CellJz(int cell) { return jz_.data() + static_cast<size_t>(cell) * stride_; }

  std::vector<double>& jx() { return jx_; }
  std::vector<double>& jy() { return jy_; }
  std::vector<double>& jz() { return jz_; }

 private:
  int num_cells_ = 0;
  int order_ = 1;
  int stride_ = 8;
  std::vector<double> jx_, jy_, jz_;
};

}  // namespace mpic

#endif  // MPIC_SRC_DEPOSIT_RHOCELL_H_

#include "src/deposit/deposit_mpu.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/deposit/deposit_rhocell.h"
#include "src/deposit/particle_iteration.h"

namespace mpic {
namespace {

// Charges `n` VPU register operations (operand shuffles/multiplies) without
// materializing per-op temporaries.
void ChargeVpuOps(HwContext& hw, int n) {
  hw.ledger().counters().vpu_ops += static_cast<uint64_t>(n);
  hw.ChargeCycles(n / static_cast<double>(hw.cfg().vpu_pipes));
}

// Gathers the staged streams needed at a given order for a batch of pids.
template <int Order>
void GatherStagedBatch(HwContext& hw, const DepositScratch& scratch,
                       const int64_t* pids, int count) {
  constexpr int kSupport = Order + 1;
  const Mask8 m = Mask8::FirstN(count);
  for (int t = 0; t < kSupport; ++t) {
    hw.VGatherAuto(scratch.sx[t].data(), pids, m);
    hw.VGatherAuto(scratch.sy[t].data(), pids, m);
    hw.VGatherAuto(scratch.sz_[t].data(), pids, m);
  }
  hw.VGatherAuto(scratch.wqx.data(), pids, m);
  hw.VGatherAuto(scratch.wqy.data(), pids, m);
  hw.VGatherAuto(scratch.wqz.data(), pids, m);
}


// Lightweight VPU deposition for sparse bins (the adaptive fallback of
// Sec. 6.1): per particle, build the node-weight vector and accumulate into
// the cell's rhocell blocks directly — no tile setup or extraction to
// amortize. Semantically identical to the MPU path.
template <int Order>
void DepositSparseBinVpu(HwContext& hw, const DepositScratch& scratch,
                         RhocellBuffer& rhocell, int cell, const int32_t* pids,
                         int32_t len) {
  constexpr int kSupport = Order + 1;
  constexpr int kNodes = Support3D(Order);
  constexpr int kRows = kNodes / kVpuLanes == 0 ? 1 : kNodes / kVpuLanes;
  double* blocks[3] = {rhocell.CellJx(cell), rhocell.CellJy(cell),
                       rhocell.CellJz(cell)};
  for (int32_t s = 0; s < len; ++s) {
    const auto i = static_cast<size_t>(pids[s]);
    // Scalar staged loads (too few particles to batch).
    hw.TouchRead(&scratch.wqx[i], sizeof(double));
    hw.TouchRead(&scratch.wqy[i], sizeof(double));
    hw.TouchRead(&scratch.wqz[i], sizeof(double));
    for (int t = 0; t < kSupport; ++t) {
      hw.TouchRead(&scratch.sx[t][i], sizeof(double));
      hw.TouchRead(&scratch.sy[t][i], sizeof(double));
      hw.TouchRead(&scratch.sz_[t][i], sizeof(double));
    }
    ChargeVpuOps(hw, Order == 1 ? 7 : 24);  // weight-vector build
    const double factors[3] = {scratch.wqx[i], scratch.wqy[i], scratch.wqz[i]};
    double w3[Support3D(Order)];
    int k = 0;
    for (int c = 0; c < kSupport; ++c) {
      for (int b = 0; b < kSupport; ++b) {
        const double wyz = scratch.sy[b][i] * scratch.sz_[c][i];
        for (int a = 0; a < kSupport; ++a) {
          w3[k++] = scratch.sx[a][i] * wyz;
        }
      }
    }
    for (int comp = 0; comp < 3; ++comp) {
      for (int kk = 0; kk < kNodes; ++kk) {
        blocks[comp][kk] += factors[comp] * w3[kk];
      }
      hw.TouchRead(blocks[comp], sizeof(double) * kNodes);
      hw.TouchWrite(blocks[comp], sizeof(double) * kNodes);
      ChargeVpuOps(hw, 2 * kRows);
    }
  }
}

// ---------------------------------------------------------------------------
// Order 1 (CIC): A = [wq*sx (p1,2 lanes) | wq*sx (p2,2 lanes) | 0...],
// B = [syz (p1,4 lanes) | syz (p2,4 lanes)]; one MOPA per component per pair.
// ---------------------------------------------------------------------------

void CicMopaPair(HwContext& hw, const DepositScratch& scratch, int64_t p1, int64_t p2,
                 MpuTileReg tiles[3]) {
  const auto i1 = static_cast<size_t>(p1);
  Vec8 b = Vec8::Zero();
  b[0] = scratch.sy[0][i1] * scratch.sz_[0][i1];
  b[1] = scratch.sy[1][i1] * scratch.sz_[0][i1];
  b[2] = scratch.sy[0][i1] * scratch.sz_[1][i1];
  b[3] = scratch.sy[1][i1] * scratch.sz_[1][i1];
  if (p2 >= 0) {
    const auto i2 = static_cast<size_t>(p2);
    b[4] = scratch.sy[0][i2] * scratch.sz_[0][i2];
    b[5] = scratch.sy[1][i2] * scratch.sz_[0][i2];
    b[6] = scratch.sy[0][i2] * scratch.sz_[1][i2];
    b[7] = scratch.sy[1][i2] * scratch.sz_[1][i2];
  }
  ChargeVpuOps(hw, 3);  // B assembly: two permutes + one multiply

  const std::vector<double>* wq_streams[3] = {&scratch.wqx, &scratch.wqy,
                                              &scratch.wqz};
  for (int comp = 0; comp < 3; ++comp) {
    const double wq1 = (*wq_streams[comp])[i1];
    Vec8 a = Vec8::Zero();
    a[0] = wq1 * scratch.sx[0][i1];
    a[1] = wq1 * scratch.sx[1][i1];
    if (p2 >= 0) {
      const auto i2 = static_cast<size_t>(p2);
      const double wq2 = (*wq_streams[comp])[i2];
      a[2] = wq2 * scratch.sx[0][i2];
      a[3] = wq2 * scratch.sx[1][i2];
    }
    ChargeVpuOps(hw, 1);  // A assembly: fused multiply on the pre-permuted
                          // batch registers (one op per component)
    hw.Mopa(tiles[comp], a, b, p2 >= 0 ? 16 : 8);
  }
}

// Reads the pair blocks out of the tiles. node k = a + 2*m with a the x-term
// and m the yz-term: p1's value is C[a][m], p2's is C[2+a][4+m].
void CicReadTiles(HwContext& hw, const MpuTileReg tiles[3], double p1_nodes[3][8],
                  double p2_nodes[3][8]) {
  for (int comp = 0; comp < 3; ++comp) {
    Vec8 rows[4];
    for (int r = 0; r < 4; ++r) {
      rows[r] = hw.TileReadRow(tiles[comp], r);
    }
    ChargeVpuOps(hw, 4);  // interleave/shift network
    for (int m = 0; m < 4; ++m) {
      for (int a = 0; a < 2; ++a) {
        p1_nodes[comp][a + 2 * m] = rows[a][m];
        p2_nodes[comp][a + 2 * m] = rows[2 + a][4 + m];
      }
    }
  }
}

// Accumulates an 8-node contribution set into one cell's rhocell blocks.
void CicAccumulateBlocks(HwContext& hw, RhocellBuffer& rhocell, int cell,
                         const double nodes[3][8]) {
  double* blocks[3] = {rhocell.CellJx(cell), rhocell.CellJy(cell),
                       rhocell.CellJz(cell)};
  for (int comp = 0; comp < 3; ++comp) {
    hw.TouchRead(blocks[comp], sizeof(double) * 8);
    ChargeVpuOps(hw, 1);  // vector add
    for (int k = 0; k < 8; ++k) {
      blocks[comp][k] += nodes[comp][k];
    }
    hw.TouchWrite(blocks[comp], sizeof(double) * 8);
  }
}

void DepositMpuCic(HwContext& hw, const ParticleTile& tile,
                   const DepositScratch& scratch, RhocellBuffer& rhocell,
                   MpuScheduling scheduling, int sparse_fallback_ppc) {
  PhaseScope phase(hw.ledger(), Phase::kCompute);
  MpuTileReg tiles[3];
  for (auto& t : tiles) {
    hw.TileZero(t);
  }

  if (scheduling == MpuScheduling::kCellResident) {
    // Tiles accumulate across every particle of the cell; one extraction per
    // cell merges the p1-class and p2-class blocks (same cell by sorting).
    ForEachCellBin(hw, tile, [&](int cell, const int32_t* pids, int32_t len) {
      if (len < sparse_fallback_ppc) {
        DepositSparseBinVpu<1>(hw, scratch, rhocell, cell, pids, len);
        return;
      }
      int64_t batch[kVpuLanes];
      for (int32_t s = 0; s < len; s += kVpuLanes) {
        const int count = std::min<int32_t>(kVpuLanes, len - s);
        for (int j = 0; j < count; ++j) {
          batch[j] = pids[s + j];
        }
        GatherStagedBatch<1>(hw, scratch, batch, count);
        for (int j = 0; j < count; j += 2) {
          CicMopaPair(hw, scratch, batch[j], j + 1 < count ? batch[j + 1] : -1,
                      tiles);
        }
      }
      double p1_nodes[3][8], p2_nodes[3][8], merged[3][8];
      CicReadTiles(hw, tiles, p1_nodes, p2_nodes);
      ChargeVpuOps(hw, 3);  // merge adds (one per component)
      for (int comp = 0; comp < 3; ++comp) {
        for (int k = 0; k < 8; ++k) {
          merged[comp][k] = p1_nodes[comp][k] + p2_nodes[comp][k];
        }
      }
      CicAccumulateBlocks(hw, rhocell, cell, merged);
      for (auto& t : tiles) {
        hw.TileZero(t);
      }
    });
    return;
  }

  // Pairwise: slot order; tiles are drained after every pair, and each
  // particle's block goes to its own cell (the pair may straddle cells).
  int64_t batch[kVpuLanes];
  int batch_fill = 0;
  auto flush = [&]() {
    if (batch_fill == 0) {
      return;
    }
    GatherStagedBatch<1>(hw, scratch, batch, batch_fill);
    for (int j = 0; j < batch_fill; j += 2) {
      const int64_t p1 = batch[j];
      const int64_t p2 = j + 1 < batch_fill ? batch[j + 1] : -1;
      CicMopaPair(hw, scratch, p1, p2, tiles);
      double p1_nodes[3][8], p2_nodes[3][8];
      CicReadTiles(hw, tiles, p1_nodes, p2_nodes);
      CicAccumulateBlocks(hw, rhocell,
                          StagedCellOf<1>(tile, scratch, static_cast<size_t>(p1)),
                          p1_nodes);
      if (p2 >= 0) {
        CicAccumulateBlocks(hw, rhocell,
                            StagedCellOf<1>(tile, scratch, static_cast<size_t>(p2)),
                            p2_nodes);
      }
      for (auto& t : tiles) {
        hw.TileZero(t);
      }
    }
    batch_fill = 0;
  };
  ForEachParticle(hw, tile, /*sorted=*/false, [&](int32_t pid) {
    batch[batch_fill++] = pid;
    if (batch_fill == kVpuLanes) {
      flush();
    }
  });
  flush();
}

// ---------------------------------------------------------------------------
// Order 3 (QSP): per component pass, four tiles T_c (one per z-term) stay
// resident; A_c = [wq*sz_c*sx0..3 (p1) | (p2)], B = [sy0..3 (p1) | (p2)].
// ---------------------------------------------------------------------------

void QspMopaPair(HwContext& hw, const DepositScratch& scratch, int64_t p1, int64_t p2,
                 const std::vector<double>& wq_stream, MpuTileReg tiles[4]) {
  const auto i1 = static_cast<size_t>(p1);
  Vec8 b = Vec8::Zero();
  for (int t = 0; t < 4; ++t) {
    b[t] = scratch.sy[t][i1];
  }
  if (p2 >= 0) {
    const auto i2 = static_cast<size_t>(p2);
    for (int t = 0; t < 4; ++t) {
      b[4 + t] = scratch.sy[t][i2];
    }
  }
  ChargeVpuOps(hw, 1);  // B assembly: one permute of the gathered sy registers

  const double wq1 = wq_stream[i1];
  const double wq2 = p2 >= 0 ? wq_stream[static_cast<size_t>(p2)] : 0.0;
  for (int c = 0; c < 4; ++c) {
    Vec8 a = Vec8::Zero();
    const double f1 = wq1 * scratch.sz_[c][i1];
    for (int t = 0; t < 4; ++t) {
      a[t] = f1 * scratch.sx[t][i1];
    }
    if (p2 >= 0) {
      const auto i2 = static_cast<size_t>(p2);
      const double f2 = wq2 * scratch.sz_[c][i2];
      for (int t = 0; t < 4; ++t) {
        a[4 + t] = f2 * scratch.sx[t][i2];
      }
    }
    ChargeVpuOps(hw, 2);  // A_c assembly: broadcast-multiply + permute
    hw.Mopa(tiles[c], a, b, p2 >= 0 ? 32 : 16);
  }
}

// Reads the four tiles of one component pass into per-particle-class node
// arrays in the rhocell block layout k = a + 4*b + 16*c (x fastest, matching
// ReduceRhocellToGrid). Tile row a carries sx_a, columns carry sy_b, so the
// extraction transposes each 4x4 block (a register shuffle network).
void QspReadTiles(HwContext& hw, const MpuTileReg tiles[4], double p1_nodes[64],
                  double p2_nodes[64]) {
  for (int c = 0; c < 4; ++c) {
    for (int a = 0; a < 4; ++a) {
      const Vec8 row1 = hw.TileReadRow(tiles[c], a);
      const Vec8 row2 = hw.TileReadRow(tiles[c], 4 + a);
      for (int bb = 0; bb < 4; ++bb) {
        p1_nodes[a + 4 * bb + 16 * c] = row1[bb];
        p2_nodes[a + 4 * bb + 16 * c] = row2[4 + bb];
      }
    }
    ChargeVpuOps(hw, 8);  // 4x4 block transpose + repack shifts per tile
  }
}

void QspAccumulateBlock(HwContext& hw, double* block, const double nodes[64]) {
  for (int base = 0; base < 64; base += kVpuLanes) {
    hw.TouchRead(block + base, sizeof(double) * kVpuLanes);
    ChargeVpuOps(hw, 1);
    for (int k = 0; k < kVpuLanes; ++k) {
      block[base + k] += nodes[base + k];
    }
    hw.TouchWrite(block + base, sizeof(double) * kVpuLanes);
  }
}

void DepositMpuQsp(HwContext& hw, const ParticleTile& tile,
                   const DepositScratch& scratch, RhocellBuffer& rhocell,
                   MpuScheduling scheduling, int sparse_fallback_ppc) {
  PhaseScope phase(hw.ledger(), Phase::kCompute);
  MpuTileReg tiles[4];
  for (auto& t : tiles) {
    hw.TileZero(t);
  }
  const std::vector<double>* wq_streams[3] = {&scratch.wqx, &scratch.wqy,
                                              &scratch.wqz};

  if (scheduling == MpuScheduling::kCellResident) {
    ForEachCellBin(hw, tile, [&](int cell, const int32_t* pids, int32_t len) {
      if (len < sparse_fallback_ppc) {
        DepositSparseBinVpu<3>(hw, scratch, rhocell, cell, pids, len);
        return;
      }
      double* blocks[3] = {rhocell.CellJx(cell), rhocell.CellJy(cell),
                           rhocell.CellJz(cell)};
      // One pass per component keeps the live tile count at four (the z-terms),
      // trading three passes over the bin for register-file residency.
      for (int comp = 0; comp < 3; ++comp) {
        int64_t batch[kVpuLanes];
        for (int32_t s = 0; s < len; s += kVpuLanes) {
          const int count = std::min<int32_t>(kVpuLanes, len - s);
          for (int j = 0; j < count; ++j) {
            batch[j] = pids[s + j];
          }
          GatherStagedBatch<3>(hw, scratch, batch, count);
          for (int j = 0; j < count; j += 2) {
            QspMopaPair(hw, scratch, batch[j], j + 1 < count ? batch[j + 1] : -1,
                        *wq_streams[comp], tiles);
          }
        }
        double p1_nodes[64], p2_nodes[64];
        QspReadTiles(hw, tiles, p1_nodes, p2_nodes);
        ChargeVpuOps(hw, 8);  // merge adds (8 vectors)
        double merged[64];
        for (int k = 0; k < 64; ++k) {
          merged[k] = p1_nodes[k] + p2_nodes[k];
        }
        QspAccumulateBlock(hw, blocks[comp], merged);
        for (auto& t : tiles) {
          hw.TileZero(t);
        }
      }
    });
    return;
  }

  // Pairwise: per pair, per component, four MOPAs then immediate extraction.
  int64_t batch[kVpuLanes];
  int batch_fill = 0;
  auto flush = [&]() {
    if (batch_fill == 0) {
      return;
    }
    GatherStagedBatch<3>(hw, scratch, batch, batch_fill);
    for (int j = 0; j < batch_fill; j += 2) {
      const int64_t p1 = batch[j];
      const int64_t p2 = j + 1 < batch_fill ? batch[j + 1] : -1;
      const int cell1 = StagedCellOf<3>(tile, scratch, static_cast<size_t>(p1));
      const int cell2 =
          p2 >= 0 ? StagedCellOf<3>(tile, scratch, static_cast<size_t>(p2)) : -1;
      for (int comp = 0; comp < 3; ++comp) {
        QspMopaPair(hw, scratch, p1, p2, *wq_streams[comp], tiles);
        double p1_nodes[64], p2_nodes[64];
        QspReadTiles(hw, tiles, p1_nodes, p2_nodes);
        double* block1 = comp == 0   ? rhocell.CellJx(cell1)
                         : comp == 1 ? rhocell.CellJy(cell1)
                                     : rhocell.CellJz(cell1);
        QspAccumulateBlock(hw, block1, p1_nodes);
        if (p2 >= 0) {
          double* block2 = comp == 0   ? rhocell.CellJx(cell2)
                           : comp == 1 ? rhocell.CellJy(cell2)
                                       : rhocell.CellJz(cell2);
          QspAccumulateBlock(hw, block2, p2_nodes);
        }
        for (auto& t : tiles) {
          hw.TileZero(t);
        }
      }
    }
    batch_fill = 0;
  };
  ForEachParticle(hw, tile, /*sorted=*/false, [&](int32_t pid) {
    batch[batch_fill++] = pid;
    if (batch_fill == kVpuLanes) {
      flush();
    }
  });
  flush();
}

}  // namespace

template <int Order>
void DepositMpu(HwContext& hw, const ParticleTile& tile, const DepositParams& params,
                const DepositScratch& scratch, RhocellBuffer& rhocell,
                MpuScheduling scheduling, int sparse_fallback_ppc) {
  static_assert(Order == 1 || Order == 3,
                "the MPU mapping is defined for CIC (1) and QSP (3)");
  (void)params;
  if constexpr (Order == 1) {
    DepositMpuCic(hw, tile, scratch, rhocell, scheduling, sparse_fallback_ppc);
  } else {
    DepositMpuQsp(hw, tile, scratch, rhocell, scheduling, sparse_fallback_ppc);
  }
}

template void DepositMpu<1>(HwContext&, const ParticleTile&, const DepositParams&,
                            const DepositScratch&, RhocellBuffer&, MpuScheduling,
                            int);
template void DepositMpu<3>(HwContext&, const ParticleTile&, const DepositParams&,
                            const DepositScratch&, RhocellBuffer&, MpuScheduling,
                            int);

}  // namespace mpic

#include "src/deposit/deposit_staging.h"

#include <cmath>

#include "src/particles/species.h"
#include "src/shape/shape_function.h"

namespace mpic {
namespace {

// Scalar ALU op estimate for one particle's staging at a given order: index
// math (3 axes), shape terms, gamma/velocity, and current factors.
template <int Order>
constexpr int ScalarStagingOps() {
  constexpr int kIndexOps = 9;                        // gx, floor, d per axis
  constexpr int kShapeOps = Order == 1 ? 3 : (Order == 2 ? 15 : 27);
  constexpr int kVelocityOps = 12;                    // u^2, gamma, 1/gamma, v
  constexpr int kCurrentOps = 6;                      // q*v*w*inv_vol
  return kIndexOps + kShapeOps + kVelocityOps + kCurrentOps;
}

// VPU instruction estimate for an 8-particle staging batch.
template <int Order>
constexpr int VpuStagingOps() {
  constexpr int kIndexOps = 12;  // fused gx/floor/d per axis
  constexpr int kShapeOps = Order == 1 ? 3 : (Order == 2 ? 12 : 21);
  constexpr int kVelocityOps = 9;  // 3 fma + sqrt (2) + recip (2) + 2 mul
  constexpr int kCurrentOps = 6;
  return kIndexOps + kShapeOps + kVelocityOps + kCurrentOps;
}

template <int Order>
void StageOneParticle(const ParticleSoA& soa, size_t i, const DepositParams& params,
                      DepositScratch& scratch) {
  constexpr int kSupport = Order + 1;
  const GridGeometry& g = params.geom;
  const double gx = (soa.x[i] - g.x0) / g.dx;
  const double gy = (soa.y[i] - g.y0) / g.dy;
  const double gz = (soa.z[i] - g.z0) / g.dz;

  int start_x, start_y, start_z;
  double wx[4], wy[4], wz[4];
  ShapeFunction<Order>::Weights(gx, &start_x, wx);
  ShapeFunction<Order>::Weights(gy, &start_y, wy);
  ShapeFunction<Order>::Weights(gz, &start_z, wz);

  scratch.ix[i] = static_cast<int32_t>(start_x);
  scratch.iy[i] = static_cast<int32_t>(start_y);
  scratch.iz[i] = static_cast<int32_t>(start_z);
  for (int t = 0; t < kSupport; ++t) {
    scratch.sx[t][i] = wx[t];
    scratch.sy[t][i] = wy[t];
    scratch.sz_[t][i] = wz[t];
  }

  const double ux = soa.ux[i];
  const double uy = soa.uy[i];
  const double uz = soa.uz[i];
  const double inv_c2 = 1.0 / (kSpeedOfLight * kSpeedOfLight);
  const double gamma = std::sqrt(1.0 + (ux * ux + uy * uy + uz * uz) * inv_c2);
  const double inv_gamma = 1.0 / gamma;
  const double qw = params.charge * soa.w[i] * params.InvCellVolume();
  scratch.wqx[i] = qw * ux * inv_gamma;
  scratch.wqy[i] = qw * uy * inv_gamma;
  scratch.wqz[i] = qw * uz * inv_gamma;
}

}  // namespace

template <int Order>
void StageTileScalar(HwContext& hw, const ParticleTile& tile,
                     const DepositParams& params, DepositScratch& scratch) {
  PhaseScope phase(hw.ledger(), Phase::kPreproc);
  constexpr int kSupport = Order + 1;
  const ParticleSoA& soa = tile.soa();
  scratch.Resize(soa.size(), Order);
  for (size_t i = 0; i < soa.size(); ++i) {
    if (!tile.IsLive(static_cast<int32_t>(i))) {
      hw.ScalarOps(1);  // validity test
      continue;
    }
    // Loads: x, y, z, ux, uy, uz, w.
    hw.TouchRead(&soa.x[i], sizeof(double));
    hw.TouchRead(&soa.y[i], sizeof(double));
    hw.TouchRead(&soa.z[i], sizeof(double));
    hw.TouchRead(&soa.ux[i], sizeof(double));
    hw.TouchRead(&soa.uy[i], sizeof(double));
    hw.TouchRead(&soa.uz[i], sizeof(double));
    hw.TouchRead(&soa.w[i], sizeof(double));
    hw.ScalarOps(ScalarStagingOps<Order>());
    StageOneParticle<Order>(soa, i, params, scratch);
    // Stores: 3 int indices, 3*kSupport shape terms, 3 current factors.
    hw.TouchWrite(&scratch.ix[i], sizeof(int32_t) * 3);
    for (int t = 0; t < kSupport; ++t) {
      hw.TouchWrite(&scratch.sx[t][i], sizeof(double));
      hw.TouchWrite(&scratch.sy[t][i], sizeof(double));
      hw.TouchWrite(&scratch.sz_[t][i], sizeof(double));
    }
    hw.TouchWrite(&scratch.wqx[i], sizeof(double));
    hw.TouchWrite(&scratch.wqy[i], sizeof(double));
    hw.TouchWrite(&scratch.wqz[i], sizeof(double));
  }
}

template <int Order>
void StageTileVpu(HwContext& hw, const ParticleTile& tile, const DepositParams& params,
                  DepositScratch& scratch) {
  PhaseScope phase(hw.ledger(), Phase::kPreproc);
  constexpr int kSupport = Order + 1;
  const ParticleSoA& soa = tile.soa();
  scratch.Resize(soa.size(), Order);
  const size_t n = soa.size();
  for (size_t base = 0; base < n; base += kVpuLanes) {
    const size_t batch = std::min(n - base, static_cast<size_t>(kVpuLanes));
    // Vector loads of the seven SoA streams (contiguous in slot order).
    for (const auto* stream : {&soa.x, &soa.y, &soa.z, &soa.ux, &soa.uy, &soa.uz,
                               &soa.w}) {
      hw.TouchRead(stream->data() + base, sizeof(double) * batch);
      hw.ledger().counters().vpu_mem += 1;
    }
    // Vectorized staging arithmetic for the batch (charged in one go; the real
    // per-lane arithmetic runs below).
    hw.ledger().counters().vpu_ops += static_cast<uint64_t>(VpuStagingOps<Order>());
    hw.ChargeCycles(VpuStagingOps<Order>() /
                    static_cast<double>(hw.cfg().vpu_pipes));
    // Real arithmetic (values must be exact; compute per lane).
    for (size_t i = base; i < base + batch; ++i) {
      StageOneParticle<Order>(soa, i, params, scratch);
    }
    // Vector stores of the staged streams.
    hw.TouchWrite(&scratch.ix[base], sizeof(int32_t) * batch);
    hw.TouchWrite(&scratch.iy[base], sizeof(int32_t) * batch);
    hw.TouchWrite(&scratch.iz[base], sizeof(int32_t) * batch);
    for (int t = 0; t < kSupport; ++t) {
      hw.TouchWrite(&scratch.sx[t][base], sizeof(double) * batch);
      hw.TouchWrite(&scratch.sy[t][base], sizeof(double) * batch);
      hw.TouchWrite(&scratch.sz_[t][base], sizeof(double) * batch);
    }
    hw.TouchWrite(&scratch.wqx[base], sizeof(double) * batch);
    hw.TouchWrite(&scratch.wqy[base], sizeof(double) * batch);
    hw.TouchWrite(&scratch.wqz[base], sizeof(double) * batch);
    hw.ledger().counters().vpu_mem += static_cast<uint64_t>(6 + 3 * kSupport);
  }
}

void RegisterStagingRegions(HwContext& hw, uint64_t tile_key_base,
                            const ParticleTile& tile, const DepositScratch& scratch) {
  const ParticleSoA& soa = tile.soa();
  if (soa.size() == 0) {
    return;
  }
  uint64_t key = tile_key_base;
  auto reg = [&hw, &key](const auto& v) {
    const uint64_t k = key++;
    if (!v.empty()) {
      hw.RegisterRegionKeyed(k, v.data(), v.size() * sizeof(v[0]));
    }
  };
  reg(soa.x);
  reg(soa.y);
  reg(soa.z);
  reg(soa.ux);
  reg(soa.uy);
  reg(soa.uz);
  reg(soa.w);
  reg(soa.xo);
  reg(soa.yo);
  reg(soa.zo);
  reg(scratch.ix);
  reg(scratch.iy);
  reg(scratch.iz);
  for (int t = 0; t < 4; ++t) {
    reg(scratch.sx[t]);
    reg(scratch.sy[t]);
    reg(scratch.sz_[t]);
  }
  reg(scratch.wqx);
  reg(scratch.wqy);
  reg(scratch.wqz);
  reg(tile.gpma().local_index());
}

template void StageTileScalar<1>(HwContext&, const ParticleTile&, const DepositParams&,
                                 DepositScratch&);
template void StageTileScalar<2>(HwContext&, const ParticleTile&, const DepositParams&,
                                 DepositScratch&);
template void StageTileScalar<3>(HwContext&, const ParticleTile&, const DepositParams&,
                                 DepositScratch&);
template void StageTileVpu<1>(HwContext&, const ParticleTile&, const DepositParams&,
                              DepositScratch&);
template void StageTileVpu<2>(HwContext&, const ParticleTile&, const DepositParams&,
                              DepositScratch&);
template void StageTileVpu<3>(HwContext&, const ParticleTile&, const DepositParams&,
                              DepositScratch&);

}  // namespace mpic

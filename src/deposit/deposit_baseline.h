// The "Baseline (WarpX)" deposition kernel model: compiler-handled loop that
// scatters each particle's contributions straight onto the global J arrays.
//
// The staging arithmetic vectorizes, but the scatter-add cannot (no compiler
// proves the nodes disjoint), so each of the Support3D(order) nodes costs three
// scalar read-modify-writes against global memory. Its performance is therefore
// dominated by the locality of those writes: with unsorted particles the
// touched node lines thrash the cache; after (incremental) sorting they stay
// resident — which is exactly the paper's Baseline vs Baseline+IncrSort gap.

#ifndef MPIC_SRC_DEPOSIT_DEPOSIT_BASELINE_H_
#define MPIC_SRC_DEPOSIT_DEPOSIT_BASELINE_H_

#include "src/deposit/deposit_params.h"
#include "src/grid/field_set.h"
#include "src/hw/hw_context.h"
#include "src/particles/particle_tile.h"

namespace mpic {

// Consumes staged per-particle data (see deposit_staging.h) and deposits to
// fields.jx/jy/jz. When `sorted` is true, iterates particles cell-by-cell via
// the tile's GPMA; otherwise in SoA slot order. Charged to Phase::kCompute.
template <int Order>
void DepositBaselineTile(HwContext& hw, const ParticleTile& tile,
                         const DepositParams& params, const DepositScratch& scratch,
                         FieldSet& fields, bool sorted);

}  // namespace mpic

#endif  // MPIC_SRC_DEPOSIT_DEPOSIT_BASELINE_H_

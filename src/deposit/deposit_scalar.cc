#include "src/deposit/deposit_scalar.h"

#include <cmath>

#include "src/particles/species.h"
#include "src/shape/shape_function.h"

namespace mpic {

template <int Order>
void DepositScalarTile(HwContext& hw, const ParticleTile& tile,
                       const DepositParams& params, FieldSet& fields) {
  PhaseScope phase(hw.ledger(), Phase::kCompute);
  constexpr int kSupport = Order + 1;
  const ParticleSoA& soa = tile.soa();
  const GridGeometry& g = params.geom;
  const double inv_c2 = 1.0 / (kSpeedOfLight * kSpeedOfLight);
  const double inv_vol = params.InvCellVolume();

  for (size_t i = 0; i < soa.size(); ++i) {
    if (!tile.IsLive(static_cast<int32_t>(i))) {
      hw.ScalarOps(1);
      continue;
    }
    hw.TouchRead(&soa.x[i], sizeof(double));
    hw.TouchRead(&soa.y[i], sizeof(double));
    hw.TouchRead(&soa.z[i], sizeof(double));
    hw.TouchRead(&soa.ux[i], sizeof(double));
    hw.TouchRead(&soa.uy[i], sizeof(double));
    hw.TouchRead(&soa.uz[i], sizeof(double));
    hw.TouchRead(&soa.w[i], sizeof(double));

    const double gx = (soa.x[i] - g.x0) / g.dx;
    const double gy = (soa.y[i] - g.y0) / g.dy;
    const double gz = (soa.z[i] - g.z0) / g.dz;
    int sx0, sy0, sz0;
    double wx[4], wy[4], wz[4];
    ShapeFunction<Order>::Weights(gx, &sx0, wx);
    ShapeFunction<Order>::Weights(gy, &sy0, wy);
    ShapeFunction<Order>::Weights(gz, &sz0, wz);

    const double ux = soa.ux[i];
    const double uy = soa.uy[i];
    const double uz = soa.uz[i];
    const double gamma = std::sqrt(1.0 + (ux * ux + uy * uy + uz * uz) * inv_c2);
    const double inv_gamma = 1.0 / gamma;
    const double qw = params.charge * soa.w[i] * inv_vol;
    const double wqx = qw * ux * inv_gamma;
    const double wqy = qw * uy * inv_gamma;
    const double wqz = qw * uz * inv_gamma;
    // Index + shape + velocity arithmetic.
    hw.ScalarOps(12 + (Order == 1 ? 3 : (Order == 2 ? 15 : 27)) + 17);

    for (int c = 0; c < kSupport; ++c) {
      for (int b = 0; b < kSupport; ++b) {
        const double wyz = wy[b] * wz[c];
        hw.ScalarOps(1);
        for (int a = 0; a < kSupport; ++a) {
          const double s3 = wx[a] * wyz;
          const int64_t node = fields.jx.Index(sx0 + a, sy0 + b, sz0 + c);
          hw.ScalarOps(1 + 6);  // weight product + 3 x (mul+add)
          hw.AccumScalar(&fields.jx.data()[node], wqx * s3);
          hw.AccumScalar(&fields.jy.data()[node], wqy * s3);
          hw.AccumScalar(&fields.jz.data()[node], wqz * s3);
        }
      }
    }
  }
}

double CanonicalFlopsPerParticle(int order) {
  // Index/fraction math: (sub, mul, floor, sub) x 3 axes.
  const double index_flops = 12;
  // 1D shape weights per axis.
  const double shape_flops = order == 1 ? 3 : (order == 2 ? 15 : 27);
  // gamma and velocity: u^2 (5), *inv_c2 (1), +1 (1), sqrt (1), q*w*inv_vol/gamma
  // (3), v components folded into wq (3), extra divides (3).
  const double velocity_flops = 17;
  // Per node: yz product hoisted per (b,c) pair, xyz product, then mul+add per
  // component.
  const int s = order + 1;
  const double node_flops = static_cast<double>(s) * s * 1.0 +  // wyz products
                            static_cast<double>(s) * s * s * (1.0 + 6.0);
  return index_flops + shape_flops + velocity_flops + node_flops;
}

template void DepositScalarTile<1>(HwContext&, const ParticleTile&,
                                   const DepositParams&, FieldSet&);
template void DepositScalarTile<2>(HwContext&, const ParticleTile&,
                                   const DepositParams&, FieldSet&);
template void DepositScalarTile<3>(HwContext&, const ParticleTile&,
                                   const DepositParams&, FieldSet&);

}  // namespace mpic

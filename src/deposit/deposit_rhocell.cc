#include "src/deposit/deposit_rhocell.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/deposit/particle_iteration.h"

namespace mpic {
namespace {

// Computes the full 3D weight array (Support3D entries, x fastest) for one
// staged particle. Pure arithmetic; the caller charges the modeled cost.
template <int Order>
void NodeWeights(const DepositScratch& scratch, size_t i, double* w3) {
  constexpr int kSupport = Order + 1;
  int k = 0;
  for (int c = 0; c < kSupport; ++c) {
    for (int b = 0; b < kSupport; ++b) {
      const double wyz = scratch.sy[b][i] * scratch.sz_[c][i];
      for (int a = 0; a < kSupport; ++a) {
        w3[k++] = scratch.sx[a][i] * wyz;
      }
    }
  }
}

// Accumulates w3 scaled by `factor` into one component block. Real arithmetic
// only; cost is charged by the caller at the chosen granularity.
template <int Order>
void AccumulateBlock(double* block, const double* w3, double factor) {
  constexpr int kNodes = Support3D(Order);
  for (int k = 0; k < kNodes; ++k) {
    block[k] += factor * w3[k];
  }
}

}  // namespace

template <int Order>
void DepositRhocellAutoVec(HwContext& hw, const ParticleTile& tile,
                           const DepositParams& params, const DepositScratch& scratch,
                           RhocellBuffer& rhocell, bool sorted) {
  static_assert(Order == 1 || Order == 3, "rhocell requires odd order");
  (void)params;
  PhaseScope phase(hw.ledger(), Phase::kCompute);
  constexpr int kSupport = Order + 1;
  constexpr int kNodes = Support3D(Order);
  constexpr int kRows = kNodes / kVpuLanes == 0 ? 1 : kNodes / kVpuLanes;

  ForEachParticle(hw, tile, sorted, [&](int32_t pid) {
    const auto i = static_cast<size_t>(pid);
    // Scalar staged loads (the compiler does not batch these across particles).
    hw.TouchRead(&scratch.ix[i], sizeof(int32_t) * 3);
    for (int t = 0; t < kSupport; ++t) {
      hw.TouchRead(&scratch.sx[t][i], sizeof(double));
      hw.TouchRead(&scratch.sy[t][i], sizeof(double));
      hw.TouchRead(&scratch.sz_[t][i], sizeof(double));
    }
    hw.TouchRead(&scratch.wqx[i], sizeof(double));
    hw.TouchRead(&scratch.wqy[i], sizeof(double));
    hw.TouchRead(&scratch.wqz[i], sizeof(double));

    double w3[Support3D(Order)];
    NodeWeights<Order>(scratch, i, w3);
    // The weight products go through a stack temporary (auto-vec emits the
    // store-reload): yz products scalar, xyz products vectorized.
    hw.ScalarOps(kSupport * kSupport + 3);
    hw.ledger().counters().vpu_ops += kRows;
    hw.ChargeCycles(kRows / static_cast<double>(hw.cfg().vpu_pipes));
    hw.TouchWrite(w3, sizeof(double) * kNodes);

    const int cell = StagedCellOf<Order>(tile, scratch, i);
    hw.ScalarOps(4);  // cell id + block address arithmetic

    const double factors[3] = {scratch.wqx[i], scratch.wqy[i], scratch.wqz[i]};
    double* blocks[3] = {rhocell.CellJx(cell), rhocell.CellJy(cell),
                         rhocell.CellJz(cell)};
    for (int comp = 0; comp < 3; ++comp) {
      AccumulateBlock<Order>(blocks[comp], w3, factors[comp]);
      // Vectorized block update: load + fma + store per row of the block.
      for (int r = 0; r < kRows; ++r) {
        hw.TouchRead(blocks[comp] + r * kVpuLanes,
                     sizeof(double) * std::min(kNodes, kVpuLanes));
        hw.TouchWrite(blocks[comp] + r * kVpuLanes,
                      sizeof(double) * std::min(kNodes, kVpuLanes));
      }
      hw.ledger().counters().vpu_ops += static_cast<uint64_t>(2 * kRows);
      hw.ChargeCycles(2.0 * kRows / static_cast<double>(hw.cfg().vpu_pipes));
    }
  });
}

template <int Order>
void DepositRhocellVpu(HwContext& hw, const ParticleTile& tile,
                       const DepositParams& params, const DepositScratch& scratch,
                       RhocellBuffer& rhocell, bool sorted) {
  static_assert(Order == 1 || Order == 3, "rhocell requires odd order");
  (void)params;
  PhaseScope phase(hw.ledger(), Phase::kCompute);
  constexpr int kSupport = Order + 1;
  constexpr int kNodes = Support3D(Order);
  constexpr int kRows = kNodes / kVpuLanes == 0 ? 1 : kNodes / kVpuLanes;

  int64_t batch_pids[kVpuLanes];
  int batch_fill = 0;
  auto flush_batch = [&]() {
    if (batch_fill == 0) {
      return;
    }
    // Batched gathers of the staged streams (cheap when pids are contiguous
    // after a global sort; scattered after incremental churn).
    const Mask8 m = Mask8::FirstN(batch_fill);
    for (int t = 0; t < kSupport; ++t) {
      hw.VGatherAuto(scratch.sx[t].data(), batch_pids, m);
      hw.VGatherAuto(scratch.sy[t].data(), batch_pids, m);
      hw.VGatherAuto(scratch.sz_[t].data(), batch_pids, m);
    }
    hw.VGatherAuto(scratch.wqx.data(), batch_pids, m);
    hw.VGatherAuto(scratch.wqy.data(), batch_pids, m);
    hw.VGatherAuto(scratch.wqz.data(), batch_pids, m);

    for (int bi = 0; bi < batch_fill; ++bi) {
      const auto i = static_cast<size_t>(batch_pids[bi]);
      double w3[Support3D(Order)];
      NodeWeights<Order>(scratch, i, w3);
      // Register-resident weight construction: permutes + multiplies.
      const int build_ops = Order == 1 ? 7 : 24;
      hw.ledger().counters().vpu_ops += static_cast<uint64_t>(build_ops);
      hw.ChargeCycles(build_ops / static_cast<double>(hw.cfg().vpu_pipes));

      const int cell = StagedCellOf<Order>(tile, scratch, i);
      hw.ScalarOps(4);
      const double factors[3] = {scratch.wqx[i], scratch.wqy[i], scratch.wqz[i]};
      double* blocks[3] = {rhocell.CellJx(cell), rhocell.CellJy(cell),
                           rhocell.CellJz(cell)};
      for (int comp = 0; comp < 3; ++comp) {
        AccumulateBlock<Order>(blocks[comp], w3, factors[comp]);
        for (int r = 0; r < kRows; ++r) {
          hw.TouchRead(blocks[comp] + r * kVpuLanes,
                       sizeof(double) * std::min(kNodes, kVpuLanes));
          hw.TouchWrite(blocks[comp] + r * kVpuLanes,
                        sizeof(double) * std::min(kNodes, kVpuLanes));
        }
        hw.ledger().counters().vpu_ops += static_cast<uint64_t>(2 * kRows);
        hw.ChargeCycles(2.0 * kRows / static_cast<double>(hw.cfg().vpu_pipes));
      }
    }
    batch_fill = 0;
  };

  ForEachParticle(hw, tile, sorted, [&](int32_t pid) {
    batch_pids[batch_fill++] = pid;
    if (batch_fill == kVpuLanes) {
      flush_batch();
    }
  });
  flush_batch();
}

template <int Order>
void ReduceRhocellToGrid(HwContext& hw, const ParticleTile& tile,
                         RhocellBuffer& rhocell, FieldSet& fields) {
  static_assert(Order == 1 || Order == 3, "rhocell requires odd order");
  PhaseScope phase(hw.ledger(), Phase::kReduce);
  constexpr int kSupport = Order + 1;
  constexpr int kNodes = Support3D(Order);
  constexpr int kOff = Order == 3 ? 1 : 0;

  FieldArray* comps[3] = {&fields.jx, &fields.jy, &fields.jz};
  double* blocks[3];
  int64_t node_idx[Support3D(Order)];

  for (int cell = 0; cell < rhocell.num_cells(); ++cell) {
    blocks[0] = rhocell.CellJx(cell);
    blocks[1] = rhocell.CellJy(cell);
    blocks[2] = rhocell.CellJz(cell);
    int gx, gy, gz;
    tile.LocalCellToGlobal(cell, &gx, &gy, &gz);
    const int sx0 = gx - kOff;
    const int sy0 = gy - kOff;
    const int sz0 = gz - kOff;
    int k = 0;
    for (int c = 0; c < kSupport; ++c) {
      for (int b = 0; b < kSupport; ++b) {
        for (int a = 0; a < kSupport; ++a) {
          node_idx[k++] = fields.jx.Index(sx0 + a, sy0 + b, sz0 + c);
        }
      }
    }
    hw.ScalarOps(8);  // node index arithmetic (strength-reduced)

    for (int comp = 0; comp < 3; ++comp) {
      double* grid = comps[comp]->data();
      for (int base = 0; base < kNodes; base += kVpuLanes) {
        const int n = std::min(kVpuLanes, kNodes - base);
        const Mask8 m = Mask8::FirstN(n);
        // Load the block row, scatter-accumulate onto the grid (lanes hit
        // distinct nodes by construction: no conflict handling needed).
        Vec8 v = hw.VLoad(blocks[comp] + base);
        hw.VScatterAccum(grid, node_idx + base, v, m);
        // Zero the block row for the next deposition pass.
        hw.VStore(blocks[comp] + base, Vec8::Zero());
      }
    }
  }
}

template void DepositRhocellAutoVec<1>(HwContext&, const ParticleTile&,
                                       const DepositParams&, const DepositScratch&,
                                       RhocellBuffer&, bool);
template void DepositRhocellAutoVec<3>(HwContext&, const ParticleTile&,
                                       const DepositParams&, const DepositScratch&,
                                       RhocellBuffer&, bool);
template void DepositRhocellVpu<1>(HwContext&, const ParticleTile&,
                                   const DepositParams&, const DepositScratch&,
                                   RhocellBuffer&, bool);
template void DepositRhocellVpu<3>(HwContext&, const ParticleTile&,
                                   const DepositParams&, const DepositScratch&,
                                   RhocellBuffer&, bool);
template void ReduceRhocellToGrid<1>(HwContext&, const ParticleTile&, RhocellBuffer&,
                                     FieldSet&);
template void ReduceRhocellToGrid<3>(HwContext&, const ParticleTile&, RhocellBuffer&,
                                     FieldSet&);

}  // namespace mpic

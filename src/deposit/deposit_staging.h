// Stage 1 of the deposition pipeline (Algorithm 2): compute per-particle cell
// indices, 1D shape terms and effective current factors into DepositScratch.
//
// Two cost profiles exist for the same arithmetic:
//   * StageTileScalar — models what compilers actually emit for the irregular
//     staging loop in the baseline and auto-vectorized rhocell kernels
//     (scalar loads, scalar math).
//   * StageTileVpu    — the hand-vectorized staging used by the strongest VPU
//     baseline and by MatrixPIC (8 particles per iteration, contiguous vector
//     loads in SoA slot order).
//
// Both produce numerically identical staging values; tests assert this.

#ifndef MPIC_SRC_DEPOSIT_DEPOSIT_STAGING_H_
#define MPIC_SRC_DEPOSIT_DEPOSIT_STAGING_H_

#include "src/deposit/deposit_params.h"
#include "src/hw/hw_context.h"
#include "src/particles/particle_tile.h"

namespace mpic {

// Stages every SoA slot of the tile (dead slots produce unused values). Charged
// to Phase::kPreproc.
template <int Order>
void StageTileScalar(HwContext& hw, const ParticleTile& tile,
                     const DepositParams& params, DepositScratch& scratch);

template <int Order>
void StageTileVpu(HwContext& hw, const ParticleTile& tile,
                  const DepositParams& params, DepositScratch& scratch);

// Registers the tile's SoA arrays (including the old-position lanes) and the
// scratch arrays with the hardware model's address space under stable keys
// (`tile_key_base` from MemRegionKey with stream 0; streams 0..31 are
// reserved for these arrays, 32..68 for the Esirkepov scheme's scratch — see
// RegisterEsirkepovRegions), so the logical layout stays deterministic across
// reallocations. Call whenever the arrays may have moved since the last
// registration (cheap no-op otherwise).
void RegisterStagingRegions(HwContext& hw, uint64_t tile_key_base,
                            const ParticleTile& tile, const DepositScratch& scratch);

}  // namespace mpic

#endif  // MPIC_SRC_DEPOSIT_DEPOSIT_STAGING_H_

// Shared parameter and scratch types for the deposition kernels.

#ifndef MPIC_SRC_DEPOSIT_DEPOSIT_PARAMS_H_
#define MPIC_SRC_DEPOSIT_DEPOSIT_PARAMS_H_

#include <cstdint>
#include <vector>

#include "src/grid/grid_geometry.h"

namespace mpic {

struct DepositParams {
  GridGeometry geom;
  // Species charge [C]. Current density J gets q * v * w * S / cell_volume.
  double charge = 0.0;
  // Timestep [s]. Consumed only by the Esirkepov current scheme, whose J is
  // charge motion per unit time; the direct kernels ignore it.
  double dt = 0.0;

  double InvCellVolume() const { return 1.0 / (geom.dx * geom.dy * geom.dz); }
};

// Per-slot staged particle quantities produced by the preprocessing stage
// (Algorithm 2, Stage 1) and consumed by the compute stage. Arrays are indexed
// by tile-local pid (SoA slot) so both sorted and unsorted kernels can use them.
struct DepositScratch {
  void Resize(size_t n_slots, int order) {
    const size_t terms = static_cast<size_t>(order) + 1;
    for (size_t t = 0; t < 4; ++t) {
      const size_t sz = t < terms ? n_slots : 0;
      sx[t].resize(sz);
      sy[t].resize(sz);
      sz_[t].resize(sz);
    }
    ix.resize(n_slots);
    iy.resize(n_slots);
    iz.resize(n_slots);
    wqx.resize(n_slots);
    wqy.resize(n_slots);
    wqz.resize(n_slots);
  }

  // 1D shape terms per axis; sx[t][pid] is the weight of node (start+t).
  std::vector<double> sx[4], sy[4], sz_[4];
  // Base cell index per axis (global cells).
  std::vector<int32_t> ix, iy, iz;
  // Effective current factors: q * v_comp * w / cell_volume.
  std::vector<double> wqx, wqy, wqz;
};

}  // namespace mpic

#endif  // MPIC_SRC_DEPOSIT_DEPOSIT_PARAMS_H_

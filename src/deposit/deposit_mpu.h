// MatrixPIC MPU deposition kernels (paper Sec. 4.2): current deposition
// reformulated as vector outer products on the 8x8 FP64 MPU tile.
//
// Order 1 (CIC), two particles per MOPA (Sec. 4.2.1):
//   A = [wq*sx0, wq*sx1 (p1) | wq*sx0, wq*sx1 (p2) | 0,0,0,0]   (4x8 logical)
//   B = [sy0*sz0, sy1*sz0, sy0*sz1, sy1*sz1 (p1) | ... (p2)]
//   C += A (x) B; p1's 8 nodes live in rows 0-1 x cols 0-3, p2's in rows 2-3 x
//   cols 4-7; cross blocks are never read. 16 of 64 tile slots carry valid
//   work (25% utilization — the paper's CIC figure).
//
// Order 3 (QSP), two particles per MOPA, one MOPA per z-shape term:
//   A_c = [wq*sz_c*sx0..3 (p1) | wq*sz_c*sx0..3 (p2)]
//   B   = [sy0..3 (p1) | sy0..3 (p2)]
//   T_c += A_c (x) B for c = 0..3; p1's 4x4 block in rows 0-3 x cols 0-3, p2's
//   in rows 4-7 x cols 4-7 (32 of 64 slots = 50% utilization). The z-term
//   scaling rides in A (VPU-prepared), matching the paper's hybrid split where
//   VPUs stage operands and the MPU performs the dense accumulation.
//
// Scheduling:
//   kCellResident — requires cell-sorted particles; accumulator tiles stay
//     resident across all particles of a cell and are extracted to the rhocell
//     once per cell (the register-reuse the incremental sorter exists for).
//   kPairwise     — no sorting assumption; tiles are zeroed and extracted per
//     particle pair (models Hybrid-noSort's VPU<->MPU traffic).

#ifndef MPIC_SRC_DEPOSIT_DEPOSIT_MPU_H_
#define MPIC_SRC_DEPOSIT_DEPOSIT_MPU_H_

#include "src/deposit/deposit_params.h"
#include "src/deposit/rhocell.h"
#include "src/hw/hw_context.h"
#include "src/particles/particle_tile.h"

namespace mpic {

enum class MpuScheduling {
  kCellResident,
  kPairwise,
};

// Deposits all live particles of the tile into `rhocell` using the MPU.
// kCellResident iterates via the tile's GPMA (particles must be cell-sorted);
// kPairwise iterates in SoA slot order. Charged to Phase::kCompute.
//
// sparse_fallback_ppc implements the adaptive strategy the paper recommends
// for production (Sec. 6.1) and lists as future work (Sec. 7): bins holding
// fewer than this many particles are deposited by a lightweight VPU path
// instead of spinning up MPU tiles whose per-cell setup/extraction cost cannot
// amortize. 0 disables the fallback. Only meaningful with kCellResident.
template <int Order>
void DepositMpu(HwContext& hw, const ParticleTile& tile, const DepositParams& params,
                const DepositScratch& scratch, RhocellBuffer& rhocell,
                MpuScheduling scheduling, int sparse_fallback_ppc = 0);

}  // namespace mpic

#endif  // MPIC_SRC_DEPOSIT_DEPOSIT_MPU_H_

// Iteration helpers shared by the deposition kernels.
//
// ForEachParticle visits every live particle of a tile either in SoA slot order
// (the unsorted baselines) or cell-by-cell through the GPMA bins (the sorted
// kernels), charging the modeled cost of the traversal itself (live-flag tests
// resp. GPMA index loads).

#ifndef MPIC_SRC_DEPOSIT_PARTICLE_ITERATION_H_
#define MPIC_SRC_DEPOSIT_PARTICLE_ITERATION_H_

#include <cstdint>

#include "src/hw/hw_context.h"
#include "src/particles/particle_tile.h"

namespace mpic {

// fn(pid) is invoked for each live particle.
template <typename Fn>
void ForEachParticle(HwContext& hw, const ParticleTile& tile, bool sorted, Fn&& fn) {
  if (!sorted) {
    const int32_t n = tile.num_slots();
    for (int32_t pid = 0; pid < n; ++pid) {
      hw.ScalarOps(1);  // live-flag test
      if (tile.IsLive(pid)) {
        fn(pid);
      }
    }
    return;
  }
  const Gpma& gpma = tile.gpma();
  const auto& index = gpma.local_index();
  for (int cell = 0; cell < gpma.num_cells(); ++cell) {
    const int64_t off = gpma.BinOffset(cell);
    const int32_t len = gpma.BinLen(cell);
    if (len > 0) {
      // The bin's index words stream in contiguously.
      hw.TouchRead(&index[static_cast<size_t>(off)], sizeof(int32_t) * len);
    }
    for (int32_t s = 0; s < len; ++s) {
      fn(index[static_cast<size_t>(off + s)]);
    }
  }
}

// fn(cell, pids, count) is invoked once per non-empty cell with the bin's pid
// list (sorted kernels only).
template <typename Fn>
void ForEachCellBin(HwContext& hw, const ParticleTile& tile, Fn&& fn) {
  const Gpma& gpma = tile.gpma();
  const auto& index = gpma.local_index();
  for (int cell = 0; cell < gpma.num_cells(); ++cell) {
    const int64_t off = gpma.BinOffset(cell);
    const int32_t len = gpma.BinLen(cell);
    if (len == 0) {
      continue;
    }
    hw.TouchRead(&index[static_cast<size_t>(off)], sizeof(int32_t) * len);
    fn(cell, &index[static_cast<size_t>(off)], len);
  }
}

}  // namespace mpic

#endif  // MPIC_SRC_DEPOSIT_PARTICLE_ITERATION_H_

// Rhocell deposition kernels (paper Sec. 3.4 and baselines of Sec. 6.3).
//
//   DepositRhocellAutoVec — reproduction of the compiler-vectorized rhocell
//     kernel of Vincenti et al.: the 8-node (CIC) / 64-node (QSP) inner loop
//     vectorizes because the cell block is contiguous, but the per-particle
//     setup stays scalar and particles arrive in whatever order the tile holds.
//   DepositRhocellVpu — the hand-tuned strongest VPU baseline: batched staged
//     gathers, register-built weight vectors, vector FMAs into the cell block.
//
// Both accumulate into a RhocellBuffer; ReduceRhocellToGrid then performs the
// single O(num_cells) scatter-add onto the global J arrays (Equation 5).
//
// Only odd orders (1 and 3) are supported: even-order (TSC) shapes are centered
// on the nearest *node*, so particles of one cell straddle two blocks and the
// rhocell invariant "one block per cell" does not hold — the same reason the
// paper evaluates CIC and QSP.

#ifndef MPIC_SRC_DEPOSIT_DEPOSIT_RHOCELL_H_
#define MPIC_SRC_DEPOSIT_DEPOSIT_RHOCELL_H_

#include "src/deposit/deposit_params.h"
#include "src/deposit/rhocell.h"
#include "src/grid/field_set.h"
#include "src/hw/hw_context.h"
#include "src/particles/particle_tile.h"

namespace mpic {

template <int Order>
void DepositRhocellAutoVec(HwContext& hw, const ParticleTile& tile,
                           const DepositParams& params, const DepositScratch& scratch,
                           RhocellBuffer& rhocell, bool sorted);

template <int Order>
void DepositRhocellVpu(HwContext& hw, const ParticleTile& tile,
                       const DepositParams& params, const DepositScratch& scratch,
                       RhocellBuffer& rhocell, bool sorted);

// Scatter-adds every cell block onto fields.jx/jy/jz and zeroes the buffer.
// Charged to Phase::kReduce. Works for any tile; node indices are global.
template <int Order>
void ReduceRhocellToGrid(HwContext& hw, const ParticleTile& tile,
                         RhocellBuffer& rhocell, FieldSet& fields);

// Tile-local cell id of a staged particle, derived from its start node indices
// (start = cell for order 1, cell-1 for order 3).
template <int Order>
inline int StagedCellOf(const ParticleTile& tile, const DepositScratch& scratch,
                        size_t i) {
  constexpr int kOff = Order == 3 ? 1 : 0;
  return tile.LocalCellId(scratch.ix[i] + kOff, scratch.iy[i] + kOff,
                          scratch.iz[i] + kOff);
}

}  // namespace mpic

#endif  // MPIC_SRC_DEPOSIT_DEPOSIT_RHOCELL_H_

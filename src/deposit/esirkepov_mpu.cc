#include "src/deposit/esirkepov_mpu.h"

#include <algorithm>
#include <cstdint>

#include "src/deposit/particle_iteration.h"

namespace mpic {
namespace {

void ChargeVpuOps(HwContext& hw, int n) {
  hw.ledger().counters().vpu_ops += static_cast<uint64_t>(n);
  hw.ChargeCycles(n / static_cast<double>(hw.cfg().vpu_pipes));
}

// Row / column axis of each plane tile (0=x, 1=y, 2=z); see esirkepov_mpu.h.
constexpr int kPlaneRowAxis[3] = {1, 2, 1};
constexpr int kPlaneColAxis[3] = {2, 0, 0};

// Decoded per-particle view of one staged window block. The m windows are
// materialized by value: the scratch stores only kW - 1 m lanes per axis and
// MakeView reconstructs the last one from d and the direction bit (see
// EsirkepovWideLastM), so downstream packing/extraction sees full windows.
template <int Order>
struct WindowView {
  static constexpr int kW = Order + 2;
  double m[3][Order + 2];
  const double* d[3];
  int base[3];
  int width[3];  // effective per-axis window width: Order+1 narrow, Order+2 wide
  double cf[3];  // qf * d{x,y,z} / dt
  int slot_width;  // max axis width = lane pitch this particle needs in a tile
};

template <int Order>
WindowView<Order> MakeView(HwContext& hw, const EsirkepovScratch& scratch,
                           const double f[3], size_t i) {
  constexpr int kW = Order + 2;
  WindowView<Order> v;
  const double* w = scratch.Win(i);
  const uint8_t wide = scratch.wide[i];
  for (int axis = 0; axis < 3; ++axis) {
    const double* stored_m = w + scratch.OffM(axis);
    v.d[axis] = w + scratch.OffD(axis);
    for (int t = 0; t < kW - 1; ++t) {
      v.m[axis][t] = stored_m[t];
    }
    v.m[axis][kW - 1] = EsirkepovWideLastM(wide, axis, v.d[axis][kW - 1]);
  }
  v.base[0] = scratch.bx[i];
  v.base[1] = scratch.by[i];
  v.base[2] = scratch.bz[i];
  for (int axis = 0; axis < 3; ++axis) {
    v.width[axis] = ((wide >> axis) & 1) != 0 ? kW : kW - 1;
  }
  const double qf = scratch.qf[i];
  v.cf[0] = qf * f[0];
  v.cf[1] = qf * f[1];
  v.cf[2] = qf * f[2];
  v.slot_width = wide == 0 ? kW - 1 : kW;
  // cf scales + the three m-lane reconstructions; the width decode rides the
  // same issue slots.
  hw.ScalarOps(6);
  return v;
}

// Issues the three plane tiles of one MOPA group of `g` particles packed at
// lane offsets {0, pitch, 2*pitch, ...}: per plane a zeroing m (x) m followed
// by an accumulating d (x) (k12*d), so each tile ends as
// T = fma(d_r, k12*d_c, m_r*m_c). Off-diagonal cross-particle blocks hold
// garbage and are never read.
template <int Order>
void EsirkMopaGroup(HwContext& hw, const WindowView<Order>* views, int g,
                    int pitch, MpuTileReg tiles[3]) {
  constexpr double k12 = 1.0 / 12.0;
  // Operand assembly: six lane blends per extra group member (the six operand
  // registers merge g window loads each) plus two k12 pre-scales shared by
  // the three planes' difference columns.
  ChargeVpuOps(hw, 6 * (g > 1 ? g - 1 : 1) + 2);
  for (int plane = 0; plane < 3; ++plane) {
    const int ra = kPlaneRowAxis[plane];
    const int ca = kPlaneColAxis[plane];
    Vec8 mr = Vec8::Zero();
    Vec8 dr = Vec8::Zero();
    Vec8 mc = Vec8::Zero();
    Vec8 dc = Vec8::Zero();
    int valid = 0;
    for (int k = 0; k < g; ++k) {
      const WindowView<Order>& p = views[k];
      const int off = k * pitch;
      for (int t = 0; t < p.width[ra]; ++t) {
        mr[off + t] = p.m[ra][t];
        dr[off + t] = p.d[ra][t];
      }
      for (int t = 0; t < p.width[ca]; ++t) {
        mc[off + t] = p.m[ca][t];
        dc[off + t] = k12 * p.d[ca][t];
      }
      valid += p.width[ra] * p.width[ca];
    }
    hw.MopaZero(tiles[plane], mr, mc, valid);
    hw.Mopa(tiles[plane], dr, dc, valid);
  }
}

// Reads one particle's plane blocks back (lane offset `off` inside the pair
// tiles) and applies the longitudinal cumulative sums as x-contiguous
// read-modify-writes on the tile scratch. Each run is one by-element FMA
// (vector * tile-row lane, an SVE/NEON-class instruction), with the charge
// factor folded into the prefix vector once per axis.
template <int Order>
void ExtractParticle(HwContext& hw, const WindowView<Order>& v, int off,
                     const MpuTileReg tiles[3], TileCurrent& tile_j) {
  constexpr int kW = Order + 2;
  // cf-scaled prefix vectors u[axis][t] = -cf[axis] * sum_{s<=t} d[axis][s].
  // All Order+1 longitudinal lanes stay live: the prefix at the last support
  // lane is tiny but nonzero in floating point, and the scalar reference
  // keeps it.
  double u[3][kW - 1];
  for (int axis = 0; axis < 3; ++axis) {
    double acc = 0.0;
    for (int t = 0; t < kW - 1; ++t) {
      acc -= v.d[axis][t];
      u[axis][t] = v.cf[axis] * acc;
    }
  }
  // Per axis: log2(run lanes) shifted-add cumsum steps + the cf fold.
  ChargeVpuOps(hw, Order == 1 ? 6 : 9);

  double* jx = tile_j.jx().data();
  double* jy = tile_j.jy().data();
  double* jz = tile_j.jz().data();
  const int wx = v.width[0];
  const int wy = v.width[1];
  const int wz = v.width[2];

  // Jx: runs along x of width Order+1, one per live (b, c) of T_yz.
  for (int b = 0; b < wy; ++b) {
    const Vec8 row = hw.TileReadRow(tiles[0], off + b);
    for (int c = 0; c < wz; ++c) {
      const double t = row[off + c];
      const int64_t node = tile_j.Index(v.base[0], v.base[1] + b, v.base[2] + c);
      hw.TouchRead(&jx[node], sizeof(double) * (kW - 1));
      ChargeVpuOps(hw, 1);  // by-element FMA: jx_vec += u_x * T[b][c]
      for (int a = 0; a < kW - 1; ++a) {
        jx[node + a] += u[0][a] * t;
      }
      hw.TouchWrite(&jx[node], sizeof(double) * (kW - 1));
    }
  }
  // Jy: tile 1 rows are z, lanes are x; runs of width wx per live (b, c).
  {
    Vec8 rows[kW];
    for (int c = 0; c < wz; ++c) {
      rows[c] = hw.TileReadRow(tiles[1], off + c);
    }
    for (int b = 0; b < kW - 1; ++b) {
      for (int c = 0; c < wz; ++c) {
        const int64_t node =
            tile_j.Index(v.base[0], v.base[1] + b, v.base[2] + c);
        hw.TouchRead(&jy[node], sizeof(double) * static_cast<size_t>(wx));
        ChargeVpuOps(hw, 1);  // by-element FMA: jy_vec += T_row * u_y[b]
        for (int a = 0; a < wx; ++a) {
          jy[node + a] += u[1][b] * rows[c][off + a];
        }
        hw.TouchWrite(&jy[node], sizeof(double) * static_cast<size_t>(wx));
      }
    }
  }
  // Jz: tile 2 rows are y, lanes are x; runs of width wx per live (b, c).
  {
    Vec8 rows[kW];
    for (int b = 0; b < wy; ++b) {
      rows[b] = hw.TileReadRow(tiles[2], off + b);
    }
    for (int c = 0; c < kW - 1; ++c) {
      for (int b = 0; b < wy; ++b) {
        const int64_t node =
            tile_j.Index(v.base[0], v.base[1] + b, v.base[2] + c);
        hw.TouchRead(&jz[node], sizeof(double) * static_cast<size_t>(wx));
        ChargeVpuOps(hw, 1);  // by-element FMA: jz_vec += T_row * u_z[c]
        for (int a = 0; a < wx; ++a) {
          jz[node + a] += u[2][c] * rows[b][off + a];
        }
        hw.TouchWrite(&jz[node], sizeof(double) * static_cast<size_t>(wx));
      }
    }
  }
}

// Register-resident J accumulator for the all-narrow particles of one batch
// that share a window base (in cell-resident bins at thermal drifts that is
// nearly every particle: same cell, no boundary crossing, so identical
// (bx, by, bz)). Each component block is (Order+1)^3 doubles — 1 Vec8 at
// order 1, ~3.4 at order 2, ~10 in total with all three components — small
// enough to live entirely in the vector register file alongside the tile
// operands, so per-particle runs become register FMAs and the tile-scratch
// read-modify-writes are issued once per batch at flush. Order 3's blocks
// (24 Vec8) would spill, so it keeps the per-particle extraction.
template <int Order>
struct NarrowAccum {
  static constexpr int kN = Order + 1;
  double jx[kN * kN * kN];
  double jy[kN * kN * kN];
  double jz[kN * kN * kN];
  int base[3];
  bool active = false;
};

template <int Order>
void ExtractParticleToAccum(HwContext& hw, const WindowView<Order>& v, int off,
                            const MpuTileReg tiles[3], NarrowAccum<Order>& acc) {
  constexpr int kW = Order + 2;
  constexpr int kN = Order + 1;
  double u[3][kW - 1];
  for (int axis = 0; axis < 3; ++axis) {
    double s = 0.0;
    for (int t = 0; t < kW - 1; ++t) {
      s -= v.d[axis][t];
      u[axis][t] = v.cf[axis] * s;
    }
  }
  ChargeVpuOps(hw, Order == 1 ? 6 : 9);

  // Same run structure as ExtractParticle, but every run lands in the
  // register block: one by-element FMA per run, no memory traffic.
  for (int b = 0; b < kN; ++b) {
    const Vec8 row = hw.TileReadRow(tiles[0], off + b);
    for (int c = 0; c < kN; ++c) {
      const double t = row[off + c];
      ChargeVpuOps(hw, 1);
      for (int a = 0; a < kN; ++a) {
        acc.jx[(b * kN + c) * kN + a] += u[0][a] * t;
      }
    }
  }
  {
    Vec8 rows[kN];
    for (int c = 0; c < kN; ++c) {
      rows[c] = hw.TileReadRow(tiles[1], off + c);
    }
    for (int b = 0; b < kN; ++b) {
      for (int c = 0; c < kN; ++c) {
        ChargeVpuOps(hw, 1);
        for (int a = 0; a < kN; ++a) {
          acc.jy[(b * kN + c) * kN + a] += u[1][b] * rows[c][off + a];
        }
      }
    }
  }
  {
    Vec8 rows[kN];
    for (int b = 0; b < kN; ++b) {
      rows[b] = hw.TileReadRow(tiles[2], off + b);
    }
    for (int c = 0; c < kN; ++c) {
      for (int b = 0; b < kN; ++b) {
        ChargeVpuOps(hw, 1);
        for (int a = 0; a < kN; ++a) {
          acc.jz[(b * kN + c) * kN + a] += u[2][c] * rows[b][off + a];
        }
      }
    }
  }
}

template <int Order>
void FlushAccum(HwContext& hw, const NarrowAccum<Order>& acc,
                TileCurrent& tile_j) {
  constexpr int kN = Order + 1;
  double* j[3] = {tile_j.jx().data(), tile_j.jy().data(), tile_j.jz().data()};
  for (int comp = 0; comp < 3; ++comp) {
    const double* blk =
        comp == 0 ? acc.jx : (comp == 1 ? acc.jy : acc.jz);
    for (int b = 0; b < kN; ++b) {
      for (int c = 0; c < kN; ++c) {
        const int64_t node =
            tile_j.Index(acc.base[0], acc.base[1] + b, acc.base[2] + c);
        hw.TouchRead(&j[comp][node], sizeof(double) * kN);
        ChargeVpuOps(hw, 1);  // vector add of the register block's run
        for (int a = 0; a < kN; ++a) {
          j[comp][node + a] += blk[(b * kN + c) * kN + a];
        }
        hw.TouchWrite(&j[comp][node], sizeof(double) * kN);
      }
    }
  }
}

// One batch of up to kVpuLanes staged particles: batched loads, then greedy
// width-adaptive packing (deterministic — depends only on staged widths in
// pid order). A group of g particles shares each plane tile at lane pitch S,
// S the widest member's slot width: all-narrow order-1 groups pack FOUR
// particles per tile (pitch 2), orders 2-3 pack pairs, boundary-crossing
// order-3 particles go single.
template <int Order>
void ProcessBatch(HwContext& hw, const EsirkepovScratch& scratch,
                  const double f[3], const int32_t* pids, int count,
                  TileCurrent& tile_j) {
  // Side streams once per batch over the pid span (pids come in ascending
  // runs from the bins / slot walk); window blocks as unaligned vector loads,
  // one contiguous stream when the batch's slots are consecutive.
  int32_t lo = pids[0];
  int32_t hi = pids[0];
  for (int s = 1; s < count; ++s) {
    lo = std::min(lo, pids[s]);
    hi = std::max(hi, pids[s]);
  }
  const auto first = static_cast<size_t>(lo);
  const auto span = static_cast<size_t>(hi - lo) + 1;
  hw.TouchRead(&scratch.bx[first], sizeof(int32_t) * span);
  hw.TouchRead(&scratch.by[first], sizeof(int32_t) * span);
  hw.TouchRead(&scratch.bz[first], sizeof(int32_t) * span);
  hw.TouchRead(&scratch.qf[first], sizeof(double) * span);
  hw.TouchRead(&scratch.wide[first], sizeof(uint8_t) * span);

  const size_t stride = static_cast<size_t>(scratch.stride());
  const size_t loads =
      span == static_cast<size_t>(count)
          ? (static_cast<size_t>(count) * stride + kVpuLanes - 1) / kVpuLanes
          : static_cast<size_t>(count) * ((stride + kVpuLanes - 1) / kVpuLanes);
  hw.ledger().counters().vpu_mem += static_cast<uint64_t>(loads);
  hw.ChargeCycles(static_cast<double>(loads) * hw.cfg().vector_mem_issue_cycles);

  WindowView<Order> views[kVpuLanes];
  for (int s = 0; s < count; ++s) {
    const auto i = static_cast<size_t>(pids[s]);
    hw.TouchRead(scratch.Win(i), sizeof(double) * stride);
    views[s] = MakeView<Order>(hw, scratch, f, i);
  }

  // Orders 1-2: all-narrow particles sharing the batch's reference base
  // accumulate into the register block and flush once (NarrowAccum above).
  constexpr int kW = Order + 2;
  constexpr bool kUseAccum = Order <= 2;
  NarrowAccum<Order> accum;

  int s = 0;
  while (s < count) {
    // Greedy group: extend while one more member still fits at the widened
    // lane pitch.
    int g = 1;
    int pitch = views[s].slot_width;
    while (s + g < count) {
      const int widened = std::max(pitch, views[s + g].slot_width);
      if ((g + 1) * widened > kVpuLanes) {
        break;
      }
      pitch = widened;
      ++g;
    }
    MpuTileReg tiles[3];
    EsirkMopaGroup<Order>(hw, &views[s], g, pitch, tiles);
    for (int k = 0; k < g; ++k) {
      const WindowView<Order>& v = views[s + k];
      if (kUseAccum && v.slot_width == kW - 1) {
        if (!accum.active) {
          accum.active = true;
          accum.base[0] = v.base[0];
          accum.base[1] = v.base[1];
          accum.base[2] = v.base[2];
          std::fill(std::begin(accum.jx), std::end(accum.jx), 0.0);
          std::fill(std::begin(accum.jy), std::end(accum.jy), 0.0);
          std::fill(std::begin(accum.jz), std::end(accum.jz), 0.0);
          // Zeroing the register block: one vector zero per Vec8 of footprint.
          constexpr int kN = Order + 1;
          ChargeVpuOps(hw, 3 * ((kN * kN * kN + kVpuLanes - 1) / kVpuLanes));
        }
        if (accum.base[0] == v.base[0] && accum.base[1] == v.base[1] &&
            accum.base[2] == v.base[2]) {
          ExtractParticleToAccum<Order>(hw, v, k * pitch, tiles, accum);
          continue;
        }
      }
      ExtractParticle<Order>(hw, v, k * pitch, tiles, tile_j);
    }
    s += g;
  }
  if (kUseAccum && accum.active) {
    FlushAccum<Order>(hw, accum, tile_j);
  }
}

// Sparse-bin fallback: per-particle VPU combine reproducing
// DepositEsirkepovTile's arithmetic (same expressions, same order) so the
// adaptive path stays bitwise identical to the staged scalar kernel.
template <int Order>
void DepositEsirkepovBinVpu(HwContext& hw, const EsirkepovScratch& scratch,
                            const double f[3], const int32_t* pids, int32_t len,
                            TileCurrent& tile_j) {
  constexpr int kW = Order + 2;
  constexpr double k12 = 1.0 / 12.0;
  double* jx = tile_j.jx().data();
  double* jy = tile_j.jy().data();
  double* jz = tile_j.jz().data();
  for (int32_t s = 0; s < len; ++s) {
    const auto i = static_cast<size_t>(pids[s]);
    hw.TouchRead(&scratch.bx[i], sizeof(int32_t));
    hw.TouchRead(&scratch.by[i], sizeof(int32_t));
    hw.TouchRead(&scratch.bz[i], sizeof(int32_t));
    hw.TouchRead(scratch.Win(i),
                 sizeof(double) * static_cast<size_t>(scratch.stride()));
    hw.TouchRead(&scratch.qf[i], sizeof(double));
    hw.TouchRead(&scratch.wide[i], sizeof(uint8_t));

    const double* w = scratch.Win(i);
    const double* dX = w + scratch.OffD(0);
    const double* dY = w + scratch.OffD(1);
    const double* dZ = w + scratch.OffD(2);
    // Full m windows: stored lanes + the reconstructed last lane, exactly as
    // the staged scalar kernel rebuilds them (bitwise-identical fallback).
    const uint8_t wb = scratch.wide[i];
    double mX[kW], mY[kW], mZ[kW];
    double* ms[3] = {mX, mY, mZ};
    for (int axis = 0; axis < 3; ++axis) {
      const double* stored = w + scratch.OffM(axis);
      for (int t = 0; t < kW - 1; ++t) {
        ms[axis][t] = stored[t];
      }
      ms[axis][kW - 1] =
          EsirkepovWideLastM(wb, axis, (w + scratch.OffD(axis))[kW - 1]);
    }
    const double cfx = scratch.qf[i] * f[0];
    const double cfy = scratch.qf[i] * f[1];
    const double cfz = scratch.qf[i] * f[2];
    const int bx = scratch.bx[i];
    const int by = scratch.by[i];
    const int bz = scratch.bz[i];
    hw.ScalarOps(9);

    for (int c = 0; c < kW; ++c) {
      for (int b = 0; b < kW; ++b) {
        const double ty = mY[b] * mZ[c] + k12 * dY[b] * dZ[c];
        double acc = 0.0;
        const int64_t row = tile_j.Index(bx, by + b, bz + c);
        hw.TouchRead(&jx[row], sizeof(double) * (kW - 1));
        ChargeVpuOps(hw, 3);  // plane term + prefix FMA across the run
        for (int a = 0; a < kW - 1; ++a) {
          acc -= dX[a] * ty;
          jx[row + a] += cfx * acc;
        }
        hw.TouchWrite(&jx[row], sizeof(double) * (kW - 1));
      }
    }
    for (int c = 0; c < kW; ++c) {
      for (int a = 0; a < kW; ++a) {
        const double tx = mX[a] * mZ[c] + k12 * dX[a] * dZ[c];
        double acc = 0.0;
        ChargeVpuOps(hw, 3);
        for (int b = 0; b < kW - 1; ++b) {
          acc -= dY[b] * tx;
          const int64_t node = tile_j.Index(bx + a, by + b, bz + c);
          hw.TouchRead(&jy[node], sizeof(double));
          jy[node] += cfy * acc;
          hw.TouchWrite(&jy[node], sizeof(double));
        }
      }
    }
    for (int b = 0; b < kW; ++b) {
      for (int a = 0; a < kW; ++a) {
        const double txy = mX[a] * mY[b] + k12 * dX[a] * dY[b];
        double acc = 0.0;
        ChargeVpuOps(hw, 3);
        for (int c = 0; c < kW - 1; ++c) {
          acc -= dZ[c] * txy;
          const int64_t node = tile_j.Index(bx + a, by + b, bz + c);
          hw.TouchRead(&jz[node], sizeof(double));
          jz[node] += cfz * acc;
          hw.TouchWrite(&jz[node], sizeof(double));
        }
      }
    }
  }
}

}  // namespace

template <int Order>
void DepositEsirkepovMpuTile(HwContext& hw, const ParticleTile& tile,
                             const DepositParams& params,
                             MpuScheduling scheduling, int sparse_fallback_ppc,
                             const EsirkepovScratch& scratch,
                             TileCurrent& tile_j) {
  PhaseScope phase(hw.ledger(), Phase::kCompute);
  MPIC_CHECK_MSG(params.dt > 0.0, "Esirkepov deposition needs the step dt");
  const GridGeometry& g = params.geom;
  const double f[3] = {g.dx / params.dt, g.dy / params.dt, g.dz / params.dt};

  if (scheduling == MpuScheduling::kCellResident) {
    ForEachCellBin(hw, tile, [&](int cell, const int32_t* pids, int32_t len) {
      (void)cell;
      if (len < sparse_fallback_ppc) {
        DepositEsirkepovBinVpu<Order>(hw, scratch, f, pids, len, tile_j);
        return;
      }
      for (int32_t s = 0; s < len; s += kVpuLanes) {
        const int count =
            static_cast<int>(std::min<int32_t>(kVpuLanes, len - s));
        ProcessBatch<Order>(hw, scratch, f, pids + s, count, tile_j);
      }
    });
    return;
  }

  // Pairwise: slot-order traversal, batches of up to kVpuLanes live slots.
  int32_t buf[kVpuLanes];
  int nbuf = 0;
  ForEachParticle(hw, tile, /*sorted=*/false, [&](int32_t pid) {
    buf[nbuf++] = pid;
    if (nbuf == kVpuLanes) {
      ProcessBatch<Order>(hw, scratch, f, buf, nbuf, tile_j);
      nbuf = 0;
    }
  });
  if (nbuf > 0) {
    ProcessBatch<Order>(hw, scratch, f, buf, nbuf, tile_j);
  }
}

template void DepositEsirkepovMpuTile<1>(HwContext&, const ParticleTile&,
                                         const DepositParams&, MpuScheduling,
                                         int, const EsirkepovScratch&,
                                         TileCurrent&);
template void DepositEsirkepovMpuTile<2>(HwContext&, const ParticleTile&,
                                         const DepositParams&, MpuScheduling,
                                         int, const EsirkepovScratch&,
                                         TileCurrent&);
template void DepositEsirkepovMpuTile<3>(HwContext&, const ParticleTile&,
                                         const DepositParams&, MpuScheduling,
                                         int, const EsirkepovScratch&,
                                         TileCurrent&);

}  // namespace mpic

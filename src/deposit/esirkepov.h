// Charge-conserving current deposition after Esirkepov (CPC 135, 2001) — the
// extension the paper lists as future work (Sec. 7).
//
// Direct deposition (the kernels in deposit_*.cc) does not satisfy the
// discrete continuity equation, so PIC codes using it must periodically clean
// divergence errors. Esirkepov's scheme computes J from the *motion* of each
// particle between two positions such that
//
//     (rho_new - rho_old)/dt + div J = 0
//
// holds exactly on the staggered (Yee) mesh, for any shape order. The J
// components land at their Yee locations (Jx at i+1/2 etc.); rho is nodal.
//
// The implementation is the scalar canonical form (charged like the baseline);
// mapping it onto the MPU is an open research direction noted in ROADMAP.md
// ("Esirkepov current deposition"; see also the README's architecture notes).

#ifndef MPIC_SRC_DEPOSIT_ESIRKEPOV_H_
#define MPIC_SRC_DEPOSIT_ESIRKEPOV_H_

#include <vector>

#include "src/deposit/deposit_params.h"
#include "src/grid/field_set.h"
#include "src/hw/hw_context.h"
#include "src/particles/particle_tile.h"

namespace mpic {

struct EsirkepovParams {
  GridGeometry geom;
  double charge = 0.0;
  double dt = 0.0;
};

// Deposits the current of every live particle moving from its old position
// (x_old/y_old/z_old, indexed by pid) to its current SoA position. The
// displacement must satisfy the CFL bound (|delta| < one cell per axis).
// Accumulates into fields.jx/jy/jz at Yee-staggered locations. Charged to
// Phase::kCompute.
template <int Order>
void DepositEsirkepov(HwContext& hw, const ParticleTile& tile,
                      const std::vector<double>& x_old,
                      const std::vector<double>& y_old,
                      const std::vector<double>& z_old,
                      const EsirkepovParams& params, FieldSet& fields);

// Nodal charge density deposition (rho += q*w*S/dV), used by the continuity
// tests and by diagnostics.
template <int Order>
void DepositCharge(HwContext& hw, const ParticleTile& tile,
                   const DepositParams& params, FieldArray& rho);

}  // namespace mpic

#endif  // MPIC_SRC_DEPOSIT_ESIRKEPOV_H_

// Charge-conserving current deposition after Esirkepov (CPC 135, 2001),
// integrated as CurrentScheme::kEsirkepov of the DepositionEngine.
//
// Direct deposition (the kernels in deposit_*.cc) does not satisfy the
// discrete continuity equation, so PIC codes using it must periodically clean
// divergence errors. Esirkepov's scheme computes J from the *motion* of each
// particle between two positions such that
//
//     (rho_new - rho_old)/dt + div J = 0
//
// holds exactly on the staggered (Yee) mesh, for any shape order. The J
// components land at their Yee locations (Jx at i+1/2 etc.); rho is nodal.
//
// The engine path is *staged*, in the spirit of the rhocell pipeline
// (Algorithm 2): StageEsirkepovTile evaluates, once per particle, the
// per-axis weight windows over the union of the old and new shape supports —
// the midpoint weights m = (S_old + S_new)/2 and difference weights
// d = S_new - S_old — into an EsirkepovScratch (keyed MemMap registration,
// Phase::kPreproc, scalar or VPU cost profile matching the variant's
// staging). A combine kernel then forms each transverse plane as the rank-2
// sum outer(m_b, m_c) + (1/12) outer(d_b, d_c) and accumulates the running
// density-decomposition sums into a per-tile Yee-staggered TileCurrent
// scratch (Phase::kCompute). The writes are tile-private, so tiles fan out in
// parallel like the rhocell kernels; ReduceEsirkepovToGrid performs the
// O(tile nodes) scatter-add onto the global J arrays on the engine's
// halo-disjoint colored schedule (Phase::kReduce).
//
// Three combine cost profiles serve the scheme:
//
//  * DepositEsirkepov — the scalar canonical form, scattering straight into
//    the global J arrays. Kept as the reference every staged path is
//    validated against (tests/esirkepov_test.cc).
//  * DepositEsirkepovTile (this header) — the staged scalar/VPU combine used
//    by non-MPU variants, and the value-level reference for the MPU kernel.
//  * DepositEsirkepovMpuTile (esirkepov_mpu.h) — maps each plane's rank-2
//    update onto the 8x8 MPU as two MOPAs per particle-pair per plane, with
//    width-adaptive operand packing and a measured occupancy counter. This is
//    what MPU variants dispatch to, and what makes the charge-conserving
//    scheme cost-competitive with direct deposition (see README for the
//    measured cycle ratios).
//
// Old positions arrive through the ParticleSoA old-position lanes (xo/yo/zo),
// captured by the step pipeline before the push and maintained across
// periodic wrap and cross-tile migration; the displacement must satisfy the
// CFL bound (|delta| < one cell per axis), which the union window of
// Order + 2 nodes per axis encodes.

#ifndef MPIC_SRC_DEPOSIT_ESIRKEPOV_H_
#define MPIC_SRC_DEPOSIT_ESIRKEPOV_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/deposit/deposit_params.h"
#include "src/grid/field_set.h"
#include "src/hw/hw_context.h"
#include "src/particles/particle_tile.h"

namespace mpic {

// How many nodes beyond the tile's cell box the staged Esirkepov deposit can
// write on each side: the window is the union of the old and new supports,
// and after the sort barriers the *new* cell is inside the tile while the old
// position may be up to one cell outside (CFL). Used both to size the
// TileCurrent scratch and to build the halo-disjoint reduction coloring.
inline constexpr int EsirkepovHaloNodes(int order) { return order == 1 ? 1 : 2; }

// Per-tile Yee-staggered J accumulation scratch: the tile's node box extended
// by EsirkepovHaloNodes on every side, one array per component, indexed by
// global node index. Zeroed after every reduction (like the rhocell blocks).
class TileCurrent {
 public:
  void Resize(const ParticleTile& tile, int order) {
    const int halo = EsirkepovHaloNodes(order);
    ox_ = tile.lo_x() - halo;
    oy_ = tile.lo_y() - halo;
    oz_ = tile.lo_z() - halo;
    nx_ = tile.nx() + 1 + 2 * halo;
    ny_ = tile.ny() + 1 + 2 * halo;
    nz_ = tile.nz() + 1 + 2 * halo;
    const size_t n =
        static_cast<size_t>(nx_) * static_cast<size_t>(ny_) * static_cast<size_t>(nz_);
    jx_.assign(n, 0.0);
    jy_.assign(n, 0.0);
    jz_.assign(n, 0.0);
  }

  bool empty() const { return jx_.empty(); }
  // Node extents / low corner, in global node indices.
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  int ox() const { return ox_; }
  int oy() const { return oy_; }
  int oz() const { return oz_; }

  // Linear index of global node (gx, gy, gz); x fastest, like FieldArray.
  int64_t Index(int gx, int gy, int gz) const {
    MPIC_DCHECK(gx >= ox_ && gx < ox_ + nx_);
    MPIC_DCHECK(gy >= oy_ && gy < oy_ + ny_);
    MPIC_DCHECK(gz >= oz_ && gz < oz_ + nz_);
    return (gx - ox_) +
           static_cast<int64_t>(nx_) *
               ((gy - oy_) + static_cast<int64_t>(ny_) * (gz - oz_));
  }

  std::vector<double>& jx() { return jx_; }
  std::vector<double>& jy() { return jy_; }
  std::vector<double>& jz() { return jz_; }
  const std::vector<double>& jx() const { return jx_; }
  const std::vector<double>& jy() const { return jy_; }
  const std::vector<double>& jz() const { return jz_; }

 private:
  int ox_ = 0, oy_ = 0, oz_ = 0;
  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<double> jx_, jy_, jz_;
};

// Staged per-particle quantities of the Esirkepov decomposition, indexed by
// tile-local pid like DepositScratch. Per axis the window holds the midpoint
// weights m[t] = (S_old[t] + S_new[t]) / 2 and the difference weights
// d[t] = S_new[t] - S_old[t] over the union support of Order + 2 nodes.
//
// The last m lane is never stored: on a narrow axis it is zero, and on a wide
// axis exactly one of the two supports covers the last union node, so
// m[W-1] = 0.5 * s1[W-1] = +d[W-1]/2 when the particle crossed forward and
// m[W-1] = 0.5 * s0[W-1] = -d[W-1]/2 when it crossed backward. Combine
// kernels reconstruct it from d and the direction bit via
// EsirkepovWideLastM — bit-exactly, since the staged value was the same
// product (0.5 * the single live support weight) and IEEE negation is exact.
//
// Layout: one packed block of 3 * (2 * (Order + 2) - 1) doubles per particle
// — [mx | dx | my | dy | mz | dz] with each m window one lane short — plus
// window bases, charge factor, and width/direction flags in side arrays. The
// packed block keeps staging stores and combine loads down to a handful of
// sequential streams (inside the stride prefetcher's stream budget, which the
// previous one-array-per-lane layout blew past at order 3), and doubles as
// the Vec8 operand layout for the MPU kernel: each axis window is one
// unaligned vector load.
struct EsirkepovScratch {
  static constexpr int kMaxWindow = 5;  // Order + 2 at order 3

  // Union-window width (Order + 2) the blocks are strided for.
  int window = 0;
  int stride() const { return 3 * (2 * window - 1); }

  double* Win(size_t pid) {
    return win.data() + static_cast<size_t>(stride()) * pid;
  }
  const double* Win(size_t pid) const {
    return win.data() + static_cast<size_t>(stride()) * pid;
  }
  // Offsets of the m/d windows of `axis` (0=x, 1=y, 2=z) inside a block. The
  // m window carries window - 1 stored lanes, d the full width.
  int OffM(int axis) const { return axis * (2 * window - 1); }
  int OffD(int axis) const { return OffM(axis) + window - 1; }

  void Resize(size_t n_slots, int order) {
    window = order + 2;
    win.resize(n_slots * static_cast<size_t>(stride()));
    bx.resize(n_slots);
    by.resize(n_slots);
    bz.resize(n_slots);
    qf.resize(n_slots);
    wide.resize(n_slots);
  }

  // Lowest node index of the union window per axis (global nodes).
  std::vector<int32_t> bx, by, bz;
  // Packed m/d blocks; Win(pid)[OffM(0) + t] pairs with node bx[pid] + t.
  std::vector<double> win;
  // Per-particle charge factor q * w / cell_volume.
  std::vector<double> qf;
  // Bit `axis` (0..2) set when the particle crossed a cell boundary on that
  // axis, i.e. its union window really is Order + 2 nodes wide. Unset means
  // the effective width is Order + 1 and the last lane of m and d is exactly
  // zero — the width-adaptive MPU kernel packs and extracts only live lanes
  // (at thermal drift almost all particles are narrow on every axis). Bit
  // 3 + axis is the crossing *direction*: set when the particle crossed
  // backward (new support below the old one), clear for forward. Direction
  // bits are only ever set alongside their width bit, so `wide == 0` still
  // reads as "narrow on every axis".
  std::vector<uint8_t> wide;
};

// Reconstructs the unstored last m lane of `axis` from the last d lane and
// the width/direction bits (see EsirkepovScratch): zero when narrow,
// +d_last/2 on a forward crossing, -d_last/2 on a backward one. Every
// combine kernel (staged scalar, sparse VPU fallback, MPU packing) must use
// this one helper so the reconstructed values stay mutually bit-identical.
inline double EsirkepovWideLastM(uint8_t wide_bits, int axis, double d_last) {
  if (((wide_bits >> axis) & 1) == 0) return 0.0;
  return ((wide_bits >> (3 + axis)) & 1) != 0 ? -0.5 * d_last : 0.5 * d_last;
}

// Stage 1: per-axis weight windows + charge factor for every live particle,
// from the SoA old-position lanes and current positions. `vpu_staging`
// selects the batched VPU cost profile (values are identical either way),
// mirroring StageTileScalar / StageTileVpu. Charged to Phase::kPreproc.
template <int Order>
void StageEsirkepovTile(HwContext& hw, const ParticleTile& tile,
                        const DepositParams& params, bool vpu_staging,
                        EsirkepovScratch& scratch);

// Stage 2: combines the staged axis windows by outer product into the
// density-decomposition stencil and accumulates the running sums into the
// tile-private TileCurrent at Yee-staggered locations. `sorted` iterates
// cell-by-cell through the GPMA bins (sorting variants); otherwise slot
// order. Charged to Phase::kCompute. params.dt must be the step dt.
template <int Order>
void DepositEsirkepovTile(HwContext& hw, const ParticleTile& tile,
                          const DepositParams& params, bool sorted,
                          const EsirkepovScratch& scratch, TileCurrent& tile_j);

// Scatter-adds the tile scratch onto fields.jx/jy/jz (row-contiguous vector
// adds) and zeroes it. Tiles of one reduce-coloring class have disjoint node
// footprints and may run concurrently. Charged to Phase::kReduce.
void ReduceEsirkepovToGrid(HwContext& hw, TileCurrent& tile_j, FieldSet& fields);

// Registers the scratch arrays and the tile scratch with the hardware model's
// address space under stable keys (streams key_base..key_base+8; the engine
// passes MemRegionKey(owner, tile, 32) so these follow the 0..31 block of
// RegisterStagingRegions). Call whenever the arrays may have moved.
void RegisterEsirkepovRegions(HwContext& hw, uint64_t key_base,
                              const EsirkepovScratch& scratch,
                              const TileCurrent& tile_j);

// Reference implementation: deposits the current of every live particle
// moving from its old position (x_old/y_old/z_old, indexed by pid) to its
// current SoA position, scattering straight into fields.jx/jy/jz. The staged
// engine path above is validated against it. Charged to Phase::kCompute.
template <int Order>
void DepositEsirkepov(HwContext& hw, const ParticleTile& tile,
                      const std::vector<double>& x_old,
                      const std::vector<double>& y_old,
                      const std::vector<double>& z_old,
                      const DepositParams& params, FieldSet& fields);

// Nodal charge density deposition (rho += q*w*S/dV), used by the continuity
// tests and by diagnostics.
template <int Order>
void DepositCharge(HwContext& hw, const ParticleTile& tile,
                   const DepositParams& params, FieldArray& rho);

}  // namespace mpic

#endif  // MPIC_SRC_DEPOSIT_ESIRKEPOV_H_

#include "src/deposit/esirkepov.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/shape/shape_function.h"

namespace mpic {
namespace {

// Evaluates old/new 1D shape weights on a common index window wide enough for
// both supports (Order+2 points suffices under the CFL bound of one cell).
template <int Order>
struct AxisPair {
  static constexpr int kWindow = Order + 2;
  int base = 0;               // lowest node index of the window
  double s0[Order + 2] = {};  // weights at the old position
  double s1[Order + 2] = {};  // weights at the new position
  double ds[Order + 2] = {};  // s1 - s0

  void Eval(double g_old, double g_new) {
    int start0, start1;
    double w0[4], w1[4];
    ShapeFunction<Order>::Weights(g_old, &start0, w0);
    ShapeFunction<Order>::Weights(g_new, &start1, w1);
    MPIC_DCHECK(std::abs(start1 - start0) <= 1);
    base = std::min(start0, start1);
    for (int t = 0; t < kWindow; ++t) {
      s0[t] = 0.0;
      s1[t] = 0.0;
    }
    for (int t = 0; t <= Order; ++t) {
      s0[start0 - base + t] = w0[t];
      s1[start1 - base + t] = w1[t];
    }
    for (int t = 0; t < kWindow; ++t) {
      ds[t] = s1[t] - s0[t];
    }
  }
};

}  // namespace

template <int Order>
void DepositEsirkepov(HwContext& hw, const ParticleTile& tile,
                      const std::vector<double>& x_old,
                      const std::vector<double>& y_old,
                      const std::vector<double>& z_old,
                      const EsirkepovParams& params, FieldSet& fields) {
  PhaseScope phase(hw.ledger(), Phase::kCompute);
  constexpr int kW = Order + 2;
  const GridGeometry& g = params.geom;
  const double inv_vol = 1.0 / (g.dx * g.dy * g.dz);
  const ParticleSoA& soa = tile.soa();

  for (size_t i = 0; i < soa.size(); ++i) {
    if (!tile.IsLive(static_cast<int32_t>(i))) {
      hw.ScalarOps(1);
      continue;
    }
    hw.TouchRead(&soa.x[i], sizeof(double) * 1);
    hw.TouchRead(&soa.y[i], sizeof(double) * 1);
    hw.TouchRead(&soa.z[i], sizeof(double) * 1);
    hw.TouchRead(&x_old[i], sizeof(double) * 1);
    hw.TouchRead(&y_old[i], sizeof(double) * 1);
    hw.TouchRead(&z_old[i], sizeof(double) * 1);
    hw.TouchRead(&soa.w[i], sizeof(double) * 1);

    AxisPair<Order> ax, ay, az;
    ax.Eval(g.GridX(x_old[i]), g.GridX(soa.x[i]));
    ay.Eval(g.GridY(y_old[i]), g.GridY(soa.y[i]));
    az.Eval(g.GridZ(z_old[i]), g.GridZ(soa.z[i]));
    hw.ScalarOps(6 * (Order == 1 ? 4 : (Order == 2 ? 8 : 12)) + 3 * kW);

    const double qw = params.charge * soa.w[i] * inv_vol;
    const double fx = qw * g.dx / params.dt;
    const double fy = qw * g.dy / params.dt;
    const double fz = qw * g.dz / params.dt;
    hw.ScalarOps(6);

    // Esirkepov decomposition weights (Esirkepov 2001, Eq. 38): per axis the
    // transverse factor mixes old shapes and shape differences.
    for (int c = 0; c < kW; ++c) {
      for (int b = 0; b < kW; ++b) {
        // Jx: cumulative sum of Wx over the x window.
        const double ty = ay.s0[b] * az.s0[c] + 0.5 * ay.ds[b] * az.s0[c] +
                          0.5 * ay.s0[b] * az.ds[c] +
                          (1.0 / 3.0) * ay.ds[b] * az.ds[c];
        double accx = 0.0;
        for (int a = 0; a < kW - 1; ++a) {
          accx -= ax.ds[a] * ty;
          const int64_t node =
              fields.jx.Index(ax.base + a, ay.base + b, az.base + c);
          hw.ScalarOps(4);
          hw.AccumScalar(&fields.jx.data()[node], fx * accx);
        }
      }
    }
    // Jy and Jz mirror the Jx structure with permuted axes.
    for (int c = 0; c < kW; ++c) {
      for (int a = 0; a < kW; ++a) {
        const double tx = ax.s0[a] * az.s0[c] + 0.5 * ax.ds[a] * az.s0[c] +
                          0.5 * ax.s0[a] * az.ds[c] +
                          (1.0 / 3.0) * ax.ds[a] * az.ds[c];
        double accy = 0.0;
        for (int b = 0; b < kW - 1; ++b) {
          accy -= ay.ds[b] * tx;
          const int64_t node =
              fields.jy.Index(ax.base + a, ay.base + b, az.base + c);
          hw.ScalarOps(4);
          hw.AccumScalar(&fields.jy.data()[node], fy * accy);
        }
      }
    }
    for (int b = 0; b < kW; ++b) {
      for (int a = 0; a < kW; ++a) {
        const double txy = ax.s0[a] * ay.s0[b] + 0.5 * ax.ds[a] * ay.s0[b] +
                           0.5 * ax.s0[a] * ay.ds[b] +
                           (1.0 / 3.0) * ax.ds[a] * ay.ds[b];
        double accz = 0.0;
        for (int c = 0; c < kW - 1; ++c) {
          accz -= az.ds[c] * txy;
          const int64_t node =
              fields.jz.Index(ax.base + a, ay.base + b, az.base + c);
          hw.ScalarOps(4);
          hw.AccumScalar(&fields.jz.data()[node], fz * accz);
        }
      }
    }
  }
}

template <int Order>
void DepositCharge(HwContext& hw, const ParticleTile& tile,
                   const DepositParams& params, FieldArray& rho) {
  PhaseScope phase(hw.ledger(), Phase::kCompute);
  constexpr int kSupport = Order + 1;
  const GridGeometry& g = params.geom;
  const double inv_vol = params.InvCellVolume();
  const ParticleSoA& soa = tile.soa();
  for (size_t i = 0; i < soa.size(); ++i) {
    if (!tile.IsLive(static_cast<int32_t>(i))) {
      hw.ScalarOps(1);
      continue;
    }
    hw.TouchRead(&soa.x[i], sizeof(double) * 3);
    hw.TouchRead(&soa.w[i], sizeof(double));
    int sx0, sy0, sz0;
    double wx[4], wy[4], wz[4];
    ShapeFunction<Order>::Weights(g.GridX(soa.x[i]), &sx0, wx);
    ShapeFunction<Order>::Weights(g.GridY(soa.y[i]), &sy0, wy);
    ShapeFunction<Order>::Weights(g.GridZ(soa.z[i]), &sz0, wz);
    const double qw = params.charge * soa.w[i] * inv_vol;
    hw.ScalarOps(20);
    for (int c = 0; c < kSupport; ++c) {
      for (int b = 0; b < kSupport; ++b) {
        const double wyz = wy[b] * wz[c];
        for (int a = 0; a < kSupport; ++a) {
          const int64_t node = rho.Index(sx0 + a, sy0 + b, sz0 + c);
          hw.ScalarOps(2);
          hw.AccumScalar(&rho.data()[node], qw * wx[a] * wyz);
        }
      }
    }
  }
}

template void DepositEsirkepov<1>(HwContext&, const ParticleTile&,
                                  const std::vector<double>&,
                                  const std::vector<double>&,
                                  const std::vector<double>&,
                                  const EsirkepovParams&, FieldSet&);
template void DepositEsirkepov<2>(HwContext&, const ParticleTile&,
                                  const std::vector<double>&,
                                  const std::vector<double>&,
                                  const std::vector<double>&,
                                  const EsirkepovParams&, FieldSet&);
template void DepositEsirkepov<3>(HwContext&, const ParticleTile&,
                                  const std::vector<double>&,
                                  const std::vector<double>&,
                                  const std::vector<double>&,
                                  const EsirkepovParams&, FieldSet&);
template void DepositCharge<1>(HwContext&, const ParticleTile&, const DepositParams&,
                               FieldArray&);
template void DepositCharge<2>(HwContext&, const ParticleTile&, const DepositParams&,
                               FieldArray&);
template void DepositCharge<3>(HwContext&, const ParticleTile&, const DepositParams&,
                               FieldArray&);

}  // namespace mpic

#include "src/deposit/esirkepov.h"

#include <algorithm>
#include <cmath>

#include "src/deposit/particle_iteration.h"
#include "src/shape/shape_function.h"

namespace mpic {
namespace {

// Evaluates old/new 1D shape weights on a common index window wide enough for
// both supports (Order+2 points suffices under the CFL bound of one cell).
template <int Order>
struct AxisPair {
  static constexpr int kWindow = Order + 2;
  int base = 0;               // lowest node index of the window
  bool wide = false;          // true iff the supports are offset (cell crossing)
  bool backward = false;      // wide with the new support below the old one
  double s0[Order + 2] = {};  // weights at the old position
  double s1[Order + 2] = {};  // weights at the new position
  double ds[Order + 2] = {};  // s1 - s0

  void Eval(double g_old, double g_new) {
    int start0, start1;
    double w0[4], w1[4];
    ShapeFunction<Order>::Weights(g_old, &start0, w0);
    ShapeFunction<Order>::Weights(g_new, &start1, w1);
    MPIC_DCHECK(std::abs(start1 - start0) <= 1);
    base = std::min(start0, start1);
    wide = start0 != start1;
    backward = start1 < start0;
    for (int t = 0; t < kWindow; ++t) {
      s0[t] = 0.0;
      s1[t] = 0.0;
    }
    for (int t = 0; t <= Order; ++t) {
      s0[start0 - base + t] = w0[t];
      s1[start1 - base + t] = w1[t];
    }
    for (int t = 0; t < kWindow; ++t) {
      ds[t] = s1[t] - s0[t];
    }
  }
};

// The staged form of the same window: midpoint weights m = (s0+s1)/2 and
// difference weights d = s1-s0. The transverse factor of the Esirkepov
// decomposition (Eq. 38) then becomes the rank-2 outer-product sum
//   T[b][c] = m_b * m_c + (1/12) * d_b * d_c,
// algebraically identical to the s0/ds mixing the reference kernel uses.
template <int Order>
struct AxisWindow {
  static constexpr int kWindow = Order + 2;
  int base = 0;
  bool wide = false;
  bool backward = false;
  double m[Order + 2];
  double d[Order + 2];

  void Eval(double g_old, double g_new) {
    AxisPair<Order> pair;
    pair.Eval(g_old, g_new);
    base = pair.base;
    wide = pair.wide;
    backward = pair.backward;
    for (int t = 0; t < kWindow; ++t) {
      m[t] = 0.5 * (pair.s0[t] + pair.s1[t]);
      d[t] = pair.ds[t];
    }
  }
};

// ALU estimates for one particle's Esirkepov staging: two position->grid
// conversions, two shape evaluations, and the m/d combine per axis.
template <int Order>
constexpr int ScalarEsirkepovStagingOps() {
  constexpr int kIndexOps = 18;  // gx and floor per axis, old + new
  constexpr int kShapeOps = 2 * (Order == 1 ? 3 : (Order == 2 ? 15 : 27));
  // m and d per window lane, minus the three never-staged last m lanes
  // (reconstructed at combine from d and the direction bit).
  constexpr int kCombineOps = 6 * (Order + 2) - 3;
  return kIndexOps + kShapeOps + kCombineOps + 2;  // + charge factor
}

template <int Order>
constexpr int VpuEsirkepovStagingOps() {
  constexpr int kIndexOps = 24;
  constexpr int kShapeOps = 2 * (Order == 1 ? 3 : (Order == 2 ? 12 : 21));
  constexpr int kCombineOps = 3 * (Order + 2);  // fused m/d vector combine
  return kIndexOps + kShapeOps + kCombineOps + 2;
}

template <int Order>
void StageOneEsirkepov(const ParticleSoA& soa, size_t i, const DepositParams& params,
                       EsirkepovScratch& scratch) {
  constexpr int kW = Order + 2;
  const GridGeometry& g = params.geom;
  AxisWindow<Order> ax, ay, az;
  ax.Eval(g.GridX(soa.xo[i]), g.GridX(soa.x[i]));
  ay.Eval(g.GridY(soa.yo[i]), g.GridY(soa.y[i]));
  az.Eval(g.GridZ(soa.zo[i]), g.GridZ(soa.z[i]));
  scratch.bx[i] = static_cast<int32_t>(ax.base);
  scratch.by[i] = static_cast<int32_t>(ay.base);
  scratch.bz[i] = static_cast<int32_t>(az.base);
  double* w = scratch.Win(i);
  const AxisWindow<Order>* axes[3] = {&ax, &ay, &az};
  for (int axis = 0; axis < 3; ++axis) {
    double* m = w + scratch.OffM(axis);
    double* d = w + scratch.OffD(axis);
    for (int t = 0; t < kW - 1; ++t) {
      m[t] = axes[axis]->m[t];
    }
    for (int t = 0; t < kW; ++t) {
      d[t] = axes[axis]->d[t];
    }
    // The dropped lane really is what EsirkepovWideLastM will reconstruct.
    MPIC_DCHECK(axes[axis]->m[kW - 1] ==
                (axes[axis]->wide
                     ? (axes[axis]->backward ? -0.5 : 0.5) * axes[axis]->d[kW - 1]
                     : 0.0));
  }
  scratch.qf[i] = params.charge * soa.w[i] * params.InvCellVolume();
  scratch.wide[i] = static_cast<uint8_t>(
      (ax.wide ? 1 : 0) | (ay.wide ? 2 : 0) | (az.wide ? 4 : 0) |
      (ax.backward ? 8 : 0) | (ay.backward ? 16 : 0) | (az.backward ? 32 : 0));
}

}  // namespace

template <int Order>
void StageEsirkepovTile(HwContext& hw, const ParticleTile& tile,
                        const DepositParams& params, bool vpu_staging,
                        EsirkepovScratch& scratch) {
  PhaseScope phase(hw.ledger(), Phase::kPreproc);
  const ParticleSoA& soa = tile.soa();
  scratch.Resize(soa.size(), Order);
  const size_t n = soa.size();
  if (!vpu_staging) {
    for (size_t i = 0; i < n; ++i) {
      if (!tile.IsLive(static_cast<int32_t>(i))) {
        hw.ScalarOps(1);  // validity test
        continue;
      }
      // Loads: x, y, z and the old-position lanes, plus the weight.
      hw.TouchRead(&soa.x[i], sizeof(double));
      hw.TouchRead(&soa.y[i], sizeof(double));
      hw.TouchRead(&soa.z[i], sizeof(double));
      hw.TouchRead(&soa.xo[i], sizeof(double));
      hw.TouchRead(&soa.yo[i], sizeof(double));
      hw.TouchRead(&soa.zo[i], sizeof(double));
      hw.TouchRead(&soa.w[i], sizeof(double));
      hw.ScalarOps(ScalarEsirkepovStagingOps<Order>());
      StageOneEsirkepov<Order>(soa, i, params, scratch);
      // One contiguous block store plus the small side streams.
      hw.TouchWrite(&scratch.bx[i], sizeof(int32_t) * 3);
      hw.TouchWrite(scratch.Win(i),
                    sizeof(double) * static_cast<size_t>(scratch.stride()));
      hw.TouchWrite(&scratch.qf[i], sizeof(double));
      hw.TouchWrite(&scratch.wide[i], sizeof(uint8_t));
    }
    return;
  }
  for (size_t base = 0; base < n; base += kVpuLanes) {
    const size_t batch = std::min(n - base, static_cast<size_t>(kVpuLanes));
    // Vector loads of the seven consumed SoA streams (contiguous slot order).
    for (const auto* stream :
         {&soa.x, &soa.y, &soa.z, &soa.xo, &soa.yo, &soa.zo, &soa.w}) {
      hw.TouchRead(stream->data() + base, sizeof(double) * batch);
      hw.ledger().counters().vpu_mem += 1;
    }
    hw.ledger().counters().vpu_ops +=
        static_cast<uint64_t>(VpuEsirkepovStagingOps<Order>());
    hw.ChargeCycles(VpuEsirkepovStagingOps<Order>() /
                    static_cast<double>(hw.cfg().vpu_pipes));
    // Real arithmetic (values must be exact; compute per live lane).
    for (size_t i = base; i < base + batch; ++i) {
      if (tile.IsLive(static_cast<int32_t>(i))) {
        StageOneEsirkepov<Order>(soa, i, params, scratch);
      }
    }
    // Vector stores of the staged streams: the packed window blocks go out as
    // one contiguous run of vector stores, the side streams as one store each.
    hw.TouchWrite(&scratch.bx[base], sizeof(int32_t) * batch);
    hw.TouchWrite(&scratch.by[base], sizeof(int32_t) * batch);
    hw.TouchWrite(&scratch.bz[base], sizeof(int32_t) * batch);
    hw.TouchWrite(scratch.Win(base),
                  sizeof(double) * static_cast<size_t>(scratch.stride()) * batch);
    hw.TouchWrite(&scratch.qf[base], sizeof(double) * batch);
    hw.TouchWrite(&scratch.wide[base], sizeof(uint8_t) * batch);
    const auto block_stores = static_cast<uint64_t>(
        (static_cast<size_t>(scratch.stride()) * batch + kVpuLanes - 1) / kVpuLanes);
    hw.ledger().counters().vpu_mem += block_stores + 5;
  }
}

template <int Order>
void DepositEsirkepovTile(HwContext& hw, const ParticleTile& tile,
                          const DepositParams& params, bool sorted,
                          const EsirkepovScratch& scratch, TileCurrent& tile_j) {
  PhaseScope phase(hw.ledger(), Phase::kCompute);
  MPIC_CHECK_MSG(params.dt > 0.0, "Esirkepov deposition needs the step dt");
  constexpr int kW = Order + 2;
  constexpr double k12 = 1.0 / 12.0;
  const GridGeometry& g = params.geom;
  const double fx = g.dx / params.dt;
  const double fy = g.dy / params.dt;
  const double fz = g.dz / params.dt;
  double* jx = tile_j.jx().data();
  double* jy = tile_j.jy().data();
  double* jz = tile_j.jz().data();

  ForEachParticle(hw, tile, sorted, [&](int32_t pid) {
    const auto i = static_cast<size_t>(pid);
    hw.TouchRead(&scratch.bx[i], sizeof(int32_t));
    hw.TouchRead(&scratch.by[i], sizeof(int32_t));
    hw.TouchRead(&scratch.bz[i], sizeof(int32_t));
    hw.TouchRead(scratch.Win(i),
                 sizeof(double) * static_cast<size_t>(scratch.stride()));
    hw.TouchRead(&scratch.qf[i], sizeof(double));
    hw.TouchRead(&scratch.wide[i], sizeof(uint8_t));

    const double* w = scratch.Win(i);
    const double* dX = w + scratch.OffD(0);
    const double* dY = w + scratch.OffD(1);
    const double* dZ = w + scratch.OffD(2);
    // Rebuild the full m windows: the stored kW - 1 lanes plus the
    // reconstructed last lane (zero / +-d_last/2, see EsirkepovWideLastM).
    const uint8_t wb = scratch.wide[i];
    double mX[kW], mY[kW], mZ[kW];
    double* ms[3] = {mX, mY, mZ};
    for (int axis = 0; axis < 3; ++axis) {
      const double* stored = w + scratch.OffM(axis);
      for (int t = 0; t < kW - 1; ++t) {
        ms[axis][t] = stored[t];
      }
      ms[axis][kW - 1] =
          EsirkepovWideLastM(wb, axis, (w + scratch.OffD(axis))[kW - 1]);
    }

    const double cfx = scratch.qf[i] * fx;
    const double cfy = scratch.qf[i] * fy;
    const double cfz = scratch.qf[i] * fz;
    const int bx = scratch.bx[i];
    const int by = scratch.by[i];
    const int bz = scratch.bz[i];
    hw.ScalarOps(9);  // cf scales + the three m-lane reconstructions

    // Jx: transverse plane T_yz = outer(my, mz) + (1/12) outer(dy, dz), then
    // the cumulative sum of -dx[a] * T along x lands at the Yee face a+1/2.
    for (int c = 0; c < kW; ++c) {
      for (int b = 0; b < kW; ++b) {
        const double ty = mY[b] * mZ[c] + k12 * dY[b] * dZ[c];
        hw.ScalarOps(3);
        double acc = 0.0;
        const int64_t row = tile_j.Index(bx, by + b, bz + c);
        for (int a = 0; a < kW - 1; ++a) {
          acc -= dX[a] * ty;
          hw.ScalarOps(2);
          hw.AccumScalar(&jx[row + a], cfx * acc);
        }
      }
    }
    // Jy and Jz mirror the Jx structure with permuted axes.
    for (int c = 0; c < kW; ++c) {
      for (int a = 0; a < kW; ++a) {
        const double tx = mX[a] * mZ[c] + k12 * dX[a] * dZ[c];
        hw.ScalarOps(3);
        double acc = 0.0;
        for (int b = 0; b < kW - 1; ++b) {
          acc -= dY[b] * tx;
          hw.ScalarOps(2);
          hw.AccumScalar(&jy[tile_j.Index(bx + a, by + b, bz + c)], cfy * acc);
        }
      }
    }
    for (int b = 0; b < kW; ++b) {
      for (int a = 0; a < kW; ++a) {
        const double txy = mX[a] * mY[b] + k12 * dX[a] * dY[b];
        hw.ScalarOps(3);
        double acc = 0.0;
        for (int c = 0; c < kW - 1; ++c) {
          acc -= dZ[c] * txy;
          hw.ScalarOps(2);
          hw.AccumScalar(&jz[tile_j.Index(bx + a, by + b, bz + c)], cfz * acc);
        }
      }
    }
  });
}

void ReduceEsirkepovToGrid(HwContext& hw, TileCurrent& tile_j, FieldSet& fields) {
  if (tile_j.empty()) {
    return;
  }
  PhaseScope phase(hw.ledger(), Phase::kReduce);
  FieldArray* comps[3] = {&fields.jx, &fields.jy, &fields.jz};
  std::vector<double>* scratch[3] = {&tile_j.jx(), &tile_j.jy(), &tile_j.jz()};
  const int nx = tile_j.nx();
  const int ny = tile_j.ny();
  const int nz = tile_j.nz();
  const int rows8 = (nx + kVpuLanes - 1) / kVpuLanes;
  for (int comp = 0; comp < 3; ++comp) {
    FieldArray& f = *comps[comp];
    std::vector<double>& src = *scratch[comp];
    for (int k = 0; k < nz; ++k) {
      for (int j = 0; j < ny; ++j) {
        // Both rows are x-contiguous: a clean vector load + add + store.
        double* srow =
            src.data() + static_cast<size_t>(nx) *
                             (static_cast<size_t>(j) + static_cast<size_t>(ny) * k);
        double* drow =
            &f.data()[f.Index(tile_j.ox(), tile_j.oy() + j, tile_j.oz() + k)];
        hw.TouchRead(srow, sizeof(double) * static_cast<size_t>(nx));
        hw.TouchRead(drow, sizeof(double) * static_cast<size_t>(nx));
        for (int i = 0; i < nx; ++i) {
          drow[i] += srow[i];
        }
        hw.TouchWrite(drow, sizeof(double) * static_cast<size_t>(nx));
        hw.ledger().counters().vpu_ops += static_cast<uint64_t>(2 * rows8);
        hw.ChargeCycles(2.0 * rows8 / static_cast<double>(hw.cfg().vpu_pipes));
      }
    }
    std::fill(src.begin(), src.end(), 0.0);
    // Streaming re-zero of the scratch component.
    hw.ChargeBulk(0.0, static_cast<double>(src.size()) * 8.0);
  }
}

void RegisterEsirkepovRegions(HwContext& hw, uint64_t key_base,
                              const EsirkepovScratch& scratch,
                              const TileCurrent& tile_j) {
  uint64_t key = key_base;
  auto reg = [&hw, &key](const auto& v) {
    const uint64_t k = key++;
    if (!v.empty()) {
      hw.RegisterRegionKeyed(k, v.data(), v.size() * sizeof(v[0]));
    }
  };
  reg(scratch.bx);
  reg(scratch.by);
  reg(scratch.bz);
  reg(scratch.win);
  reg(scratch.qf);
  reg(scratch.wide);
  reg(tile_j.jx());
  reg(tile_j.jy());
  reg(tile_j.jz());
}

template <int Order>
void DepositEsirkepov(HwContext& hw, const ParticleTile& tile,
                      const std::vector<double>& x_old,
                      const std::vector<double>& y_old,
                      const std::vector<double>& z_old,
                      const DepositParams& params, FieldSet& fields) {
  PhaseScope phase(hw.ledger(), Phase::kCompute);
  MPIC_CHECK_MSG(params.dt > 0.0, "Esirkepov deposition needs the step dt");
  constexpr int kW = Order + 2;
  const GridGeometry& g = params.geom;
  const double inv_vol = params.InvCellVolume();
  const ParticleSoA& soa = tile.soa();

  for (size_t i = 0; i < soa.size(); ++i) {
    if (!tile.IsLive(static_cast<int32_t>(i))) {
      hw.ScalarOps(1);
      continue;
    }
    hw.TouchRead(&soa.x[i], sizeof(double) * 1);
    hw.TouchRead(&soa.y[i], sizeof(double) * 1);
    hw.TouchRead(&soa.z[i], sizeof(double) * 1);
    hw.TouchRead(&x_old[i], sizeof(double) * 1);
    hw.TouchRead(&y_old[i], sizeof(double) * 1);
    hw.TouchRead(&z_old[i], sizeof(double) * 1);
    hw.TouchRead(&soa.w[i], sizeof(double) * 1);

    AxisPair<Order> ax, ay, az;
    ax.Eval(g.GridX(x_old[i]), g.GridX(soa.x[i]));
    ay.Eval(g.GridY(y_old[i]), g.GridY(soa.y[i]));
    az.Eval(g.GridZ(z_old[i]), g.GridZ(soa.z[i]));
    hw.ScalarOps(6 * (Order == 1 ? 4 : (Order == 2 ? 8 : 12)) + 3 * kW);

    const double qw = params.charge * soa.w[i] * inv_vol;
    const double fx = qw * g.dx / params.dt;
    const double fy = qw * g.dy / params.dt;
    const double fz = qw * g.dz / params.dt;
    hw.ScalarOps(6);

    // Esirkepov decomposition weights (Esirkepov 2001, Eq. 38): per axis the
    // transverse factor mixes old shapes and shape differences.
    for (int c = 0; c < kW; ++c) {
      for (int b = 0; b < kW; ++b) {
        // Jx: cumulative sum of Wx over the x window.
        const double ty = ay.s0[b] * az.s0[c] + 0.5 * ay.ds[b] * az.s0[c] +
                          0.5 * ay.s0[b] * az.ds[c] +
                          (1.0 / 3.0) * ay.ds[b] * az.ds[c];
        double accx = 0.0;
        for (int a = 0; a < kW - 1; ++a) {
          accx -= ax.ds[a] * ty;
          const int64_t node =
              fields.jx.Index(ax.base + a, ay.base + b, az.base + c);
          hw.ScalarOps(4);
          hw.AccumScalar(&fields.jx.data()[node], fx * accx);
        }
      }
    }
    // Jy and Jz mirror the Jx structure with permuted axes.
    for (int c = 0; c < kW; ++c) {
      for (int a = 0; a < kW; ++a) {
        const double tx = ax.s0[a] * az.s0[c] + 0.5 * ax.ds[a] * az.s0[c] +
                          0.5 * ax.s0[a] * az.ds[c] +
                          (1.0 / 3.0) * ax.ds[a] * az.ds[c];
        double accy = 0.0;
        for (int b = 0; b < kW - 1; ++b) {
          accy -= ay.ds[b] * tx;
          const int64_t node =
              fields.jy.Index(ax.base + a, ay.base + b, az.base + c);
          hw.ScalarOps(4);
          hw.AccumScalar(&fields.jy.data()[node], fy * accy);
        }
      }
    }
    for (int b = 0; b < kW; ++b) {
      for (int a = 0; a < kW; ++a) {
        const double txy = ax.s0[a] * ay.s0[b] + 0.5 * ax.ds[a] * ay.s0[b] +
                           0.5 * ax.s0[a] * ay.ds[b] +
                           (1.0 / 3.0) * ax.ds[a] * ay.ds[b];
        double accz = 0.0;
        for (int c = 0; c < kW - 1; ++c) {
          accz -= az.ds[c] * txy;
          const int64_t node =
              fields.jz.Index(ax.base + a, ay.base + b, az.base + c);
          hw.ScalarOps(4);
          hw.AccumScalar(&fields.jz.data()[node], fz * accz);
        }
      }
    }
  }
}

template <int Order>
void DepositCharge(HwContext& hw, const ParticleTile& tile,
                   const DepositParams& params, FieldArray& rho) {
  PhaseScope phase(hw.ledger(), Phase::kCompute);
  constexpr int kSupport = Order + 1;
  const GridGeometry& g = params.geom;
  const double inv_vol = params.InvCellVolume();
  const ParticleSoA& soa = tile.soa();
  for (size_t i = 0; i < soa.size(); ++i) {
    if (!tile.IsLive(static_cast<int32_t>(i))) {
      hw.ScalarOps(1);
      continue;
    }
    hw.TouchRead(&soa.x[i], sizeof(double) * 3);
    hw.TouchRead(&soa.w[i], sizeof(double));
    int sx0, sy0, sz0;
    double wx[4], wy[4], wz[4];
    ShapeFunction<Order>::Weights(g.GridX(soa.x[i]), &sx0, wx);
    ShapeFunction<Order>::Weights(g.GridY(soa.y[i]), &sy0, wy);
    ShapeFunction<Order>::Weights(g.GridZ(soa.z[i]), &sz0, wz);
    const double qw = params.charge * soa.w[i] * inv_vol;
    hw.ScalarOps(20);
    for (int c = 0; c < kSupport; ++c) {
      for (int b = 0; b < kSupport; ++b) {
        const double wyz = wy[b] * wz[c];
        for (int a = 0; a < kSupport; ++a) {
          const int64_t node = rho.Index(sx0 + a, sy0 + b, sz0 + c);
          hw.ScalarOps(2);
          hw.AccumScalar(&rho.data()[node], qw * wx[a] * wyz);
        }
      }
    }
  }
}

template void StageEsirkepovTile<1>(HwContext&, const ParticleTile&,
                                    const DepositParams&, bool, EsirkepovScratch&);
template void StageEsirkepovTile<2>(HwContext&, const ParticleTile&,
                                    const DepositParams&, bool, EsirkepovScratch&);
template void StageEsirkepovTile<3>(HwContext&, const ParticleTile&,
                                    const DepositParams&, bool, EsirkepovScratch&);
template void DepositEsirkepovTile<1>(HwContext&, const ParticleTile&,
                                      const DepositParams&, bool,
                                      const EsirkepovScratch&, TileCurrent&);
template void DepositEsirkepovTile<2>(HwContext&, const ParticleTile&,
                                      const DepositParams&, bool,
                                      const EsirkepovScratch&, TileCurrent&);
template void DepositEsirkepovTile<3>(HwContext&, const ParticleTile&,
                                      const DepositParams&, bool,
                                      const EsirkepovScratch&, TileCurrent&);
template void DepositEsirkepov<1>(HwContext&, const ParticleTile&,
                                  const std::vector<double>&,
                                  const std::vector<double>&,
                                  const std::vector<double>&,
                                  const DepositParams&, FieldSet&);
template void DepositEsirkepov<2>(HwContext&, const ParticleTile&,
                                  const std::vector<double>&,
                                  const std::vector<double>&,
                                  const std::vector<double>&,
                                  const DepositParams&, FieldSet&);
template void DepositEsirkepov<3>(HwContext&, const ParticleTile&,
                                  const std::vector<double>&,
                                  const std::vector<double>&,
                                  const std::vector<double>&,
                                  const DepositParams&, FieldSet&);
template void DepositCharge<1>(HwContext&, const ParticleTile&, const DepositParams&,
                               FieldArray&);
template void DepositCharge<2>(HwContext&, const ParticleTile&, const DepositParams&,
                               FieldArray&);
template void DepositCharge<3>(HwContext&, const ParticleTile&, const DepositParams&,
                               FieldArray&);

}  // namespace mpic

// Charge-conserving Esirkepov deposition on the 8x8 FP64 MPU tile.
//
// The staged Esirkepov combine is, per particle, three transverse planes of
// the rank-2 outer-product form
//
//     T[b][c] = m_b * m_c + (1/12) * d_b * d_c
//
// (esirkepov.h), which is exactly the MOPA shape: each plane is accumulated
// with two MOPA issues — a zeroing m (x) m followed by d (x) (k12*d) — and the
// longitudinal cumulative sums are applied at extraction time as by-element
// FMAs against the (1/cf-scaled) running-sum prefix vector of the axis.
//
// Plane/tile mapping (rows (x) cols):
//
//     tile 0:  T_yz = my (x) mz   -> Jx   (rows b over y, cols c over z)
//     tile 1:  T_xz = mz (x) mx   -> Jy   (rows c over z, cols a over x)
//     tile 2:  T_xy = my (x) mx   -> Jz   (rows b over y, cols a over x)
//
// so tiles 1 and 2 share their column operands (mx / k12*dx) and tiles 0 and
// 2 share their row operands (my / dy): a pair's six operand registers are
// built with six lane blends plus two k12 pre-scales — 8 VPU ops per MOPA
// group regardless of pairing.
//
// Multi-particle packing and width adaptivity. The union window of an axis is
// Order + 2 nodes wide only when the particle crossed a cell boundary on that
// axis; otherwise the effective width is Order + 1 and the staged last lane is
// exactly zero (EsirkepovScratch::wide). Groups grow greedily at the widest
// member's lane pitch while one more member fits in the 8 lanes, so at thermal
// drifts (nearly every particle all-axis narrow):
//
//   * order 1 packs FOUR narrow particles per tile at pitch 2 (wide pairs at
//     pitch 3);
//   * order 2 packs pairs at pitch 3 (wide pairs at pitch 4);
//   * order 3 packs narrow pairs at pitch 4, boundary-crossers go single.
//
// Per-MOPA occupancy (valid slots / 64, counted into the ledger's
// mopa_valid_slots so the figures below are measured, not asserted):
//
//     order 1:  4*(2*2)/64 = 25%  narrow quad,   2*(3*3)/64 = 28% wide pair
//     order 2:  2*(3*3)/64 = 28%  narrow pair,   2*(4*4)/64 = 50% wide pair
//     order 3:  2*(4*4)/64 = 50%  narrow pair,     (5*5)/64 = 39% wide single
//
// against the direct kernels' 25% (CIC) and 50% (QSP) pair figures
// (deposit_mpu.h). Narrowness also trims the transverse extraction loops (rows
// read and runs issued); the longitudinal run is always Order + 1 lanes, since
// the floating-point prefix at the last support lane is small but not exactly
// zero and the scalar reference includes it.
//
// Extraction cost is further amortized across a batch: all-narrow particles
// sharing the batch's reference window base (in cell-resident bins that is
// nearly every particle — same cell, no crossing) accumulate their runs into
// a register-resident (Order+1)^3-per-component J block, flushed to the tile
// scratch once per batch. At orders 1-2 the three blocks fit the vector
// register file (1-4 Vec8 each); order 3 keeps per-particle extraction, where
// the direct-scheme baseline is already beaten outright.
//
// Scheduling mirrors DepositMpu: cell-resident rides the GPMA bins (pairs come
// from the same cell; bins below sparse_fallback_ppc take a per-particle VPU
// path that reproduces DepositEsirkepovTile's arithmetic bit-for-bit),
// pairwise walks slot order for the unsorted hybrid variants. Values are
// schedule- and core-count-invariant: kernel selection and iteration order
// depend only on the configuration and the particle data.

#ifndef MPIC_SRC_DEPOSIT_ESIRKEPOV_MPU_H_
#define MPIC_SRC_DEPOSIT_ESIRKEPOV_MPU_H_

#include "src/deposit/deposit_mpu.h"
#include "src/deposit/esirkepov.h"
#include "src/hw/hw_context.h"
#include "src/particles/particle_tile.h"

namespace mpic {

// MPU combine stage: consumes the windows staged by StageEsirkepovTile and
// accumulates into the tile-private TileCurrent (Phase::kCompute). Requires a
// machine with an MPU; cell-resident scheduling additionally requires valid
// GPMA bins. params.dt must be the step dt.
template <int Order>
void DepositEsirkepovMpuTile(HwContext& hw, const ParticleTile& tile,
                             const DepositParams& params,
                             MpuScheduling scheduling, int sparse_fallback_ppc,
                             const EsirkepovScratch& scratch,
                             TileCurrent& tile_j);

}  // namespace mpic

#endif  // MPIC_SRC_DEPOSIT_ESIRKEPOV_MPU_H_

// Canonical scalar current deposition — the correctness oracle for every other
// kernel and the definition of "effective computational work" used by the
// peak-efficiency accounting (paper Sec. 5.2.2).

#ifndef MPIC_SRC_DEPOSIT_DEPOSIT_SCALAR_H_
#define MPIC_SRC_DEPOSIT_DEPOSIT_SCALAR_H_

#include "src/deposit/deposit_params.h"
#include "src/grid/field_set.h"
#include "src/hw/hw_context.h"
#include "src/particles/particle_tile.h"

namespace mpic {

// Deposits all live particles of `tile` directly onto fields.jx/jy/jz
// (node-centered direct deposition). Charged entirely to Phase::kCompute.
template <int Order>
void DepositScalarTile(HwContext& hw, const ParticleTile& tile,
                       const DepositParams& params, FieldSet& fields);

// Floating-point operations per particle of the canonical scalar algorithm at
// a given order, counting only essential scientific work (index math, shape
// weights, gamma/velocity, and the per-node/per-component products and
// accumulations; excludes sorting and staging overheads). A multiply-add
// counts as 2 FLOPs. The paper uses the same construction (419 FLOPs/particle
// for order 3 under its counting convention); the exact constant differs with
// convention, which only rescales all efficiency numbers uniformly — see
// EXPERIMENTS.md.
double CanonicalFlopsPerParticle(int order);

}  // namespace mpic

#endif  // MPIC_SRC_DEPOSIT_DEPOSIT_SCALAR_H_

#include "src/deposit/deposit_baseline.h"

#include "src/deposit/particle_iteration.h"

namespace mpic {

namespace {

template <int Order>
void DepositOneParticle(HwContext& hw, const DepositScratch& scratch, size_t i,
                        FieldSet& fields) {
  constexpr int kSupport = Order + 1;
  const int ix = scratch.ix[i];
  const int iy = scratch.iy[i];
  const int iz = scratch.iz[i];
  const double wqx = scratch.wqx[i];
  const double wqy = scratch.wqy[i];
  const double wqz = scratch.wqz[i];
  for (int c = 0; c < kSupport; ++c) {
    for (int b = 0; b < kSupport; ++b) {
      const double wyz = scratch.sy[b][i] * scratch.sz_[c][i];
      hw.ScalarOps(1);
      for (int a = 0; a < kSupport; ++a) {
        const double s3 = scratch.sx[a][i] * wyz;
        const int64_t node = fields.jx.Index(ix + a, iy + b, iz + c);
        hw.ScalarOps(3);  // xyz product + index math (arithmetic vectorizes)
        hw.AccumScalar(&fields.jx.data()[node], wqx * s3);
        hw.AccumScalar(&fields.jy.data()[node], wqy * s3);
        hw.AccumScalar(&fields.jz.data()[node], wqz * s3);
      }
    }
  }
}

}  // namespace

template <int Order>
void DepositBaselineTile(HwContext& hw, const ParticleTile& tile,
                         const DepositParams& params, const DepositScratch& scratch,
                         FieldSet& fields, bool sorted) {
  (void)params;
  PhaseScope phase(hw.ledger(), Phase::kCompute);
  ForEachParticle(hw, tile, sorted, [&](int32_t pid) {
    // Staged loads for this particle (shape terms + factors).
    constexpr int kSupport = Order + 1;
    const auto i = static_cast<size_t>(pid);
    hw.TouchRead(&scratch.ix[i], sizeof(int32_t) * 3);
    for (int t = 0; t < kSupport; ++t) {
      hw.TouchRead(&scratch.sx[t][i], sizeof(double));
      hw.TouchRead(&scratch.sy[t][i], sizeof(double));
      hw.TouchRead(&scratch.sz_[t][i], sizeof(double));
    }
    hw.TouchRead(&scratch.wqx[i], sizeof(double) * 1);
    hw.TouchRead(&scratch.wqy[i], sizeof(double) * 1);
    hw.TouchRead(&scratch.wqz[i], sizeof(double) * 1);
    DepositOneParticle<Order>(hw, scratch, i, fields);
  });
}

template void DepositBaselineTile<1>(HwContext&, const ParticleTile&,
                                     const DepositParams&, const DepositScratch&,
                                     FieldSet&, bool);
template void DepositBaselineTile<2>(HwContext&, const ParticleTile&,
                                     const DepositParams&, const DepositScratch&,
                                     FieldSet&, bool);
template void DepositBaselineTile<3>(HwContext&, const ParticleTile&,
                                     const DepositParams&, const DepositScratch&,
                                     FieldSet&, bool);

}  // namespace mpic

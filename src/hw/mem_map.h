// Maps host pointers to stable logical addresses for the cache model.
//
// Host heap addresses change run-to-run (ASLR), which would make modeled cache
// behavior nondeterministic. Kernels therefore register each array once; the
// MemMap lays registered regions out sequentially in a logical address space
// (page-aligned, with guard gaps), and translates any interior pointer.
//
// Translation is on the hot path of every modeled access, so the table keeps a
// one-entry MRU cache: almost all consecutive accesses fall in the same region.

#ifndef MPIC_SRC_HW_MEM_MAP_H_
#define MPIC_SRC_HW_MEM_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpic {

class MemMap {
 public:
  // Registers [base, base+bytes). Re-registering the same base with a size that
  // still fits is a no-op; growing requires Forget() first (or a new region).
  // Returns the logical base address.
  uint64_t Register(const void* base, size_t bytes);

  // Translates an interior pointer of a registered region. Pointers outside any
  // region are identity-mapped into a distinct high address range (so stray
  // accesses still behave sanely, just without cross-run determinism).
  uint64_t Translate(const void* p);

  // Drops all registrations (e.g. between bench configurations).
  void Clear();

  size_t num_regions() const { return regions_.size(); }

  // Mutation stamp, drawn from a process-global counter so two maps compare
  // equal only if neither mutated since one was copied from the other. The
  // parallel-region machinery uses it to skip redundant worker snapshots.
  uint64_t version() const { return version_; }

 private:
  void BumpVersion();

  struct Region {
    uintptr_t host_base;
    uintptr_t host_end;
    uint64_t logical_base;
  };

  // Sorted by host_base for binary search.
  std::vector<Region> regions_;
  size_t mru_ = 0;
  uint64_t next_logical_ = 1 << 12;
  uint64_t region_counter_ = 0;
  uint64_t version_ = 0;

  static constexpr uint64_t kUnmappedBase = uint64_t{1} << 46;
};

}  // namespace mpic

#endif  // MPIC_SRC_HW_MEM_MAP_H_

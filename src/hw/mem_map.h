// Maps host pointers to stable logical addresses for the cache model.
//
// Host heap addresses change run-to-run (ASLR, allocator reuse), which would
// make modeled cache behavior nondeterministic. Kernels therefore register
// each array; the MemMap lays registered regions out sequentially in a logical
// address space (page-aligned, with guard gaps), and translates any interior
// pointer.
//
// Arrays that can reallocate over a run (particle SoA streams, staging
// scratch, GPMA index arrays) use *keyed* registration: the key names the
// logical array, and the map remaps the key to a fresh logical range whenever
// its base or size changes. Because reallocation events (vector growth) are
// themselves deterministic, the resulting logical layout is a pure function
// of the program's registration sequence — independent of where the allocator
// happens to place anything. Plain Register() remains for arrays that live at
// one address for the whole run (fields, rhocell blocks).
//
// Translation is on the hot path of every modeled access, so the table keeps a
// one-entry MRU cache: almost all consecutive accesses fall in the same region.

#ifndef MPIC_SRC_HW_MEM_MAP_H_
#define MPIC_SRC_HW_MEM_MAP_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mpic {

// Process-unique owner id for building keyed-registration keys. Construction
// order of the owners (engines, species blocks) is deterministic, so the ids
// — and with them the registration sequences — are too.
uint64_t NextMemOwnerId();

// Key for one registered stream of one tile of one owner (an engine or a
// species block): owner ids are process-unique, tiles fit 24 bits, stream
// enumerates the owner's per-tile arrays.
inline uint64_t MemRegionKey(uint64_t owner, int tile, int stream) {
  return (owner << 32) | (static_cast<uint64_t>(tile) << 8) |
         static_cast<uint64_t>(stream);
}

// NUMA home-domain intent attached to a registration. `domain` is the home
// assigned when the registration creates (or moves) a region — the model's
// first-touch rule, supplied by the registering context from its own NUMA
// domain. When `authoritative` is set (a placement decision, not a mere
// touch: HwContext::ScopedHomeDomain), an already-registered region is
// re-homed too, so a tile's pages follow its scheduled owner.
struct HomeDomain {
  int domain = 0;
  bool authoritative = false;
};

// A translated address plus the home domain of the region it fell in
// (-1 for unmapped pointers, which the cache model treats as local).
struct MemLocation {
  uint64_t addr = 0;
  int home_domain = -1;
};

class MemMap {
 public:
  // Registers [base, base+bytes). Re-registering the same base with a size that
  // still fits is a no-op; growing requires Forget() first (or a new region).
  // Returns the logical base address. For arrays that may reallocate, use
  // RegisterKeyed instead — a freed region left behind here can alias a later
  // allocation at the same address.
  uint64_t Register(const void* base, size_t bytes, HomeDomain home = {});

  // Keyed registration: `key` names one logical array. While the array stays
  // at the same base (and fits its recorded size) this returns the existing
  // logical base; when it moved or grew, the key's old region is dropped and
  // a fresh logical range is assigned. Returns the logical base address.
  uint64_t RegisterKeyed(uint64_t key, const void* base, size_t bytes,
                         HomeDomain home = {});

  // Re-homes the region containing `p` (no-op for unmapped pointers; the
  // version stamp bumps only when the domain actually changes). Returns true
  // when a region was found.
  bool SetHomeDomain(const void* p, int domain);

  // Translates an interior pointer of a registered region. Pointers outside any
  // region are identity-mapped into a distinct high address range (so stray
  // accesses still behave sanely, just without cross-run determinism).
  uint64_t Translate(const void* p) { return TranslateEx(p).addr; }

  // Translate plus the containing region's home domain (-1 when unmapped).
  MemLocation TranslateEx(const void* p);

  // Drops all registrations (e.g. between bench configurations).
  void Clear();

  size_t num_regions() const { return regions_.size(); }

  // Mutation stamp, drawn from a process-global counter so two maps compare
  // equal only if neither mutated since one was copied from the other. The
  // parallel-region machinery uses it to skip redundant worker snapshots.
  uint64_t version() const { return version_; }

 private:
  struct Region {
    uintptr_t host_base;
    uintptr_t host_end;
    uint64_t logical_base;
    int home_domain;
  };
  struct KeyedRecord {
    uintptr_t host_base;
    size_t bytes;
    uint64_t logical_base;
  };

  void BumpVersion();
  // Places a new region (staggered logical base, guard gap), evicting stale
  // regions whose host ranges the new allocation proves freed. Returns the
  // logical base.
  uint64_t InsertRegion(uintptr_t host, size_t bytes, int home_domain);
  void EraseRegion(uintptr_t host_base, uint64_t logical_base);
  // True when the exact region is still present (a keyed record's region can
  // in principle be evicted by a later overlapping registration; the keyed
  // fast path re-validates rather than hand out a dead logical base).
  bool RegionExists(uintptr_t host_base, uint64_t logical_base) const;

  // Sorted by host_base for binary search.
  std::vector<Region> regions_;
  std::unordered_map<uint64_t, KeyedRecord> keyed_;
  size_t mru_ = 0;
  uint64_t next_logical_ = 1 << 12;
  uint64_t region_counter_ = 0;
  uint64_t version_ = 0;

  static constexpr uint64_t kUnmappedBase = uint64_t{1} << 46;
};

}  // namespace mpic

#endif  // MPIC_SRC_HW_MEM_MAP_H_

#include "src/hw/mem_map.h"

#include <algorithm>
#include <atomic>

#include "src/common/check.h"

namespace mpic {
namespace {
constexpr uint64_t kPage = 4096;
uint64_t RoundUpPage(uint64_t v) { return (v + kPage - 1) & ~(kPage - 1); }
// Process-global stamp source: every mutation of any MemMap gets a unique
// value, so version equality between two maps implies neither changed since
// one was copy-assigned from the other (worker snapshots in parallel regions).
std::atomic<uint64_t> g_mem_map_stamp{0};
std::atomic<uint64_t> g_mem_owner_id{0};
}  // namespace

uint64_t NextMemOwnerId() {
  return g_mem_owner_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

void MemMap::BumpVersion() {
  version_ = g_mem_map_stamp.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t MemMap::InsertRegion(uintptr_t host, size_t bytes, int home_domain) {
  Region r;
  r.host_base = host;
  r.host_end = host + bytes;
  r.home_domain = home_domain;
  // Stagger bases across cache sets: page-aligning every region would start
  // all streams in set 0 and make interleaved multi-stream loops thrash in a
  // way real (physically-colored) caches do not.
  const uint64_t stagger = (region_counter_++ * 7 % 61) * 64;
  r.logical_base = next_logical_ + stagger;
  next_logical_ += RoundUpPage(bytes + stagger) + kPage;  // guard page between
  // Drop stale regions that overlap the new range: they describe allocations
  // that have since been freed (the allocator handed their space to `host`).
  regions_.erase(std::remove_if(regions_.begin(), regions_.end(),
                                [&r](const Region& old) {
                                  return old.host_base < r.host_end &&
                                         r.host_base < old.host_end;
                                }),
                 regions_.end());
  auto it = std::upper_bound(regions_.begin(), regions_.end(), r,
                             [](const Region& a, const Region& b) {
                               return a.host_base < b.host_base;
                             });
  regions_.insert(it, r);
  mru_ = 0;
  BumpVersion();
  return r.logical_base;
}

bool MemMap::RegionExists(uintptr_t host_base, uint64_t logical_base) const {
  auto it = std::lower_bound(regions_.begin(), regions_.end(), host_base,
                             [](const Region& r, uintptr_t h) {
                               return r.host_base < h;
                             });
  return it != regions_.end() && it->host_base == host_base &&
         it->logical_base == logical_base;
}

void MemMap::EraseRegion(uintptr_t host_base, uint64_t logical_base) {
  auto it = std::find_if(regions_.begin(), regions_.end(),
                         [&](const Region& r) {
                           return r.host_base == host_base &&
                                  r.logical_base == logical_base;
                         });
  if (it != regions_.end()) {
    regions_.erase(it);
    mru_ = 0;
    BumpVersion();
  }
}

uint64_t MemMap::Register(const void* base, size_t bytes, HomeDomain home) {
  const auto host = reinterpret_cast<uintptr_t>(base);
  // Existing region starting at the same base? If it grew (vector realloc that
  // landed on the same address), move it to a fresh logical range so logical
  // addresses never alias a neighbor. The home domain follows first-touch:
  // only a new/moved region (or an authoritative placement) re-homes it.
  for (Region& r : regions_) {
    if (r.host_base == host) {
      if (host + bytes <= r.host_end) {
        if (home.authoritative && r.home_domain != home.domain) {
          r.home_domain = home.domain;
          BumpVersion();
        }
        return r.logical_base;
      }
      r.host_end = host + bytes;
      r.logical_base = next_logical_;
      r.home_domain = home.domain;
      next_logical_ += RoundUpPage(bytes) + kPage;
      BumpVersion();
      return r.logical_base;
    }
  }
  return InsertRegion(host, bytes, home.domain);
}

uint64_t MemMap::RegisterKeyed(uint64_t key, const void* base, size_t bytes,
                               HomeDomain home) {
  const auto host = reinterpret_cast<uintptr_t>(base);
  auto it = keyed_.find(key);
  if (it != keyed_.end()) {
    if (it->second.host_base == host && bytes <= it->second.bytes &&
        RegionExists(it->second.host_base, it->second.logical_base)) {
      if (home.authoritative) {
        SetHomeDomain(base, home.domain);
      }
      return it->second.logical_base;
    }
    // The array moved or grew: retire its old region (the old host range is
    // dead memory now — leaving it mapped would let an unrelated later
    // allocation alias its logical address, which is exactly the run-to-run
    // nondeterminism keyed registration exists to rule out).
    EraseRegion(it->second.host_base, it->second.logical_base);
  }
  const uint64_t logical = InsertRegion(host, bytes, home.domain);
  keyed_[key] = KeyedRecord{host, bytes, logical};
  return logical;
}

bool MemMap::SetHomeDomain(const void* p, int domain) {
  const auto host = reinterpret_cast<uintptr_t>(p);
  for (Region& r : regions_) {
    if (host >= r.host_base && host < r.host_end) {
      if (r.home_domain != domain) {
        r.home_domain = domain;
        BumpVersion();
      }
      return true;
    }
  }
  return false;
}

MemLocation MemMap::TranslateEx(const void* p) {
  const auto host = reinterpret_cast<uintptr_t>(p);
  if (mru_ < regions_.size()) {
    const Region& r = regions_[mru_];
    if (host >= r.host_base && host < r.host_end) {
      return MemLocation{r.logical_base + (host - r.host_base), r.home_domain};
    }
  }
  // Binary search for the region containing `host`.
  size_t lo = 0;
  size_t hi = regions_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (regions_[mid].host_base <= host) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo > 0) {
    const Region& r = regions_[lo - 1];
    if (host >= r.host_base && host < r.host_end) {
      mru_ = lo - 1;
      return MemLocation{r.logical_base + (host - r.host_base), r.home_domain};
    }
  }
  // Unregistered: identity-map into a far range (home domain unknown; the
  // cache model treats it as local).
  return MemLocation{kUnmappedBase + (host & ((uint64_t{1} << 40) - 1)), -1};
}

void MemMap::Clear() {
  regions_.clear();
  keyed_.clear();
  mru_ = 0;
  next_logical_ = 1 << 12;
  region_counter_ = 0;
  BumpVersion();
}

}  // namespace mpic

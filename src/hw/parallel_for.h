// Tile-parallel execution over the modeled multi-core machine.
//
// ParallelForTiles runs `body(ctx, worker, index)` for every index in [0, n),
// distributed over cfg().num_cores modeled cores — either as a static
// contiguous block split (TileSchedulePolicy::kStatic, the seed model) or via
// the cost-guided work-stealing scheduler (kCostSteal, fed by RegionCosts
// estimates; see src/hw/tile_scheduler.h). Each worker gets its own HwContext
// view — a private CostLedger and CacheModel plus a snapshot of the main
// context's MemMap — so kernels charge costs exactly as they do serially.
// When the region ends, per-worker cycles merge into the main ledger (see
// RegionMerge below) and a fixed fork/join cost
// (MachineConfig::parallel_region_fork_join_cycles) is charged per fan-out,
// keeping the Fig. 1 / 8-10 phase breakdowns meaningful at num_cores > 1.
//
// Determinism: the position->worker mapping is computed from the machine
// config and cost estimates alone (independent of OpenMP scheduling), every
// tile's computation touches only tile-private state, and callers merge any
// cross-tile results in tile order — so the physics output is bit-identical
// to the serial run for any core or thread count under either policy. With
// num_cores == 1 the body runs inline on the main context and the model
// reproduces the single-core ledger exactly (no fork/join charge).
//
// Real parallelism comes from OpenMP: modeled workers map to OpenMP threads
// (capped by OMP_NUM_THREADS). Without OpenMP the same partition runs serially
// with identical results, including the multi-core ledger accounting.
//
// With MachineConfig::num_ranks > 1 (src/hw/rank_topology.h) positions first
// split contiguously over the modeled ranks — a z-slab split whenever the
// region covers the full tile grid — and each rank runs its share on its own
// HwContext (private cores, caches, ledger, memory map). Rank ledgers merge
// into the main ledger exactly like core ledgers do (ranks overlap in time),
// plus one rank-level launch/barrier charge per region.

#ifndef MPIC_SRC_HW_PARALLEL_FOR_H_
#define MPIC_SRC_HW_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/hw/hw_context.h"

namespace mpic {

// Contiguous index range [begin, end) assigned to one worker: a block split
// with the remainder spread over the leading workers.
struct TileRange {
  int begin = 0;
  int end = 0;
};
TileRange WorkerTileRange(int n, int num_workers, int worker);

using TileBody = std::function<void(HwContext& ctx, int worker, int index)>;

// How a region's per-worker ledgers merge into the main ledger.
enum class RegionMerge {
  // Per phase, max over workers (the region runs one logical stage; a core's
  // cycles in that stage overlap every other core's). The seed semantics.
  kPhaseMax,
  // Fused multi-stage region: the region's wall time is the slowest core's
  // TOTAL cycles, attributed with that core's own per-phase split (stages run
  // back-to-back per core, so per-phase max would double-bill imbalance).
  kFusedStages,
};

// Optional per-position cost plumbing for a region. Both pointers are
// caller-owned and may be null independently.
//
//  - `estimates`: per-position modeled-cycle estimates from a previous pass
//    (typically last step's `measured`). Used only under
//    TileSchedulePolicy::kCostSteal, and only when its size matches the
//    region's position count; otherwise positions cost 1.0 each and the
//    schedule degenerates to an even split with no steals.
//  - `measured`: filled (resized to n, one slot per position) with the
//    modeled cycles each position actually charged this region, measured as
//    the executing worker's ledger delta around the body call. Steal charges
//    are excluded, so feeding `measured` back as next step's `estimates`
//    estimates the work, not the scheduling overhead. The probe itself is
//    free in the model.
//  - `prev_owners`: per-position global worker id (rank * num_cores + core)
//    that executed the position last time (typically last step's `owners`).
//    Used only under kCostSteal with MachineConfig::sticky_placement, and
//    only when its size matches the position count: the scheduler prefers
//    re-placing each position on its previous owner (then the owner's NUMA
//    domain) within one cost bucket of the balance optimum.
//  - `owners`: filled (resized to n, -1 for positions no worker ran) with
//    the global worker id that executed each position this region, the
//    feedback source for the next step's `prev_owners`.
struct RegionCosts {
  const std::vector<double>* estimates = nullptr;
  std::vector<double>* measured = nullptr;
  const std::vector<int32_t>* prev_owners = nullptr;
  std::vector<int32_t>* owners = nullptr;
};

// Runs body over [0, n). Under TileSchedulePolicy::kStatic positions are
// partitioned as a contiguous block split; under kCostSteal each fan-out
// builds a deterministic LPT + work-stealing schedule from costs.estimates
// (see src/hw/tile_scheduler.h) and each worker executes exactly the task
// list the model assigned it, charging ChargeSteal per stolen task. Physics
// is bit-identical either way: bodies touch only tile-private state and
// callers merge cross-tile results in tile order, so only the *mapping* of
// tiles to modeled cores (and hence the modeled critical path) changes.
void ParallelForTiles(HwContext& hw, int n, const TileBody& body,
                      RegionMerge merge = RegionMerge::kPhaseMax,
                      const RegionCosts& costs = RegionCosts{});

// Fan-out over an explicit tile list (e.g. one color class of the reduction
// schedule): `body(ctx, worker, tiles[i])` for every i. Positions (and
// RegionCosts slots) index into `tiles`, not the tile ids themselves.
void ParallelForTileList(HwContext& hw, const std::vector<int>& tiles,
                         const TileBody& body,
                         RegionMerge merge = RegionMerge::kPhaseMax,
                         const RegionCosts& costs = RegionCosts{});

// Per-worker accumulator slot padded to a cache line: callers index one slot
// per worker, and the padding keeps concurrent per-particle increments from
// false-sharing a line between real cores.
template <typename T>
struct alignas(64) PaddedSlot {
  T value{};
};

// True when ParallelForTiles will fan out (modeled cores or ranks > 1).
inline bool ParallelEnabled(const HwContext& hw) {
  return hw.num_cores() > 1 || hw.num_ranks() > 1;
}

// Number of distinct worker indices a fan-out can hand to bodies: rank r's
// core w runs as worker r * num_cores + w. Callers size per-worker slot
// arrays with this (not num_cores()) so slots stay private across ranks.
inline int WorkerSlotCount(const HwContext& hw) {
  return hw.num_cores() * hw.num_ranks();
}

}  // namespace mpic

#endif  // MPIC_SRC_HW_PARALLEL_FOR_H_

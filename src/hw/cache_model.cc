#include "src/hw/cache_model.h"

#include "src/common/check.h"

namespace mpic {

CacheLevel::CacheLevel(const CacheLevelConfig& cfg, int line_bytes)
    : ways_(cfg.ways),
      num_sets_(static_cast<int>(cfg.size_bytes / (static_cast<size_t>(cfg.ways) *
                                                   static_cast<size_t>(line_bytes)))) {
  MPIC_CHECK(ways_ > 0);
  MPIC_CHECK(num_sets_ > 0);
  // Power-of-two set count lets us mask instead of mod.
  MPIC_CHECK((num_sets_ & (num_sets_ - 1)) == 0);
  tags_.assign(static_cast<size_t>(num_sets_) * ways_, kInvalidTag);
  lru_.assign(tags_.size(), 0);
  clock_.assign(static_cast<size_t>(num_sets_), 0);
}

bool CacheLevel::Access(uint64_t line_addr) {
  // The stored "tag" is the full line address; comparing it is equivalent to a
  // tag match within the indexed set.
  const int set = static_cast<int>(line_addr & static_cast<uint64_t>(num_sets_ - 1));
  uint64_t* tags = &tags_[static_cast<size_t>(set) * ways_];
  for (int w = 0; w < ways_; ++w) {
    if (tags[w] == line_addr) {
      lru_[static_cast<size_t>(set) * ways_ + w] = ++clock_[set];
      return true;
    }
  }
  return false;
}

void CacheLevel::Fill(uint64_t line_addr) {
  const int set = static_cast<int>(line_addr & static_cast<uint64_t>(num_sets_ - 1));
  uint64_t* tags = &tags_[static_cast<size_t>(set) * ways_];
  uint32_t* lru = &lru_[static_cast<size_t>(set) * ways_];
  int victim = 0;
  uint32_t best = ~uint32_t{0};
  for (int w = 0; w < ways_; ++w) {
    if (tags[w] == kInvalidTag) {
      victim = w;
      break;
    }
    if (lru[w] < best) {
      best = lru[w];
      victim = w;
    }
  }
  tags[victim] = line_addr;
  lru[victim] = ++clock_[set];
}

void CacheLevel::Reset() {
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(lru_.begin(), lru_.end(), 0u);
  std::fill(clock_.begin(), clock_.end(), 0u);
}

CacheModel::CacheModel(const MachineConfig& cfg)
    : l1_(cfg.l1, kCacheLineBytes),
      l2_(cfg.l2, kCacheLineBytes),
      l2_penalty_(cfg.l2.hit_penalty_cycles),
      dram_penalty_(cfg.dram_penalty_cycles),
      prefetch_factor_(cfg.prefetch_factor),
      remote_factor_(cfg.remote_mem_latency_factor) {
  stream_next_.assign(static_cast<size_t>(cfg.prefetch_streams), ~uint64_t{0});
  stream_lru_.assign(static_cast<size_t>(cfg.prefetch_streams), 0);
}

bool CacheModel::PrefetchHit(uint64_t line) {
  ++stream_clock_;
  size_t victim = 0;
  uint64_t oldest = ~uint64_t{0};
  for (size_t i = 0; i < stream_next_.size(); ++i) {
    if (stream_next_[i] == line) {
      // Predicted: advance the stream.
      stream_next_[i] = line + 1;
      stream_lru_[i] = stream_clock_;
      return true;
    }
    if (stream_lru_[i] < oldest) {
      oldest = stream_lru_[i];
      victim = i;
    }
  }
  // New (or broken) stream: start tracking from here.
  stream_next_[victim] = line + 1;
  stream_lru_[victim] = stream_clock_;
  return false;
}

double CacheModel::Touch(uint64_t addr, CostLedger& ledger, bool remote) {
  const uint64_t line = addr / kCacheLineBytes;
  auto& c = ledger.counters();
  if (l1_.Access(line)) {
    ++c.l1_hits;
    return 0.0;
  }
  ++c.l1_misses;
  const double discount = PrefetchHit(line) ? prefetch_factor_ : 1.0;
  if (l2_.Access(line)) {
    ++c.l2_hits;
    l1_.Fill(line);
    return l2_penalty_ * discount;
  }
  ++c.l2_misses;
  l2_.Fill(line);
  l1_.Fill(line);
  double penalty = dram_penalty_ * discount;
  if (remote) {
    // The line crosses the interconnect: scale the (post-discount) miss
    // penalty by the remote factor and book the surcharge separately.
    const double surcharge = penalty * (remote_factor_ - 1.0);
    penalty += surcharge;
    ++c.remote_lines;
    c.remote_cycles += surcharge;
  }
  return penalty;
}

double CacheModel::TouchRange(uint64_t addr, uint64_t bytes, CostLedger& ledger,
                              bool remote) {
  if (bytes == 0) {
    return 0.0;
  }
  const uint64_t first = addr / kCacheLineBytes;
  const uint64_t last = (addr + bytes - 1) / kCacheLineBytes;
  double penalty = 0.0;
  for (uint64_t line = first; line <= last; ++line) {
    penalty += Touch(line * kCacheLineBytes, ledger, remote);
  }
  return penalty;
}

void CacheModel::Reset() {
  l1_.Reset();
  l2_.Reset();
  // The stride-prefetcher streams are cache state too: leaving them warm
  // across a reset lets a pre-reset access pattern discount post-reset
  // misses, which breaks the model-sync guarantee that two runs flushed at
  // the same execution point charge identical cycles from there on.
  stream_next_.assign(stream_next_.size(), ~uint64_t{0});
  stream_lru_.assign(stream_lru_.size(), 0);
  stream_clock_ = 0;
}

}  // namespace mpic

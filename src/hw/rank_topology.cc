#include "src/hw/rank_topology.h"

#include "src/common/check.h"

namespace mpic {

RankSet::RankSet(const MachineConfig& cfg, int ntx, int nty, int ntz)
    : ntx_(ntx), nty_(nty), ntz_(ntz) {
  const int ranks = cfg.num_ranks < 1 ? 1 : cfg.num_ranks;
  MPIC_CHECK(ntx > 0 && nty > 0 && ntz > 0);
  MPIC_CHECK_MSG(ranks == 1 || ntz % ranks == 0,
                 "rank decomposition requires ntz divisible by num_ranks");
  tiles_per_plane_ = ntx * nty;
  planes_per_rank_ = ntz / ranks;
  domains_.resize(static_cast<size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    RankDomain& d = domains_[static_cast<size_t>(r)];
    d.tz_begin = r * planes_per_rank_;
    d.tz_end = (r + 1) * planes_per_rank_;
    d.tile_begin = d.tz_begin * tiles_per_plane_;
    d.tile_end = d.tz_end * tiles_per_plane_;
  }
}

}  // namespace mpic

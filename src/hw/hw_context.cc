#include "src/hw/hw_context.h"

#include <cmath>

#include "src/common/check.h"

namespace mpic {

HwContext::HwContext(const MachineConfig& cfg)
    : cfg_(cfg),
      cache_(cfg),
      vpu_op_cycles_(1.0 / static_cast<double>(cfg.vpu_pipes)),
      scalar_op_cycles_(1.0 / cfg.scalar_ops_per_cycle) {}

void HwContext::ResetModel() {
  ledger_.Reset();
  cache_.Reset();
  for (auto& w : workers_) {
    w->ResetModel();
  }
  for (auto& r : ranks_) {
    r->ResetModel();
  }
}

void HwContext::FlushModelCaches() {
  cache_.Reset();
  for (auto& w : workers_) {
    w->FlushModelCaches();
  }
  for (auto& r : ranks_) {
    r->FlushModelCaches();
  }
}

HwContext& HwContext::rank(int r) {
  MPIC_CHECK(r >= 0 && r < num_ranks());
  while (static_cast<int>(ranks_.size()) <= r) {
    // A rank is a full node minus the rank dimension: it fans out over its own
    // cores but never over further ranks.
    MachineConfig node_cfg = cfg_;
    node_cfg.num_ranks = 1;
    ranks_.push_back(std::make_unique<HwContext>(node_cfg));
  }
  return *ranks_[static_cast<size_t>(r)];
}

HwContext& HwContext::worker(int w) {
  MPIC_CHECK(w >= 0 && w < num_cores());
  while (static_cast<int>(workers_.size()) <= w) {
    // Workers never fan out further themselves: their config models one core.
    MachineConfig core_cfg = cfg_;
    core_cfg.num_cores = 1;
    workers_.push_back(std::make_unique<HwContext>(core_cfg));
    workers_.back()->numa_domain_ = NumaDomainOfWorker(
        static_cast<int>(workers_.size()) - 1, num_cores(),
        cfg_.num_numa_domains);
  }
  return *workers_[static_cast<size_t>(w)];
}

void HwContext::ChargeMem(const void* p, size_t bytes, double issue_cycles,
                          bool write, uint64_t count_as_vpu_mem) {
  (void)write;  // the model charges reads and writes identically
  const MemLocation loc = mem_.TranslateEx(p);
  const double penalty = cache_.TouchRange(loc.addr, bytes, ledger_, IsRemote(loc));
  ledger_.AddCycles(issue_cycles + penalty);
  if (count_as_vpu_mem != 0) {
    ledger_.counters().vpu_mem += count_as_vpu_mem;
  } else {
    ++ledger_.counters().scalar_mem;
  }
}

// ---- Scalar stream ---------------------------------------------------------

void HwContext::ScalarOps(int n) {
  ledger_.counters().scalar_ops += static_cast<uint64_t>(n);
  ledger_.AddCycles(scalar_op_cycles_ * n);
}

double HwContext::LoadScalar(const double* p) {
  ChargeMem(p, sizeof(double), cfg_.scalar_mem_issue_cycles, /*write=*/false, 0);
  return *p;
}

void HwContext::StoreScalar(double* p, double v) {
  ChargeMem(p, sizeof(double), cfg_.scalar_mem_issue_cycles, /*write=*/true, 0);
  *p = v;
}

void HwContext::AccumScalar(double* p, double v) {
  // Load + add + store; the line is touched once (it stays in L1 for the RMW).
  ChargeMem(p, sizeof(double), 2.0 * cfg_.scalar_mem_issue_cycles, /*write=*/true, 0);
  ScalarOps(1);
  *p += v;
}

void HwContext::AtomicAccumScalar(double* p, double v) {
  ++ledger_.counters().atomics;
  ledger_.AddCycles(cfg_.atomic_extra_cycles);
  AccumScalar(p, v);
}

void HwContext::TouchRead(const void* p, size_t bytes) {
  ChargeMem(p, bytes, cfg_.scalar_mem_issue_cycles, /*write=*/false, 0);
}

void HwContext::TouchWrite(const void* p, size_t bytes) {
  ChargeMem(p, bytes, cfg_.scalar_mem_issue_cycles, /*write=*/true, 0);
}

// ---- VPU stream ------------------------------------------------------------

Vec8 HwContext::VLoad(const double* p) {
  ChargeMem(p, sizeof(double) * kVpuLanes, cfg_.vector_mem_issue_cycles,
            /*write=*/false, 1);
  Vec8 r;
  for (int i = 0; i < kVpuLanes; ++i) {
    r[i] = p[i];
  }
  return r;
}

void HwContext::VStore(double* p, const Vec8& v) {
  ChargeMem(p, sizeof(double) * kVpuLanes, cfg_.vector_mem_issue_cycles,
            /*write=*/true, 1);
  for (int i = 0; i < kVpuLanes; ++i) {
    p[i] = v[i];
  }
}

void HwContext::VStoreMasked(double* p, const Vec8& v, const Mask8& m) {
  ChargeMem(p, sizeof(double) * kVpuLanes, cfg_.vector_mem_issue_cycles,
            /*write=*/true, 1);
  for (int i = 0; i < kVpuLanes; ++i) {
    if (m.lane[static_cast<size_t>(i)]) {
      p[i] = v[i];
    }
  }
}

Vec8 HwContext::VGather(const double* base, const int64_t* idx, const Mask8& m) {
  ++ledger_.counters().gathers;
  ledger_.AddCycles(cfg_.gather_issue_cycles);
  Vec8 r = Vec8::Zero();
  for (int i = 0; i < kVpuLanes; ++i) {
    if (!m.lane[static_cast<size_t>(i)]) {
      continue;
    }
    const double* p = base + idx[i];
    const MemLocation loc = mem_.TranslateEx(p);
    ledger_.AddCycles(
        cache_.TouchRange(loc.addr, sizeof(double), ledger_, IsRemote(loc)));
    r[i] = *p;
  }
  return r;
}

Vec8 HwContext::VGatherAuto(const double* base, const int64_t* idx, const Mask8& m) {
  int active = 0;
  bool contiguous = true;
  for (int i = 0; i < kVpuLanes; ++i) {
    if (!m.lane[static_cast<size_t>(i)]) {
      continue;
    }
    if (active > 0 && idx[i] != idx[0] + i) {
      contiguous = false;
    }
    ++active;
  }
  if (!contiguous || active == 0) {
    return VGather(base, idx, m);
  }
  // One masked vector load.
  ChargeMem(base + idx[0], sizeof(double) * static_cast<size_t>(active),
            cfg_.vector_mem_issue_cycles, /*write=*/false, 1);
  Vec8 r = Vec8::Zero();
  for (int i = 0; i < kVpuLanes; ++i) {
    if (m.lane[static_cast<size_t>(i)]) {
      r[i] = base[idx[i]];
    }
  }
  return r;
}

void HwContext::VScatter(double* base, const int64_t* idx, const Vec8& v,
                         const Mask8& m) {
  ++ledger_.counters().scatters;
  ledger_.AddCycles(cfg_.gather_issue_cycles);
  for (int i = 0; i < kVpuLanes; ++i) {
    if (!m.lane[static_cast<size_t>(i)]) {
      continue;
    }
    double* p = base + idx[i];
    const MemLocation loc = mem_.TranslateEx(p);
    ledger_.AddCycles(
        cache_.TouchRange(loc.addr, sizeof(double), ledger_, IsRemote(loc)));
    *p = v[i];
  }
}

void HwContext::VScatterAccum(double* base, const int64_t* idx, const Vec8& v,
                              const Mask8& m) {
  ++ledger_.counters().scatters;
  ledger_.AddCycles(cfg_.gather_issue_cycles + vpu_op_cycles_);
  for (int i = 0; i < kVpuLanes; ++i) {
    if (!m.lane[static_cast<size_t>(i)]) {
      continue;
    }
    double* p = base + idx[i];
    const MemLocation loc = mem_.TranslateEx(p);
    ledger_.AddCycles(
        cache_.TouchRange(loc.addr, sizeof(double), ledger_, IsRemote(loc)));
    *p += v[i];
  }
}

void HwContext::VScatterAccumConflict(double* base, const int64_t* idx,
                                      const Vec8& v, const Mask8& m) {
  // Count lanes whose target duplicates an earlier active lane: each duplicate
  // forces a serialized retry (Fig. 2 of the paper).
  int conflicts = 0;
  for (int i = 0; i < kVpuLanes; ++i) {
    if (!m.lane[static_cast<size_t>(i)]) {
      continue;
    }
    for (int j = 0; j < i; ++j) {
      if (m.lane[static_cast<size_t>(j)] && idx[j] == idx[i]) {
        ++conflicts;
        break;
      }
    }
  }
  if (conflicts > 0) {
    ledger_.counters().atomics += static_cast<uint64_t>(conflicts);
    ledger_.AddCycles(cfg_.atomic_extra_cycles * conflicts);
  }
  VScatterAccum(base, idx, v, m);
}

Vec8 HwContext::VAdd(const Vec8& a, const Vec8& b) {
  ++ledger_.counters().vpu_ops;
  ledger_.AddCycles(vpu_op_cycles_);
  Vec8 r;
  for (int i = 0; i < kVpuLanes; ++i) {
    r[i] = a[i] + b[i];
  }
  return r;
}

Vec8 HwContext::VSub(const Vec8& a, const Vec8& b) {
  ++ledger_.counters().vpu_ops;
  ledger_.AddCycles(vpu_op_cycles_);
  Vec8 r;
  for (int i = 0; i < kVpuLanes; ++i) {
    r[i] = a[i] - b[i];
  }
  return r;
}

Vec8 HwContext::VMul(const Vec8& a, const Vec8& b) {
  ++ledger_.counters().vpu_ops;
  ledger_.AddCycles(vpu_op_cycles_);
  Vec8 r;
  for (int i = 0; i < kVpuLanes; ++i) {
    r[i] = a[i] * b[i];
  }
  return r;
}

Vec8 HwContext::VFma(const Vec8& a, const Vec8& b, const Vec8& c) {
  ++ledger_.counters().vpu_ops;
  ledger_.AddCycles(vpu_op_cycles_);
  Vec8 r;
  for (int i = 0; i < kVpuLanes; ++i) {
    r[i] = std::fma(a[i], b[i], c[i]);
  }
  return r;
}

Vec8 HwContext::VFloor(const Vec8& a) {
  ++ledger_.counters().vpu_ops;
  ledger_.AddCycles(vpu_op_cycles_);
  Vec8 r;
  for (int i = 0; i < kVpuLanes; ++i) {
    r[i] = std::floor(a[i]);
  }
  return r;
}

Vec8 HwContext::VMin(const Vec8& a, const Vec8& b) {
  ++ledger_.counters().vpu_ops;
  ledger_.AddCycles(vpu_op_cycles_);
  Vec8 r;
  for (int i = 0; i < kVpuLanes; ++i) {
    r[i] = a[i] < b[i] ? a[i] : b[i];
  }
  return r;
}

Vec8 HwContext::VMax(const Vec8& a, const Vec8& b) {
  ++ledger_.counters().vpu_ops;
  ledger_.AddCycles(vpu_op_cycles_);
  Vec8 r;
  for (int i = 0; i < kVpuLanes; ++i) {
    r[i] = a[i] > b[i] ? a[i] : b[i];
  }
  return r;
}

Vec8 HwContext::VBroadcast(double v) {
  ++ledger_.counters().vpu_ops;
  ledger_.AddCycles(vpu_op_cycles_);
  return Vec8::Splat(v);
}

Vec8 HwContext::VPermute(const Vec8& a, const int* perm) {
  ++ledger_.counters().vpu_ops;
  ledger_.AddCycles(vpu_op_cycles_);
  Vec8 r;
  for (int i = 0; i < kVpuLanes; ++i) {
    r[i] = a[perm[i]];
  }
  return r;
}

double HwContext::VReduceSum(const Vec8& a) {
  // log2(8) = 3 shuffle+add steps.
  ledger_.counters().vpu_ops += 3;
  ledger_.AddCycles(3.0 * vpu_op_cycles_);
  double s = 0.0;
  for (int i = 0; i < kVpuLanes; ++i) {
    s += a[i];
  }
  return s;
}

// ---- MPU stream ------------------------------------------------------------

void HwContext::Mopa(MpuTileReg& tile, const Vec8& a, const Vec8& b,
                     int valid_slots) {
  MPIC_CHECK_MSG(cfg_.has_mpu, "MPU kernel executed on a machine without an MPU");
  ++ledger_.counters().mopas;
  ledger_.counters().mopa_valid_slots += static_cast<uint64_t>(valid_slots);
  ledger_.AddCycles(cfg_.mopa_issue_cycles);
  for (int r = 0; r < kMpuTile; ++r) {
    for (int c = 0; c < kMpuTile; ++c) {
      tile.At(r, c) = std::fma(a[r], b[c], tile.At(r, c));
    }
  }
}

void HwContext::MopaZero(MpuTileReg& tile, const Vec8& a, const Vec8& b,
                         int valid_slots) {
  MPIC_CHECK_MSG(cfg_.has_mpu, "MPU kernel executed on a machine without an MPU");
  ++ledger_.counters().mopas;
  ledger_.counters().mopa_valid_slots += static_cast<uint64_t>(valid_slots);
  ledger_.AddCycles(cfg_.mopa_issue_cycles);
  for (int r = 0; r < kMpuTile; ++r) {
    for (int c = 0; c < kMpuTile; ++c) {
      tile.At(r, c) = a[r] * b[c];
    }
  }
}

void HwContext::TileZero(MpuTileReg& tile) {
  MPIC_CHECK_MSG(cfg_.has_mpu, "MPU kernel executed on a machine without an MPU");
  ledger_.AddCycles(cfg_.mpu_vpu_transfer_cycles);
  tile.Zero();
}

Vec8 HwContext::TileReadRow(const MpuTileReg& tile, int row) {
  MPIC_CHECK_MSG(cfg_.has_mpu, "MPU kernel executed on a machine without an MPU");
  ledger_.AddCycles(cfg_.mpu_vpu_transfer_cycles);
  Vec8 r;
  for (int c = 0; c < kMpuTile; ++c) {
    r[c] = tile.At(row, c);
  }
  return r;
}

// ---- Bulk accounting -------------------------------------------------------

void HwContext::ChargeSteal(bool remote) {
  double cycles = cfg_.steal_cost_cycles + cfg_.dram_penalty_cycles;
  if (remote) {
    cycles = cfg_.steal_cost_cycles * cfg_.remote_mem_latency_factor +
             cfg_.remote_line_transfer_cycles + cfg_.dram_penalty_cycles;
  }
  PhaseScope phase(ledger_, Phase::kOther);
  ledger_.AddCycles(cycles);
  ledger_.counters().tasks_stolen += 1;
  if (remote) ledger_.counters().tasks_stolen_remote += 1;
  ledger_.counters().steal_cycles += cycles;
}

void HwContext::ChargeBulk(double flops, double bytes) {
  const double compute_cycles = flops / cfg_.VpuPeakFlopsPerCycle();
  const double mem_cycles = bytes / cfg_.stream_bytes_per_cycle;
  ledger_.AddCycles(compute_cycles > mem_cycles ? compute_cycles : mem_cycles);
}

}  // namespace mpic

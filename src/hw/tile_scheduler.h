// Deterministic cost-guided work-stealing schedule for tile-parallel regions.
//
// BuildTileSchedule turns (n positions, per-position cost estimates) into an
// explicit per-worker execution list: a greedy longest-processing-time (LPT)
// assignment followed by a simulated steal sequence. Everything is computed
// from the estimates alone — no wall-clock, no thread timing — so the same
// inputs always produce the same schedule, the same steal events, and the
// same modeled cycle charges, regardless of how many OpenMP threads actually
// execute the lists. Real threads then run exactly the tile lists the model
// assigned, which keeps physics bit-identical to the static partition (tiles
// stay tile-private; cross-tile merges happen after the region, in tile
// order).
//
// The steal rule is overlap-based: an idle worker steals the tail task of the
// most-loaded queue iff it can *start* the task before the victim would have
// drained its remaining queue (thief_now + steal_cost < victim_now +
// victim_queued). Under LPT the load gap is bounded by one task, so steals
// fire only on genuine granularity remainders; each event charges
// steal_cost_cycles (plus one remote line, added by the caller) and the
// overhead is bounded by steal_cost per event.

#ifndef MPIC_SRC_HW_TILE_SCHEDULER_H_
#define MPIC_SRC_HW_TILE_SCHEDULER_H_

#include <cstdint>
#include <vector>

namespace mpic {

struct TileTask {
  int pos = 0;          // position index in [0, n)
  bool stolen = false;  // true if this worker pulled it from another queue
};

struct TileScheduleResult {
  // worker_tasks[w] is worker w's execution list, in execution order.
  std::vector<std::vector<TileTask>> worker_tasks;
  int64_t total_steals = 0;
  // Modeled finish time of each worker and the resulting makespan, in the
  // same (estimate) units the caller supplied. Informational: the real cycle
  // charges come from each worker's ledger as it executes its list.
  std::vector<double> worker_finish;
  double makespan = 0.0;
};

// Cost-spread ratio (max/min over per-position costs) below which the
// schedule falls back to the contiguous block split: near-uniform costs gain
// nothing from LPT but would lose the per-core cache affinity of a stable
// contiguous partition.
inline constexpr double kNearUniformCostRatio = 1.5;

// Multiplicative width of the planner's cost classes: the LPT assignment
// sees each position's cost rounded to the nearest power of this ratio. The
// steal simulation runs on the raw costs, so the within-class spread the
// planner ignores is exactly the imbalance stealing gets to fix (with exact
// planning costs the LPT schedule never strands a stealable task and the
// steal phase would be dead code); it also makes the assignment insensitive
// to per-step cost jitter within a class, preserving cache affinity.
inline constexpr double kCostBucketRatio = 1.25;

// Builds the deterministic LPT + steal schedule for n positions over
// num_workers workers. `estimates` may be nullptr (or any tile with a
// non-positive / missing estimate), in which case affected positions cost
// 1.0 — with no estimates at all (or a cost spread under
// kNearUniformCostRatio) the schedule is the contiguous block split with no
// steals. `steal_cost` is in the same units as the estimates.
TileScheduleResult BuildTileSchedule(int n, int num_workers,
                                     const double* estimates,
                                     double steal_cost);

}  // namespace mpic

#endif  // MPIC_SRC_HW_TILE_SCHEDULER_H_

// Deterministic cost-guided work-stealing schedule for tile-parallel regions.
//
// BuildTileSchedule turns (n positions, per-position cost estimates) into an
// explicit per-worker execution list: a greedy longest-processing-time (LPT)
// assignment followed by a simulated steal sequence. Everything is computed
// from the estimates alone — no wall-clock, no thread timing — so the same
// inputs always produce the same schedule, the same steal events, and the
// same modeled cycle charges, regardless of how many OpenMP threads actually
// execute the lists. Real threads then run exactly the tile lists the model
// assigned, which keeps physics bit-identical to the static partition (tiles
// stay tile-private; cross-tile merges happen after the region, in tile
// order).
//
// The steal rule is overlap-based: an idle worker steals the tail task of the
// most-loaded queue iff it can *start* the task before the victim would have
// drained its remaining queue (thief_now + steal_cost < victim_now +
// victim_queued). Under LPT the load gap is bounded by one task, so steals
// fire only on genuine granularity remainders; each event charges
// steal_cost_cycles (plus one remote line, added by the caller) and the
// overhead is bounded by steal_cost per event.

#ifndef MPIC_SRC_HW_TILE_SCHEDULER_H_
#define MPIC_SRC_HW_TILE_SCHEDULER_H_

#include <cstdint>
#include <vector>

namespace mpic {

struct TileTask {
  int pos = 0;          // position index in [0, n)
  bool stolen = false;  // true if this worker pulled it from another queue
  bool remote = false;  // stolen across a NUMA domain boundary
};

struct TileScheduleResult {
  // worker_tasks[w] is worker w's execution list, in execution order.
  std::vector<std::vector<TileTask>> worker_tasks;
  int64_t total_steals = 0;
  int64_t total_steals_remote = 0;
  // Modeled finish time of each worker and the resulting makespan, in the
  // same (estimate) units the caller supplied. Informational: the real cycle
  // charges come from each worker's ledger as it executes its list.
  std::vector<double> worker_finish;
  double makespan = 0.0;
};

// NUMA placement inputs for BuildTileSchedule. The defaults reproduce the
// flat-memory, owner-oblivious schedule exactly.
struct TileSchedulePlacement {
  // Worker->domain split parameters (NumaDomainOfWorker semantics).
  int num_domains = 1;
  // Cross-domain steal premium: a steal whose thief and victim sit in
  // different domains costs steal_cost * remote_steal_factor +
  // remote_line_cost instead of steal_cost.
  double remote_steal_factor = 1.0;
  double remote_line_cost = 0.0;
  // Bias the LPT assignment toward each position's previous owner (then the
  // owner's domain) within one planner cost bucket of the least-loaded
  // worker; false keeps the pure least-loaded choice.
  bool sticky = true;
  // Per-position previous owner (node-local worker id; -1 or out-of-range =
  // unknown). May be null. Only consulted when `sticky`.
  const int* prev_owner = nullptr;
};

// Cost-spread ratio (max/min over per-position costs) below which the
// schedule falls back to the contiguous block split: near-uniform costs gain
// nothing from LPT but would lose the per-core cache affinity of a stable
// contiguous partition.
inline constexpr double kNearUniformCostRatio = 1.5;

// Multiplicative width of the planner's cost classes: the LPT assignment
// sees each position's cost rounded to the nearest power of this ratio. The
// steal simulation runs on the raw costs, so the within-class spread the
// planner ignores is exactly the imbalance stealing gets to fix (with exact
// planning costs the LPT schedule never strands a stealable task and the
// steal phase would be dead code); it also makes the assignment insensitive
// to per-step cost jitter within a class, preserving cache affinity.
inline constexpr double kCostBucketRatio = 1.25;

// Builds the deterministic LPT + steal schedule for n positions over
// num_workers workers. `estimates` may be nullptr (or any tile with a
// non-positive / missing estimate), in which case affected positions cost
// 1.0 — with no estimates at all (or a cost spread under
// kNearUniformCostRatio) the schedule is the contiguous block split with no
// steals. `steal_cost` is in the same units as the estimates.
//
// With a TileSchedulePlacement the schedule becomes NUMA-aware: within one
// ×kCostBucketRatio planner bucket of the least-loaded worker the LPT
// assignment prefers a position's previous owner, then any worker in the
// previous owner's domain (least load, lowest id), before falling back to
// the global least-loaded worker — and the steal simulation charges the
// distance-dependent premium above, tagging cross-domain tasks
// TileTask::remote. All tie-breaks are by lowest worker id, so the schedule
// stays a pure function of (estimates, prev_owner, parameters). The
// placement-free overload is byte-identical to the PR 8 schedule.
TileScheduleResult BuildTileSchedule(int n, int num_workers,
                                     const double* estimates,
                                     double steal_cost);
TileScheduleResult BuildTileSchedule(int n, int num_workers,
                                     const double* estimates, double steal_cost,
                                     const TileSchedulePlacement& placement);

}  // namespace mpic

#endif  // MPIC_SRC_HW_TILE_SCHEDULER_H_

// Cycle and event accounting for the modeled machine.
//
// Every modeled operation charges cycles to the ledger under the currently
// active Phase. The bench harness reads phases back to print the paper's
// Total / Preproc / Compute / Sort breakdown (Tables 1-2) and the wall-time
// stacks (Figures 8-10).

#ifndef MPIC_SRC_HW_COST_LEDGER_H_
#define MPIC_SRC_HW_COST_LEDGER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace mpic {

// Phases mirror the paper's kernel decomposition plus the rest of the PIC loop.
enum class Phase : int {
  kPreproc = 0,  // VPU data staging: shape factors, weights, indices
  kCompute,      // deposition arithmetic (VPU or MPU)
  kSort,         // incremental sort + GPMA maintenance + global sorts
  kReduce,       // rhocell -> global J reduction
  kGather,       // field gather (grid -> particle)
  kPush,         // particle push
  kSolver,       // Maxwell field solve
  kCollide,      // binary Monte-Carlo collisions (cell pairing + scattering)
  kHealth,       // resilience sentinels + checkpoint serialization traffic
  kComm,         // modeled inter-rank communication: halo exchange + migration
  kOther,
};
inline constexpr int kNumPhases = 11;

const char* PhaseName(Phase p);

struct LedgerCounters {
  // Instruction/event counts.
  uint64_t scalar_ops = 0;
  uint64_t scalar_mem = 0;
  uint64_t vpu_ops = 0;
  uint64_t vpu_mem = 0;
  uint64_t gathers = 0;
  uint64_t scatters = 0;
  uint64_t mopas = 0;
  // Tile slots carrying useful work, summed over all MOPA issues (each MOPA
  // has kMpuTile^2 = 64 slots). mopa_valid_slots / (64 * mopas) is the mean
  // MPU occupancy — the measured form of the per-kernel utilization figures
  // (25% CIC / 50% QSP direct; window-width dependent for Esirkepov).
  uint64_t mopa_valid_slots = 0;
  uint64_t atomics = 0;
  // Work-stealing events (TileSchedulePolicy::kCostSteal): number of tile
  // tasks a core pulled from another core's queue, and the modeled cycles
  // spent doing so (steal_cost_cycles + one remote line each).
  // tasks_stolen_remote counts the subset pulled across a NUMA domain
  // boundary (charged steal_cost * remote_mem_latency_factor +
  // remote_line_transfer_cycles instead).
  uint64_t tasks_stolen = 0;
  uint64_t tasks_stolen_remote = 0;
  double steal_cycles = 0.0;
  // Cache events.
  uint64_t l1_hits = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_hits = 0;
  uint64_t l2_misses = 0;
  // NUMA events: DRAM-level misses whose line is homed in another domain (a
  // subset of l2_misses), and the extra cycles the remote factor charged for
  // them. remote_lines / (l2_misses - remote_lines) is the remote/local line
  // ratio the placement policy tries to push down.
  uint64_t remote_lines = 0;
  double remote_cycles = 0.0;
};

class CostLedger {
 public:
  void Reset();

  void SetPhase(Phase p) { phase_ = p; }
  Phase phase() const { return phase_; }

  void AddCycles(double c) { cycles_[static_cast<int>(phase_)] += c; }

  double PhaseCycles(Phase p) const { return cycles_[static_cast<int>(p)]; }
  double TotalCycles() const;
  // Cycles across the deposition kernel phases only (Preproc+Compute+Sort+Reduce),
  // matching the paper's "complete deposition kernel time".
  double DepositionCycles() const;

  LedgerCounters& counters() { return counters_; }
  const LedgerCounters& counters() const { return counters_; }

  // Merges one parallel region's per-core ledgers into this one. Cycles are
  // charged as the region's critical path — per phase, the max over cores,
  // matching how cores overlap in time — while instruction and cache event
  // counters sum, so throughput/efficiency accounting still sees all the work.
  void MergeParallel(const std::vector<const CostLedger*>& workers);

  // Merge for a *fused* multi-stage region (several pipeline stages run
  // back-to-back on each core inside one fan-out). Per-phase max would bill
  // each stage at its own slowest core even though a core slow in one stage
  // overlaps another core's slow stage; here the region's wall time is the
  // slowest core's TOTAL cycles, attributed per phase according to that
  // critical core's own stage split — so the phase breakdown still sums
  // exactly to the region's charged cycles. Counters sum over all cores.
  void MergeParallelFused(const std::vector<const CostLedger*>& workers);

  // Human-readable multi-line summary (debugging aid).
  std::string Summary() const;

  // Snapshot of the per-phase cycle array, for ScaleCyclesDelta below.
  const std::array<double, kNumPhases>& phase_cycles() const { return cycles_; }

  // Rescales the cycles charged since `before` (a phase_cycles() snapshot) by
  // `factor`, leaving counters untouched. Used to model serial-but-
  // rank-decomposable work: R ranks each run 1/R of a loop concurrently, so
  // the wall-clock charge is the serial charge divided by R.
  void ScaleCyclesDelta(const std::array<double, kNumPhases>& before,
                        double factor);

 private:
  void SumWorkerCounters(const std::vector<const CostLedger*>& workers);

  Phase phase_ = Phase::kOther;
  std::array<double, kNumPhases> cycles_{};
  LedgerCounters counters_;
};

// RAII helper: sets a phase for a scope, restores the previous phase on exit.
class PhaseScope {
 public:
  PhaseScope(CostLedger& ledger, Phase p) : ledger_(ledger), prev_(ledger.phase()) {
    ledger_.SetPhase(p);
  }
  ~PhaseScope() { ledger_.SetPhase(prev_); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  CostLedger& ledger_;
  Phase prev_;
};

// RAII helper modeling a serial code region whose work is evenly split across
// `ranks` modeled ranks running concurrently: on destruction the cycles
// charged inside the scope are divided by `ranks`. Counters are untouched (the
// work still happens, on some rank). A no-op for ranks <= 1, so call sites can
// wrap unconditionally. Must NOT enclose a parallel region (ParallelForTiles
// already merges rank-concurrent charges) — that would scale twice.
class ScopedRankScale {
 public:
  ScopedRankScale(CostLedger& ledger, int ranks)
      : ledger_(ledger), ranks_(ranks), before_(ledger.phase_cycles()) {}
  ~ScopedRankScale() {
    if (ranks_ > 1) {
      ledger_.ScaleCyclesDelta(before_, 1.0 / static_cast<double>(ranks_));
    }
  }
  ScopedRankScale(const ScopedRankScale&) = delete;
  ScopedRankScale& operator=(const ScopedRankScale&) = delete;

 private:
  CostLedger& ledger_;
  int ranks_;
  std::array<double, kNumPhases> before_;
};

}  // namespace mpic

#endif  // MPIC_SRC_HW_COST_LEDGER_H_

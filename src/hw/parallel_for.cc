#include "src/hw/parallel_for.h"

#include "src/common/check.h"
#include "src/hw/tile_scheduler.h"

namespace mpic {
namespace {

// Shared fan-out: `n` logical positions, position i mapped to a tile index by
// `index_of`. Serial inline on the main context when the machine has one core.
template <typename IndexOf>
void RunRegion(HwContext& hw, int n, const TileBody& body, RegionMerge merge,
               const RegionCosts& costs, const IndexOf& index_of) {
  const int num_workers = hw.num_cores();
  if (costs.measured != nullptr) {
    costs.measured->assign(static_cast<size_t>(n), 0.0);
  }
  if (num_workers <= 1) {
    for (int i = 0; i < n; ++i) {
      if (costs.measured != nullptr) {
        const double before = hw.ledger().TotalCycles();
        body(hw, 0, index_of(i));
        (*costs.measured)[static_cast<size_t>(i)] =
            hw.ledger().TotalCycles() - before;
      } else {
        body(hw, 0, index_of(i));
      }
    }
    return;
  }

  // Region setup (serial): make sure every worker context exists, give it the
  // current memory map and a zeroed per-region ledger. Worker caches are NOT
  // reset — they persist across regions, modeling each core's private cache.
  // Equal version stamps mean neither map mutated since the last snapshot
  // (worker-local in-region registrations bump the worker's stamp, forcing a
  // refresh next region), so the O(num_regions) copy is usually skipped.
  std::vector<const CostLedger*> region_ledgers;
  region_ledgers.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    HwContext& ctx = hw.worker(w);
    ctx.ledger().Reset();
    if (ctx.mem().version() != hw.mem().version()) {
      ctx.mem() = hw.mem();
    }
    region_ledgers.push_back(&ctx.ledger());
  }

  if (hw.cfg().tile_schedule == TileSchedulePolicy::kCostSteal) {
    // Cost-guided schedule: the task lists (and the steal sequence) are
    // computed serially from the estimates before the fan-out, so they are
    // identical for every OpenMP thread count; real threads just execute the
    // lists the model assigned.
    const double* est = nullptr;
    if (costs.estimates != nullptr &&
        costs.estimates->size() == static_cast<size_t>(n)) {
      est = costs.estimates->data();
    }
    const TileScheduleResult sched =
        BuildTileSchedule(n, num_workers, est, hw.cfg().steal_cost_cycles);
#ifdef _OPENMP
#pragma omp parallel for schedule(static, 1)
#endif
    for (int w = 0; w < num_workers; ++w) {
      HwContext& ctx = hw.worker(w);
      for (const TileTask& task : sched.worker_tasks[static_cast<size_t>(w)]) {
        // Steal overhead lands before the measurement window so the per-tile
        // probe records the tile's work, not where it ran.
        if (task.stolen) ctx.ChargeSteal();
        if (costs.measured != nullptr) {
          const double before = ctx.ledger().TotalCycles();
          body(ctx, w, index_of(task.pos));
          (*costs.measured)[static_cast<size_t>(task.pos)] =
              ctx.ledger().TotalCycles() - before;
        } else {
          body(ctx, w, index_of(task.pos));
        }
      }
    }
  } else {
    // Static block partition: worker w always owns the same contiguous
    // position range, regardless of how OpenMP maps workers to threads, so
    // both the physics and the modeled ledger are independent of the real
    // thread count.
#ifdef _OPENMP
#pragma omp parallel for schedule(static, 1)
#endif
    for (int w = 0; w < num_workers; ++w) {
      HwContext& ctx = hw.worker(w);
      const TileRange range = WorkerTileRange(n, num_workers, w);
      for (int i = range.begin; i < range.end; ++i) {
        if (costs.measured != nullptr) {
          const double before = ctx.ledger().TotalCycles();
          body(ctx, w, index_of(i));
          (*costs.measured)[static_cast<size_t>(i)] =
              ctx.ledger().TotalCycles() - before;
        } else {
          body(ctx, w, index_of(i));
        }
      }
    }
  }

  switch (merge) {
    case RegionMerge::kPhaseMax:
      hw.ledger().MergeParallel(region_ledgers);
      break;
    case RegionMerge::kFusedStages:
      hw.ledger().MergeParallelFused(region_ledgers);
      break;
  }
  // Thread wake-up + join barrier for this fan-out (serial on the main
  // context, so the cost lands once per region, not per core).
  PhaseScope phase(hw.ledger(), Phase::kOther);
  hw.ChargeCycles(hw.cfg().parallel_region_fork_join_cycles);
}

}  // namespace

TileRange WorkerTileRange(int n, int num_workers, int worker) {
  MPIC_CHECK(num_workers > 0 && worker >= 0 && worker < num_workers);
  const int base = n / num_workers;
  const int extra = n % num_workers;
  TileRange r;
  r.begin = worker * base + (worker < extra ? worker : extra);
  r.end = r.begin + base + (worker < extra ? 1 : 0);
  return r;
}

void ParallelForTiles(HwContext& hw, int n, const TileBody& body,
                      RegionMerge merge, const RegionCosts& costs) {
  RunRegion(hw, n, body, merge, costs, [](int i) { return i; });
}

void ParallelForTileList(HwContext& hw, const std::vector<int>& tiles,
                         const TileBody& body, RegionMerge merge,
                         const RegionCosts& costs) {
  RunRegion(hw, static_cast<int>(tiles.size()), body, merge, costs,
            [&tiles](int i) { return tiles[static_cast<size_t>(i)]; });
}

}  // namespace mpic

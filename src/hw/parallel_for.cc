#include "src/hw/parallel_for.h"

#include <vector>

#include "src/common/check.h"

namespace mpic {

TileRange WorkerTileRange(int n, int num_workers, int worker) {
  MPIC_CHECK(num_workers > 0 && worker >= 0 && worker < num_workers);
  const int base = n / num_workers;
  const int extra = n % num_workers;
  TileRange r;
  r.begin = worker * base + (worker < extra ? worker : extra);
  r.end = r.begin + base + (worker < extra ? 1 : 0);
  return r;
}

void ParallelForTiles(HwContext& hw, int n, const TileBody& body) {
  const int num_workers = hw.num_cores();
  if (num_workers <= 1) {
    for (int i = 0; i < n; ++i) {
      body(hw, 0, i);
    }
    return;
  }

  // Region setup (serial): make sure every worker context exists, give it the
  // current memory map and a zeroed per-region ledger. Worker caches are NOT
  // reset — they persist across regions, modeling each core's private cache.
  // Equal version stamps mean neither map mutated since the last snapshot
  // (worker-local in-region registrations bump the worker's stamp, forcing a
  // refresh next region), so the O(num_regions) copy is usually skipped.
  std::vector<const CostLedger*> region_ledgers;
  region_ledgers.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    HwContext& ctx = hw.worker(w);
    ctx.ledger().Reset();
    if (ctx.mem().version() != hw.mem().version()) {
      ctx.mem() = hw.mem();
    }
    region_ledgers.push_back(&ctx.ledger());
  }

  // Static block partition: worker w always owns the same contiguous tile
  // range, regardless of how OpenMP maps workers to threads, so both the
  // physics and the modeled ledger are independent of the real thread count.
#ifdef _OPENMP
#pragma omp parallel for schedule(static, 1)
#endif
  for (int w = 0; w < num_workers; ++w) {
    HwContext& ctx = hw.worker(w);
    const TileRange range = WorkerTileRange(n, num_workers, w);
    for (int i = range.begin; i < range.end; ++i) {
      body(ctx, w, i);
    }
  }

  hw.ledger().MergeParallel(region_ledgers);
}

}  // namespace mpic

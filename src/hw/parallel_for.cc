#include "src/hw/parallel_for.h"

#include "src/common/check.h"

namespace mpic {
namespace {

// Shared fan-out: `n` logical positions, position i mapped to a tile index by
// `index_of`. Serial inline on the main context when the machine has one core.
template <typename IndexOf>
void RunRegion(HwContext& hw, int n, const TileBody& body, RegionMerge merge,
               const IndexOf& index_of) {
  const int num_workers = hw.num_cores();
  if (num_workers <= 1) {
    for (int i = 0; i < n; ++i) {
      body(hw, 0, index_of(i));
    }
    return;
  }

  // Region setup (serial): make sure every worker context exists, give it the
  // current memory map and a zeroed per-region ledger. Worker caches are NOT
  // reset — they persist across regions, modeling each core's private cache.
  // Equal version stamps mean neither map mutated since the last snapshot
  // (worker-local in-region registrations bump the worker's stamp, forcing a
  // refresh next region), so the O(num_regions) copy is usually skipped.
  std::vector<const CostLedger*> region_ledgers;
  region_ledgers.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    HwContext& ctx = hw.worker(w);
    ctx.ledger().Reset();
    if (ctx.mem().version() != hw.mem().version()) {
      ctx.mem() = hw.mem();
    }
    region_ledgers.push_back(&ctx.ledger());
  }

  // Static block partition: worker w always owns the same contiguous position
  // range, regardless of how OpenMP maps workers to threads, so both the
  // physics and the modeled ledger are independent of the real thread count.
#ifdef _OPENMP
#pragma omp parallel for schedule(static, 1)
#endif
  for (int w = 0; w < num_workers; ++w) {
    HwContext& ctx = hw.worker(w);
    const TileRange range = WorkerTileRange(n, num_workers, w);
    for (int i = range.begin; i < range.end; ++i) {
      body(ctx, w, index_of(i));
    }
  }

  switch (merge) {
    case RegionMerge::kPhaseMax:
      hw.ledger().MergeParallel(region_ledgers);
      break;
    case RegionMerge::kFusedStages:
      hw.ledger().MergeParallelFused(region_ledgers);
      break;
  }
  // Thread wake-up + join barrier for this fan-out (serial on the main
  // context, so the cost lands once per region, not per core).
  PhaseScope phase(hw.ledger(), Phase::kOther);
  hw.ChargeCycles(hw.cfg().parallel_region_fork_join_cycles);
}

}  // namespace

TileRange WorkerTileRange(int n, int num_workers, int worker) {
  MPIC_CHECK(num_workers > 0 && worker >= 0 && worker < num_workers);
  const int base = n / num_workers;
  const int extra = n % num_workers;
  TileRange r;
  r.begin = worker * base + (worker < extra ? worker : extra);
  r.end = r.begin + base + (worker < extra ? 1 : 0);
  return r;
}

void ParallelForTiles(HwContext& hw, int n, const TileBody& body,
                      RegionMerge merge) {
  RunRegion(hw, n, body, merge, [](int i) { return i; });
}

void ParallelForTileList(HwContext& hw, const std::vector<int>& tiles,
                         const TileBody& body, RegionMerge merge) {
  RunRegion(hw, static_cast<int>(tiles.size()), body, merge,
            [&tiles](int i) { return tiles[static_cast<size_t>(i)]; });
}

}  // namespace mpic

#include "src/hw/parallel_for.h"

#include "src/common/check.h"
#include "src/hw/tile_scheduler.h"

namespace mpic {
namespace {

// One rank's (or the single-rank machine's) share of a fan-out: positions
// [begin, end) of the region run on `node`'s cores. `worker_base` offsets the
// worker index handed to the body so per-worker slots stay globally unique
// across ranks (rank r core w -> slot r * num_cores + w). `est` and
// `prev_owner` point at the node's slice of the region's cost estimates and
// previous-owner ids (null when unavailable); `measured` / `owners` (when
// non-null) are the region-global feedback vectors, written at global
// positions. Serial inline on `node` when it has one core (no fork/join
// charge).
template <typename IndexOf>
void RunRegionOnNode(HwContext& node, int begin, int end, int worker_base,
                     const TileBody& body, RegionMerge merge, const double* est,
                     std::vector<double>* measured, const int32_t* prev_owner,
                     std::vector<int32_t>* owners, const IndexOf& index_of) {
  const int n_local = end - begin;
  const int num_workers = node.num_cores();
  if (num_workers <= 1) {
    for (int i = begin; i < end; ++i) {
      if (owners != nullptr) {
        (*owners)[static_cast<size_t>(i)] = static_cast<int32_t>(worker_base);
      }
      if (measured != nullptr) {
        const double before = node.ledger().TotalCycles();
        body(node, worker_base, index_of(i));
        (*measured)[static_cast<size_t>(i)] =
            node.ledger().TotalCycles() - before;
      } else {
        body(node, worker_base, index_of(i));
      }
    }
    return;
  }

  // Region setup (serial): make sure every worker context exists, give it the
  // current memory map and a zeroed per-region ledger. Worker caches are NOT
  // reset — they persist across regions, modeling each core's private cache.
  // Equal version stamps mean neither map mutated since the last snapshot
  // (worker-local in-region registrations bump the worker's stamp, forcing a
  // refresh next region), so the O(num_regions) copy is usually skipped.
  std::vector<const CostLedger*> region_ledgers;
  region_ledgers.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    HwContext& ctx = node.worker(w);
    ctx.ledger().Reset();
    if (ctx.mem().version() != node.mem().version()) {
      ctx.mem() = node.mem();
    }
    region_ledgers.push_back(&ctx.ledger());
  }

  if (node.cfg().tile_schedule == TileSchedulePolicy::kCostSteal) {
    // Cost-guided schedule: the task lists (and the steal sequence) are
    // computed serially from the estimates before the fan-out, so they are
    // identical for every OpenMP thread count; real threads just execute the
    // lists the model assigned. Previous-owner ids arrive as global worker
    // ids; the scheduler wants node-local ones (a position that last ran on
    // another rank has no local affinity).
    TileSchedulePlacement placement;
    placement.num_domains = node.cfg().num_numa_domains;
    placement.remote_steal_factor = node.cfg().remote_mem_latency_factor;
    placement.remote_line_cost = node.cfg().remote_line_transfer_cycles;
    placement.sticky = node.cfg().sticky_placement;
    std::vector<int> prev_local;
    if (prev_owner != nullptr) {
      prev_local.resize(static_cast<size_t>(n_local));
      for (int i = 0; i < n_local; ++i) {
        const int local = static_cast<int>(prev_owner[i]) - worker_base;
        prev_local[static_cast<size_t>(i)] =
            (local >= 0 && local < num_workers) ? local : -1;
      }
      placement.prev_owner = prev_local.data();
    }
    const TileScheduleResult sched = BuildTileSchedule(
        n_local, num_workers, est, node.cfg().steal_cost_cycles, placement);
    if (owners != nullptr) {
      // Record placements serially from the schedule (not from the execution
      // loop) so the feedback is complete even if a worker list is empty.
      for (int w = 0; w < num_workers; ++w) {
        for (const TileTask& task : sched.worker_tasks[static_cast<size_t>(w)]) {
          (*owners)[static_cast<size_t>(begin + task.pos)] =
              static_cast<int32_t>(worker_base + w);
        }
      }
    }
#ifdef _OPENMP
#pragma omp parallel for schedule(static, 1)
#endif
    for (int w = 0; w < num_workers; ++w) {
      HwContext& ctx = node.worker(w);
      for (const TileTask& task : sched.worker_tasks[static_cast<size_t>(w)]) {
        // Steal overhead lands before the measurement window so the per-tile
        // probe records the tile's work, not where it ran.
        if (task.stolen) ctx.ChargeSteal(task.remote);
        const int pos = begin + task.pos;
        if (measured != nullptr) {
          const double before = ctx.ledger().TotalCycles();
          body(ctx, worker_base + w, index_of(pos));
          (*measured)[static_cast<size_t>(pos)] =
              ctx.ledger().TotalCycles() - before;
        } else {
          body(ctx, worker_base + w, index_of(pos));
        }
      }
    }
  } else {
    // Static block partition: worker w always owns the same contiguous
    // position range, regardless of how OpenMP maps workers to threads, so
    // both the physics and the modeled ledger are independent of the real
    // thread count.
#ifdef _OPENMP
#pragma omp parallel for schedule(static, 1)
#endif
    for (int w = 0; w < num_workers; ++w) {
      HwContext& ctx = node.worker(w);
      const TileRange range = WorkerTileRange(n_local, num_workers, w);
      for (int i = begin + range.begin; i < begin + range.end; ++i) {
        if (owners != nullptr) {
          (*owners)[static_cast<size_t>(i)] =
              static_cast<int32_t>(worker_base + w);
        }
        if (measured != nullptr) {
          const double before = ctx.ledger().TotalCycles();
          body(ctx, worker_base + w, index_of(i));
          (*measured)[static_cast<size_t>(i)] =
              ctx.ledger().TotalCycles() - before;
        } else {
          body(ctx, worker_base + w, index_of(i));
        }
      }
    }
  }

  switch (merge) {
    case RegionMerge::kPhaseMax:
      node.ledger().MergeParallel(region_ledgers);
      break;
    case RegionMerge::kFusedStages:
      node.ledger().MergeParallelFused(region_ledgers);
      break;
  }
  // Thread wake-up + join barrier for this fan-out (serial on the node
  // context, so the cost lands once per region, not per core).
  PhaseScope phase(node.ledger(), Phase::kOther);
  node.ChargeCycles(node.cfg().parallel_region_fork_join_cycles);
}

// Shared fan-out: `n` logical positions, position i mapped to a tile index by
// `index_of`. With one modeled rank this is exactly the single-node fan-out
// (inline on the main context when the machine also has one core). With
// num_ranks > 1 the positions first split contiguously over the ranks — a
// z-slab split whenever the region runs over the full tile grid (tile indices
// linearize z-slowest) — and each rank's HwContext runs its share with its
// own cores, caches, and memory map. Rank ledgers then merge into the main
// ledger with the region's own merge semantics (ranks overlap in time, like
// cores), plus one rank-level launch/barrier charge.
template <typename IndexOf>
void RunRegion(HwContext& hw, int n, const TileBody& body, RegionMerge merge,
               const RegionCosts& costs, const IndexOf& index_of) {
  if (costs.measured != nullptr) {
    costs.measured->assign(static_cast<size_t>(n), 0.0);
  }
  if (costs.owners != nullptr) {
    costs.owners->assign(static_cast<size_t>(n), -1);
  }
  const double* est = nullptr;
  if (costs.estimates != nullptr &&
      costs.estimates->size() == static_cast<size_t>(n)) {
    est = costs.estimates->data();
  }
  const int32_t* prev_own = nullptr;
  if (costs.prev_owners != nullptr &&
      costs.prev_owners->size() == static_cast<size_t>(n)) {
    prev_own = costs.prev_owners->data();
  }
  const int num_ranks = hw.num_ranks();
  if (num_ranks <= 1) {
    RunRegionOnNode(hw, 0, n, 0, body, merge, est, costs.measured, prev_own,
                    costs.owners, index_of);
    return;
  }

  std::vector<const CostLedger*> rank_ledgers;
  rank_ledgers.reserve(static_cast<size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    HwContext& node = hw.rank(r);
    node.ledger().Reset();
    if (node.mem().version() != hw.mem().version()) {
      node.mem() = hw.mem();
    }
    rank_ledgers.push_back(&node.ledger());
  }
  // Ranks execute serially here (real OpenMP threads parallelize the cores
  // inside each rank); the model treats them as concurrent via the merge.
  for (int r = 0; r < num_ranks; ++r) {
    const TileRange range = WorkerTileRange(n, num_ranks, r);
    RunRegionOnNode(hw.rank(r), range.begin, range.end, r * hw.num_cores(),
                    body, merge, est != nullptr ? est + range.begin : nullptr,
                    costs.measured,
                    prev_own != nullptr ? prev_own + range.begin : nullptr,
                    costs.owners, index_of);
  }
  switch (merge) {
    case RegionMerge::kPhaseMax:
      hw.ledger().MergeParallel(rank_ledgers);
      break;
    case RegionMerge::kFusedStages:
      hw.ledger().MergeParallelFused(rank_ledgers);
      break;
  }
  // Rank-level launch + barrier, charged once on the main ledger.
  PhaseScope phase(hw.ledger(), Phase::kOther);
  hw.ChargeCycles(hw.cfg().parallel_region_fork_join_cycles);
}

}  // namespace

TileRange WorkerTileRange(int n, int num_workers, int worker) {
  MPIC_CHECK(num_workers > 0 && worker >= 0 && worker < num_workers);
  const int base = n / num_workers;
  const int extra = n % num_workers;
  TileRange r;
  r.begin = worker * base + (worker < extra ? worker : extra);
  r.end = r.begin + base + (worker < extra ? 1 : 0);
  return r;
}

void ParallelForTiles(HwContext& hw, int n, const TileBody& body,
                      RegionMerge merge, const RegionCosts& costs) {
  RunRegion(hw, n, body, merge, costs, [](int i) { return i; });
}

void ParallelForTileList(HwContext& hw, const std::vector<int>& tiles,
                         const TileBody& body, RegionMerge merge,
                         const RegionCosts& costs) {
  RunRegion(hw, static_cast<int>(tiles.size()), body, merge, costs,
            [&tiles](int i) { return tiles[static_cast<size_t>(i)]; });
}

}  // namespace mpic

// Two-level set-associative cache model with LRU replacement.
//
// The model works on *logical* addresses supplied by the MemMap (stable across
// runs, independent of the host heap), at cache-line granularity. It returns the
// extra cycles an access costs and records hit/miss events in the ledger.

#ifndef MPIC_SRC_HW_CACHE_MODEL_H_
#define MPIC_SRC_HW_CACHE_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/hw/cost_ledger.h"
#include "src/hw/machine_config.h"

namespace mpic {

// One inclusive cache level.
class CacheLevel {
 public:
  CacheLevel(const CacheLevelConfig& cfg, int line_bytes);

  // Looks up (and on hit, refreshes LRU for) the line containing addr.
  bool Access(uint64_t line_addr);
  // Installs the line, evicting LRU if needed.
  void Fill(uint64_t line_addr);
  void Reset();

  int num_sets() const { return num_sets_; }

 private:
  int ways_;
  int num_sets_;
  // tags_[set * ways_ + way]; kInvalidTag marks an empty way.
  std::vector<uint64_t> tags_;
  // lru_[set * ways_ + way]: larger = more recently used.
  std::vector<uint32_t> lru_;
  std::vector<uint32_t> clock_;  // per-set LRU clock

  static constexpr uint64_t kInvalidTag = ~uint64_t{0};
};

class CacheModel {
 public:
  explicit CacheModel(const MachineConfig& cfg);

  // Models one access to the line containing `addr`. Returns the extra penalty
  // cycles (0 for an L1 hit; discounted by the stride prefetcher when the line
  // continues a tracked sequential stream) and records events in `ledger`.
  // `remote` marks the line as homed in another NUMA domain: a miss that goes
  // all the way to DRAM then pays remote_mem_latency_factor on the (post-
  // discount) penalty, with the surcharge counted in remote_lines /
  // remote_cycles. Cache hits cost the same either way — only the memory
  // round-trip crosses the interconnect.
  double Touch(uint64_t addr, CostLedger& ledger, bool remote = false);

  // Models an access spanning [addr, addr+bytes): touches every line in range.
  double TouchRange(uint64_t addr, uint64_t bytes, CostLedger& ledger,
                    bool remote = false);

  void Reset();

 private:
  bool PrefetchHit(uint64_t line);

  CacheLevel l1_;
  CacheLevel l2_;
  double l2_penalty_;
  double dram_penalty_;
  double prefetch_factor_;
  double remote_factor_;
  // Next-line stride prefetcher state (LRU-replaced stream trackers).
  std::vector<uint64_t> stream_next_;
  std::vector<uint64_t> stream_lru_;
  uint64_t stream_clock_ = 0;
};

}  // namespace mpic

#endif  // MPIC_SRC_HW_CACHE_MODEL_H_

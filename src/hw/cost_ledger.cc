#include "src/hw/cost_ledger.h"

#include <sstream>

namespace mpic {

const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kPreproc:
      return "preproc";
    case Phase::kCompute:
      return "compute";
    case Phase::kSort:
      return "sort";
    case Phase::kReduce:
      return "reduce";
    case Phase::kGather:
      return "gather";
    case Phase::kPush:
      return "push";
    case Phase::kSolver:
      return "solver";
    case Phase::kCollide:
      return "collide";
    case Phase::kHealth:
      return "health";
    case Phase::kComm:
      return "comm";
    case Phase::kOther:
      return "other";
  }
  return "?";
}

void CostLedger::Reset() {
  cycles_.fill(0.0);
  counters_ = LedgerCounters{};
  phase_ = Phase::kOther;
}

void CostLedger::MergeParallel(const std::vector<const CostLedger*>& workers) {
  for (int p = 0; p < kNumPhases; ++p) {
    double critical = 0.0;
    for (const CostLedger* w : workers) {
      critical = w->cycles_[p] > critical ? w->cycles_[p] : critical;
    }
    cycles_[static_cast<size_t>(p)] += critical;
  }
  SumWorkerCounters(workers);
}

void CostLedger::MergeParallelFused(const std::vector<const CostLedger*>& workers) {
  // Critical core = max total cycles; ties resolve to the lowest worker index
  // so the attribution is deterministic for any thread schedule.
  const CostLedger* critical = nullptr;
  double best = -1.0;
  for (const CostLedger* w : workers) {
    const double total = w->TotalCycles();
    if (total > best) {
      best = total;
      critical = w;
    }
  }
  if (critical != nullptr) {
    for (int p = 0; p < kNumPhases; ++p) {
      cycles_[static_cast<size_t>(p)] += critical->cycles_[static_cast<size_t>(p)];
    }
  }
  SumWorkerCounters(workers);
}

void CostLedger::SumWorkerCounters(const std::vector<const CostLedger*>& workers) {
  for (const CostLedger* w : workers) {
    const LedgerCounters& c = w->counters_;
    counters_.scalar_ops += c.scalar_ops;
    counters_.scalar_mem += c.scalar_mem;
    counters_.vpu_ops += c.vpu_ops;
    counters_.vpu_mem += c.vpu_mem;
    counters_.gathers += c.gathers;
    counters_.scatters += c.scatters;
    counters_.mopas += c.mopas;
    counters_.mopa_valid_slots += c.mopa_valid_slots;
    counters_.atomics += c.atomics;
    counters_.tasks_stolen += c.tasks_stolen;
    counters_.tasks_stolen_remote += c.tasks_stolen_remote;
    counters_.steal_cycles += c.steal_cycles;
    counters_.l1_hits += c.l1_hits;
    counters_.l1_misses += c.l1_misses;
    counters_.l2_hits += c.l2_hits;
    counters_.l2_misses += c.l2_misses;
    counters_.remote_lines += c.remote_lines;
    counters_.remote_cycles += c.remote_cycles;
  }
}

void CostLedger::ScaleCyclesDelta(const std::array<double, kNumPhases>& before,
                                  double factor) {
  for (int p = 0; p < kNumPhases; ++p) {
    const double delta = cycles_[static_cast<size_t>(p)] - before[static_cast<size_t>(p)];
    cycles_[static_cast<size_t>(p)] = before[static_cast<size_t>(p)] + delta * factor;
  }
}

double CostLedger::TotalCycles() const {
  double total = 0.0;
  for (double c : cycles_) {
    total += c;
  }
  return total;
}

double CostLedger::DepositionCycles() const {
  return PhaseCycles(Phase::kPreproc) + PhaseCycles(Phase::kCompute) +
         PhaseCycles(Phase::kSort) + PhaseCycles(Phase::kReduce);
}

std::string CostLedger::Summary() const {
  std::ostringstream out;
  out << "cycles:";
  for (int i = 0; i < kNumPhases; ++i) {
    out << " " << PhaseName(static_cast<Phase>(i)) << "=" << cycles_[i];
  }
  out << "\nops: scalar=" << counters_.scalar_ops << " vpu=" << counters_.vpu_ops
      << " mopa=" << counters_.mopas << " mopa_valid=" << counters_.mopa_valid_slots
      << " gathers=" << counters_.gathers
      << " scatters=" << counters_.scatters << " atomics=" << counters_.atomics
      << " stolen=" << counters_.tasks_stolen
      << " (remote=" << counters_.tasks_stolen_remote << ")"
      << " steal_cyc=" << counters_.steal_cycles;
  out << "\ncache: l1h=" << counters_.l1_hits << " l1m=" << counters_.l1_misses
      << " l2h=" << counters_.l2_hits << " l2m=" << counters_.l2_misses;
  // Remote/local DRAM line split (remote_lines is a subset of l2_misses).
  const uint64_t local_lines = counters_.l2_misses - counters_.remote_lines;
  out << "\nnuma: remote_lines=" << counters_.remote_lines
      << " local_lines=" << local_lines
      << " rem/loc=" << (local_lines > 0
                             ? static_cast<double>(counters_.remote_lines) /
                                   static_cast<double>(local_lines)
                             : 0.0)
      << " remote_cyc=" << counters_.remote_cycles;
  return out.str();
}

}  // namespace mpic

#include "src/hw/tile_scheduler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/hw/machine_config.h"

namespace mpic {

TileScheduleResult BuildTileSchedule(int n, int num_workers,
                                     const double* estimates,
                                     double steal_cost) {
  return BuildTileSchedule(n, num_workers, estimates, steal_cost,
                           TileSchedulePlacement{});
}

TileScheduleResult BuildTileSchedule(int n, int num_workers,
                                     const double* estimates, double steal_cost,
                                     const TileSchedulePlacement& placement) {
  if (num_workers < 1) num_workers = 1;
  TileScheduleResult result;
  result.worker_tasks.resize(static_cast<size_t>(num_workers));
  result.worker_finish.assign(static_cast<size_t>(num_workers), 0.0);
  if (n <= 0) return result;

  // Clamp estimates to >= 1.0 so empty tiles still occupy a slot in the
  // schedule and a missing/zero estimate degenerates to unit cost.
  std::vector<double> cost(static_cast<size_t>(n), 1.0);
  if (estimates != nullptr) {
    for (int i = 0; i < n; ++i) {
      if (estimates[i] > 1.0) cost[static_cast<size_t>(i)] = estimates[i];
    }
  }

  // Near-uniform fallback: when the cost spread is small, the contiguous
  // block split is already within one task of optimal, and it preserves each
  // worker's cache affinity for its tile range across steps — LPT's permuted
  // assignment would churn tiles between per-core caches for no balance gain.
  // The ratio test is computed from the estimates alone, so the choice stays
  // deterministic. This is also the no-estimates path (all costs 1.0).
  double cmin = cost[0], cmax = cost[0];
  for (double c : cost) {
    cmin = c < cmin ? c : cmin;
    cmax = c > cmax ? c : cmax;
  }
  if (cmax <= kNearUniformCostRatio * cmin) {
    for (int w = 0; w < num_workers; ++w) {
      const int base = n / num_workers;
      const int extra = n % num_workers;
      const int begin = w * base + (w < extra ? w : extra);
      const int end = begin + base + (w < extra ? 1 : 0);
      for (int i = begin; i < end; ++i) {
        result.worker_tasks[static_cast<size_t>(w)].push_back(TileTask{i, false});
        result.worker_finish[static_cast<size_t>(w)] += cost[static_cast<size_t>(i)];
      }
    }
    for (double f : result.worker_finish) {
      result.makespan = f > result.makespan ? f : result.makespan;
    }
    return result;
  }

  // Greedy LPT over *quantized* cost classes: the planner buckets costs into
  // kCostBucketRatio multiplicative classes and assigns positions in
  // descending class (index ascending within a class) onto the worker with
  // the least planned load (lowest id on ties). Planning coarsely is what a
  // real runtime does with noisy measurements — and it is what leaves the
  // steal phase real work: with exact costs, greedy LPT provably never
  // strands a stealable task (the victim always starts its last task before
  // any thief drains), so stealing would be dead code. The within-bucket
  // spread the planner ignores becomes remainder imbalance in raw-cost
  // space, which the simulated steal phase then polishes. Bucketing also
  // stabilizes the assignment across steps: per-tile cycle jitter within
  // +/-12% of a bucket keeps the same schedule, preserving per-core cache
  // affinity. Each worker's queue keeps assignment order, so the front is
  // its biggest task and the tail its smallest — the cheapest to migrate.
  const double log_bucket = std::log(kCostBucketRatio);
  std::vector<double> planned(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const long long b = std::llround(std::log(cost[static_cast<size_t>(i)]) /
                                     log_bucket);
    planned[static_cast<size_t>(i)] =
        std::exp(static_cast<double>(b) * log_bucket);
  }
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return planned[static_cast<size_t>(a)] > planned[static_cast<size_t>(b)];
  });

  // NUMA domain of each worker (all 0 on a flat machine).
  std::vector<int> domain(static_cast<size_t>(num_workers), 0);
  for (int w = 0; w < num_workers; ++w) {
    domain[static_cast<size_t>(w)] =
        NumaDomainOfWorker(w, num_workers, placement.num_domains);
  }

  std::vector<std::vector<int>> queue(static_cast<size_t>(num_workers));
  std::vector<double> planned_load(static_cast<size_t>(num_workers), 0.0);
  std::vector<double> queued(static_cast<size_t>(num_workers), 0.0);
  for (int pos : order) {
    int best = 0;
    for (int w = 1; w < num_workers; ++w) {
      if (planned_load[static_cast<size_t>(w)] <
          planned_load[static_cast<size_t>(best)]) {
        best = w;
      }
    }
    int chosen = best;
    // Sticky placement: the planner already tolerates one bucket of cost
    // noise, so any worker whose planned load sits within one bucket ratio of
    // the minimum is "as good as least-loaded". Inside that slack, prefer the
    // position's previous owner (its pages and cached lines live there), then
    // the least-loaded worker of the owner's domain (lowest id on ties) —
    // crossing domains only when the whole domain is saturated. Tie-breaks
    // are by worker id, so the choice is a pure function of the inputs.
    if (placement.sticky && placement.prev_owner != nullptr) {
      const int po = placement.prev_owner[pos];
      if (po >= 0 && po < num_workers) {
        const double slack =
            planned_load[static_cast<size_t>(best)] * kCostBucketRatio;
        if (planned_load[static_cast<size_t>(po)] <= slack) {
          chosen = po;
        } else {
          int cand = -1;
          for (int w = 0; w < num_workers; ++w) {
            if (domain[static_cast<size_t>(w)] != domain[static_cast<size_t>(po)] ||
                planned_load[static_cast<size_t>(w)] > slack) {
              continue;
            }
            if (cand < 0 || planned_load[static_cast<size_t>(w)] <
                                planned_load[static_cast<size_t>(cand)]) {
              cand = w;
            }
          }
          if (cand >= 0) chosen = cand;
        }
      }
    }
    queue[static_cast<size_t>(chosen)].push_back(pos);
    planned_load[static_cast<size_t>(chosen)] += planned[static_cast<size_t>(pos)];
    queued[static_cast<size_t>(chosen)] += cost[static_cast<size_t>(pos)];
  }

  // Deterministic event simulation. Advance the worker with the smallest
  // modeled time (lowest id on ties): it pops the front of its own queue, or
  // — once empty — tries to steal the tail of the queue with the most
  // remaining work. The steal fires iff the thief can start the task before
  // the victim would have drained its remaining queue; the right-hand side
  // max_v (t_v + queued_v) only decreases over time, so once the test fails
  // for an idle worker it fails forever and the worker retires.
  std::vector<double> t(static_cast<size_t>(num_workers), 0.0);
  std::vector<size_t> front(static_cast<size_t>(num_workers), 0);
  std::vector<size_t> back(static_cast<size_t>(num_workers), 0);
  std::vector<bool> done(static_cast<size_t>(num_workers), false);
  for (int w = 0; w < num_workers; ++w) {
    back[static_cast<size_t>(w)] = queue[static_cast<size_t>(w)].size();
  }
  int active = num_workers;
  while (active > 0) {
    int w = -1;
    for (int c = 0; c < num_workers; ++c) {
      if (done[static_cast<size_t>(c)]) continue;
      if (w < 0 || t[static_cast<size_t>(c)] < t[static_cast<size_t>(w)]) {
        w = c;
      }
    }
    const size_t sw = static_cast<size_t>(w);
    if (front[sw] < back[sw]) {
      const int pos = queue[sw][front[sw]++];
      result.worker_tasks[sw].push_back(TileTask{pos, false});
      t[sw] += cost[static_cast<size_t>(pos)];
      queued[sw] -= cost[static_cast<size_t>(pos)];
      continue;
    }
    int victim = -1;
    for (int v = 0; v < num_workers; ++v) {
      const size_t sv = static_cast<size_t>(v);
      if (front[sv] >= back[sv]) continue;
      if (victim < 0 || queued[sv] > queued[static_cast<size_t>(victim)]) {
        victim = v;
      }
    }
    if (victim >= 0) {
      const size_t sv = static_cast<size_t>(victim);
      // Distance-dependent premium: a cross-domain steal's CAS round-trip
      // crosses the interconnect and the task descriptor's line migrates once.
      const bool remote = domain[sw] != domain[sv];
      const double this_steal_cost =
          remote ? steal_cost * placement.remote_steal_factor +
                       placement.remote_line_cost
                 : steal_cost;
      if (t[sw] + this_steal_cost < t[sv] + queued[sv]) {
        const int pos = queue[sv][--back[sv]];
        queued[sv] -= cost[static_cast<size_t>(pos)];
        result.worker_tasks[sw].push_back(TileTask{pos, true, remote});
        t[sw] += this_steal_cost + cost[static_cast<size_t>(pos)];
        ++result.total_steals;
        if (remote) ++result.total_steals_remote;
        continue;
      }
    }
    done[sw] = true;
    --active;
  }

  result.worker_finish = t;
  result.makespan = *std::max_element(t.begin(), t.end());
  return result;
}

}  // namespace mpic

// Plain data types for the modeled SIMD register file: an 8-lane FP64 vector
// (one 512-bit VPU register) and an 8x8 FP64 MPU accumulator tile.
//
// These carry *values only*. Cycle costs are charged by HwContext when its
// operation methods are used; the arithmetic helpers here are free so that
// tests and reductions can manipulate values without touching the ledger.

#ifndef MPIC_SRC_HW_VEC_H_
#define MPIC_SRC_HW_VEC_H_

#include <array>
#include <cstddef>

#include "src/hw/machine_config.h"

namespace mpic {

struct Vec8 {
  std::array<double, kVpuLanes> lane{};

  double& operator[](int i) { return lane[static_cast<size_t>(i)]; }
  double operator[](int i) const { return lane[static_cast<size_t>(i)]; }

  static Vec8 Splat(double v) {
    Vec8 r;
    r.lane.fill(v);
    return r;
  }
  static Vec8 Zero() { return Splat(0.0); }
};

// Lane mask for predicated operations (the VPU supports predication; the MPU
// does not — that asymmetry is the reason for the hybrid pipeline).
struct Mask8 {
  std::array<bool, kVpuLanes> lane{};

  static Mask8 FirstN(int n) {
    Mask8 m;
    for (int i = 0; i < kVpuLanes; ++i) {
      m.lane[static_cast<size_t>(i)] = i < n;
    }
    return m;
  }
  static Mask8 All() { return FirstN(kVpuLanes); }
  int PopCount() const {
    int n = 0;
    for (bool b : lane) {
      n += b ? 1 : 0;
    }
    return n;
  }
};

// 8x8 FP64 accumulator tile (row-major).
struct MpuTileReg {
  std::array<double, kMpuTile * kMpuTile> c{};

  double& At(int row, int col) {
    return c[static_cast<size_t>(row) * kMpuTile + static_cast<size_t>(col)];
  }
  double At(int row, int col) const {
    return c[static_cast<size_t>(row) * kMpuTile + static_cast<size_t>(col)];
  }
  void Zero() { c.fill(0.0); }
};

}  // namespace mpic

#endif  // MPIC_SRC_HW_VEC_H_

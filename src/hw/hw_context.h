// HwContext: the modeled LX2 core that every MatrixPIC kernel programs against.
//
// It plays the role the real hardware's intrinsics play in the paper: kernels
// issue scalar, VPU (8-lane FP64 SIMD) and MPU (8x8 FP64 outer-product tile)
// operations. Each operation
//   (1) computes the real FP64 result, and
//   (2) charges modeled cycles to the CostLedger under the active Phase,
//       consulting the CacheModel for every modeled memory access.
//
// This is the substitution for the paper's LX2 CPU (DESIGN.md Sec. 2): results
// are numerically real and validated against scalar references, while "time" is
// the modeled cycle count.

#ifndef MPIC_SRC_HW_HW_CONTEXT_H_
#define MPIC_SRC_HW_HW_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hw/cache_model.h"
#include "src/hw/cost_ledger.h"
#include "src/hw/machine_config.h"
#include "src/hw/mem_map.h"
#include "src/hw/vec.h"

namespace mpic {

class HwContext {
 public:
  explicit HwContext(const MachineConfig& cfg = MachineConfig::Lx2());

  const MachineConfig& cfg() const { return cfg_; }
  CostLedger& ledger() { return ledger_; }
  const CostLedger& ledger() const { return ledger_; }
  CacheModel& cache() { return cache_; }
  MemMap& mem() { return mem_; }

  // Registers an array with the deterministic logical address space. Kernels
  // register every array they model accesses to (particles, J, rhocells, GPMA
  // index arrays) once per configuration. A region created here is homed in
  // this context's NUMA domain (model first-touch) — or in the scoped home
  // domain when a ScopedHomeDomain is active, which also re-homes regions
  // that already exist (an explicit placement decision, not a mere touch).
  void RegisterRegion(const void* p, size_t bytes) {
    mem_.Register(p, bytes, RegistrationHome());
  }
  // Keyed registration for arrays that may reallocate over the run (particle
  // SoA streams, staging scratch): see MemMap::RegisterKeyed.
  void RegisterRegionKeyed(uint64_t key, const void* p, size_t bytes) {
    mem_.RegisterKeyed(key, p, bytes, RegistrationHome());
  }
  // Re-homes the region containing `p` (see MemMap::SetHomeDomain).
  void SetHomeDomain(const void* p, int domain) { mem_.SetHomeDomain(p, domain); }

  // NUMA domain this context models (0 for the main/rank contexts; workers
  // get theirs from NumaDomainOfWorker at creation).
  int numa_domain() const { return numa_domain_; }

  // Resets modeled state between bench configurations (cold caches, zero
  // cycles). Region registrations survive; call mem().Clear() to drop them.
  void ResetModel();

  // Empties every modeled cache (this context, its workers, its ranks) without
  // touching ledgers or registrations. Checkpoint model-sync points call this
  // so a saving run and its restored twin resume from identical (cold) cache
  // state; see runtime/checkpoint.h.
  void FlushModelCaches();

  // ---- Scalar stream -------------------------------------------------------

  // n scalar ALU/FPU micro-ops.
  void ScalarOps(int n);
  // Scalar load of one double (value returned; cache modeled).
  double LoadScalar(const double* p);
  void StoreScalar(double* p, double v);
  // Scalar read-modify-write: *p += v (the canonical deposition update).
  void AccumScalar(double* p, double v);
  // Same, through an atomic (charges cfg.atomic_extra_cycles).
  void AtomicAccumScalar(double* p, double v);
  // Models a scalar-width access to non-double data (indices, flags).
  void TouchRead(const void* p, size_t bytes);
  void TouchWrite(const void* p, size_t bytes);

  // ---- VPU stream ----------------------------------------------------------

  // Contiguous vector load/store of kVpuLanes doubles.
  Vec8 VLoad(const double* p);
  void VStore(double* p, const Vec8& v);
  void VStoreMasked(double* p, const Vec8& v, const Mask8& m);

  // Gather/scatter with 64-bit lane indices relative to `base` (elements).
  Vec8 VGather(const double* base, const int64_t* idx, const Mask8& m);
  // Indexed load that detects a contiguous ascending run over the active lanes
  // (the post-global-sort common case) and charges vector-load cost instead of
  // gather cost. Sorted kernels use this; the paper's point that "unordered
  // particle access leads to weaker compute" falls out of it.
  Vec8 VGatherAuto(const double* base, const int64_t* idx, const Mask8& m);
  void VScatter(double* base, const int64_t* idx, const Vec8& v, const Mask8& m);
  // Scatter-accumulate: base[idx[i]] += v[i]. When two active lanes target the
  // same element, the accumulation is serialized and charged extra — this is
  // the Fig. 2 intra-vector conflict pathology.
  void VScatterAccumConflict(double* base, const int64_t* idx, const Vec8& v,
                             const Mask8& m);
  // Conflict-free variant used by kernels that guarantee disjoint lanes
  // (e.g. rhocell updates): no conflict detection cost, plain scatter cost.
  void VScatterAccum(double* base, const int64_t* idx, const Vec8& v,
                     const Mask8& m);

  // Register-to-register arithmetic (one VPU instruction each).
  Vec8 VAdd(const Vec8& a, const Vec8& b);
  Vec8 VSub(const Vec8& a, const Vec8& b);
  Vec8 VMul(const Vec8& a, const Vec8& b);
  Vec8 VFma(const Vec8& a, const Vec8& b, const Vec8& c);  // a*b + c
  Vec8 VFloor(const Vec8& a);
  Vec8 VMin(const Vec8& a, const Vec8& b);
  Vec8 VMax(const Vec8& a, const Vec8& b);
  Vec8 VBroadcast(double v);
  // Lane permute/pack used for MPU operand assembly (charged like one op).
  Vec8 VPermute(const Vec8& a, const int* perm);
  // In-register horizontal sum (log2(lanes) ops charged).
  double VReduceSum(const Vec8& a);

  // ---- MPU stream ----------------------------------------------------------

  // C += a (x) b over the full tile. One MOPA instruction. `valid_slots` is
  // the number of tile slots carrying useful work for this issue (<= 64); it
  // only feeds the occupancy counter, never the cycle charge — an MOPA costs
  // the same whether its operands are fully or partially packed.
  void Mopa(MpuTileReg& tile, const Vec8& a, const Vec8& b,
            int valid_slots = kMpuTile * kMpuTile);
  // C = a (x) b: MOPA with accumulator clear, as offered by real matrix ISAs
  // (AMX TILEZERO-fused issue, SME `fmopa` with the ZA slice zeroed). Same
  // issue cost as Mopa; saves the separate TileZero when a tile group starts
  // a fresh accumulation.
  void MopaZero(MpuTileReg& tile, const Vec8& a, const Vec8& b,
                int valid_slots = kMpuTile * kMpuTile);
  // Zeroes the tile accumulators.
  void TileZero(MpuTileReg& tile);
  // Moves one tile row into a VPU register (tile -> vector file transfer).
  Vec8 TileReadRow(const MpuTileReg& tile, int row);

  // ---- Bulk accounting -----------------------------------------------------

  // Roofline-style charge for regular streaming kernels (the Maxwell solver):
  // cycles = max(flops / vpu_peak, bytes / stream_bytes_per_cycle). Used where
  // per-access cache simulation adds cost without changing any conclusion.
  void ChargeBulk(double flops, double bytes);

  // Direct cycle charge (e.g. a modeled fixed-cost runtime call).
  void ChargeCycles(double cycles) { ledger_.AddCycles(cycles); }

  // Charges one successful work-steal on this (worker) context: the deque
  // CAS + coherence round-trip (cfg.steal_cost_cycles) plus one remote line
  // for the migrated queue entry (cfg.dram_penalty_cycles), under
  // Phase::kOther, and bumps the tasks_stolen / steal_cycles counters.
  // `remote` marks a steal across a NUMA domain boundary: the CAS round-trip
  // scales by cfg.remote_mem_latency_factor and the descriptor line pays
  // cfg.remote_line_transfer_cycles on top, counted in tasks_stolen_remote.
  void ChargeSteal(bool remote = false);

  // Seconds corresponding to the ledger's total cycles at the modeled clock.
  double TotalSeconds() const { return cfg_.CyclesToSeconds(ledger_.TotalCycles()); }

  // ---- Multi-core execution (see src/hw/parallel_for.h) -------------------

  // Modeled core count (>= 1).
  int num_cores() const { return cfg_.num_cores < 1 ? 1 : cfg_.num_cores; }

  // Per-core context used by ParallelForTiles when num_cores() > 1. Lazily
  // created; workers share the machine parameters but own a private ledger
  // (per-region scratch, merged by MergeParallel) and a private cache that
  // persists across regions, modeling that core's cache hierarchy. Workers
  // receive a snapshot of this context's memory map at each region start.
  HwContext& worker(int w);

  // ---- Multi-rank execution (see src/hw/rank_topology.h) ------------------

  // Modeled rank count (>= 1).
  int num_ranks() const { return cfg_.num_ranks < 1 ? 1 : cfg_.num_ranks; }

  // Per-rank context used by tile-parallel fan-outs when num_ranks() > 1.
  // Lazily created; a rank keeps the full per-rank core count (its own
  // workers fan out inside it) but is itself single-rank, and owns a private
  // ledger, cache hierarchy, and memory map — the node one level out from the
  // core model. Ranks receive a snapshot of this context's memory map at each
  // region start, mirroring the worker protocol.
  HwContext& rank(int r);

 private:
  friend class ScopedHomeDomain;

  void ChargeMem(const void* p, size_t bytes, double issue_cycles, bool write,
                 uint64_t count_as_vpu_mem);
  // Home-domain intent for registrations issued by this context: the scoped
  // placement domain when one is active (authoritative), this context's own
  // domain otherwise (first-touch).
  HomeDomain RegistrationHome() const {
    if (scoped_home_domain_ >= 0) {
      return HomeDomain{scoped_home_domain_, /*authoritative=*/true};
    }
    return HomeDomain{numa_domain_, /*authoritative=*/false};
  }
  // True when an access to `loc` crosses a domain boundary on a DRAM miss.
  bool IsRemote(const MemLocation& loc) const {
    return cfg_.num_numa_domains > 1 && loc.home_domain >= 0 &&
           loc.home_domain != numa_domain_;
  }

  MachineConfig cfg_;
  CostLedger ledger_;
  CacheModel cache_;
  MemMap mem_;
  double vpu_op_cycles_;
  double scalar_op_cycles_;
  int numa_domain_ = 0;
  int scoped_home_domain_ = -1;
  std::vector<std::unique_ptr<HwContext>> workers_;
  std::vector<std::unique_ptr<HwContext>> ranks_;
};

// RAII placement scope: registrations issued through `ctx` while the scope is
// live home their regions in `domain` — authoritatively, i.e. regions that
// already exist are re-homed too. Used by the per-step region refresh to make
// a tile's SoA/scratch pages follow the tile's scheduled owner. A negative
// domain is a no-op scope (registrations keep first-touch semantics).
class ScopedHomeDomain {
 public:
  ScopedHomeDomain(HwContext& ctx, int domain)
      : ctx_(ctx), prev_(ctx.scoped_home_domain_) {
    ctx_.scoped_home_domain_ = domain;
  }
  ~ScopedHomeDomain() { ctx_.scoped_home_domain_ = prev_; }
  ScopedHomeDomain(const ScopedHomeDomain&) = delete;
  ScopedHomeDomain& operator=(const ScopedHomeDomain&) = delete;

 private:
  HwContext& ctx_;
  int prev_;
};

}  // namespace mpic

#endif  // MPIC_SRC_HW_HW_CONTEXT_H_

// Machine description for the modeled CPU (the paper's "LX2") and its memory
// hierarchy. All deposition / sorting kernels execute through this model: the
// arithmetic is real FP64, while the cycle costs come from these parameters.
//
// The parameters marked "Sec. 5.1" encode the facts the paper states about the
// LX2: 512-bit FP64 VPUs, 8x8 FP64 MPU tiles, MOPA at ~4x the FLOP rate of the
// VPU MLA instruction, >=1.3 GHz clock. The cache and penalty numbers are
// conventional values for a server-class core; they are knobs of the model, not
// claims about the real chip.

#ifndef MPIC_SRC_HW_MACHINE_CONFIG_H_
#define MPIC_SRC_HW_MACHINE_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace mpic {

// Number of FP64 lanes in one VPU vector register (512 bits).
inline constexpr int kVpuLanes = 8;
// MPU tile is kMpuTile x kMpuTile FP64 accumulators.
inline constexpr int kMpuTile = 8;
// Cache line size in bytes (one VPU vector).
inline constexpr int kCacheLineBytes = 64;

struct CacheLevelConfig {
  size_t size_bytes = 0;
  int ways = 0;
  // Effective extra cycles charged when an access is served by this level
  // (values are post-overlap estimates for an out-of-order core, not raw
  // load-to-use latencies).
  double hit_penalty_cycles = 0.0;
};

// How tile-parallel fan-outs (src/hw/parallel_for.h) map positions to the
// modeled cores.
enum class TileSchedulePolicy : int {
  // Fixed contiguous block split over the cores (the seed model). Optimal for
  // uniform workloads, pathological for clumped ones: the core owning the
  // dense tiles carries the whole critical path.
  kStatic = 0,
  // Cost-guided task queues: positions are ordered by per-tile cycle
  // estimates fed back from the previous step, assigned greedily to the
  // least-loaded core (longest-processing-time), and idle cores steal from
  // the tail of the most-loaded queue, paying steal_cost_cycles plus one
  // remote-queue line per steal. The whole schedule — assignment and steal
  // sequence — is computed from the estimates alone (src/hw/tile_scheduler.h),
  // so it is bit-deterministic and independent of OpenMP timing.
  kCostSteal = 1,
};

struct MachineConfig {
  // --- Core (Sec. 5.1) ---
  double freq_ghz = 1.3;
  // Modeled core count. Tile-parallel stages (gather/push, boundaries, the
  // per-tile sort scan, deposition staging + kernel) are partitioned statically
  // over this many cores, each with a private ledger and cache; region cycles
  // merge into the main ledger as the critical path (max over cores) with
  // event counters summed. 1 reproduces the single-core seed model exactly.
  int num_cores = 1;
  // Scalar ALU micro-ops retired per cycle (superscalar width for the modeled
  // non-SIMD instruction stream).
  double scalar_ops_per_cycle = 3.0;
  // VPU FMA pipes; each pipe retires one 8-lane FP64 instruction per cycle.
  int vpu_pipes = 2;
  // Cycles between successive MOPA issues on one MPU pipe. One MOPA performs
  // kMpuTile^2 = 64 FMAs; at an issue interval of 2 this is 64 FMA / 2 cycles
  // = 32 FMA/cycle = 4x the 8 FMA/cycle of a single VPU MLA pipe (Sec. 5.1).
  double mopa_issue_cycles = 2.0;
  // Cycles to move one vector register between the MPU tile file and the VPU
  // register file (tile row extraction).
  double mpu_vpu_transfer_cycles = 1.0;

  // --- Memory issue costs ---
  // Port cost of one scalar load/store (two AGU/store ports plus store
  // forwarding make scalar memory ops cheaper than half a cycle each).
  double scalar_mem_issue_cycles = 0.25;
  // Port cost of one contiguous vector load/store.
  double vector_mem_issue_cycles = 0.5;
  // Issue cost of an 8-lane gather/scatter instruction (microcoded).
  double gather_issue_cycles = 4.0;
  // Extra serialization charged per atomic read-modify-write.
  double atomic_extra_cycles = 12.0;
  // Fork/join cost of one tile-parallel region (thread wake-up + barrier),
  // charged once per fan-out on the main ledger when num_cores > 1. Makes the
  // modeled cost of a step depend on how many separate sweeps it launches —
  // the fused two-pass pipeline pays it twice per species, the legacy
  // five-sweep path five times.
  double parallel_region_fork_join_cycles = 400.0;

  // --- Memory hierarchy ---
  CacheLevelConfig l1{32 * 1024, 8, 0.0};
  CacheLevelConfig l2{1024 * 1024, 16, 4.0};
  // Effective post-overlap DRAM penalty per missing line.
  double dram_penalty_cycles = 35.0;
  // Hardware stride prefetcher: number of tracked streams and the residual
  // fraction of the miss penalty paid when a line was predicted (sequential
  // next-line access within a tracked stream).
  int prefetch_streams = 32;
  double prefetch_factor = 0.15;
  // Sustainable streaming bandwidth per core, used only by bulk (roofline)
  // accounting for regular stencil sweeps.
  double stream_bytes_per_cycle = 16.0;

  // --- Multi-rank model ---
  // Modeled rank count. At > 1 the global grid shards into contiguous z-slab
  // domains of tiles (src/hw/rank_topology.h); each rank owns `num_cores`
  // cores with private caches, ledgers, and a private MemMap one level out
  // from the core model. Tile-parallel regions fan out rank-first, then
  // core-within-rank; inter-rank traffic (field/J halo exchange, particle
  // migration) is charged under Phase::kComm via the link parameters below.
  // 1 reproduces the single-rank model exactly.
  int num_ranks = 1;
  // Fixed per-message latency of the modeled inter-rank link (software stack
  // + wire), in core cycles.
  double rank_link_latency_cycles = 600.0;
  // Sustained link bandwidth in bytes per core cycle (~10 GB/s at 1.3 GHz —
  // a commodity interconnect, deliberately slower than the
  // stream_bytes_per_cycle memory path).
  double rank_link_bytes_per_cycle = 8.0;

  // --- NUMA model ---
  // Number of NUMA domains the modeled cores split into (contiguous split,
  // like the rank split of tiles: NumaDomainOfWorker below). Each MemMap
  // region carries a home domain (first-touch at registration by the
  // registering worker's domain; tile-owned SoA/scratch is re-homed to the
  // tile's scheduled owner each step). A cache miss that goes to DRAM in a
  // non-local home domain pays remote_mem_latency_factor on the miss penalty,
  // counted in the remote_lines / remote_cycles ledger counters. 1 reproduces
  // the flat-memory model exactly.
  int num_numa_domains = 1;
  // Multiplier on the DRAM miss penalty for a line homed in another domain
  // (typical 1.5-2x for a two-socket interconnect hop). Also multiplies
  // steal_cost_cycles for a cross-domain steal.
  double remote_mem_latency_factor = 2.0;
  // Extra cycles per cross-domain steal: the migrated task descriptor's line
  // crosses the interconnect once (on top of the dram_penalty_cycles every
  // steal pays for the queue entry).
  double remote_line_transfer_cycles = 60.0;

  // --- Tile scheduling ---
  // How tile-parallel regions map positions to cores; see TileSchedulePolicy.
  TileSchedulePolicy tile_schedule = TileSchedulePolicy::kStatic;
  // Modeled cost of one successful steal under kCostSteal: CAS on the victim's
  // deque tail plus the coherence round-trip to pull the task descriptor. The
  // thief additionally pays one remote line (dram_penalty_cycles) for the
  // migrated queue entry; both are charged on the thief's ledger under
  // Phase::kOther and counted in tasks_stolen / steal_cycles. Stealing across
  // a NUMA domain boundary costs steal_cost_cycles * remote_mem_latency_factor
  // + remote_line_transfer_cycles instead.
  double steal_cost_cycles = 120.0;
  // Under kCostSteal, bias the LPT assignment toward each tile's previous
  // owner (then toward the previous owner's NUMA domain) whenever the choice
  // stays within one planner cost bucket of the least-loaded worker. Keeps a
  // tile's pages and cached lines where they already are; false restores the
  // owner-oblivious PR 8 assignment (the naive-LPT ablation arm).
  bool sticky_placement = true;

  // Peak FP64 FLOP/s of the VPU complex on one core: pipes * lanes * 2 (FMA).
  double VpuPeakFlopsPerCycle() const {
    return static_cast<double>(vpu_pipes) * kVpuLanes * 2.0;
  }
  // Peak FP64 FLOP/s of the MPU on one core: one tile of FMAs per issue.
  double MpuPeakFlopsPerCycle() const {
    return kMpuTile * kMpuTile * 2.0 / mopa_issue_cycles;
  }
  // Theoretical peak used for efficiency accounting: the MPU path (the paper
  // computes "% of theoretical peak" against the unit actually targeted).
  double PeakFlopsPerCycle() const { return MpuPeakFlopsPerCycle(); }

  double CyclesToSeconds(double cycles) const { return cycles / (freq_ghz * 1e9); }

  // The modeled LX2 core (defaults above).
  static MachineConfig Lx2() { return MachineConfig{}; }

  // An LX2 chip with `cores` identical cores (shared machine parameters,
  // private per-core caches in the model).
  static MachineConfig Lx2MultiCore(int cores) {
    MachineConfig cfg;
    cfg.num_cores = cores;
    return cfg;
  }

  // An LX2 chip with `cores` cores and the cost-guided work-stealing tile
  // scheduler instead of the static partition.
  static MachineConfig Lx2MultiCoreStealing(int cores) {
    MachineConfig cfg;
    cfg.num_cores = cores;
    cfg.tile_schedule = TileSchedulePolicy::kCostSteal;
    return cfg;
  }

  // An LX2 node with `cores` cores split over `domains` NUMA domains, running
  // the cost-guided work-stealing scheduler (the configuration where placement
  // matters; kStatic callers can flip tile_schedule back).
  static MachineConfig Lx2MultiCoreNuma(int cores, int domains) {
    MachineConfig cfg;
    cfg.num_cores = cores;
    cfg.num_numa_domains = domains;
    cfg.tile_schedule = TileSchedulePolicy::kCostSteal;
    return cfg;
  }

  // A modeled cluster of `ranks` LX2 nodes, each with `cores` cores;
  // `stealing` selects the cost-guided work-stealing tile scheduler inside
  // each rank.
  static MachineConfig Lx2Cluster(int ranks, int cores, bool stealing = false) {
    MachineConfig cfg;
    cfg.num_ranks = ranks;
    cfg.num_cores = cores;
    if (stealing) {
      cfg.tile_schedule = TileSchedulePolicy::kCostSteal;
    }
    return cfg;
  }

  // A VPU-only machine: identical except kernels may not use the MPU. Used by
  // tests to confirm MPU kernels fail loudly without an MPU.
  static MachineConfig Lx2VpuOnly() {
    MachineConfig cfg;
    cfg.has_mpu = false;
    return cfg;
  }

  bool has_mpu = true;
};

// NUMA domain of a node-local worker id: the cores split contiguously over
// the domains with the remainder spread over the leading domains, mirroring
// how tiles split over ranks (WorkerTileRange). Degenerate inputs (one
// domain, one core, more domains than cores) clamp sanely so call sites can
// use it unconditionally.
inline int NumaDomainOfWorker(int worker, int num_cores, int num_domains) {
  if (num_domains <= 1 || num_cores <= 1 || worker <= 0) return 0;
  if (num_domains > num_cores) num_domains = num_cores;
  if (worker >= num_cores) worker = num_cores - 1;
  const int base = num_cores / num_domains;
  const int extra = num_cores % num_domains;
  const int leading = extra * (base + 1);
  if (worker < leading) return worker / (base + 1);
  return extra + (worker - leading) / base;
}

}  // namespace mpic

#endif  // MPIC_SRC_HW_MACHINE_CONFIG_H_

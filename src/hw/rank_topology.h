// Modeled multi-rank domain decomposition (the node level above the cores).
//
// A RankSet shards the global tile grid into contiguous z-slab domains, one
// per modeled rank. The split is over tile indices, which linearize as
// t = tx + ntx*(ty + nty*tz) (z slowest), so a contiguous block of tile
// indices IS a z-slab — the same decomposition Athena++'s meshblock tree
// produces for a 1D z ordering, and the layout POLAR-PIC co-designs its
// communication around. Simulation enforces ntz % num_ranks == 0 so every
// rank owns an integer number of full tile planes.
//
// The physics executes exactly as in the single-rank model (one address
// space, one global grid): ranks exist in the cost model. Tile-parallel
// fan-outs split rank-first (src/hw/parallel_for.cc), halo exchange and
// particle migration charge Phase::kComm through the link parameters in
// MachineConfig (src/core/rank_comm.h).

#ifndef MPIC_SRC_HW_RANK_TOPOLOGY_H_
#define MPIC_SRC_HW_RANK_TOPOLOGY_H_

#include <vector>

#include "src/hw/machine_config.h"

namespace mpic {

// One rank's share of the global tile grid: the half-open tile-index range
// [tile_begin, tile_end) covering tile planes [tz_begin, tz_end).
struct RankDomain {
  int tile_begin = 0;
  int tile_end = 0;
  int tz_begin = 0;
  int tz_end = 0;
  int num_tiles() const { return tile_end - tile_begin; }
};

class RankSet {
 public:
  RankSet() = default;
  // Builds the z-slab decomposition of an ntx x nty x ntz tile grid over
  // cfg.num_ranks ranks. Requires ntz % num_ranks == 0 when num_ranks > 1.
  RankSet(const MachineConfig& cfg, int ntx, int nty, int ntz);

  int num_ranks() const { return static_cast<int>(domains_.size()); }
  const RankDomain& domain(int r) const { return domains_[static_cast<size_t>(r)]; }

  // Owning rank of a global tile index.
  int RankOfTile(int tile) const {
    const int tz = tile / tiles_per_plane_;
    return tz / planes_per_rank_;
  }

  int ntx() const { return ntx_; }
  int nty() const { return nty_; }
  int ntz() const { return ntz_; }

 private:
  std::vector<RankDomain> domains_;
  int ntx_ = 0, nty_ = 0, ntz_ = 0;
  int tiles_per_plane_ = 1;
  int planes_per_rank_ = 1;
};

// Modeled cycles to move `bytes` over the inter-rank link: fixed per-message
// latency plus the serialization time at link bandwidth.
inline double LinkTransferCycles(const MachineConfig& cfg, double bytes) {
  return cfg.rank_link_latency_cycles + bytes / cfg.rank_link_bytes_per_cycle;
}

}  // namespace mpic

#endif  // MPIC_SRC_HW_RANK_TOPOLOGY_H_

#include "src/solver/moving_window.h"

namespace mpic {
namespace {

void ShiftArrayZ(FieldArray& f) {
  const int ng = f.ng();
  for (int k = -ng; k <= f.nz() + ng - 1; ++k) {
    for (int j = -ng; j <= f.ny() + ng; ++j) {
      for (int i = -ng; i <= f.nx() + ng; ++i) {
        f.At(i, j, k) = f.At(i, j, k + 1);
      }
    }
  }
  // Fresh head plane(s).
  for (int j = -ng; j <= f.ny() + ng; ++j) {
    for (int i = -ng; i <= f.nx() + ng; ++i) {
      f.At(i, j, f.nz() + ng) = 0.0;
    }
  }
}

}  // namespace

void ShiftWindowZ(HwContext& hw, FieldSet& fields) {
  PhaseScope phase(hw.ledger(), Phase::kSolver);
  FieldArray* arrays[] = {&fields.ex, &fields.ey, &fields.ez, &fields.bx,
                          &fields.by, &fields.bz, &fields.jx, &fields.jy,
                          &fields.jz, &fields.rho};
  for (FieldArray* f : arrays) {
    ShiftArrayZ(*f);
  }
  fields.geom.z0 += fields.geom.dz;
  // Streaming copy of ten arrays.
  const double bytes =
      static_cast<double>(fields.ex.size()) * sizeof(double) * 2.0 * 10.0;
  hw.ChargeBulk(0.0, bytes);
}

}  // namespace mpic

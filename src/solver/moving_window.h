// Moving window support for laser-wakefield simulations (warpx.do_moving_window
// along z in the paper's Table 4).
//
// When the window advances by one cell, every field array shifts down one
// z-plane (the trailing plane leaves the domain, a fresh zeroed plane enters at
// the head) and the domain origin moves by dz. The simulation driver is
// responsible for dropping particles that fall behind the new origin and for
// injecting plasma into the freshly exposed slab.

#ifndef MPIC_SRC_SOLVER_MOVING_WINDOW_H_
#define MPIC_SRC_SOLVER_MOVING_WINDOW_H_

#include "src/grid/field_set.h"
#include "src/hw/hw_context.h"

namespace mpic {

// Shifts all field components one cell towards -z in index space (window moves
// +z) and advances fields.geom.z0 by dz. Charged to Phase::kSolver.
void ShiftWindowZ(HwContext& hw, FieldSet& fields);

// Tracks when the window should advance given the window velocity (usually c).
class MovingWindow {
 public:
  MovingWindow(double velocity, double dz) : velocity_(velocity), dz_(dz) {}

  // Advances the window clock by dt; returns the number of whole cells the
  // window front crossed (0 almost always, occasionally 1).
  int StepsToShift(double dt) {
    accumulated_ += velocity_ * dt;
    int shifts = 0;
    while (accumulated_ >= dz_) {
      accumulated_ -= dz_;
      ++shifts;
    }
    return shifts;
  }

  // Sub-cell window-front progress [m] — checkpoint/restart state: the next
  // shift step depends on it, so a restored run must carry it over exactly.
  double accumulated() const { return accumulated_; }
  void set_accumulated(double a) { accumulated_ = a; }

 private:
  double velocity_;
  double dz_;
  double accumulated_ = 0.0;
};

}  // namespace mpic

#endif  // MPIC_SRC_SOLVER_MOVING_WINDOW_H_

#include "src/solver/maxwell_solver.h"

#include <cmath>

#include "src/common/check.h"
#include "src/particles/species.h"

namespace mpic {
namespace {

// CKC transverse smoothing weights for cubic cells (Cowan et al. 2013):
// center, edge, corner of the 3x3 transverse neighborhood.
constexpr double kCkcAlpha = 7.0 / 12.0;
constexpr double kCkcBeta = 1.0 / 12.0;
constexpr double kCkcGamma = 1.0 / 48.0;

}  // namespace

MaxwellSolver::MaxwellSolver(SolverKind kind, const GridGeometry& geom)
    : kind_(kind), geom_(geom) {}

double MaxwellSolver::StableCourant() const {
  if (kind_ == SolverKind::kCkc) {
    return 1.0;
  }
  return 1.0 / std::sqrt(3.0);
}

void MaxwellSolver::UpdateB(HwContext& hw, FieldSet& fields, double dt_half) const {
  PhaseScope phase(hw.ledger(), Phase::kSolver);
  fields.ex.FillGuardsPeriodic();
  fields.ey.FillGuardsPeriodic();
  fields.ez.FillGuardsPeriodic();
  const double cy = dt_half / geom_.dy;
  const double cz = dt_half / geom_.dz;
  const double cx = dt_half / geom_.dx;
  const bool ckc = kind_ == SolverKind::kCkc;
  const FieldArray& ex = fields.ex;
  const FieldArray& ey = fields.ey;
  const FieldArray& ez = fields.ez;

  // Forward difference of `f` along `axis` at (i,j,k): f(shift +1) - f(..);
  // CKC averages the difference over the 3x3 transverse offsets. Faraday's
  // law carries the whole CKC extension (see the header): the leapfrog
  // dispersion only sees the product of the two curl symbols, and keeping
  // Ampère's curl plain Yee keeps the solver charge-conserving.
  auto diff = [&](const FieldArray& f, int axis, int i, int j, int k) -> double {
    auto raw = [&](int ii, int jj, int kk) -> double {
      switch (axis) {
        case 0:
          return f.At(ii + 1, jj, kk) - f.At(ii, jj, kk);
        case 1:
          return f.At(ii, jj + 1, kk) - f.At(ii, jj, kk);
        default:
          return f.At(ii, jj, kk + 1) - f.At(ii, jj, kk);
      }
    };
    if (!ckc) {
      return raw(i, j, k);
    }
    // Transverse axes (the two != axis).
    double acc = kCkcAlpha * raw(i, j, k);
    auto at_offset = [&](int m, int n) -> double {
      switch (axis) {
        case 0:
          return raw(i, j + m, k + n);
        case 1:
          return raw(i + m, j, k + n);
        default:
          return raw(i + m, j + n, k);
      }
    };
    acc += kCkcBeta * (at_offset(1, 0) + at_offset(-1, 0) + at_offset(0, 1) +
                       at_offset(0, -1));
    acc += kCkcGamma * (at_offset(1, 1) + at_offset(1, -1) + at_offset(-1, 1) +
                        at_offset(-1, -1));
    return acc;
  };

  for (int k = 0; k < geom_.nz; ++k) {
    for (int j = 0; j < geom_.ny; ++j) {
      for (int i = 0; i < geom_.nx; ++i) {
        fields.bx.At(i, j, k) -=
            cy * diff(ez, 1, i, j, k) - cz * diff(ey, 2, i, j, k);
        fields.by.At(i, j, k) -=
            cz * diff(ex, 2, i, j, k) - cx * diff(ez, 0, i, j, k);
        fields.bz.At(i, j, k) -=
            cx * diff(ey, 0, i, j, k) - cy * diff(ex, 1, i, j, k);
      }
    }
  }
  fields.bx.FillGuardsPeriodic();
  fields.by.FillGuardsPeriodic();
  fields.bz.FillGuardsPeriodic();
  const double cells = static_cast<double>(geom_.NumCells());
  const double flops_per_cell = ckc ? 108.0 : 18.0;
  hw.ChargeBulk(cells * flops_per_cell, cells * 8.0 * (ckc ? 55.0 : 15.0));
}

void MaxwellSolver::UpdateE(HwContext& hw, FieldSet& fields, double dt,
                            bool staggered_j) const {
  PhaseScope phase(hw.ledger(), Phase::kSolver);
  fields.bx.FillGuardsPeriodic();
  fields.by.FillGuardsPeriodic();
  fields.bz.FillGuardsPeriodic();
  fields.jx.FillGuardsPeriodic();
  fields.jy.FillGuardsPeriodic();
  fields.jz.FillGuardsPeriodic();

  const double c2 = kSpeedOfLight * kSpeedOfLight;
  const double cdx = c2 * dt / geom_.dx;
  const double cdy = c2 * dt / geom_.dy;
  const double cdz = c2 * dt / geom_.dz;
  const double jfac = dt / kEpsilon0;

  const FieldArray& bx = fields.bx;
  const FieldArray& by = fields.by;
  const FieldArray& bz = fields.bz;
  const FieldArray& jx = fields.jx;
  const FieldArray& jy = fields.jy;
  const FieldArray& jz = fields.jz;
  for (int k = 0; k < geom_.nz; ++k) {
    for (int j = 0; j < geom_.ny; ++j) {
      for (int i = 0; i < geom_.nx; ++i) {
        // Direct deposition: node-centered J averaged to the staggered E
        // locations. Esirkepov: entry (i,j,k) of jx already holds
        // Jx(i+1/2, j, k), exactly where Ex lives.
        const double jx_s =
            staggered_j ? jx.At(i, j, k)
                        : 0.5 * (jx.At(i, j, k) + jx.At(i + 1, j, k));
        const double jy_s =
            staggered_j ? jy.At(i, j, k)
                        : 0.5 * (jy.At(i, j, k) + jy.At(i, j + 1, k));
        const double jz_s =
            staggered_j ? jz.At(i, j, k)
                        : 0.5 * (jz.At(i, j, k) + jz.At(i, j, k + 1));
        fields.ex.At(i, j, k) +=
            cdy * (bz.At(i, j, k) - bz.At(i, j - 1, k)) -
            cdz * (by.At(i, j, k) - by.At(i, j, k - 1)) - jfac * jx_s;
        fields.ey.At(i, j, k) +=
            cdz * (bx.At(i, j, k) - bx.At(i, j, k - 1)) -
            cdx * (bz.At(i, j, k) - bz.At(i - 1, j, k)) - jfac * jy_s;
        fields.ez.At(i, j, k) +=
            cdx * (by.At(i, j, k) - by.At(i - 1, j, k)) -
            cdy * (bx.At(i, j, k) - bx.At(i, j - 1, k)) - jfac * jz_s;
      }
    }
  }
  fields.ex.FillGuardsPeriodic();
  fields.ey.FillGuardsPeriodic();
  fields.ez.FillGuardsPeriodic();
  const double cells = static_cast<double>(geom_.NumCells());
  hw.ChargeBulk(cells * 30.0, cells * 8.0 * 20.0);
}

}  // namespace mpic

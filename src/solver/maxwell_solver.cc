#include "src/solver/maxwell_solver.h"

#include <cmath>

#include "src/common/check.h"
#include "src/particles/species.h"

namespace mpic {
namespace {

// CKC transverse smoothing weights for cubic cells (Cowan et al. 2013):
// center, edge, corner of the 3x3 transverse neighborhood.
constexpr double kCkcAlpha = 7.0 / 12.0;
constexpr double kCkcBeta = 1.0 / 12.0;
constexpr double kCkcGamma = 1.0 / 48.0;

}  // namespace

MaxwellSolver::MaxwellSolver(SolverKind kind, const GridGeometry& geom)
    : kind_(kind), geom_(geom) {}

double MaxwellSolver::StableCourant() const {
  if (kind_ == SolverKind::kCkc) {
    return 1.0;
  }
  return 1.0 / std::sqrt(3.0);
}

void MaxwellSolver::UpdateB(HwContext& hw, FieldSet& fields, double dt_half) const {
  PhaseScope phase(hw.ledger(), Phase::kSolver);
  fields.ex.FillGuardsPeriodic();
  fields.ey.FillGuardsPeriodic();
  fields.ez.FillGuardsPeriodic();
  const double cy = dt_half / geom_.dy;
  const double cz = dt_half / geom_.dz;
  const double cx = dt_half / geom_.dx;
  FieldArray& ex = fields.ex;
  FieldArray& ey = fields.ey;
  FieldArray& ez = fields.ez;
  for (int k = 0; k < geom_.nz; ++k) {
    for (int j = 0; j < geom_.ny; ++j) {
      for (int i = 0; i < geom_.nx; ++i) {
        fields.bx.At(i, j, k) -= cy * (ez.At(i, j + 1, k) - ez.At(i, j, k)) -
                                 cz * (ey.At(i, j, k + 1) - ey.At(i, j, k));
        fields.by.At(i, j, k) -= cz * (ex.At(i, j, k + 1) - ex.At(i, j, k)) -
                                 cx * (ez.At(i + 1, j, k) - ez.At(i, j, k));
        fields.bz.At(i, j, k) -= cx * (ey.At(i + 1, j, k) - ey.At(i, j, k)) -
                                 cy * (ex.At(i, j + 1, k) - ex.At(i, j, k));
      }
    }
  }
  fields.bx.FillGuardsPeriodic();
  fields.by.FillGuardsPeriodic();
  fields.bz.FillGuardsPeriodic();
  const double cells = static_cast<double>(geom_.NumCells());
  hw.ChargeBulk(cells * 18.0, cells * 8.0 * 15.0);
}

void MaxwellSolver::UpdateE(HwContext& hw, FieldSet& fields, double dt) const {
  PhaseScope phase(hw.ledger(), Phase::kSolver);
  fields.bx.FillGuardsPeriodic();
  fields.by.FillGuardsPeriodic();
  fields.bz.FillGuardsPeriodic();
  fields.jx.FillGuardsPeriodic();
  fields.jy.FillGuardsPeriodic();
  fields.jz.FillGuardsPeriodic();

  const double c2 = kSpeedOfLight * kSpeedOfLight;
  const double cdx = c2 * dt / geom_.dx;
  const double cdy = c2 * dt / geom_.dy;
  const double cdz = c2 * dt / geom_.dz;
  const double jfac = dt / kEpsilon0;
  const bool ckc = kind_ == SolverKind::kCkc;

  FieldArray& bx = fields.bx;
  FieldArray& by = fields.by;
  FieldArray& bz = fields.bz;

  // Smoothed difference of `f` along `axis` at (i,j,k): f(..) - f(shift -1 on
  // axis); CKC averages the difference over the 3x3 transverse offsets.
  auto diff = [&](const FieldArray& f, int axis, int i, int j, int k) -> double {
    auto raw = [&](int ii, int jj, int kk) -> double {
      switch (axis) {
        case 0:
          return f.At(ii, jj, kk) - f.At(ii - 1, jj, kk);
        case 1:
          return f.At(ii, jj, kk) - f.At(ii, jj - 1, kk);
        default:
          return f.At(ii, jj, kk) - f.At(ii, jj, kk - 1);
      }
    };
    if (!ckc) {
      return raw(i, j, k);
    }
    // Transverse axes (the two != axis).
    double acc = kCkcAlpha * raw(i, j, k);
    auto at_offset = [&](int m, int n) -> double {
      switch (axis) {
        case 0:
          return raw(i, j + m, k + n);
        case 1:
          return raw(i + m, j, k + n);
        default:
          return raw(i + m, j + n, k);
      }
    };
    acc += kCkcBeta * (at_offset(1, 0) + at_offset(-1, 0) + at_offset(0, 1) +
                       at_offset(0, -1));
    acc += kCkcGamma * (at_offset(1, 1) + at_offset(1, -1) + at_offset(-1, 1) +
                        at_offset(-1, -1));
    return acc;
  };

  const FieldArray& jx = fields.jx;
  const FieldArray& jy = fields.jy;
  const FieldArray& jz = fields.jz;
  for (int k = 0; k < geom_.nz; ++k) {
    for (int j = 0; j < geom_.ny; ++j) {
      for (int i = 0; i < geom_.nx; ++i) {
        // Node-centered J averaged to the staggered E locations.
        const double jx_s = 0.5 * (jx.At(i, j, k) + jx.At(i + 1, j, k));
        const double jy_s = 0.5 * (jy.At(i, j, k) + jy.At(i, j + 1, k));
        const double jz_s = 0.5 * (jz.At(i, j, k) + jz.At(i, j, k + 1));
        fields.ex.At(i, j, k) += cdy * diff(bz, 1, i, j, k) -
                                 cdz * diff(by, 2, i, j, k) - jfac * jx_s;
        fields.ey.At(i, j, k) += cdz * diff(bx, 2, i, j, k) -
                                 cdx * diff(bz, 0, i, j, k) - jfac * jy_s;
        fields.ez.At(i, j, k) += cdx * diff(by, 0, i, j, k) -
                                 cdy * diff(bx, 1, i, j, k) - jfac * jz_s;
      }
    }
  }
  fields.ex.FillGuardsPeriodic();
  fields.ey.FillGuardsPeriodic();
  fields.ez.FillGuardsPeriodic();
  const double cells = static_cast<double>(geom_.NumCells());
  const double flops_per_cell = ckc ? 120.0 : 30.0;
  hw.ChargeBulk(cells * flops_per_cell, cells * 8.0 * (ckc ? 60.0 : 20.0));
}

}  // namespace mpic

// Electromagnetic field solvers on the staggered Yee mesh.
//
// Two curl discretizations are provided, matching the paper's WarpX setup
// (Sec. 5.2 uses the CKC solver with warpx.cfl = 1.0):
//
//   kYee — the classic Yee FDTD solver. In 3D it is stable only up to
//     c*dt <= dx/sqrt(3) for cubic cells.
//   kCkc — the Cole-Karkkainen-Cowan solver: the B-field differences entering
//     the E update are smoothed over the 3x3 transverse neighborhood with
//     weights alpha = 7/12, beta = 1/12, gamma = 1/48 (cubic cells), which
//     extends the stability limit to c*dt <= dx — exactly why the paper can
//     run at CFL 1.0.
//
// Layout convention: all component arrays are allocated node-shaped (see
// FieldSet); the half-cell staggering is carried by the index arithmetic.
// Array entry (i,j,k) of Ex holds Ex(i+1/2, j, k), of Bx holds
// Bx(i, j+1/2, k+1/2), etc. Node-centered J is averaged onto the E-staggering
// inside the E update.

#ifndef MPIC_SRC_SOLVER_MAXWELL_SOLVER_H_
#define MPIC_SRC_SOLVER_MAXWELL_SOLVER_H_

#include "src/grid/field_set.h"
#include "src/hw/hw_context.h"

namespace mpic {

enum class SolverKind {
  kYee,
  kCkc,
};

class MaxwellSolver {
 public:
  MaxwellSolver(SolverKind kind, const GridGeometry& geom);

  // Advances B by dt_half using the curl of E (call twice per step around the
  // E update, leapfrog style). Fills periodic guards internally.
  void UpdateB(HwContext& hw, FieldSet& fields, double dt_half) const;

  // Advances E by dt using the (possibly smoothed) curl of B and the current
  // density J (node-centered; averaged to the staggered E locations).
  void UpdateE(HwContext& hw, FieldSet& fields, double dt) const;

  SolverKind kind() const { return kind_; }

  // Largest stable c*dt/dx for cubic cells under this solver.
  double StableCourant() const;

 private:
  SolverKind kind_;
  GridGeometry geom_;
};

}  // namespace mpic

#endif  // MPIC_SRC_SOLVER_MAXWELL_SOLVER_H_

// Electromagnetic field solvers on the staggered Yee mesh.
//
// Two curl discretizations are provided, matching the paper's WarpX setup
// (Sec. 5.2 uses the CKC solver with warpx.cfl = 1.0):
//
//   kYee — the classic Yee FDTD solver. In 3D it is stable only up to
//     c*dt <= dx/sqrt(3) for cubic cells.
//   kCkc — the Cole-Karkkainen-Cowan solver: the E-field differences entering
//     the B update (Faraday's law) are smoothed over the 3x3 transverse
//     neighborhood with weights alpha = 7/12, beta = 1/12, gamma = 1/48
//     (cubic cells), which extends the stability limit to c*dt <= dx —
//     exactly why the paper can run at CFL 1.0. The smoothing lives in
//     Faraday's law, not Ampère's: the leapfrog dispersion relation only sees
//     the product of the two curl symbols (so stability is unchanged), while
//     Ampère keeps the plain Yee curl, whose divergence vanishes identically
//     under the standard backward-difference divergence. That makes the
//     solver charge-conserving: with a continuity-exact J (the Esirkepov
//     scheme) div E - rho/eps0 is a constant of the discrete evolution.
//
// Layout convention: all component arrays are allocated node-shaped (see
// FieldSet); the half-cell staggering is carried by the index arithmetic.
// Array entry (i,j,k) of Ex holds Ex(i+1/2, j, k), of Bx holds
// Bx(i, j+1/2, k+1/2), etc. Direct-deposition J is node-centered and averaged
// onto the E-staggering inside the E update; the Esirkepov scheme deposits J
// already face-centered and the caller passes staggered_j = true to consume
// it in place (averaging would smear the telescoped continuity sums).

#ifndef MPIC_SRC_SOLVER_MAXWELL_SOLVER_H_
#define MPIC_SRC_SOLVER_MAXWELL_SOLVER_H_

#include "src/grid/field_set.h"
#include "src/hw/hw_context.h"

namespace mpic {

enum class SolverKind {
  kYee,
  kCkc,
};

class MaxwellSolver {
 public:
  MaxwellSolver(SolverKind kind, const GridGeometry& geom);

  // Advances B by dt_half using the (CKC-smoothed) curl of E (call twice per
  // step around the E update, leapfrog style). Fills periodic guards
  // internally.
  void UpdateB(HwContext& hw, FieldSet& fields, double dt_half) const;

  // Advances E by dt using the plain Yee curl of B and the current density J.
  // With staggered_j = false (direct deposition) J is node-centered and
  // averaged to the staggered E locations; with true (Esirkepov) each J entry
  // is already at its Yee face and consumed in place.
  void UpdateE(HwContext& hw, FieldSet& fields, double dt,
               bool staggered_j = false) const;

  SolverKind kind() const { return kind_; }

  // Largest stable c*dt/dx for cubic cells under this solver.
  double StableCourant() const;

 private:
  SolverKind kind_;
  GridGeometry geom_;
};

}  // namespace mpic

#endif  // MPIC_SRC_SOLVER_MAXWELL_SOLVER_H_

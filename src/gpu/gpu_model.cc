#include "src/gpu/gpu_model.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"
#include "src/deposit/deposit_scalar.h"
#include "src/shape/shape_function.h"

namespace mpic {

GpuRunResult GpuBaselineDeposit(const GpuConfig& cfg, const TileSet& tiles,
                                int order) {
  MPIC_CHECK(order == 1 || order == 3);
  const int support = order + 1;
  const int nodes = support * support * support;
  const GridGeometry& g = tiles.geom();

  GpuRunResult result;
  // Compute instructions per particle: canonical FLOPs at FMA density 2.
  const double instr_per_particle = CanonicalFlopsPerParticle(order) / 2.0;

  // Collect live particle node-base coordinates in arrival order.
  std::vector<int64_t> base_node;
  base_node.reserve(static_cast<size_t>(tiles.TotalLive()));
  const int64_t span_x = g.nx + 4;  // virtual node indexing with guard margin
  const int64_t span_y = g.ny + 4;
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    const ParticleTile& tile = tiles.tile(t);
    const ParticleSoA& soa = tile.soa();
    for (int32_t pid = 0; pid < tile.num_slots(); ++pid) {
      if (!tile.IsLive(pid)) {
        continue;
      }
      const auto i = static_cast<size_t>(pid);
      int sx, sy, sz;
      double w[4];
      switch (order) {
        case 1:
          ShapeFunction<1>::Weights(g.GridX(soa.x[i]), &sx, w);
          ShapeFunction<1>::Weights(g.GridY(soa.y[i]), &sy, w);
          ShapeFunction<1>::Weights(g.GridZ(soa.z[i]), &sz, w);
          break;
        default:
          ShapeFunction<3>::Weights(g.GridX(soa.x[i]), &sx, w);
          ShapeFunction<3>::Weights(g.GridY(soa.y[i]), &sy, w);
          ShapeFunction<3>::Weights(g.GridZ(soa.z[i]), &sz, w);
          break;
      }
      base_node.push_back((sx + 2) + span_x * ((sy + 2) + span_y * (sz + 2)));
    }
  }
  result.particles = static_cast<int64_t>(base_node.size());

  const int64_t plane = span_x * span_y;
  std::unordered_map<int64_t, int> lane_targets;
  std::unordered_map<int64_t, int> lines;
  // Warp-by-warp execution.
  for (size_t warp_start = 0; warp_start < base_node.size();
       warp_start += static_cast<size_t>(cfg.warp_size)) {
    const size_t warp_end =
        std::min(base_node.size(), warp_start + static_cast<size_t>(cfg.warp_size));
    result.cycles += instr_per_particle;  // one FP64 instruction per cycle per warp

    // Scatter phase: one warp-wide atomic per (node offset, component).
    for (int k = 0; k < nodes; ++k) {
      const int a = k % support;
      const int b = (k / support) % support;
      const int c = k / (support * support);
      lane_targets.clear();
      lines.clear();
      for (size_t lane = warp_start; lane < warp_end; ++lane) {
        const int64_t node = base_node[lane] + a + span_x * b + plane * c;
        ++lane_targets[node];
        ++lines[node / 8];  // 64-byte line = 8 doubles
      }
      int conflict_lanes = 0;
      for (const auto& [node, count] : lane_targets) {
        conflict_lanes += count - 1;
      }
      // Three current components share the address pattern.
      for (int comp = 0; comp < 3; ++comp) {
        result.cycles += cfg.atomic_issue_cycles +
                         cfg.atomic_conflict_cycles * conflict_lanes +
                         cfg.mem_cycles_per_line * static_cast<double>(lines.size());
        ++result.atomic_instructions;
        result.conflict_lanes += conflict_lanes;
      }
    }
  }

  result.seconds = result.cycles / (cfg.freq_ghz * 1e9);
  const double useful =
      CanonicalFlopsPerParticle(order) * static_cast<double>(result.particles);
  if (result.cycles > 0.0) {
    result.peak_efficiency = useful / (result.cycles * cfg.fp64_flops_per_cycle);
  }
  return result;
}

}  // namespace mpic

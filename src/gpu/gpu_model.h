// SIMT cost model of the baseline CUDA deposition kernel on a data-center GPU
// (the paper's A800 comparison, Table 3).
//
// This is the DESIGN.md substitution for the real GPU run: deposition is
// "executed" warp by warp over the real particle data, charging
//   * compute cycles for the canonical per-particle arithmetic on the FP64
//     CUDA cores, and
//   * atomic scatter cycles per node update, with intra-warp address conflicts
//     serialized (the scatter-add pathology that keeps the GPU's tensor/MMA
//     hardware idle — the paper's architectural argument).
//
// Efficiency is reported against the GPU's FP64 CUDA-core peak, mirroring the
// paper's "% of theoretical peak FP64" metric.

#ifndef MPIC_SRC_GPU_GPU_MODEL_H_
#define MPIC_SRC_GPU_GPU_MODEL_H_

#include <cstdint>

#include "src/grid/grid_geometry.h"
#include "src/particles/tile_set.h"

namespace mpic {

struct GpuConfig {
  double freq_ghz = 1.41;  // A800 boost clock
  int warp_size = 32;
  // FP64 FLOPs per cycle per SM via CUDA cores (A100/A800: 32 FMA units).
  double fp64_flops_per_cycle = 64.0;
  // Cycles per warp-wide atomicAdd instruction before serialization.
  double atomic_issue_cycles = 2.5;
  // Extra cycles per additional lane hitting the same address in one warp.
  // Ampere-class GPUs aggregate same-address FP atomics at the L2, so the
  // marginal conflict cost is small but nonzero.
  double atomic_conflict_cycles = 0.1;
  // Amortized memory cycles per distinct cache line touched by a warp access
  // (atomics bypass the L1 and pay L2 sector bandwidth).
  double mem_cycles_per_line = 0.75;

  static GpuConfig A800() { return GpuConfig{}; }
};

struct GpuRunResult {
  double cycles = 0.0;
  double seconds = 0.0;
  int64_t particles = 0;
  int64_t atomic_instructions = 0;
  int64_t conflict_lanes = 0;
  // Canonical useful FLOPs / (cycles * fp64 peak per cycle).
  double peak_efficiency = 0.0;
};

// Runs the modeled baseline CUDA deposition over all live particles of the
// tile set at the given shape order (1 or 3), in arrival (slot) order.
GpuRunResult GpuBaselineDeposit(const GpuConfig& cfg, const TileSet& tiles,
                                int order);

}  // namespace mpic

#endif  // MPIC_SRC_GPU_GPU_MODEL_H_

// Particle shape functions (B-spline interpolation weights) for orders 1-3.
//
//   Order 1: Cloud-in-Cell (CIC) — 2 nodes per axis, 8 nodes in 3D.
//   Order 2: Triangular-Shaped Cloud (TSC) — 3 nodes per axis, 27 in 3D.
//   Order 3: the paper's "QSP" cubic spline — 4 nodes per axis, 64 in 3D.
//
// Weights(x, start, w): x is the particle position in grid units (position/dx);
// on return `start` is the lowest contributing node index and w[0..kSupport-1]
// the weights. Weights always sum to exactly 1 up to rounding (partition of
// unity), which the tests assert as a property.

#ifndef MPIC_SRC_SHAPE_SHAPE_FUNCTION_H_
#define MPIC_SRC_SHAPE_SHAPE_FUNCTION_H_

#include <cmath>

namespace mpic {

template <int Order>
struct ShapeFunction;

// Order 1 (CIC / linear).
template <>
struct ShapeFunction<1> {
  static constexpr int kSupport = 2;
  static void Weights(double x, int* start, double* w) {
    const double fi = std::floor(x);
    const int i = static_cast<int>(fi);
    const double d = x - fi;  // in [0, 1)
    *start = i;
    w[0] = 1.0 - d;
    w[1] = d;
  }
};

// Order 2 (TSC / quadratic spline), centered on the nearest node.
template <>
struct ShapeFunction<2> {
  static constexpr int kSupport = 3;
  static void Weights(double x, int* start, double* w) {
    const double fi = std::floor(x + 0.5);
    const int i = static_cast<int>(fi);
    const double d = x - fi;  // in [-0.5, 0.5)
    *start = i - 1;
    w[0] = 0.5 * (0.5 - d) * (0.5 - d);
    w[1] = 0.75 - d * d;
    w[2] = 0.5 * (0.5 + d) * (0.5 + d);
  }
};

// Order 3 (cubic B-spline; the paper's QSP scheme).
template <>
struct ShapeFunction<3> {
  static constexpr int kSupport = 4;
  static void Weights(double x, int* start, double* w) {
    const double fi = std::floor(x);
    const int i = static_cast<int>(fi);
    const double d = x - fi;  // in [0, 1)
    *start = i - 1;
    const double d2 = d * d;
    const double d3 = d2 * d;
    const double omd = 1.0 - d;
    w[0] = omd * omd * omd / 6.0;
    w[1] = (3.0 * d3 - 6.0 * d2 + 4.0) / 6.0;
    w[2] = (-3.0 * d3 + 3.0 * d2 + 3.0 * d + 1.0) / 6.0;
    w[3] = d3 / 6.0;
  }
};

// Runtime-dispatch wrapper for code paths that take the order as a value
// (configuration plumbing); hot kernels use the templates directly.
struct ShapeWeights {
  int start = 0;
  double w[4] = {0, 0, 0, 0};
  int support = 0;
};

inline ShapeWeights ComputeShape(int order, double x) {
  ShapeWeights s;
  switch (order) {
    case 1:
      s.support = 2;
      ShapeFunction<1>::Weights(x, &s.start, s.w);
      break;
    case 2:
      s.support = 3;
      ShapeFunction<2>::Weights(x, &s.start, s.w);
      break;
    case 3:
      s.support = 4;
      ShapeFunction<3>::Weights(x, &s.start, s.w);
      break;
    default:
      s.support = 0;
      break;
  }
  return s;
}

// Number of contributing nodes in 3D for a given order.
inline constexpr int Support3D(int order) {
  const int s = order + 1;
  return s * s * s;
}

}  // namespace mpic

#endif  // MPIC_SRC_SHAPE_SHAPE_FUNCTION_H_

// Lightweight runtime-check macros used across the MatrixPIC codebase.
//
// MPIC_CHECK(cond)  — always-on invariant check; aborts with file:line on failure.
// MPIC_DCHECK(cond) — debug-only variant; compiles away when NDEBUG is defined.
//
// These are for programming errors (broken invariants), not for recoverable
// conditions; recoverable conditions are reported through return values.

#ifndef MPIC_SRC_COMMON_CHECK_H_
#define MPIC_SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define MPIC_CHECK(cond)                                                            \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      std::fprintf(stderr, "MPIC_CHECK failed at %s:%d: %s\n", __FILE__, __LINE__,  \
                   #cond);                                                          \
      std::abort();                                                                 \
    }                                                                               \
  } while (0)

#define MPIC_CHECK_MSG(cond, msg)                                                   \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      std::fprintf(stderr, "MPIC_CHECK failed at %s:%d: %s (%s)\n", __FILE__,       \
                   __LINE__, #cond, (msg));                                         \
      std::abort();                                                                 \
    }                                                                               \
  } while (0)

#ifdef NDEBUG
#define MPIC_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define MPIC_DCHECK(cond) MPIC_CHECK(cond)
#endif

#endif  // MPIC_SRC_COMMON_CHECK_H_

// Fixed-width console table printer. The bench harness uses this to emit rows in
// the same layout as the paper's tables so paper-vs-measured comparison is direct.

#ifndef MPIC_SRC_COMMON_TABLE_H_
#define MPIC_SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace mpic {

class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  // Adds a row. Cells beyond the header count are dropped; missing cells print
  // empty. Numeric formatting is the caller's job (see FormatDouble below).
  void AddRow(std::vector<std::string> cells);

  // Renders the table with a header rule, column padding, and a title line.
  std::string Render(const std::string& title) const;

  // Prints Render() to stdout.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats with fixed decimals, e.g. FormatDouble(3.14159, 2) == "3.14".
std::string FormatDouble(double v, int decimals);

// Engineering-style throughput formatting, e.g. 4.61e+08 -> "4.61e8".
std::string FormatSci(double v, int decimals);

}  // namespace mpic

#endif  // MPIC_SRC_COMMON_TABLE_H_

#include "src/common/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace mpic {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  return Mix64(state);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

Rng Rng::ForStream(uint64_t seed, uint64_t k0, uint64_t k1, uint64_t k2) {
  // Absorb each key through the finalizer with distinct round constants, so
  // (s, a, b, c) and any permutation/shift of the keys land in unrelated
  // states.
  uint64_t h = Mix64(seed + 0x9E3779B97F4A7C15ull);
  h = Mix64(h ^ Mix64(k0 + 0xBF58476D1CE4E5B9ull));
  h = Mix64(h ^ Mix64(k1 + 0x94D049BB133111EBull));
  h = Mix64(h ^ Mix64(k2 + 0xD6E8FEB86659FD93ull));
  return Rng(h);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::NextBelow(uint64_t n) {
  MPIC_DCHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % n);
  uint64_t v = NextU64();
  while (v >= limit) {
    v = NextU64();
  }
  return v % n;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace mpic

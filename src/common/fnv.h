// FNV-1a hashing over raw bytes.
//
// Used wherever the repo needs a cheap, dependency-free digest with a stable
// value across platforms: the checkpoint section checksums
// (src/runtime/checkpoint.h), the physics digests benches and tests pin
// bit-identity with (src/runtime/digest.h), and name fingerprints in the
// checkpoint META section. Not cryptographic — it detects corruption and
// divergence, not adversaries.

#ifndef MPIC_SRC_COMMON_FNV_H_
#define MPIC_SRC_COMMON_FNV_H_

#include <cstddef>
#include <cstdint>

namespace mpic {

inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

// Folds `bytes` bytes at `data` into the running hash `h` (seed with
// kFnvOffsetBasis for a fresh digest).
inline uint64_t Fnv1a(const void* data, size_t bytes,
                      uint64_t h = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace mpic

#endif  // MPIC_SRC_COMMON_FNV_H_

#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mpic {

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ConsoleTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string ConsoleTable::Render(const std::string& title) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  out << "== " << title << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << "\n";
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void ConsoleTable::Print(const std::string& title) const {
  std::fputs(Render(title).c_str(), stdout);
  std::fflush(stdout);
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FormatSci(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", decimals, v);
  return buf;
}

}  // namespace mpic

// Deterministic pseudo-random number generation for particle initialization and
// property tests.
//
// We use xoshiro256++ (Blackman & Vigna) rather than std::mt19937 because it is
// faster, has a tiny state, and — critically for reproducible experiments — its
// output is fully specified here, independent of the standard library build.

#ifndef MPIC_SRC_COMMON_RNG_H_
#define MPIC_SRC_COMMON_RNG_H_

#include <cstdint>

namespace mpic {

// Mixes a 64-bit value through the SplitMix64 finalizer (a strong bijective
// hash). Exposed for counter-based stream derivation and digest helpers.
uint64_t Mix64(uint64_t x);

// xoshiro256++ generator with SplitMix64 seeding.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Counter-based stream derivation: a generator whose state is a pure hash
  // of (seed, k0, k1, k2). Unlike sequential seeding, the stream for a given
  // key tuple is independent of when, where, or on which thread it is
  // created — the per-cell/per-step collision streams rely on this to stay
  // bit-identical for any tile partition or thread count.
  static Rng ForStream(uint64_t seed, uint64_t k0, uint64_t k1, uint64_t k2 = 0);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  // Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  // Returns true with probability p.
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace mpic

#endif  // MPIC_SRC_COMMON_RNG_H_

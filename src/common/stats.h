// Small statistics helpers used by diagnostics and the bench harness.

#ifndef MPIC_SRC_COMMON_STATS_H_
#define MPIC_SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace mpic {

// Online mean / variance / min / max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);
  void Reset();

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  // Sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Relative L-infinity error between two equally sized arrays, normalized by the
// largest magnitude in `ref` (or absolute error when ref is all-zero).
double RelMaxError(const std::vector<double>& ref, const std::vector<double>& got);

// Sum of all elements (used in conservation checks).
double Sum(const std::vector<double>& v);

}  // namespace mpic

#endif  // MPIC_SRC_COMMON_STATS_H_

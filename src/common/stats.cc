#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace mpic {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Reset() { *this = RunningStat{}; }

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RelMaxError(const std::vector<double>& ref, const std::vector<double>& got) {
  MPIC_CHECK(ref.size() == got.size());
  double scale = 0.0;
  for (double r : ref) {
    scale = std::max(scale, std::fabs(r));
  }
  double err = 0.0;
  for (size_t i = 0; i < ref.size(); ++i) {
    err = std::max(err, std::fabs(ref[i] - got[i]));
  }
  if (scale == 0.0) {
    return err;
  }
  return err / scale;
}

double Sum(const std::vector<double>& v) {
  // Kahan summation: conservation checks compare sums across kernel variants and
  // need better than naive accumulation error.
  double sum = 0.0;
  double c = 0.0;
  for (double x : v) {
    const double y = x - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  return sum;
}

}  // namespace mpic

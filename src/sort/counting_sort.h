// Counting sort of particles by cell id (the paper's GlobalSortParticlesByCell).
//
// Produces the stable permutation that orders particles by cell, plus helpers to
// apply a permutation to Structure-of-Arrays particle storage. O(n + num_cells).

#ifndef MPIC_SRC_SORT_COUNTING_SORT_H_
#define MPIC_SRC_SORT_COUNTING_SORT_H_

#include <cstdint>
#include <vector>

namespace mpic {

// perm[i] = index (into the old order) of the particle that lands at slot i of
// the new order. Stable within a cell.
std::vector<int32_t> CountingSortPermutation(const std::vector<int32_t>& cell_of_particle,
                                             int num_cells);

// out[i] = in[perm[i]] for one SoA component.
void ApplyPermutation(const std::vector<int32_t>& perm, std::vector<double>& inout,
                      std::vector<double>& scratch);
void ApplyPermutation(const std::vector<int32_t>& perm, std::vector<int64_t>& inout,
                      std::vector<int64_t>& scratch);
void ApplyPermutation(const std::vector<int32_t>& perm, std::vector<int32_t>& inout,
                      std::vector<int32_t>& scratch);

}  // namespace mpic

#endif  // MPIC_SRC_SORT_COUNTING_SORT_H_

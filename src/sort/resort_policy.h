// The adaptive global re-sorting policy (paper Sec. 4.4).
//
// Per timestep each rank collects RankSortStats; ShouldPerformGlobalSort applies
// the paper's five prioritized strategies:
//   1. Minimum interval  — never sort more often than min_sort_interval steps.
//   2. Fixed interval    — always sort every sort_interval steps.
//   3. Local rebuilds    — sort when accumulated tile GPMA rebuilds exceed
//                          trigger_rebuild_count.
//   4. Empty-slot ratio  — sort when the rank-wide GPMA empty-slot ratio leaves
//                          [trigger_empty_ratio, trigger_full_ratio].
//   5. Performance       — (optional) sort when the current step's deposition
//                          throughput drops below trigger_perf_degrad x the
//                          post-sort baseline.
//
// Defaults mirror the paper's Table 4.

#ifndef MPIC_SRC_SORT_RESORT_POLICY_H_
#define MPIC_SRC_SORT_RESORT_POLICY_H_

#include <cstdint>

namespace mpic {

struct ResortPolicyConfig {
  int sort_interval = 50;
  int min_sort_interval = 10;
  int trigger_rebuild_count = 100;
  double trigger_empty_ratio = 0.15;
  double trigger_full_ratio = 0.85;
  bool trigger_perf_enable = true;
  double trigger_perf_degrad = 0.80;
};

struct RankSortStats {
  int steps_since_sort = 0;
  int64_t local_rebuilds = 0;
  // Rank-wide ratio of empty GPMA slots to capacity, refreshed each step.
  double empty_slot_ratio = 0.0;
  // Deposition throughput (particles per modeled second) of the current step.
  double step_throughput = 0.0;
  // Throughput measured on the first step after the last global sort.
  double baseline_throughput = 0.0;
};

// Why a sort was (or was not) triggered; returned for diagnostics and tested
// directly by the policy unit tests.
enum class SortDecision {
  kNoSort = 0,
  kMinIntervalHold,  // a trigger fired but the minimum interval suppressed it
  kFixedInterval,
  kRebuildCount,
  kEmptyRatio,
  kPerfDegradation,
};

class ResortPolicy {
 public:
  explicit ResortPolicy(const ResortPolicyConfig& config) : config_(config) {}

  // Evaluates the five strategies in priority order.
  SortDecision Evaluate(const RankSortStats& stats) const;

  // True when the decision means "perform the global sort now".
  static bool ShouldSort(SortDecision d) {
    return d == SortDecision::kFixedInterval || d == SortDecision::kRebuildCount ||
           d == SortDecision::kEmptyRatio || d == SortDecision::kPerfDegradation;
  }

  const ResortPolicyConfig& config() const { return config_; }

 private:
  ResortPolicyConfig config_;
};

const char* SortDecisionName(SortDecision d);

}  // namespace mpic

#endif  // MPIC_SRC_SORT_RESORT_POLICY_H_

// Gapped Packed-Memory Array (GPMA) for per-tile particle index management
// (paper Sec. 3.5 / 4.3).
//
// The GPMA keeps one slot array (`local_index`) partitioned into per-cell bins.
// Valid particle ids are packed at the front of each bin; the remaining slots
// of the bin are gaps. This preserves cell-sorted iteration order while making
// the per-timestep maintenance cheap:
//
//   * Remove(pid)        — O(1): swap-pop within the bin.
//   * Insert(pid, cell)  — O(1) when the bin has a gap; otherwise a PMA-style
//                          shift borrows a slot from the nearest bin with spare
//                          capacity (cost ~ distance in bins); if no gap exists
//                          within the shift limit the caller must Rebuild().
//   * Rebuild()          — O(n): redistributes particles with fresh, uniformly
//                          spread gaps (optionally growing capacity).
//
// The structure is pure (no hardware-model dependency): every mutator returns
// the number of slot words it touched so the caller can charge the modeled
// cost ledger, and tests can assert amortized-O(1) behavior directly.

#ifndef MPIC_SRC_SORT_GPMA_H_
#define MPIC_SRC_SORT_GPMA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpic {

inline constexpr int32_t kInvalidParticleId = -1;

struct GpmaConfig {
  // Fraction of slack capacity added per bin at (re)build time.
  double gap_fraction = 0.3;
  // Minimum gap slots per bin at (re)build time.
  int min_gap_per_bin = 2;
  // Insert() gives up (returns NeedsRebuild) when the nearest spare slot is
  // farther than this many bins away.
  int max_shift_bins = 64;
};

class Gpma {
 public:
  Gpma() = default;

  // Builds bins for `num_cells` cells from `cell_of_particle` (size = particle
  // count; every value must be in [0, num_cells)). Particle ids are their
  // indices in the input array.
  void Build(const std::vector<int32_t>& cell_of_particle, int num_cells,
             const GpmaConfig& config);

  // Rebuilds in place from the current contents, preserving the particle->cell
  // assignment, with fresh uniform gaps. Returns slot words touched.
  int64_t Rebuild();

  struct OpResult {
    bool ok = false;
    // Slot words read+written by the operation (cost charged by the caller).
    int64_t words_touched = 0;
  };

  // Removes a particle from its bin. The particle must be present.
  OpResult Remove(int32_t pid);

  // Inserts a particle into `cell`'s bin. On failure (no reachable gap) the
  // structure is unchanged and the caller is expected to Rebuild().
  OpResult Insert(int32_t pid, int cell);

  // ---- Accessors used by the deposition kernels ----
  int num_cells() const { return num_cells_; }
  int32_t num_particles() const { return num_particles_; }
  int64_t capacity() const { return static_cast<int64_t>(local_index_.size()); }
  int64_t num_empty_slots() const { return capacity() - num_particles_; }
  double EmptySlotRatio() const {
    return capacity() == 0 ? 0.0
                           : static_cast<double>(num_empty_slots()) /
                                 static_cast<double>(capacity());
  }

  int64_t BinOffset(int cell) const { return bin_offsets_[static_cast<size_t>(cell)]; }
  int32_t BinLen(int cell) const { return bin_lengths_[static_cast<size_t>(cell)]; }
  int64_t BinCap(int cell) const {
    return bin_offsets_[static_cast<size_t>(cell) + 1] -
           bin_offsets_[static_cast<size_t>(cell)];
  }
  // Slot array (pid or kInvalidParticleId). Bin `c`'s valid entries are
  // local_index()[BinOffset(c) .. BinOffset(c)+BinLen(c)).
  const std::vector<int32_t>& local_index() const { return local_index_; }

  // Cell currently holding `pid`, or -1 if absent.
  int CellOf(int32_t pid) const;

  // Exhaustive internal consistency check (tests; O(capacity)).
  void CheckInvariants() const;

  // ---- Checkpoint support (src/runtime/checkpoint.h) ----
  //
  // The full internal state as plain vectors. Checkpoints serialize it exactly
  // instead of rebuilding on restore: an incrementally maintained GPMA's slot
  // layout (and with it the bin iteration order feeding deposition and
  // collision pairing) depends on the insertion history, so a fresh Build()
  // would not replay the uninterrupted run bit-for-bit.
  struct State {
    GpmaConfig config;
    int num_cells = 0;
    int32_t num_particles = 0;
    std::vector<int32_t> local_index;
    std::vector<int64_t> bin_offsets;
    std::vector<int32_t> bin_lengths;
    std::vector<int64_t> slot_of_pid;
    std::vector<int32_t> cell_of_pid;
  };
  State ExportState() const;
  // Replaces the structure wholesale. The caller (checkpoint restore) is
  // responsible for cross-field consistency; CheckInvariants() verifies it.
  void ImportState(State state);

 private:
  void BuildFromPairs(const std::vector<int32_t>& cell_of_particle);
  int64_t FindSpareRight(int from_cell) const;
  int64_t FindSpareLeft(int from_cell) const;

  GpmaConfig config_;
  int num_cells_ = 0;
  int32_t num_particles_ = 0;
  std::vector<int32_t> local_index_;   // slot -> pid / kInvalidParticleId
  std::vector<int64_t> bin_offsets_;   // size num_cells_+1
  std::vector<int32_t> bin_lengths_;   // valid entries per bin
  // pid -> slot (dense reverse map; pids are tile-local and dense).
  std::vector<int64_t> slot_of_pid_;
  // pid -> cell (kept so Rebuild() does not need particle positions).
  std::vector<int32_t> cell_of_pid_;
};

}  // namespace mpic

#endif  // MPIC_SRC_SORT_GPMA_H_

#include "src/sort/gpma.h"

#include <algorithm>

#include "src/common/check.h"

namespace mpic {

void Gpma::Build(const std::vector<int32_t>& cell_of_particle, int num_cells,
                 const GpmaConfig& config) {
  MPIC_CHECK(num_cells > 0);
  config_ = config;
  num_cells_ = num_cells;
  num_particles_ = static_cast<int32_t>(cell_of_particle.size());
  cell_of_pid_ = cell_of_particle;
  BuildFromPairs(cell_of_particle);
}

void Gpma::BuildFromPairs(const std::vector<int32_t>& cell_of_particle) {
  // Counting pass.
  std::vector<int32_t> counts(static_cast<size_t>(num_cells_), 0);
  for (int32_t c : cell_of_particle) {
    MPIC_DCHECK(c >= 0 && c < num_cells_);
    ++counts[static_cast<size_t>(c)];
  }
  // Bin capacities with gaps.
  bin_offsets_.assign(static_cast<size_t>(num_cells_) + 1, 0);
  int64_t off = 0;
  for (int c = 0; c < num_cells_; ++c) {
    bin_offsets_[static_cast<size_t>(c)] = off;
    const int32_t n = counts[static_cast<size_t>(c)];
    const int gap = std::max(config_.min_gap_per_bin,
                             static_cast<int>(config_.gap_fraction * n));
    off += n + gap;
  }
  bin_offsets_[static_cast<size_t>(num_cells_)] = off;

  local_index_.assign(static_cast<size_t>(off), kInvalidParticleId);
  bin_lengths_.assign(static_cast<size_t>(num_cells_), 0);
  slot_of_pid_.assign(cell_of_particle.size(), -1);

  for (size_t pid = 0; pid < cell_of_particle.size(); ++pid) {
    const int32_t c = cell_of_particle[pid];
    const int64_t slot = bin_offsets_[static_cast<size_t>(c)] +
                         bin_lengths_[static_cast<size_t>(c)];
    local_index_[static_cast<size_t>(slot)] = static_cast<int32_t>(pid);
    slot_of_pid_[pid] = slot;
    ++bin_lengths_[static_cast<size_t>(c)];
  }
}

int64_t Gpma::Rebuild() {
  // Rebuild from cell_of_pid_, skipping removed particles (slot == -1).
  std::vector<int32_t> cells;
  std::vector<int32_t> pids;
  cells.reserve(static_cast<size_t>(num_particles_));
  pids.reserve(static_cast<size_t>(num_particles_));
  for (size_t pid = 0; pid < slot_of_pid_.size(); ++pid) {
    if (slot_of_pid_[pid] >= 0) {
      cells.push_back(cell_of_pid_[pid]);
      pids.push_back(static_cast<int32_t>(pid));
    }
  }
  // Counting pass over surviving particles.
  std::vector<int32_t> counts(static_cast<size_t>(num_cells_), 0);
  for (int32_t c : cells) {
    ++counts[static_cast<size_t>(c)];
  }
  bin_offsets_.assign(static_cast<size_t>(num_cells_) + 1, 0);
  int64_t off = 0;
  for (int c = 0; c < num_cells_; ++c) {
    bin_offsets_[static_cast<size_t>(c)] = off;
    const int32_t n = counts[static_cast<size_t>(c)];
    const int gap = std::max(config_.min_gap_per_bin,
                             static_cast<int>(config_.gap_fraction * n));
    off += n + gap;
  }
  bin_offsets_[static_cast<size_t>(num_cells_)] = off;
  local_index_.assign(static_cast<size_t>(off), kInvalidParticleId);
  bin_lengths_.assign(static_cast<size_t>(num_cells_), 0);
  for (size_t k = 0; k < pids.size(); ++k) {
    const int32_t pid = pids[k];
    const int32_t c = cells[k];
    const int64_t slot = bin_offsets_[static_cast<size_t>(c)] +
                         bin_lengths_[static_cast<size_t>(c)];
    local_index_[static_cast<size_t>(slot)] = pid;
    slot_of_pid_[static_cast<size_t>(pid)] = slot;
    ++bin_lengths_[static_cast<size_t>(c)];
  }
  return static_cast<int64_t>(local_index_.size());
}

Gpma::OpResult Gpma::Remove(int32_t pid) {
  MPIC_DCHECK(pid >= 0 && static_cast<size_t>(pid) < slot_of_pid_.size());
  const int64_t slot = slot_of_pid_[static_cast<size_t>(pid)];
  MPIC_CHECK_MSG(slot >= 0, "Remove of absent particle");
  const int cell = cell_of_pid_[static_cast<size_t>(pid)];
  const int64_t off = bin_offsets_[static_cast<size_t>(cell)];
  const int64_t last = off + bin_lengths_[static_cast<size_t>(cell)] - 1;
  MPIC_DCHECK(slot >= off && slot <= last);
  // Swap-pop: keep valid entries packed at the bin front.
  const int32_t moved = local_index_[static_cast<size_t>(last)];
  local_index_[static_cast<size_t>(slot)] = moved;
  local_index_[static_cast<size_t>(last)] = kInvalidParticleId;
  slot_of_pid_[static_cast<size_t>(moved)] = slot;
  slot_of_pid_[static_cast<size_t>(pid)] = -1;
  --bin_lengths_[static_cast<size_t>(cell)];
  --num_particles_;
  return {true, 3};
}

int64_t Gpma::FindSpareRight(int from_cell) const {
  const int limit = std::min(num_cells_ - 1, from_cell + config_.max_shift_bins);
  for (int c = from_cell + 1; c <= limit; ++c) {
    if (bin_lengths_[static_cast<size_t>(c)] < BinCap(c)) {
      return c;
    }
  }
  return -1;
}

int64_t Gpma::FindSpareLeft(int from_cell) const {
  const int limit = std::max(0, from_cell - config_.max_shift_bins);
  for (int c = from_cell - 1; c >= limit; --c) {
    if (bin_lengths_[static_cast<size_t>(c)] < BinCap(c)) {
      return c;
    }
  }
  return -1;
}

Gpma::OpResult Gpma::Insert(int32_t pid, int cell) {
  MPIC_DCHECK(cell >= 0 && cell < num_cells_);
  if (static_cast<size_t>(pid) >= slot_of_pid_.size()) {
    // Newly added particle (id beyond the build-time set).
    slot_of_pid_.resize(static_cast<size_t>(pid) + 1, -1);
    cell_of_pid_.resize(static_cast<size_t>(pid) + 1, -1);
  }
  MPIC_CHECK_MSG(slot_of_pid_[static_cast<size_t>(pid)] < 0,
                 "Insert of already-present particle");
  int64_t words = 1;
  if (bin_lengths_[static_cast<size_t>(cell)] >= BinCap(cell)) {
    // Bin full: borrow one slot from the nearest bin with spare capacity via a
    // PMA shift. Each intervening bin rotates one element from its front to
    // just past its packed tail, then its region moves one slot over.
    const int64_t right = FindSpareRight(cell);
    const int64_t left = right < 0 ? FindSpareLeft(cell) : -1;
    if (right >= 0) {
      for (int c = static_cast<int>(right); c > cell; --c) {
        const int64_t off = bin_offsets_[static_cast<size_t>(c)];
        const int32_t len = bin_lengths_[static_cast<size_t>(c)];
        if (len > 0) {
          // Move front element to the slot just past the packed tail; that slot
          // is free: either a gap of this bin or the slot being vacated by the
          // already-shifted bin to the right.
          const int32_t moved = local_index_[static_cast<size_t>(off)];
          local_index_[static_cast<size_t>(off + len)] = moved;
          slot_of_pid_[static_cast<size_t>(moved)] = off + len;
          local_index_[static_cast<size_t>(off)] = kInvalidParticleId;
          words += 3;
        }
        bin_offsets_[static_cast<size_t>(c)] = off + 1;
        words += 1;
      }
    } else if (left >= 0) {
      for (int c = static_cast<int>(left) + 1; c <= cell; ++c) {
        // Mirror image: regions move one slot left; each bin rotates its last
        // element to one before its front.
        const int64_t off = bin_offsets_[static_cast<size_t>(c)];
        const int32_t len = bin_lengths_[static_cast<size_t>(c)];
        if (len > 0) {
          const int32_t moved = local_index_[static_cast<size_t>(off + len - 1)];
          local_index_[static_cast<size_t>(off - 1)] = moved;
          slot_of_pid_[static_cast<size_t>(moved)] = off - 1;
          local_index_[static_cast<size_t>(off + len - 1)] = kInvalidParticleId;
          words += 3;
        }
        bin_offsets_[static_cast<size_t>(c)] = off - 1;
        words += 1;
      }
    } else {
      return {false, words};
    }
  }
  const int64_t slot = bin_offsets_[static_cast<size_t>(cell)] +
                       bin_lengths_[static_cast<size_t>(cell)];
  local_index_[static_cast<size_t>(slot)] = pid;
  slot_of_pid_[static_cast<size_t>(pid)] = slot;
  cell_of_pid_[static_cast<size_t>(pid)] = static_cast<int32_t>(cell);
  ++bin_lengths_[static_cast<size_t>(cell)];
  ++num_particles_;
  return {true, words + 2};
}

int Gpma::CellOf(int32_t pid) const {
  if (pid < 0 || static_cast<size_t>(pid) >= slot_of_pid_.size() ||
      slot_of_pid_[static_cast<size_t>(pid)] < 0) {
    return -1;
  }
  return cell_of_pid_[static_cast<size_t>(pid)];
}

void Gpma::CheckInvariants() const {
  MPIC_CHECK(bin_offsets_.size() == static_cast<size_t>(num_cells_) + 1);
  MPIC_CHECK(bin_offsets_[0] >= 0);
  MPIC_CHECK(bin_offsets_[static_cast<size_t>(num_cells_)] ==
             static_cast<int64_t>(local_index_.size()));
  int64_t valid = 0;
  for (int c = 0; c < num_cells_; ++c) {
    const int64_t off = bin_offsets_[static_cast<size_t>(c)];
    const int64_t end = bin_offsets_[static_cast<size_t>(c) + 1];
    MPIC_CHECK(off <= end);
    const int32_t len = bin_lengths_[static_cast<size_t>(c)];
    MPIC_CHECK(len >= 0 && off + len <= end);
    // Packed front: [off, off+len) valid, [off+len, end) gaps.
    for (int64_t s = off; s < end; ++s) {
      const int32_t pid = local_index_[static_cast<size_t>(s)];
      if (s < off + len) {
        MPIC_CHECK(pid >= 0);
        MPIC_CHECK(slot_of_pid_[static_cast<size_t>(pid)] == s);
        MPIC_CHECK(cell_of_pid_[static_cast<size_t>(pid)] == c);
        ++valid;
      } else {
        MPIC_CHECK(pid == kInvalidParticleId);
      }
    }
  }
  MPIC_CHECK(valid == num_particles_);
}

Gpma::State Gpma::ExportState() const {
  State s;
  s.config = config_;
  s.num_cells = num_cells_;
  s.num_particles = num_particles_;
  s.local_index = local_index_;
  s.bin_offsets = bin_offsets_;
  s.bin_lengths = bin_lengths_;
  s.slot_of_pid = slot_of_pid_;
  s.cell_of_pid = cell_of_pid_;
  return s;
}

void Gpma::ImportState(State state) {
  config_ = state.config;
  num_cells_ = state.num_cells;
  num_particles_ = state.num_particles;
  local_index_ = std::move(state.local_index);
  bin_offsets_ = std::move(state.bin_offsets);
  bin_lengths_ = std::move(state.bin_lengths);
  slot_of_pid_ = std::move(state.slot_of_pid);
  cell_of_pid_ = std::move(state.cell_of_pid);
}

}  // namespace mpic

#include "src/sort/counting_sort.h"

#include "src/common/check.h"

namespace mpic {

std::vector<int32_t> CountingSortPermutation(const std::vector<int32_t>& cell_of_particle,
                                             int num_cells) {
  MPIC_CHECK(num_cells > 0);
  std::vector<int64_t> offsets(static_cast<size_t>(num_cells) + 1, 0);
  for (int32_t c : cell_of_particle) {
    MPIC_DCHECK(c >= 0 && c < num_cells);
    ++offsets[static_cast<size_t>(c) + 1];
  }
  for (size_t c = 1; c <= static_cast<size_t>(num_cells); ++c) {
    offsets[c] += offsets[c - 1];
  }
  std::vector<int32_t> perm(cell_of_particle.size());
  std::vector<int64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (size_t i = 0; i < cell_of_particle.size(); ++i) {
    const int32_t c = cell_of_particle[i];
    perm[static_cast<size_t>(cursor[static_cast<size_t>(c)]++)] =
        static_cast<int32_t>(i);
  }
  return perm;
}

namespace {
template <typename T>
void ApplyPermutationImpl(const std::vector<int32_t>& perm, std::vector<T>& inout,
                          std::vector<T>& scratch) {
  MPIC_CHECK(perm.size() == inout.size());
  scratch.resize(inout.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    scratch[i] = inout[static_cast<size_t>(perm[i])];
  }
  inout.swap(scratch);
}
}  // namespace

void ApplyPermutation(const std::vector<int32_t>& perm, std::vector<double>& inout,
                      std::vector<double>& scratch) {
  ApplyPermutationImpl(perm, inout, scratch);
}
void ApplyPermutation(const std::vector<int32_t>& perm, std::vector<int64_t>& inout,
                      std::vector<int64_t>& scratch) {
  ApplyPermutationImpl(perm, inout, scratch);
}
void ApplyPermutation(const std::vector<int32_t>& perm, std::vector<int32_t>& inout,
                      std::vector<int32_t>& scratch) {
  ApplyPermutationImpl(perm, inout, scratch);
}

}  // namespace mpic

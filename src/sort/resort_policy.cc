#include "src/sort/resort_policy.h"

namespace mpic {

SortDecision ResortPolicy::Evaluate(const RankSortStats& stats) const {
  // Determine whether any trigger fires, then let strategy 1 (minimum
  // interval) veto it.
  SortDecision fired = SortDecision::kNoSort;
  if (stats.steps_since_sort >= config_.sort_interval) {
    fired = SortDecision::kFixedInterval;
  } else if (stats.local_rebuilds >= config_.trigger_rebuild_count) {
    fired = SortDecision::kRebuildCount;
  } else if (stats.empty_slot_ratio < config_.trigger_empty_ratio ||
             stats.empty_slot_ratio > config_.trigger_full_ratio) {
    fired = SortDecision::kEmptyRatio;
  } else if (config_.trigger_perf_enable && stats.baseline_throughput > 0.0 &&
             stats.step_throughput <
                 config_.trigger_perf_degrad * stats.baseline_throughput) {
    fired = SortDecision::kPerfDegradation;
  }
  if (fired == SortDecision::kNoSort) {
    return SortDecision::kNoSort;
  }
  if (stats.steps_since_sort < config_.min_sort_interval) {
    return SortDecision::kMinIntervalHold;
  }
  return fired;
}

const char* SortDecisionName(SortDecision d) {
  switch (d) {
    case SortDecision::kNoSort:
      return "no-sort";
    case SortDecision::kMinIntervalHold:
      return "min-interval-hold";
    case SortDecision::kFixedInterval:
      return "fixed-interval";
    case SortDecision::kRebuildCount:
      return "rebuild-count";
    case SortDecision::kEmptyRatio:
      return "empty-ratio";
    case SortDecision::kPerfDegradation:
      return "perf-degradation";
  }
  return "?";
}

}  // namespace mpic

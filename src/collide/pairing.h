// Takizuka-Abe pair selection rules (J. Comput. Phys. 25, 1977) for binary
// Monte-Carlo Coulomb collisions within one cell.
//
// The rules are pure index arithmetic over a (pre-shuffled) list of the cell's
// particles, kept free of any particle or hardware state so property tests can
// pin them exhaustively:
//
//   * Intra-species, n even:  (0,1), (2,3), ... — every particle in exactly
//     one pair at the full time step.
//   * Intra-species, n odd:   the first three particles form the TA triplet
//     (0,1), (0,2), (1,2), each at HALF the time step (each triplet member is
//     scattered twice, so its total collisionality matches one full-step
//     pair); the remainder pairs (3,4), (5,6), ... at the full step.
//   * Inter-species:          every particle of the larger group is paired
//     exactly once with a wrap-around partner from the smaller group
//     (pair i = (i, i mod n_small)); smaller-group particles are reused
//     ceil/floor(n_large/n_small) times.
//
// A cell with fewer than two intra-species particles (or an empty partner
// species) produces no pairs — the caller counts those particles as unpaired.

#ifndef MPIC_SRC_COLLIDE_PAIRING_H_
#define MPIC_SRC_COLLIDE_PAIRING_H_

#include <cstdint>
#include <vector>

namespace mpic {

// One collision pair: indices into the (shuffled) per-cell particle lists of
// the two colliding groups (for intra-species pairing both index the same
// list). dt_scale scales the collision time step (0.5 for TA triplet pairs).
struct CellPair {
  int32_t a = 0;
  int32_t b = 0;
  double dt_scale = 1.0;
};

// Appends the intra-species pairs for a cell holding n particles.
void AppendIntraCellPairs(int32_t n, std::vector<CellPair>* out);

// Appends the inter-species pairs for a cell holding na A-particles and nb
// B-particles. CellPair::a indexes the A list and CellPair::b the B list.
void AppendInterCellPairs(int32_t na, int32_t nb, std::vector<CellPair>* out);

}  // namespace mpic

#endif  // MPIC_SRC_COLLIDE_PAIRING_H_

#include "src/collide/pairing.h"

namespace mpic {

void AppendIntraCellPairs(int32_t n, std::vector<CellPair>* out) {
  if (n < 2) {
    return;
  }
  int32_t first = 0;
  if (n % 2 != 0) {
    // Takizuka-Abe triplet rule: the odd particle out joins the first pair as
    // three half-strength pairs, so every particle still scatters with the
    // full-step collisionality.
    out->push_back({0, 1, 0.5});
    out->push_back({0, 2, 0.5});
    out->push_back({1, 2, 0.5});
    first = 3;
  }
  for (int32_t i = first; i + 1 < n; i += 2) {
    out->push_back({i, i + 1, 1.0});
  }
}

void AppendInterCellPairs(int32_t na, int32_t nb, std::vector<CellPair>* out) {
  if (na < 1 || nb < 1) {
    return;
  }
  // Wrap-around pairing: each particle of the larger group collides exactly
  // once; smaller-group particles take ceil/floor(n_large/n_small) partners.
  if (na >= nb) {
    for (int32_t i = 0; i < na; ++i) {
      out->push_back({i, i % nb, 1.0});
    }
  } else {
    for (int32_t i = 0; i < nb; ++i) {
      out->push_back({i % na, i, 1.0});
    }
  }
}

}  // namespace mpic

#include "src/collide/collision.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/hw/parallel_for.h"

namespace mpic {

void ScatterPair(double cos_theta, double sin_theta, double phi, double m1,
                 double w1, double m2, double w2, double u1[3], double u2[3]) {
  const double gx = u1[0] - u2[0];
  const double gy = u1[1] - u2[1];
  const double gz = u1[2] - u2[2];
  const double g = std::sqrt(gx * gx + gy * gy + gz * gz);
  if (g <= 0.0) {
    return;  // no relative motion, nothing to scatter
  }
  const double g_perp = std::sqrt(gx * gx + gy * gy);
  const double cphi = std::cos(phi);
  const double sphi = std::sin(phi);
  const double omc = 1.0 - cos_theta;
  double dgx, dgy, dgz;
  if (g_perp > 1e-12 * g) {
    // Takizuka-Abe rotation of g by (theta, phi).
    dgx = (gx / g_perp) * gz * sin_theta * cphi - (gy / g_perp) * g * sin_theta * sphi -
          gx * omc;
    dgy = (gy / g_perp) * gz * sin_theta * cphi + (gx / g_perp) * g * sin_theta * sphi -
          gy * omc;
    dgz = -g_perp * sin_theta * cphi - gz * omc;
  } else {
    // g along z: the rotation frame is free in phi.
    dgx = g * sin_theta * cphi;
    dgy = g * sin_theta * sphi;
    dgz = -g * omc;
  }
  // One impulse with the weight-aware reduced mass: momentum sum(w m u)
  // changes by +p on one side and -p on the other, cancelling exactly.
  const double wm1 = w1 * m1;
  const double wm2 = w2 * m2;
  const double mu = wm1 * wm2 / (wm1 + wm2);
  const double px = mu * dgx;
  const double py = mu * dgy;
  const double pz = mu * dgz;
  u1[0] += px / wm1;
  u1[1] += py / wm1;
  u1[2] += pz / wm1;
  u2[0] -= px / wm2;
  u2[1] -= py / wm2;
  u2[2] -= pz / wm2;
}

CollisionModule::CollisionModule(HwContext& hw, const CollisionConfig& config)
    : hw_(hw), config_(config), mem_owner_id_(NextMemOwnerId()) {}

void CollisionModule::Initialize(std::vector<SpeciesBlock*> blocks) {
  MPIC_CHECK_MSG(!blocks.empty(), "collision module needs a species registry");
  blocks_ = std::move(blocks);
  const std::vector<SpeciesBlock*>& reg = blocks_;
  const int num_tiles = reg[0]->tiles.num_tiles();
  pair_coeff_.clear();
  for (const CollisionPairConfig& pair : config_.pairs) {
    const int n = static_cast<int>(reg.size());
    MPIC_CHECK_MSG(pair.species_a >= 0 && pair.species_a < n &&
                       pair.species_b >= 0 && pair.species_b < n,
                   "collision pair references an unknown species id");
    MPIC_CHECK_MSG(pair.coulomb_log > 0.0, "coulomb_log must be positive");
    const SpeciesBlock& a = *reg[static_cast<size_t>(pair.species_a)];
    const SpeciesBlock& b = *reg[static_cast<size_t>(pair.species_b)];
    // Pairing walks the per-cell GPMA bins: both species must run a sort mode
    // that keeps them valid (the unsorted baselines have no cell lists).
    MPIC_CHECK_MSG(a.engine.traits().sort_mode != SortMode::kNone &&
                       b.engine.traits().sort_mode != SortMode::kNone,
                   "collisions require a GPMA-maintaining sort mode for both "
                   "species of every pair");
    MPIC_CHECK_MSG(a.tiles.num_tiles() == num_tiles &&
                       b.tiles.num_tiles() == num_tiles,
                   "colliding species must share the tile decomposition");
    const double qq = a.species.charge * a.species.charge * b.species.charge *
                      b.species.charge;
    const double m_ab =
        a.species.mass * b.species.mass / (a.species.mass + b.species.mass);
    pair_coeff_.push_back(qq * pair.coulomb_log /
                          (8.0 * M_PI * kEpsilon0 * kEpsilon0 * m_ab * m_ab));
  }
  scratch_.assign(static_cast<size_t>(num_tiles), TileScratch{});
  last_stats_ = CollisionStepStats{};
}

void CollisionModule::Apply(int64_t step, double dt) {
  if (config_.pairs.empty()) {
    last_stats_ = CollisionStepStats{};
    return;
  }
  const int num_tiles = blocks_[0]->tiles.num_tiles();

  // Serial pre-pass: size each tile's pairing scratch to the largest SoA slot
  // count any configured species has there, and register it with the main
  // context's address map (workers snapshot it at the region start). Sized
  // before the fan-out so no worker-side reallocation can fall back to
  // nondeterministic identity mapping.
  for (int t = 0; t < num_tiles; ++t) {
    size_t max_slots = 0;
    for (const CollisionPairConfig& pair : config_.pairs) {
      max_slots = std::max(
          max_slots,
          blocks_[static_cast<size_t>(pair.species_a)]->tiles.tile(t).soa().size());
      max_slots = std::max(
          max_slots,
          blocks_[static_cast<size_t>(pair.species_b)]->tiles.tile(t).soa().size());
    }
    TileScratch& ts = scratch_[static_cast<size_t>(t)];
    if (ts.perm_a.size() < max_slots) {
      ts.perm_a.resize(max_slots);
      ts.perm_b.resize(max_slots);
    }
    if (!ts.perm_a.empty()) {
      hw_.RegisterRegionKeyed(MemRegionKey(mem_owner_id_, t, 0), ts.perm_a.data(),
                              ts.perm_a.size() * sizeof(int32_t));
      hw_.RegisterRegionKeyed(MemRegionKey(mem_owner_id_, t, 1), ts.perm_b.data(),
                              ts.perm_b.size() * sizeof(int32_t));
    }
  }

  // One fan-out covers every configured pair: all mutations are cell-private
  // (a cell's particles live in one tile of each species), and the per-cell
  // RNG streams are pure functions of (seed, step, cell, pair), so the result
  // is bit-identical for any tile partition, core count, or thread count.
  std::vector<PaddedSlot<CollisionStepStats>> partials(
      static_cast<size_t>(WorkerSlotCount(hw_)));
  ParallelForTiles(hw_, num_tiles, [&](HwContext& hw, int worker, int t) {
    PhaseScope phase(hw.ledger(), Phase::kCollide);
    CollisionStepStats& stats = partials[static_cast<size_t>(worker)].value;
    for (size_t p = 0; p < config_.pairs.size(); ++p) {
      const CollisionPairConfig& pair = config_.pairs[p];
      CollideTile(hw, pair, static_cast<int>(p), pair_coeff_[p],
                  *blocks_[static_cast<size_t>(pair.species_a)],
                  *blocks_[static_cast<size_t>(pair.species_b)], t, step, dt,
                  &stats);
    }
  });

  last_stats_ = CollisionStepStats{};
  for (const PaddedSlot<CollisionStepStats>& slot : partials) {
    last_stats_.pairs += slot.value.pairs;
    last_stats_.covered += slot.value.covered;
    last_stats_.unpaired += slot.value.unpaired;
  }
}

namespace {

// Loads the bin's pids into `perm` and Fisher-Yates shuffles them, charging
// the modeled index reads and shuffle writes.
void LoadAndShuffleBin(HwContext& hw, const Gpma& gpma, int cell, Rng& rng,
                       std::vector<int32_t>& perm, int32_t* out_len) {
  const int64_t off = gpma.BinOffset(cell);
  const int32_t len = gpma.BinLen(cell);
  *out_len = len;
  if (len <= 0) {
    return;
  }
  const auto& index = gpma.local_index();
  hw.TouchRead(&index[static_cast<size_t>(off)], sizeof(int32_t) * len);
  for (int32_t s = 0; s < len; ++s) {
    perm[static_cast<size_t>(s)] = index[static_cast<size_t>(off + s)];
  }
  for (int32_t i = len - 1; i > 0; --i) {
    const auto j =
        static_cast<int32_t>(rng.NextBelow(static_cast<uint64_t>(i) + 1));
    std::swap(perm[static_cast<size_t>(i)], perm[static_cast<size_t>(j)]);
  }
  hw.ScalarOps(3 * len);  // RNG draw + swap per element
  hw.TouchWrite(perm.data(), sizeof(int32_t) * len);
}

// Sums the bin's macro-weights (perm holds the bin's pids, length len).
double SumWeights(HwContext& hw, const ParticleSoA& soa,
                  const std::vector<int32_t>& perm, int32_t len) {
  double sum = 0.0;
  for (int32_t s = 0; s < len; ++s) {
    sum += hw.LoadScalar(&soa.w[static_cast<size_t>(perm[static_cast<size_t>(s)])]);
  }
  hw.ScalarOps(len);
  return sum;
}

}  // namespace

void CollisionModule::CollideTile(HwContext& hw, const CollisionPairConfig& pair,
                                  int pair_index, double coeff, SpeciesBlock& a,
                                  SpeciesBlock& b, int t, int64_t step, double dt,
                                  CollisionStepStats* stats) {
  const bool intra = pair.species_a == pair.species_b;
  ParticleTile& tile_a = a.tiles.tile(t);
  ParticleTile& tile_b = b.tiles.tile(t);
  if (tile_a.num_live() == 0 && tile_b.num_live() == 0) {
    return;
  }
  if (intra && tile_a.num_live() < 2) {
    stats->unpaired += tile_a.num_live();
    return;
  }
  const GridGeometry& geom = a.tiles.geom();
  const double inv_cell_volume = 1.0 / (geom.dx * geom.dy * geom.dz);
  TileScratch& ts = scratch_[static_cast<size_t>(t)];
  ParticleSoA& soa_a = tile_a.soa();
  ParticleSoA& soa_b = tile_b.soa();

  const Gpma& gpma_a = tile_a.gpma();
  const Gpma& gpma_b = tile_b.gpma();
  for (int cell = 0; cell < gpma_a.num_cells(); ++cell) {
    const int32_t len_a = gpma_a.BinLen(cell);
    const int32_t len_b = intra ? len_a : gpma_b.BinLen(cell);
    if (intra) {
      if (len_a < 2) {
        stats->unpaired += len_a;
        continue;
      }
    } else if (len_a == 0 || len_b == 0) {
      stats->unpaired += len_a + len_b;
      continue;
    }

    // Counter-based stream: a pure function of (seed, step, global cell,
    // pair), so the draw sequence is identical no matter which core or
    // schedule processes the cell.
    int ix, iy, iz;
    tile_a.LocalCellToGlobal(cell, &ix, &iy, &iz);
    const uint64_t cell_key = static_cast<uint64_t>(
        ix + geom.nx * (iy + static_cast<int64_t>(geom.ny) * iz));
    Rng rng = Rng::ForStream(config_.seed, static_cast<uint64_t>(step), cell_key,
                             static_cast<uint64_t>(pair_index));

    int32_t na = 0, nb = 0;
    LoadAndShuffleBin(hw, gpma_a, cell, rng, ts.perm_a, &na);
    const double sw_a = SumWeights(hw, soa_a, ts.perm_a, na);
    double n_eff = sw_a * inv_cell_volume;
    if (!intra) {
      LoadAndShuffleBin(hw, gpma_b, cell, rng, ts.perm_b, &nb);
      const double sw_b = SumWeights(hw, soa_b, ts.perm_b, nb);
      // Inter-species rate uses the sparser population's density (the
      // wrap-around pairing already scatters each majority particle once).
      n_eff = std::min(n_eff, sw_b * inv_cell_volume);
    }

    ts.pairs.clear();
    if (intra) {
      AppendIntraCellPairs(na, &ts.pairs);
    } else {
      AppendInterCellPairs(na, nb, &ts.pairs);
    }
    stats->pairs += static_cast<int64_t>(ts.pairs.size());
    stats->covered += intra ? na : na + nb;

    const std::vector<int32_t>& perm_b = intra ? ts.perm_a : ts.perm_b;
    ParticleSoA& soa_2 = intra ? soa_a : soa_b;
    const double mass_a = a.species.mass;
    const double mass_b = b.species.mass;
    for (const CellPair& cp : ts.pairs) {
      const auto pid_a = static_cast<size_t>(ts.perm_a[static_cast<size_t>(cp.a)]);
      const auto pid_b = static_cast<size_t>(perm_b[static_cast<size_t>(cp.b)]);
      double u1[3] = {hw.LoadScalar(&soa_a.ux[pid_a]),
                      hw.LoadScalar(&soa_a.uy[pid_a]),
                      hw.LoadScalar(&soa_a.uz[pid_a])};
      double u2[3] = {hw.LoadScalar(&soa_2.ux[pid_b]),
                      hw.LoadScalar(&soa_2.uy[pid_b]),
                      hw.LoadScalar(&soa_2.uz[pid_b])};
      const double w1 = hw.LoadScalar(&soa_a.w[pid_a]);
      const double w2 = hw.LoadScalar(&soa_2.w[pid_b]);

      const double gx = u1[0] - u2[0];
      const double gy = u1[1] - u2[1];
      const double gz = u1[2] - u2[2];
      const double g2 = gx * gx + gy * gy + gz * gz;
      // ~45 scalar ops for the angle sampling and rotation, plus the
      // Box-Muller draw; charged whether or not the pair scatters so the
      // modeled cost tracks the pair count, not the physics outcome.
      hw.ScalarOps(45);
      if (g2 <= 0.0) {
        continue;  // identical velocities: Coulomb scattering is the identity
      }
      const double g = std::sqrt(g2);
      const double var = coeff * n_eff * dt * cp.dt_scale / (g2 * g);
      double cos_theta, sin_theta;
      if (var < 1.0) {
        const double delta = std::sqrt(var) * rng.NextGaussian();
        const double d2 = delta * delta;
        cos_theta = (1.0 - d2) / (1.0 + d2);
        sin_theta = 2.0 * delta / (1.0 + d2);
      } else {
        // Strongly collisional limit: the small-angle expansion is invalid;
        // draw an isotropic scattering angle instead.
        cos_theta = 1.0 - 2.0 * rng.NextDouble();
        sin_theta = std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
      }
      const double phi = 2.0 * M_PI * rng.NextDouble();
      ScatterPair(cos_theta, sin_theta, phi, mass_a, w1, mass_b, w2, u1, u2);

      hw.StoreScalar(&soa_a.ux[pid_a], u1[0]);
      hw.StoreScalar(&soa_a.uy[pid_a], u1[1]);
      hw.StoreScalar(&soa_a.uz[pid_a], u1[2]);
      hw.StoreScalar(&soa_2.ux[pid_b], u2[0]);
      hw.StoreScalar(&soa_2.uy[pid_b], u2[1]);
      hw.StoreScalar(&soa_2.uz[pid_b], u2[2]);
    }
  }
}

}  // namespace mpic

// Binary Monte-Carlo Coulomb collisions after Takizuka & Abe (1977), riding
// the GPMA cell sort.
//
// The incremental sort keeps every tile cell-ordered each step — exactly the
// per-cell particle grouping a binary collision operator needs. Per step the
// module iterates each tile's cells through the GPMA bins, shuffles the cell's
// particles with a counter-based per-cell stream, forms Takizuka-Abe pairs
// (src/collide/pairing.h), and rotates each pair's relative proper velocity by
// a sampled scattering angle:
//
//   delta = tan(theta/2) ~ N(0, <delta^2>),
//   <delta^2> = q_a^2 q_b^2 n lnLambda dt / (8 pi eps0^2 m_ab^2 g^3),
//
// falling back to an isotropic angle when <delta^2> exceeds 1 (the strongly
// collisional / cold limit, where the small-angle expansion breaks down). The
// pair update applies one impulse p = mu_w * dg with the weight-aware reduced
// mass mu_w = w_a m_a w_b m_b / (w_a m_a + w_b m_b), so weighted momentum
// sum(w m u) is conserved exactly per pair for arbitrary macro-weights (for
// equal weights this is exactly TA; for unequal weights it trades the exact
// per-particle scattering statistics for exact conservation). The operator is
// non-relativistic in the proper velocities (u = gamma v ~ v for the thermal
// speeds the workloads run), so sum(w m u) and sum(w m |u|^2)/2 are invariants
// and the relativistic kinetic energy is conserved to O(u^2/c^2) of the
// exchanged energy.
//
// Determinism: every cell draws from Rng::ForStream(seed, step, cell, pair),
// a pure function of the keys — independent of tile partition, core count,
// thread count, and fused/legacy orchestration. Cells only touch their own
// bin's particles, so tiles fan out over the modeled cores like every other
// tile-parallel stage; all cost is charged under Phase::kCollide and the
// pairing scratch registers with the MemMap under stable keys so modeled
// cycles stay bit-deterministic across runs.

#ifndef MPIC_SRC_COLLIDE_COLLISION_H_
#define MPIC_SRC_COLLIDE_COLLISION_H_

#include <cstdint>
#include <vector>

#include "src/collide/pairing.h"
#include "src/core/species_block.h"
#include "src/hw/hw_context.h"

namespace mpic {

// One colliding species pair. species_a == species_b selects intra-species
// (TA even/triplet) pairing; distinct ids select inter-species wrap-around
// pairing. Both species must run a sort mode that keeps the GPMA valid
// (incremental or global-each-step — the unsorted baselines have no per-cell
// particle lists to pair from).
struct CollisionPairConfig {
  int species_a = 0;
  int species_b = 0;
  double coulomb_log = 10.0;
};

struct CollisionConfig {
  // Master switch: with false the module is never constructed, regardless of
  // the pair list (handy for with/without ablations of the same workload).
  bool enabled = true;
  uint64_t seed = 0xC0111DE5ull;
  // Inter-species pairs (intra-species pairs are usually surfaced per species
  // via SpeciesConfig::collide_self; listing {s, s} here is equivalent).
  std::vector<CollisionPairConfig> pairs;
};

// Per-step census of the collision stage (summed over all configured pairs).
struct CollisionStepStats {
  int64_t pairs = 0;     // pairs scattered
  int64_t covered = 0;   // particle pairing incidences: for each configured
                         // pair, every particle in a cell that produced pairs
                         // counts once (triplet/wrap-around reuse included)
  int64_t unpaired = 0;  // pairing incidences skipped: lone intra particles
                         // and cells whose partner species bin is empty
};

// Rotates the pair's relative proper velocity g = u1 - u2 by scattering angle
// theta (given as cos/sin) and azimuth phi, then applies the equal-and-
// opposite impulse with the weight-aware reduced mass. Pure function, exposed
// for the conservation unit tests.
void ScatterPair(double cos_theta, double sin_theta, double phi, double m1,
                 double w1, double m2, double w2, double u1[3], double u2[3]);

class CollisionModule {
 public:
  CollisionModule(HwContext& hw, const CollisionConfig& config);

  // Binds the block registry (pointers must stay valid for the module's
  // lifetime — Simulation's registry is frozen once initialized), validates
  // the pair list against it (ids in range, GPMA kept valid by both species'
  // sort modes, identical tile decompositions), and sizes the per-tile
  // pairing scratch. Call after the engines' Initialize.
  void Initialize(std::vector<SpeciesBlock*> blocks);

  // Applies one collision step to the bound registry: one tile-parallel
  // fan-out covering every configured pair, charged under Phase::kCollide.
  // `step` keys the RNG streams (pass the simulation's step count); `dt` is
  // the full particle step in seconds.
  void Apply(int64_t step, double dt);

  const CollisionConfig& config() const { return config_; }
  const CollisionStepStats& last_step_stats() const { return last_stats_; }

 private:
  struct TileScratch {
    std::vector<int32_t> perm_a;  // shuffled pid list of the A-side bin
    std::vector<int32_t> perm_b;  // shuffled pid list of the B-side bin
    std::vector<CellPair> pairs;  // pair list of the current cell
  };

  // Collides every cell of tile `t` for one configured pair, charging `hw`.
  void CollideTile(HwContext& hw, const CollisionPairConfig& pair, int pair_index,
                   double coeff, SpeciesBlock& a, SpeciesBlock& b, int t,
                   int64_t step, double dt, CollisionStepStats* stats);

  HwContext& hw_;
  CollisionConfig config_;
  std::vector<SpeciesBlock*> blocks_;  // bound registry (not owned)
  // Key base for the pairing scratch's keyed registrations (tile t uses
  // MemRegionKey(mem_owner_id_, t, 0..1)).
  uint64_t mem_owner_id_;
  // Per-pair precomputed q_a^2 q_b^2 lnLambda / (8 pi eps0^2 m_ab^2).
  std::vector<double> pair_coeff_;
  std::vector<TileScratch> scratch_;  // per tile
  CollisionStepStats last_stats_;
};

}  // namespace mpic

#endif  // MPIC_SRC_COLLIDE_COLLISION_H_

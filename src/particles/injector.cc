#include "src/particles/injector.h"

#include "src/common/check.h"
#include "src/particles/species.h"

namespace mpic {
namespace {

// Places the regular sub-cell lattice used by WarpX-style injection: particle
// (a,b,c) sits at fractional offset ((a+0.5)/ppc_x, ...) within the cell.
template <typename PerParticleFn>
void ForEachLatticePos(const GridGeometry& geom, int ix, int iy, int iz, int ppc_x,
                       int ppc_y, int ppc_z, PerParticleFn&& fn) {
  for (int c = 0; c < ppc_z; ++c) {
    for (int b = 0; b < ppc_y; ++b) {
      for (int a = 0; a < ppc_x; ++a) {
        const double x = geom.x0 + (ix + (a + 0.5) / ppc_x) * geom.dx;
        const double y = geom.y0 + (iy + (b + 0.5) / ppc_y) * geom.dy;
        const double z = geom.z0 + (iz + (c + 0.5) / ppc_z) * geom.dz;
        fn(x, y, z);
      }
    }
  }
}

}  // namespace

int64_t InjectUniformPlasma(TileSet& tiles, const UniformPlasmaConfig& config) {
  MPIC_CHECK(config.TotalPpc() > 0);
  const GridGeometry& geom = tiles.geom();
  Rng rng(config.seed);
  const double cell_volume = geom.dx * geom.dy * geom.dz;
  const double weight = config.density * cell_volume / config.TotalPpc();
  const double u_th = config.u_th * kSpeedOfLight;
  const double ud_x = config.u_drift_x * kSpeedOfLight;
  const double ud_y = config.u_drift_y * kSpeedOfLight;
  const double ud_z = config.u_drift_z * kSpeedOfLight;
  int64_t added = 0;
  for (int iz = 0; iz < geom.nz; ++iz) {
    for (int iy = 0; iy < geom.ny; ++iy) {
      for (int ix = 0; ix < geom.nx; ++ix) {
        ForEachLatticePos(geom, ix, iy, iz, config.ppc_x, config.ppc_y, config.ppc_z,
                          [&](double x, double y, double z) {
                            Particle p;
                            p.x = x;
                            p.y = y;
                            p.z = z;
                            p.ux = ud_x + u_th * rng.NextGaussian();
                            p.uy = ud_y + u_th * rng.NextGaussian();
                            p.uz = ud_z + u_th * rng.NextGaussian();
                            p.w = weight;
                            tiles.AddParticle(p);
                            ++added;
                          });
      }
    }
  }
  return added;
}

namespace {

// Shared generation loop of the profiled injector: fn(p) for every particle,
// in the canonical global cell order with the canonical RNG sequence.
template <typename PerParticleFn>
int64_t GenerateProfiledPlasma(const GridGeometry& geom,
                               const ProfiledPlasmaConfig& config,
                               PerParticleFn&& fn) {
  MPIC_CHECK(config.profile != nullptr);
  Rng rng(config.seed);
  const int ppc = config.ppc_x * config.ppc_y * config.ppc_z;
  MPIC_CHECK(ppc > 0);
  const double cell_volume = geom.dx * geom.dy * geom.dz;
  const double u_th = config.u_th * kSpeedOfLight;
  const int z_hi = config.z_cell_hi < 0 ? geom.nz : config.z_cell_hi;
  int64_t added = 0;
  for (int iz = config.z_cell_lo; iz < z_hi; ++iz) {
    for (int iy = 0; iy < geom.ny; ++iy) {
      for (int ix = 0; ix < geom.nx; ++ix) {
        const double z_center = geom.z0 + (iz + 0.5) * geom.dz;
        const double density = config.profile(z_center);
        if (density <= 0.0) {
          continue;
        }
        const double weight = density * cell_volume / ppc;
        ForEachLatticePos(geom, ix, iy, iz, config.ppc_x, config.ppc_y, config.ppc_z,
                          [&](double x, double y, double z) {
                            Particle p;
                            p.x = x;
                            p.y = y;
                            p.z = z;
                            if (u_th > 0.0) {
                              p.ux = u_th * rng.NextGaussian();
                              p.uy = u_th * rng.NextGaussian();
                              p.uz = u_th * rng.NextGaussian();
                            }
                            p.w = weight;
                            fn(p);
                            ++added;
                          });
      }
    }
  }
  return added;
}

}  // namespace

int64_t InjectProfiledPlasma(TileSet& tiles, const ProfiledPlasmaConfig& config,
                             std::vector<TileSet::Handle>* handles) {
  return GenerateProfiledPlasma(tiles.geom(), config, [&](const Particle& p) {
    const TileSet::Handle h = tiles.AddParticle(p);
    if (handles != nullptr) {
      handles->push_back(h);
    }
  });
}

std::vector<std::vector<Particle>> BuildProfiledPlasmaTileLists(
    const TileSet& tiles, const ProfiledPlasmaConfig& config) {
  std::vector<std::vector<Particle>> lists(
      static_cast<size_t>(tiles.num_tiles()));
  const GridGeometry& geom = tiles.geom();
  GenerateProfiledPlasma(geom, config, [&](const Particle& p) {
    const int t = tiles.TileOfCell(geom.CellX(p.x), geom.CellY(p.y),
                                   geom.CellZ(p.z));
    lists[static_cast<size_t>(t)].push_back(p);
  });
  return lists;
}

}  // namespace mpic

#include "src/particles/particle_soa.h"

#include "src/common/check.h"

namespace mpic {

int32_t ParticleSoA::Append(const Particle& p) {
  x.push_back(p.x);
  y.push_back(p.y);
  z.push_back(p.z);
  ux.push_back(p.ux);
  uy.push_back(p.uy);
  uz.push_back(p.uz);
  w.push_back(p.w);
  xo.push_back(p.xo);
  yo.push_back(p.yo);
  zo.push_back(p.zo);
  return static_cast<int32_t>(x.size() - 1);
}

void ParticleSoA::Set(int32_t i, const Particle& p) {
  MPIC_DCHECK(i >= 0 && static_cast<size_t>(i) < size());
  const auto idx = static_cast<size_t>(i);
  x[idx] = p.x;
  y[idx] = p.y;
  z[idx] = p.z;
  ux[idx] = p.ux;
  uy[idx] = p.uy;
  uz[idx] = p.uz;
  w[idx] = p.w;
  xo[idx] = p.xo;
  yo[idx] = p.yo;
  zo[idx] = p.zo;
}

Particle ParticleSoA::Get(int32_t i) const {
  MPIC_DCHECK(i >= 0 && static_cast<size_t>(i) < size());
  const auto idx = static_cast<size_t>(i);
  return Particle{x[idx],  y[idx],  z[idx],  ux[idx], uy[idx], uz[idx],
                  w[idx],  xo[idx], yo[idx], zo[idx]};
}

void ParticleSoA::Reserve(size_t n) {
  x.reserve(n);
  y.reserve(n);
  z.reserve(n);
  ux.reserve(n);
  uy.reserve(n);
  uz.reserve(n);
  w.reserve(n);
  xo.reserve(n);
  yo.reserve(n);
  zo.reserve(n);
}

void ParticleSoA::Clear() {
  x.clear();
  y.clear();
  z.clear();
  ux.clear();
  uy.clear();
  uz.clear();
  w.clear();
  xo.clear();
  yo.clear();
  zo.clear();
}

}  // namespace mpic

// Structure-of-Arrays particle storage for one tile.
//
// Components use the common PIC convention: position in meters, momentum as
// proper velocity u = gamma*v in m/s, and a macro-particle weight w (number of
// physical particles represented). Slots are stable: a particle's index (its
// tile-local pid) never changes between global sorts; removed slots are
// recycled through the owning tile's free list.

#ifndef MPIC_SRC_PARTICLES_PARTICLE_SOA_H_
#define MPIC_SRC_PARTICLES_PARTICLE_SOA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpic {

struct Particle {
  double x = 0.0, y = 0.0, z = 0.0;
  double ux = 0.0, uy = 0.0, uz = 0.0;
  double w = 1.0;
  // Pre-push position (old-position lanes), consumed by the charge-conserving
  // Esirkepov current scheme. Carried through Get/Set/Append so a particle's
  // displacement stays well-defined across tile hops (mover delivery) and
  // counting sorts. Valid only between the capture stage and the deposit of
  // the same step; freshly created particles may leave it at 0.
  double xo = 0.0, yo = 0.0, zo = 0.0;
};

class ParticleSoA {
 public:
  size_t size() const { return x.size(); }

  // Appends a slot and returns its index.
  int32_t Append(const Particle& p);

  // Overwrites an existing slot.
  void Set(int32_t i, const Particle& p);
  Particle Get(int32_t i) const;

  void Reserve(size_t n);
  void Clear();

  std::vector<double> x, y, z;
  std::vector<double> ux, uy, uz;
  std::vector<double> w;
  // Old-position lanes (see Particle::xo): written by the pipeline's capture
  // stage each step when the engine runs CurrentScheme::kEsirkepov, shifted
  // alongside the position on periodic wrap, and permuted with the other
  // lanes by the counting sort.
  std::vector<double> xo, yo, zo;
};

}  // namespace mpic

#endif  // MPIC_SRC_PARTICLES_PARTICLE_SOA_H_

// Physical constants and species description.

#ifndef MPIC_SRC_PARTICLES_SPECIES_H_
#define MPIC_SRC_PARTICLES_SPECIES_H_

#include <string>

namespace mpic {

// SI physical constants (CODATA 2018 values, as used by WarpX).
inline constexpr double kSpeedOfLight = 299792458.0;            // m/s
inline constexpr double kElectronCharge = -1.602176634e-19;     // C
inline constexpr double kElectronMass = 9.1093837015e-31;       // kg
inline constexpr double kEpsilon0 = 8.8541878128e-12;           // F/m
inline constexpr double kMu0 = 1.25663706212e-6;                // H/m

struct Species {
  std::string name = "electrons";
  double charge = kElectronCharge;  // C
  double mass = kElectronMass;      // kg

  static Species Electron() { return Species{}; }
  static Species Proton() {
    return Species{"protons", -kElectronCharge, 1.67262192369e-27};
  }
};

}  // namespace mpic

#endif  // MPIC_SRC_PARTICLES_SPECIES_H_

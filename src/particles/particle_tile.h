// ParticleTile: the unit of particle decomposition (paper: particles.tile_size,
// e.g. 8x8x8 cells). Each tile owns
//   * a ParticleSoA whose slot indices are the tile-local particle ids (pids),
//   * a free-slot stack recycling removed pids,
//   * a live bitmap (for the unsorted baselines that iterate in slot order),
//   * a Gpma binning live pids by tile-local cell (for the sorted kernels).
//
// Slots are stable between global sorts; the GPMA manipulates indices only,
// deferring data movement to GlobalSortTile() — exactly the paper's strategy.

#ifndef MPIC_SRC_PARTICLES_PARTICLE_TILE_H_
#define MPIC_SRC_PARTICLES_PARTICLE_TILE_H_

#include <cstdint>
#include <vector>

#include "src/grid/grid_geometry.h"
#include "src/particles/particle_soa.h"
#include "src/sort/gpma.h"

namespace mpic {

class ParticleTile {
 public:
  // Cell box [lo, lo+n) per axis, in global cell indices.
  ParticleTile(int lo_x, int lo_y, int lo_z, int nx, int ny, int nz);

  int lo_x() const { return lo_x_; }
  int lo_y() const { return lo_y_; }
  int lo_z() const { return lo_z_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  int num_cells() const { return nx_ * ny_ * nz_; }

  bool ContainsCell(int ix, int iy, int iz) const {
    return ix >= lo_x_ && ix < lo_x_ + nx_ && iy >= lo_y_ && iy < lo_y_ + ny_ &&
           iz >= lo_z_ && iz < lo_z_ + nz_;
  }
  // Tile-local linear cell id (x fastest).
  int LocalCellId(int ix, int iy, int iz) const {
    return (ix - lo_x_) + nx_ * ((iy - lo_y_) + ny_ * (iz - lo_z_));
  }
  void LocalCellToGlobal(int local, int* ix, int* iy, int* iz) const {
    *ix = lo_x_ + local % nx_;
    *iy = lo_y_ + (local / nx_) % ny_;
    *iz = lo_z_ + local / (nx_ * ny_);
  }

  // Adds a particle (recycling a free slot if available); returns its pid.
  // The caller must separately insert the pid into the GPMA when the tile is
  // operating in sorted mode (the core engine owns that decision).
  int32_t AddParticle(const Particle& p);
  // Releases the slot. The pid must not be referenced by the GPMA anymore.
  void RemoveParticle(int32_t pid);

  bool IsLive(int32_t pid) const { return live_[static_cast<size_t>(pid)] != 0; }
  int32_t num_live() const { return num_live_; }
  // Total slots (live + free) in the SoA.
  int32_t num_slots() const { return static_cast<int32_t>(soa_.size()); }

  ParticleSoA& soa() { return soa_; }
  const ParticleSoA& soa() const { return soa_; }
  Gpma& gpma() { return gpma_; }
  const Gpma& gpma() const { return gpma_; }

  // (Re)builds the GPMA from current live particles' cells. O(n).
  void BuildGpma(const GridGeometry& geom, const GpmaConfig& config);

  // Compacts the SoA in cell-sorted order and rebuilds the GPMA — the per-tile
  // piece of GlobalSortParticlesByCell. Returns the number of particles moved.
  int64_t GlobalSortTile(const GridGeometry& geom, const GpmaConfig& config);

  // Computes the tile-local cell of a live particle from its position.
  int CellOfParticle(const GridGeometry& geom, int32_t pid) const;

  // ---- Checkpoint support (src/runtime/checkpoint.h) ----
  //
  // The free-slot stack is serialized in exact stack order: AddParticle
  // recycles slots LIFO, so slot assignment after a restore replays the
  // uninterrupted run bit-for-bit only if the stack matches exactly.
  const std::vector<int32_t>& free_slots() const { return free_slots_; }
  const std::vector<uint8_t>& live_bits() const { return live_; }
  // Replaces the tile's particle storage wholesale (checkpoint restore).
  // `live` must be one byte per SoA slot; `num_live_` is recomputed from it.
  // The GPMA is restored separately through gpma().ImportState().
  void RestoreStorage(ParticleSoA soa, std::vector<uint8_t> live,
                      std::vector<int32_t> free_slots);

  bool was_rebuilt_this_step = false;

 private:
  int lo_x_, lo_y_, lo_z_;
  int nx_, ny_, nz_;
  ParticleSoA soa_;
  Gpma gpma_;
  std::vector<int32_t> free_slots_;
  std::vector<uint8_t> live_;
  int32_t num_live_ = 0;
};

}  // namespace mpic

#endif  // MPIC_SRC_PARTICLES_PARTICLE_TILE_H_

#include "src/particles/particle_tile.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/sort/counting_sort.h"

namespace mpic {

ParticleTile::ParticleTile(int lo_x, int lo_y, int lo_z, int nx, int ny, int nz)
    : lo_x_(lo_x), lo_y_(lo_y), lo_z_(lo_z), nx_(nx), ny_(ny), nz_(nz) {
  MPIC_CHECK(nx > 0 && ny > 0 && nz > 0);
}

int32_t ParticleTile::AddParticle(const Particle& p) {
  int32_t pid;
  if (!free_slots_.empty()) {
    pid = free_slots_.back();
    free_slots_.pop_back();
    soa_.Set(pid, p);
    live_[static_cast<size_t>(pid)] = 1;
  } else {
    pid = soa_.Append(p);
    live_.push_back(1);
  }
  ++num_live_;
  return pid;
}

void ParticleTile::RemoveParticle(int32_t pid) {
  MPIC_DCHECK(pid >= 0 && static_cast<size_t>(pid) < live_.size());
  MPIC_CHECK_MSG(live_[static_cast<size_t>(pid)] != 0, "double remove");
  live_[static_cast<size_t>(pid)] = 0;
  free_slots_.push_back(pid);
  --num_live_;
}

void ParticleTile::RestoreStorage(ParticleSoA soa, std::vector<uint8_t> live,
                                  std::vector<int32_t> free_slots) {
  MPIC_CHECK(live.size() == soa.size());
  soa_ = std::move(soa);
  live_ = std::move(live);
  free_slots_ = std::move(free_slots);
  num_live_ = 0;
  for (const uint8_t b : live_) {
    num_live_ += b != 0 ? 1 : 0;
  }
  MPIC_CHECK(static_cast<size_t>(num_live_) + free_slots_.size() == soa_.size());
  was_rebuilt_this_step = false;
}

int ParticleTile::CellOfParticle(const GridGeometry& geom, int32_t pid) const {
  const auto i = static_cast<size_t>(pid);
  const int ix = geom.CellX(soa_.x[i]);
  const int iy = geom.CellY(soa_.y[i]);
  const int iz = geom.CellZ(soa_.z[i]);
  MPIC_DCHECK(ContainsCell(ix, iy, iz));
  return LocalCellId(ix, iy, iz);
}

void ParticleTile::BuildGpma(const GridGeometry& geom, const GpmaConfig& config) {
  // The GPMA requires dense pids: build over all slots, assigning dead slots to
  // cell 0 then removing them, so pid == SoA slot stays true.
  std::vector<int32_t> cells(soa_.size(), 0);
  for (size_t pid = 0; pid < soa_.size(); ++pid) {
    if (live_[pid] != 0) {
      cells[pid] = static_cast<int32_t>(CellOfParticle(geom, static_cast<int32_t>(pid)));
    }
  }
  gpma_.Build(cells, std::max(1, num_cells()), config);
  for (size_t pid = 0; pid < soa_.size(); ++pid) {
    if (live_[pid] == 0) {
      gpma_.Remove(static_cast<int32_t>(pid));
    }
  }
}

int64_t ParticleTile::GlobalSortTile(const GridGeometry& geom,
                                     const GpmaConfig& config) {
  // Compact live particles in cell order, dropping free slots entirely.
  const size_t n_slots = soa_.size();
  std::vector<int32_t> live_pids;
  std::vector<int32_t> live_cells;
  live_pids.reserve(static_cast<size_t>(num_live_));
  live_cells.reserve(static_cast<size_t>(num_live_));
  for (size_t pid = 0; pid < n_slots; ++pid) {
    if (live_[pid] != 0) {
      live_pids.push_back(static_cast<int32_t>(pid));
      live_cells.push_back(
          static_cast<int32_t>(CellOfParticle(geom, static_cast<int32_t>(pid))));
    }
  }
  const std::vector<int32_t> perm =
      CountingSortPermutation(live_cells, std::max(1, num_cells()));

  ParticleSoA sorted;
  sorted.Reserve(live_pids.size());
  std::vector<int32_t> sorted_cells(live_pids.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    const int32_t src = live_pids[static_cast<size_t>(perm[i])];
    sorted.Append(soa_.Get(src));
    sorted_cells[i] = live_cells[static_cast<size_t>(perm[i])];
  }
  soa_ = std::move(sorted);
  live_.assign(soa_.size(), 1);
  free_slots_.clear();
  num_live_ = static_cast<int32_t>(soa_.size());
  gpma_.Build(sorted_cells, std::max(1, num_cells()), config);
  was_rebuilt_this_step = false;
  return static_cast<int64_t>(soa_.size());
}

}  // namespace mpic

// Particle injectors for the paper's workloads.
//
// UniformPlasmaInjector reproduces the uniform plasma setup (Table 4): a fixed
// number of particles per cell placed on a regular sub-cell lattice with a
// Maxwellian momentum spread u_th (in units of c). LwfaPlasmaInjector places an
// initially-cold background plasma with an arbitrary density profile along z
// (used by the LWFA workload, including moving-window continuous injection).

#ifndef MPIC_SRC_PARTICLES_INJECTOR_H_
#define MPIC_SRC_PARTICLES_INJECTOR_H_

#include <functional>

#include "src/common/rng.h"
#include "src/particles/tile_set.h"

namespace mpic {

struct UniformPlasmaConfig {
  // Particles per cell per dimension, e.g. {4, 4, 4} -> PPC 64.
  int ppc_x = 1, ppc_y = 1, ppc_z = 1;
  double density = 1e25;  // physical particles per m^3
  double u_th = 0.01;     // thermal proper velocity in units of c
  // Bulk drift added to every particle's proper velocity, in units of c
  // (counter-streaming beam setups).
  double u_drift_x = 0.0, u_drift_y = 0.0, u_drift_z = 0.0;
  uint64_t seed = 42;

  int TotalPpc() const { return ppc_x * ppc_y * ppc_z; }
};

// Fills the whole domain of `tiles`. Returns the number of macro-particles.
int64_t InjectUniformPlasma(TileSet& tiles, const UniformPlasmaConfig& config);

// Density profile along z: physical particles per m^3 at position z.
using DensityProfile = std::function<double(double z)>;

struct ProfiledPlasmaConfig {
  int ppc_x = 1, ppc_y = 1, ppc_z = 1;
  DensityProfile profile;
  double u_th = 0.0;  // cold by default (LWFA background starts at rest)
  uint64_t seed = 42;
  // Only cells with iz in [z_cell_lo, z_cell_hi) are filled (moving-window
  // incremental injection fills the freshly exposed slab).
  int z_cell_lo = 0;
  int z_cell_hi = -1;  // -1 => whole domain
};

// When `handles` is non-null, every added particle's {tile, pid} is appended so
// the caller can register it with the sorting structures.
int64_t InjectProfiledPlasma(TileSet& tiles, const ProfiledPlasmaConfig& config,
                             std::vector<TileSet::Handle>* handles = nullptr);

// Tile-parallel injection support (moving-window refill): generates exactly
// the particles InjectProfiledPlasma would add — same RNG sequence, same
// global cell order — but routes them into per-destination-tile lists instead
// of inserting them. Within each list the particles keep their global
// generation order, so a per-tile insertion sweep assigns the same slots (and
// the same GPMA insertion order) as the serial injector, for any core/thread
// count. Mirrors the mover-delivery pattern: serial generation, parallel
// tile-private insertion.
std::vector<std::vector<Particle>> BuildProfiledPlasmaTileLists(
    const TileSet& tiles, const ProfiledPlasmaConfig& config);

}  // namespace mpic

#endif  // MPIC_SRC_PARTICLES_INJECTOR_H_

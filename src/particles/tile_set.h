// TileSet: partitions the simulation grid into particle tiles (ragged edge
// tiles allowed) and routes particles to the tile owning their cell.

#ifndef MPIC_SRC_PARTICLES_TILE_SET_H_
#define MPIC_SRC_PARTICLES_TILE_SET_H_

#include <vector>

#include "src/grid/grid_geometry.h"
#include "src/particles/particle_tile.h"

namespace mpic {

class TileSet {
 public:
  TileSet(const GridGeometry& geom, int tile_x, int tile_y, int tile_z);

  int num_tiles() const { return static_cast<int>(tiles_.size()); }
  // Tile-grid shape (tiles linearize as t = tx + ntx*(ty + nty*tz)) and the
  // nominal tile extent along z — the axis the rank decomposition slabs.
  int ntx() const { return ntx_; }
  int nty() const { return nty_; }
  int ntz() const { return ntz_; }
  int tile_z() const { return tile_z_; }
  ParticleTile& tile(int t) { return tiles_[static_cast<size_t>(t)]; }
  const ParticleTile& tile(int t) const { return tiles_[static_cast<size_t>(t)]; }

  // Index of the tile owning global cell (ix, iy, iz).
  int TileOfCell(int ix, int iy, int iz) const;
  // Index of the tile owning a position (which must be inside the domain).
  int TileOfPosition(double x, double y, double z) const;

  // Adds a particle to the owning tile; returns {tile, pid}.
  struct Handle {
    int tile = -1;
    int32_t pid = -1;
  };
  Handle AddParticle(const Particle& p);

  int64_t TotalLive() const;

  // Partitions the tiles into color classes whose members' *node footprints*
  // are pairwise disjoint, where a tile's footprint extends `halo_nodes` nodes
  // beyond its cell box on every side (the reach of the deposition shape:
  // 0 for CIC, 1 for QSP). Tiles within one class may therefore scatter onto
  // shared grid arrays concurrently; classes must run as sequential barriers.
  //
  // Per axis the schedule is the classic 2-coloring by tile-coordinate parity
  // (checkerboard); an axis whose interior tiles are too thin for parity to
  // separate same-color footprints (extent <= 2 * halo_nodes) degrades to one
  // color per coordinate on that axis, which is always safe. Classes are
  // ordered by color id and each class lists tiles in ascending index, so a
  // serial color-major sweep visits every shared node's contributors in the
  // same order as the parallel schedule.
  std::vector<std::vector<int>> HaloDisjointColoring(int halo_nodes) const;

  const GridGeometry& geom() const { return geom_; }
  // Moving-window support: the cell boxes stay fixed in index space while the
  // origin advances.
  void SetGeometry(const GridGeometry& g) { geom_ = g; }

 private:
  GridGeometry geom_;
  int tile_x_, tile_y_, tile_z_;  // nominal tile extent in cells
  int ntx_, nty_, ntz_;           // tiles per axis
  std::vector<ParticleTile> tiles_;
};

}  // namespace mpic

#endif  // MPIC_SRC_PARTICLES_TILE_SET_H_

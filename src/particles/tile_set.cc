#include "src/particles/tile_set.h"

#include <algorithm>

#include "src/common/check.h"

namespace mpic {
namespace {
int DivUp(int a, int b) { return (a + b - 1) / b; }
}  // namespace

TileSet::TileSet(const GridGeometry& geom, int tile_x, int tile_y, int tile_z)
    : geom_(geom), tile_x_(tile_x), tile_y_(tile_y), tile_z_(tile_z) {
  MPIC_CHECK(tile_x > 0 && tile_y > 0 && tile_z > 0);
  ntx_ = DivUp(geom.nx, tile_x);
  nty_ = DivUp(geom.ny, tile_y);
  ntz_ = DivUp(geom.nz, tile_z);
  tiles_.reserve(static_cast<size_t>(ntx_) * nty_ * ntz_);
  for (int tz = 0; tz < ntz_; ++tz) {
    for (int ty = 0; ty < nty_; ++ty) {
      for (int tx = 0; tx < ntx_; ++tx) {
        const int lo_x = tx * tile_x;
        const int lo_y = ty * tile_y;
        const int lo_z = tz * tile_z;
        const int nx = std::min(tile_x, geom.nx - lo_x);
        const int ny = std::min(tile_y, geom.ny - lo_y);
        const int nz = std::min(tile_z, geom.nz - lo_z);
        tiles_.emplace_back(lo_x, lo_y, lo_z, nx, ny, nz);
      }
    }
  }
}

int TileSet::TileOfCell(int ix, int iy, int iz) const {
  MPIC_DCHECK(ix >= 0 && ix < geom_.nx);
  MPIC_DCHECK(iy >= 0 && iy < geom_.ny);
  MPIC_DCHECK(iz >= 0 && iz < geom_.nz);
  const int tx = ix / tile_x_;
  const int ty = iy / tile_y_;
  const int tz = iz / tile_z_;
  return tx + ntx_ * (ty + nty_ * tz);
}

int TileSet::TileOfPosition(double x, double y, double z) const {
  return TileOfCell(geom_.CellX(x), geom_.CellY(y), geom_.CellZ(z));
}

TileSet::Handle TileSet::AddParticle(const Particle& p) {
  MPIC_CHECK_MSG(geom_.InDomain(p.x, p.y, p.z), "particle outside domain");
  const int t = TileOfPosition(p.x, p.y, p.z);
  const int32_t pid = tiles_[static_cast<size_t>(t)].AddParticle(p);
  return Handle{t, pid};
}

std::vector<std::vector<int>> TileSet::HaloDisjointColoring(int halo_nodes) const {
  MPIC_CHECK(halo_nodes >= 0);
  // Parity separates tiles t and t+2 along an axis iff the tile between them
  // is wider than both footprint overhangs combined. Edge tiles can be ragged,
  // so check every interior extent; a too-thin axis falls back to one color
  // per coordinate (serializing that axis, still correct for any geometry).
  auto colors_along = [&](int n_tiles, int nominal, int domain) {
    if (n_tiles <= 1) {
      return 1;
    }
    for (int i = 1; i + 1 < n_tiles; ++i) {
      const int extent = std::min(nominal, domain - i * nominal);
      if (extent <= 2 * halo_nodes) {
        return n_tiles;
      }
    }
    return 2;
  };
  const int cx = colors_along(ntx_, tile_x_, geom_.nx);
  const int cy = colors_along(nty_, tile_y_, geom_.ny);
  const int cz = colors_along(ntz_, tile_z_, geom_.nz);

  std::vector<std::vector<int>> classes(
      static_cast<size_t>(cx) * static_cast<size_t>(cy) * static_cast<size_t>(cz));
  for (int tz = 0; tz < ntz_; ++tz) {
    for (int ty = 0; ty < nty_; ++ty) {
      for (int tx = 0; tx < ntx_; ++tx) {
        const int color = (tx % cx) + cx * ((ty % cy) + cy * (tz % cz));
        classes[static_cast<size_t>(color)].push_back(tx + ntx_ * (ty + nty_ * tz));
      }
    }
  }
  // Drop empty classes (possible when an axis falls back to per-coordinate
  // colors); tile order within a class is ascending by construction.
  classes.erase(std::remove_if(classes.begin(), classes.end(),
                               [](const std::vector<int>& c) { return c.empty(); }),
                classes.end());
  return classes;
}

int64_t TileSet::TotalLive() const {
  int64_t n = 0;
  for (const auto& t : tiles_) {
    n += t.num_live();
  }
  return n;
}

}  // namespace mpic

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/sort/gpma.h"

namespace mpic {
namespace {

GpmaConfig SmallConfig() {
  GpmaConfig cfg;
  cfg.gap_fraction = 0.3;
  cfg.min_gap_per_bin = 1;
  cfg.max_shift_bins = 16;
  return cfg;
}

TEST(Gpma, BuildBinsParticlesByCell) {
  Gpma gpma;
  gpma.Build({2, 0, 2, 1, 0}, 3, SmallConfig());
  gpma.CheckInvariants();
  EXPECT_EQ(gpma.num_particles(), 5);
  EXPECT_EQ(gpma.BinLen(0), 2);
  EXPECT_EQ(gpma.BinLen(1), 1);
  EXPECT_EQ(gpma.BinLen(2), 2);
  EXPECT_EQ(gpma.CellOf(0), 2);
  EXPECT_EQ(gpma.CellOf(4), 0);
}

TEST(Gpma, BuildLeavesGaps) {
  Gpma gpma;
  gpma.Build({0, 0, 0, 0}, 2, SmallConfig());
  EXPECT_GT(gpma.capacity(), 4);
  EXPECT_EQ(gpma.num_empty_slots(), gpma.capacity() - 4);
  EXPECT_GE(gpma.BinCap(1), 1);  // empty bin still has gap slots
}

TEST(Gpma, RemoveIsO1SwapPop) {
  Gpma gpma;
  gpma.Build({0, 0, 0}, 1, SmallConfig());
  const auto res = gpma.Remove(0);
  EXPECT_TRUE(res.ok);
  EXPECT_LE(res.words_touched, 4);
  gpma.CheckInvariants();
  EXPECT_EQ(gpma.num_particles(), 2);
  EXPECT_EQ(gpma.CellOf(0), -1);
  EXPECT_EQ(gpma.CellOf(1), 0);
}

TEST(Gpma, InsertIntoGap) {
  Gpma gpma;
  gpma.Build({0, 1, 2}, 3, SmallConfig());
  gpma.Remove(1);
  const auto res = gpma.Insert(1, 2);
  EXPECT_TRUE(res.ok);
  gpma.CheckInvariants();
  EXPECT_EQ(gpma.CellOf(1), 2);
  EXPECT_EQ(gpma.BinLen(2), 2);
}

TEST(Gpma, InsertIntoFullBinBorrowsFromNeighbor) {
  GpmaConfig cfg = SmallConfig();
  cfg.gap_fraction = 0.0;
  cfg.min_gap_per_bin = 0;
  Gpma gpma;
  // Bin 0 has 2 slots and is full; bin 1 has 2 slots, 1 used; bin 2 full.
  gpma.Build({0, 0, 1, 2}, 3, cfg);
  // Give bin 1 a gap by removing then re-adding elsewhere is complex; instead
  // rebuild with a gapier config for bin 1 only: emulate by removing pid 2.
  gpma.Remove(2);
  // Bin 0 is full (cap 2, len 2). Inserting pid 4 must shift into bin 1's gap.
  const auto res = gpma.Insert(4, 0);
  EXPECT_TRUE(res.ok);
  gpma.CheckInvariants();
  EXPECT_EQ(gpma.BinLen(0), 3);
  EXPECT_EQ(gpma.CellOf(4), 0);
}

TEST(Gpma, InsertFailsWhenNoGapReachable) {
  GpmaConfig cfg = SmallConfig();
  cfg.gap_fraction = 0.0;
  cfg.min_gap_per_bin = 0;
  Gpma gpma;
  gpma.Build({0, 1, 2}, 3, cfg);  // every bin exactly full
  const auto res = gpma.Insert(3, 1);
  EXPECT_FALSE(res.ok);
  gpma.CheckInvariants();  // structure unchanged
  EXPECT_EQ(gpma.num_particles(), 3);
}

TEST(Gpma, RebuildRestoresGapsAndOrder) {
  GpmaConfig cfg = SmallConfig();
  cfg.gap_fraction = 0.0;
  cfg.min_gap_per_bin = 0;
  Gpma gpma;
  gpma.Build({0, 1, 2}, 3, cfg);
  EXPECT_FALSE(gpma.Insert(3, 1).ok);
  // Rebuild with gaps available (config kept; min_gap now applied per bin).
  gpma.Rebuild();
  gpma.CheckInvariants();
  EXPECT_EQ(gpma.num_particles(), 3);
  EXPECT_EQ(gpma.CellOf(0), 0);
  EXPECT_EQ(gpma.CellOf(1), 1);
  EXPECT_EQ(gpma.CellOf(2), 2);
}

TEST(Gpma, InsertBeyondBuildSetGrowsPidSpace) {
  Gpma gpma;
  gpma.Build({0}, 2, SmallConfig());
  const auto res = gpma.Insert(10, 1);
  EXPECT_TRUE(res.ok);
  gpma.CheckInvariants();
  EXPECT_EQ(gpma.CellOf(10), 1);
}

TEST(Gpma, EmptySlotRatio) {
  Gpma gpma;
  gpma.Build({0, 0, 1, 1}, 2, SmallConfig());
  const double ratio = gpma.EmptySlotRatio();
  EXPECT_GT(ratio, 0.0);
  EXPECT_LT(ratio, 1.0);
  EXPECT_DOUBLE_EQ(
      ratio, static_cast<double>(gpma.num_empty_slots()) /
                 static_cast<double>(gpma.capacity()));
}

// ---------------------------------------------------------------------------
// Property test: random churn against a std::multiset oracle.
// ---------------------------------------------------------------------------

class GpmaChurn : public ::testing::TestWithParam<int> {};

TEST_P(GpmaChurn, RandomOpsMatchOracle) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const int num_cells = 32;
  const int n0 = 200;

  std::vector<int32_t> cells(n0);
  for (auto& c : cells) {
    c = static_cast<int32_t>(rng.NextBelow(num_cells));
  }
  Gpma gpma;
  gpma.Build(cells, num_cells, SmallConfig());

  // Oracle: pid -> cell for present particles.
  std::map<int32_t, int32_t> oracle;
  for (int32_t pid = 0; pid < n0; ++pid) {
    oracle[pid] = cells[static_cast<size_t>(pid)];
  }
  int32_t next_pid = n0;

  for (int op = 0; op < 3000; ++op) {
    const uint64_t kind = rng.NextBelow(10);
    if (kind < 5 && !oracle.empty()) {
      // Move a random particle to a random cell (the CFL-driven common case).
      auto it = oracle.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(oracle.size())));
      const int32_t pid = it->first;
      const auto new_cell = static_cast<int32_t>(rng.NextBelow(num_cells));
      gpma.Remove(pid);
      auto res = gpma.Insert(pid, new_cell);
      if (!res.ok) {
        gpma.Rebuild();
        res = gpma.Insert(pid, new_cell);
        ASSERT_TRUE(res.ok);
      }
      it->second = new_cell;
    } else if (kind < 7 && !oracle.empty()) {
      // Delete.
      auto it = oracle.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(oracle.size())));
      gpma.Remove(it->first);
      oracle.erase(it);
    } else {
      // Insert a brand-new particle.
      const auto cell = static_cast<int32_t>(rng.NextBelow(num_cells));
      auto res = gpma.Insert(next_pid, cell);
      if (!res.ok) {
        gpma.Rebuild();
        res = gpma.Insert(next_pid, cell);
        ASSERT_TRUE(res.ok);
      }
      oracle[next_pid] = cell;
      ++next_pid;
    }
    if (op % 100 == 0) {
      gpma.CheckInvariants();
    }
  }
  gpma.CheckInvariants();

  // Full cross-check: membership and per-cell contents.
  ASSERT_EQ(gpma.num_particles(), static_cast<int32_t>(oracle.size()));
  std::map<int32_t, std::multiset<int32_t>> expected_bins;
  for (const auto& [pid, cell] : oracle) {
    EXPECT_EQ(gpma.CellOf(pid), cell) << "pid " << pid;
    expected_bins[cell].insert(pid);
  }
  for (int c = 0; c < num_cells; ++c) {
    std::multiset<int32_t> got;
    const auto off = gpma.BinOffset(c);
    for (int32_t s = 0; s < gpma.BinLen(c); ++s) {
      got.insert(gpma.local_index()[static_cast<size_t>(off + s)]);
    }
    EXPECT_EQ(got, expected_bins[c]) << "cell " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpmaChurn, ::testing::Range(1, 9));

TEST(Gpma, AmortizedO1UnderCflLikeChurn) {
  // Particles drift to adjacent cells (CFL-constrained movement): the average
  // words touched per move must stay small and independent of N.
  Rng rng(5);
  const int num_cells = 64;
  for (int n : {512, 4096}) {
    std::vector<int32_t> cells(static_cast<size_t>(n));
    for (auto& c : cells) {
      c = static_cast<int32_t>(rng.NextBelow(num_cells));
    }
    Gpma gpma;
    gpma.Build(cells, num_cells, SmallConfig());
    int64_t words = 0;
    int64_t moves = 0;
    for (int round = 0; round < 5; ++round) {
      for (int32_t pid = 0; pid < n; ++pid) {
        if (!rng.Bernoulli(0.1)) {
          continue;  // most particles stay put each step
        }
        const int32_t cur = static_cast<int32_t>(gpma.CellOf(pid));
        const int32_t next =
            static_cast<int32_t>((cur + (rng.Bernoulli(0.5) ? 1 : num_cells - 1)) %
                                 num_cells);
        words += gpma.Remove(pid).words_touched;
        auto res = gpma.Insert(pid, next);
        if (!res.ok) {
          gpma.Rebuild();
          res = gpma.Insert(pid, next);
          ASSERT_TRUE(res.ok);
        }
        words += res.words_touched;
        ++moves;
      }
    }
    const double avg = static_cast<double>(words) / static_cast<double>(moves);
    EXPECT_LT(avg, 16.0) << "n=" << n;
    gpma.CheckInvariants();
  }
}

}  // namespace
}  // namespace mpic

// Workload builders and run-report diagnostics.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/core/diagnostics.h"
#include "src/core/workloads.h"
#include "src/deposit/deposit_scalar.h"

namespace mpic {
namespace {

TEST(UniformConfig, MirrorsPaperParameters) {
  UniformWorkloadParams p;
  p.nx = 16;
  p.ny = p.nz = 8;
  p.order = 3;
  p.variant = DepositVariant::kRhocellIncrSortVpu;
  const SimulationConfig cfg = MakeUniformConfig(p);
  EXPECT_EQ(cfg.geom.nx, 16);
  EXPECT_EQ(cfg.engine.order, 3);
  EXPECT_EQ(cfg.engine.variant, DepositVariant::kRhocellIncrSortVpu);
  EXPECT_EQ(cfg.solver, SolverKind::kCkc);  // paper: CKC Maxwell solver
  EXPECT_EQ(cfg.tile_x, p.tile);
  // Plasma oscillation resolved: omega_p * dt well under 2.
  const double omega_p = std::sqrt(1e25 * kElectronCharge * kElectronCharge /
                                   (kEpsilon0 * kElectronMass));
  const double dt = cfg.cfl * cfg.geom.dx / kSpeedOfLight;
  EXPECT_LT(omega_p * dt, 0.5);
}

TEST(UniformConfig, WeightedPerSpeciesPpc) {
  // Few heavy macro-ions, many light macro-electrons: per-species PPC at the
  // same physical density must scale macro-particle weight inversely.
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.tile = 4;
  p.ppc_x = p.ppc_y = p.ppc_z = 2;
  UniformSpeciesParams electrons;
  UniformSpeciesParams ions;
  ions.species = Species::Proton();
  ions.ppc_x = ions.ppc_y = ions.ppc_z = 1;
  p.species_params = {electrons, ions};

  HwContext hw;
  auto sim = MakeUniformSimulation(hw, p);
  ASSERT_EQ(sim->num_species(), 2);
  const int64_t cells = 8 * 8 * 8;
  EXPECT_EQ(sim->block(0).tiles.TotalLive(), cells * 8);  // PPC 8
  EXPECT_EQ(sim->block(1).tiles.TotalLive(), cells * 1);  // PPC 1

  double electron_w = 0.0, ion_w = 0.0;
  for (int t = 0; t < sim->block(0).tiles.num_tiles() && electron_w == 0.0; ++t) {
    const ParticleTile& tile = sim->block(0).tiles.tile(t);
    if (tile.num_live() > 0) electron_w = tile.soa().w[0];
  }
  for (int t = 0; t < sim->block(1).tiles.num_tiles() && ion_w == 0.0; ++t) {
    const ParticleTile& tile = sim->block(1).tiles.tile(t);
    if (tile.num_live() > 0) ion_w = tile.soa().w[0];
  }
  ASSERT_GT(electron_w, 0.0);
  // 8x fewer ions carrying the same density: 8x the weight.
  EXPECT_DOUBLE_EQ(ion_w, 8.0 * electron_w);

  // Neutral plasma end-to-end: the run stays finite.
  sim->Run(2);
  for (double v : sim->fields().ez.vec()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(LwfaConfig, LaserAndWindowConfigured) {
  LwfaWorkloadParams p;
  const SimulationConfig cfg = MakeLwfaConfig(p);
  EXPECT_TRUE(cfg.laser_enabled);
  EXPECT_TRUE(cfg.moving_window);
  ASSERT_EQ(cfg.species.size(), 1u);  // electrons only by default
  ASSERT_TRUE(cfg.species[0].window_injection.has_value());
  EXPECT_EQ(cfg.engine.order, 1);  // paper: LWFA uses CIC
  // Longitudinal resolution: >= 16 cells per laser wavelength.
  EXPECT_LE(cfg.geom.dz, cfg.laser.wavelength / 16.0 + 1e-12);
  // Density ramp: zero at z=0, full density beyond the ramp.
  EXPECT_DOUBLE_EQ((*cfg.species[0].window_injection).profile(0.0), 0.0);
  EXPECT_DOUBLE_EQ((*cfg.species[0].window_injection).profile(1.0), p.density);
}

TEST(Scramble, PreservesParticleSet) {
  GridGeometry g;
  g.nx = g.ny = g.nz = 4;
  g.dx = g.dy = g.dz = 1.0;
  TileSet tiles(g, 4, 4, 4);
  for (int i = 0; i < 100; ++i) {
    Particle p;
    p.x = 0.01 * i + 0.1;
    p.y = p.z = 2.0;
    p.w = i;
    tiles.AddParticle(p);
  }
  std::multiset<double> before;
  for (double w : tiles.tile(0).soa().w) {
    before.insert(w);
  }
  ScrambleParticleOrder(tiles, 9);
  std::multiset<double> after;
  for (double w : tiles.tile(0).soa().w) {
    after.insert(w);
  }
  EXPECT_EQ(before, after);
  // And the order actually changed.
  bool changed = false;
  for (size_t i = 0; i < tiles.tile(0).soa().w.size(); ++i) {
    if (tiles.tile(0).soa().w[i] != static_cast<double>(i)) {
      changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(RunReport, PhaseArithmetic) {
  HwContext hw;
  hw.ledger().SetPhase(Phase::kCompute);
  hw.ChargeCycles(1.3e9);  // exactly one modeled second
  hw.ledger().SetPhase(Phase::kGather);
  hw.ChargeCycles(2.6e9);
  const RunReport r = MakeRunReport(hw, PhaseCycles{}, /*particle_steps=*/1000, 1);
  EXPECT_NEAR(r.phase_seconds[static_cast<size_t>(Phase::kCompute)], 1.0, 1e-12);
  EXPECT_NEAR(r.phase_seconds[static_cast<size_t>(Phase::kGather)], 2.0, 1e-12);
  EXPECT_NEAR(r.wall_seconds, 3.0, 1e-12);
  EXPECT_NEAR(r.deposition_seconds, 1.0, 1e-12);  // compute only
  EXPECT_NEAR(r.particles_per_second, 1000.0, 1e-9);
  // Efficiency: canonical CIC flops * 1000 / (1.3e9 cycles * 64 flops/cycle).
  const double expected_eff =
      CanonicalFlopsPerParticle(1) * 1000.0 / (1.3e9 * 64.0);
  EXPECT_NEAR(r.peak_efficiency, expected_eff, 1e-15);
}

TEST(RunReport, ToStringContainsPhases) {
  HwContext hw;
  const RunReport r = MakeRunReport(hw, PhaseCycles{}, 0, 1);
  const std::string s = r.ToString();
  EXPECT_NE(s.find("preproc="), std::string::npos);
  EXPECT_NE(s.find("pps="), std::string::npos);
}

TEST(Diagnostics, FieldEnergyOfKnownField) {
  GridGeometry g;
  g.nx = g.ny = g.nz = 4;
  g.dx = g.dy = g.dz = 2.0;
  FieldSet fields(g, 2);
  fields.ex.Fill(3.0);
  // Guard nodes included by Fill; energy counts unique interior only.
  const double expected =
      0.5 * kEpsilon0 * 9.0 * (4 * 4 * 4) * (2.0 * 2.0 * 2.0);
  EXPECT_NEAR(FieldEnergy(fields), expected, expected * 1e-12);
}

TEST(Diagnostics, KineticEnergyNonRelativisticLimit) {
  GridGeometry g;
  g.nx = g.ny = g.nz = 2;
  g.dx = g.dy = g.dz = 1.0;
  TileSet tiles(g, 2, 2, 2);
  Particle p;
  p.x = p.y = p.z = 0.5;
  p.ux = 0.01 * kSpeedOfLight;
  p.w = 5.0;
  tiles.AddParticle(p);
  const double ke = KineticEnergy(tiles, Species::Electron());
  const double classical = 0.5 * kElectronMass * p.ux * p.ux * p.w;
  EXPECT_NEAR(ke, classical, classical * 1e-3);  // gamma-1 ~ u^2/2c^2
}

TEST(Lwfa, WindowInjectionKeepsDensityRoughlyConstant) {
  LwfaWorkloadParams p;
  p.nx = p.ny = 4;
  p.nz = 32;
  p.tile = 4;
  p.tile_z = 32;
  HwContext hw;
  auto sim = MakeLwfaSimulation(hw, p);
  const int64_t n0 = sim->tiles().TotalLive();
  sim->Run(30);
  const int64_t n1 = sim->tiles().TotalLive();
  // Dropped trailing particles are replaced by head-slab injection; the census
  // stays within a few slabs' worth.
  const int64_t slab = p.nx * p.ny * 1;
  EXPECT_NEAR(static_cast<double>(n1), static_cast<double>(n0),
              static_cast<double>(6 * slab));
}

}  // namespace
}  // namespace mpic

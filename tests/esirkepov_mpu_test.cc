// Tests for the MPU Esirkepov kernel (esirkepov_mpu.h): equivalence with the
// scalar-reference combine on both schedulings, the bitwise sparse-fallback
// contract, the Gauss-residual / digest matrix across schedules and core
// counts, occupancy-counter determinism, and MopaZero semantics.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/common/rng.h"
#include "src/core/diagnostics.h"
#include "src/core/workloads.h"
#include "src/deposit/esirkepov_mpu.h"
#include "src/particles/species.h"

namespace mpic {
namespace {

GridGeometry MakeGeom(int n) {
  GridGeometry g;
  g.nx = g.ny = g.nz = n;
  g.dx = g.dy = g.dz = 1.0e-6;
  return g;
}

struct MovedWorld {
  MovedWorld(int n, int count, double max_cell_step, uint64_t seed)
      : geom(MakeGeom(n)), tile(0, 0, 0, n, n, n) {
    Rng rng(seed);
    for (int i = 0; i < count; ++i) {
      Particle p;
      // Keep two cells away from the boundary so no support needs wrapping.
      p.x = rng.Uniform(2.0, n - 2.0) * geom.dx;
      p.y = rng.Uniform(2.0, n - 2.0) * geom.dy;
      p.z = rng.Uniform(2.0, n - 2.0) * geom.dz;
      p.w = rng.Uniform(0.5, 2.0) * 1e8;
      tile.AddParticle(p);
    }
    x_old = tile.soa().x;
    y_old = tile.soa().y;
    z_old = tile.soa().z;
    for (size_t i = 0; i < tile.soa().size(); ++i) {
      tile.soa().x[i] += rng.Uniform(-1.0, 1.0) * max_cell_step * geom.dx;
      tile.soa().y[i] += rng.Uniform(-1.0, 1.0) * max_cell_step * geom.dy;
      tile.soa().z[i] += rng.Uniform(-1.0, 1.0) * max_cell_step * geom.dz;
    }
    // Bins reflect the post-displacement cells, as at pipeline deposit time.
    tile.BuildGpma(geom, GpmaConfig{});
  }

  DepositParams Params(double dt) const {
    DepositParams dp;
    dp.geom = geom;
    dp.charge = kElectronCharge;
    dp.dt = dt;
    return dp;
  }

  void FillOldLanes() {
    tile.soa().xo = x_old;
    tile.soa().yo = y_old;
    tile.soa().zo = z_old;
  }

  GridGeometry geom;
  ParticleTile tile;
  std::vector<double> x_old, y_old, z_old;
};

// Stage -> MPU combine -> reduce into a fresh FieldSet.
template <int Order>
void RunMpuPath(HwContext& hw, MovedWorld& world, const DepositParams& dp,
                MpuScheduling scheduling, int sparse_fallback_ppc,
                FieldSet& fields) {
  world.FillOldLanes();
  EsirkepovScratch scratch;
  TileCurrent tile_j;
  tile_j.Resize(world.tile, Order);
  StageEsirkepovTile<Order>(hw, world.tile, dp, /*vpu=*/true, scratch);
  DepositEsirkepovMpuTile<Order>(hw, world.tile, dp, scheduling,
                                 sparse_fallback_ppc, scratch, tile_j);
  ReduceEsirkepovToGrid(hw, tile_j, fields);
}

// The MPU combine re-associates the plane products (tile fma, prefix-then-
// scale) so it matches the scalar reference to rounding, not bitwise.
template <int Order>
void ExpectMpuMatchesReference(MpuScheduling scheduling, double max_cell_step,
                               uint64_t seed) {
  MovedWorld world(10, 200, max_cell_step, seed);
  const double dt = 1.0e-15;
  const DepositParams dp = world.Params(dt);
  HwContext hw;
  FieldSet ref(world.geom, 2);
  DepositEsirkepov<Order>(hw, world.tile, world.x_old, world.y_old,
                          world.z_old, dp, ref);
  FieldSet got(world.geom, 2);
  RunMpuPath<Order>(hw, world, dp, scheduling, /*sparse_fallback_ppc=*/0, got);

  double j_scale = 0.0;
  for (const FieldArray* f : {&ref.jx, &ref.jy, &ref.jz}) {
    for (double v : f->vec()) {
      j_scale = std::max(j_scale, std::fabs(v));
    }
  }
  ASSERT_GT(j_scale, 0.0);
  const FieldArray* refs[3] = {&ref.jx, &ref.jy, &ref.jz};
  const FieldArray* gots[3] = {&got.jx, &got.jy, &got.jz};
  for (int comp = 0; comp < 3; ++comp) {
    for (size_t i = 0; i < refs[comp]->vec().size(); ++i) {
      ASSERT_NEAR(gots[comp]->vec()[i], refs[comp]->vec()[i], j_scale * 1e-12)
          << "component " << comp << " index " << i << " order " << Order;
    }
  }
}

class MpuVsReference : public ::testing::TestWithParam<double> {};

TEST_P(MpuVsReference, CellResidentOrder1) {
  ExpectMpuMatchesReference<1>(MpuScheduling::kCellResident, GetParam(), 31);
}
TEST_P(MpuVsReference, CellResidentOrder2) {
  ExpectMpuMatchesReference<2>(MpuScheduling::kCellResident, GetParam(), 32);
}
TEST_P(MpuVsReference, CellResidentOrder3) {
  ExpectMpuMatchesReference<3>(MpuScheduling::kCellResident, GetParam(), 33);
}
TEST_P(MpuVsReference, PairwiseOrder1) {
  ExpectMpuMatchesReference<1>(MpuScheduling::kPairwise, GetParam(), 34);
}
TEST_P(MpuVsReference, PairwiseOrder2) {
  ExpectMpuMatchesReference<2>(MpuScheduling::kPairwise, GetParam(), 35);
}
TEST_P(MpuVsReference, PairwiseOrder3) {
  ExpectMpuMatchesReference<3>(MpuScheduling::kPairwise, GetParam(), 36);
}

INSTANTIATE_TEST_SUITE_P(StepSizes, MpuVsReference,
                         ::testing::Values(0.05, 0.9));

// With the sparse threshold above every bin's population, the adaptive path
// must take the VPU fallback everywhere: zero MOPAs issued and values bitwise
// equal to the staged scalar kernel's.
template <int Order>
void ExpectSparseFallbackBitwise() {
  MovedWorld world(10, 200, 0.7, 41 + Order);
  const DepositParams dp = world.Params(1e-15);
  HwContext hw;
  FieldSet scalar(world.geom, 2);
  {
    world.FillOldLanes();
    EsirkepovScratch scratch;
    TileCurrent tile_j;
    tile_j.Resize(world.tile, Order);
    StageEsirkepovTile<Order>(hw, world.tile, dp, /*vpu=*/true, scratch);
    DepositEsirkepovTile<Order>(hw, world.tile, dp, /*sorted=*/true, scratch,
                                tile_j);
    ReduceEsirkepovToGrid(hw, tile_j, scalar);
  }
  const uint64_t mopas_before = hw.ledger().counters().mopas;
  FieldSet fallback(world.geom, 2);
  RunMpuPath<Order>(hw, world, dp, MpuScheduling::kCellResident,
                    /*sparse_fallback_ppc=*/1 << 20, fallback);
  EXPECT_EQ(hw.ledger().counters().mopas, mopas_before)
      << "fallback path must not issue MOPAs";
  const FieldArray* a[3] = {&scalar.jx, &scalar.jy, &scalar.jz};
  const FieldArray* b[3] = {&fallback.jx, &fallback.jy, &fallback.jz};
  for (int comp = 0; comp < 3; ++comp) {
    EXPECT_EQ(std::memcmp(a[comp]->vec().data(), b[comp]->vec().data(),
                          a[comp]->vec().size() * sizeof(double)),
              0)
        << "component " << comp << " differs bitwise at order " << Order;
  }
}

TEST(EsirkepovMpuFallback, BitwiseMatchesStagedScalarOrder1) {
  ExpectSparseFallbackBitwise<1>();
}
TEST(EsirkepovMpuFallback, BitwiseMatchesStagedScalarOrder3) {
  ExpectSparseFallbackBitwise<3>();
}

// A mid threshold must split the bins: fewer MOPAs than the full MPU run but
// not zero, and still within rounding of the reference.
TEST(EsirkepovMpuFallback, CrossoverSplitsBins) {
  MovedWorld world(10, 600, 0.7, 47);
  const DepositParams dp = world.Params(1e-15);
  HwContext hw;

  FieldSet full(world.geom, 2);
  const uint64_t m0 = hw.ledger().counters().mopas;
  RunMpuPath<1>(hw, world, dp, MpuScheduling::kCellResident,
                /*sparse_fallback_ppc=*/0, full);
  const uint64_t full_mopas = hw.ledger().counters().mopas - m0;
  ASSERT_GT(full_mopas, 0u);

  FieldSet mixed(world.geom, 2);
  const uint64_t m1 = hw.ledger().counters().mopas;
  RunMpuPath<1>(hw, world, dp, MpuScheduling::kCellResident,
                /*sparse_fallback_ppc=*/2, mixed);
  const uint64_t mixed_mopas = hw.ledger().counters().mopas - m1;
  EXPECT_GT(mixed_mopas, 0u) << "dense bins should still take the MPU path";
  EXPECT_LT(mixed_mopas, full_mopas) << "sparse bins should fall back";

  FieldSet ref(world.geom, 2);
  DepositEsirkepov<1>(hw, world.tile, world.x_old, world.y_old, world.z_old,
                      dp, ref);
  double j_scale = 0.0;
  for (double v : ref.jx.vec()) {
    j_scale = std::max(j_scale, std::fabs(v));
  }
  ASSERT_GT(j_scale, 0.0);
  for (size_t i = 0; i < ref.jx.vec().size(); ++i) {
    ASSERT_NEAR(mixed.jx.vec()[i], ref.jx.vec()[i], j_scale * 1e-12);
  }
}

// ---- Whole-simulation matrix on the MPU variant -----------------------------

struct SimResult {
  std::unique_ptr<HwContext> hw;
  std::unique_ptr<Simulation> sim;
  double residual = 0.0;
};

SimResult RunMpuEsirkepovSim(int order, bool fused, int cores, int steps) {
#ifdef _OPENMP
  omp_set_num_threads(cores > 1 ? 4 : 1);
#endif
  SimResult r;
  r.hw = std::make_unique<HwContext>(MachineConfig::Lx2MultiCore(cores));
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.tile = 4;
  p.ppc_x = p.ppc_y = p.ppc_z = 2;
  p.u_th = 0.02;
  p.order = order;
  p.variant = DepositVariant::kFullOpt;
  p.scheme = CurrentScheme::kEsirkepov;
  p.fuse_stages = fused;
  r.sim = MakeUniformSimulation(*r.hw, p);

  const GridGeometry& g = r.sim->fields().geom;
  const FieldArray rho0 = DepositChargeDensity(*r.sim);
  FieldArray res0(g.nx, g.ny, g.nz, 2);
  GaussResidualField(r.sim->fields(), rho0, &res0);
  r.sim->Run(steps);
  const FieldArray rho1 = DepositChargeDensity(*r.sim);
  FieldArray res1(g.nx, g.ny, g.nz, 2);
  GaussResidualField(r.sim->fields(), rho1, &res1);
  r.residual = MaxResidualChange(res1, res0, GaussResidualScale(rho0));
  return r;
}

void ExpectFieldsBitIdentical(const FieldSet& a, const FieldSet& b) {
  for (auto pick : {&FieldSet::ex, &FieldSet::ey, &FieldSet::ez, &FieldSet::jx,
                    &FieldSet::jy, &FieldSet::jz}) {
    const FieldArray& fa = a.*pick;
    const FieldArray& fb = b.*pick;
    ASSERT_EQ(fa.vec().size(), fb.vec().size());
    EXPECT_EQ(std::memcmp(fa.vec().data(), fb.vec().data(),
                          fa.vec().size() * sizeof(double)),
              0);
  }
}

class MpuEsirkepovMatrix : public ::testing::TestWithParam<int> {};

// Gauss residual at rounding level and bit-identical physics across both
// schedules and modeled core counts 1/2/4, per order.
TEST_P(MpuEsirkepovMatrix, ResidualAndInvariance) {
  const int order = GetParam();
  const int steps = 3;
  const SimResult base = RunMpuEsirkepovSim(order, /*fused=*/true, 1, steps);
  EXPECT_LT(base.residual, 1e-8) << "order " << order;
  for (bool fused : {true, false}) {
    for (int cores : {1, 2, 4}) {
      if (fused && cores == 1) {
        continue;  // the baseline itself
      }
      const SimResult other = RunMpuEsirkepovSim(order, fused, cores, steps);
      EXPECT_LT(other.residual, 1e-8)
          << "order " << order << " fused " << fused << " cores " << cores;
      ExpectFieldsBitIdentical(base.sim->fields(), other.sim->fields());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, MpuEsirkepovMatrix, ::testing::Values(1, 2, 3));

// The occupancy counters are part of the deterministic ledger contract:
// identical runs agree exactly, and worker counters sum to the same totals on
// any core count.
TEST(MpuEsirkepovOccupancy, CounterDeterminism) {
  const SimResult a = RunMpuEsirkepovSim(1, /*fused=*/true, 1, 3);
  const SimResult b = RunMpuEsirkepovSim(1, /*fused=*/true, 1, 3);
  const SimResult c = RunMpuEsirkepovSim(1, /*fused=*/true, 4, 3);
  const LedgerCounters& ca = a.hw->ledger().counters();
  const LedgerCounters& cb = b.hw->ledger().counters();
  const LedgerCounters& cc = c.hw->ledger().counters();
  EXPECT_EQ(ca.mopas, cb.mopas);
  EXPECT_EQ(ca.mopa_valid_slots, cb.mopa_valid_slots);
  EXPECT_EQ(ca.mopas, cc.mopas);
  EXPECT_EQ(ca.mopa_valid_slots, cc.mopa_valid_slots);
  ASSERT_GT(ca.mopas, 0u);
  const double occ = static_cast<double>(ca.mopa_valid_slots) /
                     (64.0 * static_cast<double>(ca.mopas));
  EXPECT_GT(occ, 0.0);
  EXPECT_LT(occ, 1.0);
}

// MopaZero overwrites the tile with the plain outer product (no accumulate)
// and books the same issue cost and occupancy accounting as Mopa.
TEST(MopaZero, OverwritesAndCounts) {
  HwContext hw;
  Vec8 a;
  Vec8 b;
  for (int i = 0; i < kVpuLanes; ++i) {
    a[i] = 1.0 + i;
    b[i] = 2.0 - 0.25 * i;
  }
  MpuTileReg tile;
  for (int r = 0; r < kMpuTile; ++r) {
    for (int c = 0; c < kMpuTile; ++c) {
      tile.At(r, c) = 999.0;  // garbage a zeroing MOPA must ignore
    }
  }
  const uint64_t mopas0 = hw.ledger().counters().mopas;
  const uint64_t valid0 = hw.ledger().counters().mopa_valid_slots;
  hw.MopaZero(tile, a, b, /*valid_slots=*/10);
  for (int r = 0; r < kMpuTile; ++r) {
    for (int c = 0; c < kMpuTile; ++c) {
      ASSERT_EQ(tile.At(r, c), a[r] * b[c]);
    }
  }
  EXPECT_EQ(hw.ledger().counters().mopas, mopas0 + 1);
  EXPECT_EQ(hw.ledger().counters().mopa_valid_slots, valid0 + 10);
  hw.Mopa(tile, a, b, /*valid_slots=*/54);
  for (int r = 0; r < kMpuTile; ++r) {
    for (int c = 0; c < kMpuTile; ++c) {
      ASSERT_EQ(tile.At(r, c), a[r] * b[c] + a[r] * b[c]);
    }
  }
  EXPECT_EQ(hw.ledger().counters().mopas, mopas0 + 2);
  EXPECT_EQ(hw.ledger().counters().mopa_valid_slots, valid0 + 64);
}

}  // namespace
}  // namespace mpic

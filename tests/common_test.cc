#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace mpic {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, StreamIsPureFunctionOfKeys) {
  // Same key tuple: identical sequence, regardless of construction order.
  Rng later = Rng::ForStream(9, 100, 42, 7);
  Rng first = Rng::ForStream(9, 100, 42, 7);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(first.NextU64(), later.NextU64());
  }
}

TEST(Rng, StreamKeysDecorrelate) {
  // Neighboring key tuples (adjacent cell, next step, next pair, permuted
  // keys) must land in unrelated states.
  Rng base = Rng::ForStream(9, 100, 42, 7);
  std::vector<Rng> neighbors = {
      Rng::ForStream(9, 100, 43, 7), Rng::ForStream(9, 101, 42, 7),
      Rng::ForStream(9, 100, 42, 8), Rng::ForStream(9, 42, 100, 7),
      Rng::ForStream(10, 100, 42, 7)};
  std::vector<uint64_t> base_draws;
  for (int i = 0; i < 64; ++i) {
    base_draws.push_back(base.NextU64());
  }
  for (Rng& n : neighbors) {
    int same = 0;
    for (int i = 0; i < 64; ++i) {
      same += n.NextU64() == base_draws[static_cast<size_t>(i)] ? 1 : 0;
    }
    EXPECT_LT(same, 2);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NextBelowCoversRangeWithoutBias) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.NextBelow(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussianMomentsSane) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 200000; ++i) {
    stat.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(stat.mean(), 0.0, 0.02);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStat, SingleSampleVarianceZero) {
  RunningStat s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, RelMaxError) {
  EXPECT_DOUBLE_EQ(RelMaxError({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_NEAR(RelMaxError({0.0, 10.0}, {0.1, 10.0}), 0.01, 1e-12);
  // All-zero reference falls back to absolute error.
  EXPECT_DOUBLE_EQ(RelMaxError({0.0, 0.0}, {0.5, 0.0}), 0.5);
}

TEST(Stats, KahanSumExactOnHardCase) {
  std::vector<double> v;
  v.push_back(1e16);
  for (int i = 0; i < 10; ++i) {
    v.push_back(1.0);
  }
  v.push_back(-1e16);
  EXPECT_DOUBLE_EQ(Sum(v), 10.0);
}

TEST(ConsoleTable, RendersAlignedColumns) {
  ConsoleTable t({"Config", "Total (s)"});
  t.AddRow({"Baseline", "74.13"});
  t.AddRow({"MatrixPIC", "24.90"});
  const std::string out = t.Render("Table 1");
  EXPECT_NE(out.find("Table 1"), std::string::npos);
  EXPECT_NE(out.find("Baseline"), std::string::npos);
  EXPECT_NE(out.find("24.90"), std::string::npos);
}

TEST(ConsoleTable, ShortRowsPadded) {
  ConsoleTable t({"A", "B", "C"});
  t.AddRow({"x"});
  const std::string out = t.Render("pad");
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(Format, FixedAndScientific) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-1.0, 0), "-1");
  EXPECT_EQ(FormatSci(461000000.0, 2), "4.61e+08");
}

}  // namespace
}  // namespace mpic

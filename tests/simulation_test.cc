#include <gtest/gtest.h>

#include <cmath>

#include "src/common/stats.h"
#include "src/core/diagnostics.h"
#include "src/core/simulation.h"
#include "src/core/workloads.h"
#include "src/gpu/gpu_model.h"

namespace mpic {
namespace {

UniformWorkloadParams SmallUniform(DepositVariant v, int order = 1, int ppc1d = 2) {
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = ppc1d;
  p.order = order;
  p.variant = v;
  p.tile = 4;
  return p;
}

TEST(Simulation, UniformPlasmaRunsAndConservesParticles) {
  HwContext hw;
  auto sim = MakeUniformSimulation(hw, SmallUniform(DepositVariant::kFullOpt));
  const int64_t n0 = sim->tiles().TotalLive();
  EXPECT_EQ(n0, 8 * 8 * 8 * 8);
  sim->Run(5);
  EXPECT_EQ(sim->tiles().TotalLive(), n0);
  EXPECT_EQ(sim->step_count(), 5);
  EXPECT_EQ(sim->particles_pushed(), n0 * 5);
}

TEST(Simulation, FieldsStayFinite) {
  HwContext hw;
  auto sim = MakeUniformSimulation(hw, SmallUniform(DepositVariant::kFullOpt));
  sim->Run(10);
  for (double v : sim->fields().ex.vec()) {
    ASSERT_TRUE(std::isfinite(v));
  }
  for (double v : sim->fields().bz.vec()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(Simulation, AllPhasesAccrueCycles) {
  HwContext hw;
  auto sim = MakeUniformSimulation(hw, SmallUniform(DepositVariant::kFullOpt));
  const PhaseCycles before = SnapshotCycles(hw.ledger());
  sim->Run(3);
  const RunReport r = MakeRunReport(hw, before, sim->particles_pushed(), 1);
  EXPECT_GT(r.phase_seconds[static_cast<size_t>(Phase::kPreproc)], 0.0);
  EXPECT_GT(r.phase_seconds[static_cast<size_t>(Phase::kCompute)], 0.0);
  EXPECT_GT(r.phase_seconds[static_cast<size_t>(Phase::kSort)], 0.0);
  EXPECT_GT(r.phase_seconds[static_cast<size_t>(Phase::kReduce)], 0.0);
  EXPECT_GT(r.phase_seconds[static_cast<size_t>(Phase::kGather)], 0.0);
  EXPECT_GT(r.phase_seconds[static_cast<size_t>(Phase::kPush)], 0.0);
  EXPECT_GT(r.phase_seconds[static_cast<size_t>(Phase::kSolver)], 0.0);
  EXPECT_GT(r.wall_seconds, r.deposition_seconds);
  EXPECT_GT(r.particles_per_second, 0.0);
  EXPECT_GT(r.peak_efficiency, 0.0);
  EXPECT_LT(r.peak_efficiency, 1.0);
}

TEST(Simulation, VariantsProduceSamePhysics) {
  // After a few full PIC steps (gather/push feed back through the fields), the
  // kernel variants must still agree on the field state.
  HwContext hw_a, hw_b, hw_c;
  auto base = MakeUniformSimulation(hw_a, SmallUniform(DepositVariant::kBaseline));
  auto vpu = MakeUniformSimulation(
      hw_b, SmallUniform(DepositVariant::kRhocellIncrSortVpu));
  auto mpu = MakeUniformSimulation(hw_c, SmallUniform(DepositVariant::kFullOpt));
  base->Run(3);
  vpu->Run(3);
  mpu->Run(3);
  EXPECT_LT(RelMaxError(base->fields().ex.vec(), vpu->fields().ex.vec()), 1e-9);
  EXPECT_LT(RelMaxError(base->fields().ex.vec(), mpu->fields().ex.vec()), 1e-9);
  EXPECT_LT(RelMaxError(base->fields().bz.vec(), mpu->fields().bz.vec()), 1e-9);
}

TEST(Simulation, ColdUniformPlasmaStaysQuiet) {
  // A perfectly cold, uniform, current-free plasma should generate (almost) no
  // fields: J cancels between symmetric lattice particles only if u=0.
  UniformWorkloadParams p = SmallUniform(DepositVariant::kFullOpt);
  p.u_th = 0.0;
  HwContext hw;
  auto sim = MakeUniformSimulation(hw, p);
  sim->Run(3);
  EXPECT_NEAR(FieldEnergy(sim->fields()), 0.0, 1e-20);
}

TEST(Simulation, ThermalPlasmaEnergyBounded) {
  HwContext hw;
  UniformWorkloadParams p = SmallUniform(DepositVariant::kFullOpt);
  p.u_th = 0.01;
  auto sim = MakeUniformSimulation(hw, p);
  const double ke0 = KineticEnergy(sim->tiles(), Species::Electron());
  sim->Run(10);
  const double ke = KineticEnergy(sim->tiles(), Species::Electron());
  const double fe = FieldEnergy(sim->fields());
  // No blow-up: total energy stays within a factor of the initial kinetic
  // energy over a short run.
  EXPECT_LT(fe, ke0);
  EXPECT_NEAR(ke, ke0, 0.5 * ke0);
}

TEST(Simulation, Order3RunsEndToEnd) {
  HwContext hw;
  auto sim =
      MakeUniformSimulation(hw, SmallUniform(DepositVariant::kFullOpt, 3, 2));
  sim->Run(3);
  for (double v : sim->fields().ex.vec()) {
    ASSERT_TRUE(std::isfinite(v));
  }
  EXPECT_GT(hw.ledger().counters().mopas, 0u);
}

// ---------------------------------------------------------------------------
// LWFA workload
// ---------------------------------------------------------------------------

LwfaWorkloadParams SmallLwfa(DepositVariant v) {
  LwfaWorkloadParams p;
  p.nx = p.ny = 8;
  p.nz = 32;
  p.ppc_x = p.ppc_y = p.ppc_z = 1;
  p.variant = v;
  p.tile = 4;
  p.tile_z = 8;
  return p;
}

TEST(Lwfa, RunsWithMovingWindowAndInjection) {
  HwContext hw;
  auto sim = MakeLwfaSimulation(hw, SmallLwfa(DepositVariant::kFullOpt));
  const double z0_before = sim->fields().geom.z0;
  sim->Run(20);
  // Window advanced (cfl 0.98 -> ~0.98 cells per step).
  EXPECT_GT(sim->fields().geom.z0, z0_before);
  EXPECT_GT(sim->tiles().TotalLive(), 0);
  for (double v : sim->fields().ey.vec()) {
    ASSERT_TRUE(std::isfinite(v));
  }
  for (int t = 0; t < sim->tiles().num_tiles(); ++t) {
    sim->tiles().tile(t).gpma().CheckInvariants();
  }
}

TEST(Lwfa, LaserInjectsFieldEnergy) {
  HwContext hw;
  auto sim = MakeLwfaSimulation(hw, SmallLwfa(DepositVariant::kFullOpt));
  sim->Run(10);
  EXPECT_GT(FieldEnergy(sim->fields()), 0.0);
}

TEST(Lwfa, VariantsAgreeOnFields) {
  HwContext hw_a, hw_b;
  auto base = MakeLwfaSimulation(hw_a, SmallLwfa(DepositVariant::kBaseline));
  auto mpu = MakeLwfaSimulation(hw_b, SmallLwfa(DepositVariant::kFullOpt));
  base->Run(8);
  mpu->Run(8);
  EXPECT_LT(RelMaxError(base->fields().ey.vec(), mpu->fields().ey.vec()), 1e-9);
  EXPECT_LT(RelMaxError(base->fields().jz.vec(), mpu->fields().jz.vec()), 1e-9);
}

// ---------------------------------------------------------------------------
// GPU comparison model
// ---------------------------------------------------------------------------

TEST(GpuModel, RunsAndReportsEfficiency) {
  HwContext hw;
  auto sim = MakeUniformSimulation(hw, SmallUniform(DepositVariant::kBaseline));
  const GpuRunResult r =
      GpuBaselineDeposit(GpuConfig::A800(), sim->tiles(), /*order=*/3);
  EXPECT_EQ(r.particles, sim->tiles().TotalLive());
  EXPECT_GT(r.cycles, 0.0);
  EXPECT_GT(r.peak_efficiency, 0.05);
  EXPECT_LT(r.peak_efficiency, 0.8);
  EXPECT_GT(r.atomic_instructions, 0);
}

TEST(GpuModel, ConflictsIncreaseWithDensity) {
  HwContext hw_lo, hw_hi;
  auto lo = MakeUniformSimulation(hw_lo,
                                  SmallUniform(DepositVariant::kBaseline, 1, 1));
  auto hi = MakeUniformSimulation(hw_hi,
                                  SmallUniform(DepositVariant::kBaseline, 1, 4));
  const auto r_lo = GpuBaselineDeposit(GpuConfig::A800(), lo->tiles(), 1);
  const auto r_hi = GpuBaselineDeposit(GpuConfig::A800(), hi->tiles(), 1);
  const double lo_rate = static_cast<double>(r_lo.conflict_lanes) /
                         static_cast<double>(r_lo.particles);
  const double hi_rate = static_cast<double>(r_hi.conflict_lanes) /
                         static_cast<double>(r_hi.particles);
  EXPECT_GT(hi_rate, lo_rate);
}

}  // namespace
}  // namespace mpic

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/sort/counting_sort.h"
#include "src/sort/resort_policy.h"

namespace mpic {
namespace {

TEST(CountingSort, OrdersByCellStably) {
  const std::vector<int32_t> cells = {2, 0, 1, 0, 2, 1};
  const auto perm = CountingSortPermutation(cells, 3);
  ASSERT_EQ(perm.size(), 6u);
  // Cell 0 first (indices 1, 3 in original order), then cell 1 (2, 5), ...
  EXPECT_EQ(perm[0], 1);
  EXPECT_EQ(perm[1], 3);
  EXPECT_EQ(perm[2], 2);
  EXPECT_EQ(perm[3], 5);
  EXPECT_EQ(perm[4], 0);
  EXPECT_EQ(perm[5], 4);
}

TEST(CountingSort, RandomizedSortedness) {
  Rng rng(3);
  std::vector<int32_t> cells(5000);
  for (auto& c : cells) {
    c = static_cast<int32_t>(rng.NextBelow(97));
  }
  const auto perm = CountingSortPermutation(cells, 97);
  for (size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(cells[static_cast<size_t>(perm[i - 1])],
              cells[static_cast<size_t>(perm[i])]);
  }
}

TEST(CountingSort, ApplyPermutationReordersAllTypes) {
  const std::vector<int32_t> cells = {1, 0};
  const auto perm = CountingSortPermutation(cells, 2);
  std::vector<double> xs = {10.0, 20.0};
  std::vector<double> scratch;
  ApplyPermutation(perm, xs, scratch);
  EXPECT_DOUBLE_EQ(xs[0], 20.0);
  EXPECT_DOUBLE_EQ(xs[1], 10.0);
  std::vector<int64_t> ids = {100, 200};
  std::vector<int64_t> scratch64;
  ApplyPermutation(perm, ids, scratch64);
  EXPECT_EQ(ids[0], 200);
}

TEST(CountingSort, EmptyInput) {
  const auto perm = CountingSortPermutation({}, 4);
  EXPECT_TRUE(perm.empty());
}

// ---------------------------------------------------------------------------
// Resort policy: the five prioritized strategies of Sec. 4.4.
// ---------------------------------------------------------------------------

ResortPolicyConfig PaperPolicy() {
  // Table 4 defaults.
  ResortPolicyConfig cfg;
  cfg.sort_interval = 50;
  cfg.min_sort_interval = 10;
  cfg.trigger_rebuild_count = 100;
  cfg.trigger_empty_ratio = 0.15;
  cfg.trigger_full_ratio = 0.85;
  cfg.trigger_perf_enable = true;
  cfg.trigger_perf_degrad = 0.80;
  return cfg;
}

RankSortStats HealthyStats() {
  RankSortStats s;
  s.steps_since_sort = 20;
  s.local_rebuilds = 0;
  s.empty_slot_ratio = 0.3;
  s.step_throughput = 1e8;
  s.baseline_throughput = 1e8;
  return s;
}

TEST(ResortPolicy, NoTriggerNoSort) {
  ResortPolicy policy(PaperPolicy());
  EXPECT_EQ(policy.Evaluate(HealthyStats()), SortDecision::kNoSort);
}

TEST(ResortPolicy, FixedIntervalFires) {
  ResortPolicy policy(PaperPolicy());
  RankSortStats s = HealthyStats();
  s.steps_since_sort = 50;
  EXPECT_EQ(policy.Evaluate(s), SortDecision::kFixedInterval);
  EXPECT_TRUE(ResortPolicy::ShouldSort(policy.Evaluate(s)));
}

TEST(ResortPolicy, RebuildCountFires) {
  ResortPolicy policy(PaperPolicy());
  RankSortStats s = HealthyStats();
  s.local_rebuilds = 100;
  EXPECT_EQ(policy.Evaluate(s), SortDecision::kRebuildCount);
}

TEST(ResortPolicy, EmptyRatioFiresLowAndHigh) {
  ResortPolicy policy(PaperPolicy());
  RankSortStats s = HealthyStats();
  s.empty_slot_ratio = 0.10;  // below trigger_empty_ratio
  EXPECT_EQ(policy.Evaluate(s), SortDecision::kEmptyRatio);
  s.empty_slot_ratio = 0.90;  // above trigger_full_ratio
  EXPECT_EQ(policy.Evaluate(s), SortDecision::kEmptyRatio);
}

TEST(ResortPolicy, PerfDegradationFires) {
  ResortPolicy policy(PaperPolicy());
  RankSortStats s = HealthyStats();
  s.step_throughput = 0.7e8;  // 70% of baseline < 80% threshold
  EXPECT_EQ(policy.Evaluate(s), SortDecision::kPerfDegradation);
}

TEST(ResortPolicy, PerfDisabledDoesNotFire) {
  ResortPolicyConfig cfg = PaperPolicy();
  cfg.trigger_perf_enable = false;
  ResortPolicy policy(cfg);
  RankSortStats s = HealthyStats();
  s.step_throughput = 0.1e8;
  EXPECT_EQ(policy.Evaluate(s), SortDecision::kNoSort);
}

TEST(ResortPolicy, MinIntervalVetoesEverything) {
  ResortPolicy policy(PaperPolicy());
  RankSortStats s = HealthyStats();
  s.steps_since_sort = 5;  // below min_sort_interval
  s.local_rebuilds = 1000;
  s.empty_slot_ratio = 0.01;
  s.step_throughput = 1.0;
  const SortDecision d = policy.Evaluate(s);
  EXPECT_EQ(d, SortDecision::kMinIntervalHold);
  EXPECT_FALSE(ResortPolicy::ShouldSort(d));
}

TEST(ResortPolicy, PriorityOrderRebuildBeforeRatio) {
  ResortPolicy policy(PaperPolicy());
  RankSortStats s = HealthyStats();
  s.local_rebuilds = 500;
  s.empty_slot_ratio = 0.01;
  EXPECT_EQ(policy.Evaluate(s), SortDecision::kRebuildCount);
}

TEST(ResortPolicy, NoBaselineNoPerfTrigger) {
  ResortPolicy policy(PaperPolicy());
  RankSortStats s = HealthyStats();
  s.baseline_throughput = 0.0;  // first step after a sort: no baseline yet
  s.step_throughput = 1.0;
  EXPECT_EQ(policy.Evaluate(s), SortDecision::kNoSort);
}

TEST(ResortPolicy, DecisionNames) {
  EXPECT_STREQ(SortDecisionName(SortDecision::kNoSort), "no-sort");
  EXPECT_STREQ(SortDecisionName(SortDecision::kFixedInterval), "fixed-interval");
  EXPECT_STREQ(SortDecisionName(SortDecision::kPerfDegradation),
               "perf-degradation");
}

}  // namespace
}  // namespace mpic

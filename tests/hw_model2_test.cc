// Second-round hardware-model tests: the stride prefetcher, the
// contiguity-aware indexed load, logical address staggering, and the cost
// relationships the calibrated kernels rely on.

#include <gtest/gtest.h>

#include <vector>

#include "src/hw/hw_context.h"

namespace mpic {
namespace {

TEST(Prefetcher, SequentialMissesAreDiscounted) {
  HwContext hw;
  std::vector<double> buf(1 << 15, 0.0);  // 256 KiB: misses L1, fits L2
  hw.RegisterRegion(buf.data(), buf.size() * sizeof(double));
  // Touch line starts sequentially: after the first miss the stream tracker
  // predicts every subsequent line.
  const MachineConfig& cfg = hw.cfg();
  double first = 0.0;
  double later = 0.0;
  for (int line = 0; line < 64; ++line) {
    const double before = hw.ledger().TotalCycles();
    hw.TouchRead(&buf[static_cast<size_t>(line) * 8], 8);
    const double cost = hw.ledger().TotalCycles() - before;
    if (line == 0) {
      first = cost;
    } else if (line == 32) {
      later = cost;
    }
  }
  EXPECT_GT(first, cfg.dram_penalty_cycles * 0.9);
  EXPECT_LT(later, cfg.dram_penalty_cycles * cfg.prefetch_factor + 1.0);
}

TEST(Prefetcher, RandomHopsPayFullPenalty) {
  HwContext hw;
  std::vector<double> buf(1 << 15, 0.0);
  hw.RegisterRegion(buf.data(), buf.size() * sizeof(double));
  const MachineConfig& cfg = hw.cfg();
  size_t pos = 0;
  double total = 0.0;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    const double before = hw.ledger().TotalCycles();
    hw.TouchRead(&buf[pos], 8);
    total += hw.ledger().TotalCycles() - before;
    pos = (pos + 97 * 8) % buf.size();
  }
  // Average per access must be near the undiscounted DRAM penalty.
  EXPECT_GT(total / n, cfg.dram_penalty_cycles * 0.8);
}

TEST(Prefetcher, TracksManyStreamsConcurrently) {
  HwContext hw;
  // 22 interleaved streams (the staging pattern) within the tracker budget.
  const int kStreams = 22;
  std::vector<std::vector<double>> streams(kStreams, std::vector<double>(4096, 0.0));
  for (auto& s : streams) {
    hw.RegisterRegion(s.data(), s.size() * sizeof(double));
  }
  // Warm one line of each stream (allocates trackers), then advance all
  // streams line by line: everything should be predicted.
  for (auto& s : streams) {
    hw.TouchRead(s.data(), 8);
  }
  const double before = hw.ledger().TotalCycles();
  const MachineConfig& cfg = hw.cfg();
  int accesses = 0;
  for (int line = 1; line < 20; ++line) {
    for (auto& s : streams) {
      hw.TouchRead(s.data() + static_cast<size_t>(line) * 8, 8);
      ++accesses;
    }
  }
  const double per_access = (hw.ledger().TotalCycles() - before) / accesses;
  EXPECT_LT(per_access,
            cfg.dram_penalty_cycles * cfg.prefetch_factor + 1.0);
}

TEST(VGatherAuto, ContiguousChargesLikeVectorLoad) {
  HwContext hw;
  std::vector<double> buf(256, 1.5);
  hw.RegisterRegion(buf.data(), buf.size() * sizeof(double));
  // Warm the lines so only issue costs differ.
  for (size_t i = 0; i < buf.size(); i += 8) {
    hw.TouchRead(&buf[i], 64);
  }
  const int64_t contiguous[8] = {16, 17, 18, 19, 20, 21, 22, 23};
  const int64_t scattered[8] = {3, 40, 80, 120, 160, 200, 240, 250};

  const double before_c = hw.ledger().TotalCycles();
  const Vec8 vc = hw.VGatherAuto(buf.data(), contiguous, Mask8::All());
  const double cost_c = hw.ledger().TotalCycles() - before_c;

  const double before_s = hw.ledger().TotalCycles();
  const Vec8 vs = hw.VGatherAuto(buf.data(), scattered, Mask8::All());
  const double cost_s = hw.ledger().TotalCycles() - before_s;

  EXPECT_DOUBLE_EQ(vc[0], 1.5);
  EXPECT_DOUBLE_EQ(vs[7], 1.5);
  EXPECT_LT(cost_c * 2.0, cost_s);  // gather issue dominates the scattered path
  EXPECT_EQ(hw.ledger().counters().gathers, 1u);  // only the scattered one
}

TEST(VGatherAuto, MaskedTailStillContiguous) {
  HwContext hw;
  std::vector<double> buf(64, 2.0);
  hw.RegisterRegion(buf.data(), buf.size() * sizeof(double));
  const int64_t idx[8] = {10, 11, 12, 0, 0, 0, 0, 0};
  const Vec8 v = hw.VGatherAuto(buf.data(), idx, Mask8::FirstN(3));
  EXPECT_DOUBLE_EQ(v[2], 2.0);
  EXPECT_DOUBLE_EQ(v[5], 0.0);  // masked lanes zeroed
  EXPECT_EQ(hw.ledger().counters().gathers, 0u);
}

TEST(MemMap, RegionBasesSpreadAcrossCacheSets) {
  MemMap map;
  std::vector<std::vector<double>> arrays(10, std::vector<double>(1024, 0.0));
  std::vector<uint64_t> sets;
  for (auto& a : arrays) {
    const uint64_t base = map.Register(a.data(), a.size() * sizeof(double));
    sets.push_back((base / 64) % 64);
  }
  // Not all regions may share a set (that was the thrash bug); require at
  // least 5 distinct L1 sets among 10 regions.
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  EXPECT_GE(sets.size(), 5u);
}

TEST(MemMap, GrownRegionGetsFreshLogicalRange) {
  MemMap map;
  std::vector<double> a(64);
  const uint64_t first = map.Register(a.data(), 64 * sizeof(double));
  // Same base, larger size (models a realloc landing on the same address).
  const uint64_t second = map.Register(a.data(), 128 * sizeof(double));
  EXPECT_NE(first, second);
  EXPECT_EQ(map.Translate(a.data()), second);
}

TEST(MemMap, OverlappingStaleRegionIsDropped) {
  MemMap map;
  auto* raw = new double[256];
  map.Register(raw, 256 * sizeof(double));
  // A "new allocation" overlapping the middle of the stale one.
  const uint64_t base = map.Register(raw + 64, 64 * sizeof(double));
  EXPECT_EQ(map.Translate(raw + 64), base);
  delete[] raw;
}

TEST(CostRelation, MopaBeatsVpuPerFlop) {
  // The architectural premise: one MOPA (128 FLOPs) costs less than the
  // equivalent 8 VPU FMA instructions (8 x 16 FLOPs).
  HwContext hw;
  MpuTileReg tile;
  Vec8 a = Vec8::Splat(1.0);
  const double before_mopa = hw.ledger().TotalCycles();
  hw.Mopa(tile, a, a);
  const double mopa = hw.ledger().TotalCycles() - before_mopa;

  const double before_vpu = hw.ledger().TotalCycles();
  Vec8 acc = Vec8::Zero();
  for (int i = 0; i < 8; ++i) {
    acc = hw.VFma(a, a, acc);
  }
  const double vpu = hw.ledger().TotalCycles() - before_vpu;
  EXPECT_LT(mopa, vpu);
  EXPECT_DOUBLE_EQ(mopa, hw.cfg().mopa_issue_cycles);
}

TEST(CostRelation, SortedKernelPremiseHolds) {
  // Gather issue cost > vector load issue cost: the reason cell-sorted
  // (contiguous) staged access wins.
  const MachineConfig cfg = MachineConfig::Lx2();
  EXPECT_GT(cfg.gather_issue_cycles, cfg.vector_mem_issue_cycles * 4);
}

TEST(LedgerSummary, MentionsCountersAndPhases) {
  HwContext hw;
  hw.ScalarOps(3);
  MpuTileReg tile;
  hw.Mopa(tile, Vec8::Splat(1.0), Vec8::Splat(1.0));
  const std::string s = hw.ledger().Summary();
  EXPECT_NE(s.find("mopa=1"), std::string::npos);
  EXPECT_NE(s.find("scalar=3"), std::string::npos);
  EXPECT_NE(s.find("other="), std::string::npos);
}

TEST(Vec, SplatAndMaskHelpers) {
  const Vec8 v = Vec8::Splat(2.5);
  EXPECT_DOUBLE_EQ(v[0], 2.5);
  EXPECT_DOUBLE_EQ(v[7], 2.5);
  EXPECT_EQ(Mask8::All().PopCount(), 8);
  EXPECT_EQ(Mask8::FirstN(3).PopCount(), 3);
  EXPECT_EQ(Mask8::FirstN(0).PopCount(), 0);
  MpuTileReg t;
  t.At(2, 3) = 1.0;
  t.Zero();
  EXPECT_DOUBLE_EQ(t.At(2, 3), 0.0);
}

}  // namespace
}  // namespace mpic

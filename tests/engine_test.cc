#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/deposition_engine.h"
#include "src/core/workloads.h"
#include "src/particles/species.h"

namespace mpic {
namespace {

struct EngineWorld {
  explicit EngineWorld(DepositVariant variant, int order = 1, int ppc = 4,
                       uint64_t seed = 42)
      : geom(MakeGeom()),
        fields(geom, 2),
        tiles(geom, 4, 4, 4),
        hw(),
        engine(hw, MakeEngineConfig(variant, order)) {
    Rng rng(seed);
    const int64_t n = geom.NumCells() * ppc;
    for (int64_t i = 0; i < n; ++i) {
      Particle p;
      p.x = rng.Uniform(0.0, geom.LengthX());
      p.y = rng.Uniform(0.0, geom.LengthY());
      p.z = rng.Uniform(0.0, geom.LengthZ());
      p.ux = rng.NextGaussian() * 0.05 * kSpeedOfLight;
      p.uy = rng.NextGaussian() * 0.05 * kSpeedOfLight;
      p.uz = rng.NextGaussian() * 0.05 * kSpeedOfLight;
      p.w = 1e10;
      tiles.AddParticle(p);
    }
    engine.Initialize(tiles, fields);
  }

  static GridGeometry MakeGeom() {
    GridGeometry g;
    g.nx = g.ny = g.nz = 8;
    g.dx = g.dy = g.dz = 3.0e-7;
    return g;
  }

  static EngineConfig MakeEngineConfig(DepositVariant variant, int order) {
    EngineConfig cfg;
    cfg.variant = variant;
    cfg.order = order;
    return cfg;
  }

  EngineStepStats Deposit() { return engine.DepositStep(tiles, fields, kElectronCharge); }

  // Pseudo-random walk that is a pure function of (seed, particle position):
  // identical across worlds even when a global sort reorders particle memory.
  static double HashStep(uint64_t h) {
    h += 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    h = h ^ (h >> 31);
    return static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;  // [-1, 1)
  }

  void Jiggle(uint64_t seed, double cell_fraction = 0.4) {
    for (int t = 0; t < tiles.num_tiles(); ++t) {
      ParticleTile& tile = tiles.tile(t);
      ParticleSoA& soa = tile.soa();
      for (int32_t pid = 0; pid < tile.num_slots(); ++pid) {
        if (!tile.IsLive(pid)) {
          continue;
        }
        const auto i = static_cast<size_t>(pid);
        uint64_t h = seed;
        uint64_t bits;
        std::memcpy(&bits, &soa.x[i], sizeof(bits));
        h ^= bits * 0x2545F4914F6CDD1Dull;
        std::memcpy(&bits, &soa.y[i], sizeof(bits));
        h ^= bits * 0x9E3779B97F4A7C15ull;
        std::memcpy(&bits, &soa.z[i], sizeof(bits));
        h ^= bits * 0xD6E8FEB86659FD93ull;
        soa.x[i] = geom.WrapX(soa.x[i] + HashStep(h) * cell_fraction * geom.dx);
        soa.y[i] = geom.WrapY(soa.y[i] + HashStep(h + 1) * cell_fraction * geom.dy);
        soa.z[i] = geom.WrapZ(soa.z[i] + HashStep(h + 2) * cell_fraction * geom.dz);
      }
    }
  }

  GridGeometry geom;
  FieldSet fields;
  TileSet tiles;
  HwContext hw;
  DepositionEngine engine;
};

// All variants must produce identical J for the same particle state.
class VariantEquivalence : public ::testing::TestWithParam<DepositVariant> {};

TEST_P(VariantEquivalence, MatchesScalarVariantAfterChurn) {
  EngineWorld ref_world(DepositVariant::kScalar);
  EngineWorld world(GetParam());

  for (int step = 0; step < 3; ++step) {
    ref_world.Jiggle(100 + step);
    world.Jiggle(100 + step);  // identical motion (same seed, same init)
    ref_world.fields.ZeroCurrents();
    world.fields.ZeroCurrents();
    ref_world.Deposit();
    world.Deposit();
    EXPECT_LT(RelMaxError(ref_world.fields.jx.vec(), world.fields.jx.vec()), 1e-11)
        << "step " << step;
    EXPECT_LT(RelMaxError(ref_world.fields.jy.vec(), world.fields.jy.vec()), 1e-11);
    EXPECT_LT(RelMaxError(ref_world.fields.jz.vec(), world.fields.jz.vec()), 1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VariantEquivalence,
    ::testing::Values(DepositVariant::kBaseline, DepositVariant::kBaselineIncrSort,
                      DepositVariant::kRhocell, DepositVariant::kRhocellIncrSort,
                      DepositVariant::kRhocellIncrSortVpu,
                      DepositVariant::kMatrixOnly, DepositVariant::kHybridNoSort,
                      DepositVariant::kHybridGlobalSort, DepositVariant::kFullOpt),
    [](const auto& param_info) {
      std::string name = VariantName(param_info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

TEST(Engine, QspVariantsAgree) {
  EngineWorld ref_world(DepositVariant::kScalar, 3);
  EngineWorld vpu_world(DepositVariant::kRhocellIncrSortVpu, 3);
  EngineWorld mpu_world(DepositVariant::kFullOpt, 3);
  for (int step = 0; step < 2; ++step) {
    ref_world.Jiggle(7 + step);
    vpu_world.Jiggle(7 + step);
    mpu_world.Jiggle(7 + step);
    ref_world.fields.ZeroCurrents();
    vpu_world.fields.ZeroCurrents();
    mpu_world.fields.ZeroCurrents();
    ref_world.Deposit();
    vpu_world.Deposit();
    mpu_world.Deposit();
    EXPECT_LT(RelMaxError(ref_world.fields.jx.vec(), vpu_world.fields.jx.vec()),
              1e-11);
    EXPECT_LT(RelMaxError(ref_world.fields.jx.vec(), mpu_world.fields.jx.vec()),
              1e-11);
  }
}

TEST(Engine, GpmaStaysValidAcrossChurnSteps) {
  EngineWorld world(DepositVariant::kFullOpt);
  const int64_t live0 = world.tiles.TotalLive();
  for (int step = 0; step < 10; ++step) {
    world.Jiggle(500 + step, 0.8);
    world.fields.ZeroCurrents();
    world.Deposit();
    for (int t = 0; t < world.tiles.num_tiles(); ++t) {
      world.tiles.tile(t).gpma().CheckInvariants();
    }
    EXPECT_EQ(world.tiles.TotalLive(), live0) << "step " << step;
  }
}

TEST(Engine, GpmaBinsMatchParticleCells) {
  EngineWorld world(DepositVariant::kFullOpt);
  for (int step = 0; step < 5; ++step) {
    world.Jiggle(900 + step, 0.7);
    world.fields.ZeroCurrents();
    world.Deposit();
  }
  for (int t = 0; t < world.tiles.num_tiles(); ++t) {
    const ParticleTile& tile = world.tiles.tile(t);
    for (int32_t pid = 0; pid < tile.num_slots(); ++pid) {
      if (!tile.IsLive(pid)) {
        continue;
      }
      EXPECT_EQ(tile.gpma().CellOf(pid), tile.CellOfParticle(world.geom, pid));
    }
  }
}

TEST(Engine, SortCyclesOnlyForSortingVariants) {
  EngineWorld none(DepositVariant::kBaseline);
  none.Jiggle(1);
  none.fields.ZeroCurrents();
  none.hw.ledger().Reset();
  none.Deposit();
  EXPECT_DOUBLE_EQ(none.hw.ledger().PhaseCycles(Phase::kSort), 0.0);

  EngineWorld incr(DepositVariant::kFullOpt);
  incr.Jiggle(1);
  incr.fields.ZeroCurrents();
  incr.hw.ledger().Reset();
  incr.Deposit();
  EXPECT_GT(incr.hw.ledger().PhaseCycles(Phase::kSort), 0.0);
}

TEST(Engine, GlobalEachStepSortsEveryStep) {
  EngineWorld world(DepositVariant::kHybridGlobalSort);
  for (int step = 0; step < 3; ++step) {
    world.Jiggle(30 + step);
    world.fields.ZeroCurrents();
    const auto stats = world.Deposit();
    EXPECT_TRUE(stats.global_sorted);
  }
}

TEST(Engine, FixedIntervalPolicyTriggersGlobalSort) {
  EngineWorld world(DepositVariant::kFullOpt);
  // Tighten the policy: sort every 3 steps (min interval 1).
  EngineConfig cfg = EngineWorld::MakeEngineConfig(DepositVariant::kFullOpt, 1);
  cfg.policy.sort_interval = 3;
  cfg.policy.min_sort_interval = 1;
  cfg.policy.trigger_perf_enable = false;
  cfg.policy.trigger_empty_ratio = -1.0;  // never
  cfg.policy.trigger_full_ratio = 2.0;    // never
  DepositionEngine engine(world.hw, cfg);
  engine.Initialize(world.tiles, world.fields);
  int sorts = 0;
  for (int step = 0; step < 9; ++step) {
    world.Jiggle(60 + step, 0.2);
    world.fields.ZeroCurrents();
    const auto stats = engine.DepositStep(world.tiles, world.fields, kElectronCharge);
    sorts += stats.global_sorted ? 1 : 0;
  }
  EXPECT_EQ(sorts, 3);
}

TEST(Engine, CrossTileMoversArePreserved) {
  EngineWorld world(DepositVariant::kFullOpt);
  const int64_t live0 = world.tiles.TotalLive();
  // Violent churn: move particles up to 3 cells -> plenty of tile crossings.
  for (int step = 0; step < 4; ++step) {
    world.Jiggle(777 + step, 3.0);
    world.fields.ZeroCurrents();
    const auto stats = world.Deposit();
    EXPECT_GT(stats.crossed_tiles, 0);
    EXPECT_EQ(world.tiles.TotalLive(), live0);
    for (int t = 0; t < world.tiles.num_tiles(); ++t) {
      world.tiles.tile(t).gpma().CheckInvariants();
    }
  }
}

TEST(Engine, AddRemoveParticleKeepsStructuresConsistent) {
  EngineWorld world(DepositVariant::kFullOpt);
  Particle p;
  p.x = p.y = p.z = 1.0e-7;
  p.w = 1e9;
  const auto h = world.tiles.AddParticle(p);
  world.engine.NotifyParticleAdded(world.tiles, h.tile, h.pid);
  world.tiles.tile(h.tile).gpma().CheckInvariants();
  EXPECT_EQ(world.tiles.tile(h.tile).gpma().CellOf(h.pid),
            world.tiles.tile(h.tile).CellOfParticle(world.geom, h.pid));
  world.engine.RemoveParticle(world.tiles, h.tile, h.pid);
  world.tiles.tile(h.tile).gpma().CheckInvariants();
  EXPECT_FALSE(world.tiles.tile(h.tile).IsLive(h.pid));
}

TEST(Engine, MpuVariantsIssueMopasAndVpuVariantsDont) {
  EngineWorld vpu(DepositVariant::kRhocellIncrSortVpu);
  vpu.fields.ZeroCurrents();
  vpu.Deposit();
  EXPECT_EQ(vpu.hw.ledger().counters().mopas, 0u);

  EngineWorld mpu(DepositVariant::kFullOpt);
  mpu.fields.ZeroCurrents();
  mpu.Deposit();
  EXPECT_GT(mpu.hw.ledger().counters().mopas, 0u);
}

}  // namespace
}  // namespace mpic

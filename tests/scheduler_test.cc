// Cost-guided work-stealing scheduler tests: the modeled schedule must be a
// pure deterministic function of the cost estimates (LPT over bucketed costs,
// steal simulation over raw costs), every position must execute exactly once,
// and — the load-bearing invariant — physics must stay bit-identical between
// the static partition and the stealing schedule for every workload, modeled
// core count, and pipeline flavor. The OpenMP-thread dimension is covered by
// CI running this binary at OMP_NUM_THREADS=1 and 4.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/core/simulation.h"
#include "src/core/workloads.h"
#include "src/hw/tile_scheduler.h"
#include "src/runtime/digest.h"

namespace mpic {
namespace {

void UseManyThreads() {
#ifdef _OPENMP
  omp_set_num_threads(4);
#endif
}

// Flattens a schedule into per-position execution counts; fails the test if
// any position is missing, duplicated, or out of range.
std::vector<int> ExecutionCounts(const TileScheduleResult& r, int n) {
  std::vector<int> counts(static_cast<size_t>(n), 0);
  for (const auto& tasks : r.worker_tasks) {
    for (const TileTask& task : tasks) {
      EXPECT_GE(task.pos, 0);
      EXPECT_LT(task.pos, n);
      ++counts[static_cast<size_t>(task.pos)];
    }
  }
  return counts;
}

void ExpectCoversEveryPositionOnce(const TileScheduleResult& r, int n) {
  for (int c : ExecutionCounts(r, n)) {
    EXPECT_EQ(c, 1);
  }
}

int64_t CountStolenFlags(const TileScheduleResult& r) {
  int64_t stolen = 0;
  for (const auto& tasks : r.worker_tasks) {
    for (const TileTask& task : tasks) {
      if (task.stolen) {
        ++stolen;
      }
    }
  }
  return stolen;
}

// Makespan of the plain contiguous block split on the same raw costs.
double StaticMakespan(const std::vector<double>& cost, int workers) {
  const int n = static_cast<int>(cost.size());
  double makespan = 0.0;
  for (int w = 0; w < workers; ++w) {
    const int base = n / workers;
    const int extra = n % workers;
    const int begin = w * base + (w < extra ? w : extra);
    const int end = begin + base + (w < extra ? 1 : 0);
    double sum = 0.0;
    for (int i = begin; i < end; ++i) {
      sum += std::max(cost[static_cast<size_t>(i)], 1.0);
    }
    makespan = std::max(makespan, sum);
  }
  return makespan;
}

// ---- BuildTileSchedule unit tests -------------------------------------------

TEST(TileScheduler, NearUniformCostsFallBackToContiguousSplit) {
  // Spread 1.4 < kNearUniformCostRatio: the schedule must be the exact
  // contiguous block split (cache-affine, zero steals).
  std::vector<double> cost(10);
  for (int i = 0; i < 10; ++i) {
    cost[static_cast<size_t>(i)] = 100.0 + 4.0 * i;  // 100..136
  }
  const TileScheduleResult r = BuildTileSchedule(10, 3, cost.data(), 120.0);
  EXPECT_EQ(r.total_steals, 0);
  ExpectCoversEveryPositionOnce(r, 10);
  // 10 over 3 workers: 4 + 3 + 3, contiguous ascending.
  ASSERT_EQ(r.worker_tasks.size(), 3u);
  ASSERT_EQ(r.worker_tasks[0].size(), 4u);
  ASSERT_EQ(r.worker_tasks[1].size(), 3u);
  ASSERT_EQ(r.worker_tasks[2].size(), 3u);
  int expect = 0;
  for (const auto& tasks : r.worker_tasks) {
    for (const TileTask& task : tasks) {
      EXPECT_EQ(task.pos, expect++);
      EXPECT_FALSE(task.stolen);
    }
  }
}

TEST(TileScheduler, NullEstimatesFallBackToContiguousSplit) {
  const TileScheduleResult r = BuildTileSchedule(7, 2, nullptr, 120.0);
  EXPECT_EQ(r.total_steals, 0);
  ASSERT_EQ(r.worker_tasks.size(), 2u);
  EXPECT_EQ(r.worker_tasks[0].size(), 4u);
  EXPECT_EQ(r.worker_tasks[1].size(), 3u);
  ExpectCoversEveryPositionOnce(r, 7);
}

TEST(TileScheduler, EmptyAndSingleWorkerEdgeCases) {
  const TileScheduleResult empty = BuildTileSchedule(0, 4, nullptr, 120.0);
  EXPECT_EQ(empty.total_steals, 0);
  EXPECT_EQ(empty.makespan, 0.0);

  // Skewed costs on one worker: everything lands there, nothing to steal.
  std::vector<double> cost = {900.0, 10.0, 10.0, 10.0, 400.0};
  const TileScheduleResult solo = BuildTileSchedule(5, 1, cost.data(), 120.0);
  EXPECT_EQ(solo.total_steals, 0);
  ASSERT_EQ(solo.worker_tasks.size(), 1u);
  EXPECT_EQ(solo.worker_tasks[0].size(), 5u);
  ExpectCoversEveryPositionOnce(solo, 5);
}

TEST(TileScheduler, LptBalancesSkewedCostsBelowStaticMakespan) {
  // A contiguous run of heavy positions — the static partition's worst case
  // (one worker owns the whole clump).
  std::vector<double> cost(32, 50.0);
  for (int i = 4; i < 10; ++i) {
    cost[static_cast<size_t>(i)] = 2000.0;
  }
  const TileScheduleResult r = BuildTileSchedule(32, 4, cost.data(), 120.0);
  ExpectCoversEveryPositionOnce(r, 32);
  double total = 0.0;
  for (double c : cost) {
    total += c;
  }
  EXPECT_GE(r.makespan, total / 4.0);  // cannot beat the perfect split
  EXPECT_LT(r.makespan, 0.6 * StaticMakespan(cost, 4));
}

TEST(TileScheduler, ScheduleIsDeterministic) {
  std::vector<double> cost(48);
  for (int i = 0; i < 48; ++i) {
    // Deterministic pseudo-jitter with spread well over the fallback ratio.
    cost[static_cast<size_t>(i)] = 100.0 + 37.0 * ((i * 13) % 29);
  }
  const TileScheduleResult a = BuildTileSchedule(48, 4, cost.data(), 120.0);
  const TileScheduleResult b = BuildTileSchedule(48, 4, cost.data(), 120.0);
  ASSERT_EQ(a.worker_tasks.size(), b.worker_tasks.size());
  for (size_t w = 0; w < a.worker_tasks.size(); ++w) {
    ASSERT_EQ(a.worker_tasks[w].size(), b.worker_tasks[w].size());
    for (size_t k = 0; k < a.worker_tasks[w].size(); ++k) {
      EXPECT_EQ(a.worker_tasks[w][k].pos, b.worker_tasks[w][k].pos);
      EXPECT_EQ(a.worker_tasks[w][k].stolen, b.worker_tasks[w][k].stolen);
    }
  }
  EXPECT_EQ(a.total_steals, b.total_steals);
  EXPECT_EQ(a.makespan, b.makespan);
  ExpectCoversEveryPositionOnce(a, 48);
}

TEST(TileScheduler, StealsFireOnWithinBucketSpread) {
  // Two heavy anchors pin one per worker; the 60 light tasks all quantize to
  // the same planner bucket (1000 and 1115 both round to bucket 31 of ratio
  // 1.25) but alternate in raw cost, so the LPT assignment splits them evenly
  // in *planned* load while the raw loads diverge by 30 * 115 cycles — the
  // within-bucket remainder the steal phase exists to polish.
  std::vector<double> cost;
  cost.push_back(5000.0);
  cost.push_back(5000.0);
  for (int i = 0; i < 30; ++i) {
    cost.push_back(1115.0);
    cost.push_back(1000.0);
  }
  const int n = static_cast<int>(cost.size());
  const TileScheduleResult r = BuildTileSchedule(n, 2, cost.data(), 120.0);
  ExpectCoversEveryPositionOnce(r, n);
  EXPECT_GT(r.total_steals, 0);
  EXPECT_EQ(CountStolenFlags(r), r.total_steals);
  // Stealing must not cost more than it saves: the modeled makespan stays
  // below the static contiguous split's.
  EXPECT_LT(r.makespan, StaticMakespan(cost, 2));
}

// ---- Physics bit-identity: static vs stealing -------------------------------

uint64_t DigestAfterRun(std::unique_ptr<Simulation> sim, int steps) {
  sim->Run(steps);
  return SimulationDigest(*sim);
}

// Builds (workload x pipeline) under one (policy, cores) machine and returns
// the digests after a few steps.
struct MatrixDigests {
  uint64_t uniform_fused = 0;
  uint64_t uniform_legacy = 0;
  uint64_t bunched_fused = 0;
  uint64_t bunched_legacy = 0;
  uint64_t lwfa_fused = 0;
};

MatrixDigests RunMatrix(TileSchedulePolicy policy, int cores) {
  UseManyThreads();
  const auto mk_hw = [&] {
    return policy == TileSchedulePolicy::kCostSteal
               ? MachineConfig::Lx2MultiCoreStealing(cores)
               : MachineConfig::Lx2MultiCore(cores);
  };
  MatrixDigests d;

  UniformWorkloadParams up;
  up.nx = up.ny = up.nz = 8;
  up.ppc_x = up.ppc_y = up.ppc_z = 2;
  up.tile = 4;
  for (const bool fused : {true, false}) {
    up.fuse_stages = fused;
    HwContext hw(mk_hw());
    const uint64_t digest = DigestAfterRun(MakeUniformSimulation(hw, up), 4);
    (fused ? d.uniform_fused : d.uniform_legacy) = digest;
  }

  BunchedBeamParams bp;
  bp.ppc_x = bp.ppc_y = bp.ppc_z = 4;  // lighter than the bench, same shape
  for (const bool fused : {true, false}) {
    bp.fuse_stages = fused;
    HwContext hw(mk_hw());
    const uint64_t digest = DigestAfterRun(MakeBunchedBeamSimulation(hw, bp), 3);
    (fused ? d.bunched_fused : d.bunched_legacy) = digest;
  }

  LwfaWorkloadParams lp;
  lp.nx = lp.ny = 8;
  lp.nz = 32;
  lp.tile = 4;
  lp.tile_z = 8;
  {
    HwContext hw(mk_hw());
    d.lwfa_fused = DigestAfterRun(MakeLwfaSimulation(hw, lp), 6);
  }
  return d;
}

class SchedulerBitIdentity : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerBitIdentity, DigestsMatchStaticAcrossPolicies) {
  const int cores = GetParam();
  const MatrixDigests st = RunMatrix(TileSchedulePolicy::kStatic, cores);
  const MatrixDigests sl = RunMatrix(TileSchedulePolicy::kCostSteal, cores);
  EXPECT_EQ(st.uniform_fused, sl.uniform_fused);
  EXPECT_EQ(st.uniform_legacy, sl.uniform_legacy);
  EXPECT_EQ(st.bunched_fused, sl.bunched_fused);
  EXPECT_EQ(st.bunched_legacy, sl.bunched_legacy);
  EXPECT_EQ(st.lwfa_fused, sl.lwfa_fused);
  // Fused vs legacy is also bit-identical, under either policy.
  EXPECT_EQ(st.uniform_fused, st.uniform_legacy);
  EXPECT_EQ(sl.bunched_fused, sl.bunched_legacy);
}

INSTANTIATE_TEST_SUITE_P(Cores, SchedulerBitIdentity, ::testing::Values(1, 2, 4));

// ---- Steal accounting -------------------------------------------------------

TEST(SchedulerLedger, BunchedRunStealsAndChargesDeterministically) {
  UseManyThreads();
  BunchedBeamParams p;
  p.ppc_x = p.ppc_y = p.ppc_z = 4;

  const auto run = [&](TileSchedulePolicy policy) {
    HwContext hw(policy == TileSchedulePolicy::kCostSteal
                     ? MachineConfig::Lx2MultiCoreStealing(4)
                     : MachineConfig::Lx2MultiCore(4));
    auto sim = MakeBunchedBeamSimulation(hw, p);
    sim->Run(4);
    struct {
      uint64_t stolen;
      double steal_cycles;
      double total;
    } out{hw.ledger().counters().tasks_stolen,
          hw.ledger().counters().steal_cycles, hw.ledger().TotalCycles()};
    return out;
  };

  const auto static_run = run(TileSchedulePolicy::kStatic);
  EXPECT_EQ(static_run.stolen, 0u);
  EXPECT_EQ(static_run.steal_cycles, 0.0);

  const auto steal_a = run(TileSchedulePolicy::kCostSteal);
  const auto steal_b = run(TileSchedulePolicy::kCostSteal);
  EXPECT_GT(steal_a.stolen, 0u) << "clumped 4-core run should steal";
  EXPECT_GT(steal_a.steal_cycles, 0.0);
  // The schedule — and with it every modeled charge — is a pure function of
  // the cost estimates, so two identical runs agree to the last cycle.
  EXPECT_EQ(steal_a.stolen, steal_b.stolen);
  EXPECT_EQ(steal_a.steal_cycles, steal_b.steal_cycles);
  EXPECT_EQ(steal_a.total, steal_b.total);
}

}  // namespace
}  // namespace mpic

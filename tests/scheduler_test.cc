// Cost-guided work-stealing scheduler tests: the modeled schedule must be a
// pure deterministic function of the cost estimates (LPT over bucketed costs,
// steal simulation over raw costs), every position must execute exactly once,
// and — the load-bearing invariant — physics must stay bit-identical between
// the static partition and the stealing schedule for every workload, modeled
// core count, and pipeline flavor. The OpenMP-thread dimension is covered by
// CI running this binary at OMP_NUM_THREADS=1 and 4.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/core/simulation.h"
#include "src/core/workloads.h"
#include "src/hw/tile_scheduler.h"
#include "src/runtime/digest.h"

namespace mpic {
namespace {

void UseManyThreads() {
#ifdef _OPENMP
  omp_set_num_threads(4);
#endif
}

// Flattens a schedule into per-position execution counts; fails the test if
// any position is missing, duplicated, or out of range.
std::vector<int> ExecutionCounts(const TileScheduleResult& r, int n) {
  std::vector<int> counts(static_cast<size_t>(n), 0);
  for (const auto& tasks : r.worker_tasks) {
    for (const TileTask& task : tasks) {
      EXPECT_GE(task.pos, 0);
      EXPECT_LT(task.pos, n);
      ++counts[static_cast<size_t>(task.pos)];
    }
  }
  return counts;
}

void ExpectCoversEveryPositionOnce(const TileScheduleResult& r, int n) {
  for (int c : ExecutionCounts(r, n)) {
    EXPECT_EQ(c, 1);
  }
}

int64_t CountStolenFlags(const TileScheduleResult& r) {
  int64_t stolen = 0;
  for (const auto& tasks : r.worker_tasks) {
    for (const TileTask& task : tasks) {
      if (task.stolen) {
        ++stolen;
      }
    }
  }
  return stolen;
}

// Makespan of the plain contiguous block split on the same raw costs.
double StaticMakespan(const std::vector<double>& cost, int workers) {
  const int n = static_cast<int>(cost.size());
  double makespan = 0.0;
  for (int w = 0; w < workers; ++w) {
    const int base = n / workers;
    const int extra = n % workers;
    const int begin = w * base + (w < extra ? w : extra);
    const int end = begin + base + (w < extra ? 1 : 0);
    double sum = 0.0;
    for (int i = begin; i < end; ++i) {
      sum += std::max(cost[static_cast<size_t>(i)], 1.0);
    }
    makespan = std::max(makespan, sum);
  }
  return makespan;
}

// ---- BuildTileSchedule unit tests -------------------------------------------

TEST(TileScheduler, NearUniformCostsFallBackToContiguousSplit) {
  // Spread 1.4 < kNearUniformCostRatio: the schedule must be the exact
  // contiguous block split (cache-affine, zero steals).
  std::vector<double> cost(10);
  for (int i = 0; i < 10; ++i) {
    cost[static_cast<size_t>(i)] = 100.0 + 4.0 * i;  // 100..136
  }
  const TileScheduleResult r = BuildTileSchedule(10, 3, cost.data(), 120.0);
  EXPECT_EQ(r.total_steals, 0);
  ExpectCoversEveryPositionOnce(r, 10);
  // 10 over 3 workers: 4 + 3 + 3, contiguous ascending.
  ASSERT_EQ(r.worker_tasks.size(), 3u);
  ASSERT_EQ(r.worker_tasks[0].size(), 4u);
  ASSERT_EQ(r.worker_tasks[1].size(), 3u);
  ASSERT_EQ(r.worker_tasks[2].size(), 3u);
  int expect = 0;
  for (const auto& tasks : r.worker_tasks) {
    for (const TileTask& task : tasks) {
      EXPECT_EQ(task.pos, expect++);
      EXPECT_FALSE(task.stolen);
    }
  }
}

TEST(TileScheduler, NullEstimatesFallBackToContiguousSplit) {
  const TileScheduleResult r = BuildTileSchedule(7, 2, nullptr, 120.0);
  EXPECT_EQ(r.total_steals, 0);
  ASSERT_EQ(r.worker_tasks.size(), 2u);
  EXPECT_EQ(r.worker_tasks[0].size(), 4u);
  EXPECT_EQ(r.worker_tasks[1].size(), 3u);
  ExpectCoversEveryPositionOnce(r, 7);
}

TEST(TileScheduler, EmptyAndSingleWorkerEdgeCases) {
  const TileScheduleResult empty = BuildTileSchedule(0, 4, nullptr, 120.0);
  EXPECT_EQ(empty.total_steals, 0);
  EXPECT_EQ(empty.makespan, 0.0);

  // Skewed costs on one worker: everything lands there, nothing to steal.
  std::vector<double> cost = {900.0, 10.0, 10.0, 10.0, 400.0};
  const TileScheduleResult solo = BuildTileSchedule(5, 1, cost.data(), 120.0);
  EXPECT_EQ(solo.total_steals, 0);
  ASSERT_EQ(solo.worker_tasks.size(), 1u);
  EXPECT_EQ(solo.worker_tasks[0].size(), 5u);
  ExpectCoversEveryPositionOnce(solo, 5);
}

TEST(TileScheduler, LptBalancesSkewedCostsBelowStaticMakespan) {
  // A contiguous run of heavy positions — the static partition's worst case
  // (one worker owns the whole clump).
  std::vector<double> cost(32, 50.0);
  for (int i = 4; i < 10; ++i) {
    cost[static_cast<size_t>(i)] = 2000.0;
  }
  const TileScheduleResult r = BuildTileSchedule(32, 4, cost.data(), 120.0);
  ExpectCoversEveryPositionOnce(r, 32);
  double total = 0.0;
  for (double c : cost) {
    total += c;
  }
  EXPECT_GE(r.makespan, total / 4.0);  // cannot beat the perfect split
  EXPECT_LT(r.makespan, 0.6 * StaticMakespan(cost, 4));
}

TEST(TileScheduler, ScheduleIsDeterministic) {
  std::vector<double> cost(48);
  for (int i = 0; i < 48; ++i) {
    // Deterministic pseudo-jitter with spread well over the fallback ratio.
    cost[static_cast<size_t>(i)] = 100.0 + 37.0 * ((i * 13) % 29);
  }
  const TileScheduleResult a = BuildTileSchedule(48, 4, cost.data(), 120.0);
  const TileScheduleResult b = BuildTileSchedule(48, 4, cost.data(), 120.0);
  ASSERT_EQ(a.worker_tasks.size(), b.worker_tasks.size());
  for (size_t w = 0; w < a.worker_tasks.size(); ++w) {
    ASSERT_EQ(a.worker_tasks[w].size(), b.worker_tasks[w].size());
    for (size_t k = 0; k < a.worker_tasks[w].size(); ++k) {
      EXPECT_EQ(a.worker_tasks[w][k].pos, b.worker_tasks[w][k].pos);
      EXPECT_EQ(a.worker_tasks[w][k].stolen, b.worker_tasks[w][k].stolen);
    }
  }
  EXPECT_EQ(a.total_steals, b.total_steals);
  EXPECT_EQ(a.makespan, b.makespan);
  ExpectCoversEveryPositionOnce(a, 48);
}

TEST(TileScheduler, StealsFireOnWithinBucketSpread) {
  // Two heavy anchors pin one per worker; the 60 light tasks all quantize to
  // the same planner bucket (1000 and 1115 both round to bucket 31 of ratio
  // 1.25) but alternate in raw cost, so the LPT assignment splits them evenly
  // in *planned* load while the raw loads diverge by 30 * 115 cycles — the
  // within-bucket remainder the steal phase exists to polish.
  std::vector<double> cost;
  cost.push_back(5000.0);
  cost.push_back(5000.0);
  for (int i = 0; i < 30; ++i) {
    cost.push_back(1115.0);
    cost.push_back(1000.0);
  }
  const int n = static_cast<int>(cost.size());
  const TileScheduleResult r = BuildTileSchedule(n, 2, cost.data(), 120.0);
  ExpectCoversEveryPositionOnce(r, n);
  EXPECT_GT(r.total_steals, 0);
  EXPECT_EQ(CountStolenFlags(r), r.total_steals);
  // Stealing must not cost more than it saves: the modeled makespan stays
  // below the static contiguous split's.
  EXPECT_LT(r.makespan, StaticMakespan(cost, 2));
}

// ---- NUMA placement unit tests ----------------------------------------------

TEST(NumaDomain, ContiguousSplitLikeRankOfTile) {
  // 4 cores / 2 domains: two contiguous halves.
  const int d42[] = {0, 0, 1, 1};
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(NumaDomainOfWorker(w, 4, 2), d42[w]);
  }
  // 4 cores / 4 domains: one core per domain.
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(NumaDomainOfWorker(w, 4, 4), w);
  }
  // 6 cores / 4 domains: remainder domains lead with the extra core
  // (sizes 2, 2, 1, 1), mirroring RankOfTile's contiguous split.
  const int d64[] = {0, 0, 1, 1, 2, 3};
  for (int w = 0; w < 6; ++w) {
    EXPECT_EQ(NumaDomainOfWorker(w, 6, 4), d64[w]);
  }
  // Flat machine and clamping edge cases.
  EXPECT_EQ(NumaDomainOfWorker(3, 4, 1), 0);
  EXPECT_EQ(NumaDomainOfWorker(0, 2, 8), 0);  // more domains than cores
  EXPECT_EQ(NumaDomainOfWorker(1, 2, 8), 1);
  EXPECT_EQ(NumaDomainOfWorker(9, 4, 2), 1);  // out-of-range worker clamps
  EXPECT_EQ(NumaDomainOfWorker(-1, 4, 2), 0);
}

TEST(TileScheduler, PlacementFreeOverloadMatchesDefaultPlacement) {
  // The 4-arg overload must stay byte-identical to the 5-arg call with a
  // default placement (no previous owners, flat domains): the PR 8 schedule.
  std::vector<double> cost(48);
  for (int i = 0; i < 48; ++i) {
    cost[static_cast<size_t>(i)] = 100.0 + 37.0 * ((i * 13) % 29);
  }
  const TileScheduleResult a = BuildTileSchedule(48, 4, cost.data(), 120.0);
  const TileScheduleResult b =
      BuildTileSchedule(48, 4, cost.data(), 120.0, TileSchedulePlacement{});
  ASSERT_EQ(a.worker_tasks.size(), b.worker_tasks.size());
  for (size_t w = 0; w < a.worker_tasks.size(); ++w) {
    ASSERT_EQ(a.worker_tasks[w].size(), b.worker_tasks[w].size());
    for (size_t k = 0; k < a.worker_tasks[w].size(); ++k) {
      EXPECT_EQ(a.worker_tasks[w][k].pos, b.worker_tasks[w][k].pos);
      EXPECT_EQ(a.worker_tasks[w][k].stolen, b.worker_tasks[w][k].stolen);
      EXPECT_FALSE(b.worker_tasks[w][k].remote);
    }
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(b.total_steals_remote, 0);
}

TEST(TileScheduler, StickyOwnerPreferredWithinBucket) {
  // Four equal-bucket positions plus one heavier anchor. Previous owners are
  // a permutation; sticky placement must honor every one of them because each
  // owner sits within the LPT slack when its position is placed.
  const std::vector<double> cost = {1000.0, 1000.0, 1000.0, 1600.0};
  const std::vector<int> prev = {3, 2, 1, 0};
  TileSchedulePlacement placement;
  placement.prev_owner = prev.data();

  const TileScheduleResult sticky =
      BuildTileSchedule(4, 4, cost.data(), 120.0, placement);
  ExpectCoversEveryPositionOnce(sticky, 4);
  EXPECT_EQ(sticky.total_steals, 0);
  for (int pos = 0; pos < 4; ++pos) {
    const auto& tasks =
        sticky.worker_tasks[static_cast<size_t>(prev[static_cast<size_t>(pos)])];
    ASSERT_EQ(tasks.size(), 1u);
    EXPECT_EQ(tasks[0].pos, pos);
  }

  // Owner-oblivious LPT scatters the same positions by descending-bucket
  // order instead: pos3 (heaviest) to w0, then pos0/1/2 to w1/w2/w3.
  const TileScheduleResult naive = BuildTileSchedule(4, 4, cost.data(), 120.0);
  EXPECT_EQ(naive.worker_tasks[0][0].pos, 3);
  EXPECT_EQ(naive.worker_tasks[1][0].pos, 0);
  EXPECT_EQ(naive.worker_tasks[2][0].pos, 1);
  EXPECT_EQ(naive.worker_tasks[3][0].pos, 2);
}

TEST(TileScheduler, DomainMatePreferredBeforeCrossingDomains) {
  // All four positions previously ran on worker 3 (domain 1 of {0,1}|{2,3}).
  // The heavy pos0 keeps its owner; pos1 finds the owner saturated and lands
  // on the owner's domain-mate w2; pos2 finds the whole domain saturated and
  // only then crosses to w0; pos3 crosses to w1. Deterministic tie-breaks:
  // two identical calls agree exactly.
  const std::vector<double> cost = {4000.0, 1000.0, 1000.0, 1000.0};
  const std::vector<int> prev = {3, 3, 3, 3};
  TileSchedulePlacement placement;
  placement.num_domains = 2;
  placement.prev_owner = prev.data();

  const TileScheduleResult r =
      BuildTileSchedule(4, 4, cost.data(), 120.0, placement);
  ExpectCoversEveryPositionOnce(r, 4);
  ASSERT_EQ(r.worker_tasks[3].size(), 1u);
  EXPECT_EQ(r.worker_tasks[3][0].pos, 0);  // owner kept the heavy position
  ASSERT_EQ(r.worker_tasks[2].size(), 1u);
  EXPECT_EQ(r.worker_tasks[2][0].pos, 1);  // domain mate before crossing
  ASSERT_EQ(r.worker_tasks[0].size(), 1u);
  EXPECT_EQ(r.worker_tasks[0][0].pos, 2);  // domain full: cross to w0
  ASSERT_EQ(r.worker_tasks[1].size(), 1u);
  EXPECT_EQ(r.worker_tasks[1][0].pos, 3);

  const TileScheduleResult again =
      BuildTileSchedule(4, 4, cost.data(), 120.0, placement);
  for (size_t w = 0; w < 4; ++w) {
    ASSERT_EQ(r.worker_tasks[w].size(), again.worker_tasks[w].size());
    for (size_t k = 0; k < r.worker_tasks[w].size(); ++k) {
      EXPECT_EQ(r.worker_tasks[w][k].pos, again.worker_tasks[w][k].pos);
    }
  }
}

TEST(TileScheduler, RemoteStealPremiumArithmetic) {
  // Two workers in separate domains, costs {3000, 2900, 100}: LPT queues
  // {pos0, pos2} on w0 and {pos1} on w1, so w1 idles at t=2900 with pos2
  // (cost 100) still queued behind w0's 3000-cycle front — the steal window
  // is 3100 - 2900 = 200 cycles.
  const std::vector<double> cost = {3000.0, 2900.0, 100.0};

  // Flat machine, steal cost 120 < 200: the local steal fires.
  const TileScheduleResult local = BuildTileSchedule(3, 2, cost.data(), 120.0);
  EXPECT_EQ(local.total_steals, 1);
  EXPECT_EQ(local.total_steals_remote, 0);
  EXPECT_EQ(local.makespan, 2900.0 + 120.0 + 100.0);

  // Two domains, remote premium 120 * 2 + 60 = 300 > 200: the same steal is
  // no longer profitable, so w0 keeps pos2 and finishes at 3100.
  TileSchedulePlacement placement;
  placement.num_domains = 2;
  placement.remote_steal_factor = 2.0;
  placement.remote_line_cost = 60.0;
  const TileScheduleResult suppressed =
      BuildTileSchedule(3, 2, cost.data(), 120.0, placement);
  EXPECT_EQ(suppressed.total_steals, 0);
  EXPECT_EQ(suppressed.makespan, 3100.0);

  // Milder premium 120 * 1.5 + 0 = 180 < 200: the steal fires, flagged
  // remote, and the thief pays the premium in its finish time.
  placement.remote_steal_factor = 1.5;
  placement.remote_line_cost = 0.0;
  const TileScheduleResult remote =
      BuildTileSchedule(3, 2, cost.data(), 120.0, placement);
  EXPECT_EQ(remote.total_steals, 1);
  EXPECT_EQ(remote.total_steals_remote, 1);
  bool found = false;
  for (const auto& tasks : remote.worker_tasks) {
    for (const TileTask& task : tasks) {
      if (task.stolen) {
        EXPECT_TRUE(task.remote);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(remote.makespan, 2900.0 + 180.0 + 100.0);
}

TEST(SchedulerLedger, ChargeStealRemotePremiumAndCounters) {
  MachineConfig cfg = MachineConfig::Lx2MultiCoreNuma(2, 2);
  HwContext hw(cfg);
  const double before = hw.ledger().TotalCycles();
  hw.ChargeSteal(false);
  const double local_cost =
      cfg.steal_cost_cycles + cfg.dram_penalty_cycles;
  EXPECT_DOUBLE_EQ(hw.ledger().TotalCycles() - before, local_cost);
  EXPECT_EQ(hw.ledger().counters().tasks_stolen, 1u);
  EXPECT_EQ(hw.ledger().counters().tasks_stolen_remote, 0u);

  hw.ChargeSteal(true);
  const double remote_cost =
      cfg.steal_cost_cycles * cfg.remote_mem_latency_factor +
      cfg.remote_line_transfer_cycles + cfg.dram_penalty_cycles;
  EXPECT_DOUBLE_EQ(hw.ledger().TotalCycles() - before,
                   local_cost + remote_cost);
  EXPECT_EQ(hw.ledger().counters().tasks_stolen, 2u);
  EXPECT_EQ(hw.ledger().counters().tasks_stolen_remote, 1u);
  EXPECT_DOUBLE_EQ(hw.ledger().counters().steal_cycles,
                   local_cost + remote_cost);
}

TEST(SchedulerNuma, PlacementKeepsPhysicsBitIdenticalAndCyclesDeterministic) {
  UseManyThreads();
  BunchedBeamParams p;
  p.nx = p.ny = p.nz = 8;
  p.tile = 4;
  p.ppc_x = p.ppc_y = p.ppc_z = 2;

  const auto run = [&](MachineConfig cfg) {
    HwContext hw(cfg);
    auto sim = MakeBunchedBeamSimulation(hw, p);
    sim->Run(4);
    return std::pair<uint64_t, double>(SimulationDigest(*sim),
                                       hw.ledger().TotalCycles());
  };

  const auto flat = run(MachineConfig::Lx2MultiCore(4));
  MachineConfig naive = MachineConfig::Lx2MultiCoreNuma(4, 2);
  naive.sticky_placement = false;
  const auto numa_naive = run(naive);
  const auto numa_sticky = run(MachineConfig::Lx2MultiCoreNuma(4, 2));
  const auto numa_per_core = run(MachineConfig::Lx2MultiCoreNuma(4, 4));

  // NUMA charges and placement never touch the physics.
  EXPECT_EQ(flat.first, numa_naive.first);
  EXPECT_EQ(flat.first, numa_sticky.first);
  EXPECT_EQ(flat.first, numa_per_core.first);

  // The modeled cycle total is deterministic per configuration.
  const auto sticky_again = run(MachineConfig::Lx2MultiCoreNuma(4, 2));
  EXPECT_EQ(numa_sticky.first, sticky_again.first);
  EXPECT_EQ(numa_sticky.second, sticky_again.second);
}

// ---- Physics bit-identity: static vs stealing -------------------------------

uint64_t DigestAfterRun(std::unique_ptr<Simulation> sim, int steps) {
  sim->Run(steps);
  return SimulationDigest(*sim);
}

// Builds (workload x pipeline) under one (policy, cores) machine and returns
// the digests after a few steps.
struct MatrixDigests {
  uint64_t uniform_fused = 0;
  uint64_t uniform_legacy = 0;
  uint64_t bunched_fused = 0;
  uint64_t bunched_legacy = 0;
  uint64_t lwfa_fused = 0;
};

MatrixDigests RunMatrix(TileSchedulePolicy policy, int cores) {
  UseManyThreads();
  const auto mk_hw = [&] {
    return policy == TileSchedulePolicy::kCostSteal
               ? MachineConfig::Lx2MultiCoreStealing(cores)
               : MachineConfig::Lx2MultiCore(cores);
  };
  MatrixDigests d;

  UniformWorkloadParams up;
  up.nx = up.ny = up.nz = 8;
  up.ppc_x = up.ppc_y = up.ppc_z = 2;
  up.tile = 4;
  for (const bool fused : {true, false}) {
    up.fuse_stages = fused;
    HwContext hw(mk_hw());
    const uint64_t digest = DigestAfterRun(MakeUniformSimulation(hw, up), 4);
    (fused ? d.uniform_fused : d.uniform_legacy) = digest;
  }

  BunchedBeamParams bp;
  bp.ppc_x = bp.ppc_y = bp.ppc_z = 4;  // lighter than the bench, same shape
  for (const bool fused : {true, false}) {
    bp.fuse_stages = fused;
    HwContext hw(mk_hw());
    const uint64_t digest = DigestAfterRun(MakeBunchedBeamSimulation(hw, bp), 3);
    (fused ? d.bunched_fused : d.bunched_legacy) = digest;
  }

  LwfaWorkloadParams lp;
  lp.nx = lp.ny = 8;
  lp.nz = 32;
  lp.tile = 4;
  lp.tile_z = 8;
  {
    HwContext hw(mk_hw());
    d.lwfa_fused = DigestAfterRun(MakeLwfaSimulation(hw, lp), 6);
  }
  return d;
}

class SchedulerBitIdentity : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerBitIdentity, DigestsMatchStaticAcrossPolicies) {
  const int cores = GetParam();
  const MatrixDigests st = RunMatrix(TileSchedulePolicy::kStatic, cores);
  const MatrixDigests sl = RunMatrix(TileSchedulePolicy::kCostSteal, cores);
  EXPECT_EQ(st.uniform_fused, sl.uniform_fused);
  EXPECT_EQ(st.uniform_legacy, sl.uniform_legacy);
  EXPECT_EQ(st.bunched_fused, sl.bunched_fused);
  EXPECT_EQ(st.bunched_legacy, sl.bunched_legacy);
  EXPECT_EQ(st.lwfa_fused, sl.lwfa_fused);
  // Fused vs legacy is also bit-identical, under either policy.
  EXPECT_EQ(st.uniform_fused, st.uniform_legacy);
  EXPECT_EQ(sl.bunched_fused, sl.bunched_legacy);
}

INSTANTIATE_TEST_SUITE_P(Cores, SchedulerBitIdentity, ::testing::Values(1, 2, 4));

// ---- Steal accounting -------------------------------------------------------

TEST(SchedulerLedger, BunchedRunStealsAndChargesDeterministically) {
  UseManyThreads();
  BunchedBeamParams p;
  p.ppc_x = p.ppc_y = p.ppc_z = 4;

  const auto run = [&](TileSchedulePolicy policy) {
    HwContext hw(policy == TileSchedulePolicy::kCostSteal
                     ? MachineConfig::Lx2MultiCoreStealing(4)
                     : MachineConfig::Lx2MultiCore(4));
    auto sim = MakeBunchedBeamSimulation(hw, p);
    sim->Run(4);
    struct {
      uint64_t stolen;
      double steal_cycles;
      double total;
    } out{hw.ledger().counters().tasks_stolen,
          hw.ledger().counters().steal_cycles, hw.ledger().TotalCycles()};
    return out;
  };

  const auto static_run = run(TileSchedulePolicy::kStatic);
  EXPECT_EQ(static_run.stolen, 0u);
  EXPECT_EQ(static_run.steal_cycles, 0.0);

  const auto steal_a = run(TileSchedulePolicy::kCostSteal);
  const auto steal_b = run(TileSchedulePolicy::kCostSteal);
  EXPECT_GT(steal_a.stolen, 0u) << "clumped 4-core run should steal";
  EXPECT_GT(steal_a.steal_cycles, 0.0);
  // The schedule — and with it every modeled charge — is a pure function of
  // the cost estimates, so two identical runs agree to the last cycle.
  EXPECT_EQ(steal_a.stolen, steal_b.stolen);
  EXPECT_EQ(steal_a.steal_cycles, steal_b.steal_cycles);
  EXPECT_EQ(steal_a.total, steal_b.total);
}

}  // namespace
}  // namespace mpic

// Checkpoint/restart tests: a restored simulation must continue bit-identical
// to the uninterrupted run — across every deposit variant, shape order, and
// current scheme; across fused/legacy schedules and modeled core counts;
// through multi-species engine overrides and the moving window. Corrupted or
// truncated checkpoints must be rejected with the target simulation untouched.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/simulation.h"
#include "src/core/workloads.h"
#include "src/deposit/rhocell.h"
#include "src/runtime/checkpoint.h"
#include "src/runtime/digest.h"
#include "src/runtime/fault_injection.h"

namespace mpic {
namespace {

// ---- Round trip across the engine matrix ------------------------------------

struct EngineCombo {
  DepositVariant variant;
  int order;
  CurrentScheme scheme;
};

std::vector<EngineCombo> AllEngineCombos() {
  std::vector<EngineCombo> combos;
  for (DepositVariant v :
       {DepositVariant::kScalar, DepositVariant::kBaseline,
        DepositVariant::kBaselineIncrSort, DepositVariant::kRhocell,
        DepositVariant::kRhocellIncrSort, DepositVariant::kRhocellIncrSortVpu,
        DepositVariant::kMatrixOnly, DepositVariant::kHybridNoSort,
        DepositVariant::kHybridGlobalSort, DepositVariant::kFullOpt}) {
    const VariantTraits traits = TraitsOf(v);
    for (int order : {1, 2, 3}) {
      for (CurrentScheme scheme :
           {CurrentScheme::kDirect, CurrentScheme::kEsirkepov}) {
        if (scheme == CurrentScheme::kDirect && order == 2 &&
            (traits.uses_rhocell || traits.uses_mpu)) {
          continue;  // direct rhocell/MPU kernels are odd-order only
        }
        combos.push_back({v, order, scheme});
      }
    }
  }
  return combos;
}

TEST(CheckpointRoundTrip, EveryVariantOrderAndScheme) {
  for (const EngineCombo& c : AllEngineCombos()) {
    SCOPED_TRACE(std::string(VariantName(c.variant)) + " order " +
                 std::to_string(c.order) +
                 (c.scheme == CurrentScheme::kEsirkepov ? " esirkepov"
                                                        : " direct"));
    UniformWorkloadParams p;
    p.nx = p.ny = p.nz = 8;
    p.ppc_x = p.ppc_y = p.ppc_z = 1;
    p.tile = 4;
    p.variant = c.variant;
    p.order = c.order;
    p.scheme = c.scheme;
    p.u_th = 0.1;  // enough churn for movers and slot recycling

    HwContext ref_hw(MachineConfig::Lx2MultiCore(2));
    auto ref = MakeUniformSimulation(ref_hw, p);
    ref->Run(3);
    std::vector<uint8_t> ckpt;
    ASSERT_TRUE(SaveCheckpoint(*ref, &ckpt)) << "save failed";
    ref->Run(3);
    const uint64_t want = SimulationDigest(*ref);

    HwContext twin_hw(MachineConfig::Lx2MultiCore(2));
    auto twin = MakeUniformSimulation(twin_hw, p);
    twin->Run(1);  // desynchronize; restore must overwrite everything
    const CheckpointStatus st = RestoreCheckpoint(twin.get(), ckpt);
    ASSERT_TRUE(st) << st.error;
    EXPECT_EQ(twin->step_count(), 3);
    twin->Run(3);
    EXPECT_EQ(SimulationDigest(*twin), want);
  }
}

// A checkpoint is schedule- and core-count-portable: an image saved from a
// fused 4-core run must continue bit-identically on a legacy 1-core twin, and
// every other combination.
TEST(CheckpointRoundTrip, CrossScheduleAndCoreRestore) {
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 2;
  p.tile = 4;
  p.u_th = 0.1;

  p.fuse_stages = true;
  HwContext src_hw(MachineConfig::Lx2MultiCore(4));
  auto src = MakeUniformSimulation(src_hw, p);
  src->Run(3);
  std::vector<uint8_t> ckpt;
  ASSERT_TRUE(SaveCheckpoint(*src, &ckpt));
  src->Run(4);
  const uint64_t want = SimulationDigest(*src);

  for (int cores : {1, 2, 4}) {
    for (bool fused : {true, false}) {
      SCOPED_TRACE((fused ? "fused " : "legacy ") + std::to_string(cores) +
                   " cores");
      p.fuse_stages = fused;
      HwContext hw(MachineConfig::Lx2MultiCore(cores));
      auto twin = MakeUniformSimulation(hw, p);
      const CheckpointStatus st = RestoreCheckpoint(twin.get(), ckpt);
      ASSERT_TRUE(st) << st.error;
      twin->Run(4);
      EXPECT_EQ(SimulationDigest(*twin), want);
    }
  }
}

TEST(CheckpointRoundTrip, MultiSpeciesEngineOverrides) {
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.tile = 4;
  UniformSpeciesParams electrons;
  electrons.species = Species::Electron();
  electrons.ppc_x = electrons.ppc_y = electrons.ppc_z = 2;
  electrons.u_th = 0.1;
  UniformSpeciesParams ions;
  ions.species = Species::Proton();
  ions.ppc_x = ions.ppc_y = ions.ppc_z = 1;
  ions.variant = DepositVariant::kHybridNoSort;
  ions.order = 3;
  p.species_params = {electrons, ions};

  HwContext ref_hw(MachineConfig::Lx2MultiCore(2));
  auto ref = MakeUniformSimulation(ref_hw, p);
  ref->Run(3);
  std::vector<uint8_t> ckpt;
  ASSERT_TRUE(SaveCheckpoint(*ref, &ckpt));
  ref->Run(3);
  const uint64_t want = SimulationDigest(*ref);

  HwContext twin_hw(MachineConfig::Lx2MultiCore(2));
  auto twin = MakeUniformSimulation(twin_hw, p);
  const CheckpointStatus st = RestoreCheckpoint(twin.get(), ckpt);
  ASSERT_TRUE(st) << st.error;
  twin->Run(3);
  EXPECT_EQ(SimulationDigest(*twin), want);
}

// The moving window's non-structural state — shifted z0, fractional shift
// accumulator, injection RNG cursor — must all survive the round trip, or the
// continued runs inject different particles.
TEST(CheckpointRoundTrip, LwfaMovingWindowWithIons) {
  LwfaWorkloadParams p;
  p.nx = p.ny = 8;
  p.nz = 32;
  p.tile = 4;
  p.tile_z = 8;
  p.with_ions = true;
  // The re-sort policy keeps its default configuration — including the
  // adaptive performance trigger. Its throughput baselines ride the v2
  // SPECIES tail, and the model_sync handshake makes the trigger's modeled
  // throughput input identical on both sides (see runtime/checkpoint.h).

  HwContext ref_hw(MachineConfig::Lx2MultiCore(2));
  auto ref = MakeLwfaSimulation(ref_hw, p);
  ref->Run(6);
  std::vector<uint8_t> ckpt;
  CheckpointWriteOptions wopts;
  wopts.model_sync = true;
  ASSERT_TRUE(SaveCheckpoint(*ref, &ckpt, wopts));
  ref->Run(6);
  const uint64_t want = SimulationDigest(*ref);

  HwContext twin_hw(MachineConfig::Lx2MultiCore(2));
  auto twin = MakeLwfaSimulation(twin_hw, p);
  CheckpointReadOptions ropts;
  ropts.model_sync = true;
  const CheckpointStatus st = RestoreCheckpoint(twin.get(), ckpt, ropts);
  ASSERT_TRUE(st) << st.error;
  // The twin starts at z0 = 0; the restore must reinstate the shifted window.
  EXPECT_GT(twin->config().geom.z0, 0.0);
  twin->Run(6);
  EXPECT_EQ(SimulationDigest(*twin), want);
}

// Restart-at-every-step bisection: checkpoint a two-stream run at each of its
// N steps; every restart must land on the same final digest. If a restart
// diverges, the first failing k isolates the step whose state the format
// fails to capture.
TEST(CheckpointRoundTrip, TwoStreamRestartAtEveryStep) {
  TwoStreamParams p;
  constexpr int kSteps = 8;

  HwContext ref_hw(MachineConfig::Lx2MultiCore(2));
  auto ref = MakeTwoStreamSimulation(ref_hw, p);
  std::vector<std::vector<uint8_t>> ckpts;
  for (int k = 0; k < kSteps; ++k) {
    std::vector<uint8_t> buf;
    ASSERT_TRUE(SaveCheckpoint(*ref, &buf));
    ckpts.push_back(std::move(buf));
    ref->Step();
  }
  const uint64_t want = SimulationDigest(*ref);

  for (int k = 0; k < kSteps; ++k) {
    SCOPED_TRACE("restart at step " + std::to_string(k));
    HwContext hw(MachineConfig::Lx2MultiCore(2));
    auto twin = MakeTwoStreamSimulation(hw, p);
    const CheckpointStatus st =
        RestoreCheckpoint(twin.get(), ckpts[static_cast<size_t>(k)]);
    ASSERT_TRUE(st) << st.error;
    ASSERT_EQ(twin->step_count(), k);
    twin->Run(kSteps - k);
    EXPECT_EQ(SimulationDigest(*twin), want);
  }
}

TEST(CheckpointRoundTrip, FileBacked) {
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 1;
  p.tile = 4;

  HwContext ref_hw(MachineConfig::Lx2MultiCore(1));
  auto ref = MakeUniformSimulation(ref_hw, p);
  ref->Run(2);
  const std::string path = ::testing::TempDir() + "/mpic_ckpt_test.bin";
  ASSERT_TRUE(SaveCheckpointFile(*ref, path));
  ref->Run(2);
  const uint64_t want = SimulationDigest(*ref);

  HwContext twin_hw(MachineConfig::Lx2MultiCore(1));
  auto twin = MakeUniformSimulation(twin_hw, p);
  const CheckpointStatus st = RestoreCheckpointFile(twin.get(), path);
  ASSERT_TRUE(st) << st.error;
  twin->Run(2);
  EXPECT_EQ(SimulationDigest(*twin), want);
  std::remove(path.c_str());
}

// Restoring with the ledger snapshot resumes the modeled clock of the
// checkpointed run.
TEST(CheckpointRoundTrip, LedgerRestoreResumesModeledClock) {
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 1;
  p.tile = 4;

  HwContext ref_hw(MachineConfig::Lx2MultiCore(2));
  auto ref = MakeUniformSimulation(ref_hw, p);
  ref->Run(3);
  const double cycles_at_save = ref_hw.ledger().TotalCycles();
  std::vector<uint8_t> ckpt;
  ASSERT_TRUE(SaveCheckpoint(*ref, &ckpt));

  HwContext twin_hw(MachineConfig::Lx2MultiCore(2));
  auto twin = MakeUniformSimulation(twin_hw, p);
  CheckpointReadOptions opts;
  opts.restore_ledger = true;
  ASSERT_TRUE(RestoreCheckpoint(twin.get(), ckpt, opts));
  EXPECT_DOUBLE_EQ(twin_hw.ledger().TotalCycles(), cycles_at_save);
}

// ---- Cycle-exact restore: the model-sync handshake ---------------------------

// Save with model_sync, restore with restore_ledger + model_sync: the twin
// must match the saving run bit-for-bit in physics AND in every modeled
// phase-cycle bucket and ledger counter — including the steal pair and with
// the adaptive performance trigger at its enabled default — across schedules,
// tile-schedule policies, core counts, and the multi-rank machine. These are
// exactly the states version-1 images omitted.
TEST(CheckpointCycleExact, RestoreMatchesUninterruptedRun) {
  struct Combo {
    int ranks, cores;
    bool fused, steal;
  };
  const std::vector<Combo> combos = {
      {1, 4, true, false}, {1, 4, true, true}, {1, 4, false, true},
      {1, 1, true, true},  {2, 4, true, true}, {2, 2, false, false},
  };
  for (const Combo& c : combos) {
    SCOPED_TRACE(std::to_string(c.ranks) + " ranks, " +
                 std::to_string(c.cores) + " cores, " +
                 (c.fused ? "fused, " : "legacy, ") +
                 (c.steal ? "steal" : "static"));
    UniformWorkloadParams p;
    p.nx = p.ny = 8;
    p.nz = 16;
    p.ppc_x = p.ppc_y = p.ppc_z = 2;
    p.tile = 4;
    p.u_th = 0.1;
    p.fuse_stages = c.fused;

    const MachineConfig mc = MachineConfig::Lx2Cluster(c.ranks, c.cores, c.steal);
    HwContext ref_hw(mc);
    auto ref = MakeUniformSimulation(ref_hw, p);
    ref->Run(4);
    std::vector<uint8_t> ckpt;
    CheckpointWriteOptions wopts;
    wopts.model_sync = true;
    ASSERT_TRUE(SaveCheckpoint(*ref, &ckpt, wopts));
    const std::vector<double> est_at_save = ref->block(0).pass1_costs.estimate;
    ref->Run(4);
    const uint64_t want = SimulationDigest(*ref);

    HwContext twin_hw(mc);
    auto twin = MakeUniformSimulation(twin_hw, p);
    twin->Run(2);  // desynchronize; restore must overwrite everything
    CheckpointReadOptions ropts;
    ropts.restore_ledger = true;
    ropts.model_sync = true;
    const CheckpointStatus st = RestoreCheckpoint(twin.get(), ckpt, ropts);
    ASSERT_TRUE(st) << st.error;
    if (c.steal && c.fused) {
      // Only the fused pipeline feeds the cost scheduler; legacy sweeps leave
      // the feedback vectors empty on both sides, which round-trips trivially.
      EXPECT_FALSE(twin->block(0).pass1_costs.estimate.empty())
          << "kCostSteal per-tile estimates not restored";
    }
    if (c.steal) {
      EXPECT_EQ(twin->block(0).pass1_costs.estimate, est_at_save);
    }
    twin->Run(4);

    EXPECT_EQ(SimulationDigest(*twin), want);
    for (int ph = 0; ph < kNumPhases; ++ph) {
      EXPECT_DOUBLE_EQ(twin_hw.ledger().PhaseCycles(static_cast<Phase>(ph)),
                       ref_hw.ledger().PhaseCycles(static_cast<Phase>(ph)))
          << "phase " << PhaseName(static_cast<Phase>(ph));
    }
    const LedgerCounters& a = ref_hw.ledger().counters();
    const LedgerCounters& b = twin_hw.ledger().counters();
    EXPECT_EQ(b.scalar_ops, a.scalar_ops);
    EXPECT_EQ(b.vpu_ops, a.vpu_ops);
    EXPECT_EQ(b.vpu_mem, a.vpu_mem);
    EXPECT_EQ(b.gathers, a.gathers);
    EXPECT_EQ(b.scatters, a.scatters);
    EXPECT_EQ(b.mopas, a.mopas);
    EXPECT_EQ(b.l1_hits, a.l1_hits);
    EXPECT_EQ(b.l1_misses, a.l1_misses);
    EXPECT_EQ(b.l2_hits, a.l2_hits);
    EXPECT_EQ(b.l2_misses, a.l2_misses);
    EXPECT_EQ(b.tasks_stolen, a.tasks_stolen);
    EXPECT_DOUBLE_EQ(b.steal_cycles, a.steal_cycles);
  }
}

// The kCostSteal estimate wire-through is not cosmetic: a restored stealing
// run must replan the same schedule and therefore accumulate the same steal
// counters as the uninterrupted run (checked above); this test pins the
// baseline expectation that the stealing machine actually steals on an
// imbalanced workload, so the counter comparisons above are non-vacuous.
TEST(CheckpointCycleExact, StealCountersAreNonVacuous) {
  BunchedBeamParams p;
  p.nx = p.ny = p.nz = 16;
  p.ppc_x = p.ppc_y = p.ppc_z = 4;

  HwContext hw(MachineConfig::Lx2Cluster(1, 4, /*stealing=*/true));
  auto sim = MakeBunchedBeamSimulation(hw, p);
  sim->Run(3);
  EXPECT_GT(hw.ledger().counters().tasks_stolen, 0u);
}

// NUMA cycle-exact restore: on a 2-domain machine with live remote steals,
// the restored run must replan the same sticky placement — the committed
// per-tile owner vectors ride the v3 SPECIES tail — and therefore accumulate
// the same remote-line, remote-cycle, and remote-steal totals as the
// uninterrupted run, to the last cycle.
TEST(CheckpointCycleExact, NumaRestoreMatchesUninterruptedRun) {
  BunchedBeamParams p;
  p.nx = p.ny = p.nz = 16;
  p.ppc_x = p.ppc_y = p.ppc_z = 4;

  const MachineConfig mc = MachineConfig::Lx2MultiCoreNuma(4, 2);
  HwContext ref_hw(mc);
  auto ref = MakeBunchedBeamSimulation(ref_hw, p);
  ref->Run(4);
  std::vector<uint8_t> ckpt;
  CheckpointWriteOptions wopts;
  wopts.model_sync = true;
  ASSERT_TRUE(SaveCheckpoint(*ref, &ckpt, wopts));
  const std::vector<int32_t> own_at_save = ref->block(0).pass1_costs.owner;
  ref->Run(4);
  const uint64_t want = SimulationDigest(*ref);
  // Non-vacuous: this workload/machine combination must exercise the remote
  // paths, or the counter comparisons below prove nothing.
  EXPECT_GT(ref_hw.ledger().counters().tasks_stolen_remote, 0u);
  EXPECT_GT(ref_hw.ledger().counters().remote_lines, 0u);

  HwContext twin_hw(mc);
  auto twin = MakeBunchedBeamSimulation(twin_hw, p);
  twin->Run(2);  // desynchronize; restore must overwrite everything
  CheckpointReadOptions ropts;
  ropts.restore_ledger = true;
  ropts.model_sync = true;
  const CheckpointStatus st = RestoreCheckpoint(twin.get(), ckpt, ropts);
  ASSERT_TRUE(st) << st.error;
  ASSERT_FALSE(own_at_save.empty());
  EXPECT_EQ(twin->block(0).pass1_costs.owner, own_at_save)
      << "committed owner vector not restored";
  twin->Run(4);

  EXPECT_EQ(SimulationDigest(*twin), want);
  for (int ph = 0; ph < kNumPhases; ++ph) {
    EXPECT_DOUBLE_EQ(twin_hw.ledger().PhaseCycles(static_cast<Phase>(ph)),
                     ref_hw.ledger().PhaseCycles(static_cast<Phase>(ph)))
        << "phase " << PhaseName(static_cast<Phase>(ph));
  }
  const LedgerCounters& a = ref_hw.ledger().counters();
  const LedgerCounters& b = twin_hw.ledger().counters();
  EXPECT_EQ(b.l2_misses, a.l2_misses);
  EXPECT_EQ(b.tasks_stolen, a.tasks_stolen);
  EXPECT_EQ(b.tasks_stolen_remote, a.tasks_stolen_remote);
  EXPECT_EQ(b.remote_lines, a.remote_lines);
  EXPECT_DOUBLE_EQ(b.remote_cycles, a.remote_cycles);
  EXPECT_DOUBLE_EQ(b.steal_cycles, a.steal_cycles);
}

// ---- Rejection of damaged or incompatible checkpoints ------------------------

// Version 1 images lack the adaptive-trigger baselines, the kCostSteal
// estimates, and the steal counters; restoring one would silently break the
// bit-exact contract, so the version gate must reject it outright.
TEST(CheckpointRejection, RejectsVersion1Image) {
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 1;
  p.tile = 4;

  HwContext src_hw(MachineConfig::Lx2MultiCore(1));
  auto src = MakeUniformSimulation(src_hw, p);
  src->Run(1);
  std::vector<uint8_t> ckpt;
  ASSERT_TRUE(SaveCheckpoint(*src, &ckpt));

  HwContext tgt_hw(MachineConfig::Lx2MultiCore(1));
  auto tgt = MakeUniformSimulation(tgt_hw, p);
  const uint64_t before = SimulationDigest(*tgt);

  std::vector<uint8_t> old_image = ckpt;
  old_image[8] = 1;  // u32 version field, little-endian, at offset 8
  const CheckpointStatus st = RestoreCheckpoint(tgt.get(), old_image);
  EXPECT_FALSE(st.ok);
  EXPECT_NE(st.error.find("unsupported version"), std::string::npos)
      << st.error;
  EXPECT_EQ(SimulationDigest(*tgt), before) << "target mutated on reject";
}



TEST(CheckpointRejection, TruncationAndCorruptionLeaveTargetUnmutated) {
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 1;
  p.tile = 4;

  HwContext src_hw(MachineConfig::Lx2MultiCore(1));
  auto src = MakeUniformSimulation(src_hw, p);
  src->Run(2);
  std::vector<uint8_t> good;
  ASSERT_TRUE(SaveCheckpoint(*src, &good));

  HwContext tgt_hw(MachineConfig::Lx2MultiCore(1));
  auto tgt = MakeUniformSimulation(tgt_hw, p);
  tgt->Run(1);
  const uint64_t before = SimulationDigest(*tgt);

  // Truncation at several depths: inside the header, inside a section header,
  // inside a payload.
  for (size_t keep : {size_t{4}, size_t{20}, good.size() / 2, good.size() - 1}) {
    SCOPED_TRACE("truncate to " + std::to_string(keep));
    std::vector<uint8_t> bad = good;
    TruncateCheckpoint(&bad, keep);
    const CheckpointStatus st = RestoreCheckpoint(tgt.get(), bad);
    EXPECT_FALSE(st.ok);
    EXPECT_FALSE(st.error.empty());
    EXPECT_EQ(SimulationDigest(*tgt), before) << "target mutated on reject";
  }

  // Single bit flips in the section data must fail the FNV checksums.
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    SCOPED_TRACE("bit flip seed " + std::to_string(seed));
    std::vector<uint8_t> bad = good;
    FlipCheckpointBit(&bad, seed);
    const CheckpointStatus st = RestoreCheckpoint(tgt.get(), bad);
    EXPECT_FALSE(st.ok);
    EXPECT_EQ(SimulationDigest(*tgt), before) << "target mutated on reject";
  }

  // The pristine buffer still restores (the copies above never aliased it).
  EXPECT_TRUE(RestoreCheckpoint(tgt.get(), good));
}

TEST(CheckpointRejection, IncompatibleConfiguration) {
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 1;
  p.tile = 4;

  HwContext src_hw(MachineConfig::Lx2MultiCore(1));
  auto src = MakeUniformSimulation(src_hw, p);
  src->Run(1);
  std::vector<uint8_t> ckpt;
  ASSERT_TRUE(SaveCheckpoint(*src, &ckpt));

  // Different shape order.
  {
    UniformWorkloadParams q = p;
    q.order = 3;
    HwContext hw(MachineConfig::Lx2MultiCore(1));
    auto tgt = MakeUniformSimulation(hw, q);
    const uint64_t before = SimulationDigest(*tgt);
    EXPECT_FALSE(RestoreCheckpoint(tgt.get(), ckpt).ok);
    EXPECT_EQ(SimulationDigest(*tgt), before);
  }
  // Different grid.
  {
    UniformWorkloadParams q = p;
    q.nx = 16;
    HwContext hw(MachineConfig::Lx2MultiCore(1));
    auto tgt = MakeUniformSimulation(hw, q);
    EXPECT_FALSE(RestoreCheckpoint(tgt.get(), ckpt).ok);
  }
  // Different species registry.
  {
    UniformWorkloadParams q = p;
    q.species = {Species::Electron(), Species::Proton()};
    HwContext hw(MachineConfig::Lx2MultiCore(1));
    auto tgt = MakeUniformSimulation(hw, q);
    EXPECT_FALSE(RestoreCheckpoint(tgt.get(), ckpt).ok);
  }
  // Different current scheme.
  {
    UniformWorkloadParams q = p;
    q.scheme = CurrentScheme::kEsirkepov;
    HwContext hw(MachineConfig::Lx2MultiCore(1));
    auto tgt = MakeUniformSimulation(hw, q);
    EXPECT_FALSE(RestoreCheckpoint(tgt.get(), ckpt).ok);
  }
}

}  // namespace
}  // namespace mpic

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/shape/shape_function.h"

namespace mpic {
namespace {

template <int Order>
void ExpectPartitionOfUnity(double x) {
  int start;
  double w[4];
  ShapeFunction<Order>::Weights(x, &start, w);
  double sum = 0.0;
  for (int t = 0; t <= Order; ++t) {
    SCOPED_TRACE(t);
    EXPECT_GE(w[t], -1e-15) << "negative weight at x=" << x;
    sum += w[t];
  }
  EXPECT_NEAR(sum, 1.0, 1e-12) << "x=" << x;
}

// Property: weights are a partition of unity for every order, everywhere.
class ShapeProperty : public ::testing::TestWithParam<int> {};

TEST_P(ShapeProperty, PartitionOfUnityRandomSweep) {
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.Uniform(-50.0, 50.0);
    ExpectPartitionOfUnity<1>(x);
    ExpectPartitionOfUnity<2>(x);
    ExpectPartitionOfUnity<3>(x);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeProperty, ::testing::Values(1, 2, 3, 4));

TEST(Shape, Order1ExactValues) {
  int start;
  double w[4];
  ShapeFunction<1>::Weights(2.25, &start, w);
  EXPECT_EQ(start, 2);
  EXPECT_DOUBLE_EQ(w[0], 0.75);
  EXPECT_DOUBLE_EQ(w[1], 0.25);
}

TEST(Shape, Order1AtNode) {
  int start;
  double w[4];
  ShapeFunction<1>::Weights(3.0, &start, w);
  EXPECT_EQ(start, 3);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
}

TEST(Shape, Order2CenteredOnNearestNode) {
  int start;
  double w[4];
  // x = 2.4 -> nearest node 2 -> support {1, 2, 3}.
  ShapeFunction<2>::Weights(2.4, &start, w);
  EXPECT_EQ(start, 1);
  EXPECT_NEAR(w[0], 0.5 * 0.1 * 0.1, 1e-15);
  EXPECT_NEAR(w[1], 0.75 - 0.16, 1e-15);
  EXPECT_NEAR(w[2], 0.5 * 0.9 * 0.9, 1e-15);
}

TEST(Shape, Order3SymmetricAtCellCenter) {
  int start;
  double w[4];
  ShapeFunction<3>::Weights(5.5, &start, w);
  EXPECT_EQ(start, 4);
  EXPECT_NEAR(w[0], w[3], 1e-15);
  EXPECT_NEAR(w[1], w[2], 1e-15);
  EXPECT_GT(w[1], w[0]);
}

// B-spline shapes reproduce linear functions exactly: sum_t w_t * (start + t)
// equals x for order 1 and 3, and x for order 2 (all odd/even B-splines
// reproduce degree-1 polynomials).
template <int Order>
void ExpectLinearReproduction(double x) {
  int start;
  double w[4];
  ShapeFunction<Order>::Weights(x, &start, w);
  double interp = 0.0;
  for (int t = 0; t <= Order; ++t) {
    interp += w[t] * (start + t);
  }
  EXPECT_NEAR(interp, x, 1e-12) << "order=" << Order << " x=" << x;
}

TEST(Shape, LinearFieldReproduction) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.Uniform(-20.0, 20.0);
    ExpectLinearReproduction<1>(x);
    ExpectLinearReproduction<2>(x);
    ExpectLinearReproduction<3>(x);
  }
}

TEST(Shape, SupportNodesCoverPosition) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(0.0, 100.0);
    int start;
    double w[4];
    ShapeFunction<1>::Weights(x, &start, w);
    EXPECT_LE(start, x);
    EXPECT_GE(start + 1, x - 1.0);
    ShapeFunction<3>::Weights(x, &start, w);
    EXPECT_LE(start, x);
    EXPECT_GE(start + 3, x);
  }
}

TEST(Shape, RuntimeDispatchMatchesTemplates) {
  for (int order = 1; order <= 3; ++order) {
    const double x = 4.37;
    const ShapeWeights s = ComputeShape(order, x);
    EXPECT_EQ(s.support, order + 1);
    int start;
    double w[4];
    switch (order) {
      case 1:
        ShapeFunction<1>::Weights(x, &start, w);
        break;
      case 2:
        ShapeFunction<2>::Weights(x, &start, w);
        break;
      default:
        ShapeFunction<3>::Weights(x, &start, w);
        break;
    }
    EXPECT_EQ(s.start, start);
    for (int t = 0; t <= order; ++t) {
      EXPECT_DOUBLE_EQ(s.w[t], w[t]);
    }
  }
}

TEST(Shape, Support3DCounts) {
  EXPECT_EQ(Support3D(1), 8);
  EXPECT_EQ(Support3D(2), 27);
  EXPECT_EQ(Support3D(3), 64);
}

}  // namespace
}  // namespace mpic

// Resilience tests: each health sentinel must trip on the fault class it was
// built for; rollback recovery must complete with a digest bit-identical to a
// run that never faulted; degraded recovery must keep the run available when
// no checkpoint exists; and a clean run with sentinels enabled must stay
// bit-identical to one without them (detection is passive).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/simulation.h"
#include "src/core/workloads.h"
#include "src/runtime/digest.h"
#include "src/runtime/fault_injection.h"
#include "src/runtime/health.h"
#include "src/runtime/recovery.h"

namespace mpic {
namespace {

UniformWorkloadParams SmallUniform() {
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 2;
  p.tile = 4;
  p.u_th = 0.1;
  return p;
}

// ---- Passive detection ------------------------------------------------------

TEST(HealthSentinels, CleanRunIsBitIdenticalWithSentinelsOn) {
  const UniformWorkloadParams p = SmallUniform();

  HwContext off_hw(MachineConfig::Lx2MultiCore(2));
  auto off = MakeUniformSimulation(off_hw, p);
  off->Run(6);

  HwContext on_hw(MachineConfig::Lx2MultiCore(2));
  auto on = MakeUniformSimulation(on_hw, p);
  on->EnableHealth(HealthConfig{});
  on->Run(6);

  EXPECT_EQ(SimulationDigest(*on), SimulationDigest(*off));
  const HealthStepReport& rep = on->last_sim_stats().health;
  EXPECT_TRUE(rep.checked);
  EXPECT_FALSE(rep.tripped()) << rep.Summary();
  EXPECT_EQ(rep.quarantined_tiles, 0);
  EXPECT_EQ(rep.particles.status, SentinelStatus::kOk);
  EXPECT_EQ(rep.fields.status, SentinelStatus::kOk);
  EXPECT_EQ(rep.census.status, SentinelStatus::kOk);
  EXPECT_EQ(rep.energy.status, SentinelStatus::kOk);
  EXPECT_FALSE(rep.Summary().empty());
}

TEST(HealthSentinels, GaussSentinelStaysQuietOnEsirkepov) {
  UniformWorkloadParams p = SmallUniform();
  p.scheme = CurrentScheme::kEsirkepov;
  HwContext hw(MachineConfig::Lx2MultiCore(2));
  auto sim = MakeUniformSimulation(hw, p);
  HealthConfig hc;
  hc.gauss_interval = 1;
  sim->EnableHealth(hc);
  sim->Run(4);
  const HealthStepReport& rep = sim->last_sim_stats().health;
  EXPECT_EQ(rep.gauss.status, SentinelStatus::kOk) << rep.Summary();
  EXPECT_FALSE(rep.tripped());
}

// ---- One sentinel per fault class --------------------------------------------

TEST(HealthSentinels, PositionBitFlipTripsParticleGuard) {
  HwContext hw(MachineConfig::Lx2MultiCore(2));
  auto sim = MakeUniformSimulation(hw, SmallUniform());
  sim->EnableHealth(HealthConfig{});
  sim->Run(2);

  FaultPlan plan;
  plan.faults.push_back(
      {FaultKind::kParticleBitFlip, /*step=*/2, /*species=*/0, /*field=*/0,
       /*lane=*/0, /*bit=*/-1});
  FaultInjector inj(plan);
  ASSERT_EQ(inj.ApplyPreStep(sim.get()), 1);
  sim->Step();

  const HealthStepReport& rep = sim->last_sim_stats().health;
  EXPECT_TRUE(rep.particles.tripped()) << rep.Summary();
  EXPECT_GE(rep.quarantined_tiles, 1);
  // Quarantine kept the poison out of the grid: fields stay finite.
  EXPECT_FALSE(rep.fields.tripped()) << rep.Summary();
}

TEST(HealthSentinels, MomentumBitFlipTripsEnergySentinel) {
  HwContext hw(MachineConfig::Lx2MultiCore(2));
  auto sim = MakeUniformSimulation(hw, SmallUniform());
  sim->EnableHealth(HealthConfig{});
  sim->Run(2);  // arm the energy baseline

  FaultPlan plan;
  plan.faults.push_back(
      {FaultKind::kParticleBitFlip, /*step=*/2, /*species=*/0, /*field=*/0,
       /*lane=*/3, /*bit=*/-1});  // ux: finite but ~2^512 too large
  FaultInjector inj(plan);
  ASSERT_EQ(inj.ApplyPreStep(sim.get()), 1);
  sim->Step();

  const HealthStepReport& rep = sim->last_sim_stats().health;
  EXPECT_TRUE(rep.energy.tripped()) << rep.Summary();
}

TEST(HealthSentinels, FieldBitFlipTripsFieldSentinel) {
  HwContext hw(MachineConfig::Lx2MultiCore(2));
  auto sim = MakeUniformSimulation(hw, SmallUniform());
  sim->EnableHealth(HealthConfig{});
  sim->Run(2);

  FaultPlan plan;
  plan.faults.push_back({FaultKind::kFieldBitFlip, /*step=*/2, /*species=*/0,
                         /*field=*/0, /*lane=*/0, /*bit=*/-1});
  FaultInjector inj(plan);
  ASSERT_EQ(inj.ApplyPreStep(sim.get()), 1);
  sim->Step();

  const HealthStepReport& rep = sim->last_sim_stats().health;
  EXPECT_TRUE(rep.fields.tripped()) << rep.Summary();
  EXPECT_GE(rep.fields.value, HealthConfig{}.max_field_magnitude);
}

TEST(HealthSentinels, TileSoACorruptTripsParticleGuard) {
  HwContext hw(MachineConfig::Lx2MultiCore(2));
  auto sim = MakeUniformSimulation(hw, SmallUniform());
  sim->EnableHealth(HealthConfig{});
  sim->Run(1);

  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultKind::kTileSoACorrupt;
  spec.step = 1;
  spec.count = 4;
  plan.faults.push_back(spec);
  FaultInjector inj(plan);
  ASSERT_EQ(inj.ApplyPreStep(sim.get()), 1);
  sim->Step();

  const HealthStepReport& rep = sim->last_sim_stats().health;
  EXPECT_TRUE(rep.particles.tripped()) << rep.Summary();
  EXPECT_GE(rep.particles.count, 1);
  EXPECT_GE(rep.quarantined_tiles, 1);
}

TEST(HealthSentinels, DroppedMoversTripCensusSentinel) {
  UniformWorkloadParams p = SmallUniform();
  p.u_th = 0.4;  // hot plasma: tile crossings every step
  HwContext hw(MachineConfig::Lx2MultiCore(2));
  auto sim = MakeUniformSimulation(hw, p);
  sim->EnableHealth(HealthConfig{});

  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultKind::kDropStagedMovers;
  spec.step = 1;  // arm after the census baseline step
  plan.faults.push_back(spec);
  FaultInjector inj(plan);
  sim->SetFaultInjector(&inj);

  bool tripped = false;
  for (int s = 0; s < 6 && !tripped; ++s) {
    sim->Step();
    const HealthStepReport& rep = sim->last_sim_stats().health;
    if (inj.faults_applied() > 0) {
      EXPECT_TRUE(rep.census.tripped()) << rep.Summary();
      EXPECT_GE(rep.census.count, 1);
      tripped = rep.census.tripped();
    } else {
      EXPECT_FALSE(rep.tripped()) << rep.Summary();
    }
  }
  sim->SetFaultInjector(nullptr);
  EXPECT_TRUE(tripped) << "mover-drop fault never found staged movers";
}

// ---- Cycle-ledger regression sentinel ----------------------------------------

TEST(HealthSentinels, CycleSentinelOffByDefaultAndQuietWhenOn) {
  HwContext hw(MachineConfig::Lx2MultiCore(2));
  auto sim = MakeUniformSimulation(hw, SmallUniform());
  sim->EnableHealth(HealthConfig{});
  sim->Run(3);
  EXPECT_EQ(sim->last_sim_stats().health.cycles.status,
            SentinelStatus::kDisabled);

  HwContext hw2(MachineConfig::Lx2MultiCore(2));
  auto sim2 = MakeUniformSimulation(hw2, SmallUniform());
  HealthConfig hc;
  hc.check_cycles = true;
  sim2->EnableHealth(hc);
  sim2->Run(8);
  const HealthStepReport& rep = sim2->last_sim_stats().health;
  EXPECT_EQ(rep.cycles.status, SentinelStatus::kOk) << rep.Summary();
  EXPECT_FALSE(rep.tripped());
  // Armed: the report carries the rolling baseline and a near-1 ratio.
  EXPECT_GT(rep.cycles.count, 0);
  EXPECT_GT(rep.cycles.value, 0.5);
  EXPECT_LT(rep.cycles.value, 2.0);
}

TEST(HealthSentinels, InjectedCycleSpikeTripsCycleSentinel) {
  HwContext hw(MachineConfig::Lx2MultiCore(2));
  auto sim = MakeUniformSimulation(hw, SmallUniform());
  HealthConfig hc;
  hc.check_cycles = true;
  hc.cycle_warmup_steps = 2;
  sim->EnableHealth(hc);
  sim->Run(5);  // warm the baseline
  const int64_t baseline = sim->last_sim_stats().health.cycles.count;
  ASSERT_GT(baseline, 0);
  EXPECT_FALSE(sim->last_sim_stats().health.tripped());

  // A performance fault: this step costs 10x the baseline in modeled cycles
  // (physics untouched — only the ledger sees it, which is exactly the fault
  // class the physics sentinels cannot catch).
  sim->hw().ChargeCycles(10.0 * static_cast<double>(baseline));
  sim->Step();
  const HealthStepReport& spiked = sim->last_sim_stats().health;
  EXPECT_TRUE(spiked.cycles.tripped()) << spiked.Summary();
  EXPECT_GT(spiked.cycles.value, HealthConfig{}.max_cycle_step_factor);

  // The tripped step must not feed the baseline: a normal step right after
  // reads clean again against the unpoisoned baseline.
  sim->Step();
  const HealthStepReport& after = sim->last_sim_stats().health;
  EXPECT_FALSE(after.cycles.tripped()) << after.Summary();

  // A sustained fault keeps tripping instead of ratcheting the baseline up.
  for (int s = 0; s < 3; ++s) {
    sim->hw().ChargeCycles(10.0 * static_cast<double>(baseline));
    sim->Step();
    EXPECT_TRUE(sim->last_sim_stats().health.cycles.tripped())
        << sim->last_sim_stats().health.Summary();
  }

  // Rebaseline discards the cycle history and re-warms: the next steps run
  // unarmed (no trip) while a fresh baseline accumulates.
  sim->health_monitor()->Rebaseline(*sim);
  sim->Run(4);
  EXPECT_FALSE(sim->last_sim_stats().health.cycles.tripped())
      << sim->last_sim_stats().health.Summary();
}

// ---- Recovery ----------------------------------------------------------------

TEST(Recovery, RollbackCompletesBitIdenticalToCleanRun) {
  const UniformWorkloadParams p = SmallUniform();
  constexpr int kSteps = 12;

  HwContext clean_hw(MachineConfig::Lx2MultiCore(2));
  auto clean = MakeUniformSimulation(clean_hw, p);
  clean->EnableHealth(HealthConfig{});
  clean->Run(kSteps);
  const uint64_t want = SimulationDigest(*clean);

  HwContext hw(MachineConfig::Lx2MultiCore(2));
  auto sim = MakeUniformSimulation(hw, p);
  sim->EnableHealth(HealthConfig{});
  FaultPlan plan;
  plan.faults.push_back({FaultKind::kFieldBitFlip, /*step=*/7, /*species=*/0,
                         /*field=*/0, /*lane=*/0, /*bit=*/-1});
  FaultInjector inj(plan);
  RecoveryConfig rc;
  rc.checkpoint_interval = 5;
  ResilientRunner runner(sim.get(), rc);
  runner.set_injector(&inj);

  ASSERT_TRUE(runner.Run(kSteps));
  EXPECT_EQ(sim->step_count(), kSteps);
  EXPECT_EQ(runner.stats().rollbacks, 1);
  EXPECT_EQ(runner.stats().degraded_recoveries, 0);
  ASSERT_EQ(runner.stats().events.size(), 1u);
  EXPECT_EQ(runner.stats().events[0].trip_step, 7);
  EXPECT_EQ(runner.stats().events[0].restored_step, 5);
  EXPECT_EQ(runner.stats().events[0].steps_lost, 3);
  EXPECT_EQ(runner.stats().steps_replayed, 3);

  EXPECT_EQ(SimulationDigest(*sim), want)
      << "recovered run diverged from the clean timeline";
}

TEST(Recovery, MoverDropRollbackCompletesBitIdentical) {
  UniformWorkloadParams p = SmallUniform();
  p.u_th = 0.4;
  constexpr int kSteps = 10;

  HwContext clean_hw(MachineConfig::Lx2MultiCore(2));
  auto clean = MakeUniformSimulation(clean_hw, p);
  clean->EnableHealth(HealthConfig{});
  clean->Run(kSteps);
  const uint64_t want = SimulationDigest(*clean);

  HwContext hw(MachineConfig::Lx2MultiCore(2));
  auto sim = MakeUniformSimulation(hw, p);
  sim->EnableHealth(HealthConfig{});
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultKind::kDropStagedMovers;
  spec.step = 3;
  plan.faults.push_back(spec);
  FaultInjector inj(plan);
  RecoveryConfig rc;
  rc.checkpoint_interval = 2;
  ResilientRunner runner(sim.get(), rc);
  runner.set_injector(&inj);

  ASSERT_TRUE(runner.Run(kSteps));
  EXPECT_EQ(sim->step_count(), kSteps);
  EXPECT_EQ(runner.stats().rollbacks, 1);
  EXPECT_EQ(SimulationDigest(*sim), want);
}

TEST(Recovery, DegradedModeKeepsRunAvailableWithoutCheckpoints) {
  HwContext hw(MachineConfig::Lx2MultiCore(2));
  auto sim = MakeUniformSimulation(hw, SmallUniform());
  sim->EnableHealth(HealthConfig{});

  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultKind::kTileSoACorrupt;
  spec.step = 3;
  spec.count = 4;
  plan.faults.push_back(spec);
  FaultInjector inj(plan);

  RecoveryConfig rc;
  rc.checkpoint_interval = 0;  // no checkpoints: degraded is the only option
  ResilientRunner runner(sim.get(), rc);
  runner.set_injector(&inj);

  ASSERT_TRUE(runner.Run(8));
  EXPECT_EQ(sim->step_count(), 8);
  EXPECT_EQ(runner.stats().rollbacks, 0);
  EXPECT_EQ(runner.stats().degraded_recoveries, 1);
  // The corrupted macro-particles were scrubbed out, and the post-recovery
  // steps run clean.
  const HealthStepReport& rep = sim->last_sim_stats().health;
  EXPECT_FALSE(rep.tripped()) << rep.Summary();
}

TEST(Recovery, UnrecoverableWhenDegradedDisallowed) {
  HwContext hw(MachineConfig::Lx2MultiCore(2));
  auto sim = MakeUniformSimulation(hw, SmallUniform());
  sim->EnableHealth(HealthConfig{});

  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultKind::kTileSoACorrupt;
  spec.step = 2;
  plan.faults.push_back(spec);
  FaultInjector inj(plan);

  RecoveryConfig rc;
  rc.checkpoint_interval = 0;
  rc.allow_degraded = false;
  ResilientRunner runner(sim.get(), rc);
  runner.set_injector(&inj);

  EXPECT_FALSE(runner.Run(8));
  EXPECT_LT(sim->step_count(), 8);
}

TEST(Recovery, ScrubRemovesPoisonAndRebuildsSortState) {
  HwContext hw(MachineConfig::Lx2MultiCore(2));
  auto sim = MakeUniformSimulation(hw, SmallUniform());
  sim->EnableHealth(HealthConfig{});
  sim->Run(2);
  const int64_t live_before = sim->tiles().TotalLive();

  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultKind::kTileSoACorrupt;
  spec.step = 2;
  spec.count = 3;
  plan.faults.push_back(spec);
  FaultInjector inj(plan);
  ASSERT_EQ(inj.ApplyPreStep(sim.get()), 1);

  const int64_t repaired = ScrubSimulation(sim.get());
  EXPECT_GE(repaired, 3);
  EXPECT_EQ(sim->tiles().TotalLive(), live_before - 3);
  sim->health_monitor()->Rebaseline(*sim);
  // The scrubbed simulation steps cleanly.
  sim->Run(3);
  EXPECT_FALSE(sim->last_sim_stats().health.tripped())
      << sim->last_sim_stats().health.Summary();
}

}  // namespace
}  // namespace mpic

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/deposit/esirkepov.h"
#include "src/particles/species.h"

namespace mpic {
namespace {

GridGeometry MakeGeom(int n) {
  GridGeometry g;
  g.nx = g.ny = g.nz = n;
  g.dx = g.dy = g.dz = 1.0e-6;
  return g;
}

struct MovedWorld {
  MovedWorld(int n, int count, double max_cell_step, uint64_t seed)
      : geom(MakeGeom(n)), tile(0, 0, 0, n, n, n) {
    Rng rng(seed);
    for (int i = 0; i < count; ++i) {
      Particle p;
      // Keep two cells away from the boundary so no support needs wrapping.
      p.x = rng.Uniform(2.0, n - 2.0) * geom.dx;
      p.y = rng.Uniform(2.0, n - 2.0) * geom.dy;
      p.z = rng.Uniform(2.0, n - 2.0) * geom.dz;
      p.w = rng.Uniform(0.5, 2.0) * 1e8;
      tile.AddParticle(p);
    }
    tile.BuildGpma(geom, GpmaConfig{});
    x_old = tile.soa().x;
    y_old = tile.soa().y;
    z_old = tile.soa().z;
    // Displace (the "push") by at most max_cell_step cells per axis.
    for (size_t i = 0; i < tile.soa().size(); ++i) {
      tile.soa().x[i] += rng.Uniform(-1.0, 1.0) * max_cell_step * geom.dx;
      tile.soa().y[i] += rng.Uniform(-1.0, 1.0) * max_cell_step * geom.dy;
      tile.soa().z[i] += rng.Uniform(-1.0, 1.0) * max_cell_step * geom.dz;
    }
  }

  DepositParams Params(double dt) const {
    DepositParams dp;
    dp.geom = geom;
    dp.charge = kElectronCharge;
    dp.dt = dt;
    return dp;
  }

  // Loads the saved pre-displacement positions into the SoA old-position
  // lanes, the form the staged engine path consumes.
  void FillOldLanes() {
    tile.soa().xo = x_old;
    tile.soa().yo = y_old;
    tile.soa().zo = z_old;
  }

  GridGeometry geom;
  ParticleTile tile;
  std::vector<double> x_old, y_old, z_old;
};

// Runs the staged tile path (stage -> outer-product kernel -> reduce) into a
// fresh FieldSet.
template <int Order>
void RunStagedPath(HwContext& hw, MovedWorld& world, const DepositParams& dp,
                   bool vpu, bool sorted, FieldSet& fields) {
  world.FillOldLanes();
  EsirkepovScratch scratch;
  TileCurrent tile_j;
  tile_j.Resize(world.tile, Order);
  StageEsirkepovTile<Order>(hw, world.tile, dp, vpu, scratch);
  DepositEsirkepovTile<Order>(hw, world.tile, dp, sorted, scratch, tile_j);
  ReduceEsirkepovToGrid(hw, tile_j, fields);
}

// The load-bearing invariant: (rho_new - rho_old)/dt + div J == 0 exactly
// (to rounding) at every node, for every order.
template <int Order>
void ExpectContinuity(double max_cell_step, uint64_t seed, bool staged) {
  MovedWorld world(10, 200, max_cell_step, seed);
  const double dt = 1.0e-15;

  HwContext hw;
  FieldSet fields(world.geom, 2);
  const DepositParams dp = world.Params(dt);
  if (staged) {
    RunStagedPath<Order>(hw, world, dp, /*vpu=*/false, /*sorted=*/true, fields);
  } else {
    DepositEsirkepov<Order>(hw, world.tile, world.x_old, world.y_old, world.z_old,
                            dp, fields);
  }

  FieldArray rho_new(world.geom.nx, world.geom.ny, world.geom.nz, 2);
  DepositCharge<Order>(hw, world.tile, dp, rho_new);
  // Rewind positions for rho_old.
  ParticleTile old_tile(0, 0, 0, world.geom.nx, world.geom.ny, world.geom.nz);
  for (size_t i = 0; i < world.tile.soa().size(); ++i) {
    Particle p = world.tile.soa().Get(static_cast<int32_t>(i));
    p.x = world.x_old[i];
    p.y = world.y_old[i];
    p.z = world.z_old[i];
    old_tile.AddParticle(p);
  }
  FieldArray rho_old(world.geom.nx, world.geom.ny, world.geom.nz, 2);
  DepositCharge<Order>(hw, old_tile, dp, rho_old);

  const GridGeometry& g = world.geom;
  double max_violation = 0.0;
  double rho_scale = 0.0;
  for (int k = 1; k < g.nz - 1; ++k) {
    for (int j = 1; j < g.ny - 1; ++j) {
      for (int i = 1; i < g.nx - 1; ++i) {
        const double drho_dt = (rho_new.At(i, j, k) - rho_old.At(i, j, k)) / dt;
        const double div_j =
            (fields.jx.At(i, j, k) - fields.jx.At(i - 1, j, k)) / g.dx +
            (fields.jy.At(i, j, k) - fields.jy.At(i, j - 1, k)) / g.dy +
            (fields.jz.At(i, j, k) - fields.jz.At(i, j, k - 1)) / g.dz;
        max_violation = std::max(max_violation, std::fabs(drho_dt + div_j));
        rho_scale = std::max(rho_scale, std::fabs(drho_dt));
      }
    }
  }
  ASSERT_GT(rho_scale, 0.0);
  EXPECT_LT(max_violation / rho_scale, 1e-9)
      << "order " << Order << " step " << max_cell_step << (staged ? " staged" : "");
}

class Continuity : public ::testing::TestWithParam<double> {};

TEST_P(Continuity, Order1) { ExpectContinuity<1>(GetParam(), 11, false); }
TEST_P(Continuity, Order2) { ExpectContinuity<2>(GetParam(), 12, false); }
TEST_P(Continuity, Order3) { ExpectContinuity<3>(GetParam(), 13, false); }
TEST_P(Continuity, StagedOrder1) { ExpectContinuity<1>(GetParam(), 11, true); }
TEST_P(Continuity, StagedOrder2) { ExpectContinuity<2>(GetParam(), 12, true); }
TEST_P(Continuity, StagedOrder3) { ExpectContinuity<3>(GetParam(), 13, true); }

INSTANTIATE_TEST_SUITE_P(StepSizes, Continuity, ::testing::Values(0.05, 0.3, 0.9));

// The staged outer-product path must reproduce the scalar reference kernel on
// every order, for both staging cost profiles and both iteration orders. The
// transverse factors are algebraically identical but associate differently
// (midpoint/difference outer products vs. the four-term mix), so the match is
// to rounding, not bitwise.
template <int Order>
void ExpectStagedMatchesReference(bool vpu, bool sorted) {
  MovedWorld world(10, 200, 0.9, 21 + Order);
  const double dt = 1.0e-15;
  const DepositParams dp = world.Params(dt);
  HwContext hw;
  FieldSet ref(world.geom, 2);
  DepositEsirkepov<Order>(hw, world.tile, world.x_old, world.y_old, world.z_old,
                          dp, ref);
  FieldSet staged(world.geom, 2);
  RunStagedPath<Order>(hw, world, dp, vpu, sorted, staged);

  double j_scale = 0.0;
  for (const FieldArray* f : {&ref.jx, &ref.jy, &ref.jz}) {
    for (double v : f->vec()) {
      j_scale = std::max(j_scale, std::fabs(v));
    }
  }
  ASSERT_GT(j_scale, 0.0);
  const FieldArray* refs[3] = {&ref.jx, &ref.jy, &ref.jz};
  const FieldArray* got[3] = {&staged.jx, &staged.jy, &staged.jz};
  for (int comp = 0; comp < 3; ++comp) {
    for (size_t i = 0; i < refs[comp]->vec().size(); ++i) {
      ASSERT_NEAR(got[comp]->vec()[i], refs[comp]->vec()[i], j_scale * 1e-12)
          << "component " << comp << " index " << i;
    }
  }
}

TEST(EsirkepovStaged, MatchesReferenceOrder1) {
  ExpectStagedMatchesReference<1>(/*vpu=*/false, /*sorted=*/false);
}
TEST(EsirkepovStaged, MatchesReferenceOrder2) {
  ExpectStagedMatchesReference<2>(/*vpu=*/true, /*sorted=*/false);
}
TEST(EsirkepovStaged, MatchesReferenceOrder3) {
  ExpectStagedMatchesReference<3>(/*vpu=*/true, /*sorted=*/true);
}

TEST(EsirkepovStaged, VpuAndScalarStagingBitIdentical) {
  // The two staging cost profiles must produce identical values (they differ
  // only in the modeled charge).
  MovedWorld world(8, 120, 0.7, 99);
  const DepositParams dp = world.Params(1e-15);
  HwContext hw;
  FieldSet a(world.geom, 2);
  RunStagedPath<1>(hw, world, dp, /*vpu=*/false, /*sorted=*/false, a);
  FieldSet b(world.geom, 2);
  RunStagedPath<1>(hw, world, dp, /*vpu=*/true, /*sorted=*/false, b);
  for (size_t i = 0; i < a.jx.vec().size(); ++i) {
    ASSERT_EQ(a.jx.vec()[i], b.jx.vec()[i]);
    ASSERT_EQ(a.jy.vec()[i], b.jy.vec()[i]);
    ASSERT_EQ(a.jz.vec()[i], b.jz.vec()[i]);
  }
}

TEST(EsirkepovStaged, ReduceZeroesTheScratch) {
  MovedWorld world(8, 50, 0.5, 7);
  const DepositParams dp = world.Params(1e-15);
  HwContext hw;
  FieldSet fields(world.geom, 2);
  world.FillOldLanes();
  EsirkepovScratch scratch;
  TileCurrent tile_j;
  tile_j.Resize(world.tile, 1);
  StageEsirkepovTile<1>(hw, world.tile, dp, false, scratch);
  DepositEsirkepovTile<1>(hw, world.tile, dp, false, scratch, tile_j);
  ReduceEsirkepovToGrid(hw, tile_j, fields);
  for (const std::vector<double>* v : {&tile_j.jx(), &tile_j.jy(), &tile_j.jz()}) {
    for (double x : *v) {
      ASSERT_EQ(x, 0.0);
    }
  }
}

TEST(Esirkepov, StationaryParticleDepositsNothing) {
  MovedWorld world(8, 50, 0.0, 5);
  HwContext hw;
  FieldSet fields(world.geom, 2);
  DepositEsirkepov<1>(hw, world.tile, world.x_old, world.y_old, world.z_old,
                      world.Params(1e-15), fields);
  for (double v : fields.jx.vec()) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(Esirkepov, PureXMotionProducesOnlyJx) {
  GridGeometry g = MakeGeom(8);
  ParticleTile tile(0, 0, 0, 8, 8, 8);
  Particle p;
  p.x = 3.25 * g.dx;
  p.y = 3.5 * g.dy;
  p.z = 3.5 * g.dz;
  p.w = 1e8;
  tile.AddParticle(p);
  const std::vector<double> x_old = {p.x};
  const std::vector<double> y_old = {p.y};
  const std::vector<double> z_old = {p.z};
  tile.soa().x[0] += 0.4 * g.dx;
  HwContext hw;
  FieldSet fields(g, 2);
  DepositParams dp;
  dp.geom = g;
  dp.charge = kElectronCharge;
  dp.dt = 1e-15;
  DepositEsirkepov<1>(hw, tile, x_old, y_old, z_old, dp, fields);
  double jy_max = 0.0;
  double jx_max = 0.0;
  for (double v : fields.jy.vec()) {
    jy_max = std::max(jy_max, std::fabs(v));
  }
  for (double v : fields.jx.vec()) {
    jx_max = std::max(jx_max, std::fabs(v));
  }
  EXPECT_GT(jx_max, 0.0);
  EXPECT_DOUBLE_EQ(jy_max, 0.0);
}

TEST(Esirkepov, TotalJxMatchesChargeFlux) {
  // Integrated Jx * dV = q * w * dx_moved / dt (the particle's current moment).
  GridGeometry g = MakeGeom(8);
  ParticleTile tile(0, 0, 0, 8, 8, 8);
  Particle p;
  p.x = 3.3 * g.dx;
  p.y = 3.7 * g.dy;
  p.z = 4.1 * g.dz;
  p.w = 2e8;
  tile.AddParticle(p);
  const std::vector<double> x_old = {p.x};
  const std::vector<double> y_old = {p.y};
  const std::vector<double> z_old = {p.z};
  const double dx_moved = 0.35 * g.dx;
  tile.soa().x[0] += dx_moved;
  const double dt = 2e-15;
  HwContext hw;
  FieldSet fields(g, 2);
  DepositParams dp;
  dp.geom = g;
  dp.charge = kElectronCharge;
  dp.dt = dt;
  DepositEsirkepov<1>(hw, tile, x_old, y_old, z_old, dp, fields);
  double total = 0.0;
  for (int k = 0; k < g.nz; ++k) {
    for (int j = 0; j < g.ny; ++j) {
      for (int i = 0; i < g.nx; ++i) {
        total += fields.jx.At(i, j, k);
      }
    }
  }
  total *= g.dx * g.dy * g.dz;  // integrate the density
  const double expected = kElectronCharge * 2e8 * dx_moved / dt;
  EXPECT_NEAR(total, expected, std::fabs(expected) * 1e-12);
}

}  // namespace
}  // namespace mpic

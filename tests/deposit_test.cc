#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/deposit/deposit_baseline.h"
#include "src/deposit/deposit_mpu.h"
#include "src/deposit/deposit_rhocell.h"
#include "src/deposit/deposit_scalar.h"
#include "src/deposit/deposit_staging.h"
#include "src/grid/field_set.h"
#include "src/particles/species.h"

namespace mpic {
namespace {

constexpr double kTol = 1e-12;

struct TestWorld {
  TestWorld(int n_cells, int ppc, uint64_t seed, double u_scale = 0.05)
      : tile(0, 0, 0, n_cells, n_cells, n_cells),
        fields(MakeGeom(n_cells), 2) {
    geom = fields.geom;
    Rng rng(seed);
    for (int i = 0; i < n_cells * n_cells * n_cells * ppc; ++i) {
      Particle p;
      p.x = rng.Uniform(0.0, geom.LengthX());
      p.y = rng.Uniform(0.0, geom.LengthY());
      p.z = rng.Uniform(0.0, geom.LengthZ());
      p.ux = rng.NextGaussian() * u_scale * kSpeedOfLight;
      p.uy = rng.NextGaussian() * u_scale * kSpeedOfLight;
      p.uz = rng.NextGaussian() * u_scale * kSpeedOfLight;
      p.w = rng.Uniform(0.5, 2.0) * 1e10;
      tile.AddParticle(p);
    }
    tile.BuildGpma(geom, GpmaConfig{});
    params.geom = geom;
    params.charge = kElectronCharge;
  }

  static GridGeometry MakeGeom(int n_cells) {
    GridGeometry g;
    g.nx = g.ny = g.nz = n_cells;
    g.dx = g.dy = g.dz = 2.5e-7;
    return g;
  }

  GridGeometry geom;
  ParticleTile tile;
  FieldSet fields;
  DepositParams params;
};

// Runs the scalar reference into a fresh field set and returns (jx, jy, jz).
template <int Order>
std::tuple<std::vector<double>, std::vector<double>, std::vector<double>>
ReferenceJ(TestWorld& world) {
  HwContext hw;
  FieldSet ref(world.geom, 2);
  DepositScalarTile<Order>(hw, world.tile, world.params, ref);
  return {ref.jx.vec(), ref.jy.vec(), ref.jz.vec()};
}

template <int Order>
void ExpectMatchesReference(TestWorld& world, const FieldSet& got) {
  const auto [jx, jy, jz] = ReferenceJ<Order>(world);
  EXPECT_LT(RelMaxError(jx, got.jx.vec()), kTol);
  EXPECT_LT(RelMaxError(jy, got.jy.vec()), kTol);
  EXPECT_LT(RelMaxError(jz, got.jz.vec()), kTol);
}

// ---------------------------------------------------------------------------
// Staging
// ---------------------------------------------------------------------------

template <int Order>
void ExpectStagingAgrees() {
  TestWorld world(3, 7, 1234);
  HwContext hw;
  DepositScratch scalar_scratch, vpu_scratch;
  StageTileScalar<Order>(hw, world.tile, world.params, scalar_scratch);
  StageTileVpu<Order>(hw, world.tile, world.params, vpu_scratch);
  for (size_t i = 0; i < world.tile.soa().size(); ++i) {
    EXPECT_EQ(scalar_scratch.ix[i], vpu_scratch.ix[i]);
    EXPECT_EQ(scalar_scratch.iy[i], vpu_scratch.iy[i]);
    EXPECT_EQ(scalar_scratch.iz[i], vpu_scratch.iz[i]);
    for (int t = 0; t <= Order; ++t) {
      EXPECT_DOUBLE_EQ(scalar_scratch.sx[t][i], vpu_scratch.sx[t][i]);
      EXPECT_DOUBLE_EQ(scalar_scratch.sy[t][i], vpu_scratch.sy[t][i]);
      EXPECT_DOUBLE_EQ(scalar_scratch.sz_[t][i], vpu_scratch.sz_[t][i]);
    }
    EXPECT_DOUBLE_EQ(scalar_scratch.wqx[i], vpu_scratch.wqx[i]);
    EXPECT_DOUBLE_EQ(scalar_scratch.wqy[i], vpu_scratch.wqy[i]);
    EXPECT_DOUBLE_EQ(scalar_scratch.wqz[i], vpu_scratch.wqz[i]);
  }
}

TEST(Staging, ScalarAndVpuAgreeOrder1) { ExpectStagingAgrees<1>(); }
TEST(Staging, ScalarAndVpuAgreeOrder2) { ExpectStagingAgrees<2>(); }
TEST(Staging, ScalarAndVpuAgreeOrder3) { ExpectStagingAgrees<3>(); }

TEST(Staging, ShapeWeightsSumToOne) {
  TestWorld world(3, 5, 77);
  HwContext hw;
  DepositScratch scratch;
  StageTileVpu<3>(hw, world.tile, world.params, scratch);
  for (size_t i = 0; i < world.tile.soa().size(); ++i) {
    double sx = 0.0, sy = 0.0, sz = 0.0;
    for (int t = 0; t < 4; ++t) {
      sx += scratch.sx[t][i];
      sy += scratch.sy[t][i];
      sz += scratch.sz_[t][i];
    }
    EXPECT_NEAR(sx, 1.0, 1e-12);
    EXPECT_NEAR(sy, 1.0, 1e-12);
    EXPECT_NEAR(sz, 1.0, 1e-12);
  }
}

TEST(Staging, PhasesChargedToPreproc) {
  TestWorld world(3, 5, 78);
  HwContext hw;
  DepositScratch scratch;
  StageTileVpu<1>(hw, world.tile, world.params, scratch);
  EXPECT_GT(hw.ledger().PhaseCycles(Phase::kPreproc), 0.0);
  EXPECT_DOUBLE_EQ(hw.ledger().PhaseCycles(Phase::kCompute), 0.0);
}

// ---------------------------------------------------------------------------
// Charge-current consistency: the deposited J integrates to sum(q v w)/V_cell.
// ---------------------------------------------------------------------------

template <int Order>
void ExpectCurrentIntegral() {
  TestWorld world(4, 4, 555);
  HwContext hw;
  DepositScalarTile<Order>(hw, world.tile, world.params, world.fields);
  world.fields.jx.FoldGuardsPeriodic();
  double expected = 0.0;
  const ParticleSoA& soa = world.tile.soa();
  const double inv_c2 = 1.0 / (kSpeedOfLight * kSpeedOfLight);
  for (size_t i = 0; i < soa.size(); ++i) {
    const double u2 =
        soa.ux[i] * soa.ux[i] + soa.uy[i] * soa.uy[i] + soa.uz[i] * soa.uz[i];
    const double gamma = std::sqrt(1.0 + u2 * inv_c2);
    expected += kElectronCharge * soa.w[i] * soa.ux[i] / gamma;
  }
  expected /= world.geom.dx * world.geom.dy * world.geom.dz;
  // Shape weights sum to 1 per particle, so the grid total equals the particle
  // total exactly (up to rounding).
  const double got = world.fields.jx.InteriorSumUnique();
  EXPECT_NEAR(got, expected, std::fabs(expected) * 1e-10 + 1e-20);
}

TEST(DepositScalar, CurrentIntegralOrder1) { ExpectCurrentIntegral<1>(); }
TEST(DepositScalar, CurrentIntegralOrder2) { ExpectCurrentIntegral<2>(); }
TEST(DepositScalar, CurrentIntegralOrder3) { ExpectCurrentIntegral<3>(); }

TEST(DepositScalar, SingleParticleCicWeights) {
  // One particle at a known sub-cell position: the 8 nodal currents must be
  // the tensor-product CIC weights.
  GridGeometry g = TestWorld::MakeGeom(4);
  ParticleTile tile(0, 0, 0, 4, 4, 4);
  Particle p;
  p.x = 1.25 * g.dx;
  p.y = 2.5 * g.dy;
  p.z = 0.75 * g.dz;
  p.ux = 0.1 * kSpeedOfLight;
  p.w = 1e10;
  tile.AddParticle(p);
  tile.BuildGpma(g, GpmaConfig{});
  DepositParams params;
  params.geom = g;
  params.charge = kElectronCharge;
  FieldSet fields(g, 2);
  HwContext hw;
  DepositScalarTile<1>(hw, tile, params, fields);
  const double gamma = std::sqrt(1.0 + 0.01);
  const double wq = kElectronCharge * 1e10 * (0.1 * kSpeedOfLight / gamma) /
                    (g.dx * g.dy * g.dz);
  EXPECT_NEAR(fields.jx.At(1, 2, 0), wq * 0.75 * 0.5 * 0.25, std::fabs(wq) * 1e-14);
  EXPECT_NEAR(fields.jx.At(2, 2, 1), wq * 0.25 * 0.5 * 0.75, std::fabs(wq) * 1e-14);
  EXPECT_NEAR(fields.jx.At(2, 3, 1), wq * 0.25 * 0.5 * 0.75, std::fabs(wq) * 1e-14);
}

// ---------------------------------------------------------------------------
// Variant equivalence: every kernel reproduces the scalar reference.
// ---------------------------------------------------------------------------

class BaselineEquivalence
    : public ::testing::TestWithParam<std::tuple<int, bool, int>> {};

TEST_P(BaselineEquivalence, MatchesScalarReference) {
  const auto [order, sorted, ppc] = GetParam();
  TestWorld world(4, ppc, 999 + ppc);
  HwContext hw;
  DepositScratch scratch;
  switch (order) {
    case 1: {
      StageTileScalar<1>(hw, world.tile, world.params, scratch);
      DepositBaselineTile<1>(hw, world.tile, world.params, scratch, world.fields,
                             sorted);
      ExpectMatchesReference<1>(world, world.fields);
      break;
    }
    case 2: {
      StageTileScalar<2>(hw, world.tile, world.params, scratch);
      DepositBaselineTile<2>(hw, world.tile, world.params, scratch, world.fields,
                             sorted);
      ExpectMatchesReference<2>(world, world.fields);
      break;
    }
    default: {
      StageTileScalar<3>(hw, world.tile, world.params, scratch);
      DepositBaselineTile<3>(hw, world.tile, world.params, scratch, world.fields,
                             sorted);
      ExpectMatchesReference<3>(world, world.fields);
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BaselineEquivalence,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Bool(),
                                            ::testing::Values(1, 4, 9)));

template <int Order>
void RunRhocellVariant(bool hand_tuned, bool sorted, int ppc, uint64_t seed) {
  TestWorld world(4, ppc, seed);
  HwContext hw;
  DepositScratch scratch;
  RhocellBuffer rhocell(world.tile.num_cells(), Order);
  if (hand_tuned) {
    StageTileVpu<Order>(hw, world.tile, world.params, scratch);
    DepositRhocellVpu<Order>(hw, world.tile, world.params, scratch, rhocell, sorted);
  } else {
    StageTileScalar<Order>(hw, world.tile, world.params, scratch);
    DepositRhocellAutoVec<Order>(hw, world.tile, world.params, scratch, rhocell,
                                 sorted);
  }
  ReduceRhocellToGrid<Order>(hw, world.tile, rhocell, world.fields);
  ExpectMatchesReference<Order>(world, world.fields);
}

class RhocellEquivalence
    : public ::testing::TestWithParam<std::tuple<int, bool, bool, int>> {};

TEST_P(RhocellEquivalence, MatchesScalarReference) {
  const auto [order, hand_tuned, sorted, ppc] = GetParam();
  if (order == 1) {
    RunRhocellVariant<1>(hand_tuned, sorted, ppc, 31337);
  } else {
    RunRhocellVariant<3>(hand_tuned, sorted, ppc, 31337);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RhocellEquivalence,
                         ::testing::Combine(::testing::Values(1, 3),
                                            ::testing::Bool(), ::testing::Bool(),
                                            ::testing::Values(1, 4, 9)));

template <int Order>
void RunMpuVariant(MpuScheduling scheduling, int ppc, uint64_t seed) {
  TestWorld world(4, ppc, seed);
  HwContext hw;
  DepositScratch scratch;
  RhocellBuffer rhocell(world.tile.num_cells(), Order);
  StageTileVpu<Order>(hw, world.tile, world.params, scratch);
  DepositMpu<Order>(hw, world.tile, world.params, scratch, rhocell, scheduling);
  ReduceRhocellToGrid<Order>(hw, world.tile, rhocell, world.fields);
  EXPECT_GT(hw.ledger().counters().mopas, 0u);
  ExpectMatchesReference<Order>(world, world.fields);
}

class MpuEquivalence : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MpuEquivalence, MatchesScalarReference) {
  const auto [order, sched, ppc] = GetParam();
  const MpuScheduling scheduling =
      sched == 0 ? MpuScheduling::kCellResident : MpuScheduling::kPairwise;
  if (order == 1) {
    RunMpuVariant<1>(scheduling, ppc, 4242);
  } else {
    RunMpuVariant<3>(scheduling, ppc, 4242);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MpuEquivalence,
                         ::testing::Combine(::testing::Values(1, 3),
                                            ::testing::Values(0, 1),
                                            ::testing::Values(1, 2, 5, 16)));

TEST(DepositMpu, CicTileUtilizationIs25Percent) {
  // 2 particles x 8 nodes = 16 useful FMAs out of the 64 an 8x8 MOPA performs.
  TestWorld world(2, 8, 808);
  HwContext hw;
  DepositScratch scratch;
  RhocellBuffer rhocell(world.tile.num_cells(), 1);
  StageTileVpu<1>(hw, world.tile, world.params, scratch);
  DepositMpu<1>(hw, world.tile, world.params, scratch, rhocell,
                MpuScheduling::kCellResident);
  const auto n = world.tile.num_live();
  const auto pairs = hw.ledger().counters().mopas / 3;  // 3 components
  // ceil(n_cell_particles/2) pairs summed over cells; at least n/2.
  EXPECT_GE(static_cast<int64_t>(pairs), n / 2);
  const double useful = static_cast<double>(n) * 8.0;
  const double slots = static_cast<double>(pairs) * 64.0;
  EXPECT_NEAR(useful / slots, 0.25, 0.07);
}

TEST(DepositMpu, QspTileUtilizationIs50Percent) {
  TestWorld world(2, 8, 809);
  HwContext hw;
  DepositScratch scratch;
  RhocellBuffer rhocell(world.tile.num_cells(), 3);
  StageTileVpu<3>(hw, world.tile, world.params, scratch);
  DepositMpu<3>(hw, world.tile, world.params, scratch, rhocell,
                MpuScheduling::kCellResident);
  const auto n = world.tile.num_live();
  const auto mopas = hw.ledger().counters().mopas;
  // Per pair per component: 4 MOPAs; each pair contributes 2 x 64 useful FMAs
  // per component.
  const double useful = static_cast<double>(n) * 64.0 * 3.0;
  const double slots = static_cast<double>(mopas) * 64.0;
  EXPECT_NEAR(useful / slots, 0.5, 0.13);
}

TEST(Rhocell, BufferLayout) {
  RhocellBuffer rc(10, 3);
  EXPECT_EQ(rc.stride(), 64);
  EXPECT_EQ(rc.CellJy(3) - rc.jy().data(), 3 * 64);
  rc.CellJx(9)[63] = 1.0;
  rc.Zero();
  EXPECT_DOUBLE_EQ(rc.CellJx(9)[63], 0.0);
}

TEST(Rhocell, ReduceZeroesBuffer) {
  TestWorld world(3, 3, 2020);
  HwContext hw;
  DepositScratch scratch;
  RhocellBuffer rhocell(world.tile.num_cells(), 1);
  StageTileVpu<1>(hw, world.tile, world.params, scratch);
  DepositRhocellVpu<1>(hw, world.tile, world.params, scratch, rhocell, true);
  ReduceRhocellToGrid<1>(hw, world.tile, rhocell, world.fields);
  for (double v : rhocell.jx()) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(Deposit, EmptyTileDepositsNothing) {
  GridGeometry g = TestWorld::MakeGeom(4);
  ParticleTile tile(0, 0, 0, 4, 4, 4);
  tile.BuildGpma(g, GpmaConfig{});
  DepositParams params;
  params.geom = g;
  params.charge = kElectronCharge;
  FieldSet fields(g, 2);
  HwContext hw;
  DepositScratch scratch;
  StageTileScalar<1>(hw, tile, params, scratch);
  DepositBaselineTile<1>(hw, tile, params, scratch, fields, false);
  EXPECT_DOUBLE_EQ(Sum(fields.jx.vec()), 0.0);
}

TEST(Deposit, DeadSlotsAreSkipped) {
  TestWorld world(3, 4, 606);
  // Remove a third of the particles, then re-bin.
  Rng rng(2);
  for (int32_t pid = 0; pid < world.tile.num_slots(); ++pid) {
    if (rng.Bernoulli(0.33)) {
      world.tile.RemoveParticle(pid);
    }
  }
  world.tile.BuildGpma(world.geom, GpmaConfig{});
  HwContext hw;
  DepositScratch scratch;
  StageTileScalar<1>(hw, world.tile, world.params, scratch);
  // Unsorted (slot order) and sorted (GPMA order) must both skip dead slots
  // and produce the same J as the scalar reference on the live set.
  DepositBaselineTile<1>(hw, world.tile, world.params, scratch, world.fields,
                         false);
  ExpectMatchesReference<1>(world, world.fields);
}


// Adaptive low-density fallback (paper Sec. 6.1): sparse bins go through a VPU
// path; results must be identical and MOPA counts must drop.
class SparseFallback : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SparseFallback, MatchesReferenceAndSkipsMpuOnSparseBins) {
  const auto [order, threshold] = GetParam();
  TestWorld world(4, 3, 777);  // PPC 3: every bin is "sparse" for threshold 8
  HwContext hw;
  DepositScratch scratch;
  auto run = [&](int thr, FieldSet& out) -> uint64_t {
    HwContext local;
    DepositScratch sc;
    RhocellBuffer rc(world.tile.num_cells(), order);
    if (order == 1) {
      StageTileVpu<1>(local, world.tile, world.params, sc);
      DepositMpu<1>(local, world.tile, world.params, sc, rc,
                    MpuScheduling::kCellResident, thr);
      ReduceRhocellToGrid<1>(local, world.tile, rc, out);
    } else {
      StageTileVpu<3>(local, world.tile, world.params, sc);
      DepositMpu<3>(local, world.tile, world.params, sc, rc,
                    MpuScheduling::kCellResident, thr);
      ReduceRhocellToGrid<3>(local, world.tile, rc, out);
    }
    return local.ledger().counters().mopas;
  };
  FieldSet with_fallback(world.geom, 2);
  const uint64_t mopas_fallback = run(threshold, with_fallback);
  FieldSet without(world.geom, 2);
  const uint64_t mopas_full = run(0, without);
  if (order == 1) {
    const auto [jx, jy, jz] = ReferenceJ<1>(world);
    EXPECT_LT(RelMaxError(jx, with_fallback.jx.vec()), kTol);
    EXPECT_LT(RelMaxError(jz, with_fallback.jz.vec()), kTol);
  } else {
    const auto [jx, jy, jz] = ReferenceJ<3>(world);
    EXPECT_LT(RelMaxError(jx, with_fallback.jx.vec()), kTol);
    EXPECT_LT(RelMaxError(jz, with_fallback.jz.vec()), kTol);
  }
  if (threshold > 3) {
    EXPECT_EQ(mopas_fallback, 0u);  // every bin below threshold -> pure VPU
  }
  EXPECT_GT(mopas_full, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SparseFallback,
                         ::testing::Combine(::testing::Values(1, 3),
                                            ::testing::Values(2, 8)));

TEST(CanonicalFlops, CountsAreStable) {
  // Pinned values: changing the canonical count silently rescales every
  // efficiency number in EXPERIMENTS.md.
  EXPECT_DOUBLE_EQ(CanonicalFlopsPerParticle(1), 12 + 3 + 17 + 4 + 8 * 7);
  EXPECT_DOUBLE_EQ(CanonicalFlopsPerParticle(2), 12 + 15 + 17 + 9 + 27 * 7);
  EXPECT_DOUBLE_EQ(CanonicalFlopsPerParticle(3), 12 + 27 + 17 + 16 + 64 * 7);
}

}  // namespace
}  // namespace mpic

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/grid/field_set.h"
#include "src/laser/laser.h"
#include "src/particles/species.h"
#include "src/push/boris_pusher.h"
#include "src/push/field_gather.h"
#include "src/solver/maxwell_solver.h"
#include "src/solver/moving_window.h"

namespace mpic {
namespace {

GridGeometry CubicGeom(int n, double d) {
  GridGeometry g;
  g.nx = g.ny = g.nz = n;
  g.dx = g.dy = g.dz = d;
  return g;
}

// ---------------------------------------------------------------------------
// Boris pusher physics
// ---------------------------------------------------------------------------

TEST(Boris, UniformEFieldAcceleratesLinearly) {
  // du/dt = qE/m for nonrelativistic motion.
  const double e_field = 1e3;
  const double dt = 1e-12;
  double ux = 0.0, uy = 0.0, uz = 0.0;
  const double qdt2m = kElectronCharge * dt / (2.0 * kElectronMass);
  for (int i = 0; i < 100; ++i) {
    BorisStep(e_field, 0.0, 0.0, 0.0, 0.0, 0.0, qdt2m, &ux, &uy, &uz);
  }
  const double expected = kElectronCharge / kElectronMass * e_field * 100 * dt;
  EXPECT_NEAR(ux, expected, std::fabs(expected) * 1e-9);
  EXPECT_DOUBLE_EQ(uy, 0.0);
}

TEST(Boris, GyrationPreservesSpeedAndFrequency) {
  // Magnetic field only: |u| conserved exactly; rotation angle per step is
  // 2*atan(|t|) ~ omega_c * dt.
  const double b = 0.01;  // Tesla
  const double u0 = 0.05 * kSpeedOfLight;
  const double gamma = std::sqrt(1.0 + (u0 / kSpeedOfLight) * (u0 / kSpeedOfLight));
  const double omega_c = std::fabs(kElectronCharge) * b / (gamma * kElectronMass);
  const double dt = 0.02 / omega_c;  // well-resolved orbit
  const double qdt2m = kElectronCharge * dt / (2.0 * kElectronMass);
  double ux = u0, uy = 0.0, uz = 0.0;
  const int steps = 500;
  for (int i = 0; i < steps; ++i) {
    BorisStep(0.0, 0.0, 0.0, 0.0, 0.0, b, qdt2m, &ux, &uy, &uz);
    EXPECT_NEAR(std::sqrt(ux * ux + uy * uy + uz * uz), u0, u0 * 1e-12)
        << "step " << i;
  }
  const double angle = std::atan2(uy, ux);
  // Boris phase error is O((omega dt)^2); generous tolerance.
  double expected_angle = std::fmod(omega_c * dt * steps, 2.0 * M_PI);
  if (expected_angle > M_PI) {
    expected_angle -= 2.0 * M_PI;
  }
  EXPECT_NEAR(std::fabs(angle), std::fabs(expected_angle), 0.01);
}

TEST(Boris, ExBDriftVelocity) {
  // Crossed fields: guiding center drifts at v = E x B / B^2.
  const double e = 1e4;
  const double b = 0.1;
  const double v_drift = e / b;  // E in y, B in z -> drift in x
  const double omega_c = std::fabs(kElectronCharge) * b / kElectronMass;
  const double dt = 0.05 / omega_c;
  const double qdt2m = kElectronCharge * dt / (2.0 * kElectronMass);
  double ux = 0.0, uy = 0.0, uz = 0.0;
  double x = 0.0;
  const int steps = 20000;
  for (int i = 0; i < steps; ++i) {
    BorisStep(0.0, e, 0.0, 0.0, 0.0, b, qdt2m, &ux, &uy, &uz);
    x += ux * dt;  // nonrelativistic here
  }
  const double measured_drift = x / (steps * dt);
  EXPECT_NEAR(measured_drift, v_drift, std::fabs(v_drift) * 0.02);
}

TEST(PushTile, AdvancesPositionsByVelocity) {
  ParticleTile tile(0, 0, 0, 4, 4, 4);
  Particle p;
  p.x = p.y = p.z = 2.0;
  p.ux = 0.1 * kSpeedOfLight;
  tile.AddParticle(p);
  GatherScratch gathered;
  gathered.Resize(1);
  HwContext hw;
  PushParams pp;
  pp.dt = 1e-9;
  pp.charge = kElectronCharge;
  pp.mass = kElectronMass;
  PushTileBoris(hw, tile, gathered, pp);
  const double gamma = std::sqrt(1.0 + 0.01);
  EXPECT_NEAR(tile.soa().x[0], 2.0 + 0.1 * kSpeedOfLight / gamma * 1e-9, 1e-12);
  EXPECT_DOUBLE_EQ(tile.soa().y[0], 2.0);
  EXPECT_GT(hw.ledger().PhaseCycles(Phase::kPush), 0.0);
}

// ---------------------------------------------------------------------------
// Field gather
// ---------------------------------------------------------------------------

template <int Order>
void ExpectGathersUniformField() {
  const GridGeometry g = CubicGeom(6, 0.5);
  FieldSet fields(g, 2);
  fields.ex.Fill(3.0);
  fields.by.Fill(-2.0);
  ParticleTile tile(0, 0, 0, 6, 6, 6);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    Particle p;
    p.x = rng.Uniform(0.1, 2.9);
    p.y = rng.Uniform(0.1, 2.9);
    p.z = rng.Uniform(0.1, 2.9);
    tile.AddParticle(p);
  }
  GatherScratch gathered;
  HwContext hw;
  GatherFieldsTile<Order>(hw, tile, fields, gathered);
  for (size_t i = 0; i < tile.soa().size(); ++i) {
    EXPECT_NEAR(gathered.ex[i], 3.0, 1e-12);
    EXPECT_NEAR(gathered.by[i], -2.0, 1e-12);
    EXPECT_NEAR(gathered.ez[i], 0.0, 1e-12);
  }
  EXPECT_GT(hw.ledger().PhaseCycles(Phase::kGather), 0.0);
}

TEST(Gather, UniformFieldOrder1) { ExpectGathersUniformField<1>(); }
TEST(Gather, UniformFieldOrder2) { ExpectGathersUniformField<2>(); }
TEST(Gather, UniformFieldOrder3) { ExpectGathersUniformField<3>(); }

TEST(Gather, LinearFieldReproducedExactly) {
  // B-spline interpolation reproduces linear fields; staggering included.
  const GridGeometry g = CubicGeom(8, 1.0);
  FieldSet fields(g, 2);
  // Ex(x,y,z) = 2*x_stag + 3*y + 4*z, with Ex at (i+1/2, j, k).
  for (int k = -2; k <= g.nz + 2; ++k) {
    for (int j = -2; j <= g.ny + 2; ++j) {
      for (int i = -2; i <= g.nx + 2; ++i) {
        fields.ex.At(i, j, k) = 2.0 * (i + 0.5) + 3.0 * j + 4.0 * k;
      }
    }
  }
  ParticleTile tile(0, 0, 0, 8, 8, 8);
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    Particle p;
    // Keep well inside so the support never needs wrapped guards.
    p.x = rng.Uniform(2.0, 6.0);
    p.y = rng.Uniform(2.0, 6.0);
    p.z = rng.Uniform(2.0, 6.0);
    tile.AddParticle(p);
  }
  GatherScratch gathered;
  HwContext hw;
  GatherFieldsTile<1>(hw, tile, fields, gathered);
  for (size_t i = 0; i < tile.soa().size(); ++i) {
    const double expected = 2.0 * tile.soa().x[i] + 3.0 * tile.soa().y[i] +
                            4.0 * tile.soa().z[i];
    EXPECT_NEAR(gathered.ex[i], expected, 1e-10);
  }
}

// ---------------------------------------------------------------------------
// Maxwell solvers
// ---------------------------------------------------------------------------

TEST(Solver, StableCourantLimits) {
  const GridGeometry g = CubicGeom(8, 1.0);
  EXPECT_NEAR(MaxwellSolver(SolverKind::kYee, g).StableCourant(), 1.0 / std::sqrt(3.0),
              1e-12);
  EXPECT_DOUBLE_EQ(MaxwellSolver(SolverKind::kCkc, g).StableCourant(), 1.0);
}

double RunPlaneWave(SolverKind kind, double courant, int steps, int n = 32) {
  // Plane wave along z: Ex = E0 sin(k z), By = E0/c sin(k z) propagates in +z.
  const double dz = 1.0e-6;
  const GridGeometry g = CubicGeom(n, dz);
  FieldSet fields(g, 2);
  const double k_wave = 2.0 * M_PI / (n * dz);
  const double e0 = 1.0;
  for (int kk = 0; kk < g.nz; ++kk) {
    for (int j = 0; j < g.ny; ++j) {
      for (int i = 0; i < g.nx; ++i) {
        // Ex at (i+1/2, j, k): z = kk*dz. By at (i+1/2, j, k+1/2).
        fields.ex.At(i, j, kk) = e0 * std::sin(k_wave * kk * dz);
        fields.by.At(i, j, kk) =
            -e0 / kSpeedOfLight * std::sin(k_wave * (kk + 0.5) * dz);
      }
    }
  }
  fields.ex.FillGuardsPeriodic();
  fields.by.FillGuardsPeriodic();
  MaxwellSolver solver(kind, g);
  HwContext hw;
  const double dt = courant * dz / kSpeedOfLight;
  // Stagger B back half a step (leapfrog init).
  solver.UpdateB(hw, fields, -0.5 * dt);
  for (int s = 0; s < steps; ++s) {
    solver.UpdateB(hw, fields, 0.5 * dt);
    solver.UpdateE(hw, fields, dt);
    solver.UpdateB(hw, fields, 0.5 * dt);
  }
  double max_e = 0.0;
  for (int kk = 0; kk < g.nz; ++kk) {
    max_e = std::max(max_e, std::fabs(fields.ex.At(1, 1, kk)));
  }
  return max_e;
}

TEST(Solver, YeeStableBelowCourantLimit) {
  const double amp = RunPlaneWave(SolverKind::kYee, 0.55, 200);
  EXPECT_LT(amp, 1.5);
  EXPECT_GT(amp, 0.5);
}

TEST(Solver, CkcStableAtCourantOne) {
  // The CKC stencil's raison d'etre (Table 4 runs warpx.cfl = 1.0).
  const double amp = RunPlaneWave(SolverKind::kCkc, 0.99, 200);
  EXPECT_LT(amp, 1.5);
  EXPECT_GT(amp, 0.5);
}

// Seeds broadband 3D noise and reports the max |Ex| after `steps`. Unstable
// configurations amplify the short-wavelength diagonal modes exponentially.
double RunNoise(SolverKind kind, double courant, int steps) {
  const int n = 12;
  const double dz = 1.0e-6;
  const GridGeometry g = CubicGeom(n, dz);
  FieldSet fields(g, 2);
  Rng rng(21);
  for (int kk = 0; kk < g.nz; ++kk) {
    for (int j = 0; j < g.ny; ++j) {
      for (int i = 0; i < g.nx; ++i) {
        fields.ex.At(i, j, kk) = rng.Uniform(-1.0, 1.0);
        fields.ey.At(i, j, kk) = rng.Uniform(-1.0, 1.0);
        fields.ez.At(i, j, kk) = rng.Uniform(-1.0, 1.0);
      }
    }
  }
  fields.ex.FillGuardsPeriodic();
  fields.ey.FillGuardsPeriodic();
  fields.ez.FillGuardsPeriodic();
  MaxwellSolver solver(kind, g);
  HwContext hw;
  const double dt = courant * dz / kSpeedOfLight;
  for (int s = 0; s < steps; ++s) {
    solver.UpdateB(hw, fields, 0.5 * dt);
    solver.UpdateE(hw, fields, dt);
    solver.UpdateB(hw, fields, 0.5 * dt);
  }
  double max_e = 0.0;
  for (double v : fields.ex.vec()) {
    if (std::isnan(v)) {
      return std::numeric_limits<double>::infinity();
    }
    max_e = std::max(max_e, std::fabs(v));
  }
  return max_e;
}

TEST(Solver, YeeUnstableAtCourantOne) {
  // 3D Yee blows up past 1/sqrt(3) on broadband noise: documents why the
  // paper's CFL=1.0 configuration needs the CKC solver.
  const double amp = RunNoise(SolverKind::kYee, 0.99, 100);
  EXPECT_TRUE(amp > 1e3 || std::isinf(amp));
}

TEST(Solver, CkcBoundedOnNoiseAtCourantOne) {
  const double amp = RunNoise(SolverKind::kCkc, 0.99, 100);
  EXPECT_LT(amp, 50.0);
}

TEST(Solver, YeeBoundedOnNoiseBelowLimit) {
  const double amp = RunNoise(SolverKind::kYee, 0.55, 100);
  EXPECT_LT(amp, 50.0);
}

TEST(Solver, PlaneWavePropagatesAtLightSpeed) {
  // After a full box transit the wave returns to its initial phase.
  const int n = 32;
  const double courant = 0.5;
  // steps * c * dt = n * dz  =>  steps = n / courant.
  const int steps = static_cast<int>(n / courant);
  const double amp = RunPlaneWave(SolverKind::kYee, courant, steps, n);
  EXPECT_NEAR(amp, 1.0, 0.05);
}

TEST(Solver, CurrentSourceInducesEField) {
  // dE/dt = -J/eps0 for a uniform J with no curl.
  const GridGeometry g = CubicGeom(8, 1.0e-6);
  FieldSet fields(g, 2);
  fields.jx.Fill(1.0);
  MaxwellSolver solver(SolverKind::kYee, g);
  HwContext hw;
  const double dt = 1e-16;
  solver.UpdateE(hw, fields, dt);
  EXPECT_NEAR(fields.ex.At(3, 3, 3), -dt / kEpsilon0, std::fabs(dt / kEpsilon0) * 1e-9);
  EXPECT_NEAR(fields.ey.At(3, 3, 3), 0.0, 1e-20);
  EXPECT_GT(hw.ledger().PhaseCycles(Phase::kSolver), 0.0);
}

// ---------------------------------------------------------------------------
// Moving window + laser
// ---------------------------------------------------------------------------

TEST(MovingWindow, ShiftMovesFieldPlanesAndOrigin) {
  const GridGeometry g = CubicGeom(4, 1.0);
  FieldSet fields(g, 2);
  for (int k = 0; k < 4; ++k) {
    fields.ex.At(1, 1, k) = 10.0 + k;
  }
  HwContext hw;
  ShiftWindowZ(hw, fields);
  EXPECT_DOUBLE_EQ(fields.ex.At(1, 1, 0), 11.0);
  EXPECT_DOUBLE_EQ(fields.ex.At(1, 1, 2), 13.0);
  EXPECT_DOUBLE_EQ(fields.geom.z0, 1.0);
  // Head plane zeroed (interior node nz-? the former plane 4 data shifted in,
  // new guard-side plane is zero).
  EXPECT_DOUBLE_EQ(fields.ex.At(1, 1, fields.ex.nz() + fields.ex.ng()), 0.0);
}

TEST(MovingWindow, StepsToShiftAccumulates) {
  MovingWindow w(kSpeedOfLight, 1.0e-6);
  const double dt = 0.4e-6 / kSpeedOfLight;  // 0.4 cells per step
  int total = 0;
  for (int i = 0; i < 10; ++i) {
    total += w.StepsToShift(dt);
  }
  EXPECT_EQ(total, 4);  // 4 cells over 10 steps
}

TEST(Laser, AntennaDrivesGaussianPulse) {
  const GridGeometry g = CubicGeom(16, 1.0e-6);
  FieldSet fields(g, 2);
  LaserConfig cfg;
  cfg.a0 = 2.0;
  cfg.antenna_cell_z = 3;
  cfg.t_peak = 0.0;
  LaserAntenna antenna(cfg);
  HwContext hw;
  antenna.Drive(hw, fields, 0.25 / cfg.Omega() * 2.0 * M_PI);
  // Peak on axis, decaying transversally, only on the antenna plane.
  const double center = std::fabs(fields.ey.At(8, 8, 3));
  const double edge = std::fabs(fields.ey.At(0, 0, 3));
  EXPECT_GT(center, 0.0);
  EXPECT_LT(edge, center);
  EXPECT_DOUBLE_EQ(fields.ey.At(8, 8, 10), 0.0);
  EXPECT_LT(center, cfg.PeakField() * 1.01);
}

TEST(Laser, PeakFieldMatchesA0) {
  LaserConfig cfg;
  cfg.a0 = 1.0;
  cfg.wavelength = 0.8e-6;
  // a0 = e E / (m c omega) => E = a0 m c omega / e ~ 4e12 V/m for 0.8 um.
  EXPECT_NEAR(cfg.PeakField(), 4.013e12, 0.01e12);
}

}  // namespace
}  // namespace mpic

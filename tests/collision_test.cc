// Takizuka-Abe collision module tests: pairing rules (even/triplet intra,
// wrap-around inter), per-pair conservation laws, the full-simulation
// conservation/determinism battery across core counts, thread counts, and
// fused/legacy orchestrations, the two-temperature relaxation physics, the
// per-step pairing census across GPMA-valid sort modes and orders 1-3, and
// ledger determinism with the collision scratch keyed-registered.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/collide/collision.h"
#include "src/collide/pairing.h"
#include "src/common/rng.h"
#include "src/core/diagnostics.h"
#include "src/core/simulation.h"
#include "src/core/workloads.h"

namespace mpic {
namespace {

void UseManyThreads() {
#ifdef _OPENMP
  omp_set_num_threads(4);
#endif
}

// ---- Pairing rules (pure functions) -----------------------------------------

TEST(Pairing, IntraEvenPairsEveryParticleExactlyOnce) {
  for (int32_t n = 2; n <= 24; n += 2) {
    SCOPED_TRACE(n);
    std::vector<CellPair> pairs;
    AppendIntraCellPairs(n, &pairs);
    ASSERT_EQ(pairs.size(), static_cast<size_t>(n / 2));
    std::vector<int> seen(static_cast<size_t>(n), 0);
    for (const CellPair& p : pairs) {
      EXPECT_NE(p.a, p.b);
      EXPECT_DOUBLE_EQ(p.dt_scale, 1.0);
      ++seen[static_cast<size_t>(p.a)];
      ++seen[static_cast<size_t>(p.b)];
    }
    for (int32_t i = 0; i < n; ++i) {
      EXPECT_EQ(seen[static_cast<size_t>(i)], 1) << "particle " << i;
    }
  }
}

TEST(Pairing, IntraOddUsesTripletRule) {
  for (int32_t n = 3; n <= 25; n += 2) {
    SCOPED_TRACE(n);
    std::vector<CellPair> pairs;
    AppendIntraCellPairs(n, &pairs);
    // Three half-step triplet pairs plus (n-3)/2 full-step pairs.
    ASSERT_EQ(pairs.size(), static_cast<size_t>(3 + (n - 3) / 2));
    std::vector<int> seen(static_cast<size_t>(n), 0);
    std::vector<double> dt_sum(static_cast<size_t>(n), 0.0);
    for (const CellPair& p : pairs) {
      EXPECT_NE(p.a, p.b);
      ++seen[static_cast<size_t>(p.a)];
      ++seen[static_cast<size_t>(p.b)];
      dt_sum[static_cast<size_t>(p.a)] += p.dt_scale;
      dt_sum[static_cast<size_t>(p.b)] += p.dt_scale;
    }
    for (int32_t i = 0; i < n; ++i) {
      // Triplet members are scattered twice at half strength; everyone else
      // once at full strength — every particle sees one full collision step.
      EXPECT_EQ(seen[static_cast<size_t>(i)], i < 3 ? 2 : 1) << "particle " << i;
      EXPECT_DOUBLE_EQ(dt_sum[static_cast<size_t>(i)], 1.0) << "particle " << i;
    }
  }
}

TEST(Pairing, IntraDegenerateCountsProduceNoPairs) {
  for (int32_t n : {0, 1}) {
    std::vector<CellPair> pairs;
    AppendIntraCellPairs(n, &pairs);
    EXPECT_TRUE(pairs.empty());
  }
}

TEST(Pairing, InterWrapAroundCoversBothGroups) {
  for (int32_t na = 0; na <= 12; ++na) {
    for (int32_t nb = 0; nb <= 12; ++nb) {
      SCOPED_TRACE(std::to_string(na) + "x" + std::to_string(nb));
      std::vector<CellPair> pairs;
      AppendInterCellPairs(na, nb, &pairs);
      if (na == 0 || nb == 0) {
        EXPECT_TRUE(pairs.empty());
        continue;
      }
      const int32_t n_max = std::max(na, nb);
      const int32_t n_min = std::min(na, nb);
      ASSERT_EQ(pairs.size(), static_cast<size_t>(n_max));
      std::vector<int> seen_a(static_cast<size_t>(na), 0);
      std::vector<int> seen_b(static_cast<size_t>(nb), 0);
      for (const CellPair& p : pairs) {
        ASSERT_GE(p.a, 0);
        ASSERT_LT(p.a, na);
        ASSERT_GE(p.b, 0);
        ASSERT_LT(p.b, nb);
        ++seen_a[static_cast<size_t>(p.a)];
        ++seen_b[static_cast<size_t>(p.b)];
      }
      // Larger group: exactly once. Smaller group: floor/ceil(n_max/n_min).
      for (int32_t i = 0; i < na; ++i) {
        const int expect_lo = na >= nb ? 1 : n_max / n_min;
        const int expect_hi = na >= nb ? 1 : (n_max + n_min - 1) / n_min;
        EXPECT_GE(seen_a[static_cast<size_t>(i)], expect_lo);
        EXPECT_LE(seen_a[static_cast<size_t>(i)], expect_hi);
      }
      for (int32_t i = 0; i < nb; ++i) {
        const int expect_lo = nb >= na ? 1 : n_max / n_min;
        const int expect_hi = nb >= na ? 1 : (n_max + n_min - 1) / n_min;
        EXPECT_GE(seen_b[static_cast<size_t>(i)], expect_lo);
        EXPECT_LE(seen_b[static_cast<size_t>(i)], expect_hi);
      }
    }
  }
}

// ---- Per-pair scattering conservation ---------------------------------------

TEST(ScatterPair, ConservesMomentumEnergyAndRelativeSpeed) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    SCOPED_TRACE(trial);
    // Unequal masses and macro-weights exercise the weight-aware reduced mass.
    const double m1 = 1e-30 * (1.0 + rng.NextDouble());
    const double m2 = 1e-30 * (1.0 + 100.0 * rng.NextDouble());
    const double w1 = 1e4 * (1.0 + rng.NextDouble());
    const double w2 = 1e4 * (1.0 + rng.NextDouble());
    double u1[3], u2[3];
    for (int c = 0; c < 3; ++c) {
      u1[c] = 1e6 * (rng.NextDouble() - 0.5);
      u2[c] = 1e6 * (rng.NextDouble() - 0.5);
    }
    const double theta = rng.Uniform(0.0, M_PI);
    const double phi = rng.Uniform(0.0, 2.0 * M_PI);

    double p_before[3], ke_before = 0.0;
    for (int c = 0; c < 3; ++c) {
      p_before[c] = w1 * m1 * u1[c] + w2 * m2 * u2[c];
      ke_before += 0.5 * (w1 * m1 * u1[c] * u1[c] + w2 * m2 * u2[c] * u2[c]);
    }
    const double g_before = std::sqrt((u1[0] - u2[0]) * (u1[0] - u2[0]) +
                                      (u1[1] - u2[1]) * (u1[1] - u2[1]) +
                                      (u1[2] - u2[2]) * (u1[2] - u2[2]));

    ScatterPair(std::cos(theta), std::sin(theta), phi, m1, w1, m2, w2, u1, u2);

    const double p_scale = std::abs(w1 * m1) * 1e6 + std::abs(w2 * m2) * 1e6;
    for (int c = 0; c < 3; ++c) {
      const double p_after = w1 * m1 * u1[c] + w2 * m2 * u2[c];
      EXPECT_NEAR(p_after, p_before[c], 1e-12 * p_scale) << "component " << c;
    }
    double ke_after = 0.0;
    for (int c = 0; c < 3; ++c) {
      ke_after += 0.5 * (w1 * m1 * u1[c] * u1[c] + w2 * m2 * u2[c] * u2[c]);
    }
    EXPECT_NEAR(ke_after, ke_before, 1e-11 * ke_before);
    const double g_after = std::sqrt((u1[0] - u2[0]) * (u1[0] - u2[0]) +
                                     (u1[1] - u2[1]) * (u1[1] - u2[1]) +
                                     (u1[2] - u2[2]) * (u1[2] - u2[2]));
    EXPECT_NEAR(g_after, g_before, 1e-11 * g_before);
  }
}

TEST(ScatterPair, ZeroRelativeVelocityIsIdentity) {
  double u1[3] = {1e6, -2e6, 3e6};
  double u2[3] = {1e6, -2e6, 3e6};
  ScatterPair(0.5, std::sqrt(0.75), 1.0, 1e-30, 1e4, 2e-30, 2e4, u1, u2);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(u1[c], u2[c]);
  }
  EXPECT_EQ(u1[0], 1e6);
}

// ---- Conservation battery (module-level, every pair kind) -------------------

double NonRelKineticEnergy(const Simulation& sim) {
  double ke = 0.0;
  for (int sid = 0; sid < sim.num_species(); ++sid) {
    const TileSet& tiles = sim.block(sid).tiles;
    const double m = sim.species(sid).mass;
    for (int t = 0; t < tiles.num_tiles(); ++t) {
      const ParticleTile& tile = tiles.tile(t);
      const ParticleSoA& soa = tile.soa();
      for (int32_t pid = 0; pid < tile.num_slots(); ++pid) {
        if (!tile.IsLive(pid)) {
          continue;
        }
        const auto i = static_cast<size_t>(pid);
        ke += 0.5 * soa.w[i] * m *
              (soa.ux[i] * soa.ux[i] + soa.uy[i] * soa.uy[i] +
               soa.uz[i] * soa.uz[i]);
      }
    }
  }
  return ke;
}

void TotalMomentum(const Simulation& sim, double out[3]) {
  out[0] = out[1] = out[2] = 0.0;
  for (int sid = 0; sid < sim.num_species(); ++sid) {
    double p[3];
    SpeciesMomentum(sim.block(sid).tiles, sim.species(sid), p);
    for (int c = 0; c < 3; ++c) {
      out[c] += p[c];
    }
  }
}

double MomentumScale(const Simulation& sim) {
  double scale = 0.0;
  for (int sid = 0; sid < sim.num_species(); ++sid) {
    const TileSet& tiles = sim.block(sid).tiles;
    const double m = sim.species(sid).mass;
    for (int t = 0; t < tiles.num_tiles(); ++t) {
      const ParticleTile& tile = tiles.tile(t);
      const ParticleSoA& soa = tile.soa();
      for (int32_t pid = 0; pid < tile.num_slots(); ++pid) {
        if (!tile.IsLive(pid)) {
          continue;
        }
        const auto i = static_cast<size_t>(pid);
        scale += soa.w[i] * m *
                 std::sqrt(soa.ux[i] * soa.ux[i] + soa.uy[i] * soa.uy[i] +
                           soa.uz[i] * soa.uz[i]);
      }
    }
  }
  return scale;
}

// Applies the collision operator in isolation (no fields, no push) so the
// conservation laws can be pinned without field-mediated momentum exchange.
TEST(CollisionConservation, MomentumExactEnergyToTolerance) {
  CollisionalRelaxationParams p;
  p.collisions_enabled = false;  // the test drives the module directly
  HwContext hw;
  auto sim = MakeCollisionalRelaxationSimulation(hw, p);

  CollisionConfig cc;
  cc.pairs = {{0, 0, 200.0}, {1, 1, 200.0}, {0, 1, 200.0}};
  CollisionModule mod(hw, cc);
  mod.Initialize({&sim->block(0), &sim->block(1)});

  double p_before[3];
  TotalMomentum(*sim, p_before);
  const double ke_before = NonRelKineticEnergy(*sim);
  const double ke_rel_before = TotalKineticEnergy(*sim);
  const double p_scale = MomentumScale(*sim);

  for (int step = 0; step < 5; ++step) {
    mod.Apply(step, sim->dt());
    EXPECT_GT(mod.last_step_stats().pairs, 0);

    double p_after[3];
    TotalMomentum(*sim, p_after);
    for (int c = 0; c < 3; ++c) {
      // Machine precision: the per-pair impulse cancels exactly; only summation
      // rounding across ~8k particles remains.
      EXPECT_NEAR(p_after[c], p_before[c], 1e-12 * p_scale)
          << "step " << step << " component " << c;
    }
    // The operator is elastic in the proper velocities...
    EXPECT_NEAR(NonRelKineticEnergy(*sim), ke_before, 1e-10 * ke_before)
        << "step " << step;
    // ...and conserves the relativistic kinetic energy to O(u^2/c^2) of the
    // (small) exchanged energy.
    EXPECT_NEAR(TotalKineticEnergy(*sim), ke_rel_before, 1e-5 * ke_rel_before)
        << "step " << step;
  }
}

// ---- Bit-identity matrix: cores x threads x fused/legacy --------------------

void ExpectFieldsBitIdentical(const FieldSet& a, const FieldSet& b) {
  auto cmp = [](const FieldArray& fa, const FieldArray& fb, const char* name) {
    ASSERT_EQ(fa.vec().size(), fb.vec().size()) << name;
    EXPECT_EQ(std::memcmp(fa.vec().data(), fb.vec().data(),
                          fa.vec().size() * sizeof(double)),
              0)
        << name << " differs bitwise";
  };
  cmp(a.ex, b.ex, "ex");
  cmp(a.ey, b.ey, "ey");
  cmp(a.ez, b.ez, "ez");
  cmp(a.bx, b.bx, "bx");
  cmp(a.by, b.by, "by");
  cmp(a.bz, b.bz, "bz");
  cmp(a.jx, b.jx, "jx");
  cmp(a.jy, b.jy, "jy");
  cmp(a.jz, b.jz, "jz");
}

void ExpectParticlesBitIdentical(const TileSet& a, const TileSet& b) {
  ASSERT_EQ(a.num_tiles(), b.num_tiles());
  for (int t = 0; t < a.num_tiles(); ++t) {
    const ParticleTile& ta = a.tile(t);
    const ParticleTile& tb = b.tile(t);
    ASSERT_EQ(ta.num_slots(), tb.num_slots()) << "tile " << t;
    ASSERT_EQ(ta.num_live(), tb.num_live()) << "tile " << t;
    const ParticleSoA& sa = ta.soa();
    const ParticleSoA& sb = tb.soa();
    for (int32_t pid = 0; pid < ta.num_slots(); ++pid) {
      ASSERT_EQ(ta.IsLive(pid), tb.IsLive(pid)) << "tile " << t << " pid " << pid;
      if (!ta.IsLive(pid)) {
        continue;
      }
      const auto i = static_cast<size_t>(pid);
      EXPECT_EQ(sa.x[i], sb.x[i]);
      EXPECT_EQ(sa.y[i], sb.y[i]);
      EXPECT_EQ(sa.z[i], sb.z[i]);
      EXPECT_EQ(sa.ux[i], sb.ux[i]);
      EXPECT_EQ(sa.uy[i], sb.uy[i]);
      EXPECT_EQ(sa.uz[i], sb.uz[i]);
      EXPECT_EQ(sa.w[i], sb.w[i]);
    }
  }
}

void ExpectSimsBitIdentical(Simulation& a, Simulation& b) {
  ExpectFieldsBitIdentical(a.fields(), b.fields());
  ASSERT_EQ(a.num_species(), b.num_species());
  for (int sid = 0; sid < a.num_species(); ++sid) {
    ExpectParticlesBitIdentical(a.block(sid).tiles, b.block(sid).tiles);
  }
}

// With collisions enabled, the physics must stay bit-identical for any
// num_cores and for the fused vs legacy orchestration (the OMP_NUM_THREADS
// axis is covered by CI running the whole suite at 1 and 4 threads). Mirrors
// tests/fusion_test.cc's matrix.
TEST(CollisionDeterminism, BitIdenticalAcrossCoresAndSchedules) {
  UseManyThreads();
  CollisionalRelaxationParams p;
  p.coulomb_log = 300.0;

  p.fuse_stages = true;
  HwContext ref_hw;
  auto ref = MakeCollisionalRelaxationSimulation(ref_hw, p);
  ref->Run(4);
  EXPECT_GT(ref->last_sim_stats().collisions.pairs, 0);

  for (int cores : {1, 2, 4}) {
    for (bool fused : {true, false}) {
      SCOPED_TRACE(std::string(fused ? "fused" : "legacy") + " cores " +
                   std::to_string(cores));
      if (cores == 1 && fused) {
        continue;  // the reference itself
      }
      p.fuse_stages = fused;
      HwContext hw(MachineConfig::Lx2MultiCore(cores));
      auto sim = MakeCollisionalRelaxationSimulation(hw, p);
      sim->Run(4);
      ExpectSimsBitIdentical(*ref, *sim);
    }
  }
}

// ---- Per-step pairing census across sort modes and orders -------------------

// Every live particle must be covered by the pairing exactly once per
// configured pair (unpaired counts the lone-particle/empty-partner cells), on
// every sort mode that keeps the GPMA valid and at orders 1-3.
TEST(CollisionPairingCensus, CoversEveryLiveParticleAcrossSortModesAndOrders) {
  struct Combo {
    DepositVariant variant;
    int order;
  };
  // kIncremental maintains the GPMA continuously; kGlobalEachStep rebuilds it
  // every step. The unsorted baselines (kBaseline, kRhocell, kHybridNoSort,
  // kScalar) have no valid GPMA and are rejected by CollisionModule.
  const std::vector<Combo> combos = {
      {DepositVariant::kFullOpt, 1},          {DepositVariant::kFullOpt, 3},
      {DepositVariant::kBaselineIncrSort, 1}, {DepositVariant::kBaselineIncrSort, 2},
      {DepositVariant::kBaselineIncrSort, 3}, {DepositVariant::kRhocellIncrSortVpu, 3},
      {DepositVariant::kHybridGlobalSort, 1},
  };
  for (const Combo& c : combos) {
    SCOPED_TRACE(std::string(VariantName(c.variant)) + " order " +
                 std::to_string(c.order));
    CollisionalRelaxationParams p;
    p.variant = c.variant;
    p.order = c.order;
    // Odd PPC per cell makes the intra-species triplet rule fire everywhere;
    // unequal hot/cold counts exercise the inter-species wrap-around.
    p.ppc_x = 3;
    p.ppc_y = 1;
    p.ppc_z = 1;
    HwContext hw;
    auto sim = MakeCollisionalRelaxationSimulation(hw, p);
    const int64_t live = sim->block(0).tiles.TotalLive() +
                         sim->block(1).tiles.TotalLive();
    for (int s = 0; s < 3; ++s) {
      sim->Step();
      const CollisionStepStats& cs = sim->last_sim_stats().collisions;
      EXPECT_GT(cs.pairs, 0) << "step " << s;
      // Three configured pairs (hot-hot, cold-cold, hot-cold): each species
      // is covered once by its intra pair and once by the inter pair, so the
      // pairing incidences must account for every live particle twice.
      EXPECT_EQ(cs.covered + cs.unpaired, 2 * live) << "step " << s;
    }
  }
}

// ---- Physics: two-temperature relaxation ------------------------------------

TEST(CollisionPhysics, TwoTemperatureRelaxationConvergesMonotonically) {
  CollisionalRelaxationParams p;
  p.coulomb_log = 300.0;  // rate knob: compresses equilibration into ~60 steps
  HwContext hw;
  auto sim = MakeCollisionalRelaxationSimulation(hw, p);

  std::vector<double> hot, cold;
  hot.push_back(SpeciesTemperature(sim->block(0).tiles, sim->species(0)));
  cold.push_back(SpeciesTemperature(sim->block(1).tiles, sim->species(1)));
  ASSERT_GT(hot[0], cold[0]);
  for (int block = 0; block < 3; ++block) {
    sim->Run(20);
    hot.push_back(SpeciesTemperature(sim->block(0).tiles, sim->species(0)));
    cold.push_back(SpeciesTemperature(sim->block(1).tiles, sim->species(1)));
  }
  for (size_t i = 1; i < hot.size(); ++i) {
    EXPECT_LT(hot[i], hot[i - 1]) << "sample " << i;
    EXPECT_GT(cold[i], cold[i - 1]) << "sample " << i;
    EXPECT_GT(hot[i], cold[i]) << "no overshoot, sample " << i;
  }
  // Coarse tolerance on the rate: the gap must have closed substantially.
  EXPECT_LT(hot.back() - cold.back(), 0.75 * (hot[0] - cold[0]));
}

TEST(CollisionPhysics, EqualTemperaturePlasmaStaysStationary) {
  CollisionalRelaxationParams p;
  p.coulomb_log = 300.0;
  p.u_th_hot = 0.01;
  p.u_th_cold = 0.01;
  HwContext hw;
  auto sim = MakeCollisionalRelaxationSimulation(hw, p);

  const double t0_hot = SpeciesTemperature(sim->block(0).tiles, sim->species(0));
  const double t0_cold = SpeciesTemperature(sim->block(1).tiles, sim->species(1));
  sim->Run(40);
  // In equilibrium collisions must not secularly heat or cool either species
  // (a few percent covers plasma noise over the run).
  EXPECT_NEAR(SpeciesTemperature(sim->block(0).tiles, sim->species(0)), t0_hot,
              0.03 * t0_hot);
  EXPECT_NEAR(SpeciesTemperature(sim->block(1).tiles, sim->species(1)), t0_cold,
              0.03 * t0_cold);
}

// ---- Ledger determinism with collisions enabled -----------------------------

// Mirrors fusion_test's LedgerDeterminism: with the collision stage in the
// loop, repeated runs must charge exactly the same cycles in every phase —
// which requires the pairing scratch to be keyed-registered, not
// identity-mapped.
TEST(LedgerDeterminism, CollisionsChargeIdenticalCyclesAcrossRuns) {
  UseManyThreads();
  auto run = [](int cores, std::unique_ptr<std::vector<char>>* ballast) {
    CollisionalRelaxationParams p;
    p.coulomb_log = 300.0;
    HwContext hw(MachineConfig::Lx2MultiCore(cores));
    auto sim = MakeCollisionalRelaxationSimulation(hw, p);
    sim->Run(4);
    // Shift the heap before the next run allocates, so identical cycle totals
    // cannot come from the allocator accidentally reusing the same addresses.
    *ballast = std::make_unique<std::vector<char>>(4097, 'x');
    return hw.ledger();
  };
  for (int cores : {1, 4}) {
    SCOPED_TRACE(cores);
    std::unique_ptr<std::vector<char>> ballast_a, ballast_b;
    const CostLedger a = run(cores, &ballast_a);
    const CostLedger b = run(cores, &ballast_b);
    EXPECT_GT(a.PhaseCycles(Phase::kCollide), 0.0);
    for (int ph = 0; ph < kNumPhases; ++ph) {
      EXPECT_DOUBLE_EQ(a.PhaseCycles(static_cast<Phase>(ph)),
                       b.PhaseCycles(static_cast<Phase>(ph)))
          << PhaseName(static_cast<Phase>(ph));
    }
    EXPECT_EQ(a.counters().l1_misses, b.counters().l1_misses);
    EXPECT_EQ(a.counters().l2_misses, b.counters().l2_misses);
  }
}

// The collide phase must appear in the ledger breakdown and the per-phase
// cycles must still sum exactly to the total.
TEST(CollisionLedger, CollidePhaseAppearsAndBreakdownSums) {
  CollisionalRelaxationParams p;
  HwContext hw;
  auto sim = MakeCollisionalRelaxationSimulation(hw, p);
  sim->Run(3);
  EXPECT_GT(hw.ledger().PhaseCycles(Phase::kCollide), 0.0);
  double sum = 0.0;
  for (int ph = 0; ph < kNumPhases; ++ph) {
    sum += hw.ledger().PhaseCycles(static_cast<Phase>(ph));
  }
  EXPECT_NEAR(sum, hw.ledger().TotalCycles(), 1e-9 * hw.ledger().TotalCycles());

  // Disabled collisions must leave the phase exactly empty.
  p.collisions_enabled = false;
  HwContext off_hw;
  auto off = MakeCollisionalRelaxationSimulation(off_hw, p);
  off->Run(3);
  EXPECT_EQ(off_hw.ledger().PhaseCycles(Phase::kCollide), 0.0);
  EXPECT_EQ(off->collisions(), nullptr);
}

}  // namespace
}  // namespace mpic

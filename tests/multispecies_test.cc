// Multi-species core: per-species blocks share one FieldSet, currents
// accumulate across species, and per-species stats are reported. These tests
// pin the physics of the SpeciesBlock registry: charge bookkeeping with
// electrons+protons, J accumulation/cancellation, moving-window injection per
// species, and the two-stream instability end-to-end.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/diagnostics.h"
#include "src/core/workloads.h"
#include "src/deposit/esirkepov.h"

namespace mpic {
namespace {

UniformWorkloadParams ElectronProtonBox(double u_th = 0.0) {
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 2;
  p.tile = 4;
  p.u_th = u_th;
  p.variant = DepositVariant::kFullOpt;
  p.species = {Species::Electron(), Species::Proton()};
  return p;
}

// Sums the deposited charge density of one species (periodic box).
double DepositedChargeOfSpecies(Simulation& sim, int sid) {
  const GridGeometry& g = sim.config().geom;
  FieldArray rho(g.nx, g.ny, g.nz, 2);
  SpeciesBlock& b = sim.block(sid);
  DepositParams dp;
  dp.geom = g;
  dp.charge = b.species.charge;
  for (int t = 0; t < b.tiles.num_tiles(); ++t) {
    DepositCharge<1>(sim.hw(), b.tiles.tile(t), dp, rho);
  }
  rho.FoldGuardsPeriodic();
  return rho.InteriorSumUnique();
}

// Sums the deposited charge density over all species (periodic box).
double TotalDepositedCharge(Simulation& sim) {
  double sum = 0.0;
  for (int sid = 0; sid < sim.num_species(); ++sid) {
    sum += DepositedChargeOfSpecies(sim, sid);
  }
  return sum;
}

TEST(MultiSpecies, ElectronProtonBoxConservesParticlesAndCharge) {
  HwContext hw;
  auto sim = MakeUniformSimulation(hw, ElectronProtonBox(0.01));
  ASSERT_EQ(sim->num_species(), 2);
  const int64_t per_species = 8 * 8 * 8 * 8;
  EXPECT_EQ(sim->block(0).tiles.TotalLive(), per_species);
  EXPECT_EQ(sim->block(1).tiles.TotalLive(), per_species);

  // Equal-density electrons and protons: the box is neutral, and deposition
  // of +q and -q weights must cancel to rounding relative to each species'
  // own deposited magnitude.
  const double q_scale = std::fabs(DepositedChargeOfSpecies(*sim, 0));
  ASSERT_GT(q_scale, 0.0);
  EXPECT_NEAR(TotalDepositedCharge(*sim), 0.0, q_scale * 1e-12);

  sim->Run(5);
  EXPECT_EQ(sim->block(0).tiles.TotalLive(), per_species);
  EXPECT_EQ(sim->block(1).tiles.TotalLive(), per_species);
  EXPECT_EQ(sim->particles_pushed(), 2 * per_species * 5);
  EXPECT_NEAR(TotalDepositedCharge(*sim), 0.0, q_scale * 1e-12);

  // Per-species stats reported for the last step.
  const SimStepStats& stats = sim->last_sim_stats();
  ASSERT_EQ(stats.species.size(), 2u);
  EXPECT_EQ(stats.species[0].name, "electrons");
  EXPECT_EQ(stats.species[1].name, "protons");
  EXPECT_EQ(stats.species[0].live, per_species);
  EXPECT_EQ(stats.species[1].live, per_species);
  EXPECT_EQ(stats.species[0].pushed, per_species);
  EXPECT_EQ(stats.TotalPushed(), 2 * per_species);
  EXPECT_EQ(stats.TotalLive(), sim->block(0).tiles.TotalLive() +
                                   sim->block(1).tiles.TotalLive());
}

TEST(MultiSpecies, OppositeChargesCancelCurrents) {
  // Electrons and protons seeded on the same lattice with the same drift:
  // J = n*(q_e + q_p)*v = 0. The fields must stay (numerically) quiet even
  // though each species alone would drive a large current.
  UniformWorkloadParams p = ElectronProtonBox(0.0);
  HwContext hw;
  auto sim = MakeUniformSimulation(hw, p);
  const double u_drift = 0.02 * kSpeedOfLight;
  for (int sid = 0; sid < 2; ++sid) {
    TileSet& tiles = sim->block(sid).tiles;
    for (int t = 0; t < tiles.num_tiles(); ++t) {
      ParticleSoA& soa = tiles.tile(t).soa();
      for (size_t i = 0; i < soa.size(); ++i) {
        soa.uz[i] = u_drift;
      }
    }
  }
  sim->Step();

  // Compare against the same drift carried by the electrons alone.
  UniformWorkloadParams pe = ElectronProtonBox(0.0);
  pe.species = {Species::Electron()};
  HwContext hw_e;
  auto sim_e = MakeUniformSimulation(hw_e, pe);
  for (int t = 0; t < sim_e->tiles().num_tiles(); ++t) {
    ParticleSoA& soa = sim_e->tiles().tile(t).soa();
    for (size_t i = 0; i < soa.size(); ++i) {
      soa.uz[i] = u_drift;
    }
  }
  sim_e->Step();

  const double jz_electron_only = std::fabs(sim_e->fields().jz.InteriorSumUnique());
  ASSERT_GT(jz_electron_only, 0.0);
  EXPECT_LT(std::fabs(sim->fields().jz.InteriorSumUnique()),
            jz_electron_only * 1e-9);
}

TEST(MultiSpecies, ProtonDriftCurrentMatchesAnalytic) {
  // Only the protons drift: total J must equal n * q_p * v_drift * volume /
  // cell_volume, proving the per-species charge reaches the deposit kernels.
  UniformWorkloadParams p = ElectronProtonBox(0.0);
  HwContext hw;
  auto sim = MakeUniformSimulation(hw, p);
  const double u_drift = 0.02 * kSpeedOfLight;
  TileSet& protons = sim->block(1).tiles;
  for (int t = 0; t < protons.num_tiles(); ++t) {
    ParticleSoA& soa = protons.tile(t).soa();
    for (size_t i = 0; i < soa.size(); ++i) {
      soa.uz[i] = u_drift;
    }
  }
  sim->Step();
  const GridGeometry& g = sim->config().geom;
  const double gamma = std::sqrt(1.0 + 0.0004);
  const double expected = p.density * (-kElectronCharge) * (u_drift / gamma) *
                          g.LengthX() * g.LengthY() * g.LengthZ() /
                          (g.dx * g.dy * g.dz);
  EXPECT_NEAR(sim->fields().jz.InteriorSumUnique(), expected,
              std::fabs(expected) * 1e-9);
}

TEST(MultiSpecies, ElectronOnlyDefaultMatchesLegacyPath) {
  // A two-species run whose second species is empty must reproduce the
  // single-species fields exactly: the species loop and the shared guard fold
  // cannot perturb the electron-only physics.
  UniformWorkloadParams p1 = ElectronProtonBox(0.01);
  p1.species = {Species::Electron()};
  HwContext hw1;
  auto sim1 = MakeUniformSimulation(hw1, p1);
  sim1->Run(3);

  UniformWorkloadParams p2 = ElectronProtonBox(0.01);
  HwContext hw2;
  SimulationConfig cfg = MakeUniformConfig(p2);
  cfg.species.resize(1);
  Simulation sim2(hw2, cfg);
  SpeciesConfig ion_cfg;
  ion_cfg.species = Species::Proton();
  const int ion_id = sim2.AddSpecies(ion_cfg);
  EXPECT_EQ(ion_id, 1);
  UniformPlasmaConfig plasma;
  plasma.ppc_x = plasma.ppc_y = plasma.ppc_z = 2;
  plasma.u_th = 0.01;
  plasma.seed = p2.seed;
  sim2.SeedUniformPlasma(0, plasma);
  ScrambleParticleOrder(sim2.block(0).tiles, p2.seed ^ 0xABCD);
  sim2.Initialize();  // proton block stays empty
  sim2.Run(3);

  for (size_t i = 0; i < sim1->fields().ex.vec().size(); ++i) {
    ASSERT_EQ(sim1->fields().ex.vec()[i], sim2.fields().ex.vec()[i]) << i;
    ASSERT_EQ(sim1->fields().jz.vec()[i], sim2.fields().jz.vec()[i]) << i;
  }
}

TEST(MultiSpecies, MovingWindowInjectsEachSpecies) {
  LwfaWorkloadParams p;
  p.nx = p.ny = 4;
  p.nz = 32;
  p.ppc_x = p.ppc_y = p.ppc_z = 1;
  p.tile = 4;
  p.tile_z = 8;
  p.with_ions = true;
  HwContext hw;
  auto sim = MakeLwfaSimulation(hw, p);
  ASSERT_EQ(sim->num_species(), 2);
  const int64_t e0 = sim->block(0).tiles.TotalLive();
  const int64_t i0 = sim->block(1).tiles.TotalLive();
  EXPECT_EQ(e0, i0);  // same profile, same PPC
  sim->Run(30);
  // The window advanced; both species were dropped at the tail and re-injected
  // at the head, so their live counts stay within a few slabs of the start.
  const int64_t slab = p.nx * p.ny;
  EXPECT_NEAR(static_cast<double>(sim->block(0).tiles.TotalLive()),
              static_cast<double>(e0), static_cast<double>(6 * slab));
  EXPECT_NEAR(static_cast<double>(sim->block(1).tiles.TotalLive()),
              static_cast<double>(i0), static_cast<double>(6 * slab));
  const SimStepStats& stats = sim->last_sim_stats();
  ASSERT_EQ(stats.species.size(), 2u);
  EXPECT_GT(stats.species[0].live, 0);
  EXPECT_GT(stats.species[1].live, 0);
  for (int sid = 0; sid < 2; ++sid) {
    for (int t = 0; t < sim->block(sid).tiles.num_tiles(); ++t) {
      sim->block(sid).tiles.tile(t).gpma().CheckInvariants();
    }
  }
}

TEST(TwoStream, FieldEnergyGrowsFromSeededPerturbation) {
  TwoStreamParams p;
  p.u_drift = 0.2;
  HwContext hw;
  auto sim = MakeTwoStreamSimulation(hw, p);
  ASSERT_EQ(sim->num_species(), 2);
  sim->Run(5);
  const double fe_early = FieldEnergy(sim->fields());
  ASSERT_GT(fe_early, 0.0);  // the perturbation seeds a finite field
  sim->Run(75);
  const double fe_late = FieldEnergy(sim->fields());
  // The instability must amplify the seeded mode well beyond linear noise
  // growth; the textbook rate ~omega_p/(2*sqrt(2)) gives orders of magnitude
  // over this window. Require a conservative 10x in energy.
  EXPECT_GT(fe_late, 10.0 * fe_early);
  // Energy bookkeeping stays sane: field energy remains below the beams'
  // kinetic energy reservoir.
  EXPECT_LT(fe_late, TotalKineticEnergy(*sim));
}

TEST(MultiSpecies, PerSpeciesEngineOverride) {
  // Ions get a no-sort hybrid engine while electrons keep the full MatrixPIC
  // pipeline: each block must run its own engine configuration.
  UniformWorkloadParams p = ElectronProtonBox(0.01);
  p.species.clear();
  UniformSpeciesParams electrons;
  UniformSpeciesParams ions;
  ions.species = Species::Proton();
  ions.variant = DepositVariant::kHybridNoSort;
  p.species_params = {electrons, ions};

  HwContext hw;
  auto sim = MakeUniformSimulation(hw, p);
  ASSERT_EQ(sim->num_species(), 2);
  EXPECT_EQ(sim->block(0).engine.config().variant, DepositVariant::kFullOpt);
  EXPECT_EQ(sim->block(1).engine.config().variant, DepositVariant::kHybridNoSort);
  // A variant-only override inherits the workload's shape order.
  EXPECT_EQ(sim->block(1).engine.config().order, p.order);

  const int64_t n0 = sim->block(0).tiles.TotalLive();
  const int64_t n1 = sim->block(1).tiles.TotalLive();
  sim->Run(3);
  EXPECT_EQ(sim->block(0).tiles.TotalLive(), n0);
  EXPECT_EQ(sim->block(1).tiles.TotalLive(), n1);
  // The sorting electron engine paid its initial global sort; the no-sort ion
  // engine never sorts.
  EXPECT_GE(sim->block(0).engine.total_global_sorts(), 1);
  EXPECT_EQ(sim->block(1).engine.total_global_sorts(), 0);
  for (double v : sim->fields().ez.vec()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(MultiSpecies, PerSpeciesOrderOverride) {
  // A QSP (order 3) species next to a CIC (order 1) species: gather/push and
  // deposit must both use the per-block order.
  UniformWorkloadParams p = ElectronProtonBox(0.01);
  p.species.clear();
  UniformSpeciesParams electrons;
  UniformSpeciesParams ions;
  ions.species = Species::Proton();
  ions.order = 3;
  p.species_params = {electrons, ions};

  HwContext hw;
  auto sim = MakeUniformSimulation(hw, p);
  EXPECT_EQ(sim->block(0).engine.config().order, 1);
  EXPECT_EQ(sim->block(1).engine.config().order, 3);
  // An order-only override inherits the workload's variant.
  EXPECT_EQ(sim->block(1).engine.config().variant, DepositVariant::kFullOpt);
  sim->Run(3);
  EXPECT_EQ(sim->step_count(), 3);
  for (double v : sim->fields().ez.vec()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(TwoStream, VariantsAgreeWithTwoSpecies) {
  TwoStreamParams pa, pb;
  pa.variant = DepositVariant::kBaseline;
  pb.variant = DepositVariant::kFullOpt;
  HwContext hw_a, hw_b;
  auto a = MakeTwoStreamSimulation(hw_a, pa);
  auto b = MakeTwoStreamSimulation(hw_b, pb);
  a->Run(10);
  b->Run(10);
  // Tolerance floor scales with the field magnitude: nodes where one variant
  // cancels to ~0 must not demand bit-equality from the other's FP ordering.
  double scale = 0.0;
  for (double v : a->fields().ez.vec()) {
    scale = std::max(scale, std::fabs(v));
  }
  ASSERT_GT(scale, 0.0);
  for (size_t i = 0; i < a->fields().ez.vec().size(); ++i) {
    ASSERT_NEAR(b->fields().ez.vec()[i], a->fields().ez.vec()[i], scale * 1e-8)
        << i;
  }
}

}  // namespace
}  // namespace mpic

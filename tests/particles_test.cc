#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/rng.h"
#include "src/particles/injector.h"
#include "src/particles/particle_tile.h"
#include "src/particles/species.h"
#include "src/particles/tile_set.h"

namespace mpic {
namespace {

GridGeometry SmallGeom() {
  GridGeometry g;
  g.nx = g.ny = g.nz = 8;
  g.dx = g.dy = g.dz = 1.0;
  return g;
}

TEST(ParticleSoA, AppendSetGet) {
  ParticleSoA soa;
  Particle p;
  p.x = 1.0;
  p.uy = -2.0;
  p.w = 3.0;
  const int32_t id = soa.Append(p);
  EXPECT_EQ(id, 0);
  const Particle q = soa.Get(0);
  EXPECT_DOUBLE_EQ(q.x, 1.0);
  EXPECT_DOUBLE_EQ(q.uy, -2.0);
  EXPECT_DOUBLE_EQ(q.w, 3.0);
  p.x = 9.0;
  soa.Set(0, p);
  EXPECT_DOUBLE_EQ(soa.x[0], 9.0);
}

TEST(ParticleTile, CellBoxQueries) {
  ParticleTile tile(2, 2, 2, 4, 4, 4);
  EXPECT_TRUE(tile.ContainsCell(2, 2, 2));
  EXPECT_TRUE(tile.ContainsCell(5, 5, 5));
  EXPECT_FALSE(tile.ContainsCell(6, 5, 5));
  EXPECT_FALSE(tile.ContainsCell(1, 2, 2));
  EXPECT_EQ(tile.LocalCellId(2, 2, 2), 0);
  EXPECT_EQ(tile.LocalCellId(3, 2, 2), 1);
  EXPECT_EQ(tile.LocalCellId(2, 3, 2), 4);
  int ix, iy, iz;
  tile.LocalCellToGlobal(tile.LocalCellId(4, 3, 5), &ix, &iy, &iz);
  EXPECT_EQ(ix, 4);
  EXPECT_EQ(iy, 3);
  EXPECT_EQ(iz, 5);
}

TEST(ParticleTile, FreeListRecyclesSlots) {
  ParticleTile tile(0, 0, 0, 2, 2, 2);
  Particle p;
  const int32_t a = tile.AddParticle(p);
  const int32_t b = tile.AddParticle(p);
  EXPECT_EQ(tile.num_live(), 2);
  tile.RemoveParticle(a);
  EXPECT_EQ(tile.num_live(), 1);
  EXPECT_FALSE(tile.IsLive(a));
  const int32_t c = tile.AddParticle(p);
  EXPECT_EQ(c, a);  // recycled
  EXPECT_EQ(tile.num_slots(), 2);
  EXPECT_TRUE(tile.IsLive(c));
  (void)b;
}

TEST(ParticleTile, DoubleRemoveAborts) {
  ParticleTile tile(0, 0, 0, 1, 1, 1);
  const int32_t a = tile.AddParticle(Particle{});
  tile.RemoveParticle(a);
  EXPECT_DEATH(tile.RemoveParticle(a), "double remove");
}

TEST(ParticleTile, BuildGpmaBinsLiveParticles) {
  const GridGeometry g = SmallGeom();
  ParticleTile tile(0, 0, 0, 4, 4, 4);
  Particle p;
  p.x = p.y = p.z = 0.5;
  tile.AddParticle(p);
  p.x = 1.5;
  const int32_t b = tile.AddParticle(p);
  p.x = 0.6;
  tile.AddParticle(p);
  tile.RemoveParticle(b);
  tile.BuildGpma(g, GpmaConfig{});
  tile.gpma().CheckInvariants();
  EXPECT_EQ(tile.gpma().num_particles(), 2);
  EXPECT_EQ(tile.gpma().BinLen(tile.LocalCellId(0, 0, 0)), 2);
  EXPECT_EQ(tile.gpma().BinLen(tile.LocalCellId(1, 0, 0)), 0);
}

TEST(ParticleTile, GlobalSortCompactsInCellOrder) {
  const GridGeometry g = SmallGeom();
  ParticleTile tile(0, 0, 0, 4, 4, 4);
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    Particle p;
    p.x = rng.Uniform(0.0, 4.0);
    p.y = rng.Uniform(0.0, 4.0);
    p.z = rng.Uniform(0.0, 4.0);
    p.w = i;  // track identity through the sort
    tile.AddParticle(p);
  }
  // Punch holes.
  tile.RemoveParticle(10);
  tile.RemoveParticle(50);
  tile.GlobalSortTile(g, GpmaConfig{});
  tile.gpma().CheckInvariants();
  EXPECT_EQ(tile.num_live(), 98);
  EXPECT_EQ(tile.num_slots(), 98);  // holes gone
  // Slots are now in nondecreasing cell order.
  int prev = -1;
  for (int32_t pid = 0; pid < tile.num_slots(); ++pid) {
    const int cell = tile.CellOfParticle(g, pid);
    EXPECT_GE(cell, prev);
    prev = cell;
    EXPECT_EQ(tile.gpma().CellOf(pid), cell);
  }
}

TEST(TileSet, DecomposesWithRaggedEdge) {
  GridGeometry g = SmallGeom();
  g.nx = 10;  // not divisible by tile size 4
  TileSet tiles(g, 4, 4, 4);
  EXPECT_EQ(tiles.num_tiles(), 3 * 2 * 2);
  // The last x tile is 2 cells wide.
  const ParticleTile& edge = tiles.tile(2);
  EXPECT_EQ(edge.lo_x(), 8);
  EXPECT_EQ(edge.nx(), 2);
}

TEST(TileSet, RoutesParticlesToOwningTile) {
  const GridGeometry g = SmallGeom();
  TileSet tiles(g, 4, 4, 4);
  Particle p;
  p.x = 5.5;
  p.y = 1.0;
  p.z = 7.2;
  const auto h = tiles.AddParticle(p);
  EXPECT_EQ(h.tile, tiles.TileOfCell(5, 1, 7));
  EXPECT_TRUE(tiles.tile(h.tile).ContainsCell(5, 1, 7));
  EXPECT_EQ(tiles.TotalLive(), 1);
}

TEST(TileSet, TileOfPositionMatchesTileOfCell) {
  const GridGeometry g = SmallGeom();
  TileSet tiles(g, 2, 4, 8);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform(0.0, 8.0);
    const double y = rng.Uniform(0.0, 8.0);
    const double z = rng.Uniform(0.0, 8.0);
    EXPECT_EQ(tiles.TileOfPosition(x, y, z),
              tiles.TileOfCell(g.CellX(x), g.CellY(y), g.CellZ(z)));
  }
}

TEST(Injector, UniformPlasmaCountAndWeights) {
  const GridGeometry g = SmallGeom();
  TileSet tiles(g, 4, 4, 4);
  UniformPlasmaConfig cfg;
  cfg.ppc_x = 2;
  cfg.ppc_y = 2;
  cfg.ppc_z = 1;
  cfg.density = 1e20;
  cfg.u_th = 0.0;
  const int64_t added = InjectUniformPlasma(tiles, cfg);
  EXPECT_EQ(added, g.NumCells() * 4);
  EXPECT_EQ(tiles.TotalLive(), added);
  // Total physical particles = density * volume.
  double total_weight = 0.0;
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    const auto& soa = tiles.tile(t).soa();
    for (double w : soa.w) {
      total_weight += w;
    }
  }
  const double volume = g.LengthX() * g.LengthY() * g.LengthZ();
  EXPECT_NEAR(total_weight, 1e20 * volume, 1e20 * volume * 1e-12);
}

TEST(Injector, UniformPlasmaLatticePositionsInsideCells) {
  const GridGeometry g = SmallGeom();
  TileSet tiles(g, 8, 8, 8);
  UniformPlasmaConfig cfg;
  cfg.ppc_x = cfg.ppc_y = cfg.ppc_z = 2;
  cfg.u_th = 0.0;
  InjectUniformPlasma(tiles, cfg);
  const auto& soa = tiles.tile(0).soa();
  for (size_t i = 0; i < soa.size(); ++i) {
    EXPECT_TRUE(g.InDomain(soa.x[i], soa.y[i], soa.z[i]));
  }
}

TEST(Injector, ThermalSpreadMatchesUth) {
  const GridGeometry g = SmallGeom();
  TileSet tiles(g, 8, 8, 8);
  UniformPlasmaConfig cfg;
  cfg.ppc_x = cfg.ppc_y = cfg.ppc_z = 4;
  cfg.u_th = 0.01;
  InjectUniformPlasma(tiles, cfg);
  double sum = 0.0, sum2 = 0.0;
  int64_t n = 0;
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    const auto& soa = tiles.tile(t).soa();
    for (double ux : soa.ux) {
      sum += ux;
      sum2 += ux * ux;
      ++n;
    }
  }
  const double mean = sum / static_cast<double>(n);
  const double var = sum2 / static_cast<double>(n) - mean * mean;
  const double expected = 0.01 * kSpeedOfLight;
  EXPECT_NEAR(std::sqrt(var), expected, expected * 0.05);
}

TEST(Injector, ProfiledPlasmaRespectsProfileAndSlab) {
  const GridGeometry g = SmallGeom();
  TileSet tiles(g, 4, 4, 4);
  ProfiledPlasmaConfig cfg;
  cfg.ppc_x = cfg.ppc_y = cfg.ppc_z = 1;
  cfg.profile = [](double z) { return z < 4.0 ? 0.0 : 1e20; };
  cfg.z_cell_lo = 2;
  cfg.z_cell_hi = 6;
  std::vector<TileSet::Handle> handles;
  const int64_t added = InjectProfiledPlasma(tiles, cfg, &handles);
  // Cells with z-center >= 4 within [2,6) are iz = 4, 5 -> 2 planes.
  EXPECT_EQ(added, 2 * g.nx * g.ny);
  EXPECT_EQ(static_cast<int64_t>(handles.size()), added);
  for (const auto& h : handles) {
    const auto& soa = tiles.tile(h.tile).soa();
    EXPECT_GE(soa.z[static_cast<size_t>(h.pid)], 4.0);
    EXPECT_LT(soa.z[static_cast<size_t>(h.pid)], 6.0);
  }
}

TEST(Species, Presets) {
  const Species e = Species::Electron();
  EXPECT_LT(e.charge, 0.0);
  const Species p = Species::Proton();
  EXPECT_GT(p.charge, 0.0);
  EXPECT_GT(p.mass, e.mass);
}

}  // namespace
}  // namespace mpic

#include <gtest/gtest.h>

#include <cmath>

#include "src/grid/field_array.h"
#include "src/grid/field_set.h"
#include "src/grid/grid_geometry.h"

namespace mpic {
namespace {

TEST(GridGeometry, CellMapping) {
  GridGeometry g;
  g.nx = 8;
  g.ny = 4;
  g.nz = 2;
  g.dx = 0.5;
  g.dy = 0.25;
  g.dz = 1.0;
  g.x0 = 10.0;
  EXPECT_EQ(g.CellX(10.74), 1);
  EXPECT_EQ(g.CellX(10.0), 0);
  EXPECT_EQ(g.CellY(0.26), 1);
  EXPECT_EQ(g.NumCells(), 64);
  EXPECT_DOUBLE_EQ(g.LengthX(), 4.0);
}

TEST(GridGeometry, CellIdLinearization) {
  GridGeometry g;
  g.nx = 4;
  g.ny = 3;
  g.nz = 2;
  EXPECT_EQ(g.CellId(0, 0, 0), 0);
  EXPECT_EQ(g.CellId(3, 0, 0), 3);
  EXPECT_EQ(g.CellId(0, 1, 0), 4);
  EXPECT_EQ(g.CellId(0, 0, 1), 12);
  EXPECT_EQ(g.CellId(3, 2, 1), 23);
}

TEST(GridGeometry, WrapPeriodic) {
  GridGeometry g;
  g.nx = 10;
  g.dx = 1.0;
  g.x0 = 0.0;
  EXPECT_DOUBLE_EQ(g.WrapX(10.5), 0.5);
  EXPECT_DOUBLE_EQ(g.WrapX(-0.5), 9.5);
  EXPECT_DOUBLE_EQ(g.WrapX(3.0), 3.0);
  EXPECT_DOUBLE_EQ(g.WrapX(23.25), 3.25);
}

TEST(GridGeometry, InDomain) {
  GridGeometry g;
  g.nx = g.ny = g.nz = 4;
  g.dx = g.dy = g.dz = 1.0;
  EXPECT_TRUE(g.InDomain(0.0, 0.0, 0.0));
  EXPECT_TRUE(g.InDomain(3.999, 3.999, 3.999));
  EXPECT_FALSE(g.InDomain(4.0, 0.0, 0.0));
  EXPECT_FALSE(g.InDomain(0.0, -0.001, 0.0));
}

TEST(FieldArray, IndexingAndGuards) {
  FieldArray f(4, 4, 4, 2);
  EXPECT_EQ(f.sx(), 4 + 1 + 4);
  f.At(-2, -2, -2) = 1.0;
  f.At(6, 6, 6) = 2.0;
  f.At(0, 0, 0) = 3.0;
  EXPECT_DOUBLE_EQ(f.data()[0], 1.0);
  EXPECT_DOUBLE_EQ(f.At(6, 6, 6), 2.0);
  EXPECT_DOUBLE_EQ(f.At(0, 0, 0), 3.0);
}

TEST(FieldArray, FoldGuardsPeriodicConservesSum) {
  FieldArray f(4, 4, 4, 2);
  // Deposit something into guards and duplicated boundary nodes.
  f.At(-1, 0, 0) = 2.0;   // image of node 3
  f.At(4, 1, 1) = 5.0;    // image of node 0
  f.At(5, 2, 2) = 7.0;    // image of node 1
  f.At(2, 2, 2) = 1.0;    // interior
  f.FoldGuardsPeriodic();
  EXPECT_DOUBLE_EQ(f.At(3, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(f.At(0, 1, 1), 5.0);
  EXPECT_DOUBLE_EQ(f.At(1, 2, 2), 7.0);
  EXPECT_DOUBLE_EQ(f.At(2, 2, 2), 1.0);
  EXPECT_DOUBLE_EQ(f.InteriorSumUnique(), 15.0);
}

TEST(FieldArray, FoldThenGuardsMirrorInterior) {
  FieldArray f(4, 4, 4, 2);
  f.At(4, 0, 0) = 1.5;
  f.FoldGuardsPeriodic();
  // After folding, the duplicated node 4 must mirror node 0 again.
  EXPECT_DOUBLE_EQ(f.At(4, 0, 0), f.At(0, 0, 0));
  EXPECT_DOUBLE_EQ(f.At(0, 0, 0), 1.5);
}

TEST(FieldArray, FillGuardsPeriodic) {
  FieldArray f(4, 4, 4, 2);
  f.At(0, 0, 0) = 9.0;
  f.At(3, 3, 3) = 4.0;
  f.FillGuardsPeriodic();
  EXPECT_DOUBLE_EQ(f.At(4, 4, 4), 9.0);   // node n == node 0
  EXPECT_DOUBLE_EQ(f.At(-1, -1, -1), 4.0);
  EXPECT_DOUBLE_EQ(f.At(4, 0, 0), 9.0);
}

TEST(FieldArray, FillAndSum) {
  FieldArray f(2, 2, 2, 1);
  f.Fill(0.5);
  EXPECT_DOUBLE_EQ(f.InteriorSumUnique(), 0.5 * 8);
}

TEST(FieldSet, ZeroCurrents) {
  GridGeometry g;
  g.nx = g.ny = g.nz = 2;
  FieldSet fields(g, 2);
  fields.jx.Fill(1.0);
  fields.jy.Fill(2.0);
  fields.jz.Fill(3.0);
  fields.ex.Fill(4.0);
  fields.ZeroCurrents();
  EXPECT_DOUBLE_EQ(fields.jx.At(0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(fields.jy.At(1, 1, 1), 0.0);
  EXPECT_DOUBLE_EQ(fields.jz.At(0, 1, 0), 0.0);
  EXPECT_DOUBLE_EQ(fields.ex.At(0, 0, 0), 4.0);  // E untouched
}

}  // namespace
}  // namespace mpic

// Fused step-pipeline tests: the two-pass fused schedule must be bit-identical
// to the legacy sweep-per-stage schedule on every workload, variant, order,
// species count, and core/thread count; the halo-disjoint reduction coloring
// must be a valid schedule; and the modeled ledger must be deterministic
// across runs now that every modeled array (including the gather scratch) is
// registered with the address map.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/core/simulation.h"
#include "src/core/workloads.h"
#include "src/deposit/rhocell.h"
#include "src/hw/parallel_for.h"

namespace mpic {
namespace {

void UseManyThreads() {
#ifdef _OPENMP
  omp_set_num_threads(4);
#endif
}

void ExpectFieldsBitIdentical(const FieldSet& a, const FieldSet& b) {
  auto cmp = [](const FieldArray& fa, const FieldArray& fb, const char* name) {
    ASSERT_EQ(fa.vec().size(), fb.vec().size()) << name;
    EXPECT_EQ(std::memcmp(fa.vec().data(), fb.vec().data(),
                          fa.vec().size() * sizeof(double)),
              0)
        << name << " differs bitwise";
  };
  cmp(a.ex, b.ex, "ex");
  cmp(a.ey, b.ey, "ey");
  cmp(a.ez, b.ez, "ez");
  cmp(a.bx, b.bx, "bx");
  cmp(a.by, b.by, "by");
  cmp(a.bz, b.bz, "bz");
  cmp(a.jx, b.jx, "jx");
  cmp(a.jy, b.jy, "jy");
  cmp(a.jz, b.jz, "jz");
}

void ExpectParticlesBitIdentical(const TileSet& a, const TileSet& b) {
  ASSERT_EQ(a.num_tiles(), b.num_tiles());
  for (int t = 0; t < a.num_tiles(); ++t) {
    const ParticleTile& ta = a.tile(t);
    const ParticleTile& tb = b.tile(t);
    ASSERT_EQ(ta.num_slots(), tb.num_slots()) << "tile " << t;
    ASSERT_EQ(ta.num_live(), tb.num_live()) << "tile " << t;
    const ParticleSoA& sa = ta.soa();
    const ParticleSoA& sb = tb.soa();
    for (int32_t pid = 0; pid < ta.num_slots(); ++pid) {
      ASSERT_EQ(ta.IsLive(pid), tb.IsLive(pid)) << "tile " << t << " pid " << pid;
      if (!ta.IsLive(pid)) {
        continue;
      }
      const auto i = static_cast<size_t>(pid);
      EXPECT_EQ(sa.x[i], sb.x[i]);
      EXPECT_EQ(sa.y[i], sb.y[i]);
      EXPECT_EQ(sa.z[i], sb.z[i]);
      EXPECT_EQ(sa.ux[i], sb.ux[i]);
      EXPECT_EQ(sa.uy[i], sb.uy[i]);
      EXPECT_EQ(sa.uz[i], sb.uz[i]);
      EXPECT_EQ(sa.w[i], sb.w[i]);
    }
  }
}

void ExpectSimsBitIdentical(Simulation& a, Simulation& b) {
  ExpectFieldsBitIdentical(a.fields(), b.fields());
  ASSERT_EQ(a.num_species(), b.num_species());
  for (int sid = 0; sid < a.num_species(); ++sid) {
    ExpectParticlesBitIdentical(a.block(sid).tiles, b.block(sid).tiles);
  }
}

// ---- Fused vs. legacy bit identity -----------------------------------------

class FusedVsLegacyCores : public ::testing::TestWithParam<int> {};

TEST_P(FusedVsLegacyCores, UniformEveryVariantAndOrder) {
  UseManyThreads();
  struct Combo {
    DepositVariant variant;
    int order;
  };
  std::vector<Combo> combos;
  for (DepositVariant v :
       {DepositVariant::kScalar, DepositVariant::kBaseline,
        DepositVariant::kBaselineIncrSort, DepositVariant::kRhocell,
        DepositVariant::kRhocellIncrSort, DepositVariant::kRhocellIncrSortVpu,
        DepositVariant::kMatrixOnly, DepositVariant::kHybridNoSort,
        DepositVariant::kHybridGlobalSort, DepositVariant::kFullOpt}) {
    const VariantTraits traits = TraitsOf(v);
    for (int order : {1, 2, 3}) {
      if (order == 2 && (traits.uses_rhocell || traits.uses_mpu)) {
        continue;  // rhocell/MPU kernels are odd-order only
      }
      combos.push_back({v, order});
    }
  }
  for (const Combo& c : combos) {
    SCOPED_TRACE(std::string(VariantName(c.variant)) + " order " +
                 std::to_string(c.order));
    UniformWorkloadParams p;
    p.nx = p.ny = p.nz = 8;
    p.ppc_x = p.ppc_y = p.ppc_z = 2;
    p.tile = 4;
    p.variant = c.variant;
    p.order = c.order;

    p.fuse_stages = true;
    HwContext fused_hw(MachineConfig::Lx2MultiCore(GetParam()));
    auto fused = MakeUniformSimulation(fused_hw, p);
    fused->Run(4);

    p.fuse_stages = false;
    HwContext legacy_hw(MachineConfig::Lx2MultiCore(GetParam()));
    auto legacy = MakeUniformSimulation(legacy_hw, p);
    legacy->Run(4);

    ExpectSimsBitIdentical(*fused, *legacy);
    // The schedules execute the same work: instruction counters match too.
    EXPECT_EQ(fused_hw.ledger().counters().mopas,
              legacy_hw.ledger().counters().mopas);
    EXPECT_EQ(fused_hw.ledger().counters().scatters,
              legacy_hw.ledger().counters().scatters);
  }
}

TEST_P(FusedVsLegacyCores, TwoStream) {
  UseManyThreads();
  TwoStreamParams p;
  p.variant = DepositVariant::kFullOpt;

  p.fuse_stages = true;
  HwContext fused_hw(MachineConfig::Lx2MultiCore(GetParam()));
  auto fused = MakeTwoStreamSimulation(fused_hw, p);
  fused->Run(5);

  p.fuse_stages = false;
  HwContext legacy_hw(MachineConfig::Lx2MultiCore(GetParam()));
  auto legacy = MakeTwoStreamSimulation(legacy_hw, p);
  legacy->Run(5);

  ExpectSimsBitIdentical(*fused, *legacy);
}

TEST_P(FusedVsLegacyCores, LwfaMovingWindowWithIons) {
  UseManyThreads();
  LwfaWorkloadParams p;
  p.nx = p.ny = 8;
  p.nz = 32;
  p.tile = 4;
  p.tile_z = 8;
  p.variant = DepositVariant::kFullOpt;
  p.with_ions = true;

  p.fuse_stages = true;
  HwContext fused_hw(MachineConfig::Lx2MultiCore(GetParam()));
  auto fused = MakeLwfaSimulation(fused_hw, p);
  fused->Run(8);

  p.fuse_stages = false;
  HwContext legacy_hw(MachineConfig::Lx2MultiCore(GetParam()));
  auto legacy = MakeLwfaSimulation(legacy_hw, p);
  legacy->Run(8);

  ExpectSimsBitIdentical(*fused, *legacy);
}

TEST_P(FusedVsLegacyCores, MultiSpeciesMixedEngineOverrides) {
  UseManyThreads();
  // Electrons on the full MPU pipeline at CIC; heavy ions on the unsorted
  // hybrid at QSP — exercises per-species order dispatch in both schedules.
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.tile = 4;
  UniformSpeciesParams electrons;
  electrons.species = Species::Electron();
  electrons.ppc_x = electrons.ppc_y = electrons.ppc_z = 2;
  UniformSpeciesParams ions;
  ions.species = Species::Proton();
  ions.ppc_x = ions.ppc_y = ions.ppc_z = 1;
  ions.variant = DepositVariant::kHybridNoSort;
  ions.order = 3;
  p.species_params = {electrons, ions};

  p.fuse_stages = true;
  HwContext fused_hw(MachineConfig::Lx2MultiCore(GetParam()));
  auto fused = MakeUniformSimulation(fused_hw, p);
  fused->Run(5);

  p.fuse_stages = false;
  HwContext legacy_hw(MachineConfig::Lx2MultiCore(GetParam()));
  auto legacy = MakeUniformSimulation(legacy_hw, p);
  legacy->Run(5);

  ExpectSimsBitIdentical(*fused, *legacy);
  ASSERT_EQ(fused->last_sim_stats().species.size(), 2u);
  EXPECT_EQ(fused->last_sim_stats().species[0].pushed,
            legacy->last_sim_stats().species[0].pushed);
  EXPECT_EQ(fused->last_sim_stats().species[1].pushed,
            legacy->last_sim_stats().species[1].pushed);
}

TEST_P(FusedVsLegacyCores, EsirkepovUniformEveryOrder) {
  UseManyThreads();
  // The charge-conserving scheme runs the same per-tile stages through both
  // orchestrations: capture, push, wrap (with old-lane shift), scan, staged
  // deposit into the per-tile TileCurrent, colored reduce. Bit identity must
  // hold on every order, including TSC (order 2), which only this scheme
  // supports on the kFullOpt machinery.
  for (int order : {1, 2, 3}) {
    SCOPED_TRACE(order);
    UniformWorkloadParams p;
    p.nx = p.ny = p.nz = 8;
    p.ppc_x = p.ppc_y = p.ppc_z = 2;
    p.tile = 4;
    p.variant = DepositVariant::kFullOpt;
    p.order = order;
    p.scheme = CurrentScheme::kEsirkepov;

    p.fuse_stages = true;
    HwContext fused_hw(MachineConfig::Lx2MultiCore(GetParam()));
    auto fused = MakeUniformSimulation(fused_hw, p);
    fused->Run(4);

    p.fuse_stages = false;
    HwContext legacy_hw(MachineConfig::Lx2MultiCore(GetParam()));
    auto legacy = MakeUniformSimulation(legacy_hw, p);
    legacy->Run(4);

    ExpectSimsBitIdentical(*fused, *legacy);
  }
}

TEST_P(FusedVsLegacyCores, EsirkepovLwfaMovingWindowWithIons) {
  UseManyThreads();
  // Moving window + Esirkepov: window drops remove charge mid-step and the
  // tile-parallel injection adds it back after the deposit — the old-position
  // lanes must survive both, and the two schedules must still agree bitwise.
  LwfaWorkloadParams p;
  p.nx = p.ny = 8;
  p.nz = 32;
  p.tile = 4;
  p.tile_z = 8;
  p.variant = DepositVariant::kFullOpt;
  p.scheme = CurrentScheme::kEsirkepov;
  p.with_ions = true;

  p.fuse_stages = true;
  HwContext fused_hw(MachineConfig::Lx2MultiCore(GetParam()));
  auto fused = MakeLwfaSimulation(fused_hw, p);
  fused->Run(8);

  p.fuse_stages = false;
  HwContext legacy_hw(MachineConfig::Lx2MultiCore(GetParam()));
  auto legacy = MakeLwfaSimulation(legacy_hw, p);
  legacy->Run(8);

  ExpectSimsBitIdentical(*fused, *legacy);
}

INSTANTIATE_TEST_SUITE_P(Cores, FusedVsLegacyCores, ::testing::Values(1, 2, 4));

// Esirkepov across core counts: the colored reduce of the per-tile J scratch
// (wider halo than rhocell) must be schedule-independent on its own.
TEST(FusedPipeline, EsirkepovBitIdenticalAcrossCoreCounts) {
  UseManyThreads();
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 2;
  p.tile = 4;
  p.order = 3;
  p.variant = DepositVariant::kFullOpt;
  p.scheme = CurrentScheme::kEsirkepov;

  HwContext serial_hw;
  auto serial = MakeUniformSimulation(serial_hw, p);
  serial->Run(5);
  for (int cores : {2, 3, 4}) {
    SCOPED_TRACE(cores);
    HwContext par_hw(MachineConfig::Lx2MultiCore(cores));
    auto parallel = MakeUniformSimulation(par_hw, p);
    parallel->Run(5);
    ExpectSimsBitIdentical(*serial, *parallel);
  }
}

// The fused schedule must also be bit-stable across core counts on its own
// (the legacy path's cross-core determinism is pinned by threading_test).
TEST(FusedPipeline, BitIdenticalAcrossCoreCounts) {
  UseManyThreads();
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 2;
  p.tile = 4;
  p.variant = DepositVariant::kFullOpt;

  HwContext serial_hw;
  auto serial = MakeUniformSimulation(serial_hw, p);
  serial->Run(5);
  for (int cores : {2, 3, 4}) {
    SCOPED_TRACE(cores);
    HwContext par_hw(MachineConfig::Lx2MultiCore(cores));
    auto parallel = MakeUniformSimulation(par_hw, p);
    parallel->Run(5);
    ExpectSimsBitIdentical(*serial, *parallel);
  }
}

// ---- Colored reduction schedule --------------------------------------------

// Node-footprint overlap of two tiles: each writes nodes
// [lo - h, lo + extent + h] per axis during the rhocell reduction.
bool FootprintsOverlap(const ParticleTile& a, const ParticleTile& b, int h) {
  auto axis = [h](int lo1, int n1, int lo2, int n2) {
    return lo1 + n1 + h >= lo2 - h && lo2 + n2 + h >= lo1 - h;
  };
  return axis(a.lo_x(), a.nx(), b.lo_x(), b.nx()) &&
         axis(a.lo_y(), a.ny(), b.lo_y(), b.ny()) &&
         axis(a.lo_z(), a.nz(), b.lo_z(), b.nz());
}

void ExpectValidColoring(const TileSet& tiles, int halo) {
  const auto classes = tiles.HaloDisjointColoring(halo);
  std::vector<int> seen(static_cast<size_t>(tiles.num_tiles()), 0);
  for (const std::vector<int>& cls : classes) {
    int prev = -1;
    for (int t : cls) {
      ASSERT_GE(t, 0);
      ASSERT_LT(t, tiles.num_tiles());
      EXPECT_GT(t, prev) << "class not in ascending tile order";
      prev = t;
      ++seen[static_cast<size_t>(t)];
    }
    for (size_t i = 0; i < cls.size(); ++i) {
      for (size_t j = i + 1; j < cls.size(); ++j) {
        EXPECT_FALSE(FootprintsOverlap(tiles.tile(cls[i]), tiles.tile(cls[j]), halo))
            << "tiles " << cls[i] << " and " << cls[j]
            << " share nodes within one color";
      }
    }
  }
  for (int t = 0; t < tiles.num_tiles(); ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], 1) << "tile " << t;
  }
}

GridGeometry MakeGeom(int nx, int ny, int nz) {
  GridGeometry g;
  g.nx = nx;
  g.ny = ny;
  g.nz = nz;
  g.dx = g.dy = g.dz = 1.0e-6;
  return g;
}

TEST(ReduceColoring, CheckerboardIsHaloDisjoint) {
  // Halo 0/1 are the rhocell reaches (CIC/QSP); 2 is the Esirkepov union
  // window's reach at orders 2-3 (EsirkepovHaloNodes).
  for (int halo : {0, 1, 2}) {
    SCOPED_TRACE(halo);
    TileSet cubic(MakeGeom(16, 16, 16), 4, 4, 4);
    ExpectValidColoring(cubic, halo);
    TileSet ragged(MakeGeom(10, 6, 16), 4, 4, 8);  // ragged edge tiles
    ExpectValidColoring(ragged, halo);
    TileSet slab(MakeGeom(8, 8, 64), 8, 8, 8);  // single tile in x/y
    ExpectValidColoring(slab, halo);
  }
}

TEST(ReduceColoring, ThinTilesFallBackToSerialAxis) {
  // Tile extent 2 <= 2 * halo for QSP: parity cannot separate tiles two apart
  // along z, so that axis degrades to one color per coordinate.
  TileSet thin(MakeGeom(8, 8, 8), 8, 8, 2);
  ExpectValidColoring(thin, 1);
  // Parity would give at most 2 z-colors; the fallback needs 4.
  EXPECT_EQ(thin.HaloDisjointColoring(1).size(), 4u);
  // CIC (halo 0) still gets the cheap checkerboard on the same tiling.
  EXPECT_EQ(thin.HaloDisjointColoring(0).size(), 2u);
}

TEST(ReduceColoring, SingleTileIsOneClass) {
  TileSet one(MakeGeom(8, 8, 8), 8, 8, 8);
  const auto classes = one.HaloDisjointColoring(1);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], std::vector<int>({0}));
}

// The colored parallel reduction must agree bitwise with the serial
// color-major sweep — pinned end-to-end by running the same fused workload at
// 1 and 4 cores with a QSP rhocell variant (halo 1, eight color classes).
TEST(ReduceColoring, ColoredReduceMatchesSerialReduceBitwise) {
  UseManyThreads();
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 12;
  p.ppc_x = p.ppc_y = p.ppc_z = 2;
  p.tile = 4;
  p.order = 3;
  p.variant = DepositVariant::kRhocellIncrSortVpu;

  HwContext serial_hw;
  auto serial = MakeUniformSimulation(serial_hw, p);
  serial->Run(3);

  HwContext par_hw(MachineConfig::Lx2MultiCore(4));
  auto parallel = MakeUniformSimulation(par_hw, p);
  parallel->Run(3);

  ExpectSimsBitIdentical(*serial, *parallel);
}

// ---- Ledger determinism (registered gather scratch) -------------------------

// Two runs of the same configuration in one process must charge exactly the
// same cycles in every phase, even though the allocator hands the second run
// different host addresses. Before the gather scratch was registered with the
// MemMap, its identity-mapped addresses made the modeled cache behavior (and
// so total cycles) wobble by ~0.25% run to run.
TEST(LedgerDeterminism, RepeatedRunsChargeIdenticalCycles) {
  UseManyThreads();
  auto run = [](int cores, std::unique_ptr<std::vector<char>>* ballast) {
    UniformWorkloadParams p;
    p.nx = p.ny = p.nz = 8;
    p.ppc_x = p.ppc_y = p.ppc_z = 2;
    p.tile = 4;
    p.variant = DepositVariant::kFullOpt;
    HwContext hw(MachineConfig::Lx2MultiCore(cores));
    auto sim = MakeUniformSimulation(hw, p);
    sim->Run(4);
    // Shift the heap before the next run allocates, so identical cycle totals
    // cannot come from the allocator accidentally reusing the same addresses.
    *ballast = std::make_unique<std::vector<char>>(4097, 'x');
    return hw.ledger();
  };
  for (int cores : {1, 4}) {
    SCOPED_TRACE(cores);
    std::unique_ptr<std::vector<char>> ballast_a, ballast_b;
    const CostLedger a = run(cores, &ballast_a);
    const CostLedger b = run(cores, &ballast_b);
    for (int ph = 0; ph < kNumPhases; ++ph) {
      EXPECT_DOUBLE_EQ(a.PhaseCycles(static_cast<Phase>(ph)),
                       b.PhaseCycles(static_cast<Phase>(ph)))
          << PhaseName(static_cast<Phase>(ph));
    }
    EXPECT_EQ(a.counters().l1_misses, b.counters().l1_misses);
    EXPECT_EQ(a.counters().l2_misses, b.counters().l2_misses);
  }
}

// ---- Fused pipeline is modeled as cheaper -----------------------------------

TEST(FusedPipeline, ModeledCyclesBelowLegacySweeps) {
  UseManyThreads();
  auto total = [](bool fused, int cores) {
    UniformWorkloadParams p;
    p.nx = p.ny = p.nz = 16;
    p.ppc_x = p.ppc_y = p.ppc_z = 4;
    p.tile = 4;
    p.variant = DepositVariant::kFullOpt;
    p.fuse_stages = fused;
    HwContext hw(MachineConfig::Lx2MultiCore(cores));
    auto sim = MakeUniformSimulation(hw, p);
    sim->Run(3);
    return hw.ledger().TotalCycles();
  };
  for (int cores : {1, 4}) {
    SCOPED_TRACE(cores);
    EXPECT_LT(total(/*fused=*/true, cores), total(/*fused=*/false, cores));
  }
}

}  // namespace
}  // namespace mpic

// System-level physics validation: the PIC loop must produce textbook plasma
// behavior, independent of which deposition kernel variant runs. These tests
// exercise the full stack (inject -> gather -> push -> sort -> deposit ->
// solve) and pin quantitative physics, not just "no NaN".

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/stats.h"
#include "src/core/diagnostics.h"
#include "src/core/workloads.h"
#include "src/deposit/esirkepov.h"
#include "src/push/vay_pusher.h"

namespace mpic {
namespace {

// ---------------------------------------------------------------------------
// Langmuir (plasma) oscillation: a cold plasma with a small sinusoidal
// velocity perturbation along x oscillates at the plasma frequency
// omega_p = sqrt(n e^2 / (eps0 m)).
// ---------------------------------------------------------------------------

class LangmuirOscillation : public ::testing::TestWithParam<DepositVariant> {};

TEST_P(LangmuirOscillation, FrequencyMatchesOmegaP) {
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.tile = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 2;
  p.density = 1e25;
  p.u_th = 0.0;  // cold
  p.variant = GetParam();
  HwContext hw;
  auto sim = MakeUniformSimulation(hw, p);

  // Perturb: ux = v0 * sin(2 pi x / Lx).
  const GridGeometry& g = sim->tiles().geom();
  const double v0 = 1e-4 * kSpeedOfLight;
  for (int t = 0; t < sim->tiles().num_tiles(); ++t) {
    ParticleSoA& soa = sim->tiles().tile(t).soa();
    for (size_t i = 0; i < soa.size(); ++i) {
      soa.ux[i] = v0 * std::sin(2.0 * M_PI * soa.x[i] / g.LengthX());
    }
  }

  const double omega_p =
      std::sqrt(p.density * kElectronCharge * kElectronCharge /
                (kEpsilon0 * kElectronMass));
  // Track the field energy: it oscillates at 2*omega_p (E^2). Find the first
  // maximum: it occurs at a quarter period of the plasma oscillation.
  const int max_steps = 200;
  double prev = -1.0;
  int peak_step = -1;
  for (int s = 0; s < max_steps; ++s) {
    sim->Step();
    const double fe = FieldEnergy(sim->fields());
    if (fe < prev && peak_step < 0 && s > 2) {
      peak_step = s;  // first decrease: previous step was the peak
      break;
    }
    prev = fe;
  }
  ASSERT_GT(peak_step, 0) << "field energy never peaked";
  // Quarter period T/4 = (pi/2)/omega_p.
  const double t_peak = peak_step * sim->dt();
  const double expected = 0.5 * M_PI / omega_p;
  EXPECT_NEAR(t_peak, expected, 0.25 * expected)
      << "omega_p*dt = " << omega_p * sim->dt();
}

INSTANTIATE_TEST_SUITE_P(Variants, LangmuirOscillation,
                         ::testing::Values(DepositVariant::kBaseline,
                                           DepositVariant::kFullOpt));

// ---------------------------------------------------------------------------
// Gauss's law: with Esirkepov deposition, div E - rho/eps0 stays at its
// initial value (machine precision drift); with direct deposition it drifts.
// ---------------------------------------------------------------------------

double GaussResidualAfterRun(int steps) {
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.tile = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 2;
  p.u_th = 0.02;
  p.variant = DepositVariant::kBaseline;
  HwContext hw;
  auto sim = MakeUniformSimulation(hw, p);
  const GridGeometry& g = sim->tiles().geom();

  DepositParams dp;
  dp.geom = g;
  dp.charge = kElectronCharge;

  FieldArray rho0(g.nx, g.ny, g.nz, 2);
  for (int t = 0; t < sim->tiles().num_tiles(); ++t) {
    DepositCharge<1>(hw, sim->tiles().tile(t), dp, rho0);
  }
  rho0.FoldGuardsPeriodic();

  sim->Run(steps);

  FieldArray rho1(g.nx, g.ny, g.nz, 2);
  for (int t = 0; t < sim->tiles().num_tiles(); ++t) {
    DepositCharge<1>(hw, sim->tiles().tile(t), dp, rho1);
  }
  rho1.FoldGuardsPeriodic();

  // Change of the Gauss residual (div E - rho/eps0) from its initial value,
  // relative to the charge-density scale. Exact continuity keeps it at zero.
  double max_change = 0.0;
  double scale = 0.0;
  for (int k = 1; k < g.nz - 1; ++k) {
    for (int j = 1; j < g.ny - 1; ++j) {
      for (int i = 1; i < g.nx - 1; ++i) {
        const double div_e =
            (sim->fields().ex.At(i, j, k) - sim->fields().ex.At(i - 1, j, k)) /
                g.dx +
            (sim->fields().ey.At(i, j, k) - sim->fields().ey.At(i, j - 1, k)) /
                g.dy +
            (sim->fields().ez.At(i, j, k) - sim->fields().ez.At(i, j, k - 1)) /
                g.dz;
        const double res1 = div_e - rho1.At(i, j, k) / kEpsilon0;
        const double res0 = -rho0.At(i, j, k) / kEpsilon0;  // E starts at 0
        max_change = std::max(max_change, std::fabs(res1 - res0));
        scale = std::max(scale, std::fabs(rho0.At(i, j, k) / kEpsilon0));
      }
    }
  }
  return max_change / scale;
}

TEST(GaussLaw, DirectDepositionDrifts) {
  // Direct (non-charge-conserving) deposition violates continuity, so div E
  // drifts away from rho/eps0 over a few steps. This documents why the paper
  // lists Esirkepov support as future work.
  const double drift = GaussResidualAfterRun(10);
  EXPECT_GT(drift, 1e-6);
}

// ---------------------------------------------------------------------------
// Vay pusher
// ---------------------------------------------------------------------------

TEST(Vay, MatchesBorisInPureEField) {
  double bux = 0.0, buy = 0.0, buz = 0.0;
  double vux = 0.0, vuy = 0.0, vuz = 0.0;
  const double qdt2m = kElectronCharge * 1e-12 / (2.0 * kElectronMass);
  for (int i = 0; i < 50; ++i) {
    BorisStep(1e4, 2e3, -3e3, 0, 0, 0, qdt2m, &bux, &buy, &buz);
    VayStep(1e4, 2e3, -3e3, 0, 0, 0, qdt2m, &vux, &vuy, &vuz);
  }
  EXPECT_NEAR(bux, vux, std::fabs(bux) * 1e-9);
  EXPECT_NEAR(buy, vuy, std::fabs(buy) * 1e-9);
  EXPECT_NEAR(buz, vuz, std::fabs(buz) * 1e-9);
}

TEST(Vay, GyrationPreservesSpeed) {
  const double b = 0.01;
  const double u0 = 0.05 * kSpeedOfLight;
  const double gamma = std::sqrt(1.0 + (u0 / kSpeedOfLight) * (u0 / kSpeedOfLight));
  const double omega_c = std::fabs(kElectronCharge) * b / (gamma * kElectronMass);
  const double dt = 0.02 / omega_c;
  const double qdt2m = kElectronCharge * dt / (2.0 * kElectronMass);
  double ux = u0, uy = 0.0, uz = 0.0;
  for (int i = 0; i < 500; ++i) {
    VayStep(0, 0, 0, 0, 0, b, qdt2m, &ux, &uy, &uz);
    ASSERT_NEAR(std::sqrt(ux * ux + uy * uy + uz * uz), u0, u0 * 1e-9);
  }
}

TEST(Vay, ExactExBDriftFirstStep) {
  // Vay's defining property: a particle starting exactly at the E x B drift
  // velocity stays there (Boris would wobble).
  const double e = 1e5;
  const double b = 0.05;
  const double v_drift = e / b;  // E in y, B in z -> drift in +x
  const double gamma =
      1.0 / std::sqrt(1.0 - (v_drift / kSpeedOfLight) * (v_drift / kSpeedOfLight));
  double ux = gamma * v_drift, uy = 0.0, uz = 0.0;
  const double omega_c = std::fabs(kElectronCharge) * b / kElectronMass;
  const double qdt2m = kElectronCharge * (0.1 / omega_c) / (2.0 * kElectronMass);
  for (int i = 0; i < 100; ++i) {
    VayStep(0.0, e, 0.0, 0.0, 0.0, b, qdt2m, &ux, &uy, &uz);
  }
  EXPECT_NEAR(ux, gamma * v_drift, gamma * v_drift * 1e-9);
  EXPECT_NEAR(uy, 0.0, gamma * v_drift * 1e-9);
}

TEST(Vay, TilePushMovesParticles) {
  ParticleTile tile(0, 0, 0, 4, 4, 4);
  Particle p;
  p.x = p.y = p.z = 2.0;
  p.uy = 0.05 * kSpeedOfLight;
  tile.AddParticle(p);
  GatherScratch gathered;
  gathered.Resize(1);
  HwContext hw;
  PushParams pp;
  pp.dt = 1e-9;
  pp.charge = kElectronCharge;
  pp.mass = kElectronMass;
  PushTileVay(hw, tile, gathered, pp);
  const double gamma = std::sqrt(1.0 + 0.0025);
  EXPECT_NEAR(tile.soa().y[0], 2.0 + 0.05 * kSpeedOfLight / gamma * 1e-9, 1e-12);
  EXPECT_GT(hw.ledger().PhaseCycles(Phase::kPush), 0.0);
}

// ---------------------------------------------------------------------------
// Momentum bookkeeping across the full loop
// ---------------------------------------------------------------------------

TEST(Momentum, TotalCurrentMatchesParticleDrift) {
  // Give the plasma a uniform drift: the deposited total J must equal
  // n q v_drift summed over the box, for every variant.
  for (DepositVariant v : {DepositVariant::kBaseline, DepositVariant::kFullOpt}) {
    UniformWorkloadParams p;
    p.nx = p.ny = p.nz = 8;
    p.tile = 8;
    p.ppc_x = p.ppc_y = p.ppc_z = 2;
    p.u_th = 0.0;
    p.variant = v;
    HwContext hw;
    auto sim = MakeUniformSimulation(hw, p);
    const double u_drift = 0.02 * kSpeedOfLight;
    for (int t = 0; t < sim->tiles().num_tiles(); ++t) {
      ParticleSoA& soa = sim->tiles().tile(t).soa();
      for (size_t i = 0; i < soa.size(); ++i) {
        soa.uz[i] = u_drift;
      }
    }
    sim->Step();
    const GridGeometry& g = sim->tiles().geom();
    const double gamma = std::sqrt(1.0 + 0.0004);
    const double expected = p.density * kElectronCharge * (u_drift / gamma) *
                            g.LengthX() * g.LengthY() * g.LengthZ() /
                            (g.dx * g.dy * g.dz);
    const double got = sim->fields().jz.InteriorSumUnique();
    EXPECT_NEAR(got, expected, std::fabs(expected) * 1e-9)
        << VariantName(v);
  }
}

}  // namespace
}  // namespace mpic

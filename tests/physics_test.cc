// System-level physics validation: the PIC loop must produce textbook plasma
// behavior, independent of which deposition kernel variant runs. These tests
// exercise the full stack (inject -> gather -> push -> sort -> deposit ->
// solve) and pin quantitative physics, not just "no NaN".

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/stats.h"
#include "src/core/diagnostics.h"
#include "src/core/workloads.h"
#include "src/deposit/esirkepov.h"
#include "src/push/vay_pusher.h"

namespace mpic {
namespace {

// ---------------------------------------------------------------------------
// Langmuir (plasma) oscillation: a cold plasma with a small sinusoidal
// velocity perturbation along x oscillates at the plasma frequency
// omega_p = sqrt(n e^2 / (eps0 m)).
// ---------------------------------------------------------------------------

class LangmuirOscillation : public ::testing::TestWithParam<DepositVariant> {};

TEST_P(LangmuirOscillation, FrequencyMatchesOmegaP) {
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.tile = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 2;
  p.density = 1e25;
  p.u_th = 0.0;  // cold
  p.variant = GetParam();
  HwContext hw;
  auto sim = MakeUniformSimulation(hw, p);

  // Perturb: ux = v0 * sin(2 pi x / Lx).
  const GridGeometry& g = sim->tiles().geom();
  const double v0 = 1e-4 * kSpeedOfLight;
  for (int t = 0; t < sim->tiles().num_tiles(); ++t) {
    ParticleSoA& soa = sim->tiles().tile(t).soa();
    for (size_t i = 0; i < soa.size(); ++i) {
      soa.ux[i] = v0 * std::sin(2.0 * M_PI * soa.x[i] / g.LengthX());
    }
  }

  const double omega_p =
      std::sqrt(p.density * kElectronCharge * kElectronCharge /
                (kEpsilon0 * kElectronMass));
  // Track the field energy: it oscillates at 2*omega_p (E^2). Find the first
  // maximum: it occurs at a quarter period of the plasma oscillation.
  const int max_steps = 200;
  double prev = -1.0;
  int peak_step = -1;
  for (int s = 0; s < max_steps; ++s) {
    sim->Step();
    const double fe = FieldEnergy(sim->fields());
    if (fe < prev && peak_step < 0 && s > 2) {
      peak_step = s;  // first decrease: previous step was the peak
      break;
    }
    prev = fe;
  }
  ASSERT_GT(peak_step, 0) << "field energy never peaked";
  // Quarter period T/4 = (pi/2)/omega_p.
  const double t_peak = peak_step * sim->dt();
  const double expected = 0.5 * M_PI / omega_p;
  EXPECT_NEAR(t_peak, expected, 0.25 * expected)
      << "omega_p*dt = " << omega_p * sim->dt();
}

INSTANTIATE_TEST_SUITE_P(Variants, LangmuirOscillation,
                         ::testing::Values(DepositVariant::kBaseline,
                                           DepositVariant::kFullOpt));

// ---------------------------------------------------------------------------
// Gauss's law: with the Esirkepov current scheme, div E - rho/eps0 stays at
// its initial value (rounding-level drift) on every order, schedule, core
// count, and species count; with direct deposition it drifts. The matrix
// below pins the repo's headline charge-conservation guarantee.
// ---------------------------------------------------------------------------

// Change of the Gauss residual over `steps` full PIC steps, relative to the
// charge-density scale. Exact discrete continuity keeps it at zero.
double GaussResidualChangeAfterRun(const UniformWorkloadParams& p, int cores,
                                   int steps) {
  HwContext hw(MachineConfig::Lx2MultiCore(cores));
  auto sim = MakeUniformSimulation(hw, p);
  const GridGeometry& g = sim->fields().geom;
  const FieldArray rho0 = DepositChargeDensity(*sim);
  FieldArray res0(g.nx, g.ny, g.nz, 2);
  GaussResidualField(sim->fields(), rho0, &res0);

  sim->Run(steps);

  const FieldArray rho1 = DepositChargeDensity(*sim);
  FieldArray res1(g.nx, g.ny, g.nz, 2);
  GaussResidualField(sim->fields(), rho1, &res1);
  return MaxResidualChange(res1, res0, GaussResidualScale(rho0));
}

UniformWorkloadParams GaussWorkload() {
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.tile = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 2;
  p.u_th = 0.02;
  p.variant = DepositVariant::kBaseline;
  return p;
}

TEST(GaussLaw, DirectDepositionDrifts) {
  // Direct (non-charge-conserving) deposition violates continuity, so div E
  // drifts away from rho/eps0 over a few steps — the gap the Esirkepov scheme
  // closes.
  const double drift = GaussResidualChangeAfterRun(GaussWorkload(), 1, 10);
  EXPECT_GT(drift, 1e-6);
}

TEST(GaussLaw, EsirkepovConservesAcrossOrdersSchedulesAndCores) {
  // The full matrix: every shape order x fused/legacy schedule x core count,
  // with smaller tiles so the run crosses tile boundaries and exercises the
  // colored reduce. Residual change stays at rounding everywhere.
  for (int order : {1, 2, 3}) {
    for (bool fused : {true, false}) {
      for (int cores : {1, 2, 4}) {
        UniformWorkloadParams p = GaussWorkload();
        p.tile = 4;
        p.order = order;
        // kFullOpt pins the scheme onto the complete sort machinery (GPMA
        // maintenance + policy); its rhocell/MPU kernels are replaced by the
        // Esirkepov tile kernel, which is how order 2 becomes legal here.
        p.variant = DepositVariant::kFullOpt;
        p.scheme = CurrentScheme::kEsirkepov;
        p.fuse_stages = fused;
        const double drift = GaussResidualChangeAfterRun(p, cores, 10);
        EXPECT_LT(drift, 1e-8)
            << "order " << order << (fused ? " fused" : " legacy") << " cores "
            << cores;
      }
    }
  }
}

TEST(GaussLaw, EsirkepovConservesForEveryVariantFamily) {
  // The scheme is orthogonal to the variant: unsorted scatter, incremental
  // sort, and global-sort-each-step all keep the residual frozen (the
  // global-sort case additionally proves old positions survive the counting
  // sort between push and deposit).
  for (DepositVariant v :
       {DepositVariant::kBaseline, DepositVariant::kBaselineIncrSort,
        DepositVariant::kHybridGlobalSort}) {
    UniformWorkloadParams p = GaussWorkload();
    p.tile = 4;
    p.variant = v;
    p.scheme = CurrentScheme::kEsirkepov;
    const double drift = GaussResidualChangeAfterRun(p, 2, 10);
    EXPECT_LT(drift, 1e-8) << VariantName(v);
  }
}

TEST(GaussLaw, EsirkepovConservesMultiSpecies) {
  // Electron + proton plasma, both depositing through the Esirkepov scheme
  // into the shared J with the single end-of-step guard fold. The proton
  // background runs at half density (and its own PPC) so the net rho — the
  // residual scale — stays finite instead of cancelling to rounding.
  UniformWorkloadParams p = GaussWorkload();
  p.tile = 4;
  p.variant = DepositVariant::kFullOpt;
  p.scheme = CurrentScheme::kEsirkepov;
  UniformSpeciesParams electrons;
  UniformSpeciesParams protons;
  protons.species = Species::Proton();
  protons.density = 0.5e25;
  protons.ppc_x = protons.ppc_y = protons.ppc_z = 1;
  p.species_params = {electrons, protons};
  const double drift = GaussResidualChangeAfterRun(p, 4, 10);
  EXPECT_LT(drift, 1e-8);
}

// ---------------------------------------------------------------------------
// Vay pusher
// ---------------------------------------------------------------------------

TEST(Vay, MatchesBorisInPureEField) {
  double bux = 0.0, buy = 0.0, buz = 0.0;
  double vux = 0.0, vuy = 0.0, vuz = 0.0;
  const double qdt2m = kElectronCharge * 1e-12 / (2.0 * kElectronMass);
  for (int i = 0; i < 50; ++i) {
    BorisStep(1e4, 2e3, -3e3, 0, 0, 0, qdt2m, &bux, &buy, &buz);
    VayStep(1e4, 2e3, -3e3, 0, 0, 0, qdt2m, &vux, &vuy, &vuz);
  }
  EXPECT_NEAR(bux, vux, std::fabs(bux) * 1e-9);
  EXPECT_NEAR(buy, vuy, std::fabs(buy) * 1e-9);
  EXPECT_NEAR(buz, vuz, std::fabs(buz) * 1e-9);
}

TEST(Vay, GyrationPreservesSpeed) {
  const double b = 0.01;
  const double u0 = 0.05 * kSpeedOfLight;
  const double gamma = std::sqrt(1.0 + (u0 / kSpeedOfLight) * (u0 / kSpeedOfLight));
  const double omega_c = std::fabs(kElectronCharge) * b / (gamma * kElectronMass);
  const double dt = 0.02 / omega_c;
  const double qdt2m = kElectronCharge * dt / (2.0 * kElectronMass);
  double ux = u0, uy = 0.0, uz = 0.0;
  for (int i = 0; i < 500; ++i) {
    VayStep(0, 0, 0, 0, 0, b, qdt2m, &ux, &uy, &uz);
    ASSERT_NEAR(std::sqrt(ux * ux + uy * uy + uz * uz), u0, u0 * 1e-9);
  }
}

TEST(Vay, ExactExBDriftFirstStep) {
  // Vay's defining property: a particle starting exactly at the E x B drift
  // velocity stays there (Boris would wobble).
  const double e = 1e5;
  const double b = 0.05;
  const double v_drift = e / b;  // E in y, B in z -> drift in +x
  const double gamma =
      1.0 / std::sqrt(1.0 - (v_drift / kSpeedOfLight) * (v_drift / kSpeedOfLight));
  double ux = gamma * v_drift, uy = 0.0, uz = 0.0;
  const double omega_c = std::fabs(kElectronCharge) * b / kElectronMass;
  const double qdt2m = kElectronCharge * (0.1 / omega_c) / (2.0 * kElectronMass);
  for (int i = 0; i < 100; ++i) {
    VayStep(0.0, e, 0.0, 0.0, 0.0, b, qdt2m, &ux, &uy, &uz);
  }
  EXPECT_NEAR(ux, gamma * v_drift, gamma * v_drift * 1e-9);
  EXPECT_NEAR(uy, 0.0, gamma * v_drift * 1e-9);
}

TEST(Vay, TilePushMovesParticles) {
  ParticleTile tile(0, 0, 0, 4, 4, 4);
  Particle p;
  p.x = p.y = p.z = 2.0;
  p.uy = 0.05 * kSpeedOfLight;
  tile.AddParticle(p);
  GatherScratch gathered;
  gathered.Resize(1);
  HwContext hw;
  PushParams pp;
  pp.dt = 1e-9;
  pp.charge = kElectronCharge;
  pp.mass = kElectronMass;
  PushTileVay(hw, tile, gathered, pp);
  const double gamma = std::sqrt(1.0 + 0.0025);
  EXPECT_NEAR(tile.soa().y[0], 2.0 + 0.05 * kSpeedOfLight / gamma * 1e-9, 1e-12);
  EXPECT_GT(hw.ledger().PhaseCycles(Phase::kPush), 0.0);
}

// ---------------------------------------------------------------------------
// Momentum bookkeeping across the full loop
// ---------------------------------------------------------------------------

TEST(Momentum, TotalCurrentMatchesParticleDrift) {
  // Give the plasma a uniform drift: the deposited total J must equal
  // n q v_drift summed over the box, for every variant — and for the
  // Esirkepov scheme, whose integrated J is the same first moment expressed
  // as charge displacement per unit time.
  struct Combo {
    DepositVariant variant;
    CurrentScheme scheme;
  };
  for (const Combo c : {Combo{DepositVariant::kBaseline, CurrentScheme::kDirect},
                        Combo{DepositVariant::kFullOpt, CurrentScheme::kDirect},
                        Combo{DepositVariant::kFullOpt, CurrentScheme::kEsirkepov}}) {
    const DepositVariant v = c.variant;
    UniformWorkloadParams p;
    p.nx = p.ny = p.nz = 8;
    p.tile = 8;
    p.ppc_x = p.ppc_y = p.ppc_z = 2;
    p.u_th = 0.0;
    p.variant = v;
    p.scheme = c.scheme;
    HwContext hw;
    auto sim = MakeUniformSimulation(hw, p);
    const double u_drift = 0.02 * kSpeedOfLight;
    for (int t = 0; t < sim->tiles().num_tiles(); ++t) {
      ParticleSoA& soa = sim->tiles().tile(t).soa();
      for (size_t i = 0; i < soa.size(); ++i) {
        soa.uz[i] = u_drift;
      }
    }
    sim->Step();
    const GridGeometry& g = sim->tiles().geom();
    const double gamma = std::sqrt(1.0 + 0.0004);
    const double expected = p.density * kElectronCharge * (u_drift / gamma) *
                            g.LengthX() * g.LengthY() * g.LengthZ() /
                            (g.dx * g.dy * g.dz);
    const double got = sim->fields().jz.InteriorSumUnique();
    EXPECT_NEAR(got, expected, std::fabs(expected) * 1e-9)
        << VariantName(v);
  }
}

}  // namespace
}  // namespace mpic

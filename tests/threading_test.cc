// Tile-parallel execution tests: physics must be bit-identical to the serial
// run for any modeled core / OpenMP thread count, and the multi-core ledger
// must charge parallel regions as critical-path cycles (max over workers) with
// event counters summed.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/core/diagnostics.h"
#include "src/core/simulation.h"
#include "src/core/workloads.h"
#include "src/hw/parallel_for.h"

namespace mpic {
namespace {

// Use more OpenMP threads than the host may have cores: results must not
// depend on how modeled workers map onto real threads.
void UseManyThreads() {
#ifdef _OPENMP
  omp_set_num_threads(4);
#endif
}

void ExpectFieldsBitIdentical(const FieldSet& a, const FieldSet& b) {
  auto cmp = [](const FieldArray& fa, const FieldArray& fb, const char* name) {
    ASSERT_EQ(fa.vec().size(), fb.vec().size()) << name;
    EXPECT_EQ(std::memcmp(fa.vec().data(), fb.vec().data(),
                          fa.vec().size() * sizeof(double)),
              0)
        << name << " differs bitwise";
  };
  cmp(a.ex, b.ex, "ex");
  cmp(a.ey, b.ey, "ey");
  cmp(a.ez, b.ez, "ez");
  cmp(a.bx, b.bx, "bx");
  cmp(a.by, b.by, "by");
  cmp(a.bz, b.bz, "bz");
  cmp(a.jx, b.jx, "jx");
  cmp(a.jy, b.jy, "jy");
  cmp(a.jz, b.jz, "jz");
}

void ExpectParticlesBitIdentical(const TileSet& a, const TileSet& b) {
  ASSERT_EQ(a.num_tiles(), b.num_tiles());
  for (int t = 0; t < a.num_tiles(); ++t) {
    const ParticleTile& ta = a.tile(t);
    const ParticleTile& tb = b.tile(t);
    ASSERT_EQ(ta.num_slots(), tb.num_slots()) << "tile " << t;
    ASSERT_EQ(ta.num_live(), tb.num_live()) << "tile " << t;
    const ParticleSoA& sa = ta.soa();
    const ParticleSoA& sb = tb.soa();
    for (int32_t pid = 0; pid < ta.num_slots(); ++pid) {
      ASSERT_EQ(ta.IsLive(pid), tb.IsLive(pid)) << "tile " << t << " pid " << pid;
      if (!ta.IsLive(pid)) {
        continue;
      }
      const auto i = static_cast<size_t>(pid);
      EXPECT_EQ(sa.x[i], sb.x[i]);
      EXPECT_EQ(sa.y[i], sb.y[i]);
      EXPECT_EQ(sa.z[i], sb.z[i]);
      EXPECT_EQ(sa.ux[i], sb.ux[i]);
      EXPECT_EQ(sa.uy[i], sb.uy[i]);
      EXPECT_EQ(sa.uz[i], sb.uz[i]);
      EXPECT_EQ(sa.w[i], sb.w[i]);
    }
  }
}

void ExpectSimsBitIdentical(Simulation& a, Simulation& b) {
  ExpectFieldsBitIdentical(a.fields(), b.fields());
  ASSERT_EQ(a.num_species(), b.num_species());
  for (int sid = 0; sid < a.num_species(); ++sid) {
    ExpectParticlesBitIdentical(a.block(sid).tiles, b.block(sid).tiles);
  }
}

// ---- Ledger semantics ------------------------------------------------------

TEST(ParallelLedger, RegionChargesMaxCyclesAndSumsCounters) {
  UseManyThreads();
  HwContext hw(MachineConfig::Lx2MultiCore(2));
  // Two indices over two workers: the static partition gives index 0 to
  // worker 0 and index 1 to worker 1.
  ParallelForTiles(hw, 2, [&](HwContext& ctx, int worker, int index) {
    EXPECT_EQ(worker, index);
    if (index == 0) {
      PhaseScope phase(ctx.ledger(), Phase::kCompute);
      ctx.ChargeCycles(100.0);
      ctx.ledger().counters().scalar_ops += 5;
    } else {
      {
        PhaseScope phase(ctx.ledger(), Phase::kCompute);
        ctx.ChargeCycles(60.0);
      }
      PhaseScope phase(ctx.ledger(), Phase::kPreproc);
      ctx.ChargeCycles(50.0);
      ctx.ledger().counters().scalar_ops += 7;
    }
  });
  // Critical path per phase: max(100, 60) compute, max(0, 50) preproc, plus
  // the region's fork/join charge under kOther.
  const double fork_join = hw.cfg().parallel_region_fork_join_cycles;
  EXPECT_DOUBLE_EQ(hw.ledger().PhaseCycles(Phase::kCompute), 100.0);
  EXPECT_DOUBLE_EQ(hw.ledger().PhaseCycles(Phase::kPreproc), 50.0);
  EXPECT_DOUBLE_EQ(hw.ledger().PhaseCycles(Phase::kOther), fork_join);
  EXPECT_DOUBLE_EQ(hw.ledger().TotalCycles(), 150.0 + fork_join);
  // Work counters sum across workers.
  EXPECT_EQ(hw.ledger().counters().scalar_ops, 12u);
}

TEST(ParallelLedger, FusedRegionChargesCriticalWorkerTotal) {
  UseManyThreads();
  HwContext hw(MachineConfig::Lx2MultiCore(2));
  // Worker 0: 100 compute. Worker 1: 60 compute + 50 preproc = 110 total — the
  // critical core. A per-phase max would charge 100 + 50 = 150; the fused
  // merge charges the critical core's own split, so the breakdown still sums
  // exactly to the region's wall time.
  ParallelForTiles(
      hw, 2,
      [&](HwContext& ctx, int, int index) {
        if (index == 0) {
          PhaseScope phase(ctx.ledger(), Phase::kCompute);
          ctx.ChargeCycles(100.0);
        } else {
          {
            PhaseScope phase(ctx.ledger(), Phase::kCompute);
            ctx.ChargeCycles(60.0);
          }
          PhaseScope phase(ctx.ledger(), Phase::kPreproc);
          ctx.ChargeCycles(50.0);
        }
      },
      RegionMerge::kFusedStages);
  const double fork_join = hw.cfg().parallel_region_fork_join_cycles;
  EXPECT_DOUBLE_EQ(hw.ledger().PhaseCycles(Phase::kCompute), 60.0);
  EXPECT_DOUBLE_EQ(hw.ledger().PhaseCycles(Phase::kPreproc), 50.0);
  EXPECT_DOUBLE_EQ(hw.ledger().TotalCycles(), 110.0 + fork_join);
}

TEST(ParallelLedger, SingleCoreRunsInlineWithSerialAccounting) {
  HwContext hw;  // num_cores = 1
  ParallelForTiles(hw, 2, [&](HwContext& ctx, int worker, int) {
    EXPECT_EQ(&ctx, &hw);  // inline on the main context, no fork/merge
    EXPECT_EQ(worker, 0);
    PhaseScope phase(ctx.ledger(), Phase::kCompute);
    ctx.ChargeCycles(10.0);
  });
  // Serial semantics: charges accumulate, 2 * 10 cycles.
  EXPECT_DOUBLE_EQ(hw.ledger().PhaseCycles(Phase::kCompute), 20.0);
}

TEST(ParallelLedger, StaticPartitionIsBalancedAndComplete) {
  const int n = 10, workers = 4;
  std::vector<int> owner(n, -1);
  for (int w = 0; w < workers; ++w) {
    const TileRange r = WorkerTileRange(n, workers, w);
    EXPECT_GE(r.end - r.begin, n / workers);
    EXPECT_LE(r.end - r.begin, n / workers + 1);
    for (int i = r.begin; i < r.end; ++i) {
      EXPECT_EQ(owner[static_cast<size_t>(i)], -1);
      owner[static_cast<size_t>(i)] = w;
    }
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_NE(owner[static_cast<size_t>(i)], -1);
  }
}

TEST(ParallelLedger, MultiCoreCountersSumToSerialWork) {
  // Counters merge as sums across workers, so a multi-core run must report
  // exactly the serial run's instruction mix — same physics, same work, just
  // partitioned. (Cycles and cache events legitimately differ: private
  // per-core caches and critical-path accounting.)
  UseManyThreads();
  auto run = [](int cores) {
    HwContext hw(MachineConfig::Lx2MultiCore(cores));
    UniformWorkloadParams p;
    p.nx = p.ny = p.nz = 8;
    p.ppc_x = p.ppc_y = p.ppc_z = 2;
    p.tile = 4;
    p.variant = DepositVariant::kFullOpt;
    auto sim = MakeUniformSimulation(hw, p);
    sim->Run(3);
    return hw.ledger().counters();
  };
  const LedgerCounters serial = run(1);
  const LedgerCounters parallel = run(4);
  EXPECT_EQ(parallel.scalar_ops, serial.scalar_ops);
  EXPECT_EQ(parallel.scalar_mem, serial.scalar_mem);
  EXPECT_EQ(parallel.vpu_ops, serial.vpu_ops);
  EXPECT_EQ(parallel.vpu_mem, serial.vpu_mem);
  EXPECT_EQ(parallel.gathers, serial.gathers);
  EXPECT_EQ(parallel.scatters, serial.scatters);
  EXPECT_EQ(parallel.mopas, serial.mopas);
  EXPECT_EQ(parallel.atomics, serial.atomics);
  EXPECT_GT(parallel.mopas, 0u);
}

// ---- Bit-identical physics across core counts ------------------------------

class ThreadCounts : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCounts, UniformPlasmaBitIdentical) {
  UseManyThreads();
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 2;
  p.tile = 4;
  p.variant = DepositVariant::kFullOpt;

  HwContext serial_hw;
  auto serial = MakeUniformSimulation(serial_hw, p);
  serial->Run(5);

  HwContext par_hw(MachineConfig::Lx2MultiCore(GetParam()));
  auto parallel = MakeUniformSimulation(par_hw, p);
  parallel->Run(5);

  ExpectSimsBitIdentical(*serial, *parallel);
}

TEST_P(ThreadCounts, TwoStreamBitIdentical) {
  UseManyThreads();
  TwoStreamParams p;
  p.variant = DepositVariant::kFullOpt;

  HwContext serial_hw;
  auto serial = MakeTwoStreamSimulation(serial_hw, p);
  serial->Run(5);

  HwContext par_hw(MachineConfig::Lx2MultiCore(GetParam()));
  auto parallel = MakeTwoStreamSimulation(par_hw, p);
  parallel->Run(5);

  ExpectSimsBitIdentical(*serial, *parallel);
}

TEST_P(ThreadCounts, LwfaMovingWindowBitIdentical) {
  UseManyThreads();
  LwfaWorkloadParams p;
  p.nx = p.ny = 8;
  p.nz = 32;
  p.tile = 4;
  p.tile_z = 8;
  p.variant = DepositVariant::kFullOpt;
  p.with_ions = true;

  HwContext serial_hw;
  auto serial = MakeLwfaSimulation(serial_hw, p);
  serial->Run(8);

  HwContext par_hw(MachineConfig::Lx2MultiCore(GetParam()));
  auto parallel = MakeLwfaSimulation(par_hw, p);
  parallel->Run(8);

  ExpectSimsBitIdentical(*serial, *parallel);
}

// The unsorted baseline scatters straight into shared J and stays on the
// serial path — it must still produce identical physics at num_cores > 1.
TEST_P(ThreadCounts, BaselineVariantBitIdentical) {
  UseManyThreads();
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 2;
  p.tile = 4;
  p.variant = DepositVariant::kBaseline;

  HwContext serial_hw;
  auto serial = MakeUniformSimulation(serial_hw, p);
  serial->Run(4);

  HwContext par_hw(MachineConfig::Lx2MultiCore(GetParam()));
  auto parallel = MakeUniformSimulation(par_hw, p);
  parallel->Run(4);

  ExpectSimsBitIdentical(*serial, *parallel);
}

INSTANTIATE_TEST_SUITE_P(Cores, ThreadCounts, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace mpic

#include <gtest/gtest.h>

#include <vector>

#include "src/hw/cache_model.h"
#include "src/hw/cost_ledger.h"
#include "src/hw/hw_context.h"
#include "src/hw/machine_config.h"
#include "src/hw/mem_map.h"
#include "src/hw/vec.h"

namespace mpic {
namespace {

TEST(MachineConfig, PeakRatesMatchPaperRatios) {
  const MachineConfig cfg = MachineConfig::Lx2();
  // MOPA: 64 FMA per instruction at issue interval 2 => 4x a single VPU MLA
  // pipe's 8 FMA/cycle (Sec. 5.1).
  const double mopa_fma_per_cycle = kMpuTile * kMpuTile / cfg.mopa_issue_cycles;
  const double mla_fma_per_cycle = kVpuLanes;
  EXPECT_DOUBLE_EQ(mopa_fma_per_cycle / mla_fma_per_cycle, 4.0);
  EXPECT_DOUBLE_EQ(cfg.MpuPeakFlopsPerCycle(), 64.0);
  EXPECT_DOUBLE_EQ(cfg.VpuPeakFlopsPerCycle(), 32.0);
}

TEST(CostLedger, PhaseAccounting) {
  CostLedger ledger;
  ledger.SetPhase(Phase::kPreproc);
  ledger.AddCycles(5.0);
  {
    PhaseScope scope(ledger, Phase::kCompute);
    ledger.AddCycles(7.0);
  }
  ledger.AddCycles(1.0);  // back to preproc
  EXPECT_DOUBLE_EQ(ledger.PhaseCycles(Phase::kPreproc), 6.0);
  EXPECT_DOUBLE_EQ(ledger.PhaseCycles(Phase::kCompute), 7.0);
  EXPECT_DOUBLE_EQ(ledger.TotalCycles(), 13.0);
}

TEST(CostLedger, DepositionCyclesSumsKernelPhases) {
  CostLedger ledger;
  for (Phase p : {Phase::kPreproc, Phase::kCompute, Phase::kSort, Phase::kReduce,
                  Phase::kGather, Phase::kSolver}) {
    ledger.SetPhase(p);
    ledger.AddCycles(1.0);
  }
  EXPECT_DOUBLE_EQ(ledger.DepositionCycles(), 4.0);
  EXPECT_DOUBLE_EQ(ledger.TotalCycles(), 6.0);
}

TEST(CacheModel, RepeatAccessHitsL1) {
  const MachineConfig cfg = MachineConfig::Lx2();
  CacheModel cache(cfg);
  CostLedger ledger;
  EXPECT_GT(cache.Touch(0x1000, ledger), 0.0);  // cold miss
  EXPECT_DOUBLE_EQ(cache.Touch(0x1000, ledger), 0.0);
  EXPECT_DOUBLE_EQ(cache.Touch(0x1008, ledger), 0.0);  // same line
  EXPECT_EQ(ledger.counters().l1_misses, 1u);
  EXPECT_EQ(ledger.counters().l1_hits, 2u);
}

TEST(CacheModel, L1EvictionFallsBackToL2) {
  const MachineConfig cfg = MachineConfig::Lx2();
  CacheModel cache(cfg);
  CostLedger ledger;
  // L1: 32 KiB, 8-way, 64 sets. Touch 9 lines mapping to the same set.
  const uint64_t set_stride = 64ull * 64ull;  // num_sets * line
  for (int i = 0; i < 9; ++i) {
    cache.Touch(i * set_stride, ledger);
  }
  // First line was evicted from L1 but still sits in the (bigger) L2.
  const double penalty = cache.Touch(0, ledger);
  EXPECT_DOUBLE_EQ(penalty, cfg.l2.hit_penalty_cycles);
  EXPECT_GT(ledger.counters().l2_hits, 0u);
}

TEST(CacheModel, TouchRangeCountsEveryLine) {
  const MachineConfig cfg = MachineConfig::Lx2();
  CacheModel cache(cfg);
  CostLedger ledger;
  cache.TouchRange(0, 64 * 4, ledger);  // exactly 4 lines
  EXPECT_EQ(ledger.counters().l1_misses, 4u);
  cache.TouchRange(32, 64, ledger);  // straddles two (now hot) lines
  EXPECT_EQ(ledger.counters().l1_hits, 2u);
}

TEST(CacheModel, ResetColdsTheCache) {
  const MachineConfig cfg = MachineConfig::Lx2();
  CacheModel cache(cfg);
  CostLedger ledger;
  cache.Touch(0x40, ledger);
  cache.Reset();
  EXPECT_GT(cache.Touch(0x40, ledger), 0.0);
}

TEST(MemMap, TranslateIsStableAndDistinct) {
  MemMap map;
  std::vector<double> a(100), b(100);
  map.Register(a.data(), a.size() * sizeof(double));
  map.Register(b.data(), b.size() * sizeof(double));
  const uint64_t a0 = map.Translate(a.data());
  const uint64_t a5 = map.Translate(a.data() + 5);
  const uint64_t b0 = map.Translate(b.data());
  EXPECT_EQ(a5 - a0, 5 * sizeof(double));
  EXPECT_NE(a0, b0);
  // Logical layout is allocation-order deterministic: first region at the
  // first page.
  EXPECT_EQ(a0, 4096u);
}

TEST(MemMap, ReRegisterSameBaseIsStable) {
  MemMap map;
  std::vector<double> a(100);
  const uint64_t first = map.Register(a.data(), a.size() * sizeof(double));
  const uint64_t second = map.Register(a.data(), a.size() * sizeof(double));
  EXPECT_EQ(first, second);
}

TEST(MemMap, UnregisteredPointerMapsHigh) {
  MemMap map;
  double local = 0.0;
  EXPECT_GE(map.Translate(&local), uint64_t{1} << 46);
}

TEST(HwContext, VectorArithmeticSemantics) {
  HwContext hw;
  const Vec8 a = Vec8::Splat(2.0);
  const Vec8 b = Vec8::Splat(3.0);
  const Vec8 c = Vec8::Splat(10.0);
  EXPECT_DOUBLE_EQ(hw.VAdd(a, b)[0], 5.0);
  EXPECT_DOUBLE_EQ(hw.VSub(a, b)[7], -1.0);
  EXPECT_DOUBLE_EQ(hw.VMul(a, b)[3], 6.0);
  EXPECT_DOUBLE_EQ(hw.VFma(a, b, c)[2], 16.0);
  EXPECT_DOUBLE_EQ(hw.VFloor(Vec8::Splat(1.75))[0], 1.0);
  EXPECT_DOUBLE_EQ(hw.VMin(a, b)[0], 2.0);
  EXPECT_DOUBLE_EQ(hw.VMax(a, b)[0], 3.0);
  EXPECT_GT(hw.ledger().TotalCycles(), 0.0);
}

TEST(HwContext, LoadStoreRoundTrip) {
  HwContext hw;
  std::vector<double> buf(16, 0.0);
  hw.RegisterRegion(buf.data(), buf.size() * sizeof(double));
  Vec8 v;
  for (int i = 0; i < kVpuLanes; ++i) {
    v[i] = i * 1.5;
  }
  hw.VStore(buf.data(), v);
  const Vec8 r = hw.VLoad(buf.data());
  for (int i = 0; i < kVpuLanes; ++i) {
    EXPECT_DOUBLE_EQ(r[i], i * 1.5);
  }
}

TEST(HwContext, GatherScatterSemantics) {
  HwContext hw;
  std::vector<double> buf(64, 0.0);
  hw.RegisterRegion(buf.data(), buf.size() * sizeof(double));
  const int64_t idx[8] = {0, 8, 16, 24, 32, 40, 48, 56};
  Vec8 v;
  for (int i = 0; i < 8; ++i) {
    v[i] = 100.0 + i;
  }
  hw.VScatter(buf.data(), idx, v, Mask8::All());
  EXPECT_DOUBLE_EQ(buf[8], 101.0);
  const Vec8 g = hw.VGather(buf.data(), idx, Mask8::All());
  EXPECT_DOUBLE_EQ(g[7], 107.0);
  // Masked lanes stay untouched.
  hw.VScatter(buf.data(), idx, Vec8::Splat(-1.0), Mask8::FirstN(2));
  EXPECT_DOUBLE_EQ(buf[0], -1.0);
  EXPECT_DOUBLE_EQ(buf[16], 102.0);
}

TEST(HwContext, ScatterAccumConflictCountsDuplicates) {
  HwContext hw;
  std::vector<double> buf(8, 0.0);
  hw.RegisterRegion(buf.data(), buf.size() * sizeof(double));
  const int64_t idx[8] = {0, 0, 0, 1, 1, 2, 3, 4};
  hw.VScatterAccumConflict(buf.data(), idx, Vec8::Splat(1.0), Mask8::All());
  // Accumulation is correct despite conflicts...
  EXPECT_DOUBLE_EQ(buf[0], 3.0);
  EXPECT_DOUBLE_EQ(buf[1], 2.0);
  EXPECT_DOUBLE_EQ(buf[2], 1.0);
  // ...and the 3 duplicate lanes were charged as serialized atomics.
  EXPECT_EQ(hw.ledger().counters().atomics, 3u);
}

TEST(HwContext, MopaMatchesNaiveOuterProduct) {
  HwContext hw;
  Vec8 a, b;
  for (int i = 0; i < 8; ++i) {
    a[i] = i + 1;
    b[i] = 10.0 * i;
  }
  MpuTileReg tile;
  hw.TileZero(tile);
  hw.Mopa(tile, a, b);
  hw.Mopa(tile, a, b);  // accumulate twice
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_DOUBLE_EQ(tile.At(r, c), 2.0 * (r + 1) * (10.0 * c));
    }
  }
  EXPECT_EQ(hw.ledger().counters().mopas, 2u);
  EXPECT_DOUBLE_EQ(hw.ledger().PhaseCycles(Phase::kOther),
                   2.0 * hw.cfg().mopa_issue_cycles + 1.0);
}

TEST(HwContext, TileReadRowExtractsRow) {
  HwContext hw;
  MpuTileReg tile;
  tile.At(3, 5) = 42.0;
  const Vec8 row = hw.TileReadRow(tile, 3);
  EXPECT_DOUBLE_EQ(row[5], 42.0);
  EXPECT_DOUBLE_EQ(row[0], 0.0);
}

TEST(HwContext, MopaRequiresMpu) {
  HwContext hw(MachineConfig::Lx2VpuOnly());
  MpuTileReg tile;
  Vec8 a = Vec8::Splat(1.0);
  EXPECT_DEATH(hw.Mopa(tile, a, a), "without an MPU");
}

TEST(HwContext, AtomicAccumChargesExtra) {
  HwContext hw;
  std::vector<double> buf(8, 0.0);
  hw.RegisterRegion(buf.data(), buf.size() * sizeof(double));
  hw.AccumScalar(&buf[0], 1.0);
  const double plain = hw.ledger().TotalCycles();
  hw.ledger().Reset();
  hw.cache().Reset();
  hw.AtomicAccumScalar(&buf[0], 1.0);
  EXPECT_GT(hw.ledger().TotalCycles(), plain);
  EXPECT_DOUBLE_EQ(buf[0], 2.0);
}

TEST(HwContext, BulkChargeRoofline) {
  HwContext hw;
  const double before = hw.ledger().TotalCycles();
  // Compute-bound: 3200 flops at 32 flops/cycle = 100 cycles.
  hw.ChargeBulk(3200.0, 0.0);
  EXPECT_DOUBLE_EQ(hw.ledger().TotalCycles() - before, 100.0);
  // Memory-bound: 3200 bytes at 16 B/cycle = 200 cycles.
  hw.ChargeBulk(0.0, 3200.0);
  EXPECT_DOUBLE_EQ(hw.ledger().TotalCycles() - before, 300.0);
}

TEST(HwContext, ResetModelZeroesLedgerAndColdsCache) {
  HwContext hw;
  std::vector<double> buf(8, 0.0);
  hw.RegisterRegion(buf.data(), buf.size() * sizeof(double));
  hw.LoadScalar(&buf[0]);
  hw.ResetModel();
  EXPECT_DOUBLE_EQ(hw.ledger().TotalCycles(), 0.0);
  hw.LoadScalar(&buf[0]);
  EXPECT_EQ(hw.ledger().counters().l1_misses, 1u);  // cold again
}

TEST(HwContext, SortedAccessCheaperThanScattered) {
  // The load-bearing property of the whole model: streaming through an array
  // costs less than striding over it, because of the cache.
  HwContext hw;
  std::vector<double> buf(1 << 16, 1.0);  // 512 KiB: fits L2, not L1
  hw.RegisterRegion(buf.data(), buf.size() * sizeof(double));
  // Sequential: every double in order; 7 of 8 touches hit the line in L1.
  for (size_t i = 0; i < buf.size(); ++i) {
    hw.TouchRead(&buf[i], 8);
  }
  const double sequential = hw.ledger().TotalCycles();
  hw.ResetModel();
  // Scattered: same touch count, but hopping 97 lines per access — defeats
  // both the L1 (revisits come after eviction) and the stride prefetcher.
  size_t pos = 0;
  for (size_t i = 0; i < buf.size(); ++i) {
    hw.TouchRead(&buf[pos], 8);
    pos = (pos + 97 * 8) % buf.size();
  }
  const double scattered = hw.ledger().TotalCycles();
  EXPECT_LT(sequential * 1.5, scattered);
}

}  // namespace
}  // namespace mpic

// Modeled multi-rank decomposition tests: the z-slab tile partition, the
// guard-plane halo pack/unpack round trip, cross-rank particle-migration
// accounting, the Phase::kComm cycle bookkeeping — and the core determinism
// contract: physics digests are bit-identical across rank counts, core
// counts, schedules, and tile-schedule policies, because the ranks exist in
// the cost model only.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/simulation.h"
#include "src/core/workloads.h"
#include "src/grid/halo_exchange.h"
#include "src/hw/rank_topology.h"
#include "src/runtime/digest.h"

namespace mpic {
namespace {

// ---- RankSet partition -------------------------------------------------------

TEST(RankSet, ZSlabPartitionCoversAllTiles) {
  MachineConfig cfg = MachineConfig::Lx2Cluster(4, 1);
  RankSet rs(cfg, 2, 3, 8);
  ASSERT_EQ(rs.num_ranks(), 4);
  int total = 0;
  for (int r = 0; r < rs.num_ranks(); ++r) {
    const RankDomain& d = rs.domain(r);
    EXPECT_EQ(d.tz_end - d.tz_begin, 2);  // 8 planes / 4 ranks
    EXPECT_EQ(d.num_tiles(), 2 * 3 * 2);
    // Contiguous, ordered coverage.
    EXPECT_EQ(d.tile_begin, total);
    total = d.tile_end;
    for (int t = d.tile_begin; t < d.tile_end; ++t) {
      EXPECT_EQ(rs.RankOfTile(t), r);
    }
  }
  EXPECT_EQ(total, 2 * 3 * 8);
}

TEST(RankSet, SingleRankOwnsEverything) {
  RankSet rs(MachineConfig::Lx2Cluster(1, 4), 2, 2, 3);
  ASSERT_EQ(rs.num_ranks(), 1);
  EXPECT_EQ(rs.domain(0).tile_begin, 0);
  EXPECT_EQ(rs.domain(0).tile_end, 12);
  EXPECT_EQ(rs.RankOfTile(11), 0);
}

TEST(RankSet, LinkTransferCyclesIsLatencyPlusBandwidth) {
  MachineConfig cfg;
  cfg.rank_link_latency_cycles = 100.0;
  cfg.rank_link_bytes_per_cycle = 4.0;
  EXPECT_DOUBLE_EQ(LinkTransferCycles(cfg, 400.0), 100.0 + 100.0);
}

// ---- Halo pack/unpack round trip ---------------------------------------------

TEST(HaloExchange, PackUnpackRoundTripIsBitExact) {
  FieldArray f(4, 3, 8, 2);
  // Distinct value at every node, guards included.
  for (size_t i = 0; i < f.size(); ++i) {
    f.vec()[i] = 1.0 + 0.001 * static_cast<double>(i);
  }
  const std::vector<double> original = f.vec();

  // Pack two boundary slabs (2 planes each) as the rank exchange does.
  std::vector<double> buf;
  PackZPlanes(f, 0, 2, buf);
  PackZPlanes(f, 6, 2, buf);
  ASSERT_EQ(buf.size(), static_cast<size_t>(ZPlaneNodes(f)) * 4);

  // Scribble over the packed planes, then unpack: every byte must come back.
  for (int k : {0, 1, 6, 7}) {
    for (int j = -f.ng(); j <= f.ny() + f.ng(); ++j) {
      for (int i = -f.ng(); i <= f.nx() + f.ng(); ++i) {
        f.At(i, j, k) = -999.0;
      }
    }
  }
  int64_t off = UnpackZPlanes(f, 0, 2, buf, 0);
  off = UnpackZPlanes(f, 6, 2, buf, off);
  EXPECT_EQ(off, static_cast<int64_t>(buf.size()));
  EXPECT_EQ(f.vec(), original);
}

// ---- Simulation-level behavior -----------------------------------------------

UniformWorkloadParams ChurnyUniform() {
  UniformWorkloadParams p;
  p.nx = p.ny = 8;
  p.nz = 16;  // 4 tile planes along z at tile 4 -> splits 1/2/4 ways
  p.ppc_x = p.ppc_y = p.ppc_z = 2;
  p.tile = 4;
  p.u_th = 0.1;  // enough churn that particles cross tile (and rank) planes
  return p;
}

// Ranks are a cost-model construct: the physics digest must not depend on the
// rank count, for any core count, schedule, or tile-schedule policy.
TEST(RankModel, DigestsBitIdenticalAcrossRankCounts) {
  const UniformWorkloadParams p = ChurnyUniform();
  uint64_t want = 0;
  bool have_want = false;
  for (int ranks : {1, 2, 4}) {
    for (int cores : {1, 4}) {
      for (bool steal : {false, true}) {
        SCOPED_TRACE(std::to_string(ranks) + " ranks, " +
                     std::to_string(cores) + " cores, " +
                     (steal ? "steal" : "static"));
        HwContext hw(MachineConfig::Lx2Cluster(ranks, cores, steal));
        auto sim = MakeUniformSimulation(hw, p);
        sim->Run(4);
        const uint64_t got = SimulationDigest(*sim);
        if (!have_want) {
          want = got;
          have_want = true;
        }
        EXPECT_EQ(got, want);
      }
    }
  }
}

// Cross-rank migration: particle census is conserved (the migration model
// charges cycles, it never drops or duplicates anything), and a churny
// periodic plasma actually does cross the rank planes.
TEST(RankModel, MigrationConservesParticlesAndIsObserved) {
  const UniformWorkloadParams p = ChurnyUniform();
  for (int ranks : {2, 4}) {
    SCOPED_TRACE(std::to_string(ranks) + " ranks");
    HwContext hw(MachineConfig::Lx2Cluster(ranks, 2));
    auto sim = MakeUniformSimulation(hw, p);
    const int64_t seeded = sim->block(0).tiles.TotalLive();
    sim->Run(4);
    EXPECT_EQ(sim->block(0).tiles.TotalLive(), seeded);
    ASSERT_NE(sim->rank_comm(), nullptr);
    uint64_t migrated = 0;
    for (const RankCommStats& s : sim->rank_comm()->stats()) {
      migrated += s.migrated_particles;
    }
    EXPECT_GT(migrated, 0u) << "no cross-rank movers observed";
  }
}

// Comm-phase accounting: multi-rank runs charge Phase::kComm (halo exchanges
// plus migration), single-rank runs never do, and the per-phase breakdown
// still sums exactly to the ledger total.
TEST(RankModel, CommPhaseChargedAndSumsIntoBreakdown) {
  const UniformWorkloadParams p = ChurnyUniform();
  for (int ranks : {1, 2}) {
    SCOPED_TRACE(std::to_string(ranks) + " ranks");
    HwContext hw(MachineConfig::Lx2Cluster(ranks, 2));
    auto sim = MakeUniformSimulation(hw, p);
    sim->Run(3);
    const CostLedger& ledger = hw.ledger();
    double sum = 0.0;
    for (int ph = 0; ph < kNumPhases; ++ph) {
      sum += ledger.PhaseCycles(static_cast<Phase>(ph));
    }
    EXPECT_DOUBLE_EQ(sum, ledger.TotalCycles());
    if (ranks > 1) {
      EXPECT_GT(ledger.PhaseCycles(Phase::kComm), 0.0);
      // Per-rank bookkeeping exists and saw the halo traffic.
      ASSERT_NE(sim->rank_comm(), nullptr);
      for (const RankCommStats& s : sim->rank_comm()->stats()) {
        EXPECT_GT(s.bytes_sent, 0u);
        EXPECT_GT(s.messages, 0u);
        EXPECT_GT(s.comm_cycles, 0.0);
      }
    } else {
      EXPECT_EQ(sim->rank_comm(), nullptr);
      EXPECT_DOUBLE_EQ(ledger.PhaseCycles(Phase::kComm), 0.0);
    }
  }
}

// Weak sanity on the decomposition speedup: with the same physics, the
// modeled wall clock of a rank-decomposed run must be strictly below the
// single-rank run (the serial barriers and field solve scale by 1/R; the new
// comm phase must not swallow the gain on this workload).
TEST(RankModel, RankDecompositionReducesModeledCycles) {
  const UniformWorkloadParams p = ChurnyUniform();
  HwContext hw1(MachineConfig::Lx2Cluster(1, 2));
  auto sim1 = MakeUniformSimulation(hw1, p);
  sim1->Run(3);
  HwContext hw4(MachineConfig::Lx2Cluster(4, 2));
  auto sim4 = MakeUniformSimulation(hw4, p);
  sim4->Run(3);
  EXPECT_LT(hw4.ledger().TotalCycles(), hw1.ledger().TotalCycles());
}

}  // namespace
}  // namespace mpic

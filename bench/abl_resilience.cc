// Resilience ablation: overhead, restore determinism, and MTTR of the
// runtime resilience layer (src/runtime/), with hard gates (non-zero exit on
// violation):
//
//   1. Overhead — uniform kernel workload with every sentinel armed plus
//      periodic in-memory checkpoints (interval 10) vs. the same run with the
//      resilience layer off. Gates: modeled-cycle overhead <= 2% on the QSP
//      (order 3, production shape order) configuration and bit-identical
//      physics digests on both (sentinels observe, never perturb).
//   2. Restore-digest matrix — save at step 3 under the fused 2-core
//      schedule, restore into twins across {fused, legacy} x {1, 2, 4}
//      modeled cores, for every DepositVariant under both CurrentSchemes.
//      Gate: every twin finishes on the uninterrupted run's digest. The
//      re-sort policy's throughput trigger is disabled here — it reads
//      modeled cache history a checkpoint deliberately does not carry
//      (see src/runtime/checkpoint.h); all physics triggers stay on.
//   3. MTTR — a guaranteed-detectable field SEU (adaptive exponent bit flip)
//      at a fixed step, recovered by rollback under checkpoint intervals
//      {1, 5, 10, 20}. Gates: exactly one rollback, replay cost bounded by
//      the interval, and a recovered digest bit-identical to a run that
//      never faulted. A final degraded row (interval 0) shows
//      scrub-and-continue availability when no checkpoint exists.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/runtime/checkpoint.h"
#include "src/runtime/fault_injection.h"
#include "src/runtime/health.h"
#include "src/runtime/recovery.h"

namespace mpic {
namespace {

std::string DigestHex(uint64_t d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(d));
  return buf;
}

void SetThreads(int cores) {
#ifdef _OPENMP
  omp_set_num_threads(cores);
#endif
}

// ---------------------------------------------------------------------------
// Section 1: sentinel + checkpoint overhead on the uniform kernel workload.
// The <= 2% gate is evaluated on the QSP (order 3) configuration — the
// production shape order, where deposition dominates the step. The CIC row is
// informational: against the fastest possible order-1 kernel the fixed
// per-particle guard ops weigh relatively more, which is a statement about
// CIC's cheapness, not about the sentinels.

bool RunOverheadGate() {
  const int steps = 20;  // two full checkpoint intervals
  SetThreads(4);
  bool ok = true;

  ConsoleTable t({"Workload", "Config", "Cycles/step", "Health cyc/step",
                  "Overhead", "Digest match"});
  for (int order : {3, 1}) {
    UniformWorkloadParams p;
    p.nx = p.ny = p.nz = 12;
    p.ppc_x = p.ppc_y = p.ppc_z = 3;
    p.tile = 4;
    p.u_th = 0.05;
    p.order = order;
    const char* name = order == 3 ? "uniform 12^3 QSP" : "uniform 12^3 CIC";

    HwContext off_hw(MachineConfig::Lx2MultiCore(4));
    auto off = MakeUniformSimulation(off_hw, p);
    off->Run(steps);
    const double off_cycles = off_hw.ledger().TotalCycles();

    HwContext on_hw(MachineConfig::Lx2MultiCore(4));
    auto on = MakeUniformSimulation(on_hw, p);
    HealthConfig hc;  // every default sentinel armed (Gauss stays opt-in)
    on->EnableHealth(hc);
    RecoveryConfig rc;
    rc.checkpoint_interval = 10;
    ResilientRunner runner(on.get(), rc);
    const bool completed = runner.Run(steps);
    const double on_cycles = on_hw.ledger().TotalCycles();
    const PhaseCycles on_phases = SnapshotCycles(on_hw.ledger());
    const double health_cycles =
        on_phases[static_cast<size_t>(Phase::kHealth)];

    const double overhead = (on_cycles - off_cycles) / off_cycles;
    const bool digests_match = SimulationDigest(*on) == SimulationDigest(*off);
    if (order == 3) {
      ok = completed && digests_match && overhead <= 0.02;
    } else {
      ok = ok && completed && digests_match;
    }
    t.AddRow({name, "resilience off", FormatSci(off_cycles / steps, 3), "-",
              "-", "-"});
    t.AddRow({name, "sentinels + ckpt@10", FormatSci(on_cycles / steps, 3),
              FormatSci(health_cycles / steps, 3),
              FormatDouble(100.0 * overhead, 2) + "%",
              digests_match ? "yes" : "NO (BUG!)"});
  }
  t.Print("Resilience overhead (uniform 12^3, ppc 3^3, 4 cores, " +
          std::to_string(steps) + " steps)");
  std::printf("Overhead gate (QSP <= 2.00%%, identical digests): %s\n\n",
              ok ? "HOLD" : "VIOLATED");
  return ok;
}

// ---------------------------------------------------------------------------
// Section 2: restore-digest matrix across schedules, cores, variants, schemes.

constexpr DepositVariant kAllVariants[] = {
    DepositVariant::kScalar,           DepositVariant::kBaseline,
    DepositVariant::kBaselineIncrSort, DepositVariant::kRhocell,
    DepositVariant::kRhocellIncrSort,  DepositVariant::kRhocellIncrSortVpu,
    DepositVariant::kMatrixOnly,       DepositVariant::kHybridNoSort,
    DepositVariant::kHybridGlobalSort, DepositVariant::kFullOpt,
};

UniformWorkloadParams MatrixParams(DepositVariant v, CurrentScheme s,
                                   bool fused) {
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 1;
  p.tile = 4;
  p.u_th = 0.1;
  p.variant = v;
  p.scheme = s;
  p.fuse_stages = fused;
  // The adaptive throughput trigger restores bit-exactly on the *same*
  // machine (checkpoint v2 carries its baselines; tests/checkpoint_test.cc
  // gates it). This matrix restores one image into *different* machines
  // (cores 1/2/4, legacy schedule), where the trigger's modeled-throughput
  // input legitimately differs — so the cross-machine digest gate needs the
  // physics-driven triggers only.
  ResortPolicyConfig pol;
  pol.trigger_perf_enable = false;
  p.policy = pol;
  return p;
}

bool RunRestoreMatrix() {
  const int save_at = 3, run_after = 3;
  ConsoleTable t({"Variant", "Scheme", "fused/1", "fused/2", "fused/4",
                  "legacy/1", "legacy/2", "legacy/4", "Digest"});
  bool ok = true;
  int twins = 0, matched = 0;
  for (DepositVariant v : kAllVariants) {
    for (CurrentScheme s : {CurrentScheme::kDirect, CurrentScheme::kEsirkepov}) {
      SetThreads(2);
      HwContext ref_hw(MachineConfig::Lx2MultiCore(2));
      auto ref = MakeUniformSimulation(ref_hw, MatrixParams(v, s, true));
      ref->Run(save_at);
      std::vector<uint8_t> ckpt;
      if (!SaveCheckpoint(*ref, &ckpt)) {
        ok = false;
        continue;
      }
      ref->Run(run_after);
      const uint64_t want = SimulationDigest(*ref);

      std::vector<std::string> row = {VariantName(v), CurrentSchemeName(s)};
      for (bool fused : {true, false}) {
        for (int cores : {1, 2, 4}) {
          SetThreads(cores);
          HwContext hw(MachineConfig::Lx2MultiCore(cores));
          auto twin = MakeUniformSimulation(hw, MatrixParams(v, s, fused));
          const CheckpointStatus st = RestoreCheckpoint(twin.get(), ckpt);
          bool good = st.ok;
          if (good) {
            twin->Run(run_after);
            good = SimulationDigest(*twin) == want;
          }
          row.push_back(good ? "ok" : "FAIL");
          ok = ok && good;
          ++twins;
          matched += good ? 1 : 0;
        }
      }
      row.push_back(DigestHex(want));
      t.AddRow(std::move(row));
    }
  }
  t.Print("Restore-digest matrix: save fused/2 @ step 3, run to step 6");
  std::printf("Restore matrix gate: %d/%d twins bit-identical — %s\n\n",
              matched, twins, ok ? "HOLD" : "VIOLATED");
  return ok;
}

// ---------------------------------------------------------------------------
// Section 3: MTTR under a deterministic field SEU.

bool RunMttrTable(int steps) {
  UniformWorkloadParams p;
  p.nx = p.ny = p.nz = 8;
  p.ppc_x = p.ppc_y = p.ppc_z = 2;
  p.tile = 4;
  p.u_th = 0.1;
  // This gate compares a periodically-checkpointing, rolled-back run against
  // a clean run that never checkpoints — the adaptive throughput trigger
  // would read different modeled histories in the two runs by construction,
  // so the digest-vs-clean promise is made under the physics-driven triggers.
  // (Same-machine restart with the trigger ON is bit-exact since checkpoint
  // v2; see runtime/checkpoint.h.)
  ResortPolicyConfig pol;
  pol.trigger_perf_enable = false;
  p.policy = pol;
  const int64_t fault_step = steps / 2 + 1;

  SetThreads(4);
  HwContext clean_hw(MachineConfig::Lx2MultiCore(4));
  auto clean = MakeUniformSimulation(clean_hw, p);
  clean->Run(steps);
  const uint64_t clean_digest = SimulationDigest(*clean);

  ConsoleTable t({"Ckpt interval", "Recovery", "Trip step", "Restored",
                  "Steps replayed", "Ckpts", "Digest == clean"});
  bool ok = true;
  for (int interval : {1, 5, 10, 20, 0}) {
    FaultPlan plan;
    FaultSpec spec;
    spec.kind = FaultKind::kFieldBitFlip;
    spec.step = fault_step;
    spec.bit = -1;  // adaptive exponent flip: guaranteed detectable
    plan.faults.push_back(spec);
    FaultInjector injector(plan);

    HwContext hw(MachineConfig::Lx2MultiCore(4));
    auto sim = MakeUniformSimulation(hw, p);
    sim->EnableHealth(HealthConfig{});
    RecoveryConfig rc;
    rc.checkpoint_interval = interval;
    ResilientRunner runner(sim.get(), rc);
    runner.set_injector(&injector);
    const bool completed = runner.Run(steps);
    const RecoveryStats& st = runner.stats();

    const bool degraded_row = interval == 0;
    const bool digest_match = SimulationDigest(*sim) == clean_digest;
    bool row_ok;
    if (degraded_row) {
      // No checkpoint exists: availability is the promise, not continuity.
      row_ok = completed && st.degraded_recoveries == 1 && st.rollbacks == 0;
    } else {
      row_ok = completed && st.rollbacks == 1 &&
               st.degraded_recoveries == 0 && digest_match &&
               st.steps_replayed <= interval;
    }
    ok = ok && row_ok;

    const RecoveryEvent* ev = st.events.empty() ? nullptr : &st.events[0];
    t.AddRow({degraded_row ? "none (degraded)" : std::to_string(interval),
              degraded_row ? "scrub" : "rollback",
              ev != nullptr ? std::to_string(ev->trip_step) : "-",
              ev != nullptr && !ev->degraded ? std::to_string(ev->restored_step)
                                             : "-",
              std::to_string(st.steps_replayed),
              std::to_string(st.checkpoints_taken),
              degraded_row ? "n/a" : (digest_match ? "yes" : "NO (BUG!)")});
  }
  t.Print("MTTR: field SEU at step " + std::to_string(fault_step) + " of " +
          std::to_string(steps));
  std::printf("MTTR gate (1 rollback, replay <= interval, clean digest): %s\n",
              ok ? "HOLD" : "VIOLATED");
  return ok;
}

bool Run(int steps) {
#ifdef _OPENMP
  std::printf("OpenMP enabled, %d host thread(s) available.\n\n",
              omp_get_max_threads());
#else
  std::printf("Built without OpenMP: partitions run serially.\n\n");
#endif
  bool ok = RunOverheadGate();
  ok = RunRestoreMatrix() && ok;
  ok = RunMttrTable(2 * steps) && ok;
  return ok;
}

}  // namespace
}  // namespace mpic

int main(int argc, char** argv) {
  int steps = argc > 1 ? std::atoi(argv[1]) : 12;
  if (steps < 2) {
    std::fprintf(stderr, "usage: %s [steps >= 2]; using default\n", argv[0]);
    steps = 12;
  }
  return mpic::Run(steps) ? 0 : 1;
}

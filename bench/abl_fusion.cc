// Step-fusion ablation: the fused two-pass tile pipeline vs. the legacy
// five-sweep schedule (see src/core/step_pipeline.h), on the uniform-plasma
// kernel workload (CIC and QSP) and the moving-window LWFA workload, at 1 and
// 4 modeled cores.
//
// Per (workload, cores) it prints both schedules' modeled cycles with the
// per-phase breakdown, the fused/legacy cycle ratio, and an FNV physics
// digest. Three invariants are enforced (non-zero exit on violation):
//   1. the digests match — fusion changes cost, never physics;
//   2. fused total modeled cycles are strictly below legacy's (fewer SoA
//      sweeps keep tiles cache-resident; two fork/joins instead of five; the
//      reduction runs colored-parallel instead of serial);
//   3. the per-phase breakdown sums to the total in both schedules.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace mpic {
namespace {

struct FusionPoint {
  PhaseCycles phases{};
  double total = 0.0;
  uint64_t digest = 0;
};

struct Workload {
  const char* name;
  bool lwfa = false;
  int order = 1;
};

FusionPoint RunPoint(const Workload& w, bool fused, int cores, int warmup,
                     int steps) {
#ifdef _OPENMP
  omp_set_num_threads(cores);
#endif
  HwContext hw(MachineConfig::Lx2MultiCore(cores));
  std::unique_ptr<Simulation> sim;
  if (w.lwfa) {
    LwfaWorkloadParams p;
    p.nx = p.ny = 8;
    p.nz = 32;
    p.tile = 4;
    p.tile_z = 8;
    p.variant = DepositVariant::kFullOpt;
    p.with_ions = true;
    p.fuse_stages = fused;
    sim = MakeLwfaSimulation(hw, p);
  } else {
    UniformWorkloadParams p;
    p.nx = p.ny = p.nz = 16;
    p.tile = 4;
    p.ppc_x = p.ppc_y = p.ppc_z = 4;
    p.order = w.order;
    p.variant = DepositVariant::kFullOpt;
    p.fuse_stages = fused;
    sim = MakeUniformSimulation(hw, p);
  }
  sim->Run(warmup);
  const PhaseCycles before = SnapshotCycles(hw.ledger());
  const double total_before = hw.ledger().TotalCycles();
  sim->Run(steps);
  const PhaseCycles after = SnapshotCycles(hw.ledger());
  FusionPoint r;
  for (size_t i = 0; i < after.size(); ++i) {
    r.phases[i] = after[i] - before[i];
  }
  // Total from the ledger's own accumulator, independent of the per-phase
  // snapshot, so a merge or snapshot that drops/misindexes a phase shows up
  // as a breakdown-vs-total mismatch below.
  r.total = hw.ledger().TotalCycles() - total_before;
  r.digest = FieldsDigest(sim->fields());
  return r;
}

bool Run(int steps) {
  const std::vector<Workload> workloads = {
      {"uniform 16^3 CIC", /*lwfa=*/false, /*order=*/1},
      {"uniform 16^3 QSP", /*lwfa=*/false, /*order=*/3},
      {"LWFA e+ion", /*lwfa=*/true, /*order=*/1},
  };

#ifdef _OPENMP
  std::printf("OpenMP enabled, %d host thread(s) available.\n",
              omp_get_max_threads());
#else
  std::printf("Built without OpenMP: partitions run serially.\n");
#endif

  ConsoleTable t({"Workload", "Cores", "Schedule", "Cycles/step", "Gather",
                  "Push", "Preproc", "Compute", "Sort", "Reduce", "Other",
                  "Digest"});
  bool ok = true;
  for (const Workload& w : workloads) {
    for (int cores : {1, 4}) {
      FusionPoint pts[2];
      for (int fused = 0; fused < 2; ++fused) {
        const FusionPoint r = RunPoint(w, fused != 0, cores, /*warmup=*/1, steps);
        pts[fused] = r;
        // Invariant 3: the per-phase breakdown must account for every cycle.
        double phase_sum = 0.0;
        for (double c : r.phases) {
          phase_sum += c;
        }
        ok = ok && std::abs(phase_sum - r.total) <= 1e-6 * r.total;
        auto phase = [&](Phase p) {
          return FormatSci(r.phases[static_cast<size_t>(p)] / steps, 2);
        };
        char digest_hex[32];
        std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                      static_cast<unsigned long long>(r.digest));
        t.AddRow({w.name, std::to_string(cores), fused ? "fused" : "legacy",
                  FormatSci(r.total / steps, 3), phase(Phase::kGather),
                  phase(Phase::kPush), phase(Phase::kPreproc),
                  phase(Phase::kCompute), phase(Phase::kSort),
                  phase(Phase::kReduce), phase(Phase::kOther), digest_hex});
      }
      const bool digests_match = pts[0].digest == pts[1].digest;
      const bool fused_cheaper = pts[1].total < pts[0].total;
      ok = ok && digests_match && fused_cheaper;
      std::printf("%-18s %d cores: fused/legacy cycles = %.4f%s%s\n", w.name,
                  cores, pts[1].total / pts[0].total,
                  digests_match ? "" : "  DIGEST MISMATCH (BUG!)",
                  fused_cheaper ? "" : "  FUSED NOT CHEAPER (BUG!)");
    }
  }
  t.Print("Step-fusion ablation: fused two-pass pipeline vs legacy five sweeps");
  std::printf("\nInvariants %s: identical physics digests, fused strictly "
              "cheaper, phases sum to total.\n",
              ok ? "HOLD" : "VIOLATED");
  return ok;
}

}  // namespace
}  // namespace mpic

int main(int argc, char** argv) {
  int steps = argc > 1 ? std::atoi(argv[1]) : 6;
  if (steps < 1) {
    std::fprintf(stderr, "usage: %s [steps >= 1]; using default\n", argv[0]);
    steps = 6;
  }
  return mpic::Run(steps) ? 0 : 1;
}
